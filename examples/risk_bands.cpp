// Risk-aware forecasting: auto-tuned configuration + quantile bands.
//
// A capacity planner needs more than a point forecast: "what is the
// p90 load next month?" This example (1) lets AutoTuneMultiCast pick
// the multiplexer/digit budget on validation folds inside the history
// (the paper's Table II tuning, automated), then (2) forecasts with
// p10/p50/p90 bands computed across the LLM samples, and (3) checks
// empirical coverage of the band against the held-out truth.
//
// Build & run:  ./build/examples/risk_bands

#include <cstdio>

#include "data/datasets.h"
#include "forecast/auto_tune.h"
#include "forecast/multicast_forecaster.h"
#include "ts/split.h"
#include "util/ascii_plot.h"
#include "util/strings.h"

int main() {
  using namespace multicast;

  ts::Frame frame = data::MakeElectricity().ValueOrDie();
  ts::Split split = ts::SplitHorizon(frame, 24).ValueOrDie();
  size_t hufl = frame.DimIndex("HUFL").ValueOrDie();

  // 1. Pick the configuration on validation folds inside the history.
  forecast::AutoTuneOptions tune;
  tune.base.num_samples = 5;
  tune.digit_choices = {2, 3};
  forecast::AutoTuneResult tuned =
      forecast::AutoTuneMultiCast(split.train, tune).ValueOrDie();
  std::printf("Validation scores:\n");
  for (const auto& [label, rmse] : tuned.scores) {
    std::printf("  %-8s mean RMSE %.3f%s\n", label.c_str(), rmse,
                rmse == tuned.validation_rmse ? "   <- selected" : "");
  }

  // 2. Forecast with quantile bands (more samples -> smoother bands).
  forecast::MultiCastOptions options = tuned.options;
  options.num_samples = 20;
  options.quantiles = {0.1, 0.9};
  forecast::MultiCastForecaster forecaster(options);
  forecast::ForecastResult result =
      forecaster.Forecast(split.train, 24).ValueOrDie();
  const ts::Frame& p10 = result.quantile_bands[0].second;
  const ts::Frame& p90 = result.quantile_bands[1].second;

  std::printf("\n%s, %d samples, tokens %zu+%zu\n",
              forecaster.name().c_str(), options.num_samples,
              result.ledger.prompt_tokens, result.ledger.generated_tokens);
  std::printf("\n t | p10    | median | p90    | actual\n");
  std::printf("---+--------+--------+--------+-------\n");
  size_t covered = 0;
  for (size_t t = 0; t < 24; ++t) {
    double actual = split.test.at(hufl, t);
    bool inside = actual >= p10.at(hufl, t) && actual <= p90.at(hufl, t);
    covered += inside ? 1 : 0;
    if (t < 8) {
      std::printf("%2zu | %6.2f | %6.2f | %6.2f | %6.2f %s\n", t,
                  p10.at(hufl, t), result.forecast.at(hufl, t),
                  p90.at(hufl, t), actual, inside ? "" : "  <- outside");
    }
  }
  std::printf("...\n\nEmpirical coverage of the p10-p90 band over the "
              "horizon: %zu/24 (nominal 80%%)\n",
              covered);

  // 3. Visual: band edges and truth.
  PlotSeries lo{"p10", '-', p10.dim(hufl).values()};
  PlotSeries hi{"p90", '=', p90.dim(hufl).values()};
  PlotSeries actual{"actual", 'o', split.test.dim(hufl).values()};
  PlotOptions plot;
  plot.title = "HUFL forecast band, next 24 samples";
  std::fputs(RenderAsciiPlot({lo, hi, actual}, plot).c_str(), stdout);
  return 0;
}
