// Quickstart: zero-shot multivariate forecasting in ~20 lines.
//
// Loads the 2-dimensional Gas Rate dataset, holds out the last 24
// steps, forecasts them with MultiCast (value-interleaving), and prints
// the per-dimension RMSE plus a terminal overlay of the result.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "data/datasets.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "forecast/multicast_forecaster.h"
#include "ts/split.h"

int main() {
  using namespace multicast;

  // 1. A multivariate series (any ts::Frame works; see LoadCsvDataset
  //    for bringing your own data).
  ts::Frame frame = data::MakeGasRate().ValueOrDie();

  // 2. Hold out a horizon to score against.
  ts::Split split = ts::SplitHorizon(frame, 24).ValueOrDie();

  // 3. Configure MultiCast: multiplexing scheme, digit budget, number
  //    of samples, and the simulated LLM back-end.
  forecast::MultiCastOptions options;
  options.mux = multiplex::MuxKind::kValueInterleave;
  options.digits = 2;
  options.num_samples = 5;
  forecast::MultiCastForecaster forecaster(options);

  // 4. Forecast and score.
  eval::MethodRun run =
      eval::RunMethod(&forecaster, split).ValueOrDie();
  for (size_t d = 0; d < split.test.num_dims(); ++d) {
    std::printf("RMSE %-8s = %.3f\n", split.test.dim(d).name().c_str(),
                run.rmse_per_dim[d]);
  }
  std::printf("LLM cost: %zu prompt + %zu generated tokens in %.3fs\n\n",
              run.ledger.prompt_tokens, run.ledger.generated_tokens,
              run.seconds);

  // 5. Visualize.
  std::fputs(eval::RenderForecastFigure("Gas Rate: CO2 dimension", split,
                                        1, run)
                 .c_str(),
             stdout);
  return 0;
}
