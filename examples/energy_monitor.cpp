// Transformer-monitoring scenario: forecast oil temperature (OT) from a
// CSV export, comparing the zero-shot LLM pipeline against tuned
// classical baselines.
//
// OT is the ETDataset's regression target: operators forecast it to
// schedule load. This example walks the full real-data path — write the
// feed to CSV, reload it with the library's loader (exactly what a user
// with the actual ETT files would do), then compare MultiCast with
// ARIMA (AIC-tuned) and an LSTM, reporting accuracy and cost.
//
// Build & run:  ./build/examples/energy_monitor

#include <cstdio>

#include "baselines/arima.h"
#include "baselines/lstm.h"
#include "data/datasets.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "forecast/multicast_forecaster.h"
#include "ts/split.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace multicast;

  // 1. Export the feed to CSV and reload through the real-data path.
  ts::Frame generated = data::MakeElectricity().ValueOrDie();
  std::string path = "/tmp/multicast_energy_feed.csv";
  Status io = WriteCsvFile(generated.ToCsv(), path);
  if (!io.ok()) {
    std::fprintf(stderr, "CSV write failed: %s\n", io.ToString().c_str());
    return 1;
  }
  ts::Frame frame =
      data::LoadCsvDataset(path, "Electricity").ValueOrDie();
  std::printf("Loaded %zu x %zu feed from %s\n", frame.num_dims(),
              frame.length(), path.c_str());

  // 2. Hold out the final month (10 samples at 3-day resolution).
  ts::Split split = ts::SplitHorizon(frame, 10).ValueOrDie();
  size_t ot = frame.DimIndex("OT").ValueOrDie();

  // 3. Contenders. ARIMA auto-tunes orders per dimension via AIC; the
  //    LSTM uses the paper's grid-search configuration; MultiCast is
  //    zero-shot — no tuning at all.
  forecast::MultiCastOptions mc;
  mc.mux = multiplex::MuxKind::kValueConcat;
  mc.num_samples = 5;
  forecast::MultiCastForecaster multicast_f(mc);

  baselines::ArimaOptions arima_opts;
  arima_opts.auto_select = true;
  baselines::ArimaForecaster arima_f(arima_opts);

  baselines::LstmOptions lstm_opts;
  lstm_opts.hidden_units = 128;
  lstm_opts.dropout = 0.2;
  lstm_opts.epochs = 30;
  baselines::LstmForecaster lstm_f(lstm_opts);

  auto runs = eval::RunMethods({&multicast_f, &arima_f, &lstm_f}, split)
                  .ValueOrDie();

  // 4. Report.
  TextTable table({"Method", "OT RMSE", "tuning required", "tokens",
                   "seconds"});
  const char* tuning[] = {"none (zero-shot)", "AIC grid search",
                          "grid-searched architecture, 30 epochs"};
  for (size_t m = 0; m < runs.size(); ++m) {
    table.AddRow({runs[m].method,
                  StrFormat("%.3f", runs[m].rmse_per_dim[ot]), tuning[m],
                  StrFormat("%zu", runs[m].ledger.total()),
                  StrFormat("%.3f", runs[m].seconds)});
  }
  table.Print();

  std::printf("\n");
  std::fputs(eval::RenderForecastFigure("Oil temperature, next month",
                                        split, ot, runs[0])
                 .c_str(),
             stdout);

  std::printf(
      "\nThe zero-shot pipeline needs no training loop and no parameter "
      "search — the trade the paper's conclusion highlights — at the "
      "price of the token budget above.\n");
  std::remove(path.c_str());
  return 0;
}
