// Weather-station scenario: pick the right multiplexing scheme and
// decide whether SAX compression is worth it.
//
// The paper's Sec. IV-C takeaway is that the optimal multiplexer
// differs per dimension and dataset. A practitioner with a new feed
// should therefore (1) backtest all three schemes on held-out history,
// (2) deploy the winner per target dimension, and (3) check what SAX
// quantization would save if the model is billed per token. This
// example does exactly that on the 4-dimensional weather dataset.
//
// Build & run:  ./build/examples/weather_station

#include <cstdio>

#include "data/datasets.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "forecast/multicast_forecaster.h"
#include "ts/split.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace multicast;

  ts::Frame frame = data::MakeWeather().ValueOrDie();
  // Backtest window: last 32 samples of history.
  ts::Split split = ts::SplitHorizon(frame, 32).ValueOrDie();

  std::printf("Backtesting multiplexing schemes on %zu-dim weather feed "
              "(%zu train, %zu test)...\n\n",
              frame.num_dims(), split.train.length(), split.test.length());

  // 1. Score all three schemes.
  std::vector<eval::MethodRun> runs;
  for (auto mux : {multiplex::MuxKind::kDigitInterleave,
                   multiplex::MuxKind::kValueInterleave,
                   multiplex::MuxKind::kValueConcat}) {
    forecast::MultiCastOptions options;
    options.mux = mux;
    options.num_samples = 5;
    forecast::MultiCastForecaster f(options);
    runs.push_back(eval::RunMethod(&f, split).ValueOrDie());
  }

  std::vector<std::string> dim_names;
  for (size_t d = 0; d < frame.num_dims(); ++d) {
    dim_names.push_back(frame.dim(d).name());
  }
  std::fputs(eval::RenderRmseTable("Scheme backtest (RMSE, * = best)",
                                   dim_names, runs)
                 .c_str(),
             stdout);

  // 2. Deployment recommendation per dimension.
  std::printf("\nRecommended scheme per dimension:\n");
  for (size_t d = 0; d < frame.num_dims(); ++d) {
    size_t best = 0;
    for (size_t m = 1; m < runs.size(); ++m) {
      if (runs[m].rmse_per_dim[d] < runs[best].rmse_per_dim[d]) best = m;
    }
    std::printf("  %-6s -> %s (RMSE %.3f)\n", dim_names[d].c_str(),
                runs[best].method.c_str(), runs[best].rmse_per_dim[d]);
  }

  // 3. What would SAX save? Same forecast with one symbol per segment.
  forecast::MultiCastOptions sax_options;
  sax_options.mux = multiplex::MuxKind::kValueInterleave;
  sax_options.quantization = forecast::Quantization::kSaxDigital;
  sax_options.sax_segment_length = 6;
  sax_options.sax_alphabet_size = 5;
  sax_options.num_samples = 5;
  forecast::MultiCastForecaster sax_f(sax_options);
  eval::MethodRun sax_run = eval::RunMethod(&sax_f, split).ValueOrDie();

  const eval::MethodRun& raw_vi = runs[1];
  TextTable tradeoff({"Pipeline", "mean RMSE", "tokens", "seconds"});
  auto mean_rmse = [](const eval::MethodRun& run) {
    double sum = 0.0;
    for (double v : run.rmse_per_dim) sum += v;
    return sum / static_cast<double>(run.rmse_per_dim.size());
  };
  tradeoff.AddRow({"raw (b = 2 digits)", StrFormat("%.3f", mean_rmse(raw_vi)),
                   StrFormat("%zu", raw_vi.ledger.total()),
                   StrFormat("%.3f", raw_vi.seconds)});
  tradeoff.AddRow({"SAX (digital, w = 6)",
                   StrFormat("%.3f", mean_rmse(sax_run)),
                   StrFormat("%zu", sax_run.ledger.total()),
                   StrFormat("%.3f", sax_run.seconds)});
  std::printf("\n");
  tradeoff.Print();
  std::printf(
      "\nSAX cuts the token bill %.0fx; if the feed is billed per token "
      "and the accuracy above is acceptable, deploy the quantized "
      "pipeline.\n",
      static_cast<double>(raw_vi.ledger.total()) /
          static_cast<double>(sax_run.ledger.total()));
  return 0;
}
