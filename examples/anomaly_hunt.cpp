// Beyond forecasting: the paper's future-work tasks on one sensor feed.
//
// A plant sensor feed suffers (a) a dropout gap, (b) two point
// anomalies, and (c) a regime change after a maintenance event. This
// example runs the library's zero-shot extensions over it:
//   - extensions::Impute fills the gap bidirectionally,
//   - extensions::DetectAnomalies flags the spikes via LM surprisal,
//   - extensions::DetectChangePoints locates the regime shift.
//
// Build & run:  ./build/examples/anomaly_hunt

#include <cmath>
#include <cstdio>
#include <limits>

#include "extensions/anomaly.h"
#include "extensions/imputation.h"
#include "ts/frame.h"
#include "util/ascii_plot.h"
#include "util/random.h"

int main() {
  using namespace multicast;
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

  // ---- Synthesize the troubled feed. -------------------------------
  const size_t n = 240;
  const size_t kRegimeShift = 160;
  Rng rng(2024);
  std::vector<double> temp(n), pressure(n);
  for (size_t t = 0; t < n; ++t) {
    if (t < kRegimeShift) {
      temp[t] = 40.0 + 6.0 * std::sin(2.0 * M_PI * t / 16.0) +
                rng.NextGaussian(0.0, 0.4);
    } else {  // after the maintenance event: new level and period
      temp[t] = 55.0 + 2.0 * std::sin(2.0 * M_PI * t / 9.0) +
                rng.NextGaussian(0.0, 0.4);
    }
    pressure[t] = 0.4 * temp[t] + 10.0 + rng.NextGaussian(0.0, 0.3);
  }
  temp[70] += 18.0;    // point anomaly 1
  temp[120] -= 15.0;   // point anomaly 2
  for (size_t t = 40; t < 48; ++t) temp[t] = kNan;  // sensor dropout

  ts::Frame feed = ts::Frame::FromSeries({ts::Series(temp, "temp"),
                                          ts::Series(pressure, "pressure")},
                                         "plant-feed")
                       .ValueOrDie();

  // ---- (a) Impute the dropout. -------------------------------------
  auto gaps = extensions::FindGaps(feed);
  std::printf("Gaps found: %zu", gaps.size());
  for (const auto& gap : gaps) {
    std::printf("  [%zu, %zu)", gap.begin, gap.end);
  }
  std::printf("\n");

  extensions::ImputeOptions impute_opts;
  impute_opts.multicast.num_samples = 5;
  ts::Frame filled = extensions::Impute(feed, impute_opts).ValueOrDie();
  std::printf("After imputation: %zu gaps remain.\n\n",
              extensions::FindGaps(filled).size());

  // ---- (b) Flag point anomalies. -----------------------------------
  extensions::AnomalyOptions an_opts;
  an_opts.threshold_quantile = 0.97;
  auto report = extensions::DetectAnomalies(filled, an_opts).ValueOrDie();
  std::printf("Anomalous timestamps (LM surprisal > q%.2f = %.2f):",
              an_opts.threshold_quantile, report.threshold);
  for (size_t t : report.anomalies) {
    std::printf(" %zu[%s]", t,
                filled.dim(report.ArgMaxDimension(t)).name().c_str());
  }
  std::printf("\n(injected spikes were at 70 and 120; the maintenance "
              "regime begins at %zu)\n\n",
              kRegimeShift);

  // ---- (c) Locate the regime change. -------------------------------
  extensions::ChangePointOptions cp_opts;
  cp_opts.scoring = an_opts;
  auto cps = extensions::DetectChangePoints(filled, cp_opts).ValueOrDie();
  std::printf("Change points:");
  for (size_t cp : cps) std::printf(" %zu", cp);
  std::printf("  (true shift at %zu)\n\n", kRegimeShift);

  // ---- Visual summary. ----------------------------------------------
  PlotSeries observed{"temp (imputed)", '.', filled.dim(0).values()};
  PlotSeries surprisal{"surprisal (scaled)", '^', {}};
  double max_score = 1e-9;
  for (double s : report.scores) max_score = std::max(max_score, s);
  for (double s : report.scores) {
    surprisal.values.push_back(30.0 + 20.0 * s / max_score);
  }
  PlotOptions plot_opts;
  plot_opts.title = "Plant feed and LM surprisal";
  plot_opts.height = 18;
  std::fputs(RenderAsciiPlot({observed, surprisal}, plot_opts).c_str(),
             stdout);
  return 0;
}
