// Thin entry point for the `multicast` CLI; logic lives in src/cli.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  multicast::Result<int> code = multicast::cli::RunCommand(args, std::cout);
  if (!code.ok()) {
    std::fprintf(stderr, "error: %s\n%s",
                 code.status().ToString().c_str(),
                 multicast::cli::UsageText().c_str());
    return 2;
  }
  return code.value();
}
