#!/usr/bin/env bash
# Pre-merge gate: tier-1 build + tests, then an ASan+UBSan pass over the
# serving and LLM tiers (the layers doing pointer-heavy virtual-time and
# cancellation work, where a sanitizer earns its keep), then a TSan pass
# over the same tiers plus the parallel sampling runtime.
#
# Usage: tools/check.sh [--no-asan] [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== tier-1: configure + build + ctest ===="
cmake -B build -S . > /dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==== bench smoke: prefix cache identity + replay gates ===="
cmake --build build -j "${JOBS}" --target prefix_cache
./build/bench/prefix_cache --smoke

echo "==== bench smoke: continuous batching identity + speedup gates ===="
# Also gates registry instrumentation: publishing scheduler stats
# through a live MetricsRegistry must cost < 2% throughput.
cmake --build build -j "${JOBS}" --target batch_throughput
./build/bench/batch_throughput --smoke

echo "==== bench smoke: cluster failover goodput + identity gates ===="
# Exits non-zero when losing 1 of 4 replicas mid-run drops goodput below
# 90% of the same fleet's no-fault goodput, or when any failed-over
# forecast deviates from the fault-free reference.
cmake --build build -j "${JOBS}" --target cluster_failover
./build/bench/cluster_failover --smoke

echo "==== bench smoke: overload degradation-ladder goodput gates ===="
# Exits non-zero when the ladder fails to hold >= 90% goodput at 8x
# overload (where the ungoverned baseline collapses), or when a rerun of
# the laddered cell is not bit-identical.
cmake --build build -j "${JOBS}" --target ablation_overload
./build/bench/ablation_overload --smoke

echo "==== bench smoke: speculative decoding identity + speedup gates ===="
# Exits non-zero when any speculative forecast diverges from its plain
# twin (bit-identity at every swept draft length and batch size), or
# the best-k speedup on the latency-bound backend falls below 1.5x.
cmake --build build -j "${JOBS}" --target speculative_decode
./build/bench/speculative_decode --smoke

echo "==== bench smoke: paged session memory identity + bytes gates ===="
# Exits non-zero when any paged forecast diverges from the unpaged
# baseline (bit-identity across the threads x batch grid and under pool
# exhaustion), the bytes/session reduction falls below 2x, or a full
# pool fails to demote/shed through the overload ladder.
cmake --build build -j "${JOBS}" --target paged_memory
./build/bench/paged_memory --smoke

run_asan=1
run_tsan=1
for arg in "$@"; do
  case "${arg}" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${run_asan}" == "1" ]]; then
  echo "==== sanitizer pass: ASan + UBSan on serve/lm tests ===="
  cmake -B build-asan -S . -DMC_SANITIZE=ON > /dev/null
  ASAN_TESTS=(
    metrics_test
    metrics_registry_test
    virtual_time_test
    serve_queue_test
    serve_executor_test
    overload_test
    classical_test
    resilient_backend_test
    fault_injection_test
    backend_contract_test
    prefix_cache_test
    paged_store_test
    batch_scheduler_test
    speculative_test
    cluster_test
    cluster_chaos_test
  )
  cmake --build build-asan -j "${JOBS}" --target "${ASAN_TESTS[@]}"
  for t in "${ASAN_TESTS[@]}"; do
    echo "---- ${t} (asan) ----"
    "build-asan/tests/${t}" --gtest_brief=1
  done
else
  echo "==== skipping ASan pass (--no-asan) ===="
fi

if [[ "${run_tsan}" == "1" ]]; then
  echo "==== sanitizer pass: TSan on lm/forecast/serve tests ===="
  cmake -B build-tsan -S . -DMC_SANITIZE_THREAD=ON > /dev/null
  TSAN_TESTS=(
    thread_pool_test
    metrics_test
    metrics_registry_test
    prefix_cache_test
    paged_store_test
    parallel_sampling_test
    multicast_forecaster_test
    llmtime_forecaster_test
    serve_executor_test
    overload_test
    classical_test
    resilient_backend_test
    fault_injection_test
    batch_scheduler_test
    speculative_test
    cluster_test
    cluster_chaos_test
  )
  cmake --build build-tsan -j "${JOBS}" --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    echo "---- ${t} (tsan) ----"
    "build-tsan/tests/${t}" --gtest_brief=1
  done
else
  echo "==== skipping TSan pass (--no-tsan) ===="
fi

echo "==== all checks passed ===="
