#!/usr/bin/env bash
# Pre-merge gate: tier-1 build + tests, then an ASan+UBSan pass over the
# serving and LLM tiers (the layers doing pointer-heavy virtual-time and
# cancellation work, where a sanitizer earns its keep).
#
# Usage: tools/check.sh [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== tier-1: configure + build + ctest ===="
cmake -B build -S . > /dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${1:-}" == "--no-asan" ]]; then
  echo "==== skipping sanitizer pass (--no-asan) ===="
  exit 0
fi

echo "==== sanitizer pass: ASan + UBSan on serve/lm tests ===="
cmake -B build-asan -S . -DMC_SANITIZE=ON > /dev/null
ASAN_TESTS=(
  virtual_time_test
  serve_queue_test
  serve_executor_test
  resilient_backend_test
  fault_injection_test
  backend_contract_test
)
cmake --build build-asan -j "${JOBS}" --target "${ASAN_TESTS[@]}"
for t in "${ASAN_TESTS[@]}"; do
  echo "---- ${t} (asan) ----"
  "build-asan/tests/${t}" --gtest_brief=1
done

echo "==== all checks passed ===="
