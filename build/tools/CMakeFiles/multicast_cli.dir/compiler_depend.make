# Empty compiler generated dependencies file for multicast_cli.
# This may be replaced when dependencies are built.
