file(REMOVE_RECURSE
  "CMakeFiles/multicast_cli.dir/multicast_main.cc.o"
  "CMakeFiles/multicast_cli.dir/multicast_main.cc.o.d"
  "multicast"
  "multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
