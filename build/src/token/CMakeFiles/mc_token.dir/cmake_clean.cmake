file(REMOVE_RECURSE
  "CMakeFiles/mc_token.dir/codec.cc.o"
  "CMakeFiles/mc_token.dir/codec.cc.o.d"
  "CMakeFiles/mc_token.dir/vocabulary.cc.o"
  "CMakeFiles/mc_token.dir/vocabulary.cc.o.d"
  "libmc_token.a"
  "libmc_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
