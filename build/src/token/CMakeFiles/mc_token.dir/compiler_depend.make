# Empty compiler generated dependencies file for mc_token.
# This may be replaced when dependencies are built.
