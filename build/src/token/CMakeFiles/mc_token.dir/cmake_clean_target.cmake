file(REMOVE_RECURSE
  "libmc_token.a"
)
