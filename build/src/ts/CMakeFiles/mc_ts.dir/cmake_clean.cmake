file(REMOVE_RECURSE
  "CMakeFiles/mc_ts.dir/frame.cc.o"
  "CMakeFiles/mc_ts.dir/frame.cc.o.d"
  "CMakeFiles/mc_ts.dir/seasonality.cc.o"
  "CMakeFiles/mc_ts.dir/seasonality.cc.o.d"
  "CMakeFiles/mc_ts.dir/series.cc.o"
  "CMakeFiles/mc_ts.dir/series.cc.o.d"
  "CMakeFiles/mc_ts.dir/split.cc.o"
  "CMakeFiles/mc_ts.dir/split.cc.o.d"
  "CMakeFiles/mc_ts.dir/stats.cc.o"
  "CMakeFiles/mc_ts.dir/stats.cc.o.d"
  "CMakeFiles/mc_ts.dir/transforms.cc.o"
  "CMakeFiles/mc_ts.dir/transforms.cc.o.d"
  "libmc_ts.a"
  "libmc_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
