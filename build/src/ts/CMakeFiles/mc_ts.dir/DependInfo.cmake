
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/frame.cc" "src/ts/CMakeFiles/mc_ts.dir/frame.cc.o" "gcc" "src/ts/CMakeFiles/mc_ts.dir/frame.cc.o.d"
  "/root/repo/src/ts/seasonality.cc" "src/ts/CMakeFiles/mc_ts.dir/seasonality.cc.o" "gcc" "src/ts/CMakeFiles/mc_ts.dir/seasonality.cc.o.d"
  "/root/repo/src/ts/series.cc" "src/ts/CMakeFiles/mc_ts.dir/series.cc.o" "gcc" "src/ts/CMakeFiles/mc_ts.dir/series.cc.o.d"
  "/root/repo/src/ts/split.cc" "src/ts/CMakeFiles/mc_ts.dir/split.cc.o" "gcc" "src/ts/CMakeFiles/mc_ts.dir/split.cc.o.d"
  "/root/repo/src/ts/stats.cc" "src/ts/CMakeFiles/mc_ts.dir/stats.cc.o" "gcc" "src/ts/CMakeFiles/mc_ts.dir/stats.cc.o.d"
  "/root/repo/src/ts/transforms.cc" "src/ts/CMakeFiles/mc_ts.dir/transforms.cc.o" "gcc" "src/ts/CMakeFiles/mc_ts.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
