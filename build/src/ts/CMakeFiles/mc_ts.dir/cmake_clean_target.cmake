file(REMOVE_RECURSE
  "libmc_ts.a"
)
