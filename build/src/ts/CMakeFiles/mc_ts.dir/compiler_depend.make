# Empty compiler generated dependencies file for mc_ts.
# This may be replaced when dependencies are built.
