file(REMOVE_RECURSE
  "CMakeFiles/mc_metrics.dir/metrics.cc.o"
  "CMakeFiles/mc_metrics.dir/metrics.cc.o.d"
  "libmc_metrics.a"
  "libmc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
