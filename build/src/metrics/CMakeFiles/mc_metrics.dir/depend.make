# Empty dependencies file for mc_metrics.
# This may be replaced when dependencies are built.
