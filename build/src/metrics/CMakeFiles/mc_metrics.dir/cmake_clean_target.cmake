file(REMOVE_RECURSE
  "libmc_metrics.a"
)
