
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/arima.cc" "src/baselines/CMakeFiles/mc_baselines.dir/arima.cc.o" "gcc" "src/baselines/CMakeFiles/mc_baselines.dir/arima.cc.o.d"
  "/root/repo/src/baselines/ets.cc" "src/baselines/CMakeFiles/mc_baselines.dir/ets.cc.o" "gcc" "src/baselines/CMakeFiles/mc_baselines.dir/ets.cc.o.d"
  "/root/repo/src/baselines/linalg.cc" "src/baselines/CMakeFiles/mc_baselines.dir/linalg.cc.o" "gcc" "src/baselines/CMakeFiles/mc_baselines.dir/linalg.cc.o.d"
  "/root/repo/src/baselines/lstm.cc" "src/baselines/CMakeFiles/mc_baselines.dir/lstm.cc.o" "gcc" "src/baselines/CMakeFiles/mc_baselines.dir/lstm.cc.o.d"
  "/root/repo/src/baselines/naive.cc" "src/baselines/CMakeFiles/mc_baselines.dir/naive.cc.o" "gcc" "src/baselines/CMakeFiles/mc_baselines.dir/naive.cc.o.d"
  "/root/repo/src/baselines/sarima.cc" "src/baselines/CMakeFiles/mc_baselines.dir/sarima.cc.o" "gcc" "src/baselines/CMakeFiles/mc_baselines.dir/sarima.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forecast/CMakeFiles/mc_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mc_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/mc_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/multiplex/CMakeFiles/mc_multiplex.dir/DependInfo.cmake"
  "/root/repo/build/src/sax/CMakeFiles/mc_sax.dir/DependInfo.cmake"
  "/root/repo/build/src/scale/CMakeFiles/mc_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/token/CMakeFiles/mc_token.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
