file(REMOVE_RECURSE
  "CMakeFiles/mc_baselines.dir/arima.cc.o"
  "CMakeFiles/mc_baselines.dir/arima.cc.o.d"
  "CMakeFiles/mc_baselines.dir/ets.cc.o"
  "CMakeFiles/mc_baselines.dir/ets.cc.o.d"
  "CMakeFiles/mc_baselines.dir/linalg.cc.o"
  "CMakeFiles/mc_baselines.dir/linalg.cc.o.d"
  "CMakeFiles/mc_baselines.dir/lstm.cc.o"
  "CMakeFiles/mc_baselines.dir/lstm.cc.o.d"
  "CMakeFiles/mc_baselines.dir/naive.cc.o"
  "CMakeFiles/mc_baselines.dir/naive.cc.o.d"
  "CMakeFiles/mc_baselines.dir/sarima.cc.o"
  "CMakeFiles/mc_baselines.dir/sarima.cc.o.d"
  "libmc_baselines.a"
  "libmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
