# Empty compiler generated dependencies file for mc_data.
# This may be replaced when dependencies are built.
