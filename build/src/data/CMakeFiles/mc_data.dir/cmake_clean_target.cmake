file(REMOVE_RECURSE
  "libmc_data.a"
)
