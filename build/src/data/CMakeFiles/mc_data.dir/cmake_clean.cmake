file(REMOVE_RECURSE
  "CMakeFiles/mc_data.dir/datasets.cc.o"
  "CMakeFiles/mc_data.dir/datasets.cc.o.d"
  "libmc_data.a"
  "libmc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
