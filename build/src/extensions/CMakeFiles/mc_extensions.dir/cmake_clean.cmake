file(REMOVE_RECURSE
  "CMakeFiles/mc_extensions.dir/anomaly.cc.o"
  "CMakeFiles/mc_extensions.dir/anomaly.cc.o.d"
  "CMakeFiles/mc_extensions.dir/imputation.cc.o"
  "CMakeFiles/mc_extensions.dir/imputation.cc.o.d"
  "libmc_extensions.a"
  "libmc_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
