file(REMOVE_RECURSE
  "libmc_extensions.a"
)
