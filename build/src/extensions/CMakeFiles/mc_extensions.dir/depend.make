# Empty dependencies file for mc_extensions.
# This may be replaced when dependencies are built.
