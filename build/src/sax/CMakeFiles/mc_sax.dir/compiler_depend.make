# Empty compiler generated dependencies file for mc_sax.
# This may be replaced when dependencies are built.
