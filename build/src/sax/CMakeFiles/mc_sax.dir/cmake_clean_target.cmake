file(REMOVE_RECURSE
  "libmc_sax.a"
)
