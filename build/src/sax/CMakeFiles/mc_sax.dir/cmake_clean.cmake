file(REMOVE_RECURSE
  "CMakeFiles/mc_sax.dir/gaussian.cc.o"
  "CMakeFiles/mc_sax.dir/gaussian.cc.o.d"
  "CMakeFiles/mc_sax.dir/paa.cc.o"
  "CMakeFiles/mc_sax.dir/paa.cc.o.d"
  "CMakeFiles/mc_sax.dir/sax.cc.o"
  "CMakeFiles/mc_sax.dir/sax.cc.o.d"
  "libmc_sax.a"
  "libmc_sax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_sax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
