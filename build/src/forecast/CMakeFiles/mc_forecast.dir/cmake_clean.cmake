file(REMOVE_RECURSE
  "CMakeFiles/mc_forecast.dir/auto_tune.cc.o"
  "CMakeFiles/mc_forecast.dir/auto_tune.cc.o.d"
  "CMakeFiles/mc_forecast.dir/ensemble.cc.o"
  "CMakeFiles/mc_forecast.dir/ensemble.cc.o.d"
  "CMakeFiles/mc_forecast.dir/llmtime_forecaster.cc.o"
  "CMakeFiles/mc_forecast.dir/llmtime_forecaster.cc.o.d"
  "CMakeFiles/mc_forecast.dir/multicast_forecaster.cc.o"
  "CMakeFiles/mc_forecast.dir/multicast_forecaster.cc.o.d"
  "libmc_forecast.a"
  "libmc_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
