# Empty compiler generated dependencies file for mc_forecast.
# This may be replaced when dependencies are built.
