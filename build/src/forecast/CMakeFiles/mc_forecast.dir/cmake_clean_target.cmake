file(REMOVE_RECURSE
  "libmc_forecast.a"
)
