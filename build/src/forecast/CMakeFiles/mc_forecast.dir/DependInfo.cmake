
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/auto_tune.cc" "src/forecast/CMakeFiles/mc_forecast.dir/auto_tune.cc.o" "gcc" "src/forecast/CMakeFiles/mc_forecast.dir/auto_tune.cc.o.d"
  "/root/repo/src/forecast/ensemble.cc" "src/forecast/CMakeFiles/mc_forecast.dir/ensemble.cc.o" "gcc" "src/forecast/CMakeFiles/mc_forecast.dir/ensemble.cc.o.d"
  "/root/repo/src/forecast/llmtime_forecaster.cc" "src/forecast/CMakeFiles/mc_forecast.dir/llmtime_forecaster.cc.o" "gcc" "src/forecast/CMakeFiles/mc_forecast.dir/llmtime_forecaster.cc.o.d"
  "/root/repo/src/forecast/multicast_forecaster.cc" "src/forecast/CMakeFiles/mc_forecast.dir/multicast_forecaster.cc.o" "gcc" "src/forecast/CMakeFiles/mc_forecast.dir/multicast_forecaster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lm/CMakeFiles/mc_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/multiplex/CMakeFiles/mc_multiplex.dir/DependInfo.cmake"
  "/root/repo/build/src/sax/CMakeFiles/mc_sax.dir/DependInfo.cmake"
  "/root/repo/build/src/scale/CMakeFiles/mc_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/token/CMakeFiles/mc_token.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mc_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
