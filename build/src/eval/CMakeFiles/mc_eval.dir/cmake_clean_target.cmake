file(REMOVE_RECURSE
  "libmc_eval.a"
)
