file(REMOVE_RECURSE
  "CMakeFiles/mc_eval.dir/experiment.cc.o"
  "CMakeFiles/mc_eval.dir/experiment.cc.o.d"
  "CMakeFiles/mc_eval.dir/report.cc.o"
  "CMakeFiles/mc_eval.dir/report.cc.o.d"
  "CMakeFiles/mc_eval.dir/rolling.cc.o"
  "CMakeFiles/mc_eval.dir/rolling.cc.o.d"
  "libmc_eval.a"
  "libmc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
