# Empty compiler generated dependencies file for mc_eval.
# This may be replaced when dependencies are built.
