
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lm/generator.cc" "src/lm/CMakeFiles/mc_lm.dir/generator.cc.o" "gcc" "src/lm/CMakeFiles/mc_lm.dir/generator.cc.o.d"
  "/root/repo/src/lm/mixture_model.cc" "src/lm/CMakeFiles/mc_lm.dir/mixture_model.cc.o" "gcc" "src/lm/CMakeFiles/mc_lm.dir/mixture_model.cc.o.d"
  "/root/repo/src/lm/ngram_model.cc" "src/lm/CMakeFiles/mc_lm.dir/ngram_model.cc.o" "gcc" "src/lm/CMakeFiles/mc_lm.dir/ngram_model.cc.o.d"
  "/root/repo/src/lm/profiles.cc" "src/lm/CMakeFiles/mc_lm.dir/profiles.cc.o" "gcc" "src/lm/CMakeFiles/mc_lm.dir/profiles.cc.o.d"
  "/root/repo/src/lm/sampler.cc" "src/lm/CMakeFiles/mc_lm.dir/sampler.cc.o" "gcc" "src/lm/CMakeFiles/mc_lm.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/token/CMakeFiles/mc_token.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
