file(REMOVE_RECURSE
  "libmc_lm.a"
)
