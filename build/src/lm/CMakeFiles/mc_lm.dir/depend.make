# Empty dependencies file for mc_lm.
# This may be replaced when dependencies are built.
