file(REMOVE_RECURSE
  "CMakeFiles/mc_lm.dir/generator.cc.o"
  "CMakeFiles/mc_lm.dir/generator.cc.o.d"
  "CMakeFiles/mc_lm.dir/mixture_model.cc.o"
  "CMakeFiles/mc_lm.dir/mixture_model.cc.o.d"
  "CMakeFiles/mc_lm.dir/ngram_model.cc.o"
  "CMakeFiles/mc_lm.dir/ngram_model.cc.o.d"
  "CMakeFiles/mc_lm.dir/profiles.cc.o"
  "CMakeFiles/mc_lm.dir/profiles.cc.o.d"
  "CMakeFiles/mc_lm.dir/sampler.cc.o"
  "CMakeFiles/mc_lm.dir/sampler.cc.o.d"
  "libmc_lm.a"
  "libmc_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
