file(REMOVE_RECURSE
  "CMakeFiles/mc_cli.dir/cli.cc.o"
  "CMakeFiles/mc_cli.dir/cli.cc.o.d"
  "libmc_cli.a"
  "libmc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
