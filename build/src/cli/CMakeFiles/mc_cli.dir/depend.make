# Empty dependencies file for mc_cli.
# This may be replaced when dependencies are built.
