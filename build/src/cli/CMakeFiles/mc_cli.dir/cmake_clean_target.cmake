file(REMOVE_RECURSE
  "libmc_cli.a"
)
