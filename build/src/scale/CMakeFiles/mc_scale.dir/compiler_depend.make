# Empty compiler generated dependencies file for mc_scale.
# This may be replaced when dependencies are built.
