file(REMOVE_RECURSE
  "CMakeFiles/mc_scale.dir/scaler.cc.o"
  "CMakeFiles/mc_scale.dir/scaler.cc.o.d"
  "libmc_scale.a"
  "libmc_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
