file(REMOVE_RECURSE
  "libmc_scale.a"
)
