file(REMOVE_RECURSE
  "CMakeFiles/mc_util.dir/ascii_plot.cc.o"
  "CMakeFiles/mc_util.dir/ascii_plot.cc.o.d"
  "CMakeFiles/mc_util.dir/csv.cc.o"
  "CMakeFiles/mc_util.dir/csv.cc.o.d"
  "CMakeFiles/mc_util.dir/flags.cc.o"
  "CMakeFiles/mc_util.dir/flags.cc.o.d"
  "CMakeFiles/mc_util.dir/random.cc.o"
  "CMakeFiles/mc_util.dir/random.cc.o.d"
  "CMakeFiles/mc_util.dir/status.cc.o"
  "CMakeFiles/mc_util.dir/status.cc.o.d"
  "CMakeFiles/mc_util.dir/strings.cc.o"
  "CMakeFiles/mc_util.dir/strings.cc.o.d"
  "CMakeFiles/mc_util.dir/table.cc.o"
  "CMakeFiles/mc_util.dir/table.cc.o.d"
  "libmc_util.a"
  "libmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
