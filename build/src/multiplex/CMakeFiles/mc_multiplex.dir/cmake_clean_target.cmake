file(REMOVE_RECURSE
  "libmc_multiplex.a"
)
