
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiplex/digit_interleave.cc" "src/multiplex/CMakeFiles/mc_multiplex.dir/digit_interleave.cc.o" "gcc" "src/multiplex/CMakeFiles/mc_multiplex.dir/digit_interleave.cc.o.d"
  "/root/repo/src/multiplex/multiplexer.cc" "src/multiplex/CMakeFiles/mc_multiplex.dir/multiplexer.cc.o" "gcc" "src/multiplex/CMakeFiles/mc_multiplex.dir/multiplexer.cc.o.d"
  "/root/repo/src/multiplex/value_concat.cc" "src/multiplex/CMakeFiles/mc_multiplex.dir/value_concat.cc.o" "gcc" "src/multiplex/CMakeFiles/mc_multiplex.dir/value_concat.cc.o.d"
  "/root/repo/src/multiplex/value_interleave.cc" "src/multiplex/CMakeFiles/mc_multiplex.dir/value_interleave.cc.o" "gcc" "src/multiplex/CMakeFiles/mc_multiplex.dir/value_interleave.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
