file(REMOVE_RECURSE
  "CMakeFiles/mc_multiplex.dir/digit_interleave.cc.o"
  "CMakeFiles/mc_multiplex.dir/digit_interleave.cc.o.d"
  "CMakeFiles/mc_multiplex.dir/multiplexer.cc.o"
  "CMakeFiles/mc_multiplex.dir/multiplexer.cc.o.d"
  "CMakeFiles/mc_multiplex.dir/value_concat.cc.o"
  "CMakeFiles/mc_multiplex.dir/value_concat.cc.o.d"
  "CMakeFiles/mc_multiplex.dir/value_interleave.cc.o"
  "CMakeFiles/mc_multiplex.dir/value_interleave.cc.o.d"
  "libmc_multiplex.a"
  "libmc_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
