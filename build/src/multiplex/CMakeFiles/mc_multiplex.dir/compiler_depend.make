# Empty compiler generated dependencies file for mc_multiplex.
# This may be replaced when dependencies are built.
