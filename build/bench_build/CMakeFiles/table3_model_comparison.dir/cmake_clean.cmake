file(REMOVE_RECURSE
  "../bench/table3_model_comparison"
  "../bench/table3_model_comparison.pdb"
  "CMakeFiles/table3_model_comparison.dir/table3_model_comparison.cc.o"
  "CMakeFiles/table3_model_comparison.dir/table3_model_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
