file(REMOVE_RECURSE
  "../bench/shape_checks"
  "../bench/shape_checks.pdb"
  "CMakeFiles/shape_checks.dir/shape_checks.cc.o"
  "CMakeFiles/shape_checks.dir/shape_checks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
