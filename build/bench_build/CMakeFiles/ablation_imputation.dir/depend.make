# Empty dependencies file for ablation_imputation.
# This may be replaced when dependencies are built.
