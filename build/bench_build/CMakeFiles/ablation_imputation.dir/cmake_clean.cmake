file(REMOVE_RECURSE
  "../bench/ablation_imputation"
  "../bench/ablation_imputation.pdb"
  "CMakeFiles/ablation_imputation.dir/ablation_imputation.cc.o"
  "CMakeFiles/ablation_imputation.dir/ablation_imputation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
