# Empty dependencies file for table4_gasrate.
# This may be replaced when dependencies are built.
