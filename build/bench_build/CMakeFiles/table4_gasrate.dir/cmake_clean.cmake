file(REMOVE_RECURSE
  "../bench/table4_gasrate"
  "../bench/table4_gasrate.pdb"
  "CMakeFiles/table4_gasrate.dir/table4_gasrate.cc.o"
  "CMakeFiles/table4_gasrate.dir/table4_gasrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gasrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
