file(REMOVE_RECURSE
  "../bench/table7_samples"
  "../bench/table7_samples.pdb"
  "CMakeFiles/table7_samples.dir/table7_samples.cc.o"
  "CMakeFiles/table7_samples.dir/table7_samples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
