# Empty compiler generated dependencies file for table7_samples.
# This may be replaced when dependencies are built.
