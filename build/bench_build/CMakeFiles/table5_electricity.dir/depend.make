# Empty dependencies file for table5_electricity.
# This may be replaced when dependencies are built.
