file(REMOVE_RECURSE
  "../bench/table5_electricity"
  "../bench/table5_electricity.pdb"
  "CMakeFiles/table5_electricity.dir/table5_electricity.cc.o"
  "CMakeFiles/table5_electricity.dir/table5_electricity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_electricity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
