file(REMOVE_RECURSE
  "../bench/ablation_backends"
  "../bench/ablation_backends.pdb"
  "CMakeFiles/ablation_backends.dir/ablation_backends.cc.o"
  "CMakeFiles/ablation_backends.dir/ablation_backends.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
