# Empty compiler generated dependencies file for table6_weather.
# This may be replaced when dependencies are built.
