file(REMOVE_RECURSE
  "../bench/table6_weather"
  "../bench/table6_weather.pdb"
  "CMakeFiles/table6_weather.dir/table6_weather.cc.o"
  "CMakeFiles/table6_weather.dir/table6_weather.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
