# Empty compiler generated dependencies file for table9_sax_alphabet.
# This may be replaced when dependencies are built.
