file(REMOVE_RECURSE
  "../bench/table9_sax_alphabet"
  "../bench/table9_sax_alphabet.pdb"
  "CMakeFiles/table9_sax_alphabet.dir/table9_sax_alphabet.cc.o"
  "CMakeFiles/table9_sax_alphabet.dir/table9_sax_alphabet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_sax_alphabet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
