file(REMOVE_RECURSE
  "../bench/table8_sax_segments"
  "../bench/table8_sax_segments.pdb"
  "CMakeFiles/table8_sax_segments.dir/table8_sax_segments.cc.o"
  "CMakeFiles/table8_sax_segments.dir/table8_sax_segments.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_sax_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
