# Empty compiler generated dependencies file for table8_sax_segments.
# This may be replaced when dependencies are built.
