file(REMOVE_RECURSE
  "../bench/ablation_mux_quant"
  "../bench/ablation_mux_quant.pdb"
  "CMakeFiles/ablation_mux_quant.dir/ablation_mux_quant.cc.o"
  "CMakeFiles/ablation_mux_quant.dir/ablation_mux_quant.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mux_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
