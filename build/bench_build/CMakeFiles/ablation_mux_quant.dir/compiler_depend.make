# Empty compiler generated dependencies file for ablation_mux_quant.
# This may be replaced when dependencies are built.
