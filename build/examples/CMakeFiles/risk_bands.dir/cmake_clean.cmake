file(REMOVE_RECURSE
  "CMakeFiles/risk_bands.dir/risk_bands.cpp.o"
  "CMakeFiles/risk_bands.dir/risk_bands.cpp.o.d"
  "risk_bands"
  "risk_bands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
