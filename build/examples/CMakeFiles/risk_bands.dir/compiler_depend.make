# Empty compiler generated dependencies file for risk_bands.
# This may be replaced when dependencies are built.
