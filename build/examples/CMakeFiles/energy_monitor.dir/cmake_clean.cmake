file(REMOVE_RECURSE
  "CMakeFiles/energy_monitor.dir/energy_monitor.cpp.o"
  "CMakeFiles/energy_monitor.dir/energy_monitor.cpp.o.d"
  "energy_monitor"
  "energy_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
