# Empty compiler generated dependencies file for energy_monitor.
# This may be replaced when dependencies are built.
