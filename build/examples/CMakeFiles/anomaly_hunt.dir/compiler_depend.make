# Empty compiler generated dependencies file for anomaly_hunt.
# This may be replaced when dependencies are built.
