file(REMOVE_RECURSE
  "CMakeFiles/anomaly_hunt.dir/anomaly_hunt.cpp.o"
  "CMakeFiles/anomaly_hunt.dir/anomaly_hunt.cpp.o.d"
  "anomaly_hunt"
  "anomaly_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
