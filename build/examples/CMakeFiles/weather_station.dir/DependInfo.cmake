
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/weather_station.cpp" "examples/CMakeFiles/weather_station.dir/weather_station.cpp.o" "gcc" "examples/CMakeFiles/weather_station.dir/weather_station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/mc_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/mc_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/mc_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/scale/CMakeFiles/mc_scale.dir/DependInfo.cmake"
  "/root/repo/build/src/sax/CMakeFiles/mc_sax.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mc_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/multiplex/CMakeFiles/mc_multiplex.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/mc_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/token/CMakeFiles/mc_token.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
