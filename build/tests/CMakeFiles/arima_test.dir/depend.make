# Empty dependencies file for arima_test.
# This may be replaced when dependencies are built.
