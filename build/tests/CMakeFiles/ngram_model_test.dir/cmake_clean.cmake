file(REMOVE_RECURSE
  "CMakeFiles/ngram_model_test.dir/ngram_model_test.cc.o"
  "CMakeFiles/ngram_model_test.dir/ngram_model_test.cc.o.d"
  "ngram_model_test"
  "ngram_model_test.pdb"
  "ngram_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngram_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
