# Empty dependencies file for ngram_model_test.
# This may be replaced when dependencies are built.
