file(REMOVE_RECURSE
  "CMakeFiles/gaussian_test.dir/gaussian_test.cc.o"
  "CMakeFiles/gaussian_test.dir/gaussian_test.cc.o.d"
  "gaussian_test"
  "gaussian_test.pdb"
  "gaussian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaussian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
