# Empty dependencies file for gaussian_test.
# This may be replaced when dependencies are built.
