file(REMOVE_RECURSE
  "CMakeFiles/auto_tune_test.dir/auto_tune_test.cc.o"
  "CMakeFiles/auto_tune_test.dir/auto_tune_test.cc.o.d"
  "auto_tune_test"
  "auto_tune_test.pdb"
  "auto_tune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_tune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
