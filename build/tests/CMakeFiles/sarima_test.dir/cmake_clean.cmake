file(REMOVE_RECURSE
  "CMakeFiles/sarima_test.dir/sarima_test.cc.o"
  "CMakeFiles/sarima_test.dir/sarima_test.cc.o.d"
  "sarima_test"
  "sarima_test.pdb"
  "sarima_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
