# Empty compiler generated dependencies file for sarima_test.
# This may be replaced when dependencies are built.
