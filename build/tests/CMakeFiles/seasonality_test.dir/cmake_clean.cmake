file(REMOVE_RECURSE
  "CMakeFiles/seasonality_test.dir/seasonality_test.cc.o"
  "CMakeFiles/seasonality_test.dir/seasonality_test.cc.o.d"
  "seasonality_test"
  "seasonality_test.pdb"
  "seasonality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seasonality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
