# Empty dependencies file for seasonality_test.
# This may be replaced when dependencies are built.
