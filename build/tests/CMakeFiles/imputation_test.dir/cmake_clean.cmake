file(REMOVE_RECURSE
  "CMakeFiles/imputation_test.dir/imputation_test.cc.o"
  "CMakeFiles/imputation_test.dir/imputation_test.cc.o.d"
  "imputation_test"
  "imputation_test.pdb"
  "imputation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imputation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
