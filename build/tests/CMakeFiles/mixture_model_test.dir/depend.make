# Empty dependencies file for mixture_model_test.
# This may be replaced when dependencies are built.
