file(REMOVE_RECURSE
  "CMakeFiles/mixture_model_test.dir/mixture_model_test.cc.o"
  "CMakeFiles/mixture_model_test.dir/mixture_model_test.cc.o.d"
  "mixture_model_test"
  "mixture_model_test.pdb"
  "mixture_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixture_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
