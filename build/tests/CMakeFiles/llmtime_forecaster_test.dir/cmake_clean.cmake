file(REMOVE_RECURSE
  "CMakeFiles/llmtime_forecaster_test.dir/llmtime_forecaster_test.cc.o"
  "CMakeFiles/llmtime_forecaster_test.dir/llmtime_forecaster_test.cc.o.d"
  "llmtime_forecaster_test"
  "llmtime_forecaster_test.pdb"
  "llmtime_forecaster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmtime_forecaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
