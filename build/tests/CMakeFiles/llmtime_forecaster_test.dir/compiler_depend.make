# Empty compiler generated dependencies file for llmtime_forecaster_test.
# This may be replaced when dependencies are built.
