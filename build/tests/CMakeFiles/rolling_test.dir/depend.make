# Empty dependencies file for rolling_test.
# This may be replaced when dependencies are built.
