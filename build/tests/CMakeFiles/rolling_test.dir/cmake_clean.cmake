file(REMOVE_RECURSE
  "CMakeFiles/rolling_test.dir/rolling_test.cc.o"
  "CMakeFiles/rolling_test.dir/rolling_test.cc.o.d"
  "rolling_test"
  "rolling_test.pdb"
  "rolling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
