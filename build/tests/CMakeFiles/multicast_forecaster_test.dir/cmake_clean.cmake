file(REMOVE_RECURSE
  "CMakeFiles/multicast_forecaster_test.dir/multicast_forecaster_test.cc.o"
  "CMakeFiles/multicast_forecaster_test.dir/multicast_forecaster_test.cc.o.d"
  "multicast_forecaster_test"
  "multicast_forecaster_test.pdb"
  "multicast_forecaster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_forecaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
