# Empty compiler generated dependencies file for multicast_forecaster_test.
# This may be replaced when dependencies are built.
