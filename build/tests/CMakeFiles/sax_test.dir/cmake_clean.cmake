file(REMOVE_RECURSE
  "CMakeFiles/sax_test.dir/sax_test.cc.o"
  "CMakeFiles/sax_test.dir/sax_test.cc.o.d"
  "sax_test"
  "sax_test.pdb"
  "sax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
