file(REMOVE_RECURSE
  "CMakeFiles/multiplexer_test.dir/multiplexer_test.cc.o"
  "CMakeFiles/multiplexer_test.dir/multiplexer_test.cc.o.d"
  "multiplexer_test"
  "multiplexer_test.pdb"
  "multiplexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
