# Empty dependencies file for multiplexer_test.
# This may be replaced when dependencies are built.
