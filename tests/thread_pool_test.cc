#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace multicast {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
  EXPECT_EQ(zero.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  // Two tasks that each wait for the other prove two workers ran at
  // once; with one worker this rendezvous would deadlock (guarded by
  // the wait_for timeout below).
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&]() {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    return cv.wait_for(lock, std::chrono::seconds(30),
                       [&]() { return arrived == 2; });
  };
  auto a = pool.Submit(rendezvous);
  auto b = pool.Submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&completed]() { ++completed; });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughTheFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsFailedFuture) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&completed]() { ++completed; });
  }
  pool.Shutdown();
  EXPECT_EQ(completed.load(), 16);  // drained before the doors closed

  // The pool is gone: a late submission is never enqueued and its
  // future fails fast with the kUnavailable-flavored exception instead
  // of hanging forever on a worker that no longer exists.
  std::atomic<bool> ran{false};
  auto future = pool.Submit([&ran]() {
    ran = true;
    return 1;
  });
  EXPECT_THROW(future.get(), ThreadPoolShutdownError);
  EXPECT_FALSE(ran.load());

  // Shutdown is idempotent and later submissions keep failing cleanly.
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([]() { return 2; }).get(),
               ThreadPoolShutdownError);
}

TEST(ThreadPoolTest, ShutdownErrorCarriesAnActionableMessage) {
  ThreadPool pool(1);
  pool.Shutdown();
  auto future = pool.Submit([]() { return 3; });
  try {
    future.get();
    FAIL() << "expected ThreadPoolShutdownError";
  } catch (const ThreadPoolShutdownError& e) {
    EXPECT_NE(std::string(e.what()).find("Shutdown"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kUnavailable"),
              std::string::npos);
  }
}

TEST(ThreadPoolTest, ManyTasksAcrossFewWorkersAllComplete) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([i]() { return i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 500 * 499 / 2);
}

}  // namespace
}  // namespace multicast
