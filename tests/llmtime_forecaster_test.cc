#include "forecast/llmtime_forecaster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "ts/split.h"

namespace multicast {
namespace forecast {
namespace {

ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 5.0 * std::sin(phase);
    b[i] = 100.0 + 30.0 * std::cos(phase);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

TEST(LlmTimeTest, NameMatchesPaper) {
  EXPECT_EQ(LlmTimeForecaster(LlmTimeOptions{}).name(), "LLMTIME");
}

TEST(LlmTimeTest, ForecastShape) {
  LlmTimeOptions opts;
  opts.num_samples = 3;
  LlmTimeForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(84), 12);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 2u);
  EXPECT_EQ(result.value().forecast.length(), 12u);
  EXPECT_EQ(result.value().forecast.dim(0).name(), "a");
}

TEST(LlmTimeTest, TracksPeriodicSignalPerDimension) {
  LlmTimeOptions opts;
  opts.num_samples = 5;
  LlmTimeForecaster f(opts);
  ts::Frame frame = PeriodicFrame(96);
  auto split = ts::SplitHorizon(frame, 12).ValueOrDie();
  auto result = f.Forecast(split.train, 12);
  ASSERT_TRUE(result.ok());
  auto rmse0 = metrics::Rmse(split.test.dim(0).values(),
                             result.value().forecast.dim(0).values());
  ASSERT_TRUE(rmse0.ok());
  EXPECT_LT(rmse0.value(), 2.5);
}

TEST(LlmTimeTest, LedgerSumsAcrossDimensions) {
  // Ledger equals the sum of two univariate runs; each dimension's
  // stream for horizon h and b=2 costs (history + h) * 3 tokens.
  LlmTimeOptions opts;
  opts.num_samples = 2;
  LlmTimeForecaster f(opts);
  ts::Frame frame = PeriodicFrame(60);
  auto result = f.Forecast(frame, 6);
  ASSERT_TRUE(result.ok());
  // 60 values at 3 tokens each ("dd,"), no trailing comma on the last,
  // plus the comma appended to open the forecast cycle: 60*3 - 1 + 1.
  size_t per_dim_prompt = 60 * 3;
  EXPECT_EQ(result.value().ledger.prompt_tokens, 2 * 2 * per_dim_prompt);
  EXPECT_EQ(result.value().ledger.generated_tokens, 2u * 2u * 6u * 3u);
}

TEST(LlmTimeTest, IndependentOfDimensionOrderCorrelation) {
  // LLMTIME treats dimensions independently: forecasting {a, b} then
  // {b, a} must give the same per-dimension values when the per-
  // dimension seeds match.
  LlmTimeOptions opts;
  opts.num_samples = 2;
  ts::Frame frame = PeriodicFrame(60);
  LlmTimeForecaster f(opts);
  auto r1 = f.Forecast(frame, 6);
  ASSERT_TRUE(r1.ok());
  auto r2 = f.Forecast(frame, 6);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().forecast.dim(0).values(),
            r2.value().forecast.dim(0).values());
}

TEST(LlmTimeTest, DeterministicForSeed) {
  LlmTimeOptions opts;
  opts.num_samples = 2;
  opts.seed = 7;
  ts::Frame frame = PeriodicFrame(48);
  auto r1 = LlmTimeForecaster(opts).Forecast(frame, 4);
  auto r2 = LlmTimeForecaster(opts).Forecast(frame, 4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().forecast.dim(1).values(),
            r2.value().forecast.dim(1).values());
}

TEST(LlmTimeTest, RejectsBadHorizon) {
  LlmTimeForecaster f(LlmTimeOptions{});
  EXPECT_FALSE(f.Forecast(PeriodicFrame(48), 0).ok());
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
