#include "serve/executor.h"

#include <deque>

#include <gtest/gtest.h>

#include "forecast/multicast_forecaster.h"
#include "lm/generator.h"
#include "serve/trace.h"
#include "token/vocabulary.h"

namespace multicast {
namespace serve {
namespace {

ts::Frame History(size_t n) {
  std::vector<double> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(10.0 + static_cast<double>(i % 7));
    b.push_back(50.0 - static_cast<double>(i % 5));
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "hist")
      .ValueOrDie();
}

/// A scripted pipeline: issues `calls` simulated LLM calls of
/// `call_seconds` virtual time each, observing the request context
/// exactly like the real sample loop (check before issuing, never run
/// past the deadline). Each *issued* call is appended to `*issue_log`
/// — the per-run call ledger the cancellation assertions read.
struct FakeSpec {
  std::string name = "fake";
  int calls = 1;
  double call_seconds = 0.1;
  bool fail = false;  ///< fail (kUnavailable) after issuing every call
};

class FakeWork final : public forecast::Forecaster {
 public:
  FakeWork(const FakeSpec& spec, size_t* issued)
      : spec_(spec), issued_(issued) {}

  std::string name() const override { return spec_.name; }

  using Forecaster::Forecast;
  Result<forecast::ForecastResult> Forecast(
      const ts::Frame& history, size_t horizon,
      const RequestContext& ctx) override {
    for (int i = 0; i < spec_.calls; ++i) {
      MC_RETURN_IF_ERROR(ctx.Check(spec_.name.c_str()));
      if (ctx.clock != nullptr && !ctx.deadline.never()) {
        double remaining = ctx.deadline.RemainingAt(ctx.clock->now());
        if (remaining < spec_.call_seconds) {
          ctx.clock->Advance(remaining);
          return Status::DeadlineExceeded(spec_.name +
                                          ": call preempted by deadline");
        }
      }
      if (issued_ != nullptr) ++*issued_;
      if (ctx.clock != nullptr) ctx.clock->Advance(spec_.call_seconds);
    }
    if (spec_.fail) return Status::Unavailable(spec_.name + " failed");
    forecast::ForecastResult result;
    std::vector<ts::Series> dims;
    for (size_t d = 0; d < history.num_dims(); ++d) {
      dims.emplace_back(std::vector<double>(horizon, 1.0),
                        history.dim(d).name());
    }
    result.forecast = ts::Frame::FromSeries(dims, "f").ValueOrDie();
    return result;
  }

 private:
  FakeSpec spec_;
  size_t* issued_;
};

/// Factory recording how many calls each created instance issued:
/// run_calls()[k] is the issue count of the k-th pipeline built.
class FakeFactory {
 public:
  explicit FakeFactory(const FakeSpec& spec) : spec_(spec) {}

  ForecasterFactory factory() {
    return [this](const ForecastRequest&) {
      counts_->push_back(0);
      return std::make_unique<FakeWork>(spec_, &counts_->back());
    };
  }

  const std::deque<size_t>& run_calls() const { return *counts_; }

 private:
  FakeSpec spec_;
  // deque: FakeWork holds a pointer to its slot, and deque append never
  // moves existing elements.
  std::shared_ptr<std::deque<size_t>> counts_ =
      std::make_shared<std::deque<size_t>>();
};

ForecastRequest Req(size_t id, double arrival, double deadline,
                    const ts::Frame* history) {
  ForecastRequest r;
  r.id = id;
  r.arrival_seconds = arrival;
  r.deadline_seconds = deadline;
  r.history = history;
  r.horizon = 4;
  return r;
}

// ---------------------------------------------------------------------
// Deterministic overload: exact shed counts at queue capacity k.
// ---------------------------------------------------------------------

TEST(ServeExecutorTest, OverloadShedsExactlyBeyondCapacity) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 1;
  spec.call_seconds = 1.0;  // each request takes exactly 1 virtual second
  FakeFactory primary(spec);
  ServeOptions options;
  options.queue.capacity = 2;
  ServeExecutor executor(primary.factory(), nullptr, options);

  // Six requests in a 0.5 s burst against a 1 s/request worker with two
  // queue slots: 0 serves immediately, 1 and 2 queue, 3-5 are shed.
  std::vector<ForecastRequest> requests;
  for (size_t i = 0; i < 6; ++i) {
    requests.push_back(
        Req(i, 0.1 * static_cast<double>(i), 100.0, &history));
  }
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  const std::vector<ServeStats>& stats = stats_or.value();
  ASSERT_EQ(stats.size(), 6u);

  EXPECT_EQ(stats[0].outcome, RequestOutcome::kServed);
  EXPECT_EQ(stats[1].outcome, RequestOutcome::kServed);
  EXPECT_EQ(stats[2].outcome, RequestOutcome::kServed);
  EXPECT_EQ(stats[3].outcome, RequestOutcome::kShedQueueFull);
  EXPECT_EQ(stats[4].outcome, RequestOutcome::kShedQueueFull);
  EXPECT_EQ(stats[5].outcome, RequestOutcome::kShedQueueFull);
  EXPECT_EQ(stats[3].status.code(), StatusCode::kResourceExhausted);

  // Exact virtual schedule: serves at 0, 1, 2; finishes at 1, 2, 3.
  EXPECT_DOUBLE_EQ(stats[0].finish_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stats[1].finish_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats[2].finish_seconds, 3.0);
  EXPECT_DOUBLE_EQ(stats[1].queue_wait_seconds, 0.9);
  EXPECT_DOUBLE_EQ(stats[2].latency_seconds, 2.8);

  EXPECT_EQ(executor.queue_stats().offered, 6u);
  EXPECT_EQ(executor.queue_stats().admitted, 3u);
  EXPECT_EQ(executor.queue_stats().rejected_full, 3u);

  ServeSummary summary = Summarize(stats);
  EXPECT_EQ(summary.served, 3u);
  EXPECT_EQ(summary.shed_queue_full, 3u);
  EXPECT_EQ(summary.shed(), 3u);
  EXPECT_DOUBLE_EQ(summary.p50_latency_seconds, 1.9);
  EXPECT_DOUBLE_EQ(summary.p99_latency_seconds, 2.8);
}

TEST(ServeExecutorTest, ServedRequestsMeetDeadlinesExpiredAreDropped) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 1;
  spec.call_seconds = 1.0;
  FakeFactory primary(spec);
  ServeOptions options;
  options.queue.capacity = 10;
  ServeExecutor executor(primary.factory(), nullptr, options);

  std::vector<ForecastRequest> requests;
  requests.push_back(Req(0, 0.0, 10.0, &history));
  // Expires at 0.9 but the worker frees up at 1.0: dropped at dequeue,
  // never served dead.
  requests.push_back(Req(1, 0.1, 0.9, &history));
  requests.push_back(Req(2, 0.2, 10.0, &history));
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  const std::vector<ServeStats>& stats = stats_or.value();

  EXPECT_EQ(stats[0].outcome, RequestOutcome::kServed);
  EXPECT_EQ(stats[1].outcome, RequestOutcome::kShedExpired);
  EXPECT_EQ(stats[1].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats[2].outcome, RequestOutcome::kServed);
  EXPECT_DOUBLE_EQ(stats[2].finish_seconds, 2.0);

  // Every served request finished within its deadline in virtual time.
  for (const ServeStats& st : stats) {
    if (st.outcome == RequestOutcome::kServed ||
        st.outcome == RequestOutcome::kServedDegraded) {
      EXPECT_LE(st.finish_seconds, /*deadline=*/10.0);
    }
  }
  // The expired request consumed zero pipeline work.
  ASSERT_EQ(primary.run_calls().size(), 2u);
}

TEST(ServeExecutorTest, EdfServesUrgentBeforePatient) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 1;
  spec.call_seconds = 1.0;
  FakeFactory primary(spec);
  ServeOptions options;
  options.queue.order = QueueOrder::kEarliestDeadlineFirst;
  ServeExecutor executor(primary.factory(), nullptr, options);

  std::vector<ForecastRequest> requests;
  requests.push_back(Req(0, 0.0, 100.0, &history));
  requests.push_back(Req(1, 0.1, 100.0, &history));  // patient
  requests.push_back(Req(2, 0.2, 2.2, &history));    // urgent
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  const std::vector<ServeStats>& stats = stats_or.value();
  // Under FIFO request 2 would start at 2.0 and finish at 3.0, blowing
  // its 2.2 deadline; EDF serves it ahead of request 1.
  EXPECT_EQ(stats[2].outcome, RequestOutcome::kServed);
  EXPECT_DOUBLE_EQ(stats[2].finish_seconds, 2.0);
  EXPECT_EQ(stats[1].outcome, RequestOutcome::kServed);
  EXPECT_DOUBLE_EQ(stats[1].finish_seconds, 3.0);
}

// ---------------------------------------------------------------------
// Hedged requests.
// ---------------------------------------------------------------------

TEST(ServeExecutorTest, HedgeFiresAndWinsCancellingThePrimary) {
  ts::Frame history = History(24);
  FakeSpec slow;
  slow.name = "slow-primary";
  slow.calls = 4;
  slow.call_seconds = 0.5;  // 2.0 s total
  FakeSpec fast;
  fast.name = "fast-hedge";
  fast.calls = 1;
  fast.call_seconds = 0.3;
  FakeFactory primary(slow);
  FakeFactory hedge(fast);
  ServeOptions options;
  options.hedge.enabled = true;
  options.hedge.delay_seconds = 0.5;
  ServeExecutor executor(primary.factory(), hedge.factory(), options);

  auto stats_or = executor.Run({Req(0, 0.0, 100.0, &history)});
  ASSERT_TRUE(stats_or.ok());
  const ServeStats& st = stats_or.value()[0];
  EXPECT_EQ(st.outcome, RequestOutcome::kServed);
  EXPECT_TRUE(st.hedge_fired);
  EXPECT_TRUE(st.hedge_won);
  EXPECT_EQ(st.attempts, 2);
  // Hedge launched at 0.5, finished at 0.8 — the client sees 0.8 s, not
  // the primary's 2.0 s.
  EXPECT_DOUBLE_EQ(st.finish_seconds, 0.8);
  EXPECT_DOUBLE_EQ(st.latency_seconds, 0.8);

  // The losing primary was re-run with cancellation at the winner's
  // finish: it issued only the call started before t=0.8 — the call
  // ledger proves cancellation stopped it mid-pipeline (4 calls when
  // unconstrained).
  ASSERT_EQ(primary.run_calls().size(), 2u);  // race run + cancelled replay
  EXPECT_EQ(primary.run_calls()[0], 4u);
  EXPECT_EQ(primary.run_calls()[1], 2u);
  ASSERT_EQ(hedge.run_calls().size(), 1u);
  EXPECT_EQ(hedge.run_calls()[0], 1u);
}

TEST(ServeExecutorTest, HedgeLosesAndIsCancelledMidPipeline) {
  ts::Frame history = History(24);
  FakeSpec prim;
  prim.name = "primary";
  prim.calls = 2;
  prim.call_seconds = 0.5;  // finishes at 1.0
  FakeSpec backup;
  backup.name = "hedge";
  backup.calls = 5;
  backup.call_seconds = 0.5;  // would take 2.5 s
  FakeFactory primary(prim);
  FakeFactory hedge(backup);
  ServeOptions options;
  options.hedge.enabled = true;
  options.hedge.delay_seconds = 0.3;
  ServeExecutor executor(primary.factory(), hedge.factory(), options);

  auto stats_or = executor.Run({Req(0, 0.0, 100.0, &history)});
  ASSERT_TRUE(stats_or.ok());
  const ServeStats& st = stats_or.value()[0];
  EXPECT_EQ(st.outcome, RequestOutcome::kServed);
  EXPECT_TRUE(st.hedge_fired);
  EXPECT_FALSE(st.hedge_won);
  EXPECT_DOUBLE_EQ(st.finish_seconds, 1.0);

  // Hedge started at 0.3 and was cancelled when the primary finished at
  // 1.0: it issued calls at 0.3 and 0.8 only — 2 of its 5.
  ASSERT_EQ(hedge.run_calls().size(), 1u);
  EXPECT_EQ(hedge.run_calls()[0], 2u);
  ASSERT_EQ(primary.run_calls().size(), 1u);
  EXPECT_EQ(primary.run_calls()[0], 2u);
}

TEST(ServeExecutorTest, FailFastPrimaryLaunchesHedgeImmediately) {
  ts::Frame history = History(24);
  FakeSpec broken;
  broken.name = "broken";
  broken.calls = 1;
  broken.call_seconds = 0.2;
  broken.fail = true;
  FakeSpec backup;
  backup.name = "hedge";
  backup.calls = 1;
  backup.call_seconds = 0.3;
  FakeFactory primary(broken);
  FakeFactory hedge(backup);
  ServeOptions options;
  options.hedge.enabled = true;
  options.hedge.delay_seconds = 1.0;  // primary fails long before this
  ServeExecutor executor(primary.factory(), hedge.factory(), options);

  auto stats_or = executor.Run({Req(0, 0.0, 100.0, &history)});
  ASSERT_TRUE(stats_or.ok());
  const ServeStats& st = stats_or.value()[0];
  EXPECT_EQ(st.outcome, RequestOutcome::kServed);
  EXPECT_TRUE(st.hedge_won);
  // Hedge launched at the failure instant (0.2), not the 1.0 s delay.
  EXPECT_DOUBLE_EQ(st.finish_seconds, 0.5);
}

TEST(ServeExecutorTest, FastPrimaryNeverHedges) {
  ts::Frame history = History(24);
  FakeSpec quick;
  quick.calls = 1;
  quick.call_seconds = 0.2;
  FakeFactory primary(quick);
  FakeFactory hedge(quick);
  ServeOptions options;
  options.hedge.enabled = true;
  options.hedge.delay_seconds = 0.5;
  ServeExecutor executor(primary.factory(), hedge.factory(), options);

  auto stats_or = executor.Run({Req(0, 0.0, 100.0, &history)});
  ASSERT_TRUE(stats_or.ok());
  EXPECT_FALSE(stats_or.value()[0].hedge_fired);
  EXPECT_TRUE(hedge.run_calls().empty());
}

// ---------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------

TEST(ServeExecutorTest, DrainFinishQueuedServesWaitingWork) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 1;
  spec.call_seconds = 1.0;
  FakeFactory primary(spec);
  ServeOptions options;
  options.drain_at_seconds = 0.5;
  options.drain_mode = DrainMode::kFinishQueued;
  ServeExecutor executor(primary.factory(), nullptr, options);

  std::vector<ForecastRequest> requests;
  requests.push_back(Req(0, 0.0, 100.0, &history));
  requests.push_back(Req(1, 0.2, 100.0, &history));  // queued pre-drain
  requests.push_back(Req(2, 0.7, 100.0, &history));  // arrives draining
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  const std::vector<ServeStats>& stats = stats_or.value();
  EXPECT_EQ(stats[0].outcome, RequestOutcome::kServed);
  EXPECT_EQ(stats[1].outcome, RequestOutcome::kServed);  // finished out
  EXPECT_DOUBLE_EQ(stats[1].finish_seconds, 2.0);
  EXPECT_EQ(stats[2].outcome, RequestOutcome::kCancelledDrain);
  EXPECT_EQ(stats[2].status.code(), StatusCode::kUnavailable);
}

TEST(ServeExecutorTest, DrainCancelQueuedCancelsQueueAndInFlight) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 2;
  spec.call_seconds = 0.5;
  FakeFactory primary(spec);
  ServeOptions options;
  options.drain_at_seconds = 1.5;
  options.drain_mode = DrainMode::kCancelQueued;
  ServeExecutor executor(primary.factory(), nullptr, options);

  std::vector<ForecastRequest> requests;
  requests.push_back(Req(0, 0.0, 100.0, &history));  // served pre-drain
  requests.push_back(Req(1, 0.1, 100.0, &history));  // cancelled in flight
  requests.push_back(Req(2, 0.2, 100.0, &history));  // cancelled in queue
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  const std::vector<ServeStats>& stats = stats_or.value();

  EXPECT_EQ(stats[0].outcome, RequestOutcome::kServed);
  EXPECT_DOUBLE_EQ(stats[0].finish_seconds, 1.0);

  // Request 1 started at 1.0, issued one call (1.0 -> 1.5), then hit
  // the drain cancellation exactly at 1.5: one call of two issued.
  EXPECT_EQ(stats[1].outcome, RequestOutcome::kCancelledDrain);
  EXPECT_EQ(stats[1].status.code(), StatusCode::kCancelled);
  ASSERT_EQ(primary.run_calls().size(), 2u);
  EXPECT_EQ(primary.run_calls()[1], 1u);

  // Request 2 never reached a worker.
  EXPECT_EQ(stats[2].outcome, RequestOutcome::kCancelledDrain);
  EXPECT_EQ(stats[2].status.code(), StatusCode::kCancelled);
  EXPECT_EQ(stats[2].attempts, 0);
}

// ---------------------------------------------------------------------
// Trace generation.
// ---------------------------------------------------------------------

TEST(TraceTest, DeterministicAndMonotone) {
  TraceOptions options;
  options.num_requests = 50;
  options.seed = 7;
  std::vector<Arrival> a = GenerateTrace(options);
  std::vector<Arrival> b = GenerateTrace(options);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    if (i > 0) {
      EXPECT_GT(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
    EXPECT_DOUBLE_EQ(a[i].deadline_seconds,
                     a[i].arrival_seconds + options.deadline_seconds);
  }
  options.seed = 8;
  std::vector<Arrival> c = GenerateTrace(options);
  EXPECT_NE(a[5].arrival_seconds, c[5].arrival_seconds);
}

TEST(TraceTest, BurstsCompressInterArrivals) {
  TraceOptions calm;
  calm.num_requests = 200;
  calm.arrival_rate = 10.0;
  calm.burst_factor = 1.0;  // no bursts
  calm.deadline_seconds = 0.0;
  TraceOptions bursty = calm;
  bursty.burst_factor = 8.0;
  bursty.burst_every_seconds = 5.0;
  bursty.burst_duration_seconds = 2.0;
  double calm_span = GenerateTrace(calm).back().arrival_seconds;
  double bursty_span = GenerateTrace(bursty).back().arrival_seconds;
  EXPECT_LT(bursty_span, calm_span);  // same count arrives sooner
  EXPECT_EQ(GenerateTrace(calm)[0].deadline_seconds,
            std::numeric_limits<double>::infinity());
}

// ---------------------------------------------------------------------
// End to end with the real MultiCast pipeline: cancellation and
// deadline expiry provably stop LLM calls, asserted via a backend call
// ledger under the whole serving stack.
// ---------------------------------------------------------------------

/// Counts Complete() calls into an owned SimulatedLlm and reports a
/// fixed per-call latency (by value on the result, per the backend
/// contract) so virtual time advances under the pipeline.
class CountingBackend final : public lm::LlmBackend {
 public:
  CountingBackend(size_t vocab_size, double call_seconds)
      : inner_(lm::ModelProfile::Llama2_7B(), vocab_size),
        call_seconds_(call_seconds) {}

  std::string name() const override { return "counting"; }
  size_t vocab_size() const override { return inner_.vocab_size(); }
  double last_latency_seconds() const override { return call_seconds_; }

  using LlmBackend::Complete;
  Result<lm::GenerationResult> Complete(
      const std::vector<token::TokenId>& prompt, size_t num_tokens,
      const lm::GrammarMask& mask, Rng* rng,
      const lm::CallOptions& call) override {
    ++calls;
    MC_ASSIGN_OR_RETURN(lm::GenerationResult result,
                        inner_.Complete(prompt, num_tokens, mask, rng, call));
    result.latency_seconds = call_seconds_;
    return result;
  }

  size_t calls = 0;

 private:
  lm::SimulatedLlm inner_;
  double call_seconds_;
};

TEST(ServePipelineTest, CancelledRequestIssuesNoLlmCalls) {
  ts::Frame history = History(24);
  CountingBackend backend(token::Vocabulary::Digits().size(), 0.05);
  forecast::MultiCastOptions options;
  options.num_samples = 5;
  options.backend = &backend;
  forecast::MultiCastForecaster forecaster(options);

  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  ctx.cancel.Cancel("client disconnected");
  auto result = forecaster.Forecast(history, 4, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(backend.calls, 0u);  // the ledger proof: zero calls issued
}

TEST(ServePipelineTest, DeadlineStopsLlmCallsMidSampleLoopAndDegrades) {
  ts::Frame history = History(24);
  CountingBackend backend(token::Vocabulary::Digits().size(), 0.05);
  forecast::MultiCastOptions options;
  options.num_samples = 5;
  options.backend = &backend;
  forecast::MultiCastForecaster forecaster(options);

  // 0.12 s of budget at 0.05 s/call: calls at t=0, 0.05 and 0.10 fit;
  // the clock sits at 0.15 (> deadline) before draw 4 — the loop stops.
  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  ctx.deadline = Deadline::At(0.12);
  auto result = forecaster.Forecast(history, 4, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(backend.calls, 3u);  // exactly 3 of 5 draws issued
  EXPECT_TRUE(result.value().degraded);
  EXPECT_EQ(result.value().samples_used, 3u);
  EXPECT_EQ(result.value().samples_requested, 5u);
  EXPECT_GT(result.value().virtual_seconds, 0.0);
}

TEST(ServePipelineTest, CancelMidLoopStopsFurtherCalls) {
  ts::Frame history = History(24);
  CountingBackend backend(token::Vocabulary::Digits().size(), 0.05);
  forecast::MultiCastOptions options;
  options.num_samples = 5;
  options.backend = &backend;
  forecast::MultiCastForecaster forecaster(options);

  // Auto-cancel at 0.08: two calls (t=0, 0.05) are issued, then the
  // token fires at 0.10 before the third.
  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  ctx.cancel.CancelAtTime(&clock, 0.08, "drain");
  auto result = forecaster.Forecast(history, 4, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(backend.calls, 2u);
  EXPECT_TRUE(result.value().degraded);
  EXPECT_EQ(result.value().samples_used, 2u);
}

TEST(ServePipelineTest, EndToEndServeSimIsDeterministic) {
  ts::Frame history = History(32);
  TraceOptions trace_options;
  trace_options.num_requests = 12;
  trace_options.arrival_rate = 8.0;
  trace_options.deadline_seconds = 0.6;
  trace_options.seed = 3;
  std::vector<Arrival> trace = GenerateTrace(trace_options);

  auto run_once = [&](ServeSummary* summary) {
    auto primary = [&history](const ForecastRequest& request) {
      forecast::MultiCastOptions options;
      options.num_samples = 3;
      options.seed = 42 + request.id;
      options.faults = lm::FaultProfile::Chaos(0.10, 99 + request.id);
      options.resilience.retries_enabled = true;
      return std::make_unique<forecast::MultiCastForecaster>(options);
    };
    ServeOptions options;
    options.queue.capacity = 4;
    ServeExecutor executor(primary, nullptr, options);
    std::vector<ForecastRequest> requests;
    for (size_t i = 0; i < trace.size(); ++i) {
      ForecastRequest r;
      r.id = i;
      r.arrival_seconds = trace[i].arrival_seconds;
      r.deadline_seconds = trace[i].deadline_seconds;
      r.history = &history;
      r.horizon = 4;
      requests.push_back(r);
    }
    auto stats_or = executor.Run(requests);
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    *summary = Summarize(stats_or.value());
    for (const ServeStats& st : stats_or.value()) {
      if (st.outcome == RequestOutcome::kServed ||
          st.outcome == RequestOutcome::kServedDegraded) {
        // Virtual-time guarantee: nothing is served past its deadline.
        EXPECT_LE(st.finish_seconds, st.id < trace.size()
                                         ? trace[st.id].deadline_seconds
                                         : 0.0);
      }
    }
  };
  ServeSummary first, second;
  run_once(&first);
  run_once(&second);
  EXPECT_EQ(first.total, 12u);
  EXPECT_EQ(first.served + first.served_degraded + first.shed() +
                first.cancelled_drain + first.failed,
            first.total);
  // Bit-reproducible: identical summaries on every run.
  EXPECT_EQ(first.served, second.served);
  EXPECT_EQ(first.served_degraded, second.served_degraded);
  EXPECT_EQ(first.shed_queue_full, second.shed_queue_full);
  EXPECT_EQ(first.shed_expired, second.shed_expired);
  EXPECT_EQ(first.failed, second.failed);
  EXPECT_DOUBLE_EQ(first.p99_latency_seconds, second.p99_latency_seconds);
  EXPECT_EQ(first.ledger.total(), second.ledger.total());
  EXPECT_EQ(first.retry.calls, second.retry.calls);
}

TEST(ServeSummaryTest, RejectionBreakdownBucketsByTerminalStatus) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 1;
  spec.call_seconds = 1.0;
  FakeFactory primary(spec);
  ServeOptions options;
  options.queue.capacity = 1;
  ServeExecutor executor(primary.factory(), nullptr, options);

  // A burst against capacity 1: request 0 serves (0 -> 1), request 1
  // takes the only queue slot but expires waiting (deadline 0.5 < 1),
  // and requests 2 and 3 find the queue full and shed at admission.
  std::vector<ForecastRequest> requests;
  requests.push_back(Req(0, 0.0, 100.0, &history));
  requests.push_back(Req(1, 0.1, 0.5, &history));
  requests.push_back(Req(2, 0.2, 100.0, &history));
  requests.push_back(Req(3, 0.3, 100.0, &history));
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  ServeSummary summary = Summarize(stats_or.value());
  EXPECT_EQ(summary.served, 1u);
  EXPECT_EQ(summary.rejections.queue_full, 2u);
  EXPECT_EQ(summary.rejections.deadline_expired, 1u);
  EXPECT_EQ(summary.rejections.backend_unavailable, 0u);
  EXPECT_EQ(summary.rejections.cancelled, 0u);
  EXPECT_EQ(summary.rejections.other, 0u);
  EXPECT_EQ(summary.rejections.total(),
            summary.total - summary.served - summary.served_degraded);
}

TEST(ServeSummaryTest, RejectionBreakdownSeesUnavailableBackends) {
  ts::Frame history = History(24);
  FakeSpec spec;
  spec.calls = 1;
  spec.call_seconds = 0.1;
  spec.fail = true;  // every pipeline run dies kUnavailable
  FakeFactory primary(spec);
  ServeExecutor executor(primary.factory(), nullptr, ServeOptions{});
  auto stats_or = executor.Run({Req(0, 0.0, 100.0, &history),
                                Req(1, 0.5, 100.0, &history)});
  ASSERT_TRUE(stats_or.ok());
  ServeSummary summary = Summarize(stats_or.value());
  EXPECT_EQ(summary.failed, 2u);
  EXPECT_EQ(summary.rejections.backend_unavailable, 2u);
  EXPECT_EQ(summary.rejections.total(), 2u);
}

}  // namespace
}  // namespace serve
}  // namespace multicast
