#include "forecast/auto_tune.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.h"
#include "metrics/metrics.h"
#include "ts/split.h"

namespace multicast {
namespace forecast {
namespace {

TEST(AutoTuneTest, ReturnsAWinnerWithAllCandidatesScored) {
  auto frame = data::MakeGasRate().ValueOrDie();
  AutoTuneOptions opts;
  opts.base.num_samples = 2;
  opts.digit_choices = {2, 3};
  auto result = AutoTuneMultiCast(frame, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().scores.size(), 6u);  // 3 muxes x 2 digit opts
  EXPECT_GT(result.value().validation_rmse, 0.0);
  // The winner's score is the minimum of all candidate scores.
  double min_score = result.value().scores[0].second;
  for (const auto& [label, score] : result.value().scores) {
    min_score = std::min(min_score, score);
  }
  EXPECT_DOUBLE_EQ(result.value().validation_rmse, min_score);
}

TEST(AutoTuneTest, WinnerFieldsComeFromGrid) {
  auto frame = data::MakeGasRate().ValueOrDie();
  AutoTuneOptions opts;
  opts.base.num_samples = 2;
  opts.muxes = {multiplex::MuxKind::kValueInterleave};
  opts.digit_choices = {3};
  auto result = AutoTuneMultiCast(frame, opts).ValueOrDie();
  EXPECT_EQ(result.options.mux, multiplex::MuxKind::kValueInterleave);
  EXPECT_EQ(result.options.digits, 3);
  // Non-swept fields inherit the base.
  EXPECT_EQ(result.options.num_samples, 2);
}

TEST(AutoTuneTest, DeterministicGivenSeed) {
  auto frame = data::MakeElectricity().ValueOrDie();
  AutoTuneOptions opts;
  opts.base.num_samples = 2;
  opts.base.seed = 11;
  auto r1 = AutoTuneMultiCast(frame, opts).ValueOrDie();
  auto r2 = AutoTuneMultiCast(frame, opts).ValueOrDie();
  EXPECT_EQ(r1.options.mux, r2.options.mux);
  EXPECT_DOUBLE_EQ(r1.validation_rmse, r2.validation_rmse);
}

TEST(AutoTuneTest, RejectsBadInputs) {
  auto frame = data::MakeGasRate().ValueOrDie();
  AutoTuneOptions no_mux;
  no_mux.muxes.clear();
  EXPECT_FALSE(AutoTuneMultiCast(frame, no_mux).ok());
  AutoTuneOptions no_folds;
  no_folds.folds = 0;
  EXPECT_FALSE(AutoTuneMultiCast(frame, no_folds).ok());
  AutoTuneOptions huge;
  huge.folds = 50;
  huge.horizon = 50;
  EXPECT_FALSE(AutoTuneMultiCast(frame, huge).ok());
}

TEST(AutoTuneTest, TunedConfigForecastsEndToEnd) {
  // The selected configuration must run on the full history.
  auto frame = data::MakeWeather().ValueOrDie();
  auto split = ts::SplitHorizon(frame, 20).ValueOrDie();
  AutoTuneOptions opts;
  opts.base.num_samples = 2;
  auto tuned = AutoTuneMultiCast(split.train, opts).ValueOrDie();
  MultiCastForecaster f(tuned.options);
  auto run = f.Forecast(split.train, 20);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (size_t d = 0; d < 4; ++d) {
    double rmse = metrics::Rmse(split.test.dim(d).values(),
                                run.value().forecast.dim(d).values())
                      .ValueOrDie();
    EXPECT_TRUE(std::isfinite(rmse));
  }
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
