#include "util/strings.h"

#include <gtest/gtest.h>

namespace multicast {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, TrailingDelimiter) {
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"17", "23", "26"};
  EXPECT_EQ(Join(parts, ","), "17,23,26");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(IsAllDigitsTest, Behaviour) {
  EXPECT_TRUE(IsAllDigits("0123456789"));
  EXPECT_TRUE(IsAllDigits("7"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-12"));
  EXPECT_FALSE(IsAllDigits("1.2"));
  EXPECT_FALSE(IsAllDigits(" 12"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%05d", 42), "00042");
}

TEST(StrFormatTest, LongOutput) {
  std::string s = StrFormat("%200d", 1);
  EXPECT_EQ(s.size(), 200u);
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.25, 3), "1.25");
  EXPECT_EQ(FormatDouble(3.0, 3), "3");
  EXPECT_EQ(FormatDouble(0.781, 3), "0.781");
  EXPECT_EQ(FormatDouble(2.7100, 3), "2.71");
}

TEST(FormatDoubleTest, NegativeAndZero) {
  EXPECT_EQ(FormatDouble(-1.5, 2), "-1.5");
  EXPECT_EQ(FormatDouble(0.0, 3), "0");
}

}  // namespace
}  // namespace multicast
