#include "extensions/imputation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace multicast {
namespace extensions {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ts::Frame PeriodicWithGap(size_t n, size_t gap_begin, size_t gap_len) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 4.0 * std::sin(phase);
    b[i] = 30.0 + 8.0 * std::cos(phase);
  }
  for (size_t i = gap_begin; i < gap_begin + gap_len; ++i) {
    a[i] = kNan;  // one NaN dimension marks the whole timestamp missing
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "gappy")
      .ValueOrDie();
}

TEST(FindGapsTest, LocatesMaximalRuns) {
  ts::Frame f = PeriodicWithGap(48, 20, 4);
  auto gaps = FindGaps(f);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].begin, 20u);
  EXPECT_EQ(gaps[0].end, 24u);
  EXPECT_EQ(gaps[0].length(), 4u);
}

TEST(FindGapsTest, MultipleGapsAndEdges) {
  std::vector<double> v = {kNan, 1.0, 2.0, kNan, kNan, 5.0, kNan};
  ts::Frame f =
      ts::Frame::FromSeries({ts::Series(v, "v")}, "f").ValueOrDie();
  auto gaps = FindGaps(f);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0].begin, 0u);
  EXPECT_EQ(gaps[0].end, 1u);
  EXPECT_EQ(gaps[1].begin, 3u);
  EXPECT_EQ(gaps[1].end, 5u);
  EXPECT_EQ(gaps[2].begin, 6u);
  EXPECT_EQ(gaps[2].end, 7u);
}

TEST(FindGapsTest, CleanFrameHasNone) {
  EXPECT_TRUE(FindGaps(PeriodicWithGap(24, 0, 0)).empty());
}

TEST(ImputeTest, FillsGapReasonably) {
  ts::Frame f = PeriodicWithGap(72, 36, 6);
  ImputeOptions opts;
  opts.multicast.num_samples = 3;
  auto filled = Impute(f, opts);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  // No NaNs remain.
  EXPECT_TRUE(FindGaps(filled.value()).empty());
  // Imputed values stay within the signal band.
  for (size_t t = 36; t < 42; ++t) {
    double v = filled.value().at(0, t);
    EXPECT_GT(v, 4.0);
    EXPECT_LT(v, 16.0);
    // True signal for comparison: within a couple of amplitudes.
    double truth = 10.0 + 4.0 * std::sin(2.0 * M_PI * t / 12.0);
    EXPECT_NEAR(v, truth, 6.0);
  }
}

TEST(ImputeTest, ObservedValuesUntouched) {
  ts::Frame f = PeriodicWithGap(72, 36, 6);
  ImputeOptions opts;
  opts.multicast.num_samples = 2;
  auto filled = Impute(f, opts).ValueOrDie();
  for (size_t t = 0; t < 36; ++t) {
    EXPECT_DOUBLE_EQ(filled.at(0, t), f.at(0, t));
    EXPECT_DOUBLE_EQ(filled.at(1, t), f.at(1, t));
  }
  for (size_t t = 42; t < 72; ++t) {
    EXPECT_DOUBLE_EQ(filled.at(0, t), f.at(0, t));
  }
}

TEST(ImputeTest, ForwardOnlyAtSeriesEnd) {
  ts::Frame f = PeriodicWithGap(60, 54, 6);  // gap runs to the end
  ImputeOptions opts;
  opts.multicast.num_samples = 2;
  auto filled = Impute(f, opts);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  EXPECT_TRUE(FindGaps(filled.value()).empty());
}

TEST(ImputeTest, BackwardOnlyAtSeriesStart) {
  ts::Frame f = PeriodicWithGap(60, 0, 6);  // gap at the very start
  ImputeOptions opts;
  opts.multicast.num_samples = 2;
  auto filled = Impute(f, opts);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  EXPECT_TRUE(FindGaps(filled.value()).empty());
}

TEST(ImputeTest, SeamAlignmentImprovesAccuracy) {
  // Hide a window of the periodic signal and compare recovery with and
  // without seam alignment; anchoring to the observed edges should not
  // hurt and typically helps.
  ts::Frame truth = PeriodicWithGap(96, 0, 0);
  ts::Frame gappy = truth;
  for (size_t t = 40; t < 52; ++t) gappy.dim(0)[t] = kNan;

  auto gap_rmse = [&](bool align) {
    ImputeOptions opts;
    opts.multicast.num_samples = 3;
    opts.align_seams = align;
    ts::Frame filled = Impute(gappy, opts).ValueOrDie();
    double ss = 0.0;
    for (size_t t = 40; t < 52; ++t) {
      double d = filled.at(0, t) - truth.at(0, t);
      ss += d * d;
    }
    return std::sqrt(ss / 12.0);
  };
  EXPECT_LE(gap_rmse(true), gap_rmse(false) * 1.5);
  EXPECT_LT(gap_rmse(true), 4.0);  // amplitude is 4
}

TEST(ImputeTest, SeamAlignmentOffStillFills) {
  ts::Frame f = PeriodicWithGap(72, 30, 5);
  ImputeOptions opts;
  opts.multicast.num_samples = 2;
  opts.align_seams = false;
  auto filled = Impute(f, opts);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  EXPECT_TRUE(FindGaps(filled.value()).empty());
}

TEST(ImputeTest, UnanchoredGapRejected) {
  // Whole series missing: nothing to prompt with.
  std::vector<double> v(20, kNan);
  ts::Frame f =
      ts::Frame::FromSeries({ts::Series(v, "v")}, "f").ValueOrDie();
  ImputeOptions opts;
  EXPECT_FALSE(Impute(f, opts).ok());
}

TEST(ImputeTest, NoGapIsIdentity) {
  ts::Frame f = PeriodicWithGap(36, 0, 0);
  ImputeOptions opts;
  auto filled = Impute(f, opts).ValueOrDie();
  for (size_t t = 0; t < f.length(); ++t) {
    EXPECT_DOUBLE_EQ(filled.at(0, t), f.at(0, t));
  }
}

TEST(ImputeTest, MultipleGapsFilledInOrder) {
  std::vector<double> a(96), b(96);
  for (size_t i = 0; i < 96; ++i) {
    a[i] = 10.0 + 4.0 * std::sin(2.0 * M_PI * i / 12.0);
    b[i] = 20.0 + 4.0 * std::cos(2.0 * M_PI * i / 12.0);
  }
  for (size_t i = 30; i < 34; ++i) a[i] = kNan;
  for (size_t i = 60; i < 63; ++i) b[i] = kNan;
  ts::Frame f = ts::Frame::FromSeries({ts::Series(a, "a"),
                                       ts::Series(b, "b")},
                                      "multi")
                    .ValueOrDie();
  ImputeOptions opts;
  opts.multicast.num_samples = 2;
  auto filled = Impute(f, opts);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  EXPECT_TRUE(FindGaps(filled.value()).empty());
}

}  // namespace
}  // namespace extensions
}  // namespace multicast
