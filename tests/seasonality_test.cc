#include "ts/seasonality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace multicast {
namespace ts {
namespace {

Series Sine(size_t n, size_t period, double noise_sd, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 5.0 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                          static_cast<double>(period)) +
           rng.NextGaussian(0.0, noise_sd);
  }
  return Series(std::move(v), "sine");
}

TEST(SeasonalityTest, FindsCleanPeriod) {
  auto s = DetectSeasonality(Sine(240, 12, 0.1, 1));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().period, 12u);
  EXPECT_GT(s.value().strength, 0.5);
}

TEST(SeasonalityTest, FindsNoisyPeriod) {
  auto s = DetectSeasonality(Sine(300, 24, 1.5, 2));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().period, 24u);
}

TEST(SeasonalityTest, WhiteNoiseHasNoPeriod) {
  Rng rng(3);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.NextGaussian();
  auto s = DetectSeasonality(Series(v, "noise"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().period, 0u);
}

TEST(SeasonalityTest, LinearTrendHasNoPeriod) {
  std::vector<double> v(200);
  Rng rng(4);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 0.5 * static_cast<double>(i) + rng.NextGaussian(0.0, 0.2);
  }
  auto s = DetectSeasonality(Series(v, "trend"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().period, 0u);
}

TEST(SeasonalityTest, PeriodPlusTrendStillDetected) {
  std::vector<double> v(240);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 0.3 * static_cast<double>(i) +
           4.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 16.0);
  }
  auto s = DetectSeasonality(Series(v, "mix"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().period, 16u);
}

TEST(SeasonalityTest, RangeOptionsRespected) {
  SeasonalityOptions opts;
  opts.min_period = 20;  // true period 12 is below the search window
  auto s = DetectSeasonality(Sine(240, 12, 0.1, 5), opts);
  ASSERT_TRUE(s.ok());
  // May find the harmonic at 24 instead, but never below 20.
  if (s.value().period != 0) {
    EXPECT_GE(s.value().period, 20u);
  }
}

TEST(SeasonalityTest, RejectsBadInputs) {
  EXPECT_FALSE(DetectSeasonality(Sine(5, 12, 0.1, 6)).ok());
  SeasonalityOptions opts;
  opts.min_period = 1;
  EXPECT_FALSE(DetectSeasonality(Sine(240, 12, 0.1, 7), opts).ok());
}

}  // namespace
}  // namespace ts
}  // namespace multicast
