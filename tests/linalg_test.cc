#include "baselines/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace multicast {
namespace baselines {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(MatrixTest, IdentityProduct) {
  Matrix i = Matrix::Identity(3);
  Matrix m(3, 3);
  double v = 1.0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  }
  auto prod = i.Multiply(m);
  ASSERT_TRUE(prod.ok());
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(prod.value().at(r, c), m.at(r, c));
    }
  }
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix m(2, 3);
  m.at(0, 2) = 5.0;
  m.at(1, 0) = -1.0;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
  Matrix tt = t.Transpose();
  EXPECT_DOUBLE_EQ(tt.at(1, 0), -1.0);
}

TEST(MatrixTest, KnownProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value().at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.value().at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.value().at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.value().at(1, 1), 50);
}

TEST(MatrixTest, ShapeMismatchRejected) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_FALSE(a.Multiply(b).ok());
  EXPECT_FALSE(a.Multiply(std::vector<double>{1.0}).ok());
}

TEST(MatrixTest, MatVec) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(1, 1) = 3;
  auto v = a.Multiply(std::vector<double>{1.0, 2.0});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), (std::vector<double>{2.0, 6.0}));
}

TEST(SolveTest, SolvesKnownSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = -1;
  auto x = SolveLinearSystem(a, {5.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(SolveTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 4.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(SolveTest, SingularRejected) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
}

TEST(SolveTest, NonSquareRejected) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
}

TEST(SolveTest, RandomRoundTrip) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (size_t r = 0; r < n; ++r) {
      x_true[r] = rng.NextGaussian();
      for (size_t c = 0; c < n; ++c) a.at(r, c) = rng.NextGaussian();
      a.at(r, r) += 3.0;  // keep well-conditioned
    }
    auto b = a.Multiply(x_true).ValueOrDie();
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x.value()[i], x_true[i], 1e-8);
    }
  }
}

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  // y = 3 x1 - 2 x2, no noise.
  Rng rng(7);
  const size_t n = 50;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double x1 = rng.NextGaussian();
    double x2 = rng.NextGaussian();
    x.at(i, 0) = x1;
    x.at(i, 1) = x2;
    y[i] = 3.0 * x1 - 2.0 * x2;
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 3.0, 1e-5);
  EXPECT_NEAR(beta.value()[1], -2.0, 1e-5);
}

TEST(LeastSquaresTest, NoisyRecoveryApproximate) {
  Rng rng(9);
  const size_t n = 2000;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double xi = rng.NextGaussian();
    x.at(i, 0) = xi;
    y[i] = 1.5 * xi + rng.NextGaussian(0.0, 0.5);
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 1.5, 0.05);
}

TEST(LeastSquaresTest, RejectsBadShapes) {
  Matrix x(3, 5);
  EXPECT_FALSE(LeastSquares(x, {1, 2, 3}).ok());  // under-determined
  Matrix x2(3, 1);
  EXPECT_FALSE(LeastSquares(x2, {1, 2}).ok());  // row mismatch
}

}  // namespace
}  // namespace baselines
}  // namespace multicast
