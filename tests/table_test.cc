#include "util/table.h"

#include <gtest/gtest.h>

namespace multicast {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"Model", "RMSE"});
  t.AddRow({"MultiCast (DI)", "0.781"});
  t.AddRow({"ARIMA", "0.92"});
  std::string out = t.Render();
  EXPECT_NE(out.find("Model          | RMSE"), std::string::npos);
  EXPECT_NE(out.find("MultiCast (DI) | 0.781"), std::string::npos);
  EXPECT_NE(out.find("ARIMA"), std::string::npos);
}

TEST(TextTableTest, HeaderRulePresent) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  std::string out = t.Render();
  EXPECT_NE(out.find("--+--"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string out = t.Render();
  // Renders without crashing and includes the value.
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTableTest, WideCellGrowsColumn) {
  TextTable t({"x"});
  t.AddRow({"very-long-cell-content"});
  std::string out = t.Render();
  EXPECT_NE(out.find("very-long-cell-content"), std::string::npos);
}

TEST(TextTableTest, EveryLineEndsWithNewline) {
  TextTable t({"a"});
  t.AddRow({"1"});
  t.AddRow({"2"});
  std::string out = t.Render();
  EXPECT_EQ(out.back(), '\n');
  // 1 header + 1 rule + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace multicast
