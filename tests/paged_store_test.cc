#include "lm/paged_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "lm/mixture_model.h"
#include "lm/ngram_model.h"
#include "lm/prefix_cache.h"
#include "util/metrics.h"

namespace multicast {
namespace lm {
namespace {

std::shared_ptr<BlockPool> MakePool(size_t block_span, size_t max_blocks,
                                    bool enabled = true) {
  PagedMemoryOptions options;
  options.enabled = enabled;
  options.block_span = block_span;
  options.max_blocks = max_blocks;
  return std::make_shared<BlockPool>(options);
}

// Deterministic token stream (LCG), independent of any global RNG.
std::vector<token::TokenId> TokenStream(size_t n, size_t vocab,
                                        uint64_t seed) {
  std::vector<token::TokenId> out;
  out.reserve(n);
  uint64_t s = seed;
  for (size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    out.push_back(static_cast<token::TokenId>((s >> 33) % vocab));
  }
  return out;
}

// Bit-identity: every probability must be the exact same double.
void ExpectSameDistribution(const LanguageModel& a, const LanguageModel& b) {
  const std::vector<double> pa = a.NextDistribution();
  const std::vector<double> pb = b.NextDistribution();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "token " << i;
  }
}

TEST(BlockPoolTest, AllocatesRecyclesAndTracksHighWater) {
  auto pool = MakePool(/*block_span=*/8, /*max_blocks=*/0);
  BlockRef a = pool->Allocate(128);
  BlockRef b = pool->Allocate(128);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->bytes(), 128u);
  BlockPoolStats stats = pool->stats();
  EXPECT_EQ(stats.blocks_live, 2u);
  EXPECT_EQ(stats.blocks_peak, 2u);
  EXPECT_EQ(stats.bytes_live, 256u);
  EXPECT_EQ(stats.bytes_peak, 256u);
  EXPECT_EQ(stats.blocks_free, 0u);
  EXPECT_EQ(pool->Fullness(), 0.0);  // unbounded pool: no pressure

  a.reset();
  stats = pool->stats();
  EXPECT_EQ(stats.blocks_live, 1u);
  EXPECT_EQ(stats.blocks_free, 1u);
  EXPECT_EQ(stats.blocks_peak, 2u);  // high-water mark sticks

  // Same-size allocation comes from the freelist.
  BlockRef c = pool->Allocate(128);
  ASSERT_NE(c, nullptr);
  stats = pool->stats();
  EXPECT_EQ(stats.blocks_recycled, 1u);
  EXPECT_EQ(stats.blocks_live, 2u);
  EXPECT_EQ(stats.blocks_free, 0u);
}

TEST(BlockPoolTest, CapRefusesWithExhaustionEventAndFullness) {
  auto pool = MakePool(/*block_span=*/8, /*max_blocks=*/2);
  BlockRef a = pool->Allocate(64);
  BlockRef b = pool->Allocate(64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool->Fullness(), 1.0);
  BlockRef c = pool->Allocate(64);
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(pool->stats().exhaustion_events, 1u);
  // Releasing a block makes room again.
  a.reset();
  EXPECT_EQ(pool->Fullness(), 0.5);
  BlockRef d = pool->Allocate(64);
  EXPECT_NE(d, nullptr);
}

TEST(BlockPoolTest, BlockOutlivesPoolObject) {
  BlockRef survivor;
  {
    auto pool = MakePool(/*block_span=*/4, /*max_blocks=*/0);
    survivor = pool->Allocate(32);
    ASSERT_NE(survivor, nullptr);
  }
  // The deleter holds the pool internals alive; releasing after the
  // BlockPool object died must be safe (ASan-verified).
  std::memset(survivor->data(), 0xAB, survivor->bytes());
  survivor.reset();
}

TEST(BlockPoolTest, SessionAccountingAndMetricsRoundtrip) {
  auto pool = MakePool(/*block_span=*/8, /*max_blocks=*/0);
  BlockRef a = pool->Allocate(100);
  pool->NoteSessionEnd(/*overlay_bytes=*/100, /*base_bytes=*/400);
  pool->NoteSessionEnd(/*overlay_bytes=*/300, /*base_bytes=*/400);
  BlockPoolStats stats = pool->stats();
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.session_overlay_bytes, 400u);
  EXPECT_EQ(stats.session_base_bytes, 800u);
  EXPECT_EQ(stats.bytes_per_session(), 200.0);
  EXPECT_EQ(stats.sharing_ratio(), 1200.0 / 100.0);

  util::MetricsRegistry registry;
  pool->PublishMetrics(&registry);
  const util::MetricsSnapshot snap = registry.Snapshot();
  BlockPoolStats back = BlockPoolStatsFromSnapshot(snap, "lm.mem.");
  EXPECT_EQ(back.blocks_live, stats.blocks_live);
  EXPECT_EQ(back.bytes_peak, stats.bytes_peak);
  EXPECT_EQ(back.sessions, stats.sessions);
  EXPECT_EQ(back.session_overlay_bytes, stats.session_overlay_bytes);
  EXPECT_EQ(snap.Value("lm.mem.pool_fullness"), 0.0);
}

TEST(PagedContextStoreTest, InsertFindForEachAndIndexGrowth) {
  auto pool = MakePool(/*block_span=*/16, /*max_blocks=*/0);
  PagedContextStore store(pool, /*slot_bytes=*/12);  // rounds up to 16
  EXPECT_EQ(store.slot_bytes(), 16u);
  const size_t n = 1000;
  for (uint64_t k = 1; k <= n; ++k) {
    std::byte* slot = store.Insert(k);
    ASSERT_NE(slot, nullptr);
    uint64_t tag = k * 3;
    std::memcpy(slot, &tag, sizeof(tag));
  }
  EXPECT_EQ(store.size(), n);
  EXPECT_EQ(store.num_blocks(), (n + 15) / 16);
  for (uint64_t k = 1; k <= n; ++k) {
    const std::byte* slot = store.Find(k);
    ASSERT_NE(slot, nullptr);
    uint64_t tag = 0;
    std::memcpy(&tag, slot, sizeof(tag));
    EXPECT_EQ(tag, k * 3);
  }
  EXPECT_EQ(store.Find(n + 1), nullptr);
  // FindMutable hits the same slot.
  std::byte* mut = store.FindMutable(7);
  ASSERT_NE(mut, nullptr);
  uint64_t updated = 99;
  std::memcpy(mut, &updated, sizeof(updated));
  uint64_t back = 0;
  std::memcpy(&back, store.Find(7), sizeof(back));
  EXPECT_EQ(back, 99u);
  // ForEach visits every live entry exactly once.
  size_t visited = 0;
  uint64_t key_sum = 0;
  store.ForEach([&](uint64_t key, const std::byte*) {
    ++visited;
    key_sum += key;
  });
  EXPECT_EQ(visited, n);
  EXPECT_EQ(key_sum, n * (n + 1) / 2);
  EXPECT_GT(store.MemoryBytes(), n * 16);
}

TEST(PagedContextStoreTest, InsertReturnsNullOnPoolExhaustion) {
  auto pool = MakePool(/*block_span=*/4, /*max_blocks=*/1);
  PagedContextStore store(pool, /*slot_bytes=*/8);
  for (uint64_t k = 1; k <= 4; ++k) {
    ASSERT_NE(store.Insert(k), nullptr);
  }
  EXPECT_EQ(store.Insert(5), nullptr);  // cap hit: graceful refusal
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(pool->stats().exhaustion_events, 1u);
  // The refused insert left the store consistent.
  EXPECT_NE(store.Find(4), nullptr);
  EXPECT_EQ(store.Find(5), nullptr);
}

TEST(PagedContextStoreTest, MergeCompactAdoptsFullBlocksWithoutCopy) {
  auto pool = MakePool(/*block_span=*/4, /*max_blocks=*/0);
  auto layer = std::make_shared<PagedContextStore>(pool, /*slot_bytes=*/8);
  for (uint64_t k = 1; k <= 8; ++k) {  // exactly two full blocks
    std::byte* slot = layer->Insert(k);
    ASSERT_NE(slot, nullptr);
    std::memcpy(slot, &k, sizeof(k));
  }
  const size_t live_before = pool->stats().blocks_live;
  std::vector<std::shared_ptr<const PagedContextStore>> layers = {layer};
  std::shared_ptr<PagedContextStore> merged =
      PagedContextStore::MergeCompact(layers, pool);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->size(), 8u);
  // Every slot survives unshadowed, so both blocks are adopted by
  // refcount — no new allocation.
  EXPECT_EQ(pool->stats().blocks_live, live_before);
  EXPECT_EQ(merged->num_blocks(), 2u);
  for (uint64_t k = 1; k <= 8; ++k) {
    const std::byte* slot = merged->Find(k);
    ASSERT_NE(slot, nullptr);
    uint64_t v = 0;
    std::memcpy(&v, slot, sizeof(v));
    EXPECT_EQ(v, k);
  }
}

TEST(PagedContextStoreTest, MergeCompactNewestWinsAndCopiesShadowed) {
  auto pool = MakePool(/*block_span=*/8, /*max_blocks=*/0);
  auto bottom = std::make_shared<PagedContextStore>(pool, /*slot_bytes=*/8);
  for (uint64_t k = 1; k <= 8; ++k) {
    std::byte* slot = bottom->Insert(k);
    ASSERT_NE(slot, nullptr);
    uint64_t v = 100 + k;
    std::memcpy(slot, &v, sizeof(v));
  }
  auto top = std::make_shared<PagedContextStore>(pool, /*slot_bytes=*/8);
  for (uint64_t k = 1; k <= 5; ++k) {  // shadows 5 of bottom's 8
    std::byte* slot = top->Insert(k);
    ASSERT_NE(slot, nullptr);
    uint64_t v = 200 + k;
    std::memcpy(slot, &v, sizeof(v));
  }
  std::vector<std::shared_ptr<const PagedContextStore>> layers = {bottom,
                                                                  top};
  std::shared_ptr<PagedContextStore> merged =
      PagedContextStore::MergeCompact(layers, pool);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->size(), 8u);
  for (uint64_t k = 1; k <= 8; ++k) {
    const std::byte* slot = merged->Find(k);
    ASSERT_NE(slot, nullptr);
    uint64_t v = 0;
    std::memcpy(&v, slot, sizeof(v));
    // The top layer shadows the bottom for keys 1..5 (newest wins).
    EXPECT_EQ(v, k <= 5 ? 200 + k : 100 + k) << "key " << k;
  }
}

// The tentpole invariant: a paged model holds byte-for-byte the same
// integers a plain model holds, so every distribution is bit-identical
// — across observation, freeze/fork chains and base-layer compaction.
TEST(PagedModelIdentityTest, NGramMatchesPlainThroughForkChains) {
  const size_t vocab = 13;
  NGramOptions plain_opts;
  plain_opts.max_base_layers = 8;  // plain chain left uncompacted longer
  NGramOptions paged_opts;
  paged_opts.max_base_layers = 2;  // paged chain compacts aggressively
  auto pool = MakePool(/*block_span=*/16, /*max_blocks=*/0);

  auto plain = std::make_unique<NGramLanguageModel>(vocab, plain_opts);
  auto paged =
      std::make_unique<NGramLanguageModel>(vocab, paged_opts, pool);
  EXPECT_FALSE(plain->paged());
  EXPECT_TRUE(paged->paged());

  const std::vector<token::TokenId> stream = TokenStream(2400, vocab, 7);
  size_t at = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 400; ++i, ++at) {
      plain->Observe(stream[at]);
      paged->Observe(stream[at]);
      if (i % 97 == 0) ExpectSameDistribution(*plain, *paged);
    }
    ExpectSameDistribution(*plain, *paged);
    EXPECT_EQ(plain->num_entries(), paged->num_entries());
    plain->Freeze();
    paged->Freeze();
    auto plain_fork = plain->Fork();
    auto paged_fork = paged->Fork();
    plain.reset(
        static_cast<NGramLanguageModel*>(plain_fork.release()));
    paged.reset(
        static_cast<NGramLanguageModel*>(paged_fork.release()));
  }
  // Aggressive compaction really ran: the paged chain stays clamped.
  EXPECT_LE(paged->num_base_layers(), 2u);
  EXPECT_GT(plain->num_base_layers(), 2u);
  ExpectSameDistribution(*plain, *paged);
}

TEST(PagedModelIdentityTest, NGramMatchesPlainUnderPoolExhaustion) {
  const size_t vocab = 11;
  // A pool too small for the model: most entries take the spill path.
  auto pool = MakePool(/*block_span=*/4, /*max_blocks=*/2);
  NGramLanguageModel plain(vocab, NGramOptions{});
  NGramLanguageModel paged(vocab, NGramOptions{}, pool);
  const std::vector<token::TokenId> stream = TokenStream(1500, vocab, 21);
  for (size_t i = 0; i < stream.size(); ++i) {
    plain.Observe(stream[i]);
    paged.Observe(stream[i]);
    if (i % 131 == 0) ExpectSameDistribution(plain, paged);
  }
  ExpectSameDistribution(plain, paged);
  // Exhaustion happened and degraded gracefully (spill, not failure).
  EXPECT_GT(pool->stats().exhaustion_events, 0u);
  EXPECT_EQ(plain.num_entries(), paged.num_entries());
}

TEST(PagedModelIdentityTest, NGramWideCountPromotionStaysIdentical) {
  const size_t vocab = 3;
  auto pool = MakePool(/*block_span=*/16, /*max_blocks=*/0);
  NGramLanguageModel plain(vocab, NGramOptions{});
  NGramLanguageModel paged(vocab, NGramOptions{}, pool);
  // One context observed past the u16 ceiling forces the narrow slot to
  // promote to a wide overflow entry mid-stream.
  for (int i = 0; i < 70000; ++i) {
    plain.Observe(0);
    paged.Observe(0);
  }
  ExpectSameDistribution(plain, paged);
  plain.Observe(1);
  paged.Observe(1);
  ExpectSameDistribution(plain, paged);
}

TEST(PagedModelIdentityTest, MixtureMatchesPlainThroughForkChains) {
  const size_t vocab = 9;
  MixtureOptions plain_opts;
  plain_opts.max_base_layers = 8;
  MixtureOptions paged_opts;
  paged_opts.max_base_layers = 2;
  auto pool = MakePool(/*block_span=*/16, /*max_blocks=*/0);

  auto plain = std::make_unique<MixtureLanguageModel>(vocab, plain_opts);
  auto paged =
      std::make_unique<MixtureLanguageModel>(vocab, paged_opts, pool);
  const std::vector<token::TokenId> stream = TokenStream(1800, vocab, 3);
  size_t at = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 300; ++i, ++at) {
      plain->Observe(stream[at]);
      paged->Observe(stream[at]);
      if (i % 89 == 0) ExpectSameDistribution(*plain, *paged);
    }
    ExpectSameDistribution(*plain, *paged);
    EXPECT_EQ(plain->num_nodes(), paged->num_nodes());
    plain->Freeze();
    paged->Freeze();
    auto plain_fork = plain->Fork();
    auto paged_fork = paged->Fork();
    plain.reset(
        static_cast<MixtureLanguageModel*>(plain_fork.release()));
    paged.reset(
        static_cast<MixtureLanguageModel*>(paged_fork.release()));
  }
  EXPECT_LE(paged->num_base_layers(), 2u);
  ExpectSameDistribution(*plain, *paged);
}

TEST(PagedModelIdentityTest, MixtureMatchesPlainUnderPoolExhaustion) {
  const size_t vocab = 7;
  auto pool = MakePool(/*block_span=*/4, /*max_blocks=*/2);
  MixtureLanguageModel plain(vocab, MixtureOptions{});
  MixtureLanguageModel paged(vocab, MixtureOptions{}, pool);
  const std::vector<token::TokenId> stream = TokenStream(1200, vocab, 17);
  for (size_t i = 0; i < stream.size(); ++i) {
    plain.Observe(stream[i]);
    paged.Observe(stream[i]);
    if (i % 113 == 0) ExpectSameDistribution(plain, paged);
  }
  ExpectSameDistribution(plain, paged);
  EXPECT_GT(pool->stats().exhaustion_events, 0u);
}

TEST(PagedModelIdentityTest, SessionEndFeedsPoolAccounting) {
  auto pool = MakePool(/*block_span=*/16, /*max_blocks=*/0);
  {
    NGramLanguageModel model(5, NGramOptions{}, pool);
    model.ObserveAll(TokenStream(200, 5, 9));
    MemoryFootprint fp = model.ApproxMemoryBytes();
    EXPECT_GT(fp.overlay_bytes, 0u);
  }
  BlockPoolStats stats = pool->stats();
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_GT(stats.session_overlay_bytes, 0u);

  // Accounting-only pools (enabled = false) measure plain-mode models
  // on the same path, giving benches one measurement source.
  auto accounting = MakePool(/*block_span=*/16, /*max_blocks=*/0,
                             /*enabled=*/false);
  {
    NGramLanguageModel model(5, NGramOptions{}, accounting);
    EXPECT_FALSE(model.paged());
    model.ObserveAll(TokenStream(200, 5, 9));
  }
  EXPECT_EQ(accounting->stats().sessions, 1u);
  EXPECT_GT(accounting->stats().session_overlay_bytes, 0u);
  EXPECT_EQ(accounting->stats().blocks_live, 0u);  // no paged storage
}

// Satellite: evicting a cached prefix while live forks still hold its
// frozen layers must keep every block alive by refcount; the blocks
// return to the freelist only when the last fork dies.
TEST(PagedEvictionLivenessTest, EvictedPrefixBlocksSurviveLiveForks) {
  const size_t vocab = 13;
  auto pool = MakePool(/*block_span=*/8, /*max_blocks=*/0);
  PrefixCache cache(/*capacity=*/1);
  const uint64_t fingerprint = 0xFEEDu;
  auto fresh = [&]() -> std::unique_ptr<LanguageModel> {
    return std::make_unique<NGramLanguageModel>(vocab, NGramOptions{},
                                                pool);
  };
  const std::vector<token::TokenId> prompt1 = TokenStream(300, vocab, 4);
  const std::vector<token::TokenId> prompt2 = TokenStream(300, vocab, 5);

  // N live forks off the cached prompt1 state.
  std::vector<std::unique_ptr<LanguageModel>> forks;
  for (int i = 0; i < 3; ++i) {
    forks.push_back(cache.AcquireSession(fingerprint, prompt1, fresh));
  }
  ASSERT_EQ(cache.stats().misses, 1u);
  ASSERT_EQ(cache.stats().full_hits, 2u);
  const size_t free_before_evict = pool->stats().blocks_free;

  // Capacity 1: caching prompt2 evicts prompt1's entry.
  auto other = cache.AcquireSession(fingerprint, prompt2, fresh);
  ASSERT_EQ(cache.stats().evictions, 1u);

  // The forks still hold prompt1's frozen blocks: nothing was freed by
  // the eviction itself, and the forks still read the exact state a
  // fresh model fed prompt1 would hold.
  EXPECT_EQ(pool->stats().blocks_free, free_before_evict);
  NGramLanguageModel reference(vocab, NGramOptions{});
  reference.ObserveAll(prompt1);
  for (const auto& fork : forks) ExpectSameDistribution(reference, *fork);

  // Forks die one by one; only the LAST release returns the frozen
  // blocks to the freelist.
  forks.pop_back();
  forks.pop_back();
  const size_t free_with_one_fork = pool->stats().blocks_free;
  forks.clear();
  EXPECT_GT(pool->stats().blocks_free, free_with_one_fork);
  EXPECT_EQ(pool->stats().sessions, 3u);
}

// Satellite: PrefixCache::bytes() reports true resident bytes and the
// metrics gauge mirrors it.
TEST(PrefixCacheBytesTest, BytesGaugeTracksResidentState) {
  const size_t vocab = 13;
  auto pool = MakePool(/*block_span=*/8, /*max_blocks=*/0);
  PrefixCache cache(/*capacity=*/4);
  auto fresh = [&]() -> std::unique_ptr<LanguageModel> {
    return std::make_unique<NGramLanguageModel>(vocab, NGramOptions{},
                                                pool);
  };
  EXPECT_EQ(cache.bytes(), 0u);
  auto s1 = cache.AcquireSession(0xA, TokenStream(200, vocab, 1), fresh);
  const size_t bytes_one = cache.bytes();
  EXPECT_GT(bytes_one, 0u);
  auto s2 = cache.AcquireSession(0xA, TokenStream(200, vocab, 2), fresh);
  const size_t bytes_two = cache.bytes();
  EXPECT_GT(bytes_two, bytes_one);

  util::MetricsRegistry registry;
  cache.PublishMetrics(&registry);
  EXPECT_EQ(registry.Snapshot().Value("prefix_cache.bytes"),
            static_cast<double>(bytes_two));

  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
}

// Paged layers should be denser than the plain map representation for
// the same logical state (that is the point of the subsystem).
TEST(PagedModelIdentityTest, PagedFootprintBeatsPlainMaps) {
  const size_t vocab = 13;
  auto pool = MakePool(/*block_span=*/32, /*max_blocks=*/0);
  NGramLanguageModel plain(vocab, NGramOptions{});
  NGramLanguageModel paged(vocab, NGramOptions{}, pool);
  const std::vector<token::TokenId> stream = TokenStream(3000, vocab, 31);
  plain.ObserveAll(stream);
  paged.ObserveAll(stream);
  ExpectSameDistribution(plain, paged);
  const size_t plain_bytes = plain.ApproxMemoryBytes().total();
  const size_t paged_bytes = paged.ApproxMemoryBytes().total();
  EXPECT_GT(plain_bytes, 0u);
  EXPECT_GT(paged_bytes, 0u);
  EXPECT_LT(paged_bytes * 2, plain_bytes)
      << "paged " << paged_bytes << " vs plain " << plain_bytes;
}

}  // namespace
}  // namespace lm
}  // namespace multicast
