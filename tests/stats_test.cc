#include "ts/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace multicast {
namespace ts {
namespace {

TEST(SummarizeTest, BasicMoments) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(SummarizeTest, EmptyIsZeroed) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  Summary s = Summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(MeanVarianceTest, Agreement) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {3.0, 2.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 2.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({5.0, 5.0}, {1.0, 2.0}), 0.0);
}

TEST(PearsonTest, IndependentNoiseNearZero) {
  Rng rng(42);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian());
  }
  EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.05);
}

TEST(AutocorrelationTest, Lag0IsOne) {
  std::vector<double> v = {1.0, 3.0, 2.0, 5.0, 4.0};
  EXPECT_NEAR(Autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> v;
  for (int i = 0; i < 400; ++i) v.push_back(std::sin(2 * M_PI * i / 20.0));
  EXPECT_GT(Autocorrelation(v, 20), 0.9);
  EXPECT_LT(Autocorrelation(v, 10), -0.9);
}

TEST(AutocorrelationTest, LagTooLargeIsZero) {
  EXPECT_DOUBLE_EQ(Autocorrelation({1.0, 2.0}, 5), 0.0);
}

TEST(QuantileTest, ExactPoints) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.3), 3.0);
}

TEST(QuantileTest, ClampsAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({2.0}, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({2.0}, 2.0), 2.0);
}

TEST(MedianTest, OddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(MedianTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Median({9.0, 1.0, 5.0, 2.0, 7.0}), 5.0);
}

}  // namespace
}  // namespace ts
}  // namespace multicast
