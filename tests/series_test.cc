#include "ts/series.h"

#include <gtest/gtest.h>

namespace multicast {
namespace ts {
namespace {

TEST(SeriesTest, ConstructionAndAccess) {
  Series s({1.0, 2.0, 3.0}, "temp");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_EQ(s.name(), "temp");
}

TEST(SeriesTest, DefaultIsEmpty) {
  Series s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SeriesTest, MutableAccess) {
  Series s({1.0, 2.0});
  s[0] = 9.0;
  s.push_back(5.0);
  EXPECT_DOUBLE_EQ(s[0], 9.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2], 5.0);
}

TEST(SeriesTest, SliceValid) {
  Series s({0.0, 1.0, 2.0, 3.0, 4.0}, "x");
  auto r = s.Slice(1, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().values(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.value().name(), "x");
}

TEST(SeriesTest, SliceEmptyRange) {
  Series s({1.0, 2.0});
  auto r = s.Slice(1, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(SeriesTest, SliceOutOfRange) {
  Series s({1.0, 2.0});
  EXPECT_FALSE(s.Slice(0, 3).ok());
  EXPECT_FALSE(s.Slice(2, 1).ok());
}

TEST(SeriesTest, HeadAndTail) {
  Series s({0.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(s.Head(2).values(), (std::vector<double>{0.0, 1.0}));
  EXPECT_EQ(s.Tail(2).values(), (std::vector<double>{2.0, 3.0}));
}

TEST(SeriesTest, HeadTailClampToSize) {
  Series s({1.0, 2.0});
  EXPECT_EQ(s.Head(10).size(), 2u);
  EXPECT_EQ(s.Tail(10).size(), 2u);
  EXPECT_EQ(s.Head(0).size(), 0u);
}

}  // namespace
}  // namespace ts
}  // namespace multicast
