#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace multicast {
namespace metrics {
namespace {

TEST(RmseTest, KnownValue) {
  auto r = Rmse({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
  r = Rmse({0.0, 0.0}, {3.0, 4.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), std::sqrt(12.5), 1e-12);
}

TEST(RmseTest, SymmetricInArguments) {
  auto a = Rmse({1.0, 5.0}, {2.0, 3.0}).ValueOrDie();
  auto b = Rmse({2.0, 3.0}, {1.0, 5.0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RmseTest, RejectsBadShapes) {
  EXPECT_FALSE(Rmse({}, {}).ok());
  EXPECT_FALSE(Rmse({1.0}, {1.0, 2.0}).ok());
}

TEST(MaeTest, KnownValue) {
  auto r = Mae({1.0, 2.0, 3.0}, {2.0, 0.0, 3.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(MaeTest, LessOrEqualRmse) {
  // Jensen: MAE <= RMSE always.
  std::vector<double> a = {1.0, 5.0, -2.0, 7.5};
  std::vector<double> b = {0.5, 6.0, 1.0, 6.0};
  EXPECT_LE(Mae(a, b).ValueOrDie(), Rmse(a, b).ValueOrDie() + 1e-12);
}

TEST(MapeTest, KnownValue) {
  auto r = Mape({10.0, 20.0}, {11.0, 18.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), (0.1 + 0.1) / 2 * 100, 1e-9);
}

TEST(MapeTest, SkipsNearZeroActuals) {
  auto r = Mape({0.0, 10.0}, {5.0, 11.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 10.0, 1e-9);
}

TEST(MapeTest, AllZeroActualsRejected) {
  EXPECT_FALSE(Mape({0.0, 0.0}, {1.0, 2.0}).ok());
}

TEST(SmapeTest, KnownValue) {
  auto r = Smape({10.0}, {10.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
  r = Smape({10.0}, {0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 200.0, 1e-9);  // max of the 0..200 form
}

TEST(SmapeTest, BoundedByTwoHundred) {
  auto r = Smape({1.0, -5.0, 100.0}, {-3.0, 5.0, 0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value(), 200.0 + 1e-9);
  EXPECT_GE(r.value(), 0.0);
}

TEST(SmapeTest, AllZeroPairsRejected) {
  EXPECT_FALSE(Smape({0.0}, {0.0}).ok());
}

}  // namespace
}  // namespace metrics
}  // namespace multicast
