#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace multicast {
namespace {

TEST(CsvTest, ParsesWithHeader) {
  auto r = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CsvTable& t = r.value();
  EXPECT_EQ(t.column_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.columns[0][0], 1.0);
  EXPECT_DOUBLE_EQ(t.columns[1][1], 4.0);
}

TEST(CsvTest, ParsesWithoutHeader) {
  auto r = ParseCsv("1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().column_names, (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(CsvTest, HandlesCrlfAndBlankLines) {
  auto r = ParseCsv("a,b\r\n1,2\r\n\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(CsvTest, NegativeAndScientific) {
  auto r = ParseCsv("x\n-1.5\n2e3\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().columns[0][0], -1.5);
  EXPECT_DOUBLE_EQ(r.value().columns[0][1], 2000.0);
}

TEST(CsvTest, RaggedRowIsError) {
  auto r = ParseCsv("a,b\n1,2\n3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, NonNumericBodyIsError) {
  auto r = ParseCsv("a,b\n1,2\n3,oops\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, NanCellIsRejectedWithLocation) {
  auto r = ParseCsv("a,b\n1,2\n3,nan\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The error names the cell (0-based column, matching "not numeric")
  // and flags the gap as repairable.
  EXPECT_NE(r.status().message().find("row 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("column 1"), std::string::npos);
  EXPECT_NE(r.status().message().find("not finite"), std::string::npos);
}

TEST(CsvTest, InfCellIsRejected) {
  EXPECT_FALSE(ParseCsv("a\n1\ninf\n").ok());
  EXPECT_FALSE(ParseCsv("a\n1\n-inf\n").ok());
  // Overflowing literals parse to +inf under strtod: same rejection.
  auto r = ParseCsv("a\n1\n1e999\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not finite"), std::string::npos);
}

TEST(CsvTest, NanInFirstRowIsTreatedAsHeader) {
  // A non-finite token in row 1 reads as a column name, exactly like any
  // other non-numeric token there.
  auto r = ParseCsv("nan,b\n1,2\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().column_names,
            (std::vector<std::string>{"nan", "b"}));
  EXPECT_EQ(r.value().num_rows(), 1u);
}

TEST(CsvTest, TrailingGarbageStillRejected) {
  EXPECT_FALSE(ParseCsv("a\n1\n2.5x\n").ok());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("\n\n").ok());
}

TEST(CsvTest, HeaderOnlyIsError) {
  EXPECT_FALSE(ParseCsv("a,b\n").ok());
}

TEST(CsvTest, WriteReadRoundTrip) {
  CsvTable t;
  t.column_names = {"x", "y"};
  t.columns = {{1.5, -2.25}, {3.0, 1e-4}};
  auto r = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().column_names, t.column_names);
  for (size_t c = 0; c < 2; ++c) {
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_DOUBLE_EQ(r.value().columns[c][i], t.columns[c][i]);
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.column_names = {"v"};
  t.columns = {{1.0, 2.0, 3.0}};
  std::string path = testing::TempDir() + "/mc_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/path/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace multicast
