#include "ts/frame.h"

#include <gtest/gtest.h>

namespace multicast {
namespace ts {
namespace {

Frame MakeFrame() {
  return Frame::FromSeries({Series({1.0, 2.0, 3.0}, "a"),
                            Series({4.0, 5.0, 6.0}, "b")},
                           "test")
      .ValueOrDie();
}

TEST(FrameTest, Construction) {
  Frame f = MakeFrame();
  EXPECT_EQ(f.num_dims(), 2u);
  EXPECT_EQ(f.length(), 3u);
  EXPECT_EQ(f.name(), "test");
  EXPECT_DOUBLE_EQ(f.at(1, 2), 6.0);
}

TEST(FrameTest, MismatchedLengthsRejected) {
  auto r = Frame::FromSeries({Series({1.0}), Series({1.0, 2.0})});
  EXPECT_FALSE(r.ok());
}

TEST(FrameTest, EmptyDimsRejected) {
  EXPECT_FALSE(Frame::FromSeries({}).ok());
}

TEST(FrameTest, RowGathersAllDims) {
  Frame f = MakeFrame();
  EXPECT_EQ(f.Row(1), (std::vector<double>{2.0, 5.0}));
}

TEST(FrameTest, SliceKeepsAllDims) {
  Frame f = MakeFrame();
  auto r = f.Slice(1, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().length(), 2u);
  EXPECT_DOUBLE_EQ(r.value().at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(r.value().at(1, 1), 6.0);
}

TEST(FrameTest, SliceOutOfRange) {
  EXPECT_FALSE(MakeFrame().Slice(0, 4).ok());
}

TEST(FrameTest, HeadTail) {
  Frame f = MakeFrame();
  EXPECT_EQ(f.Head(2).length(), 2u);
  EXPECT_DOUBLE_EQ(f.Tail(1).at(0, 0), 3.0);
}

TEST(FrameTest, DimIndexByName) {
  Frame f = MakeFrame();
  auto r = f.DimIndex("b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1u);
  EXPECT_FALSE(f.DimIndex("zzz").ok());
}

TEST(FrameTest, CsvRoundTrip) {
  Frame f = MakeFrame();
  CsvTable t = f.ToCsv();
  auto back = Frame::FromCsv(t, "test");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_dims(), 2u);
  EXPECT_EQ(back.value().dim(0).name(), "a");
  EXPECT_DOUBLE_EQ(back.value().at(1, 2), 6.0);
}

TEST(FrameTest, UnnamedDimGetsSyntheticCsvName) {
  Frame f = Frame::FromSeries({Series({1.0, 2.0})}).ValueOrDie();
  CsvTable t = f.ToCsv();
  EXPECT_EQ(t.column_names[0], "c0");
}

}  // namespace
}  // namespace ts
}  // namespace multicast
