#include "util/flags.h"

#include <gtest/gtest.h>

namespace multicast {
namespace {

const std::set<std::string> kKnown = {"input", "horizon", "plot", "rate"};
const std::set<std::string> kBools = {"plot"};

TEST(FlagsTest, SeparateValueForm) {
  auto f = FlagSet::Parse({"--input", "a.csv", "--horizon", "12"}, kKnown);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().GetString("input", ""), "a.csv");
  EXPECT_EQ(f.value().GetInt("horizon", 0).ValueOrDie(), 12);
}

TEST(FlagsTest, EqualsForm) {
  auto f = FlagSet::Parse({"--input=b.csv", "--horizon=7"}, kKnown);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().GetString("input", ""), "b.csv");
  EXPECT_EQ(f.value().GetInt("horizon", 0).ValueOrDie(), 7);
}

TEST(FlagsTest, BooleanFlag) {
  auto f = FlagSet::Parse({"--plot"}, kKnown, kBools);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f.value().GetBool("plot"));
  auto g = FlagSet::Parse({}, kKnown, kBools);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g.value().GetBool("plot"));
}

TEST(FlagsTest, PositionalsPreserveOrder) {
  auto f = FlagSet::Parse({"first", "--plot", "second"}, kKnown, kBools);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagsTest, UnknownFlagRejected) {
  auto f = FlagSet::Parse({"--bogus", "1"}, kKnown);
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("bogus"), std::string::npos);
}

TEST(FlagsTest, MissingValueRejected) {
  EXPECT_FALSE(FlagSet::Parse({"--input"}, kKnown).ok());
}

TEST(FlagsTest, DuplicateFlagRejected) {
  EXPECT_FALSE(
      FlagSet::Parse({"--horizon", "1", "--horizon", "2"}, kKnown).ok());
}

TEST(FlagsTest, BareDashDashRejected) {
  EXPECT_FALSE(FlagSet::Parse({"--"}, kKnown).ok());
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  auto f = FlagSet::Parse({}, kKnown).ValueOrDie();
  EXPECT_EQ(f.GetString("input", "fallback"), "fallback");
  EXPECT_EQ(f.GetInt("horizon", 99).ValueOrDie(), 99);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.5).ValueOrDie(), 0.5);
  EXPECT_FALSE(f.Has("input"));
}

TEST(FlagsTest, BadNumericValuesRejected) {
  auto f = FlagSet::Parse({"--horizon", "abc"}, kKnown).ValueOrDie();
  EXPECT_FALSE(f.GetInt("horizon", 0).ok());
  auto g = FlagSet::Parse({"--rate", "1.5x"}, kKnown).ValueOrDie();
  EXPECT_FALSE(g.GetDouble("rate", 0.0).ok());
}

TEST(FlagsTest, NegativeAndFloatValues) {
  auto f = FlagSet::Parse({"--horizon=-3", "--rate", "0.25"}, kKnown)
               .ValueOrDie();
  EXPECT_EQ(f.GetInt("horizon", 0).ValueOrDie(), -3);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0).ValueOrDie(), 0.25);
}

}  // namespace
}  // namespace multicast
