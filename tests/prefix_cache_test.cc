// Tests of the prefix-cache subsystem: the Freeze()/Fork() contract on
// both model families (a fork fed the same tokens as a fresh model is
// bit-identical), the cache's LRU/longest-prefix index mechanics, and
// stats reconciliation against the token ledger. A multi-threaded
// hammer at the end exercises the shared-cache locking for TSan.

#include "lm/prefix_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "lm/generator.h"
#include "lm/mixture_model.h"
#include "lm/ngram_model.h"
#include "lm/profiles.h"
#include "token/codec.h"

namespace multicast {
namespace lm {
namespace {

constexpr size_t kVocab = 11;  // digits + comma

std::vector<token::TokenId> TokenSeq(size_t n, uint64_t seed) {
  // Deterministic pseudo-random token stream over the vocabulary.
  std::vector<token::TokenId> out;
  out.reserve(n);
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out.push_back(static_cast<token::TokenId>(x % kVocab));
  }
  return out;
}

std::vector<token::TokenId> EncodeDigits(const std::string& text) {
  return token::Encode(text, token::Vocabulary::Digits()).ValueOrDie();
}

// Drives `fresh` and `forked` through the same continuation and asserts
// the distributions match exactly at every step — including via the
// in-place NextDistribution overload.
void ExpectLockstep(LanguageModel* fresh, LanguageModel* forked,
                    const std::vector<token::TokenId>& continuation) {
  std::vector<double> buf_fresh, buf_forked;
  for (size_t i = 0; i <= continuation.size(); ++i) {
    SCOPED_TRACE("continuation step " + std::to_string(i));
    ASSERT_EQ(fresh->context_length(), forked->context_length());
    std::vector<double> d_fresh = fresh->NextDistribution();
    std::vector<double> d_forked = forked->NextDistribution();
    EXPECT_EQ(d_fresh, d_forked);
    fresh->NextDistribution(&buf_fresh);
    forked->NextDistribution(&buf_forked);
    EXPECT_EQ(buf_fresh, d_fresh);    // in-place == allocating
    EXPECT_EQ(buf_forked, d_forked);
    if (i < continuation.size()) {
      fresh->Observe(continuation[i]);
      forked->Observe(continuation[i]);
    }
  }
}

// ---------------------------------------------------------------------
// Fork equivalence: both model families, swept over options and splits.
// ---------------------------------------------------------------------

struct NGramParam {
  int max_order;
  double backoff_boost;
  double uniform_mix;
};

class NGramForkTest : public testing::TestWithParam<NGramParam> {};

TEST_P(NGramForkTest, ForkMatchesFreshAtEverySplit) {
  NGramOptions opts;
  opts.max_order = GetParam().max_order;
  opts.backoff_boost = GetParam().backoff_boost;
  opts.uniform_mix = GetParam().uniform_mix;
  const std::vector<token::TokenId> prompt = TokenSeq(48, 7);
  const std::vector<token::TokenId> continuation = TokenSeq(16, 11);
  const size_t splits[] = {0, 1, prompt.size() / 2, prompt.size() - 1,
                           prompt.size()};
  for (size_t split : splits) {
    SCOPED_TRACE("split=" + std::to_string(split));
    NGramLanguageModel fresh(kVocab, opts);
    for (token::TokenId id : prompt) fresh.Observe(id);

    NGramLanguageModel base(kVocab, opts);
    for (size_t i = 0; i < split; ++i) base.Observe(prompt[i]);
    base.Freeze();
    EXPECT_TRUE(base.frozen());
    std::unique_ptr<LanguageModel> fork = base.Fork();
    ASSERT_NE(fork, nullptr);
    EXPECT_FALSE(fork->frozen());
    for (size_t i = split; i < prompt.size(); ++i) fork->Observe(prompt[i]);

    ExpectLockstep(&fresh, fork.get(), continuation);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, NGramForkTest,
    testing::Values(NGramParam{1, 0.0, 1e-4}, NGramParam{3, 1.5, 0.0},
                    NGramParam{8, 0.0, 0.0}, NGramParam{8, 1.5, 1e-4}),
    [](const testing::TestParamInfo<NGramParam>& info) {
      return "Order" + std::to_string(info.param.max_order) + "Boost" +
             std::to_string(static_cast<int>(info.param.backoff_boost * 10)) +
             "Mix" + std::to_string(info.param.uniform_mix > 0.0);
    });

struct MixtureParam {
  int max_depth;
  double kt_alpha;
  double depth_learning_rate;
  double uniform_mix;
};

class MixtureForkTest : public testing::TestWithParam<MixtureParam> {};

TEST_P(MixtureForkTest, ForkMatchesFreshAtEverySplit) {
  MixtureOptions opts;
  opts.max_depth = GetParam().max_depth;
  opts.kt_alpha = GetParam().kt_alpha;
  opts.depth_learning_rate = GetParam().depth_learning_rate;
  opts.uniform_mix = GetParam().uniform_mix;
  const std::vector<token::TokenId> prompt = TokenSeq(48, 3);
  const std::vector<token::TokenId> continuation = TokenSeq(16, 19);
  const size_t splits[] = {0, 1, prompt.size() / 2, prompt.size() - 1,
                           prompt.size()};
  for (size_t split : splits) {
    SCOPED_TRACE("split=" + std::to_string(split));
    MixtureLanguageModel fresh(kVocab, opts);
    for (token::TokenId id : prompt) fresh.Observe(id);

    MixtureLanguageModel base(kVocab, opts);
    for (size_t i = 0; i < split; ++i) base.Observe(prompt[i]);
    base.Freeze();
    std::unique_ptr<LanguageModel> fork = base.Fork();
    ASSERT_NE(fork, nullptr);
    for (size_t i = split; i < prompt.size(); ++i) fork->Observe(prompt[i]);

    ExpectLockstep(&fresh, fork.get(), continuation);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, MixtureForkTest,
    testing::Values(MixtureParam{1, 0.5, 0.05, 1e-4},
                    MixtureParam{3, 1.0, 0.0, 0.0},
                    MixtureParam{8, 0.5, 0.05, 0.0}),
    [](const testing::TestParamInfo<MixtureParam>& info) {
      return "Depth" + std::to_string(info.param.max_depth) + "Alpha" +
             std::to_string(static_cast<int>(info.param.kt_alpha * 10)) +
             "Mix" + std::to_string(info.param.uniform_mix > 0.0);
    });

// Chained freeze -> fork -> extend -> freeze -> fork, deep enough to
// cross the layer-compaction threshold: the final fork must still match
// a monolithic model fed the concatenated stream, and earlier forks
// keep working after compaction rewrites the layer stack.
TEST(ForkChainTest, RepeatedFreezeForkStaysExactThroughCompaction) {
  for (int family = 0; family < 2; ++family) {
    SCOPED_TRACE(family == 0 ? "ngram" : "mixture");
    std::unique_ptr<LanguageModel> chain;
    std::unique_ptr<LanguageModel> mono;
    if (family == 0) {
      chain = std::make_unique<NGramLanguageModel>(kVocab, NGramOptions{});
      mono = std::make_unique<NGramLanguageModel>(kVocab, NGramOptions{});
    } else {
      chain = std::make_unique<MixtureLanguageModel>(kVocab, MixtureOptions{});
      mono = std::make_unique<MixtureLanguageModel>(kVocab, MixtureOptions{});
    }
    // Frozen ancestors stay alive alongside their forks, as the cache
    // holds them; compaction must not disturb them.
    std::vector<std::unique_ptr<LanguageModel>> ancestors;
    const int kGenerations = 7;  // > kMaxBaseLayers, forces compaction
    for (int g = 0; g < kGenerations; ++g) {
      std::vector<token::TokenId> chunk = TokenSeq(9, 100 + g);
      for (token::TokenId id : chunk) {
        chain->Observe(id);
        mono->Observe(id);
      }
      EXPECT_EQ(chain->NextDistribution(), mono->NextDistribution())
          << "generation " << g;
      chain->Freeze();
      std::unique_ptr<LanguageModel> next = chain->Fork();
      ASSERT_NE(next, nullptr);
      ancestors.push_back(std::move(chain));
      chain = std::move(next);
    }
    EXPECT_EQ(chain->NextDistribution(), mono->NextDistribution());
  }
  // The layer stack is bounded: repeated freeze/fork compacts instead of
  // growing one layer per generation.
  NGramLanguageModel root(kVocab, NGramOptions{});
  for (token::TokenId id : TokenSeq(6, 0)) root.Observe(id);
  root.Freeze();
  std::unique_ptr<LanguageModel> session = root.Fork();
  std::vector<std::unique_ptr<LanguageModel>> keep;
  for (int g = 1; g < 12; ++g) {
    for (token::TokenId id : TokenSeq(6, g)) session->Observe(id);
    session->Freeze();
    std::unique_ptr<LanguageModel> fork = session->Fork();
    keep.push_back(std::move(session));
    session = std::move(fork);
  }
  auto* typed = dynamic_cast<NGramLanguageModel*>(session.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_LE(typed->num_base_layers(), 5u);
}

// Two forks of one base diverge independently: tokens observed by one
// are invisible to its sibling and to the frozen base.
TEST(ForkIsolationTest, SiblingForksDoNotLeakState)
{
  NGramLanguageModel base(kVocab, NGramOptions{});
  for (token::TokenId id : TokenSeq(30, 1)) base.Observe(id);
  base.Freeze();
  std::unique_ptr<LanguageModel> a = base.Fork();
  std::unique_ptr<LanguageModel> b = base.Fork();
  std::vector<double> before = b->NextDistribution();
  for (token::TokenId id : TokenSeq(20, 2)) a->Observe(id);
  // b and the base are untouched by a's writes.
  EXPECT_EQ(b->NextDistribution(), before);
  std::unique_ptr<LanguageModel> c = base.Fork();
  EXPECT_EQ(c->NextDistribution(), before);
}

// Reset on a frozen model drops the base and un-freezes; Fork before
// Freeze is rejected by returning null on a fresh model only after
// Reset (the contract: Fork requires frozen()).
TEST(ForkContractTest, ResetUnfreezesToEmpty) {
  NGramLanguageModel model(kVocab, NGramOptions{});
  for (token::TokenId id : TokenSeq(10, 5)) model.Observe(id);
  model.Freeze();
  ASSERT_TRUE(model.frozen());
  model.Reset();
  EXPECT_FALSE(model.frozen());
  EXPECT_EQ(model.context_length(), 0u);
  EXPECT_EQ(model.num_base_layers(), 0u);
  // Mutable again after Reset.
  model.Observe(3);
  EXPECT_EQ(model.context_length(), 1u);
}

// ---------------------------------------------------------------------
// PrefixCache index mechanics.
// ---------------------------------------------------------------------

PrefixCache::ModelFactory NGramFactory() {
  return [] {
    return std::make_unique<NGramLanguageModel>(kVocab, NGramOptions{});
  };
}

TEST(PrefixCacheTest, MissThenFullHit) {
  PrefixCache cache(4);
  const std::vector<token::TokenId> prompt = TokenSeq(32, 1);
  std::unique_ptr<LanguageModel> first =
      cache.AcquireSession(1, prompt, NGramFactory());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->context_length(), prompt.size());
  std::unique_ptr<LanguageModel> second =
      cache.AcquireSession(1, prompt, NGramFactory());
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->NextDistribution(), first->NextDistribution());

  PrefixCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.full_hits, 1u);
  EXPECT_EQ(s.prefix_hits, 0u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.prompt_tokens_seen, 2 * prompt.size());
  EXPECT_EQ(s.prompt_tokens_reused, prompt.size());
  EXPECT_EQ(s.prompt_tokens_replayed, prompt.size());
  EXPECT_EQ(s.prompt_tokens_seen,
            s.prompt_tokens_reused + s.prompt_tokens_replayed);
}

TEST(PrefixCacheTest, LongestPrefixIsExtendedBySuffixReplay) {
  PrefixCache cache(8);
  std::vector<token::TokenId> prompt = TokenSeq(40, 9);
  std::vector<token::TokenId> shorter(prompt.begin(), prompt.begin() + 10);
  std::vector<token::TokenId> longer(prompt.begin(), prompt.begin() + 30);
  cache.Warm(1, shorter, NGramFactory());
  cache.Warm(1, longer, NGramFactory());
  ASSERT_EQ(cache.size(), 2u);

  // The full prompt extends the *longest* cached prefix (30 tokens).
  std::unique_ptr<LanguageModel> session =
      cache.AcquireSession(1, prompt, NGramFactory());
  ASSERT_NE(session, nullptr);
  PrefixCacheStats s = cache.stats();
  EXPECT_EQ(s.prefix_hits, 2u);  // longer warm extended shorter; then this
  EXPECT_EQ(s.misses, 1u);       // only the first warm missed
  // The acquire reused exactly the 30 cached tokens and replayed 10.
  EXPECT_EQ(s.prompt_tokens_reused, 10u + 30u);
  EXPECT_EQ(cache.size(), 3u);

  // Bit-exact against a fresh session.
  NGramLanguageModel fresh(kVocab, NGramOptions{});
  for (token::TokenId id : prompt) fresh.Observe(id);
  ExpectLockstep(&fresh, session.get(), TokenSeq(8, 4));
}

TEST(PrefixCacheTest, MatchingIsByteExactNotJustLength) {
  PrefixCache cache(8);
  std::vector<token::TokenId> a = TokenSeq(24, 1);
  std::vector<token::TokenId> b = TokenSeq(24, 2);  // same length, differs
  ASSERT_NE(a, b);
  cache.Warm(1, a, NGramFactory());
  std::unique_ptr<LanguageModel> session =
      cache.AcquireSession(1, b, NGramFactory());
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(cache.stats().full_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);  // warm + acquire both missed
  NGramLanguageModel fresh(kVocab, NGramOptions{});
  for (token::TokenId id : b) fresh.Observe(id);
  EXPECT_EQ(session->NextDistribution(), fresh.NextDistribution());
}

TEST(PrefixCacheTest, FingerprintsAreSeparateNamespaces) {
  PrefixCache cache(8);
  std::vector<token::TokenId> prompt = TokenSeq(24, 1);
  cache.Warm(1, prompt, NGramFactory());
  cache.AcquireSession(2, prompt, NGramFactory());
  // Same prompt under a different fingerprint is a miss, not a hit.
  EXPECT_EQ(cache.stats().full_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PrefixCacheTest, EvictionIsLeastRecentlyUsed) {
  PrefixCache cache(2);
  std::vector<token::TokenId> p1 = TokenSeq(16, 1);
  std::vector<token::TokenId> p2 = TokenSeq(16, 2);
  std::vector<token::TokenId> p3 = TokenSeq(16, 3);
  cache.Warm(1, p1, NGramFactory());
  cache.Warm(1, p2, NGramFactory());
  // Touch p1 so p2 becomes least-recently-used.
  cache.AcquireSession(1, p1, NGramFactory());
  cache.Warm(1, p3, NGramFactory());  // evicts p2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  PrefixCacheStats before = cache.stats();
  cache.AcquireSession(1, p1, NGramFactory());  // still cached
  EXPECT_EQ(cache.stats().full_hits, before.full_hits + 1);
  cache.AcquireSession(1, p2, NGramFactory());  // was evicted: miss
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(PrefixCacheTest, CapacityZeroDisablesTheCacheEntirely) {
  PrefixCache cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
  std::vector<token::TokenId> prompt = TokenSeq(16, 1);
  // Warm is a counted no-op: nothing is ever stored.
  cache.Warm(1, prompt, NGramFactory());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);

  // Every acquisition is a miss served by a fresh full-replay session —
  // bit-identical to the cached path, just without the reuse.
  for (int round = 0; round < 3; ++round) {
    std::unique_ptr<LanguageModel> session =
        cache.AcquireSession(1, prompt, NGramFactory());
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->context_length(), prompt.size());
    NGramLanguageModel fresh(kVocab, NGramOptions{});
    for (token::TokenId id : prompt) fresh.Observe(id);
    EXPECT_EQ(session->NextDistribution(), fresh.NextDistribution());
  }
  PrefixCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 4u);  // warm + 3 acquires
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits(), 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.prompt_tokens_replayed, 4 * prompt.size());
  EXPECT_EQ(s.prompt_tokens_reused, 0u);
  EXPECT_EQ(cache.size(), 0u);
  // Clear on a disabled cache is harmless too.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PrefixCacheTest, EvictedBaseStaysValidForLiveForkedSessions) {
  PrefixCache cache(1);
  std::vector<token::TokenId> p1 = TokenSeq(24, 1);
  std::vector<token::TokenId> p2 = TokenSeq(24, 2);
  // The session forked off p1's frozen base keeps the base alive via
  // shared ownership even after the LRU slot is stolen.
  std::unique_ptr<LanguageModel> session =
      cache.AcquireSession(1, p1, NGramFactory());
  ASSERT_NE(session, nullptr);
  cache.Warm(1, p2, NGramFactory());  // capacity 1: evicts p1's entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The orphaned session still decodes bit-exactly.
  NGramLanguageModel fresh(kVocab, NGramOptions{});
  for (token::TokenId id : p1) fresh.Observe(id);
  ExpectLockstep(&fresh, session.get(), TokenSeq(8, 5));

  // And p1 is genuinely gone from the index: a re-acquire misses.
  PrefixCacheStats before = cache.stats();
  cache.AcquireSession(1, p1, NGramFactory());
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(PrefixCacheTest, ReplicasSharingOneCacheStayFingerprintIsolated) {
  // Cluster replicas may share one cache object (an external cache
  // tier); per-replica fingerprints must then namespace the entries so
  // one node's state is never served as another's.
  PrefixCache cache(8);
  constexpr uint64_t kReplicaA = 0xA;
  constexpr uint64_t kReplicaB = 0xB;
  std::vector<token::TokenId> prompt = TokenSeq(24, 3);

  cache.Warm(kReplicaA, prompt, NGramFactory());
  EXPECT_EQ(cache.size(), 1u);
  // Replica B sees a cold cache for the identical prompt.
  cache.AcquireSession(kReplicaB, prompt, NGramFactory());
  EXPECT_EQ(cache.stats().hits(), 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);

  // After both warmed, each replica full-hits its own namespace only.
  PrefixCacheStats before = cache.stats();
  cache.AcquireSession(kReplicaA, prompt, NGramFactory());
  cache.AcquireSession(kReplicaB, prompt, NGramFactory());
  EXPECT_EQ(cache.stats().full_hits, before.full_hits + 2);
  EXPECT_EQ(cache.stats().misses, before.misses);

  // A prefix of the prompt cached under A must not shorten B's replay:
  // B's longest-prefix lookup stays inside its own namespace.
  std::vector<token::TokenId> longer = TokenSeq(32, 3);
  ASSERT_TRUE(std::equal(prompt.begin(), prompt.end(), longer.begin()));
  before = cache.stats();
  cache.AcquireSession(kReplicaB, longer, NGramFactory());
  EXPECT_EQ(cache.stats().prefix_hits, before.prefix_hits + 1);
  EXPECT_EQ(cache.stats().prompt_tokens_reused,
            before.prompt_tokens_reused + prompt.size());
}

TEST(PrefixCacheTest, ClearDropsEntriesKeepsCounters) {
  PrefixCache cache(4);
  cache.Warm(1, TokenSeq(16, 1), NGramFactory());
  ASSERT_EQ(cache.size(), 1u);
  PrefixCacheStats before = cache.stats();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups, before.lookups);
  EXPECT_EQ(cache.stats().insertions, before.insertions);
  // A re-acquire after Clear is a miss again.
  cache.AcquireSession(1, TokenSeq(16, 1), NGramFactory());
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(PrefixCacheStatsTest, DifferenceSaturatesAtZero) {
  PrefixCacheStats a, b;
  a.lookups = 3;
  b.lookups = 5;
  b.full_hits = 2;
  PrefixCacheStats d = a - b;
  EXPECT_EQ(d.lookups, 0u);
  EXPECT_EQ(d.full_hits, 0u);
  PrefixCacheStats sum;
  sum += a;
  sum += b;
  EXPECT_EQ(sum.lookups, 8u);
  EXPECT_EQ(sum.hits(), 2u);
}

// ---------------------------------------------------------------------
// Reconciliation with the token ledger through SimulatedLlm.
// ---------------------------------------------------------------------

TEST(PrefixCacheLedgerTest, LedgerStaysLogicalWhileStatsCountReplay) {
  auto cache = std::make_shared<PrefixCache>(16);
  SimulatedLlm llm(ModelProfile::Llama2_7B(), kVocab, cache);
  const std::vector<token::TokenId> prompt = EncodeDigits("12,34,56,78,");
  const size_t n = prompt.size();
  ASSERT_TRUE(llm.WarmPrefix(prompt).ok());

  const size_t kCalls = 4;
  for (size_t i = 0; i < kCalls; ++i) {
    Rng rng(100 + i);
    auto gen = llm.Complete(prompt, 6, AllowAll(kVocab), &rng);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    // The ledger reports the logical prompt size every call, cached or
    // not — bit-identical to an uncached run.
    EXPECT_EQ(gen.value().ledger.prompt_tokens, n);
    EXPECT_EQ(gen.value().ledger.generated_tokens, 6u);
  }

  PrefixCacheStats s = cache->stats();
  EXPECT_EQ(s.lookups, kCalls + 1);  // warm + 4 completes
  EXPECT_EQ(s.misses, 1u);           // the warm built the entry
  EXPECT_EQ(s.full_hits, kCalls);
  EXPECT_EQ(s.prompt_tokens_seen, (kCalls + 1) * n);
  EXPECT_EQ(s.prompt_tokens_replayed, n);
  EXPECT_EQ(s.prompt_tokens_reused, kCalls * n);
  EXPECT_EQ(s.prompt_tokens_seen,
            s.prompt_tokens_reused + s.prompt_tokens_replayed);
}

TEST(PrefixCacheLedgerTest, CachedAndUncachedCompletionsAreIdentical) {
  const std::vector<token::TokenId> prompt = EncodeDigits("17,23,17,23,");
  for (const ModelProfile& profile :
       {ModelProfile::Llama2_7B(), ModelProfile::Phi2(),
        ModelProfile::CtwMixture()}) {
    SCOPED_TRACE(profile.name);
    SimulatedLlm uncached(profile, kVocab);
    SimulatedLlm cached(profile, kVocab, std::make_shared<PrefixCache>(8));
    for (uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      Rng rng_a(seed);
      Rng rng_b(seed);
      auto a = uncached.Complete(prompt, 9, AllowAll(kVocab), &rng_a);
      auto b = cached.Complete(prompt, 9, AllowAll(kVocab), &rng_b);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value().tokens, b.value().tokens);
      EXPECT_EQ(a.value().ledger.prompt_tokens, b.value().ledger.prompt_tokens);
      EXPECT_EQ(a.value().ledger.generated_tokens,
                b.value().ledger.generated_tokens);
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency: many threads share one cache (the TSan target).
// ---------------------------------------------------------------------

TEST(PrefixCacheThreadingTest, ConcurrentSessionsMatchSerialResults) {
  auto cache = std::make_shared<PrefixCache>(8);
  const ModelProfile profile = ModelProfile::Llama2_7B();
  // Four prompts over a capacity-8 cache, hammered by 8 threads: forks,
  // misses, suffix extensions and evict-free steady state all race.
  std::vector<std::vector<token::TokenId>> prompts = {
      EncodeDigits("12,34,56,"), EncodeDigits("12,34,56,78,"),
      EncodeDigits("99,98,97,"), EncodeDigits("11,11,11,")};

  // Serial reference results, one per (prompt, seed) pair.
  std::vector<std::vector<token::TokenId>> expected;
  for (size_t p = 0; p < prompts.size(); ++p) {
    SimulatedLlm solo(profile, kVocab);
    Rng rng(1000 + p);
    expected.push_back(
        solo.Complete(prompts[p], 8, AllowAll(kVocab), &rng)
            .ValueOrDie()
            .tokens);
  }

  const int kThreads = 8;
  const int kIterations = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      SimulatedLlm llm(profile, kVocab, cache);
      for (int i = 0; i < kIterations; ++i) {
        size_t p = static_cast<size_t>(t + i) % prompts.size();
        Rng rng(1000 + p);
        auto gen = llm.Complete(prompts[p], 8, AllowAll(kVocab), &rng);
        if (!gen.ok() || gen.value().tokens != expected[p]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  PrefixCacheStats s = cache->stats();
  EXPECT_EQ(s.lookups, static_cast<size_t>(kThreads * kIterations));
  EXPECT_EQ(s.prompt_tokens_seen,
            s.prompt_tokens_reused + s.prompt_tokens_replayed);
  // Concurrent builds of the same prompt are deduplicated under the
  // lock: at most one insertion per distinct (prompt, extension) state.
  EXPECT_LE(cache->size(), prompts.size() + 1);
}

}  // namespace
}  // namespace lm
}  // namespace multicast
