// Tests of the continuous-batching decode scheduler, in three layers:
//
//  1. Scheduler mechanics — slot lifecycle, EDF admission, back-fill vs
//     gang refill, deadline/cancel preemption, stats accounting — driven
//     directly through Submit/Await with hand-built decode jobs.
//  2. The transparency contract: routing a pipeline's draws through a
//     shared BatchScheduler must produce the run-to-completion result
//     bit for bit, at every batch size and thread count, clean and under
//     chaos, deadline degradation and mid-flight cancellation included
//     (the batched sibling of parallel_sampling_test's invariance
//     suite).
//  3. Serving integration: the executor's batched service mode serves
//     the same forecasts the sequential loop serves, and composes with
//     the shared-scheduler stats plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_llm.h"
#include "batch/batch_scheduler.h"
#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "lm/generator.h"
#include "lm/profiles.h"
#include "serve/executor.h"
#include "token/vocabulary.h"
#include "ts/frame.h"

namespace multicast {
namespace batch {
namespace {

// ---------------------------------------------------------------------
// Layer 1: scheduler mechanics with hand-built jobs.
// ---------------------------------------------------------------------

constexpr uint64_t kSeed = 0x5eed;

// A decode job over the digit vocabulary: fresh model, short fixed
// prompt, allow-all grammar. `rng` must outlive the job's Await.
DecodeJobSpec MakeJob(size_t num_tokens, Rng* rng) {
  const size_t vocab = token::Vocabulary::Digits().size();
  DecodeJobSpec spec;
  spec.session = lm::NewDecoderModel(lm::ModelProfile::Llama2_7B(), vocab);
  for (token::TokenId t : {1, 2, 3}) spec.session->Observe(t);
  spec.num_tokens = num_tokens;
  spec.masks =
      lm::HoistGrammarCycle(lm::AllowAll(vocab), num_tokens, vocab)
          .ValueOrDie();
  spec.rng = rng;
  return spec;
}

TEST(BatchSchedulerTest, LifecycleRetiresEveryJobAndCountsSteps) {
  BatchPolicy policy;
  policy.max_batch = 2;
  BatchScheduler scheduler(policy);
  Rng r1(kSeed, 1), r2(kSeed, 2), r3(kSeed, 3);
  BatchTicket t1 = scheduler.Submit(MakeJob(4, &r1));
  BatchTicket t2 = scheduler.Submit(MakeJob(6, &r2));
  BatchTicket t3 = scheduler.Submit(MakeJob(2, &r3));

  auto o1 = scheduler.Await(t1);
  auto o2 = scheduler.Await(t2);
  auto o3 = scheduler.Await(t3);
  ASSERT_TRUE(o1.ok()) << o1.status().ToString();
  ASSERT_TRUE(o2.ok()) << o2.status().ToString();
  ASSERT_TRUE(o3.ok()) << o3.status().ToString();
  EXPECT_EQ(o1.value().tokens.size(), 4u);
  EXPECT_EQ(o2.value().tokens.size(), 6u);
  EXPECT_EQ(o3.value().tokens.size(), 2u);

  BatchStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.retired, 3u);
  EXPECT_EQ(stats.preemptions, 0u);
  // 12 tokens over 2 slots: at least 6 steps, and every token decoded
  // in exactly one slot-step.
  EXPECT_EQ(stats.slot_steps, 12u);
  EXPECT_GE(stats.steps, 6u);
  EXPECT_EQ(stats.peak_batch, 2u);
  EXPECT_GT(stats.mean_batch(), 1.0);
}

TEST(BatchSchedulerTest, TokensAreBatchSizeInvariant) {
  // The same jobs (same prompts, same RNG streams) must decode the same
  // token sequences whether they run alone or share a batch.
  auto decode_all = [](size_t max_batch) {
    BatchPolicy policy;
    policy.max_batch = max_batch;
    BatchScheduler scheduler(policy);
    std::vector<std::unique_ptr<Rng>> rngs;
    std::vector<BatchTicket> tickets;
    for (uint64_t i = 0; i < 5; ++i) {
      rngs.push_back(std::make_unique<Rng>(kSeed, i + 1));
      tickets.push_back(scheduler.Submit(MakeJob(8, rngs.back().get())));
    }
    std::vector<std::vector<token::TokenId>> out;
    for (BatchTicket t : tickets) {
      out.push_back(scheduler.Await(t).ValueOrDie().tokens);
    }
    return out;
  };
  auto solo = decode_all(1);
  for (size_t max_batch : {4, 16}) {
    EXPECT_EQ(solo, decode_all(max_batch)) << "max_batch=" << max_batch;
  }
}

TEST(BatchSchedulerTest, EdfAdmissionOrdersByDeadlineThenTicket) {
  BatchPolicy policy;
  policy.max_batch = 1;  // one slot: admission order == decode order
  BatchScheduler scheduler(policy);
  Rng r1(kSeed, 1), r2(kSeed, 2), r3(kSeed, 3), r4(kSeed, 4);
  DecodeJobSpec a = MakeJob(2, &r1);
  a.deadline_seconds = 3.0;
  DecodeJobSpec b = MakeJob(2, &r2);
  b.deadline_seconds = 1.0;
  DecodeJobSpec c = MakeJob(2, &r3);
  c.deadline_seconds = 2.0;
  DecodeJobSpec d = MakeJob(2, &r4);
  d.deadline_seconds = 2.0;  // ties break by submission order: after c
  BatchTicket ta = scheduler.Submit(std::move(a));
  BatchTicket tb = scheduler.Submit(std::move(b));
  BatchTicket tc = scheduler.Submit(std::move(c));
  BatchTicket td = scheduler.Submit(std::move(d));

  auto oa = scheduler.Await(ta).ValueOrDie();
  auto ob = scheduler.Await(tb).ValueOrDie();
  auto oc = scheduler.Await(tc).ValueOrDie();
  auto od = scheduler.Await(td).ValueOrDie();
  EXPECT_LT(ob.admitted_step, oc.admitted_step);
  EXPECT_LT(oc.admitted_step, od.admitted_step);
  EXPECT_LT(od.admitted_step, oa.admitted_step);
}

TEST(BatchSchedulerTest, BackfillRefillsMidBatchGangWaitsForDrain) {
  // Two slots, jobs of 1/1/6 tokens. With back-fill the long job joins
  // at step 2 while a short job still runs (a back-fill admission);
  // gang scheduling admits it only after the first batch fully drains.
  auto run = [](bool backfill) {
    BatchPolicy policy;
    policy.max_batch = 2;
    policy.backfill = backfill;
    BatchScheduler scheduler(policy);
    Rng r1(kSeed, 1), r2(kSeed, 2), r3(kSeed, 3);
    BatchTicket t1 = scheduler.Submit(MakeJob(1, &r1));
    BatchTicket t2 = scheduler.Submit(MakeJob(6, &r2));
    BatchTicket t3 = scheduler.Submit(MakeJob(1, &r3));
    scheduler.Await(t1).ValueOrDie();
    scheduler.Await(t2).ValueOrDie();
    DecodeOutput late = scheduler.Await(t3).ValueOrDie();
    BatchStats stats = scheduler.stats();
    return std::make_pair(late.admitted_step, stats.backfills);
  };
  auto [continuous_step, continuous_backfills] = run(true);
  // Step 1 decodes jobs 1+2; job 1 retires, job 3 back-fills into the
  // freed slot at step 2 alongside the still-running job 2.
  EXPECT_EQ(continuous_step, 2u);
  EXPECT_EQ(continuous_backfills, 1u);
  auto [gang_step, gang_backfills] = run(false);
  // Gang: job 3 waits for job 2's full 6 steps before a new batch forms.
  EXPECT_EQ(gang_step, 7u);
  EXPECT_EQ(gang_backfills, 0u);
}

TEST(BatchSchedulerTest, OverDeadlineJobIsPreemptedOthersUnaffected) {
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.step_seconds = 0.1;
  BatchScheduler scheduler(policy);
  VirtualClock clock;
  Rng r1(kSeed, 1), r2(kSeed, 2);
  DecodeJobSpec doomed = MakeJob(50, &r1);
  doomed.clock = &clock;
  doomed.deadline_seconds = 0.25;
  BatchTicket td = scheduler.Submit(std::move(doomed));
  BatchTicket th = scheduler.Submit(MakeJob(10, &r2));

  auto dead = scheduler.Await(td);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(dead.status().message().find("preempted"), std::string::npos);
  // The dead request provably stopped consuming decode steps: its clock
  // froze just past the deadline, far short of its 50-token budget.
  EXPECT_LT(clock.now(), 0.5);

  auto healthy = scheduler.Await(th);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy.value().tokens.size(), 10u);
  EXPECT_EQ(scheduler.stats().preemptions, 1u);
  EXPECT_EQ(scheduler.stats().retired, 1u);
}

TEST(BatchSchedulerTest, AutoCancelPreemptsMidDecode) {
  BatchPolicy policy;
  policy.max_batch = 1;
  policy.step_seconds = 0.1;
  BatchScheduler scheduler(policy);
  VirtualClock clock;
  Rng rng(kSeed);
  DecodeJobSpec spec = MakeJob(50, &rng);
  spec.clock = &clock;
  spec.cancel.CancelAtTime(&clock, 0.15, "drain");
  BatchTicket ticket = scheduler.Submit(std::move(spec));
  auto out = scheduler.Await(ticket);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_NE(out.status().message().find("drain"), std::string::npos);
  EXPECT_EQ(scheduler.stats().preemptions, 1u);
}

TEST(BatchSchedulerTest, CostHooksFireOncePerStepUnderDeadlinePreemption) {
  // The wall-clock hook and the virtual step charge are per-*step*
  // costs: a slot freed by deadline preemption before the decode phase
  // must drop out of the occupancy histogram, the hook's batch size and
  // the surviving jobs' clock charges for that step.
  std::vector<size_t> hook_calls;
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.step_seconds = 0.1;
  policy.on_step = [&hook_calls](size_t active) {
    hook_calls.push_back(active);
  };
  BatchScheduler scheduler(policy);
  VirtualClock doomed_clock, healthy_clock;
  Rng r1(kSeed, 1), r2(kSeed, 2);
  DecodeJobSpec doomed = MakeJob(50, &r1);
  doomed.clock = &doomed_clock;
  doomed.deadline_seconds = 0.25;
  DecodeJobSpec healthy = MakeJob(10, &r2);
  healthy.clock = &healthy_clock;
  BatchTicket td = scheduler.Submit(std::move(doomed));
  BatchTicket th = scheduler.Submit(std::move(healthy));
  EXPECT_FALSE(scheduler.Await(td).ok());
  ASSERT_TRUE(scheduler.Await(th).ok());

  BatchStats stats = scheduler.stats();
  EXPECT_EQ(stats.preemptions, 1u);
  // The hook fired exactly once per decode step, with the post-admission
  // batch size. The healthy job decoded one token in every step, so it
  // pins the step count — and was charged step_seconds exactly once per
  // step it decoded in.
  EXPECT_EQ(hook_calls.size(), stats.steps);
  EXPECT_EQ(stats.steps, 10u);
  EXPECT_DOUBLE_EQ(healthy_clock.now(), 0.1 * 10);
  // The doomed job stopped being charged the moment it was preempted.
  EXPECT_LT(doomed_clock.now(), 0.5);
  // The occupancy histogram is exactly the hook-call histogram: a slot
  // freed by preemption never counts as occupied in its eviction step.
  std::vector<size_t> from_hooks;
  size_t slot_steps = 0;
  for (size_t active : hook_calls) {
    if (from_hooks.size() <= active) from_hooks.resize(active + 1, 0);
    ++from_hooks[active];
    slot_steps += active;
  }
  EXPECT_EQ(stats.occupancy, from_hooks);
  EXPECT_EQ(stats.slot_steps, slot_steps);
  // With no third job to back-fill, the batch only shrinks: once the
  // doomed job is evicted no later step runs two sessions again.
  bool shrunk = false;
  for (size_t active : hook_calls) {
    if (active == 1) shrunk = true;
    if (shrunk) EXPECT_EQ(active, 1u);
  }
  EXPECT_TRUE(shrunk);
}

TEST(BatchSchedulerTest, CostHooksFireOncePerStepUnderCancelPreemption) {
  // Same per-step cost contract when the slot dies by cancellation
  // instead of deadline expiry.
  std::vector<size_t> hook_calls;
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.step_seconds = 0.1;
  policy.on_step = [&hook_calls](size_t active) {
    hook_calls.push_back(active);
  };
  BatchScheduler scheduler(policy);
  VirtualClock cancel_clock, healthy_clock;
  Rng r1(kSeed, 1), r2(kSeed, 2);
  DecodeJobSpec cancelled = MakeJob(50, &r1);
  cancelled.clock = &cancel_clock;
  cancelled.cancel.CancelAtTime(&cancel_clock, 0.15, "drain");
  DecodeJobSpec healthy = MakeJob(8, &r2);
  healthy.clock = &healthy_clock;
  BatchTicket tc = scheduler.Submit(std::move(cancelled));
  BatchTicket th = scheduler.Submit(std::move(healthy));
  auto dead = scheduler.Await(tc);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(scheduler.Await(th).ok());

  BatchStats stats = scheduler.stats();
  EXPECT_EQ(stats.preemptions, 1u);
  EXPECT_EQ(hook_calls.size(), stats.steps);
  EXPECT_EQ(stats.steps, 8u);
  EXPECT_DOUBLE_EQ(healthy_clock.now(), 0.1 * 8);
  std::vector<size_t> from_hooks;
  for (size_t active : hook_calls) {
    if (from_hooks.size() <= active) from_hooks.resize(active + 1, 0);
    ++from_hooks[active];
  }
  EXPECT_EQ(stats.occupancy, from_hooks);
}

TEST(BatchSchedulerTest, DeadOnArrivalJobNeverTakesASlot) {
  BatchScheduler scheduler;
  Rng rng(kSeed);
  DecodeJobSpec spec = MakeJob(5, &rng);
  spec.cancel.Cancel("shed before service");
  BatchTicket ticket = scheduler.Submit(std::move(spec));
  auto out = scheduler.Await(ticket);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  BatchStats stats = scheduler.stats();
  EXPECT_EQ(stats.preemptions, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.steps, 0u);
}

TEST(BatchSchedulerTest, ZeroTokenJobCompletesWithoutDecoding) {
  BatchScheduler scheduler;
  DecodeJobSpec spec;  // no session/rng needed for an empty generation
  BatchTicket ticket = scheduler.Submit(std::move(spec));
  auto out = scheduler.Await(ticket);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().tokens.empty());
  EXPECT_EQ(out.value().admitted_step, 0u);
  EXPECT_EQ(scheduler.stats().steps, 0u);
}

TEST(BatchSchedulerTest, UnknownTicketIsAnError) {
  BatchScheduler scheduler;
  auto out = scheduler.Await(BatchTicket{42});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchStatsTest, DeltaAndSumRoundTrip) {
  BatchStats before;
  before.steps = 10;
  before.slot_steps = 25;
  before.occupancy = {0, 5, 5};
  BatchStats after = before;
  after.steps = 14;
  after.slot_steps = 37;
  after.peak_batch = 3;
  after.occupancy = {0, 6, 7, 1};
  BatchStats delta = after - before;
  EXPECT_EQ(delta.steps, 4u);
  EXPECT_EQ(delta.slot_steps, 12u);
  EXPECT_EQ(delta.peak_batch, 3u);
  ASSERT_EQ(delta.occupancy.size(), 4u);
  EXPECT_EQ(delta.occupancy[1], 1u);
  EXPECT_EQ(delta.occupancy[2], 2u);
  EXPECT_EQ(delta.occupancy[3], 1u);
  BatchStats sum = before;
  sum += delta;
  EXPECT_EQ(sum.steps, after.steps);
  EXPECT_EQ(sum.slot_steps, after.slot_steps);
  EXPECT_EQ(sum.occupancy, after.occupancy);
}

// ---------------------------------------------------------------------
// Layer 2: pipeline transparency — batched decode must reproduce the
// run-to-completion forecast bit for bit.
// ---------------------------------------------------------------------

using forecast::ForecastResult;
using forecast::LlmTimeForecaster;
using forecast::LlmTimeOptions;
using forecast::MultiCastForecaster;
using forecast::MultiCastOptions;
using forecast::Quantization;

ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 5.0 * std::sin(phase);
    b[i] = 50.0 - 20.0 * std::sin(phase);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

// Asserts every deterministic field of two ForecastResults matches
// exactly (wall-clock `seconds` excluded).
void ExpectIdentical(const ForecastResult& a, const ForecastResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.forecast.num_dims(), b.forecast.num_dims());
  for (size_t d = 0; d < a.forecast.num_dims(); ++d) {
    EXPECT_EQ(a.forecast.dim(d).values(), b.forecast.dim(d).values())
        << "dimension " << d;
  }
  ASSERT_EQ(a.quantile_bands.size(), b.quantile_bands.size());
  for (size_t i = 0; i < a.quantile_bands.size(); ++i) {
    EXPECT_EQ(a.quantile_bands[i].first, b.quantile_bands[i].first);
    for (size_t d = 0; d < a.quantile_bands[i].second.num_dims(); ++d) {
      EXPECT_EQ(a.quantile_bands[i].second.dim(d).values(),
                b.quantile_bands[i].second.dim(d).values())
          << "band " << i << " dimension " << d;
    }
  }
  EXPECT_EQ(a.ledger.prompt_tokens, b.ledger.prompt_tokens);
  EXPECT_EQ(a.ledger.generated_tokens, b.ledger.generated_tokens);
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.samples_requested, b.samples_requested);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.retry_stats.calls, b.retry_stats.calls);
  EXPECT_EQ(a.retry_stats.attempts, b.retry_stats.attempts);
  EXPECT_EQ(a.retry_stats.retries, b.retry_stats.retries);
  EXPECT_EQ(a.retry_stats.backoff_seconds, b.retry_stats.backoff_seconds);
}

std::shared_ptr<BatchScheduler> Scheduler(size_t max_batch) {
  BatchPolicy policy;
  policy.max_batch = max_batch;
  return std::make_shared<BatchScheduler>(policy);
}

struct VariantParam {
  multiplex::MuxKind mux;
  Quantization quantization;
};

class BatchIdentityTest : public testing::TestWithParam<VariantParam> {};

// The headline property: clean pipeline + quantile bands, batch sizes
// 1/4/16 × threads 1/2/8 — bit-identical to the unbatched serial run.
TEST_P(BatchIdentityTest, CleanPipelineIsBatchInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.mux = GetParam().mux;
  opts.quantization = GetParam().quantization;
  opts.num_samples = 6;
  opts.seed = 1234;
  opts.quantiles = {0.1, 0.9};

  auto reference = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t max_batch : {1, 4, 16}) {
    for (int threads : {1, 2, 8}) {
      opts.threads = threads;
      opts.batch_scheduler = Scheduler(max_batch);
      auto batched = MultiCastForecaster(opts).Forecast(frame, 12);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ExpectIdentical(reference.value(), batched.value(),
                      "batch=" + std::to_string(max_batch) +
                          " threads=" + std::to_string(threads));
      // The scheduler actually decoded the draws.
      EXPECT_GT(opts.batch_scheduler->stats().retired, 0u);
    }
  }
}

// Same property under chaos + retries: the fault schedule keys on draw
// index and the batch leaf reports the bare profile name, so retry
// accounting and salvage warnings survive the swap bit for bit.
TEST_P(BatchIdentityTest, ChaosPipelineIsBatchInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.mux = GetParam().mux;
  opts.quantization = GetParam().quantization;
  opts.num_samples = 5;
  opts.seed = 77;
  opts.faults = lm::FaultProfile::Chaos(0.2, 4242);
  opts.resilience.retries_enabled = true;

  auto reference = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t max_batch : {1, 4, 16}) {
    for (int threads : {1, 8}) {
      opts.threads = threads;
      opts.batch_scheduler = Scheduler(max_batch);
      auto batched = MultiCastForecaster(opts).Forecast(frame, 12);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ExpectIdentical(reference.value(), batched.value(),
                      "batch=" + std::to_string(max_batch) +
                          " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, BatchIdentityTest,
    testing::Values(
        VariantParam{multiplex::MuxKind::kDigitInterleave,
                     Quantization::kNone},
        VariantParam{multiplex::MuxKind::kValueInterleave,
                     Quantization::kNone},
        VariantParam{multiplex::MuxKind::kValueConcat, Quantization::kNone},
        VariantParam{multiplex::MuxKind::kValueInterleave,
                     Quantization::kSaxAlphabetic},
        VariantParam{multiplex::MuxKind::kValueInterleave,
                     Quantization::kSaxDigital}),
    [](const testing::TestParamInfo<VariantParam>& info) {
      std::string name = multiplex::MuxKindName(info.param.mux);
      switch (info.param.quantization) {
        case Quantization::kNone:
          return name + "Raw";
        case Quantization::kSaxAlphabetic:
          return name + "SaxAlpha";
        case Quantization::kSaxDigital:
          return name + "SaxDigit";
      }
      return name;
    });

// Deadline degradation with batched decode: the surviving-sample set
// must match the unbatched run exactly at every batch size and thread
// count (draw gating happens above the leaf; the batch adds no virtual
// time of its own).
TEST(BatchDegradationTest, DeadlineDegradationIsBatchInvariant) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](std::shared_ptr<BatchScheduler> scheduler, int threads,
                 double deadline) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.threads = threads;
    opts.batch_scheduler = std::move(scheduler);
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (deadline > 0.0) ctx.deadline = Deadline::At(deadline);
    return forecaster.Forecast(frame, 6, ctx);
  };
  auto probe = run(nullptr, 1, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double deadline = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(deadline, 0.0);
  auto reference = run(nullptr, 1, deadline);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_TRUE(reference.value().degraded);
  for (size_t max_batch : {1, 4, 16}) {
    for (int threads : {1, 8}) {
      auto batched = run(Scheduler(max_batch), threads, deadline);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ExpectIdentical(reference.value(), batched.value(),
                      "batch=" + std::to_string(max_batch) +
                          " threads=" + std::to_string(threads));
    }
  }
}

// Mid-flight cancellation, same contract.
TEST(BatchDegradationTest, MidFlightCancelIsBatchInvariant) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](std::shared_ptr<BatchScheduler> scheduler, int threads,
                 double cancel_at) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.threads = threads;
    opts.batch_scheduler = std::move(scheduler);
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (cancel_at > 0.0) ctx.cancel.CancelAtTime(&clock, cancel_at, "drain");
    return forecaster.Forecast(frame, 6, ctx);
  };
  auto probe = run(nullptr, 1, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double cancel_at = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(cancel_at, 0.0);
  auto reference = run(nullptr, 1, cancel_at);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_TRUE(reference.value().degraded);
  for (size_t max_batch : {4, 16}) {
    for (int threads : {1, 8}) {
      auto batched = run(Scheduler(max_batch), threads, cancel_at);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ExpectIdentical(reference.value(), batched.value(),
                      "batch=" + std::to_string(max_batch) +
                          " threads=" + std::to_string(threads));
    }
  }
}

// LLMTime shares one scheduler across its per-dimension pipelines.
TEST(BatchLlmTimeTest, SharedDimensionSchedulerIsOutputInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  LlmTimeOptions opts;
  opts.num_samples = 4;
  opts.seed = 9;
  opts.faults = lm::FaultProfile::Chaos(0.15, 31);
  opts.resilience.retries_enabled = true;

  auto reference = LlmTimeForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t max_batch : {1, 8}) {
    for (int threads : {1, 2, 8}) {
      opts.threads = threads;
      opts.batch_scheduler = Scheduler(max_batch);
      auto batched = LlmTimeForecaster(opts).Forecast(frame, 12);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ExpectIdentical(reference.value(), batched.value(),
                      "batch=" + std::to_string(max_batch) +
                          " threads=" + std::to_string(threads));
      EXPECT_GT(opts.batch_scheduler->stats().retired, 0u);
    }
  }
}

// The batch leaf must report the same identity and the same prompt
// errors as the sequential leaf it replaces, so decorator-produced
// warning and error strings stay bit-identical.
TEST(BatchLlmTest, ErrorAndNameParityWithSimulatedLlm) {
  const size_t vocab = token::Vocabulary::Digits().size();
  const lm::ModelProfile profile = lm::ModelProfile::Llama2_7B();
  lm::SimulatedLlm sequential(profile, vocab);
  BatchLlm batched(profile, vocab, Scheduler(4));
  EXPECT_EQ(batched.name(), sequential.name());
  EXPECT_EQ(batched.vocab_size(), sequential.vocab_size());

  Rng rng(kSeed);
  lm::GrammarMask mask = lm::AllowAll(vocab);
  auto seq_empty = sequential.Complete({}, 4, mask, &rng);
  auto bat_empty = batched.Complete({}, 4, mask, &rng);
  ASSERT_FALSE(seq_empty.ok());
  ASSERT_FALSE(bat_empty.ok());
  EXPECT_EQ(bat_empty.status().code(), seq_empty.status().code());
  EXPECT_EQ(bat_empty.status().message(), seq_empty.status().message());

  const token::TokenId bad = static_cast<token::TokenId>(vocab + 7);
  auto seq_bad = sequential.Complete({bad}, 4, mask, &rng);
  auto bat_bad = batched.Complete({bad}, 4, mask, &rng);
  ASSERT_FALSE(seq_bad.ok());
  ASSERT_FALSE(bat_bad.ok());
  EXPECT_EQ(bat_bad.status().code(), seq_bad.status().code());
  EXPECT_EQ(bat_bad.status().message(), seq_bad.status().message());
}

// ---------------------------------------------------------------------
// Layer 3: the serving executor's batched service mode.
// ---------------------------------------------------------------------

TEST(BatchServeTest, BatchedRunServesTheSequentialForecasts) {
  ts::Frame frame = PeriodicFrame(64);
  auto make_requests = [&]() {
    std::vector<serve::ForecastRequest> reqs;
    for (size_t i = 0; i < 8; ++i) {
      serve::ForecastRequest r;
      r.id = i;
      r.arrival_seconds = 0.25 * static_cast<double>(i);
      r.deadline_seconds = r.arrival_seconds + 60.0;
      r.history = &frame;
      r.horizon = 6;
      reqs.push_back(r);
    }
    return reqs;
  };
  auto run = [&](bool batched) {
    std::shared_ptr<BatchScheduler> scheduler;
    if (batched) scheduler = Scheduler(4);
    serve::ServeOptions options;
    options.queue.capacity = 16;
    options.batch.enabled = batched;
    options.batch.size = 4;
    options.batch.scheduler = scheduler;
    serve::ForecasterFactory factory =
        [scheduler](const serve::ForecastRequest& req) {
          MultiCastOptions opts;
          opts.num_samples = 3;
          opts.seed = 42 + req.id;
          opts.batch_scheduler = scheduler;
          return std::make_unique<MultiCastForecaster>(opts);
        };
    serve::ServeExecutor executor(factory, serve::ForecasterFactory(),
                                  options);
    return executor.Run(make_requests()).ValueOrDie();
  };
  std::vector<serve::ServeStats> sequential = run(false);
  std::vector<serve::ServeStats> batched = run(true);
  ASSERT_EQ(sequential.size(), batched.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(sequential[i].outcome, batched[i].outcome);
    ASSERT_NE(sequential[i].result, nullptr);
    ASSERT_NE(batched[i].result, nullptr);
    const ts::Frame& a = sequential[i].result->forecast;
    const ts::Frame& b = batched[i].result->forecast;
    ASSERT_EQ(a.num_dims(), b.num_dims());
    for (size_t d = 0; d < a.num_dims(); ++d) {
      EXPECT_EQ(a.dim(d).values(), b.dim(d).values());
    }
  }
  // The batched run attributed scheduler activity to its requests.
  serve::ServeSummary summary = serve::Summarize(batched);
  EXPECT_GT(summary.batch.retired, 0u);
  EXPECT_GT(summary.batch.steps, 0u);
}

TEST(BatchServeTest, BatchedModeRejectsHedging) {
  serve::ServeOptions options;
  options.batch.enabled = true;
  options.hedge.enabled = true;
  serve::ForecasterFactory factory = [](const serve::ForecastRequest&) {
    return std::make_unique<MultiCastForecaster>(MultiCastOptions());
  };
  serve::ServeExecutor executor(factory, factory, options);
  auto result = executor.Run({});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace batch
}  // namespace multicast
