// Property tests of the parallel sampling runtime: at any thread count
// the pipeline must produce the same ForecastResult, bit for bit, that
// the serial loop produces — under clean backends, chaos + retries,
// quantile bands, SAX quantization, deadlines and mid-flight
// cancellation. Threads are allowed to change wall-clock time only.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "lm/generator.h"
#include "lm/prefix_cache.h"
#include "token/vocabulary.h"
#include "ts/frame.h"

namespace multicast {
namespace forecast {
namespace {

ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 5.0 * std::sin(phase);
    b[i] = 50.0 - 20.0 * std::sin(phase);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

// Asserts every deterministic field of two ForecastResults matches
// exactly (wall-clock `seconds` excluded, it is the one field threads
// may change).
void ExpectIdentical(const ForecastResult& a, const ForecastResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.forecast.num_dims(), b.forecast.num_dims());
  for (size_t d = 0; d < a.forecast.num_dims(); ++d) {
    EXPECT_EQ(a.forecast.dim(d).values(), b.forecast.dim(d).values())
        << "dimension " << d;
  }
  ASSERT_EQ(a.quantile_bands.size(), b.quantile_bands.size());
  for (size_t i = 0; i < a.quantile_bands.size(); ++i) {
    EXPECT_EQ(a.quantile_bands[i].first, b.quantile_bands[i].first);
    for (size_t d = 0; d < a.quantile_bands[i].second.num_dims(); ++d) {
      EXPECT_EQ(a.quantile_bands[i].second.dim(d).values(),
                b.quantile_bands[i].second.dim(d).values())
          << "band " << i << " dimension " << d;
    }
  }
  EXPECT_EQ(a.ledger.prompt_tokens, b.ledger.prompt_tokens);
  EXPECT_EQ(a.ledger.generated_tokens, b.ledger.generated_tokens);
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.samples_requested, b.samples_requested);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.retry_stats.calls, b.retry_stats.calls);
  EXPECT_EQ(a.retry_stats.attempts, b.retry_stats.attempts);
  EXPECT_EQ(a.retry_stats.retries, b.retry_stats.retries);
  EXPECT_EQ(a.retry_stats.circuit_rejections,
            b.retry_stats.circuit_rejections);
  EXPECT_EQ(a.retry_stats.backoff_seconds, b.retry_stats.backoff_seconds);
}

struct VariantParam {
  multiplex::MuxKind mux;
  Quantization quantization;
};

class ParallelIdentityTest : public testing::TestWithParam<VariantParam> {};

// The headline property: clean pipeline + quantile bands, threads
// 1/2/8 — bit-identical output.
TEST_P(ParallelIdentityTest, CleanPipelineIsThreadCountInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.mux = GetParam().mux;
  opts.quantization = GetParam().quantization;
  opts.num_samples = 6;
  opts.seed = 1234;
  opts.quantiles = {0.1, 0.9};

  opts.threads = 1;
  auto serial = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 8}) {
    opts.threads = threads;
    auto parallel = MultiCastForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value(),
                    "threads=" + std::to_string(threads));
  }
}

// Same property under chaos + retries: fault schedules, redraws, retry
// accounting and salvage warnings must all be draw-indexed, never
// thread-schedule-dependent.
TEST_P(ParallelIdentityTest, ChaosPipelineIsThreadCountInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.mux = GetParam().mux;
  opts.quantization = GetParam().quantization;
  opts.num_samples = 5;
  opts.seed = 77;
  opts.faults = lm::FaultProfile::Chaos(0.2, 4242);
  opts.resilience.retries_enabled = true;

  opts.threads = 1;
  auto serial = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 8}) {
    opts.threads = threads;
    auto parallel = MultiCastForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value(),
                    "threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelIdentityTest,
    testing::Values(
        VariantParam{multiplex::MuxKind::kDigitInterleave,
                     Quantization::kNone},
        VariantParam{multiplex::MuxKind::kValueInterleave,
                     Quantization::kNone},
        VariantParam{multiplex::MuxKind::kValueConcat, Quantization::kNone},
        VariantParam{multiplex::MuxKind::kValueInterleave,
                     Quantization::kSaxAlphabetic},
        VariantParam{multiplex::MuxKind::kValueInterleave,
                     Quantization::kSaxDigital}),
    [](const testing::TestParamInfo<VariantParam>& info) {
      std::string name = multiplex::MuxKindName(info.param.mux);
      switch (info.param.quantization) {
        case Quantization::kNone:
          return name + "Raw";
        case Quantization::kSaxAlphabetic:
          return name + "SaxAlpha";
        case Quantization::kSaxDigital:
          return name + "SaxDigit";
      }
      return name;
    });

// A deadline that stops the loop partway must degrade to the *same*
// surviving samples at every thread count: merge-order gating replays
// the serial schedule even when speculative draws ran.
TEST(ParallelDegradationTest, DeadlineDegradationIsThreadCountInvariant) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](int threads, double deadline) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.threads = threads;
    // The fault injector owns the latency model, so virtual time only
    // accrues (and deadlines only bite) with a fault profile active.
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (deadline > 0.0) ctx.deadline = Deadline::At(deadline);
    return forecaster.Forecast(frame, 6, ctx);
  };
  // Probe the clean run's total virtual cost, then budget half of it:
  // the first draw always fits (the gate at t=0 passes) and the last
  // never does, so the loop degrades partway through.
  auto probe = run(1, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double deadline = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(deadline, 0.0);
  auto run_deadline = [&](int threads) { return run(threads, deadline); };
  auto serial = run_deadline(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_TRUE(serial.value().degraded);
  EXPECT_LT(serial.value().samples_used, 8u);
  EXPECT_GE(serial.value().samples_used, 1u);
  for (int threads : {2, 8}) {
    auto parallel = run_deadline(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value(),
                    "threads=" + std::to_string(threads));
  }
}

// Mid-flight cancellation: an auto-cancel token firing partway through
// the loop produces the same degraded result at every thread count —
// cancellation is observed at draw granularity on the shared clock.
TEST(ParallelDegradationTest, MidFlightCancelIsThreadCountInvariant) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](int threads, double cancel_at) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.threads = threads;
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (cancel_at > 0.0) ctx.cancel.CancelAtTime(&clock, cancel_at, "drain");
    return forecaster.Forecast(frame, 6, ctx);
  };
  auto probe = run(1, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double cancel_at = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(cancel_at, 0.0);
  auto run_cancel = [&](int threads) { return run(threads, cancel_at); };
  auto serial = run_cancel(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_TRUE(serial.value().degraded);
  EXPECT_LT(serial.value().samples_used, 8u);
  for (int threads : {2, 8}) {
    auto parallel = run_cancel(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value(),
                    "threads=" + std::to_string(threads));
  }
}

// LLMTime parallelizes across dimensions; same invariance contract,
// including under chaos + retries.
TEST(ParallelLlmTimeTest, DimensionLoopIsThreadCountInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  LlmTimeOptions opts;
  opts.num_samples = 4;
  opts.seed = 9;
  opts.faults = lm::FaultProfile::Chaos(0.15, 31);
  opts.resilience.retries_enabled = true;

  opts.threads = 1;
  auto serial = LlmTimeForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 8}) {
    opts.threads = threads;
    auto parallel = LlmTimeForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value(),
                    "threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------
// Prefix-cache identity: enabling the cache must never change output.
// The uncached serial run is the reference; cache-on runs at 1/2/8
// threads must reproduce it bit for bit — same forecasts, bands,
// ledgers, virtual time, degradation and warnings.
// ---------------------------------------------------------------------

// Clean pipeline, every mux/quantization variant.
TEST_P(ParallelIdentityTest, PrefixCacheIsOutputInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.mux = GetParam().mux;
  opts.quantization = GetParam().quantization;
  opts.num_samples = 6;
  opts.seed = 1234;
  opts.quantiles = {0.1, 0.9};

  opts.prefix_cache = false;
  opts.threads = 1;
  auto uncached = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  opts.prefix_cache = true;
  for (int threads : {1, 2, 8}) {
    opts.threads = threads;
    MultiCastForecaster forecaster(opts);
    auto cached = forecaster.Forecast(frame, 12);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectIdentical(uncached.value(), cached.value(),
                    "cached threads=" + std::to_string(threads));
    // The cache actually engaged: the prompt was reused, not replayed.
    ASSERT_NE(forecaster.prefix_cache(), nullptr);
    EXPECT_GT(forecaster.prefix_cache()->stats().hits(), 0u);
  }
}

// Same under chaos + retries: faulted calls redraw with fresh prompts,
// and the cache must not perturb the fault schedule or accounting.
TEST_P(ParallelIdentityTest, PrefixCacheIsOutputInvariantUnderChaos) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.mux = GetParam().mux;
  opts.quantization = GetParam().quantization;
  opts.num_samples = 5;
  opts.seed = 77;
  opts.faults = lm::FaultProfile::Chaos(0.2, 4242);
  opts.resilience.retries_enabled = true;

  opts.prefix_cache = false;
  opts.threads = 1;
  auto uncached = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  opts.prefix_cache = true;
  for (int threads : {1, 2, 8}) {
    opts.threads = threads;
    auto cached = MultiCastForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectIdentical(uncached.value(), cached.value(),
                    "cached threads=" + std::to_string(threads));
  }
}

// Deadline degradation with the cache on: the surviving-sample set must
// match the uncached run exactly (the cache must not shift virtual
// time — fault latency is modeled per call, not per token replayed).
TEST(PrefixCacheDegradationTest, DeadlineDegradationMatchesUncached) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](bool cache, int threads, double deadline) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.prefix_cache = cache;
    opts.threads = threads;
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (deadline > 0.0) ctx.deadline = Deadline::At(deadline);
    return forecaster.Forecast(frame, 6, ctx);
  };
  auto probe = run(false, 1, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double deadline = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(deadline, 0.0);
  auto uncached = run(false, 1, deadline);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  EXPECT_TRUE(uncached.value().degraded);
  for (int threads : {1, 2, 8}) {
    auto cached = run(true, threads, deadline);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectIdentical(uncached.value(), cached.value(),
                    "cached threads=" + std::to_string(threads));
  }
}

// LLMTime shares one cache across its per-dimension pipelines; output
// must still match the uncached run at every thread count.
TEST(PrefixCacheLlmTimeTest, SharedDimensionCacheIsOutputInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  LlmTimeOptions opts;
  opts.num_samples = 4;
  opts.seed = 9;
  opts.faults = lm::FaultProfile::Chaos(0.15, 31);
  opts.resilience.retries_enabled = true;

  opts.prefix_cache = false;
  opts.threads = 1;
  auto uncached = LlmTimeForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  opts.prefix_cache = true;
  for (int threads : {1, 2, 8}) {
    opts.threads = threads;
    LlmTimeForecaster forecaster(opts);
    auto cached = forecaster.Forecast(frame, 12);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectIdentical(uncached.value(), cached.value(),
                    "cached threads=" + std::to_string(threads));
    ASSERT_NE(forecaster.prefix_cache(), nullptr);
    EXPECT_GT(forecaster.prefix_cache()->stats().hits(), 0u);
  }
}

// A caller-supplied shared cache (the serve-sim wiring) behaves like
// the forecaster-owned one — reused across Forecast calls, output
// invariant.
TEST(PrefixCacheSharingTest, ExternallySharedCacheIsOutputInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.num_samples = 4;
  opts.seed = 11;
  opts.prefix_cache = false;
  auto uncached = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();

  auto shared = std::make_shared<lm::PrefixCache>(16);
  opts.shared_prefix_cache = shared;
  for (int i = 0; i < 3; ++i) {
    auto cached = MultiCastForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectIdentical(uncached.value(), cached.value(),
                    "shared-cache call " + std::to_string(i));
  }
  // Later forecasters full-hit the entries built by the first.
  EXPECT_GT(shared->stats().full_hits, 0u);
  EXPECT_EQ(shared->stats().prompt_tokens_seen,
            shared->stats().prompt_tokens_reused +
                shared->stats().prompt_tokens_replayed);
}

// ---------------------------------------------------------------------
// Satellite regressions that ride with the parallel runtime.
// ---------------------------------------------------------------------

// min_samples larger than num_samples used to make every forecast fail
// ("needed at least 50 of 3"); it now clamps to num_samples, so a clean
// run at full strength succeeds.
TEST(MinSamplesClampTest, MinSamplesAboveNumSamplesClampsInsteadOfFailing) {
  ts::Frame frame = PeriodicFrame(48);
  MultiCastOptions opts;
  opts.num_samples = 3;
  opts.resilience.min_samples = 50;
  auto result = MultiCastForecaster(opts).Forecast(frame, 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded);
  EXPECT_EQ(result.value().samples_used, 3u);
}

// Repeated quantile levels used to emit identical duplicate bands;
// they now dedupe to one band per distinct level, in ascending order.
TEST(QuantileBandTest, DuplicateLevelsAreDeduped) {
  ts::Frame frame = PeriodicFrame(48);
  MultiCastOptions opts;
  opts.num_samples = 3;
  opts.quantiles = {0.8, 0.2, 0.2, 0.8};
  auto result = MultiCastForecaster(opts).Forecast(frame, 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().quantile_bands.size(), 2u);
  EXPECT_EQ(result.value().quantile_bands[0].first, 0.2);
  EXPECT_EQ(result.value().quantile_bands[1].first, 0.8);
}

// An out-of-range level fails the whole forecast up front — no bands
// are computed for the valid levels before the bad one is noticed.
TEST(QuantileBandTest, InvalidLevelFailsBeforeAnyBandIsBuilt) {
  ts::Frame frame = PeriodicFrame(48);
  MultiCastOptions opts;
  opts.num_samples = 3;
  opts.quantiles = {0.2, 1.5};
  auto result = MultiCastForecaster(opts).Forecast(frame, 6);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("quantile level"),
            std::string::npos);
}

// An external backend that reports latency only by value on the
// GenerationResult (no last_latency_seconds() override — the accessor
// stays 0) must still advance virtual time, so deadlines bite. Before
// latency moved onto the result, such a backend ran free of charge and
// deadlines never fired.
class ByValueLatencyBackend final : public lm::LlmBackend {
 public:
  ByValueLatencyBackend(size_t vocab_size, double call_seconds)
      : inner_(lm::ModelProfile::Llama2_7B(), vocab_size),
        call_seconds_(call_seconds) {}

  std::string name() const override { return "by-value-latency"; }
  size_t vocab_size() const override { return inner_.vocab_size(); }
  // Deliberately no last_latency_seconds() override: the base class
  // reports 0, exactly like a plain injected backend.

  using LlmBackend::Complete;
  Result<lm::GenerationResult> Complete(
      const std::vector<token::TokenId>& prompt, size_t num_tokens,
      const lm::GrammarMask& mask, Rng* rng,
      const lm::CallOptions& call) override {
    ++calls;
    MC_ASSIGN_OR_RETURN(lm::GenerationResult result,
                        inner_.Complete(prompt, num_tokens, mask, rng, call));
    result.latency_seconds = call_seconds_;
    return result;
  }

  size_t calls = 0;

 private:
  lm::SimulatedLlm inner_;
  double call_seconds_;
};

// A stateless external backend declared thread-safe skips the
// serializing wrapper; its overlapping calls must still produce the
// serial result bit for bit (the result depends only on call
// arguments, and the merge replays draw order).
TEST(ThreadSafeBackendTest, UnserializedBackendIsThreadCountInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  lm::SimulatedLlm backend(lm::ModelProfile::Llama2_7B(),
                           token::Vocabulary::Digits().size());
  auto run = [&](int threads) {
    MultiCastOptions opts;
    opts.num_samples = 6;
    opts.seed = 21;
    opts.backend = &backend;
    opts.backend_thread_safe = true;  // SimulatedLlm keeps no call state
    opts.threads = threads;
    return MultiCastForecaster(opts).Forecast(frame, 12);
  };
  auto serial = run(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 8}) {
    auto parallel = run(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value(),
                    "threads=" + std::to_string(threads));
  }
}

TEST(ByValueLatencyTest, DeadlineBitesOnResultReportedLatency) {
  ts::Frame frame = PeriodicFrame(48);
  ByValueLatencyBackend backend(token::Vocabulary::Digits().size(), 0.05);
  MultiCastOptions opts;
  opts.num_samples = 5;
  opts.backend = &backend;
  MultiCastForecaster forecaster(opts);
  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  // 0.12 s at 0.05 s/call: draws at t=0, 0.05, 0.10 fit; the fourth
  // finds the clock at 0.15 and the loop stops, degraded 3/5.
  ctx.deadline = Deadline::At(0.12);
  auto result = forecaster.Forecast(frame, 6, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(backend.calls, 3u);
  EXPECT_TRUE(result.value().degraded);
  EXPECT_EQ(result.value().samples_used, 3u);
  EXPECT_NEAR(result.value().virtual_seconds, 0.15, 1e-12);
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
