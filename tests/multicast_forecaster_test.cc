#include "forecast/multicast_forecaster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "ts/split.h"

namespace multicast {
namespace forecast {
namespace {

// A strongly periodic, correlated 2-D frame the pattern model can nail.
ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 5.0 * std::sin(phase);
    b[i] = 50.0 - 20.0 * std::sin(phase);  // anti-correlated twin
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

TEST(MedianAggregateTest, MedianPerTimestamp) {
  auto r = MedianAggregate({{1.0, 10.0}, {3.0, 30.0}, {2.0, 20.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0, 20.0}));
}

TEST(MedianAggregateTest, SingleSampleIsIdentity) {
  auto r = MedianAggregate({{5.0, 6.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{5.0, 6.0}));
}

TEST(MedianAggregateTest, RejectsBadShapes) {
  EXPECT_FALSE(MedianAggregate({}).ok());
  EXPECT_FALSE(MedianAggregate({{1.0}, {1.0, 2.0}}).ok());
}

TEST(MedianAggregateTest, RobustToOneWildSample) {
  auto r = MedianAggregate({{1.0}, {1.1}, {900.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value()[0], 1.1, 1e-12);
}

class MuxVariantTest : public testing::TestWithParam<multiplex::MuxKind> {};

TEST_P(MuxVariantTest, ShapeAndNames) {
  MultiCastOptions opts;
  opts.mux = GetParam();
  opts.num_samples = 3;
  MultiCastForecaster f(opts);
  ts::Frame frame = PeriodicFrame(96);
  auto result = f.Forecast(frame, 12);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 2u);
  EXPECT_EQ(result.value().forecast.length(), 12u);
  EXPECT_EQ(result.value().forecast.dim(0).name(), "a");
  EXPECT_EQ(result.value().forecast.dim(1).name(), "b");
  EXPECT_GT(result.value().ledger.prompt_tokens, 0u);
  EXPECT_GT(result.value().ledger.generated_tokens, 0u);
}

TEST_P(MuxVariantTest, TracksPeriodicSignal) {
  MultiCastOptions opts;
  opts.mux = GetParam();
  opts.num_samples = 5;
  MultiCastForecaster f(opts);
  ts::Frame frame = PeriodicFrame(96);
  auto split = ts::SplitHorizon(frame, 12).ValueOrDie();
  auto result = f.Forecast(split.train, 12);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // RMSE well under the signal amplitude on each dimension.
  auto rmse0 = metrics::Rmse(split.test.dim(0).values(),
                             result.value().forecast.dim(0).values());
  auto rmse1 = metrics::Rmse(split.test.dim(1).values(),
                             result.value().forecast.dim(1).values());
  ASSERT_TRUE(rmse0.ok());
  ASSERT_TRUE(rmse1.ok());
  EXPECT_LT(rmse0.value(), 2.5) << "amplitude 5";
  EXPECT_LT(rmse1.value(), 10.0) << "amplitude 20";
}

TEST_P(MuxVariantTest, DeterministicForSameSeed) {
  MultiCastOptions opts;
  opts.mux = GetParam();
  opts.num_samples = 2;
  opts.seed = 99;
  ts::Frame frame = PeriodicFrame(60);
  MultiCastForecaster f1(opts), f2(opts);
  auto r1 = f1.Forecast(frame, 6);
  auto r2 = f2.Forecast(frame, 6);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(r1.value().forecast.dim(d).values(),
              r2.value().forecast.dim(d).values());
  }
}

TEST_P(MuxVariantTest, PagedMemoryIsBitIdentical) {
  // The paged block store must never change an output: same forecast,
  // same bands, same ledger, at serial and parallel thread counts.
  MultiCastOptions plain;
  plain.mux = GetParam();
  plain.num_samples = 4;
  plain.seed = 7;
  plain.quantiles = {0.1, 0.9};
  ts::Frame frame = PeriodicFrame(72);
  auto baseline = MultiCastForecaster(plain).Forecast(frame, 8);
  ASSERT_TRUE(baseline.ok());
  for (int threads : {1, 2}) {
    MultiCastOptions paged = plain;
    paged.paged_memory = true;
    paged.block_span = 16;
    paged.threads = threads;
    MultiCastForecaster f(paged);
    ASSERT_NE(f.block_pool(), nullptr);
    auto result = f.Forecast(frame, 8);
    ASSERT_TRUE(result.ok());
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(baseline.value().forecast.dim(d).values(),
                result.value().forecast.dim(d).values());
      ASSERT_EQ(baseline.value().quantile_bands.size(),
                result.value().quantile_bands.size());
      for (size_t q = 0; q < baseline.value().quantile_bands.size(); ++q) {
        EXPECT_EQ(baseline.value().quantile_bands[q].second.dim(d).values(),
                  result.value().quantile_bands[q].second.dim(d).values());
      }
    }
    EXPECT_EQ(baseline.value().ledger.total(),
              result.value().ledger.total());
    // The pipeline really exercised the pool.
    EXPECT_GT(f.block_pool()->stats().blocks_peak, 0u);
    EXPECT_GT(f.block_pool()->stats().sessions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MuxVariantTest,
    testing::Values(multiplex::MuxKind::kDigitInterleave,
                    multiplex::MuxKind::kValueInterleave,
                    multiplex::MuxKind::kValueConcat),
    [](const testing::TestParamInfo<multiplex::MuxKind>& info) {
      return multiplex::MuxKindName(info.param);
    });

TEST(MultiCastForecasterTest, NamesFollowPaper) {
  MultiCastOptions opts;
  opts.mux = multiplex::MuxKind::kDigitInterleave;
  EXPECT_EQ(MultiCastForecaster(opts).name(), "MultiCast (DI)");
  opts.mux = multiplex::MuxKind::kValueInterleave;
  EXPECT_EQ(MultiCastForecaster(opts).name(), "MultiCast (VI)");
  opts.quantization = Quantization::kSaxAlphabetic;
  EXPECT_EQ(MultiCastForecaster(opts).name(), "MultiCast SAX (alphabetical)");
  opts.quantization = Quantization::kSaxDigital;
  EXPECT_EQ(MultiCastForecaster(opts).name(), "MultiCast SAX (digital)");
}

TEST(MultiCastForecasterTest, RejectsBadArguments) {
  MultiCastForecaster f(MultiCastOptions{});
  ts::Frame frame = PeriodicFrame(48);
  EXPECT_FALSE(f.Forecast(frame, 0).ok());
  EXPECT_FALSE(f.Forecast(frame.Head(2), 4).ok());
  MultiCastOptions bad;
  bad.num_samples = 0;
  EXPECT_FALSE(MultiCastForecaster(bad).Forecast(frame, 4).ok());
}

TEST(MultiCastForecasterTest, TokenCostScalesWithSamples) {
  ts::Frame frame = PeriodicFrame(72);
  auto total_for = [&](int samples) {
    MultiCastOptions opts;
    opts.num_samples = samples;
    MultiCastForecaster f(opts);
    return f.Forecast(frame, 8).ValueOrDie().ledger.total();
  };
  size_t t5 = total_for(5);
  size_t t10 = total_for(10);
  EXPECT_EQ(t10, 2 * t5);  // Table VII: time doubles with samples
}

TEST(MultiCastForecasterTest, SaxUsesFarFewerTokens) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions raw;
  raw.num_samples = 3;
  MultiCastOptions sax = raw;
  sax.quantization = Quantization::kSaxAlphabetic;
  sax.sax_segment_length = 6;
  size_t raw_total =
      MultiCastForecaster(raw).Forecast(frame, 12).ValueOrDie().ledger
          .total();
  size_t sax_total =
      MultiCastForecaster(sax).Forecast(frame, 12).ValueOrDie().ledger
          .total();
  // Tables VIII/IX: SAX shrinks cost by roughly an order of magnitude
  // (the exact factor is ~ segment_length * (b + 1) / 2 here).
  EXPECT_LE(sax_total * 8, raw_total);
}

TEST(MultiCastForecasterTest, SaxAlphabeticForecastWorks) {
  MultiCastOptions opts;
  opts.quantization = Quantization::kSaxAlphabetic;
  opts.sax_segment_length = 3;
  opts.sax_alphabet_size = 5;
  opts.num_samples = 3;
  MultiCastForecaster f(opts);
  ts::Frame frame = PeriodicFrame(96);
  auto result = f.Forecast(frame, 12);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.length(), 12u);
  // Forecast stays within a sane band around the signal range.
  for (size_t t = 0; t < 12; ++t) {
    EXPECT_GT(result.value().forecast.at(0, t), 0.0);
    EXPECT_LT(result.value().forecast.at(0, t), 25.0);
  }
}

TEST(MultiCastForecasterTest, SaxDigitalForecastWorks) {
  MultiCastOptions opts;
  opts.quantization = Quantization::kSaxDigital;
  opts.sax_segment_length = 3;
  opts.sax_alphabet_size = 5;
  opts.num_samples = 3;
  MultiCastForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(96), 12);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.length(), 12u);
}

TEST(MultiCastForecasterTest, SaxDigitalAlphabet20Rejected) {
  // Table IX's N/A cell.
  MultiCastOptions opts;
  opts.quantization = Quantization::kSaxDigital;
  opts.sax_alphabet_size = 20;
  MultiCastForecaster f(opts);
  EXPECT_FALSE(f.Forecast(PeriodicFrame(96), 6).ok());
}

TEST(MultiCastForecasterTest, HorizonNotMultipleOfSegmentLength) {
  MultiCastOptions opts;
  opts.quantization = Quantization::kSaxAlphabetic;
  opts.sax_segment_length = 6;
  opts.num_samples = 2;
  MultiCastForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(96), 8);  // 8 % 6 != 0
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.length(), 8u);
}

TEST(QuantileAggregateTest, MatchesTsQuantile) {
  std::vector<std::vector<double>> samples = {
      {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}};
  auto lo = QuantileAggregate(samples, 0.25).ValueOrDie();
  auto hi = QuantileAggregate(samples, 0.75).ValueOrDie();
  EXPECT_DOUBLE_EQ(lo[0], 1.75);
  EXPECT_DOUBLE_EQ(hi[1], 32.5);
  EXPECT_FALSE(QuantileAggregate(samples, 0.0).ok());
  EXPECT_FALSE(QuantileAggregate(samples, 1.0).ok());
  EXPECT_FALSE(QuantileAggregate({}, 0.5).ok());
}

TEST(QuantileAggregateTest, AllEmptySamplesRejected) {
  std::vector<std::vector<double>> samples = {{}, {}, {}};
  auto r = QuantileAggregate(samples, 0.5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("empty"), std::string::npos);
}

TEST(QuantileAggregateRaggedTest, ZeroSamplesRejected) {
  auto r = QuantileAggregateRagged({}, 0.5, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("no surviving samples"),
            std::string::npos);
}

TEST(QuantileAggregateRaggedTest, AllEmptySamplesRejected) {
  std::vector<std::vector<double>> samples = {{}, {}};
  auto r = QuantileAggregateRagged(samples, 0.5, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("empty"), std::string::npos);
}

TEST(QuantileAggregateRaggedTest, ZeroOutLengthRejected) {
  std::vector<std::vector<double>> samples = {{1.0, 2.0}};
  auto r = QuantileAggregateRagged(samples, 0.5, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("length is zero"), std::string::npos);
}

TEST(QuantileAggregateRaggedTest, HoldsLastValueBeyondCoverage) {
  // One sample reaches t=2, the other stops at t=1; t=3 has no coverage
  // at all and must hold the last aggregated value.
  std::vector<std::vector<double>> samples = {{1.0, 3.0, 5.0}, {3.0, 5.0}};
  bool held = false;
  auto r = QuantileAggregateRagged(samples, 0.5, 4, &held);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 4u);
  EXPECT_DOUBLE_EQ(r.value()[0], 2.0);  // median of {1, 3}
  EXPECT_DOUBLE_EQ(r.value()[1], 4.0);  // median of {3, 5}
  EXPECT_DOUBLE_EQ(r.value()[2], 5.0);  // only sample 0 covers t=2
  EXPECT_DOUBLE_EQ(r.value()[3], 5.0);  // hold-last fill
  EXPECT_TRUE(held);
}

TEST(MultiCastForecasterTest, QuantileBandsBracketMedian) {
  MultiCastOptions opts;
  opts.num_samples = 9;
  opts.quantiles = {0.9, 0.1};  // unsorted on purpose
  MultiCastForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(72), 8).ValueOrDie();
  ASSERT_EQ(result.quantile_bands.size(), 2u);
  // Returned in ascending level order.
  EXPECT_DOUBLE_EQ(result.quantile_bands[0].first, 0.1);
  EXPECT_DOUBLE_EQ(result.quantile_bands[1].first, 0.9);
  for (size_t d = 0; d < 2; ++d) {
    for (size_t t = 0; t < 8; ++t) {
      double lo = result.quantile_bands[0].second.at(d, t);
      double hi = result.quantile_bands[1].second.at(d, t);
      double mid = result.forecast.at(d, t);
      EXPECT_LE(lo, mid + 1e-12);
      EXPECT_LE(mid, hi + 1e-12);
    }
  }
}

TEST(MultiCastForecasterTest, QuantileBandsWorkUnderSax) {
  MultiCastOptions opts;
  opts.num_samples = 5;
  opts.quantiles = {0.25, 0.75};
  opts.quantization = Quantization::kSaxAlphabetic;
  opts.sax_segment_length = 3;
  MultiCastForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(72), 6).ValueOrDie();
  ASSERT_EQ(result.quantile_bands.size(), 2u);
  EXPECT_EQ(result.quantile_bands[0].second.length(), 6u);
}

TEST(MultiCastForecasterTest, BadQuantileLevelRejected) {
  MultiCastOptions opts;
  opts.num_samples = 3;
  opts.quantiles = {1.5};
  MultiCastForecaster f(opts);
  EXPECT_FALSE(f.Forecast(PeriodicFrame(48), 4).ok());
}

TEST(MultiCastForecasterTest, NoQuantilesByDefault) {
  MultiCastOptions opts;
  opts.num_samples = 2;
  MultiCastForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(48), 4).ValueOrDie();
  EXPECT_TRUE(result.quantile_bands.empty());
}

TEST(MultiCastForecasterTest, SingleDimensionSupported) {
  std::vector<double> v;
  for (int i = 0; i < 60; ++i) v.push_back(std::sin(i * 0.5) * 3 + 5);
  ts::Frame uni =
      ts::Frame::FromSeries({ts::Series(v, "solo")}, "uni").ValueOrDie();
  MultiCastOptions opts;
  opts.num_samples = 2;
  MultiCastForecaster f(opts);
  auto result = f.Forecast(uni, 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 1u);
}

TEST(MultiCastForecasterTest, FourDigitsSupported) {
  MultiCastOptions opts;
  opts.digits = 4;
  opts.num_samples = 2;
  MultiCastForecaster f(opts);
  auto result = f.Forecast(PeriodicFrame(60), 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
