#include "token/vocabulary.h"

#include <gtest/gtest.h>

namespace multicast {
namespace token {
namespace {

TEST(VocabularyTest, DigitsHasElevenTokens) {
  Vocabulary v = Vocabulary::Digits();
  EXPECT_EQ(v.size(), 11u);
  for (char c = '0'; c <= '9'; ++c) EXPECT_TRUE(v.Contains(c));
  EXPECT_TRUE(v.Contains(','));
  EXPECT_FALSE(v.Contains('a'));
}

TEST(VocabularyTest, IdsAreStableAndBidirectional) {
  Vocabulary v = Vocabulary::Digits();
  for (char c = '0'; c <= '9'; ++c) {
    auto id = v.IdOf(c);
    ASSERT_TRUE(id.ok());
    auto back = v.SymbolOf(id.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), c);
  }
}

TEST(VocabularyTest, AddIsIdempotent) {
  Vocabulary v;
  TokenId a = v.Add('x');
  TokenId b = v.Add('x');
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, UnknownSymbolIsNotFound) {
  Vocabulary v = Vocabulary::Digits();
  EXPECT_EQ(v.IdOf('z').status().code(), StatusCode::kNotFound);
}

TEST(VocabularyTest, BadIdIsOutOfRange) {
  Vocabulary v = Vocabulary::Digits();
  EXPECT_FALSE(v.SymbolOf(-1).ok());
  EXPECT_FALSE(v.SymbolOf(100).ok());
}

TEST(VocabularyTest, SaxAlphabeticSizes) {
  auto v = Vocabulary::SaxAlphabetic(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().size(), 6u);  // a..e plus comma
  EXPECT_TRUE(v.value().Contains('e'));
  EXPECT_FALSE(v.value().Contains('f'));
  EXPECT_TRUE(v.value().Contains(','));
}

TEST(VocabularyTest, SaxAlphabeticBounds) {
  EXPECT_FALSE(Vocabulary::SaxAlphabetic(1).ok());
  EXPECT_FALSE(Vocabulary::SaxAlphabetic(27).ok());
  EXPECT_TRUE(Vocabulary::SaxAlphabetic(26).ok());
}

TEST(VocabularyTest, SaxDigitalCapsAtTen) {
  // Table IX's "N/A" cell: digital SAX cannot express 20 symbols.
  EXPECT_FALSE(Vocabulary::SaxDigital(20).ok());
  auto v = Vocabulary::SaxDigital(10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().size(), 11u);
}

TEST(VocabularyTest, SaxDigitalSymbols) {
  auto v = Vocabulary::SaxDigital(5);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().Contains('4'));
  EXPECT_FALSE(v.value().Contains('5'));
}

TEST(VocabularyTest, CommaId) {
  Vocabulary v = Vocabulary::Digits();
  auto comma = v.CommaId();
  ASSERT_TRUE(comma.ok());
  EXPECT_EQ(v.SymbolOf(comma.value()).value(), ',');
  Vocabulary empty;
  EXPECT_FALSE(empty.CommaId().ok());
}

TEST(VocabularyTest, SymbolsInIdOrder) {
  Vocabulary v = Vocabulary::Digits();
  const auto& syms = v.symbols();
  ASSERT_EQ(syms.size(), 11u);
  EXPECT_EQ(syms[0], '0');
  EXPECT_EQ(syms[10], ',');
}

}  // namespace
}  // namespace token
}  // namespace multicast
