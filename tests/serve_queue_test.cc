#include "serve/queue.h"

#include <gtest/gtest.h>

namespace multicast {
namespace serve {
namespace {

ForecastRequest Req(size_t id, double arrival, double deadline) {
  ForecastRequest r;
  r.id = id;
  r.arrival_seconds = arrival;
  r.deadline_seconds = deadline;
  return r;
}

TEST(AdmissionQueueTest, ShedsExactlyBeyondCapacity) {
  QueuePolicy policy;
  policy.capacity = 2;
  AdmissionQueue queue(policy);
  EXPECT_TRUE(queue.Offer(Req(0, 0.0, 10.0)).ok());
  EXPECT_TRUE(queue.Offer(Req(1, 0.1, 10.0)).ok());
  Status shed = queue.Offer(Req(2, 0.2, 10.0));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("request 2"), std::string::npos);
  EXPECT_EQ(queue.stats().offered, 3u);
  EXPECT_EQ(queue.stats().admitted, 2u);
  EXPECT_EQ(queue.stats().rejected_full, 1u);
  EXPECT_EQ(queue.stats().max_depth, 2u);
}

TEST(AdmissionQueueTest, FifoPopsInArrivalOrder) {
  AdmissionQueue queue(QueuePolicy{});
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 9.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.1, 5.0)).ok());  // tighter deadline
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(0.2, &out, nullptr));
  EXPECT_EQ(out.id, 0u);  // FIFO ignores urgency
}

TEST(AdmissionQueueTest, EdfPopsMostUrgentFirst) {
  QueuePolicy policy;
  policy.order = QueueOrder::kEarliestDeadlineFirst;
  AdmissionQueue queue(policy);
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 9.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.1, 5.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(2, 0.2, 7.0)).ok());
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(0.3, &out, nullptr));
  EXPECT_EQ(out.id, 1u);
  ASSERT_TRUE(queue.Pop(0.3, &out, nullptr));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(queue.Pop(0.3, &out, nullptr));
  EXPECT_EQ(out.id, 0u);
}

TEST(AdmissionQueueTest, EdfBreaksDeadlineTiesByArrival) {
  QueuePolicy policy;
  policy.order = QueueOrder::kEarliestDeadlineFirst;
  AdmissionQueue queue(policy);
  ASSERT_TRUE(queue.Offer(Req(7, 0.0, 5.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(8, 0.1, 5.0)).ok());
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(0.2, &out, nullptr));
  EXPECT_EQ(out.id, 7u);
}

TEST(AdmissionQueueTest, EdfTieBreakSurvivesManyTiesAndInterleavedPops) {
  // A binary heap is not stable by itself; the (deadline, seq) key must
  // keep equal-deadline requests in push order even as pops reshuffle
  // the heap and new ties arrive in between.
  QueuePolicy policy;
  policy.order = QueueOrder::kEarliestDeadlineFirst;
  policy.capacity = 16;
  AdmissionQueue queue(policy);
  for (size_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(queue.Offer(Req(id, 0.1 * static_cast<double>(id), 5.0))
                    .ok());
  }
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(0.5, &out, nullptr));
  EXPECT_EQ(out.id, 0u);
  // A more urgent request and another 5.0-deadline tie arrive mid-drain.
  ASSERT_TRUE(queue.Offer(Req(100, 0.6, 1.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(101, 0.7, 5.0)).ok());
  std::vector<size_t> order;
  while (queue.Pop(0.8, &out, nullptr)) order.push_back(out.id);
  EXPECT_EQ(order, (std::vector<size_t>{100, 1, 2, 3, 4, 101}));
}

TEST(AdmissionQueueTest, EdfFlushReturnsArrivalOrder) {
  QueuePolicy policy;
  policy.order = QueueOrder::kEarliestDeadlineFirst;
  AdmissionQueue queue(policy);
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 9.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.1, 3.0)).ok());  // most urgent
  ASSERT_TRUE(queue.Offer(Req(2, 0.2, 6.0)).ok());
  std::vector<ForecastRequest> flushed = queue.Flush();
  ASSERT_EQ(flushed.size(), 3u);
  EXPECT_EQ(flushed[0].id, 0u);  // drain reports arrival order,
  EXPECT_EQ(flushed[1].id, 1u);  // not urgency order
  EXPECT_EQ(flushed[2].id, 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueueTest, DropsExpiredAtDequeue) {
  AdmissionQueue queue(QueuePolicy{});  // drop_expired_at_dequeue on
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 1.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.1, 9.0)).ok());
  std::vector<ForecastRequest> expired;
  ForecastRequest out;
  // Worker frees up at t=2: request 0's deadline already passed.
  ASSERT_TRUE(queue.Pop(2.0, &out, &expired));
  EXPECT_EQ(out.id, 1u);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 0u);
  EXPECT_EQ(queue.stats().dropped_expired, 1u);
  EXPECT_EQ(queue.stats().popped, 1u);
}

TEST(AdmissionQueueTest, ExpiredExactlyAtDeadlineIsStillServed) {
  AdmissionQueue queue(QueuePolicy{});
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 2.0)).ok());
  ForecastRequest out;
  // now == deadline: still worth serving (meets-at-deadline rule).
  ASSERT_TRUE(queue.Pop(2.0, &out, nullptr));
  EXPECT_EQ(out.id, 0u);
}

TEST(AdmissionQueueTest, KeepExpiredWhenPolicyDisablesDropping) {
  QueuePolicy policy;
  policy.drop_expired_at_dequeue = false;
  AdmissionQueue queue(policy);
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 1.0)).ok());
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(5.0, &out, nullptr));
  EXPECT_EQ(out.id, 0u);
}

TEST(AdmissionQueueTest, ClosedQueueRejectsButStillDrains) {
  AdmissionQueue queue(QueuePolicy{});
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 9.0)).ok());
  queue.Close();
  Status rejected = queue.Offer(Req(1, 0.1, 9.0));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.stats().rejected_closed, 1u);
  // Waiting work is unaffected by Close().
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(0.2, &out, nullptr));
  EXPECT_EQ(out.id, 0u);
}

TEST(AdmissionQueueTest, RetryAfterTracksTheDrainRate) {
  QueuePolicy policy;
  policy.capacity = 2;
  policy.retry_after_default_seconds = 1.5;
  AdmissionQueue queue(policy);
  // Before the queue has drained twice it can only quote the default.
  EXPECT_DOUBLE_EQ(queue.RetryAfterSeconds(), 1.5);
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 99.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.1, 99.0)).ok());
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(1.0, &out, nullptr));
  EXPECT_DOUBLE_EQ(queue.RetryAfterSeconds(), 1.5);  // one pop: no gap yet
  ASSERT_TRUE(queue.Pop(1.4, &out, nullptr));
  // Two pops 0.4 s apart: the mean inter-pop gap is the hint.
  EXPECT_NEAR(queue.RetryAfterSeconds(), 0.4, 1e-9);
  // The hint rides on queue-full rejection messages.
  ASSERT_TRUE(queue.Offer(Req(2, 1.5, 99.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(3, 1.5, 99.0)).ok());
  Status shed = queue.Offer(Req(4, 1.6, 99.0));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("retry after 0.400s"), std::string::npos);
}

// Regression: every recent pop at one virtual instant (a burst drain)
// used to quote the *default* hint — telling clients to back off
// longest exactly when the queue drained fastest. A zero-span history
// now means "retry immediately".
TEST(AdmissionQueueTest, RetryAfterZeroSpanBurstMeansRetryNow) {
  QueuePolicy policy;
  policy.capacity = 4;
  policy.retry_after_default_seconds = 1.5;
  AdmissionQueue queue(policy);
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 99.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.0, 99.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(2, 0.0, 99.0)).ok());
  ForecastRequest out;
  ASSERT_TRUE(queue.Pop(2.0, &out, nullptr));
  ASSERT_TRUE(queue.Pop(2.0, &out, nullptr));
  ASSERT_TRUE(queue.Pop(2.0, &out, nullptr));
  EXPECT_DOUBLE_EQ(queue.RetryAfterSeconds(), 0.0);
}

TEST(AdmissionQueueTest, FlushEmptiesTheBuffer) {
  AdmissionQueue queue(QueuePolicy{});
  ASSERT_TRUE(queue.Offer(Req(0, 0.0, 9.0)).ok());
  ASSERT_TRUE(queue.Offer(Req(1, 0.1, 9.0)).ok());
  std::vector<ForecastRequest> flushed = queue.Flush();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_TRUE(queue.empty());
  ForecastRequest out;
  EXPECT_FALSE(queue.Pop(0.2, &out, nullptr));
}

}  // namespace
}  // namespace serve
}  // namespace multicast
