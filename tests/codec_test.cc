#include "token/codec.h"

#include <gtest/gtest.h>

namespace multicast {
namespace token {
namespace {

TEST(FixedWidthTest, PadsWithZeros) {
  EXPECT_EQ(FixedWidthDigits(7, 3).ValueOrDie(), "007");
  EXPECT_EQ(FixedWidthDigits(0, 2).ValueOrDie(), "00");
  EXPECT_EQ(FixedWidthDigits(99, 2).ValueOrDie(), "99");
}

TEST(FixedWidthTest, RejectsOverflowAndNegative) {
  EXPECT_FALSE(FixedWidthDigits(100, 2).ok());
  EXPECT_FALSE(FixedWidthDigits(-1, 2).ok());
  EXPECT_FALSE(FixedWidthDigits(5, 0).ok());
  EXPECT_FALSE(FixedWidthDigits(5, 19).ok());
}

TEST(FixedWidthTest, ParseRoundTrip) {
  for (int64_t v : {0LL, 7LL, 42LL, 999LL}) {
    auto s = FixedWidthDigits(v, 4);
    ASSERT_TRUE(s.ok());
    auto back = ParseFixedWidthDigits(s.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(ParseFixedWidthTest, RejectsNonDigits) {
  EXPECT_FALSE(ParseFixedWidthDigits("").ok());
  EXPECT_FALSE(ParseFixedWidthDigits("12a").ok());
  EXPECT_FALSE(ParseFixedWidthDigits("-12").ok());
}

TEST(ParseFixedWidthTest, LeadingZeros) {
  EXPECT_EQ(ParseFixedWidthDigits("007").ValueOrDie(), 7);
  EXPECT_EQ(ParseFixedWidthDigits("000").ValueOrDie(), 0);
}

TEST(ParseFixedWidthTest, OverflowGuard) {
  EXPECT_FALSE(ParseFixedWidthDigits("99999999999999999999999").ok());
}

TEST(EncodeDecodeTest, RoundTrip) {
  Vocabulary v = Vocabulary::Digits();
  std::string text = "17,23,26,31";
  auto ids = Encode(text, v);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), text.size());
  auto back = Decode(ids.value(), v);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), text);
}

TEST(EncodeTest, RejectsUnknownSymbol) {
  Vocabulary v = Vocabulary::Digits();
  EXPECT_FALSE(Encode("12x", v).ok());
}

TEST(DecodeTest, RejectsBadId) {
  Vocabulary v = Vocabulary::Digits();
  EXPECT_FALSE(Decode({0, 99}, v).ok());
}

TEST(EncodeTest, SaxVocabularyWorks) {
  auto v = Vocabulary::SaxAlphabetic(5);
  ASSERT_TRUE(v.ok());
  auto ids = Encode("ab,cd", v.value());
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(Decode(ids.value(), v.value()).ValueOrDie(), "ab,cd");
}

TEST(SplitFieldsTest, Behaviour) {
  EXPECT_EQ(SplitFields("17,23"), (std::vector<std::string>{"17", "23"}));
  EXPECT_EQ(SplitFields("17,23,"),
            (std::vector<std::string>{"17", "23", ""}));
  EXPECT_EQ(SplitFields("17"), (std::vector<std::string>{"17"}));
}

}  // namespace
}  // namespace token
}  // namespace multicast
