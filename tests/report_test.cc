#include "eval/report.h"

#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "data/datasets.h"

namespace multicast {
namespace eval {
namespace {

std::vector<MethodRun> TwoRuns() {
  MethodRun a;
  a.method = "MethodA";
  a.rmse_per_dim = {0.781, 4.639};
  MethodRun b;
  b.method = "MethodB";
  b.rmse_per_dim = {0.92, 2.63};
  return {a, b};
}

TEST(RenderRmseTableTest, ContainsAllCells) {
  std::string out = RenderRmseTable("Table X", {"GasRate", "CO2"},
                                    TwoRuns());
  EXPECT_NE(out.find("Table X"), std::string::npos);
  EXPECT_NE(out.find("MethodA"), std::string::npos);
  EXPECT_NE(out.find("0.781"), std::string::npos);
  EXPECT_NE(out.find("2.63"), std::string::npos);
}

TEST(RenderRmseTableTest, MarksBestPerColumn) {
  std::string out = RenderRmseTable("", {"d0", "d1"}, TwoRuns());
  // MethodA wins d0 (0.781 < 0.92), MethodB wins d1 (2.63 < 4.639).
  EXPECT_NE(out.find("0.781 *"), std::string::npos);
  EXPECT_NE(out.find("2.63 *"), std::string::npos);
  EXPECT_EQ(out.find("0.92 *"), std::string::npos);
}

TEST(RenderRmseTableTest, PaperColumnShown) {
  std::string out = RenderRmseTable("", {"d0", "d1"}, TwoRuns(),
                                    {{0.7, 4.0}, {0.9, 2.6}});
  EXPECT_NE(out.find("(paper 0.7)"), std::string::npos);
  EXPECT_NE(out.find("(paper 2.6)"), std::string::npos);
}

TEST(RenderRmseTableTest, ShortRunsPadded) {
  MethodRun partial;
  partial.method = "OnlyOneDim";
  partial.rmse_per_dim = {1.0};
  std::string out = RenderRmseTable("", {"d0", "d1"}, {partial});
  EXPECT_NE(out.find("OnlyOneDim"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(RenderForecastFigureTest, OverlayContainsAllSeries) {
  auto frame = data::MakeGasRate().ValueOrDie();
  auto split = ts::SplitHorizon(frame, 24).ValueOrDie();
  baselines::DriftForecaster drift;
  auto run = RunMethod(&drift, split).ValueOrDie();
  std::string out = RenderForecastFigure("Fig. test", split, 0, run);
  EXPECT_NE(out.find("Fig. test"), std::string::npos);
  EXPECT_NE(out.find("history"), std::string::npos);
  EXPECT_NE(out.find("actual"), std::string::npos);
  EXPECT_NE(out.find("Drift forecast"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(FormatLedgerTest, Format) {
  lm::TokenLedger ledger{1320, 84};
  EXPECT_EQ(FormatLedger(ledger), "1320+84");
}

}  // namespace
}  // namespace eval
}  // namespace multicast
