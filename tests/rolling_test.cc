#include "eval/rolling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.h"
#include "data/datasets.h"
#include "forecast/multicast_forecaster.h"

namespace multicast {
namespace eval {
namespace {

TEST(RollingTest, FoldCountAndShapes) {
  auto frame = data::MakeGasRate().ValueOrDie();
  baselines::NaiveLastForecaster naive;
  RollingOptions opts;
  opts.horizon = 10;
  opts.stride = 20;
  opts.folds = 4;
  auto result = RollingOriginEvaluate(&naive, frame, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().method, "NaiveLast");
  EXPECT_EQ(result.value().fold_rmse.size(), 4u);
  ASSERT_EQ(result.value().mean_rmse.size(), 2u);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_GT(result.value().mean_rmse[d], 0.0);
    EXPECT_GE(result.value().stddev_rmse[d], 0.0);
  }
}

TEST(RollingTest, MeanMatchesFolds) {
  auto frame = data::MakeElectricity().ValueOrDie();
  baselines::DriftForecaster drift;
  RollingOptions opts;
  opts.horizon = 8;
  opts.stride = 16;
  opts.folds = 3;
  auto result = RollingOriginEvaluate(&drift, frame, opts).ValueOrDie();
  for (size_t d = 0; d < 3; ++d) {
    double sum = 0.0;
    for (const auto& fold : result.fold_rmse) sum += fold[d];
    EXPECT_NEAR(result.mean_rmse[d], sum / 3.0, 1e-12);
  }
}

TEST(RollingTest, SingleFoldMatchesRunMethod) {
  auto frame = data::MakeGasRate().ValueOrDie();
  baselines::NaiveLastForecaster naive;
  RollingOptions opts;
  opts.horizon = 12;
  opts.folds = 1;
  auto rolling = RollingOriginEvaluate(&naive, frame, opts).ValueOrDie();
  auto split = ts::SplitHorizon(frame, 12).ValueOrDie();
  auto single = RunMethod(&naive, split).ValueOrDie();
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(rolling.mean_rmse[d], single.rmse_per_dim[d], 1e-12);
    EXPECT_NEAR(rolling.stddev_rmse[d], 0.0, 1e-12);
  }
}

TEST(RollingTest, LedgerAccumulatesAcrossFolds) {
  auto frame = data::MakeGasRate().ValueOrDie();
  forecast::MultiCastOptions mc;
  mc.num_samples = 2;
  forecast::MultiCastForecaster f(mc);
  RollingOptions opts;
  opts.horizon = 6;
  opts.stride = 12;
  opts.folds = 2;
  auto result = RollingOriginEvaluate(&f, frame, opts).ValueOrDie();
  EXPECT_GT(result.ledger.prompt_tokens, 0u);
  // Two folds of a sampled LLM run: more tokens than any single fold.
  forecast::MultiCastForecaster single(mc);
  auto split = ts::SplitHorizon(frame, 6).ValueOrDie();
  auto one = RunMethod(&single, split).ValueOrDie();
  EXPECT_GT(result.ledger.total(), one.ledger.total());
}

TEST(RollingTest, RejectsTooManyFolds) {
  auto frame = data::MakeWeather().ValueOrDie();  // length 217
  baselines::NaiveLastForecaster naive;
  RollingOptions opts;
  opts.horizon = 40;
  opts.stride = 40;
  opts.folds = 6;  // needs 240 + min_train
  EXPECT_FALSE(RollingOriginEvaluate(&naive, frame, opts).ok());
  opts.folds = 0;
  EXPECT_FALSE(RollingOriginEvaluate(&naive, frame, opts).ok());
  EXPECT_FALSE(
      RollingOriginEvaluate(nullptr, frame, RollingOptions{}).ok());
}

}  // namespace
}  // namespace eval
}  // namespace multicast
