#include "multiplex/multiplexer.h"

#include <gtest/gtest.h>

#include "multiplex/digit_interleave.h"
#include "multiplex/value_concat.h"
#include "multiplex/value_interleave.h"

namespace multicast {
namespace multiplex {
namespace {

// The paper's running example (Fig. 1): d1 = [17, 26], d2 = [23, 31].
MuxInput PaperExample() {
  MuxInput input;
  input.values = {{"17", "26"}, {"23", "31"}};
  return input;
}

TEST(MuxKindTest, NamesAndParsing) {
  EXPECT_STREQ(MuxKindName(MuxKind::kDigitInterleave), "DI");
  EXPECT_STREQ(MuxKindName(MuxKind::kValueInterleave), "VI");
  EXPECT_STREQ(MuxKindName(MuxKind::kValueConcat), "VC");
  EXPECT_EQ(ParseMuxKind("di").ValueOrDie(), MuxKind::kDigitInterleave);
  EXPECT_EQ(ParseMuxKind("VI").ValueOrDie(), MuxKind::kValueInterleave);
  EXPECT_EQ(ParseMuxKind("Vc").ValueOrDie(), MuxKind::kValueConcat);
  EXPECT_FALSE(ParseMuxKind("XX").ok());
}

TEST(CreateMultiplexerTest, FactoryMatchesKind) {
  for (MuxKind kind : {MuxKind::kDigitInterleave, MuxKind::kValueInterleave,
                       MuxKind::kValueConcat}) {
    auto mux = CreateMultiplexer(kind);
    ASSERT_NE(mux, nullptr);
    EXPECT_EQ(mux->kind(), kind);
  }
}

TEST(DigitInterleaveTest, MatchesPaperFigure1a) {
  DigitInterleaveMultiplexer mux;
  auto out = mux.Multiplex(PaperExample(), {2, 2});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "1273,2361");
}

TEST(ValueInterleaveTest, MatchesPaperFigure1b) {
  ValueInterleaveMultiplexer mux;
  auto out = mux.Multiplex(PaperExample(), {2, 2});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "1723,2631");
}

TEST(ValueConcatTest, MatchesPaperFigure1c) {
  ValueConcatMultiplexer mux;
  auto out = mux.Multiplex(PaperExample(), {2, 2});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "17,23,26,31");
}

class AllMuxTest : public testing::TestWithParam<MuxKind> {};

TEST_P(AllMuxTest, RoundTripIsExact) {
  auto mux = CreateMultiplexer(GetParam());
  MuxInput input = PaperExample();
  auto text = mux->Multiplex(input, {2, 2});
  ASSERT_TRUE(text.ok());
  auto back = mux->Demultiplex(text.value(), {2, 2}, false);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().values, input.values);
}

TEST_P(AllMuxTest, ThreeDimensionalRoundTrip) {
  auto mux = CreateMultiplexer(GetParam());
  MuxInput input;
  input.values = {{"01", "99", "50"}, {"12", "34", "56"}, {"78", "90", "11"}};
  auto text = mux->Multiplex(input, {2, 2, 2});
  ASSERT_TRUE(text.ok());
  auto back = mux->Demultiplex(text.value(), {2, 2, 2}, false);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().values, input.values);
}

TEST_P(AllMuxTest, SingleDimensionRoundTrip) {
  auto mux = CreateMultiplexer(GetParam());
  MuxInput input;
  input.values = {{"170", "263", "099"}};
  auto text = mux->Multiplex(input, {3});
  ASSERT_TRUE(text.ok());
  auto back = mux->Demultiplex(text.value(), {3}, false);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().values, input.values);
}

TEST_P(AllMuxTest, PartialTrailingTimestampDropped) {
  auto mux = CreateMultiplexer(GetParam());
  auto text = mux->Multiplex(PaperExample(), {2, 2});
  ASSERT_TRUE(text.ok());
  // Chop off the last character, as a token-budgeted LLM would.
  std::string truncated = text.value().substr(0, text.value().size() - 1);
  auto strict = mux->Demultiplex(truncated, {2, 2}, false);
  EXPECT_FALSE(strict.ok());
  auto partial = mux->Demultiplex(truncated, {2, 2}, true);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.value().num_timestamps(), 1u);
  EXPECT_EQ(partial.value().values[0][0], "17");
  EXPECT_EQ(partial.value().values[1][0], "23");
}

TEST_P(AllMuxTest, TrailingCommaHandledWithPartial) {
  auto mux = CreateMultiplexer(GetParam());
  auto text = mux->Multiplex(PaperExample(), {2, 2});
  ASSERT_TRUE(text.ok());
  auto partial = mux->Demultiplex(text.value() + ",", {2, 2}, true);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.value().num_timestamps(), 2u);
}

TEST_P(AllMuxTest, GarbageInputRejected) {
  auto mux = CreateMultiplexer(GetParam());
  EXPECT_FALSE(mux->Demultiplex("abc!!,def", {2, 2}, false).ok());
  EXPECT_FALSE(mux->Demultiplex("", {2, 2}, true).ok());
}

TEST_P(AllMuxTest, ValidationCatchesShapeErrors) {
  auto mux = CreateMultiplexer(GetParam());
  MuxInput empty;
  EXPECT_FALSE(mux->Multiplex(empty, {}).ok());

  MuxInput ragged;
  ragged.values = {{"17", "26"}, {"23"}};
  EXPECT_FALSE(mux->Multiplex(ragged, {2, 2}).ok());

  MuxInput bad_width;
  bad_width.values = {{"170", "260"}, {"23", "31"}};
  EXPECT_FALSE(mux->Multiplex(bad_width, {2, 2}).ok());

  MuxInput bad_chars;
  bad_chars.values = {{"1,", "26"}, {"23", "31"}};
  EXPECT_FALSE(mux->Multiplex(bad_chars, {2, 2}).ok());
}

TEST_P(AllMuxTest, SeparatorGrammarMatchesSerialization) {
  // Property: re-serializing one timestamp and checking each position
  // against IsSeparatorPosition must agree with where commas appear.
  auto mux = CreateMultiplexer(GetParam());
  std::vector<int> widths = {2, 2};  // uniform so DI is defined too
  MuxInput input;
  input.values = {{"17"}, {"23"}};
  auto text = mux->Multiplex(input, widths);
  ASSERT_TRUE(text.ok());
  std::string cycle = text.value() + ",";  // one full timestamp cycle
  ASSERT_EQ(cycle.size(), mux->TokensPerTimestamp(widths));
  for (size_t pos = 0; pos < cycle.size(); ++pos) {
    EXPECT_EQ(mux->IsSeparatorPosition(pos, widths), cycle[pos] == ',')
        << "pos=" << pos << " cycle=" << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AllMuxTest,
                         testing::Values(MuxKind::kDigitInterleave,
                                         MuxKind::kValueInterleave,
                                         MuxKind::kValueConcat),
                         [](const testing::TestParamInfo<MuxKind>& info) {
                           return MuxKindName(info.param);
                         });

TEST(DigitInterleaveTest, RequiresUniformWidths) {
  DigitInterleaveMultiplexer mux;
  MuxInput input;
  input.values = {{"17"}, {"023"}};
  EXPECT_FALSE(mux.Multiplex(input, {2, 3}).ok());
  EXPECT_FALSE(mux.Demultiplex("17023", {2, 3}, false).ok());
}

TEST(ValueInterleaveTest, MixedWidthsSupported) {
  ValueInterleaveMultiplexer mux;
  MuxInput input;
  input.values = {{"17", "26"}, {"023", "931"}};
  auto text = mux.Multiplex(input, {2, 3});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "17023,26931");
  auto back = mux.Demultiplex(text.value(), {2, 3}, false);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().values, input.values);
}

TEST(ValueConcatTest, MixedWidthsSupported) {
  ValueConcatMultiplexer mux;
  MuxInput input;
  input.values = {{"17"}, {"023"}};
  auto text = mux.Multiplex(input, {2, 3});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "17,023");
}

TEST(TokensPerTimestampTest, CountsMatchPaperCosts) {
  // DI/VI: sum(widths) digits + 1 comma. VC: + one comma per value.
  std::vector<int> widths = {2, 2, 2};
  EXPECT_EQ(DigitInterleaveMultiplexer().TokensPerTimestamp(widths), 7u);
  EXPECT_EQ(ValueInterleaveMultiplexer().TokensPerTimestamp(widths), 7u);
  EXPECT_EQ(ValueConcatMultiplexer().TokensPerTimestamp(widths), 9u);
}

TEST(DigitInterleaveTest, LeadingDigitsComeFirst) {
  // The DI property the paper argues for: all most-significant digits
  // precede all least-significant digits within a timestamp.
  DigitInterleaveMultiplexer mux;
  MuxInput input;
  input.values = {{"19"}, {"28"}, {"37"}};
  auto text = mux.Multiplex(input, {2, 2, 2});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "123987");
}

TEST_P(AllMuxTest, DimensionAtPositionConsistentWithGrammar) {
  // Property: every cycle position is either a separator or belongs to
  // exactly one valid dimension, and each dimension owns widths[d]
  // positions per cycle.
  auto mux = CreateMultiplexer(GetParam());
  std::vector<int> widths = {2, 2, 2};
  size_t cycle = mux->TokensPerTimestamp(widths);
  std::vector<int> owned(widths.size(), 0);
  for (size_t pos = 0; pos < cycle; ++pos) {
    int d = mux->DimensionAtPosition(pos, widths);
    if (mux->IsSeparatorPosition(pos, widths)) {
      EXPECT_EQ(d, -1) << "pos " << pos;
    } else {
      ASSERT_GE(d, 0) << "pos " << pos;
      ASSERT_LT(d, 3) << "pos " << pos;
      ++owned[static_cast<size_t>(d)];
    }
  }
  for (size_t d = 0; d < widths.size(); ++d) {
    EXPECT_EQ(owned[d], widths[d]) << "dim " << d;
  }
}

TEST(DimensionAtPositionTest, MatchesPaperExampleLayouts) {
  std::vector<int> widths = {2, 2};
  // DI "1273": positions 0..3 belong to dims 0,1,0,1.
  DigitInterleaveMultiplexer di;
  EXPECT_EQ(di.DimensionAtPosition(0, widths), 0);
  EXPECT_EQ(di.DimensionAtPosition(1, widths), 1);
  EXPECT_EQ(di.DimensionAtPosition(2, widths), 0);
  EXPECT_EQ(di.DimensionAtPosition(3, widths), 1);
  EXPECT_EQ(di.DimensionAtPosition(4, widths), -1);  // comma
  // VI "1723": 0,0,1,1.
  ValueInterleaveMultiplexer vi;
  EXPECT_EQ(vi.DimensionAtPosition(0, widths), 0);
  EXPECT_EQ(vi.DimensionAtPosition(1, widths), 0);
  EXPECT_EQ(vi.DimensionAtPosition(2, widths), 1);
  EXPECT_EQ(vi.DimensionAtPosition(3, widths), 1);
  // VC "17,23,": 0,0,comma,1,1,comma.
  ValueConcatMultiplexer vc;
  EXPECT_EQ(vc.DimensionAtPosition(0, widths), 0);
  EXPECT_EQ(vc.DimensionAtPosition(1, widths), 0);
  EXPECT_EQ(vc.DimensionAtPosition(2, widths), -1);
  EXPECT_EQ(vc.DimensionAtPosition(3, widths), 1);
  EXPECT_EQ(vc.DimensionAtPosition(4, widths), 1);
  EXPECT_EQ(vc.DimensionAtPosition(5, widths), -1);
}

TEST(IsMuxSymbolsTest, Behaviour) {
  EXPECT_TRUE(IsMuxSymbols("17"));
  EXPECT_TRUE(IsMuxSymbols("abc"));
  EXPECT_TRUE(IsMuxSymbols("a1"));
  EXPECT_FALSE(IsMuxSymbols(""));
  EXPECT_FALSE(IsMuxSymbols("1,2"));
  EXPECT_FALSE(IsMuxSymbols("1 2"));
}

}  // namespace
}  // namespace multiplex
}  // namespace multicast
