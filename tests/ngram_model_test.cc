#include "lm/ngram_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace multicast {
namespace lm {
namespace {

std::vector<token::TokenId> Repeat(const std::vector<token::TokenId>& motif,
                                   int times) {
  std::vector<token::TokenId> out;
  for (int i = 0; i < times; ++i) {
    out.insert(out.end(), motif.begin(), motif.end());
  }
  return out;
}

TEST(NGramModelTest, FreshModelIsUniform) {
  NGramLanguageModel model(4, NGramOptions{});
  std::vector<double> p = model.NextDistribution();
  ASSERT_EQ(p.size(), 4u);
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(NGramModelTest, DistributionSumsToOne) {
  NGramLanguageModel model(11, NGramOptions{});
  model.ObserveAll(Repeat({0, 1, 2, 3, 10}, 20));
  std::vector<double> p = model.NextDistribution();
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(NGramModelTest, AllProbabilitiesStrictlyPositive) {
  // Witten–Bell + uniform floor must never zero a token out, or the
  // constrained sampler could face an empty support.
  NGramOptions opts;
  opts.uniform_mix = 1e-4;
  NGramLanguageModel model(11, opts);
  model.ObserveAll(Repeat({5, 5, 5, 5}, 50));
  std::vector<double> p = model.NextDistribution();
  for (double v : p) EXPECT_GT(v, 0.0);
}

TEST(NGramModelTest, LearnsDeterministicCycle) {
  // After seeing "0 1 2 0 1 2 ..." many times, the model should assign
  // high probability to the cycle's continuation.
  NGramLanguageModel model(4, NGramOptions{});
  model.ObserveAll(Repeat({0, 1, 2}, 30));
  // Context ends ...0 1 2; next should be 0.
  std::vector<double> p = model.NextDistribution();
  EXPECT_GT(p[0], 0.8);
  model.Observe(0);
  p = model.NextDistribution();
  EXPECT_GT(p[1], 0.8);
}

TEST(NGramModelTest, LongerContextDisambiguates) {
  // Motif: 0 1 9 / 2 1 7 — after "1", the next depends on the token two
  // back, which only an order >= 2 model can capture.
  std::vector<token::TokenId> motif = {0, 1, 9, 2, 1, 7};
  NGramOptions deep;
  deep.max_order = 4;
  NGramLanguageModel model(10, deep);
  model.ObserveAll(Repeat(motif, 30));
  // Advance into the cycle so the context ends "... 9 2 1".
  model.ObserveAll({0, 1, 9, 2, 1});
  // Context ends ...2 1 -> expect 7.
  std::vector<double> p = model.NextDistribution();
  EXPECT_GT(p[7], 0.7);
  EXPECT_LT(p[9], 0.3);
}

TEST(NGramModelTest, OrderOneCannotDisambiguate) {
  std::vector<token::TokenId> motif = {0, 1, 9, 2, 1, 7};
  NGramOptions shallow;
  shallow.max_order = 1;
  NGramLanguageModel model(10, shallow);
  model.ObserveAll(Repeat(motif, 30));
  model.ObserveAll({0, 1, 9, 2, 1});
  std::vector<double> p = model.NextDistribution();
  // After "1" an order-1 model sees 9 and 7 equally often.
  EXPECT_NEAR(p[7], p[9], 0.05);
}

TEST(NGramModelTest, ResetClearsEverything) {
  NGramLanguageModel model(4, NGramOptions{});
  model.ObserveAll(Repeat({0, 1}, 20));
  model.Reset();
  EXPECT_EQ(model.context_length(), 0u);
  std::vector<double> p = model.NextDistribution();
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(NGramModelTest, ContextLengthCounts) {
  NGramLanguageModel model(4, NGramOptions{});
  model.ObserveAll({0, 1, 2});
  EXPECT_EQ(model.context_length(), 3u);
}

TEST(NGramModelTest, NumEntriesGrowsWithNovelty) {
  NGramLanguageModel repeat_model(8, NGramOptions{});
  repeat_model.ObserveAll(Repeat({0, 1}, 40));
  NGramLanguageModel varied_model(8, NGramOptions{});
  std::vector<token::TokenId> varied;
  for (int i = 0; i < 80; ++i) {
    varied.push_back(static_cast<token::TokenId>((i * 5 + i / 7) % 8));
  }
  varied_model.ObserveAll(varied);
  EXPECT_GT(varied_model.num_entries(), repeat_model.num_entries());
}

TEST(NGramModelTest, BackoffBoostFlattens) {
  auto peak_prob = [](double boost) {
    NGramOptions opts;
    opts.backoff_boost = boost;
    NGramLanguageModel model(10, opts);
    model.ObserveAll(Repeat({3, 4, 5}, 30));
    return model.NextDistribution()[3];  // continuation of the cycle
  };
  EXPECT_GT(peak_prob(0.0), peak_prob(5.0));
}

TEST(NGramModelTest, UniformMixRaisesFloor) {
  auto min_prob = [](double mix) {
    NGramOptions opts;
    opts.uniform_mix = mix;
    NGramLanguageModel model(10, opts);
    model.ObserveAll(Repeat({3, 4, 5}, 50));
    std::vector<double> p = model.NextDistribution();
    double lo = 1.0;
    for (double v : p) lo = std::min(lo, v);
    return lo;
  };
  EXPECT_GT(min_prob(0.05), min_prob(0.0));
  EXPECT_GE(min_prob(0.05), 0.05 / 10 * 0.9);
}

TEST(NGramModelTest, UnseenContextFallsBackGracefully) {
  NGramLanguageModel model(10, NGramOptions{});
  model.ObserveAll(Repeat({1, 2, 3}, 20));
  // Feed a context never seen: falls back toward unigram stats, which
  // favor the motif tokens over never-seen tokens.
  model.Observe(9);
  model.Observe(8);
  std::vector<double> p = model.NextDistribution();
  double motif_mass = p[1] + p[2] + p[3];
  double unseen_mass = p[0] + p[4] + p[5] + p[6] + p[7];
  EXPECT_GT(motif_mass, unseen_mass);
}

TEST(NGramModelTest, MaxOrderTwelveSupported) {
  NGramOptions opts;
  opts.max_order = 12;
  NGramLanguageModel model(31, opts);
  model.ObserveAll(Repeat({0, 30, 15, 7, 22, 1, 9, 28, 4, 11, 19, 3}, 10));
  std::vector<double> p = model.NextDistribution();
  EXPECT_GT(p[0], 0.5);  // period-12 cycle continuation
}

TEST(NGramModelTest, MaxBaseLayersCompactsLongForkChains) {
  // Fork chains deeper than max_base_layers compact into one layer;
  // the option is storage-only, so output never changes with it.
  NGramOptions tight;
  tight.max_base_layers = 1;
  NGramOptions loose;
  loose.max_base_layers = 8;
  auto tight_model = std::make_unique<NGramLanguageModel>(6, tight);
  auto loose_model = std::make_unique<NGramLanguageModel>(6, loose);
  for (int round = 0; round < 5; ++round) {
    auto chunk = Repeat({0, 1, 2, 3, 4, 5}, 4 + round);
    tight_model->ObserveAll(chunk);
    loose_model->ObserveAll(chunk);
    tight_model->Freeze();
    loose_model->Freeze();
    auto tf = tight_model->Fork();
    auto lf = loose_model->Fork();
    tight_model.reset(static_cast<NGramLanguageModel*>(tf.release()));
    loose_model.reset(static_cast<NGramLanguageModel*>(lf.release()));
  }
  EXPECT_LE(tight_model->num_base_layers(), 1u);
  EXPECT_EQ(loose_model->num_base_layers(), 5u);
  EXPECT_EQ(tight_model->num_entries(), loose_model->num_entries());
  std::vector<double> pt = tight_model->NextDistribution();
  std::vector<double> pl = loose_model->NextDistribution();
  ASSERT_EQ(pt.size(), pl.size());
  for (size_t i = 0; i < pt.size(); ++i) EXPECT_EQ(pt[i], pl[i]);
}

}  // namespace
}  // namespace lm
}  // namespace multicast
