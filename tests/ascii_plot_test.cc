#include "util/ascii_plot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace multicast {
namespace {

TEST(AsciiPlotTest, RendersSeriesAndLegend) {
  PlotSeries s{"wave", '*', {}};
  for (int i = 0; i < 50; ++i) s.values.push_back(std::sin(i * 0.3));
  PlotOptions opts;
  opts.title = "test plot";
  std::string out = RenderAsciiPlot({s}, opts);
  EXPECT_NE(out.find("test plot"), std::string::npos);
  EXPECT_NE(out.find("* = wave"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, EmptyInputSafe) {
  std::string out = RenderAsciiPlot({}, PlotOptions{});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiPlotTest, AllNanSafe) {
  PlotSeries s{"nan", '*',
               {std::numeric_limits<double>::quiet_NaN(),
                std::numeric_limits<double>::quiet_NaN()}};
  std::string out = RenderAsciiPlot({s}, PlotOptions{});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiPlotTest, ConstantSeriesSafe) {
  PlotSeries s{"flat", '-', std::vector<double>(20, 5.0)};
  std::string out = RenderAsciiPlot({s}, PlotOptions{});
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(AsciiPlotTest, NanLeavesGaps) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  PlotSeries a{"series", 'x', {0.0, nan, 1.0}};
  std::string out = RenderAsciiPlot({a}, PlotOptions{});
  // Two raster glyphs plus the one 'x' in the "x = series" legend line.
  EXPECT_EQ(std::count(out.begin(), out.end(), 'x'), 3);
}

TEST(AsciiPlotTest, MultipleSeriesShareScale) {
  PlotSeries lo{"low", 'l', std::vector<double>(10, 0.0)};
  PlotSeries hi{"high", 'h', std::vector<double>(10, 10.0)};
  PlotOptions opts;
  opts.height = 8;
  std::string out = RenderAsciiPlot({lo, hi}, opts);
  // y-axis labels should span 0..10.
  EXPECT_NE(out.find("10.000"), std::string::npos);
  EXPECT_NE(out.find("0.000"), std::string::npos);
}

TEST(AsciiPlotTest, SingleValueSeries) {
  PlotSeries s{"pt", 'x', {3.0}};
  std::string out = RenderAsciiPlot({s}, PlotOptions{});
  EXPECT_NE(out.find('x'), std::string::npos);
}

}  // namespace
}  // namespace multicast
