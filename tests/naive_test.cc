#include "baselines/naive.h"

#include <gtest/gtest.h>

namespace multicast {
namespace baselines {
namespace {

ts::Frame RampFrame() {
  std::vector<double> a = {1, 2, 3, 4, 5, 6};
  std::vector<double> b = {10, 20, 30, 40, 50, 60};
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "ramp")
      .ValueOrDie();
}

TEST(NaiveLastTest, RepeatsLastValue) {
  NaiveLastForecaster f;
  EXPECT_EQ(f.name(), "NaiveLast");
  auto r = f.Forecast(RampFrame(), 3);
  ASSERT_TRUE(r.ok());
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(r.value().forecast.at(0, t), 6.0);
    EXPECT_DOUBLE_EQ(r.value().forecast.at(1, t), 60.0);
  }
}

TEST(NaiveLastTest, RejectsZeroHorizon) {
  NaiveLastForecaster f;
  EXPECT_FALSE(f.Forecast(RampFrame(), 0).ok());
}

TEST(SeasonalNaiveTest, RepeatsSeason) {
  SeasonalNaiveForecaster f(3);
  auto r = f.Forecast(RampFrame(), 5);
  ASSERT_TRUE(r.ok());
  // Last season of dim a is {4, 5, 6}.
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 4), 5.0);
}

TEST(SeasonalNaiveTest, ExactOnPerfectlyPeriodicData) {
  std::vector<double> v = {1, 2, 3, 1, 2, 3, 1, 2, 3};
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "p")}, "per").ValueOrDie();
  SeasonalNaiveForecaster f(3);
  auto r = f.Forecast(frame, 6);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().forecast.dim(0).values(),
            (std::vector<double>{1, 2, 3, 1, 2, 3}));
}

TEST(SeasonalNaiveTest, RejectsBadPeriod) {
  SeasonalNaiveForecaster zero(0);
  EXPECT_FALSE(zero.Forecast(RampFrame(), 2).ok());
  SeasonalNaiveForecaster huge(100);
  EXPECT_FALSE(huge.Forecast(RampFrame(), 2).ok());
}

TEST(DriftTest, ExtendsLine) {
  DriftForecaster f;
  auto r = f.Forecast(RampFrame(), 3);
  ASSERT_TRUE(r.ok());
  // Slope of dim a is exactly 1 per step.
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(1, 2), 90.0);
}

TEST(DriftTest, FlatSeriesStaysFlat) {
  std::vector<double> v(10, 4.5);
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "flat")}, "f").ValueOrDie();
  DriftForecaster f;
  auto r = f.Forecast(frame, 4);
  ASSERT_TRUE(r.ok());
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(r.value().forecast.at(0, t), 4.5);
  }
}

TEST(NaiveForecastersTest, NoTokensUsed) {
  NaiveLastForecaster naive;
  DriftForecaster drift;
  auto r1 = naive.Forecast(RampFrame(), 2).ValueOrDie();
  auto r2 = drift.Forecast(RampFrame(), 2).ValueOrDie();
  EXPECT_EQ(r1.ledger.total(), 0u);
  EXPECT_EQ(r2.ledger.total(), 0u);
}

}  // namespace
}  // namespace baselines
}  // namespace multicast
