#include "extensions/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>

namespace multicast {
namespace extensions {
namespace {

ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 4.0 * std::sin(phase);
    b[i] = 30.0 + 6.0 * std::cos(phase);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

TEST(AnomalyTest, ScoresEveryTimestamp) {
  ts::Frame f = PeriodicFrame(96);
  auto report = DetectAnomalies(f, AnomalyOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().scores.size(), 96u);
  for (double s : report.value().scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
}

TEST(AnomalyTest, SpikeGetsFlagged) {
  ts::Frame f = PeriodicFrame(120);
  // Inject a hard spike well outside the signal band.
  f.dim(0)[90] = 60.0;
  AnomalyOptions opts;
  opts.threshold_quantile = 0.95;
  auto report = DetectAnomalies(f, opts);
  ASSERT_TRUE(report.ok());
  bool flagged = false;
  for (size_t t : report.value().anomalies) {
    if (t >= 89 && t <= 91) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(AnomalyTest, SpikeScoresAboveNeighbors) {
  ts::Frame f = PeriodicFrame(120);
  f.dim(0)[90] = 60.0;
  auto report = DetectAnomalies(f, AnomalyOptions{}).ValueOrDie();
  double spike = report.scores[90];
  double before = report.scores[80];
  EXPECT_GT(spike, before);
}

TEST(AnomalyTest, AttributionShapesMatchFrame) {
  ts::Frame f = PeriodicFrame(96);
  auto report = DetectAnomalies(f, AnomalyOptions{}).ValueOrDie();
  ASSERT_EQ(report.per_dim_scores.size(), 2u);
  for (const auto& dim_scores : report.per_dim_scores) {
    EXPECT_EQ(dim_scores.size(), 96u);
    for (double s : dim_scores) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_GE(s, 0.0);
    }
  }
}

TEST(AnomalyTest, AttributionPointsAtTheSpikedDimension) {
  for (size_t spiked : {0u, 1u}) {
    ts::Frame f = PeriodicFrame(120);
    f.dim(spiked)[90] += spiked == 0 ? 40.0 : 60.0;
    auto report = DetectAnomalies(f, AnomalyOptions{}).ValueOrDie();
    EXPECT_EQ(report.ArgMaxDimension(90), spiked) << "dim " << spiked;
    // The spiked dimension's own surprisal exceeds the other's at t=90.
    EXPECT_GT(report.per_dim_scores[spiked][90],
              report.per_dim_scores[1 - spiked][90]);
  }
}

TEST(AnomalyTest, ArgMaxDimensionOutOfRangeSafe) {
  ts::Frame f = PeriodicFrame(48);
  auto report = DetectAnomalies(f, AnomalyOptions{}).ValueOrDie();
  EXPECT_EQ(report.ArgMaxDimension(10000), 0u);
}

TEST(AnomalyTest, WarmupExcluded) {
  ts::Frame f = PeriodicFrame(96);
  AnomalyOptions opts;
  opts.warmup = 20;
  auto report = DetectAnomalies(f, opts).ValueOrDie();
  for (size_t t : report.anomalies) EXPECT_GE(t, 20u);
}

TEST(AnomalyTest, RejectsBadOptions) {
  ts::Frame f = PeriodicFrame(48);
  AnomalyOptions opts;
  opts.threshold_quantile = 1.5;
  EXPECT_FALSE(DetectAnomalies(f, opts).ok());
  opts = AnomalyOptions{};
  opts.warmup = 1000;
  EXPECT_FALSE(DetectAnomalies(f, opts).ok());
  EXPECT_FALSE(DetectAnomalies(PeriodicFrame(2), AnomalyOptions{}).ok());
}

TEST(AnomalyTest, WorksWithEveryMultiplexer) {
  ts::Frame f = PeriodicFrame(96);
  f.dim(0)[60] += 30.0;
  for (auto mux : {multiplex::MuxKind::kDigitInterleave,
                   multiplex::MuxKind::kValueInterleave,
                   multiplex::MuxKind::kValueConcat}) {
    AnomalyOptions opts;
    opts.mux = mux;
    auto report = DetectAnomalies(f, opts);
    ASSERT_TRUE(report.ok()) << multiplex::MuxKindName(mux);
    EXPECT_EQ(report.value().scores.size(), 96u);
    // The spike stands out under every serialization.
    EXPECT_GT(report.value().scores[60], report.value().scores[50])
        << multiplex::MuxKindName(mux);
  }
}

TEST(AnomalyTest, DeterministicScores) {
  ts::Frame f = PeriodicFrame(72);
  auto a = DetectAnomalies(f, AnomalyOptions{}).ValueOrDie();
  auto b = DetectAnomalies(f, AnomalyOptions{}).ValueOrDie();
  EXPECT_EQ(a.scores, b.scores);
}

TEST(ChangePointTest, DetectsRegimeShift) {
  // First half: period-12 sine; second half: different amplitude, offset
  // and period — a sustained distribution change.
  size_t n = 200;
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < 120) {
      a[i] = 10.0 + 4.0 * std::sin(2.0 * M_PI * i / 12.0);
      b[i] = 30.0 + 6.0 * std::cos(2.0 * M_PI * i / 12.0);
    } else {
      a[i] = 25.0 + 1.5 * std::sin(2.0 * M_PI * i / 7.0);
      b[i] = 5.0 + 9.0 * std::cos(2.0 * M_PI * i / 5.0);
    }
  }
  ts::Frame f = ts::Frame::FromSeries({ts::Series(a, "a"),
                                       ts::Series(b, "b")},
                                      "shift")
                    .ValueOrDie();
  ChangePointOptions opts;
  auto cps = DetectChangePoints(f, opts);
  ASSERT_TRUE(cps.ok()) << cps.status().ToString();
  ASSERT_FALSE(cps.value().empty());
  // At least one change point lands near the true shift at t = 120.
  bool near = false;
  for (size_t cp : cps.value()) {
    if (cp >= 115 && cp <= 140) near = true;
  }
  EXPECT_TRUE(near);
}

TEST(ChangePointTest, StationarySeriesMostlyQuiet) {
  ts::Frame f = PeriodicFrame(200);
  ChangePointOptions opts;
  auto cps = DetectChangePoints(f, opts);
  ASSERT_TRUE(cps.ok());
  EXPECT_LE(cps.value().size(), 1u);
}

TEST(ChangePointTest, MinSpacingRespected) {
  size_t n = 240;
  std::vector<double> a(n);
  for (size_t i = 0; i < n; ++i) {
    // Shift the regime every 60 steps.
    double base = 10.0 * static_cast<double>((i / 60) % 2);
    a[i] = base + std::sin(2.0 * M_PI * i / 10.0);
  }
  ts::Frame f =
      ts::Frame::FromSeries({ts::Series(a, "a")}, "multi").ValueOrDie();
  ChangePointOptions opts;
  opts.min_spacing = 25;
  auto cps = DetectChangePoints(f, opts).ValueOrDie();
  for (size_t i = 1; i < cps.size(); ++i) {
    EXPECT_GE(cps[i] - cps[i - 1], 25u);
  }
}

}  // namespace
}  // namespace extensions
}  // namespace multicast
