#include "baselines/ets.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "ts/split.h"
#include "util/random.h"

namespace multicast {
namespace baselines {
namespace {

TEST(EtsTest, FlatSeriesForecastsFlat) {
  std::vector<double> v(40, 7.5);
  auto model = EtsModel::Fit(v, EtsOptions{});
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto fc = model.value().Forecast(5);
  ASSERT_TRUE(fc.ok());
  for (double x : fc.value()) EXPECT_NEAR(x, 7.5, 1e-6);
}

TEST(EtsTest, TrendExtrapolated) {
  std::vector<double> v;
  for (int t = 0; t < 60; ++t) v.push_back(3.0 * t + 10.0);
  EtsOptions opts;
  opts.damping = 1.0;  // undamped Holt for an exact line
  auto model = EtsModel::Fit(v, opts);
  ASSERT_TRUE(model.ok());
  auto fc = model.value().Forecast(5);
  ASSERT_TRUE(fc.ok());
  for (size_t h = 0; h < 5; ++h) {
    EXPECT_NEAR(fc.value()[h], 3.0 * (59.0 + h + 1) + 10.0, 0.5);
  }
}

TEST(EtsTest, DampingFlattensLongHorizon) {
  std::vector<double> v;
  for (int t = 0; t < 60; ++t) v.push_back(2.0 * t);
  EtsOptions damped;
  damped.damping = 0.8;
  auto model = EtsModel::Fit(v, damped).ValueOrDie();
  auto fc = model.Forecast(50).ValueOrDie();
  // Damped trend: increments shrink geometrically.
  double inc_early = fc[1] - fc[0];
  double inc_late = fc[49] - fc[48];
  EXPECT_LT(inc_late, inc_early * 0.05);
}

TEST(EtsTest, SeasonalPatternContinuesInPhase) {
  // Period-8 square-ish wave.
  std::vector<double> v;
  for (int t = 0; t < 96; ++t) {
    v.push_back(10.0 + ((t % 8) < 4 ? 3.0 : -3.0));
  }
  EtsOptions opts;
  opts.season_length = 8;
  auto model = EtsModel::Fit(v, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto fc = model.value().Forecast(16).ValueOrDie();
  for (size_t h = 0; h < 16; ++h) {
    double expected = 10.0 + (((96 + h) % 8) < 4 ? 3.0 : -3.0);
    EXPECT_NEAR(fc[h], expected, 0.8) << "h=" << h;
  }
}

TEST(EtsTest, SineWaveTrackedWithSeason) {
  std::vector<double> v;
  for (int t = 0; t < 120; ++t) {
    v.push_back(5.0 * std::sin(2.0 * M_PI * t / 12.0));
  }
  EtsOptions opts;
  opts.season_length = 12;
  auto model = EtsModel::Fit(v, opts).ValueOrDie();
  auto fc = model.Forecast(12).ValueOrDie();
  double ss = 0.0;
  for (size_t h = 0; h < 12; ++h) {
    double truth = 5.0 * std::sin(2.0 * M_PI * (120 + h) / 12.0);
    ss += (fc[h] - truth) * (fc[h] - truth);
  }
  EXPECT_LT(std::sqrt(ss / 12.0), 1.0);
}

TEST(EtsTest, GridSearchReducesMse) {
  Rng rng(3);
  std::vector<double> v;
  double level = 10.0;
  for (int t = 0; t < 100; ++t) {
    level += rng.NextGaussian(0.0, 0.5);
    v.push_back(level);
  }
  EtsOptions fine;
  fine.grid_steps = 10;
  EtsOptions coarse;
  coarse.grid_steps = 2;
  double fine_mse = EtsModel::Fit(v, fine).ValueOrDie().mse();
  double coarse_mse = EtsModel::Fit(v, coarse).ValueOrDie().mse();
  EXPECT_LE(fine_mse, coarse_mse + 1e-9);
}

TEST(EtsTest, RejectsBadInputs) {
  std::vector<double> v(20, 1.0);
  EtsOptions opts;
  opts.season_length = 15;  // needs 30 points
  EXPECT_FALSE(EtsModel::Fit(v, opts).ok());
  EXPECT_FALSE(EtsModel::Fit({1.0, 2.0}, EtsOptions{}).ok());
  opts = EtsOptions{};
  opts.damping = 0.0;
  EXPECT_FALSE(EtsModel::Fit(v, opts).ok());
  opts = EtsOptions{};
  opts.grid_steps = 1;
  EXPECT_FALSE(EtsModel::Fit(v, opts).ok());
  auto model = EtsModel::Fit(v, EtsOptions{}).ValueOrDie();
  EXPECT_FALSE(model.Forecast(0).ok());
}

TEST(EtsForecasterTest, MultivariateShape) {
  std::vector<double> a, b;
  for (int t = 0; t < 50; ++t) {
    a.push_back(t * 0.5);
    b.push_back(100.0 - t);
  }
  ts::Frame frame = ts::Frame::FromSeries(
                        {ts::Series(a, "a"), ts::Series(b, "b")}, "f")
                        .ValueOrDie();
  EtsForecaster f(EtsOptions{});
  EXPECT_EQ(f.name(), "HoltWinters");
  auto result = f.Forecast(frame, 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 2u);
  EXPECT_EQ(result.value().forecast.length(), 6u);
  // Opposite trends continue in opposite directions.
  EXPECT_GT(result.value().forecast.at(0, 5), a.back());
  EXPECT_LT(result.value().forecast.at(1, 5), b.back());
}

TEST(EtsForecasterTest, AutoSeasonDetectsPeriod) {
  // Strong period-12 signal: auto-season should find it and beat the
  // non-seasonal fit.
  Rng rng(21);
  std::vector<double> v;
  for (int t = 0; t < 144; ++t) {
    v.push_back(6.0 * std::sin(2.0 * M_PI * t / 12.0) +
                rng.NextGaussian(0.0, 0.3));
  }
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "s")}, "sine").ValueOrDie();
  auto split = ts::SplitHorizon(frame, 12).ValueOrDie();

  EtsOptions flat;  // no season
  EtsOptions autos;
  autos.auto_season = true;
  auto flat_run =
      EtsForecaster(flat).Forecast(split.train, 12).ValueOrDie();
  auto auto_run =
      EtsForecaster(autos).Forecast(split.train, 12).ValueOrDie();
  double flat_rmse = metrics::Rmse(split.test.dim(0).values(),
                                   flat_run.forecast.dim(0).values())
                         .ValueOrDie();
  double auto_rmse = metrics::Rmse(split.test.dim(0).values(),
                                   auto_run.forecast.dim(0).values())
                         .ValueOrDie();
  EXPECT_LT(auto_rmse, flat_rmse * 0.5);
  EXPECT_LT(auto_rmse, 1.5);
}

TEST(EtsForecasterTest, AutoSeasonFallsBackOnAperiodicData) {
  Rng rng(22);
  std::vector<double> v;
  double level = 0.0;
  for (int t = 0; t < 80; ++t) {
    level += rng.NextGaussian(0.0, 1.0);
    v.push_back(level);
  }
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "walk")}, "rw").ValueOrDie();
  EtsOptions autos;
  autos.auto_season = true;
  auto run = EtsForecaster(autos).Forecast(frame, 5);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
}

TEST(EtsForecasterTest, CompetitiveOnNoisySine) {
  Rng rng(9);
  std::vector<double> v;
  for (int t = 0; t < 144; ++t) {
    v.push_back(5.0 * std::sin(2.0 * M_PI * t / 12.0) +
                rng.NextGaussian(0.0, 0.4));
  }
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "s")}, "sine").ValueOrDie();
  auto split = ts::SplitHorizon(frame, 12).ValueOrDie();
  EtsOptions opts;
  opts.season_length = 12;
  EtsForecaster f(opts);
  auto run = f.Forecast(split.train, 12).ValueOrDie();
  double rmse = metrics::Rmse(split.test.dim(0).values(),
                              run.forecast.dim(0).values())
                    .ValueOrDie();
  EXPECT_LT(rmse, 1.2);
}

}  // namespace
}  // namespace baselines
}  // namespace multicast
