#include "util/virtual_time.h"

#include <gtest/gtest.h>

namespace multicast {
namespace {

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.Advance(1.5);
  EXPECT_EQ(clock.now(), 1.5);
  clock.Advance(-3.0);  // ignored: time never rewinds
  EXPECT_EQ(clock.now(), 1.5);
  clock.AdvanceTo(1.0);  // ignored: already past
  EXPECT_EQ(clock.now(), 1.5);
  clock.AdvanceTo(4.0);
  EXPECT_EQ(clock.now(), 4.0);
}

TEST(DeadlineTest, NeverAndAt) {
  Deadline never = Deadline::Never();
  EXPECT_TRUE(never.never());
  EXPECT_FALSE(never.ExpiredAt(1e18));

  Deadline d = Deadline::At(2.0);
  EXPECT_FALSE(d.never());
  EXPECT_FALSE(d.ExpiredAt(1.999));
  // Finishing exactly at the deadline still meets it.
  EXPECT_FALSE(d.ExpiredAt(2.0));
  EXPECT_TRUE(d.ExpiredAt(2.001));
  EXPECT_DOUBLE_EQ(d.RemainingAt(0.5), 1.5);
  EXPECT_LT(d.RemainingAt(3.0), 0.0);
}

TEST(CancelTokenTest, CopiesShareState) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.Cancel("client hung up");
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(b.reason(), "client hung up");
  // First reason wins.
  b.Cancel("second");
  EXPECT_EQ(a.reason(), "client hung up");
}

TEST(CancelTokenTest, AutoCancelFiresWhenClockReachesMark) {
  VirtualClock clock;
  CancelToken token;
  token.CancelAtTime(&clock, 5.0, "hedge lost");
  EXPECT_FALSE(token.cancelled());
  clock.Advance(4.999);
  EXPECT_FALSE(token.cancelled());
  clock.Advance(0.001);  // exactly at the mark: cancelled
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "hedge lost");
}

TEST(CancelTokenTest, ExplicitCancelBeatsAutoCancel) {
  VirtualClock clock;
  CancelToken token;
  token.CancelAtTime(&clock, 5.0, "auto");
  token.Cancel("explicit");
  clock.Advance(10.0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "explicit");
}

TEST(RequestContextTest, DefaultContextNeverStops) {
  RequestContext ctx;
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.expired());
  EXPECT_TRUE(ctx.Check("anything").ok());
  EXPECT_EQ(ctx.RemainingSeconds(),
            std::numeric_limits<double>::infinity());
}

TEST(RequestContextTest, CheckReportsCancellation) {
  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  ctx.cancel.Cancel("drain");
  Status s = ctx.Check("sample loop");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("sample loop"), std::string::npos);
  EXPECT_NE(s.message().find("drain"), std::string::npos);
}

TEST(RequestContextTest, CheckReportsDeadline) {
  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  ctx.deadline = Deadline::At(1.0);
  EXPECT_TRUE(ctx.Check("call").ok());
  clock.Advance(2.0);
  Status s = ctx.Check("call");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(ctx.RemainingSeconds(), -1.0);
}

TEST(RequestContextTest, CancellationOutranksDeadline) {
  // A request that is both cancelled and expired reports kCancelled:
  // the explicit signal is more informative than the passive one.
  VirtualClock clock;
  RequestContext ctx;
  ctx.clock = &clock;
  ctx.deadline = Deadline::At(0.5);
  clock.Advance(1.0);
  ctx.cancel.Cancel("shutdown");
  EXPECT_EQ(ctx.Check("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, CancelledIsNotRetryable) {
  EXPECT_FALSE(IsRetryable(StatusCode::kCancelled));
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace multicast
