#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.h"
#include "data/datasets.h"

namespace multicast {
namespace eval {
namespace {

ts::Split GasSplit() {
  auto frame = data::MakeGasRate().ValueOrDie();
  return ts::SplitHorizon(frame, 24).ValueOrDie();
}

TEST(RunMethodTest, ScoresEveryDimension) {
  baselines::NaiveLastForecaster naive;
  auto run = RunMethod(&naive, GasSplit());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().method, "NaiveLast");
  ASSERT_EQ(run.value().rmse_per_dim.size(), 2u);
  for (double rmse : run.value().rmse_per_dim) {
    EXPECT_GT(rmse, 0.0);
    EXPECT_TRUE(std::isfinite(rmse));
  }
  EXPECT_EQ(run.value().forecast.length(), 24u);
}

TEST(RunMethodTest, NullForecasterRejected) {
  EXPECT_FALSE(RunMethod(nullptr, GasSplit()).ok());
}

TEST(RunMethodsTest, RunsAll) {
  baselines::NaiveLastForecaster naive;
  baselines::DriftForecaster drift;
  auto runs = RunMethods({&naive, &drift}, GasSplit());
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs.value().size(), 2u);
  EXPECT_EQ(runs.value()[0].method, "NaiveLast");
  EXPECT_EQ(runs.value()[1].method, "Drift");
}

TEST(ArgMinTest, Behaviour) {
  EXPECT_EQ(ArgMin({3.0, 1.0, 2.0}), 1);
  EXPECT_EQ(ArgMin({5.0}), 0);
  EXPECT_EQ(ArgMin({}), -1);
  EXPECT_EQ(ArgMin({2.0, 2.0}), 0);  // first wins ties
}

}  // namespace
}  // namespace eval
}  // namespace multicast
