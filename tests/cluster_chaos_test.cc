// Cluster chaos harness: end-to-end failover behaviour of
// cluster::ClusterExecutor under scripted and seeded fleet failures.
//
// The two invariants the cluster layer promises are asserted here:
//   1. Full-shape-or-correct-status: every admitted request either
//      completes with a full dims x horizon forecast or terminates
//      with kDeadlineExceeded / kCancelled / kUnavailable — never a
//      partial result, never a hang (the virtual event loop returning
//      at all proves no livelock).
//   2. Failover determinism: with recovery and deadline budget, the
//      surviving fleet's output is bit-identical to a fault-free run
//      at any replica count — crashes cost time, never bits.

#include "cluster/replica_set.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/fault_plan.h"
#include "forecast/multicast_forecaster.h"
#include "lm/ngram_model.h"
#include "lm/prefix_cache.h"
#include "serve/executor.h"
#include "ts/frame.h"

namespace multicast {
namespace cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ts::Frame History(size_t n) {
  std::vector<double> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(10.0 + static_cast<double>(i % 7));
    b.push_back(50.0 - static_cast<double>(i % 5));
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "hist")
      .ValueOrDie();
}

/// A scripted replica pipeline: burns `service_seconds` of virtual time
/// on the request's branch clock, then emits a forecast whose every
/// value is a pure function of (request id, dim, step) — exactly the
/// replica-independence the real pipelines earn via request-derived
/// seeds, so any cross-run bit difference is an executor bug
/// (mis-delivered result, state leaked across a failover).
class ScriptedWork final : public forecast::Forecaster {
 public:
  ScriptedWork(size_t request_id, double service_seconds, size_t draws)
      : request_id_(request_id),
        service_seconds_(service_seconds),
        draws_(draws) {}

  std::string name() const override { return "scripted"; }

  using Forecaster::Forecast;
  Result<forecast::ForecastResult> Forecast(
      const ts::Frame& history, size_t horizon,
      const RequestContext& ctx) override {
    // Service in four slices with a cancellation check between each, so
    // a drain arriving mid-flight is actually observed (as the real
    // pipelines observe it between backend calls).
    for (int slice = 0; slice < 4; ++slice) {
      MC_RETURN_IF_ERROR(ctx.Check("scripted"));
      if (ctx.clock != nullptr) ctx.clock->Advance(service_seconds_ / 4.0);
    }
    forecast::ForecastResult result;
    std::vector<ts::Series> dims;
    for (size_t d = 0; d < history.num_dims(); ++d) {
      std::vector<double> values(horizon);
      for (size_t t = 0; t < horizon; ++t) {
        values[t] = static_cast<double>(request_id_) * 100.0 +
                    static_cast<double>(d) * 10.0 + static_cast<double>(t);
      }
      dims.emplace_back(values, history.dim(d).name());
    }
    result.forecast = ts::Frame::FromSeries(dims, "f").ValueOrDie();
    result.samples_requested = draws_;
    result.samples_used = draws_;
    return result;
  }

 private:
  size_t request_id_;
  double service_seconds_;
  size_t draws_;
};

ReplicaForecasterFactory ScriptedFactory(double service_seconds,
                                         size_t draws = 3) {
  return [service_seconds, draws](const serve::ForecastRequest& req,
                                  const Replica&) {
    return std::make_unique<ScriptedWork>(req.id, service_seconds, draws);
  };
}

serve::ForecastRequest Req(size_t id, double arrival, double deadline,
                           const ts::Frame* history) {
  serve::ForecastRequest r;
  r.id = id;
  r.arrival_seconds = arrival;
  r.deadline_seconds = deadline;
  r.history = history;
  r.horizon = 4;
  return r;
}

void ExpectScriptedShape(const serve::ServeStats& st, size_t dims,
                         size_t horizon) {
  ASSERT_NE(st.result, nullptr) << "request " << st.id;
  ASSERT_EQ(st.result->forecast.num_dims(), dims);
  ASSERT_EQ(st.result->forecast.length(), horizon);
  for (size_t d = 0; d < dims; ++d) {
    for (size_t t = 0; t < horizon; ++t) {
      EXPECT_DOUBLE_EQ(st.result->forecast.at(d, t),
                       static_cast<double>(st.id) * 100.0 +
                           static_cast<double>(d) * 10.0 +
                           static_cast<double>(t))
          << "request " << st.id << " dim " << d << " t " << t;
    }
  }
}

// ---------------------------------------------------------------------
// Crash during service: exact failover schedule.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, CrashDuringServiceFailsOverWithExactSchedule) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  // Replica 0 dies at t=1 mid-service and recovers at t=5.
  fleet[0].plan.crashes = {{1.0, 5.0}};
  ClusterOptions options;
  options.router = RouterPolicy::kLeastLoaded;
  ClusterExecutor executor(ScriptedFactory(/*service_seconds=*/2.0),
                           nullptr, std::move(fleet), options);

  auto stats_or = executor.Run({Req(0, 0.0, kInf, &history)});
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  const std::vector<serve::ServeStats>& stats = stats_or.value();
  ASSERT_EQ(stats.size(), 1u);
  const serve::ServeStats& st = stats[0];

  // Dispatched to replica 0 at t=0 (least-loaded tie -> lowest id),
  // killed at the crash instant t=1, re-dispatched to replica 1 and
  // served there: finish 1 + 2 = 3, one wasted second on the corpse.
  EXPECT_EQ(st.outcome, serve::RequestOutcome::kServed);
  EXPECT_EQ(st.cluster.replica, 1);
  EXPECT_EQ(st.cluster.failovers, 1u);
  EXPECT_EQ(st.cluster.redispatched_draws, 3u);
  EXPECT_DOUBLE_EQ(st.cluster.wasted_seconds, 1.0);
  EXPECT_DOUBLE_EQ(st.finish_seconds, 3.0);
  EXPECT_EQ(st.attempts, 2);
  ExpectScriptedShape(st, 2, 4);

  const ClusterReport& report = executor.report();
  EXPECT_EQ(report.failovers, 1u);
  EXPECT_EQ(report.redispatched_draws, 3u);
  EXPECT_DOUBLE_EQ(report.wasted_seconds, 1.0);
  EXPECT_EQ(report.replicas[0].failovers, 1u);
  EXPECT_EQ(report.replicas[0].completed, 0u);
  EXPECT_EQ(report.replicas[1].completed, 1u);
}

TEST(ClusterChaosTest, RedispatchDelayChargesDetectionCost) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  fleet[0].plan.crashes = {{1.0, 5.0}};
  ClusterOptions options;
  options.redispatch_delay_seconds = 0.5;
  ClusterExecutor executor(ScriptedFactory(2.0), nullptr, std::move(fleet),
                           options);
  auto stats_or = executor.Run({Req(0, 0.0, kInf, &history)});
  ASSERT_TRUE(stats_or.ok());
  // Crash at 1, detection/re-dispatch tax 0.5, service 2 -> finish 3.5.
  EXPECT_DOUBLE_EQ(stats_or.value()[0].finish_seconds, 3.5);
  EXPECT_EQ(stats_or.value()[0].cluster.failovers, 1u);
}

// ---------------------------------------------------------------------
// Crash wipes the prefix cache; partitions keep it warm.
// ---------------------------------------------------------------------

std::shared_ptr<lm::PrefixCache> WarmCache() {
  auto cache = std::make_shared<lm::PrefixCache>(8);
  std::vector<token::TokenId> prompt = {1, 2, 3, 4, 5};
  cache->Warm(/*fingerprint=*/42, prompt, []() {
    return std::make_unique<lm::NGramLanguageModel>(11, lm::NGramOptions{});
  });
  EXPECT_EQ(cache->size(), 1u);
  return cache;
}

TEST(ClusterChaosTest, CrashWipesPrefixCachePartitionKeepsIt) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  fleet[0].prefix_cache = WarmCache();
  fleet[1].prefix_cache = WarmCache();
  fleet[0].plan.crashes = {{1.0, 2.0}};     // state-losing outage
  fleet[1].plan.partitions = {{1.0, 2.0}};  // unreachable, state kept
  ClusterExecutor executor(ScriptedFactory(0.5), nullptr, std::move(fleet),
                           ClusterOptions{});
  auto stats_or = executor.Run({Req(0, 0.0, kInf, &history),
                                Req(1, 3.0, kInf, &history)});
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(executor.replica(0).prefix_cache->size(), 0u)
      << "crash must wipe the node-local cache";
  EXPECT_EQ(executor.replica(1).prefix_cache->size(), 1u)
      << "partition must keep the node-local cache warm";
}

TEST(ClusterChaosTest, CacheWipeCanBeDisabledForExternalTier) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 1, .slots = 1, .prefix_cache_capacity = 0});
  fleet[0].prefix_cache = WarmCache();
  fleet[0].plan.crashes = {{1.0, 2.0}};
  ClusterOptions options;
  options.wipe_cache_on_crash = false;
  ClusterExecutor executor(ScriptedFactory(0.1), nullptr, std::move(fleet),
                           options);
  auto stats_or = executor.Run({Req(0, 3.0, kInf, &history)});
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(executor.replica(0).prefix_cache->size(), 1u);
}

// ---------------------------------------------------------------------
// Correlated failure: k of N replicas die, the fleet keeps serving.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, CorrelatedPermanentFailureKLessThanNStillServes) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 3, .slots = 1, .prefix_cache_capacity = 0});
  // Replicas 0 and 1 die together at t=1.5 and never come back.
  fleet[0].plan.crashes = {{1.5, kInf}};
  fleet[1].plan.crashes = {{1.5, kInf}};
  ClusterOptions options;
  options.queue.capacity = 16;
  ClusterExecutor executor(ScriptedFactory(1.0), nullptr, std::move(fleet),
                           options);

  std::vector<serve::ForecastRequest> requests;
  for (size_t i = 0; i < 8; ++i) {
    requests.push_back(Req(i, 0.5 * static_cast<double>(i), kInf, &history));
  }
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  for (const serve::ServeStats& st : stats_or.value()) {
    EXPECT_EQ(st.outcome, serve::RequestOutcome::kServed)
        << "request " << st.id << ": " << st.status.ToString();
    ExpectScriptedShape(st, 2, 4);
  }
  // Everything after the correlated failure lands on the survivor.
  serve::ServeSummary summary = serve::Summarize(stats_or.value());
  ASSERT_EQ(summary.served_per_replica.size(), 3u);
  EXPECT_EQ(summary.served, 8u);
  EXPECT_GE(summary.served_per_replica[2], 6u);
  EXPECT_GE(executor.report().health.ejections, 2u);
}

// ---------------------------------------------------------------------
// Slow replica + hedging: the backup on a healthy node wins.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, SlowReplicaHedgeWinsOnHealthyNode) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  fleet[0].plan.slow_factor = 4.0;  // permanent straggler
  ClusterOptions options;
  options.hedge.enabled = true;
  options.hedge.delay_seconds = 1.0;
  ClusterExecutor executor(ScriptedFactory(2.0), nullptr, std::move(fleet),
                           options);
  auto stats_or = executor.Run({Req(0, 0.0, kInf, &history)});
  ASSERT_TRUE(stats_or.ok());
  const serve::ServeStats& st = stats_or.value()[0];

  // Primary on replica 0 would finish at 8 (2 s of work at 1/4 speed);
  // the hedge fires at 1 on replica 1 and lands at 3. Hedge wins, and
  // the straggler burnt 3 seconds of slot occupancy (0 -> 3) for
  // nothing — that occupancy is the wasted work failover accounts.
  EXPECT_EQ(st.outcome, serve::RequestOutcome::kServed);
  EXPECT_TRUE(st.hedge_fired);
  EXPECT_TRUE(st.hedge_won);
  EXPECT_EQ(st.cluster.replica, 1);
  EXPECT_DOUBLE_EQ(st.finish_seconds, 3.0);
  EXPECT_DOUBLE_EQ(st.cluster.wasted_seconds, 3.0);
  ExpectScriptedShape(st, 2, 4);
  EXPECT_EQ(executor.report().replicas[0].completed, 0u);
  EXPECT_EQ(executor.report().replicas[1].completed, 1u);
}

// ---------------------------------------------------------------------
// Partition then heal: traffic returns after probation.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, PartitionThenHealReadmitsAfterProbation) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  fleet[0].plan.partitions = {{0.9, 3.0}};
  ClusterOptions options;
  options.health.probe_interval_seconds = 0.25;
  options.health.eject_after_failures = 2;
  options.health.readmit_after_successes = 2;
  options.queue.capacity = 32;
  ClusterExecutor executor(ScriptedFactory(0.25), nullptr, std::move(fleet),
                           options);

  std::vector<serve::ForecastRequest> requests;
  for (size_t i = 0; i < 20; ++i) {
    requests.push_back(Req(i, 0.5 * static_cast<double>(i), kInf, &history));
  }
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  for (const serve::ServeStats& st : stats_or.value()) {
    EXPECT_EQ(st.outcome, serve::RequestOutcome::kServed);
  }
  const ClusterReport& report = executor.report();
  EXPECT_GE(report.health.ejections, 1u);
  EXPECT_GE(report.health.readmissions, 1u);
  // The healed replica takes traffic again after probation: arrivals
  // from t=10 on land long after readmission (~t=3.75).
  serve::ServeSummary summary = serve::Summarize(stats_or.value());
  EXPECT_GT(summary.served_per_replica[0], 0u);
  EXPECT_GT(summary.served_per_replica[1], 0u);
}

// ---------------------------------------------------------------------
// Drain under fire.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, ClusterDrainCancelsQueuedAndInFlight) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  ClusterOptions options;
  options.queue.capacity = 16;
  options.drain_at_seconds = 2.5;
  options.drain_mode = serve::DrainMode::kCancelQueued;
  ClusterExecutor executor(ScriptedFactory(2.0), nullptr, std::move(fleet),
                           options);

  std::vector<serve::ForecastRequest> requests;
  for (size_t i = 0; i < 10; ++i) {
    requests.push_back(Req(i, 0.4 * static_cast<double>(i), kInf, &history));
  }
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  // Three distinct drain fates, all kCancelledDrain: in-flight work is
  // cancelled mid-service (kCancelled, from the armed token), queued
  // work is flushed (kCancelled), and late arrivals bounce off the
  // closed admission door (kUnavailable, the queue's own status — the
  // same convention ServeExecutor uses).
  size_t served = 0, drained = 0;
  size_t cancelled_status = 0, unavailable_status = 0;
  for (const serve::ServeStats& st : stats_or.value()) {
    if (st.outcome == serve::RequestOutcome::kServed) {
      ++served;
      EXPECT_LE(st.finish_seconds, 2.5);
    } else {
      ++drained;
      EXPECT_EQ(st.outcome, serve::RequestOutcome::kCancelledDrain)
          << "request " << st.id << ": " << st.status.ToString();
      if (st.status.code() == StatusCode::kCancelled) {
        ++cancelled_status;
      } else {
        EXPECT_EQ(st.status.code(), StatusCode::kUnavailable)
            << "request " << st.id << ": " << st.status.ToString();
        ++unavailable_status;
      }
    }
  }
  EXPECT_EQ(served, 2u);  // requests 0 and 1 finish before the drain
  EXPECT_EQ(drained, 8u);
  EXPECT_GT(cancelled_status, 0u);
  EXPECT_GT(unavailable_status, 0u);
  serve::ServeSummary summary = serve::Summarize(stats_or.value());
  EXPECT_EQ(summary.cancelled_drain, drained);
  EXPECT_EQ(summary.rejections.cancelled, cancelled_status);
  EXPECT_EQ(summary.rejections.backend_unavailable, unavailable_status);
}

TEST(ClusterChaosTest, PerReplicaDrainShiftsTrafficWithoutLoss) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  // Rolling restart: replica 0 drains from t=1, back at t=4.
  fleet[0].drain = FaultWindow{1.0, 4.0};
  ClusterOptions options;
  options.queue.capacity = 32;
  ClusterExecutor executor(ScriptedFactory(0.5), nullptr, std::move(fleet),
                           options);
  std::vector<serve::ForecastRequest> requests;
  for (size_t i = 0; i < 12; ++i) {
    requests.push_back(Req(i, 0.5 * static_cast<double>(i), kInf, &history));
  }
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok());
  for (const serve::ServeStats& st : stats_or.value()) {
    EXPECT_EQ(st.outcome, serve::RequestOutcome::kServed)
        << "request " << st.id << ": " << st.status.ToString();
    // Inside the drain window nothing is dispatched to replica 0.
    if (st.start_seconds >= 1.0 && st.start_seconds < 4.0) {
      EXPECT_EQ(st.cluster.replica, 1) << "request " << st.id;
    }
  }
}

// ---------------------------------------------------------------------
// Fleet death: permanent unavailability is reported, not hung.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, AllReplicasPermanentlyDeadFailsUnavailable) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  fleet[0].plan.crashes = {{0.5, kInf}};
  fleet[1].plan.crashes = {{0.5, kInf}};
  ClusterOptions options;
  options.queue.capacity = 16;
  ClusterExecutor executor(ScriptedFactory(1.0), nullptr, std::move(fleet),
                           options);
  std::vector<serve::ForecastRequest> requests;
  for (size_t i = 0; i < 4; ++i) {
    requests.push_back(Req(i, static_cast<double>(i), kInf, &history));
  }
  auto stats_or = executor.Run(requests);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  size_t unavailable = 0;
  for (const serve::ServeStats& st : stats_or.value()) {
    if (st.outcome == serve::RequestOutcome::kServed) {
      // Request 0 starts at t=0 and finishes at t=1? No: its replica
      // dies at 0.5 mid-flight and the fleet is dead. Nothing may be
      // served after the correlated death; only pre-crash completions
      // would be legitimate, and service takes 1 s > 0.5 s.
      ADD_FAILURE() << "request " << st.id << " served by a dead fleet";
    } else {
      EXPECT_EQ(st.status.code(), StatusCode::kUnavailable)
          << "request " << st.id << ": " << st.status.ToString();
      ++unavailable;
    }
  }
  EXPECT_EQ(unavailable, 4u);
  EXPECT_EQ(executor.report().fleet_unavailable, 4u);
  serve::ServeSummary summary = serve::Summarize(stats_or.value());
  EXPECT_EQ(summary.rejections.backend_unavailable, 4u);
}

// ---------------------------------------------------------------------
// Bugfix regression: a request that terminally fails *on* a replica
// keeps that replica's attribution, so it still shows up in the
// per-replica rollups instead of vanishing.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, FailedRequestKeepsReplicaAttribution) {
  ts::Frame history = History(24);
  std::vector<Replica> fleet = MakeUniformReplicas(
      {.replicas = 2, .slots = 1, .prefix_cache_capacity = 0});
  ClusterOptions options;
  options.queue.capacity = 16;
  ClusterExecutor executor(ScriptedFactory(/*service_seconds=*/2.0),
                           nullptr, std::move(fleet), options);
  // Requests 0 and 1 occupy both replicas and run to completion at
  // t=2, past their t=1 deadlines — terminal failures produced *on* a
  // node. Request 2 expires in the queue and never reaches one.
  auto stats_or = executor.Run({Req(0, 0.0, 1.0, &history),
                                Req(1, 0.0, 1.0, &history),
                                Req(2, 0.0, 1.0, &history)});
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  const std::vector<serve::ServeStats>& stats = stats_or.value();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].outcome, serve::RequestOutcome::kFailed);
  EXPECT_EQ(stats[1].outcome, serve::RequestOutcome::kFailed);
  EXPECT_EQ(stats[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats[1].status.code(), StatusCode::kDeadlineExceeded);
  // The bug: the terminal-failure path dropped the replica id, so
  // requests 0 and 1 vanished from every per-replica view even though
  // each burnt two full seconds of a specific node's slot.
  EXPECT_EQ(stats[0].cluster.replica, 0);
  EXPECT_EQ(stats[1].cluster.replica, 1);
  EXPECT_EQ(stats[2].cluster.replica, -1);

  serve::ServeSummary summary = serve::Summarize(stats);
  // finished_per_replica counts every request that reached a node,
  // whatever its fate; served_per_replica only the successes. Nothing
  // was served here, but both failures are attributed.
  ASSERT_EQ(summary.finished_per_replica.size(), 2u);
  EXPECT_EQ(summary.finished_per_replica[0], 1u);
  EXPECT_EQ(summary.finished_per_replica[1], 1u);
  for (size_t r = 0; r < summary.served_per_replica.size(); ++r) {
    EXPECT_EQ(summary.served_per_replica[r], 0u);
  }
}

// ---------------------------------------------------------------------
// Invariant 1: full shape or correct terminal status, over seeded
// fleet-wide chaos schedules.
// ---------------------------------------------------------------------

TEST(ClusterChaosTest, SeededChaosFullShapeOrCorrectStatusInvariant) {
  ts::Frame history = History(24);
  for (uint64_t seed : {1ULL, 7ULL, 23ULL, 99ULL}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    FleetChaosOptions chaos;
    chaos.replicas = 3;
    chaos.horizon_seconds = 12.0;
    chaos.crash_rate = 2.0;
    chaos.partition_rate = 1.0;
    chaos.mean_downtime_seconds = 1.5;
    chaos.slow_replica_fraction = 0.3;
    chaos.seed = seed;
    std::vector<ReplicaFaultPlan> plans = GenerateFleetChaos(chaos);

    std::vector<Replica> fleet = MakeUniformReplicas(
        {.replicas = 3, .slots = 1, .prefix_cache_capacity = 0});
    for (size_t r = 0; r < fleet.size(); ++r) fleet[r].plan = plans[r];
    ClusterOptions options;
    options.queue.capacity = 6;
    ClusterExecutor executor(ScriptedFactory(0.75), nullptr,
                             std::move(fleet), options);

    std::vector<serve::ForecastRequest> requests;
    for (size_t i = 0; i < 24; ++i) {
      // Tight-ish budgets so deadline outcomes genuinely occur.
      double arrival = 0.4 * static_cast<double>(i);
      requests.push_back(Req(i, arrival, arrival + 3.0, &history));
    }
    auto stats_or = executor.Run(requests);
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    ASSERT_EQ(stats_or.value().size(), 24u);
    for (const serve::ServeStats& st : stats_or.value()) {
      switch (st.outcome) {
        case serve::RequestOutcome::kServed:
        case serve::RequestOutcome::kServedDegraded:
          ExpectScriptedShape(st, 2, 4);
          EXPECT_LE(st.finish_seconds, st.arrival_seconds + 3.0);
          break;
        case serve::RequestOutcome::kShedQueueFull:
          EXPECT_EQ(st.status.code(), StatusCode::kResourceExhausted);
          break;
        case serve::RequestOutcome::kShedExpired:
          EXPECT_EQ(st.status.code(), StatusCode::kDeadlineExceeded);
          break;
        case serve::RequestOutcome::kCancelledDrain:
          EXPECT_EQ(st.status.code(), StatusCode::kCancelled);
          break;
        case serve::RequestOutcome::kFailed:
          EXPECT_TRUE(st.status.code() == StatusCode::kDeadlineExceeded ||
                      st.status.code() == StatusCode::kCancelled ||
                      st.status.code() == StatusCode::kUnavailable)
              << "request " << st.id << ": " << st.status.ToString();
          break;
      }
    }
    // Bookkeeping closes: every request has exactly one terminal fate.
    serve::ServeSummary summary = serve::Summarize(stats_or.value());
    EXPECT_EQ(summary.total, 24u);
    EXPECT_EQ(summary.served + summary.served_degraded + summary.shed() +
                  summary.cancelled_drain + summary.failed,
              24u);
    EXPECT_EQ(summary.rejections.total(),
              24u - summary.served - summary.served_degraded);
    // Per-replica views stay consistent under chaos: every success that
    // reached a node is also finished there, element-wise.
    ASSERT_GE(summary.finished_per_replica.size(),
              summary.served_per_replica.size());
    for (size_t r = 0; r < summary.served_per_replica.size(); ++r) {
      EXPECT_GE(summary.finished_per_replica[r],
                summary.served_per_replica[r])
          << "replica " << r;
    }
  }
}

// ---------------------------------------------------------------------
// Invariant 2: bit-identical output vs the fault-free run, real
// pipelines, any replica count.
// ---------------------------------------------------------------------

ReplicaForecasterFactory RealFactory(uint64_t base_seed) {
  return [base_seed](const serve::ForecastRequest& req, const Replica& rep) {
    forecast::MultiCastOptions opts;
    opts.num_samples = 2;
    // Seeds derive from the request only — never the replica — which is
    // the whole determinism argument.
    opts.seed = base_seed + req.id;
    // Latency faults give flights nonzero virtual duration (so crashes
    // actually interrupt them) without ever failing a call; the fault
    // stream is seeded per request, so a re-run replays it exactly.
    opts.faults.latency_spike_rate = 0.2;
    opts.faults.base_latency_seconds = 0.02;
    opts.faults.spike_latency_seconds = 0.2;
    opts.faults.seed = base_seed + req.id * 7919;
    opts.shared_prefix_cache = rep.prefix_cache;
    return std::make_unique<forecast::MultiCastForecaster>(opts);
  };
}

TEST(ClusterChaosTest, FailoverOutputBitIdenticalToFaultFreeRun) {
  ts::Frame history = History(48);
  std::vector<serve::ForecastRequest> requests;
  for (size_t i = 0; i < 6; ++i) {
    serve::ForecastRequest r = Req(i, 0.3 * static_cast<double>(i), kInf,
                                   &history);
    r.horizon = 6;
    requests.push_back(r);
  }

  // Reference: single healthy replica, no faults.
  auto run = [&](size_t replicas, bool chaos) {
    std::vector<Replica> fleet = MakeUniformReplicas(
        {.replicas = replicas, .slots = 1, .prefix_cache_capacity = 16});
    if (chaos) {
      // Every replica crashes somewhere inside the run; staggered so
      // the fleet is never all-dead.
      for (size_t r = 0; r < fleet.size(); ++r) {
        double at = 0.4 + 0.9 * static_cast<double>(r);
        fleet[r].plan.crashes = {{at, at + 0.8}};
      }
    }
    ClusterOptions options;
    options.queue.capacity = 16;
    ClusterExecutor executor(RealFactory(1234), nullptr, std::move(fleet),
                             options);
    auto stats_or = executor.Run(requests);
    EXPECT_TRUE(stats_or.ok());
    return std::make_pair(stats_or.ValueOrDie(), executor.report());
  };

  auto [reference, ref_report] = run(1, /*chaos=*/false);
  EXPECT_EQ(ref_report.failovers, 0u);
  for (size_t replicas : {1u, 2u, 3u}) {
    SCOPED_TRACE(std::to_string(replicas) + " replicas under chaos");
    auto [chaotic, chaos_report] = run(replicas, /*chaos=*/true);
    ASSERT_EQ(chaotic.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      const serve::ServeStats& a = reference[i];
      const serve::ServeStats& b = chaotic[i];
      ASSERT_EQ(a.outcome, serve::RequestOutcome::kServed);
      ASSERT_EQ(b.outcome, serve::RequestOutcome::kServed)
          << "request " << b.id << ": " << b.status.ToString();
      ASSERT_NE(a.result, nullptr);
      ASSERT_NE(b.result, nullptr);
      // Bit-for-bit: the forecast, its bands, the ledger, the warnings.
      ASSERT_EQ(a.result->forecast.num_dims(), b.result->forecast.num_dims());
      ASSERT_EQ(a.result->forecast.length(), b.result->forecast.length());
      for (size_t d = 0; d < a.result->forecast.num_dims(); ++d) {
        for (size_t t = 0; t < a.result->forecast.length(); ++t) {
          EXPECT_EQ(a.result->forecast.at(d, t), b.result->forecast.at(d, t))
              << "request " << i << " dim " << d << " t " << t;
        }
      }
      EXPECT_EQ(a.result->samples_used, b.result->samples_used);
      EXPECT_EQ(a.ledger.prompt_tokens, b.ledger.prompt_tokens);
      EXPECT_EQ(a.ledger.generated_tokens, b.ledger.generated_tokens);
      EXPECT_EQ(a.result->warnings, b.result->warnings);
    }
  }
}

}  // namespace
}  // namespace cluster
}  // namespace multicast
