#include "ts/transforms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ts/stats.h"

namespace multicast {
namespace ts {
namespace {

TEST(ZNormTest, ZeroMeanUnitVariance) {
  Series s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  ZNormParams p;
  Series z = ZNormalize(s, &p);
  Summary sum = Summarize(z.values());
  EXPECT_NEAR(sum.mean, 0.0, 1e-12);
  EXPECT_NEAR(sum.stddev, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.mean, 5.0);
  EXPECT_DOUBLE_EQ(p.stddev, 2.0);
}

TEST(ZNormTest, RoundTrip) {
  Series s({1.5, -2.0, 7.25, 0.0});
  ZNormParams p;
  Series z = ZNormalize(s, &p);
  Series back = ZDenormalize(z, p);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(back[i], s[i], 1e-12);
  }
}

TEST(ZNormTest, ConstantSeriesStaysInvertible) {
  Series s({3.0, 3.0, 3.0});
  ZNormParams p;
  Series z = ZNormalize(s, &p);
  EXPECT_DOUBLE_EQ(p.stddev, 1.0);
  Series back = ZDenormalize(z, p);
  EXPECT_DOUBLE_EQ(back[0], 3.0);
}

TEST(ZNormTest, NullParamsAccepted) {
  Series s({1.0, 2.0});
  Series z = ZNormalize(s, nullptr);
  EXPECT_EQ(z.size(), 2u);
}

TEST(DifferenceTest, FirstOrder) {
  auto r = Difference({1.0, 3.0, 6.0, 10.0}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(DifferenceTest, SecondOrder) {
  auto r = Difference({1.0, 3.0, 6.0, 10.0}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{1.0, 1.0}));
}

TEST(DifferenceTest, ZeroOrderIsIdentity) {
  auto r = Difference({1.0, 2.0}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{1.0, 2.0}));
}

TEST(DifferenceTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Difference({1.0, 2.0}, -1).ok());
  EXPECT_FALSE(Difference({1.0, 2.0}, 2).ok());
}

TEST(DifferenceTest, RoundTripViaHeads) {
  std::vector<double> v = {5.0, 2.0, 8.0, 8.0, -1.0, 4.0};
  for (int d = 0; d <= 3; ++d) {
    std::vector<double> heads;
    auto diffed = DifferenceWithHeads(v, d, &heads);
    ASSERT_TRUE(diffed.ok());
    EXPECT_EQ(heads.size(), static_cast<size_t>(d));
    auto back = Undifference(diffed.value(), heads);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value().size(), v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(back.value()[i], v[i], 1e-9) << "d=" << d << " i=" << i;
    }
  }
}

TEST(UndifferenceTest, ExtendsBeyondOriginal) {
  // Differencing a linear ramp yields constants; appending more
  // constants and undifferencing must extend the ramp.
  std::vector<double> heads;
  auto diffed = DifferenceWithHeads({1.0, 2.0, 3.0}, 1, &heads);
  ASSERT_TRUE(diffed.ok());
  std::vector<double> extended = diffed.value();
  extended.push_back(1.0);
  extended.push_back(1.0);
  auto back = Undifference(extended, heads);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

}  // namespace
}  // namespace ts
}  // namespace multicast
