// Property-based tests: randomized sweeps over the library's core
// invariants. Each property runs across many seeded random inputs via
// parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>

#include "forecast/multicast_forecaster.h"
#include "multiplex/multiplexer.h"
#include "sax/sax.h"
#include "scale/scaler.h"
#include "token/codec.h"
#include "ts/stats.h"
#include "ts/transforms.h"
#include "util/random.h"

namespace multicast {
namespace {

class SeededProperty : public testing::TestWithParam<int> {
 protected:
  Rng MakeRng() const { return Rng(static_cast<uint64_t>(GetParam()) + 1); }
};

// ---- Multiplexing: Demultiplex(Multiplex(x)) == x for random inputs. ----

TEST_P(SeededProperty, MuxRoundTripRandomInputs) {
  Rng rng = MakeRng();
  for (auto kind : {multiplex::MuxKind::kDigitInterleave,
                    multiplex::MuxKind::kValueInterleave,
                    multiplex::MuxKind::kValueConcat}) {
    auto mux = multiplex::CreateMultiplexer(kind);
    size_t dims = 1 + rng.NextBounded(4);
    size_t n = 1 + rng.NextBounded(40);
    int width = 1 + static_cast<int>(rng.NextBounded(4));
    multiplex::MuxInput input;
    input.values.resize(dims);
    std::vector<int> widths(dims, width);
    for (size_t d = 0; d < dims; ++d) {
      for (size_t t = 0; t < n; ++t) {
        int64_t limit = 1;
        for (int k = 0; k < width; ++k) limit *= 10;
        int64_t v = rng.NextBounded(static_cast<uint32_t>(limit));
        input.values[d].push_back(
            token::FixedWidthDigits(v, width).ValueOrDie());
      }
    }
    auto text = mux->Multiplex(input, widths);
    ASSERT_TRUE(text.ok()) << mux->name();
    auto back = mux->Demultiplex(text.value(), widths, false);
    ASSERT_TRUE(back.ok()) << mux->name();
    EXPECT_EQ(back.value().values, input.values) << mux->name();
  }
}

// ---- Multiplexing: stream length matches the token ledger formula. ----

TEST_P(SeededProperty, MuxStreamLengthMatchesTokenFormula) {
  Rng rng = MakeRng();
  for (auto kind : {multiplex::MuxKind::kDigitInterleave,
                    multiplex::MuxKind::kValueInterleave,
                    multiplex::MuxKind::kValueConcat}) {
    auto mux = multiplex::CreateMultiplexer(kind);
    size_t dims = 1 + rng.NextBounded(3);
    size_t n = 1 + rng.NextBounded(20);
    std::vector<int> widths(dims, 2);
    multiplex::MuxInput input;
    input.values.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      for (size_t t = 0; t < n; ++t) {
        input.values[d].push_back(
            token::FixedWidthDigits(rng.NextBounded(100), 2).ValueOrDie());
      }
    }
    auto text = mux->Multiplex(input, widths).ValueOrDie();
    // n timestamps at TokensPerTimestamp each, minus the final comma
    // that Multiplex leaves off.
    EXPECT_EQ(text.size() + 1, n * mux->TokensPerTimestamp(widths))
        << mux->name();
  }
}

// ---- Scaling: round-trip error bounded, scaled range respected. ----

TEST_P(SeededProperty, ScalerRoundTripBounded) {
  Rng rng = MakeRng();
  size_t n = 16 + rng.NextBounded(100);
  double offset = rng.NextUniform(-100.0, 100.0);
  double span = rng.NextUniform(0.1, 50.0);
  std::vector<double> v;
  for (size_t i = 0; i < n; ++i) {
    v.push_back(offset + rng.NextDouble() * span);
  }
  ts::Series s(v, "r");
  scale::ScalerOptions opts;
  opts.digits = 2 + static_cast<int>(rng.NextBounded(3));
  auto params = scale::FitScaler(s, opts);
  ASSERT_TRUE(params.ok());
  auto scaled = scale::ScaleValues(v, params.value());
  for (int64_t x : scaled) {
    EXPECT_GE(x, 0);
    EXPECT_LE(x, params.value().MaxValue());
  }
  auto back = scale::DescaleValues(scaled, params.value());
  double bound = scale::MaxRoundTripError(params.value());
  for (size_t i = 0; i < n; ++i) {
    // Values above the fitted percentile may clip; only check the bulk.
    if (v[i] <= ts::Quantile(v, opts.upper_percentile)) {
      EXPECT_LE(std::fabs(back[i] - v[i]), bound + 1e-9);
    }
  }
}

// ---- SAX: encode/decode stays within the quantization error bound. ----

TEST_P(SeededProperty, SaxReconstructionBoundedByBinWidth) {
  Rng rng = MakeRng();
  size_t n = 60 + rng.NextBounded(120);
  std::vector<double> v;
  double level = rng.NextUniform(-10.0, 10.0);
  for (size_t i = 0; i < n; ++i) {
    level += rng.NextGaussian(0.0, 0.3);
    v.push_back(level);
  }
  ts::Series s(v, "walk");
  sax::SaxOptions opts;
  opts.segment_length = 1;  // isolate the y-axis quantization error
  opts.alphabet_size = 5 + static_cast<int>(rng.NextBounded(10));
  auto codec = sax::SaxCodec::Fit(s, opts);
  ASSERT_TRUE(codec.ok());
  auto word = codec.value().Encode(v).ValueOrDie();
  auto back = codec.value().Decode(word, n).ValueOrDie();
  // Interior bins: reconstruction is within one bin width. Tail bins are
  // unbounded, so allow 4 sigma there.
  ts::Summary sum = ts::Summarize(v);
  auto breaks = codec.value().breakpoints();
  double max_gap = 0.0;
  for (size_t i = 1; i < breaks.size(); ++i) {
    max_gap = std::max(max_gap, breaks[i] - breaks[i - 1]);
  }
  for (size_t i = 0; i < n; ++i) {
    double z = (v[i] - sum.mean) / (sum.stddev > 1e-12 ? sum.stddev : 1.0);
    double zr = (back[i] - sum.mean) /
                (sum.stddev > 1e-12 ? sum.stddev : 1.0);
    if (z > breaks.front() && z < breaks.back()) {
      EXPECT_LE(std::fabs(zr - z), max_gap + 1e-9);
    } else {
      EXPECT_LE(std::fabs(zr - z), 4.0);
    }
  }
}

// ---- SAX: encoding is monotone in the value. ----

TEST_P(SeededProperty, SaxEncodingMonotone) {
  Rng rng = MakeRng();
  std::vector<double> train;
  for (int i = 0; i < 100; ++i) train.push_back(rng.NextGaussian(0.0, 2.0));
  sax::SaxOptions opts;
  opts.segment_length = 1;
  opts.alphabet_size = 4 + static_cast<int>(rng.NextBounded(8));
  auto codec = sax::SaxCodec::Fit(ts::Series(train, "t"), opts);
  ASSERT_TRUE(codec.ok());
  double a = rng.NextGaussian(0.0, 2.0);
  double b = a + rng.NextDouble() * 3.0;
  char sym_a = codec.value().Encode({a}).ValueOrDie()[0];
  char sym_b = codec.value().Encode({b}).ValueOrDie()[0];
  EXPECT_LE(sym_a, sym_b);
}

// ---- Differencing: Undifference(Difference(x)) == x. ----

TEST_P(SeededProperty, DifferencingRoundTrip) {
  Rng rng = MakeRng();
  size_t n = 10 + rng.NextBounded(50);
  int d = static_cast<int>(rng.NextBounded(3));
  std::vector<double> v;
  for (size_t i = 0; i < n; ++i) v.push_back(rng.NextGaussian(0.0, 5.0));
  std::vector<double> heads;
  auto diffed = ts::DifferenceWithHeads(v, d, &heads);
  ASSERT_TRUE(diffed.ok());
  auto back = ts::Undifference(diffed.value(), heads);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), v.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back.value()[i], v[i], 1e-8);
  }
}

// ---- Fixed-width digit strings: parse inverts format. ----

TEST_P(SeededProperty, FixedWidthRoundTrip) {
  Rng rng = MakeRng();
  int digits = 1 + static_cast<int>(rng.NextBounded(8));
  int64_t limit = 1;
  for (int i = 0; i < digits; ++i) limit *= 10;
  int64_t v = rng.NextBounded(static_cast<uint32_t>(
      std::min<int64_t>(limit, 4000000000LL)));
  if (v >= limit) v = limit - 1;
  auto s = token::FixedWidthDigits(v, digits);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(static_cast<int>(s.value().size()), digits);
  EXPECT_EQ(token::ParseFixedWidthDigits(s.value()).ValueOrDie(), v);
}

// ---- Demux fuzzing: arbitrary garbage never crashes, and either ----
// ---- errors cleanly or yields only well-formed timestamps.       ----

TEST_P(SeededProperty, DemuxSurvivesGarbage) {
  Rng rng = MakeRng();
  const char kAlphabet[] = "0123456789,abz!. ";
  for (auto kind : {multiplex::MuxKind::kDigitInterleave,
                    multiplex::MuxKind::kValueInterleave,
                    multiplex::MuxKind::kValueConcat}) {
    auto mux = multiplex::CreateMultiplexer(kind);
    for (int trial = 0; trial < 20; ++trial) {
      size_t len = rng.NextBounded(60);
      std::string garbage;
      for (size_t i = 0; i < len; ++i) {
        garbage.push_back(
            kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
      }
      std::vector<int> widths(1 + rng.NextBounded(3),
                              1 + static_cast<int>(rng.NextBounded(3)));
      for (bool partial : {false, true}) {
        auto result = mux->Demultiplex(garbage, widths, partial);
        if (!result.ok()) continue;  // clean rejection is fine
        // Any accepted output must be rectangular with exact widths.
        const auto& values = result.value().values;
        ASSERT_EQ(values.size(), widths.size());
        size_t n = values[0].size();
        for (size_t d = 0; d < values.size(); ++d) {
          ASSERT_EQ(values[d].size(), n);
          for (const auto& v : values[d]) {
            EXPECT_EQ(static_cast<int>(v.size()), widths[d]);
          }
        }
      }
    }
  }
}

// ---- Forecast invariance: the pipeline commutes with affine maps  ----
// ---- of the input (the scaler normalizes them away).              ----

TEST_P(SeededProperty, MultiCastInvariantToAffineRescaling) {
  Rng rng = MakeRng();
  size_t n = 48;
  std::vector<double> base(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = std::sin(static_cast<double>(i) * 0.5) * 3.0 +
              rng.NextGaussian(0.0, 0.1);
  }
  double scale_factor = rng.NextUniform(0.5, 20.0);
  double offset = rng.NextUniform(-100.0, 100.0);
  std::vector<double> mapped(n);
  for (size_t i = 0; i < n; ++i) mapped[i] = base[i] * scale_factor + offset;

  forecast::MultiCastOptions opts;
  opts.num_samples = 2;
  opts.seed = 7;
  forecast::MultiCastForecaster f1(opts), f2(opts);
  ts::Frame frame1 =
      ts::Frame::FromSeries({ts::Series(base, "x")}, "f").ValueOrDie();
  ts::Frame frame2 =
      ts::Frame::FromSeries({ts::Series(mapped, "x")}, "f").ValueOrDie();
  auto r1 = f1.Forecast(frame1, 6).ValueOrDie();
  auto r2 = f2.Forecast(frame2, 6).ValueOrDie();
  // Identical scaled-integer streams -> identical token sequences ->
  // forecasts related by the same affine map (up to rounding of the
  // percentile fit, which is itself affine-equivariant).
  for (size_t t = 0; t < 6; ++t) {
    double mapped_back =
        (r2.forecast.at(0, t) - offset) / scale_factor;
    EXPECT_NEAR(mapped_back, r1.forecast.at(0, t), 0.15)
        << "scale=" << scale_factor << " offset=" << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeededProperty, testing::Range(0, 24));

}  // namespace
}  // namespace multicast
