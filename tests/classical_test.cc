#include "forecast/classical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "forecast/forecaster.h"
#include "ts/frame.h"

namespace multicast {
namespace forecast {
namespace {

ts::Frame Linear(size_t n, double slope = 1.0, double intercept = 3.0) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = intercept + slope * static_cast<double>(i);
    b[i] = 42.0;  // constant second dimension
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "hist")
      .ValueOrDie();
}

ts::Frame Noisy(size_t n) {
  std::vector<double> a(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = 10.0 + std::sin(0.7 * static_cast<double>(i)) +
           0.1 * static_cast<double>(i % 5);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a")}, "hist").ValueOrDie();
}

TEST(ClassicalForecasterTest, FullShapeAndClassicalTier) {
  ClassicalForecaster fc;
  Result<ForecastResult> result = fc.Forecast(Noisy(48), 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 1u);
  EXPECT_EQ(result.value().forecast.length(), 6u);
  EXPECT_EQ(result.value().tier, ForecastTier::kClassical);
  EXPECT_FALSE(result.value().degraded);
  EXPECT_TRUE(result.value().warnings.empty());
  EXPECT_EQ(result.value().ledger.total(), 0u);
  EXPECT_EQ(result.value().virtual_seconds, 0.0);
}

TEST(ClassicalForecasterTest, DriftExtendsALinearSeriesExactly) {
  ClassicalOptions options;
  options.engine = ClassicalEngine::kDrift;
  ClassicalForecaster fc(options);
  Result<ForecastResult> result = fc.Forecast(Linear(32), 4);
  ASSERT_TRUE(result.ok());
  for (size_t h = 0; h < 4; ++h) {
    // history ends at 3 + 31; drift adds the mean slope (1.0) per step.
    EXPECT_NEAR(result.value().forecast.at(0, h),
                34.0 + static_cast<double>(h + 1), 1e-9);
    EXPECT_NEAR(result.value().forecast.at(1, h), 42.0, 1e-9);
  }
}

TEST(ClassicalForecasterTest, NaiveRepeatsTheLastObservation) {
  ClassicalOptions options;
  options.engine = ClassicalEngine::kNaiveLast;
  ClassicalForecaster fc(options);
  Result<ForecastResult> result = fc.Forecast(Linear(10), 3);
  ASSERT_TRUE(result.ok());
  for (size_t h = 0; h < 3; ++h) {
    EXPECT_NEAR(result.value().forecast.at(0, h), 12.0, 1e-9);
  }
}

TEST(ClassicalForecasterTest, AutoBeatsNaiveOnATrendingSeries) {
  // On a pure trend the auto engine must not pick naive-last: its
  // one-step residuals are a constant 1.0 while drift/theta/ets track
  // the slope.
  ClassicalForecaster fc;
  Result<ForecastResult> result = fc.Forecast(Linear(40), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().forecast.at(0, 4), 42.0 + 5.0, 1.0);
}

TEST(ClassicalForecasterTest, BandsBracketThePointForecastAndWiden) {
  ClassicalForecaster fc;
  Result<ForecastResult> result = fc.Forecast(Noisy(64), 8);
  ASSERT_TRUE(result.ok());
  const ForecastResult& r = result.value();
  ASSERT_EQ(r.quantile_bands.size(), 2u);
  EXPECT_DOUBLE_EQ(r.quantile_bands[0].first, 0.1);
  EXPECT_DOUBLE_EQ(r.quantile_bands[1].first, 0.9);
  const ts::Frame& lo = r.quantile_bands[0].second;
  const ts::Frame& hi = r.quantile_bands[1].second;
  for (size_t h = 0; h < 8; ++h) {
    EXPECT_LE(lo.at(0, h), hi.at(0, h));
  }
  // sqrt(h+1) horizon scaling: the band at the last step is at least as
  // wide as at the first.
  EXPECT_GE(hi.at(0, 7) - lo.at(0, 7), hi.at(0, 0) - lo.at(0, 0));
}

TEST(ClassicalForecasterTest, DemotionNoteFlagsDegraded) {
  ClassicalOptions options;
  options.demotion_note = "overload ladder demoted request";
  ClassicalForecaster fc(options);
  Result<ForecastResult> result = fc.Forecast(Noisy(32), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().degraded);
  ASSERT_EQ(result.value().warnings.size(), 1u);
  EXPECT_EQ(result.value().warnings[0], options.demotion_note);
}

TEST(ClassicalForecasterTest, DeterministicAcrossRuns) {
  ClassicalForecaster fc;
  Result<ForecastResult> a = fc.Forecast(Noisy(64), 8);
  Result<ForecastResult> b = fc.Forecast(Noisy(64), 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t h = 0; h < 8; ++h) {
    EXPECT_DOUBLE_EQ(a.value().forecast.at(0, h),
                     b.value().forecast.at(0, h));
    for (size_t q = 0; q < 2; ++q) {
      EXPECT_DOUBLE_EQ(a.value().quantile_bands[q].second.at(0, h),
                       b.value().quantile_bands[q].second.at(0, h));
    }
  }
}

TEST(ClassicalForecasterTest, ShortHistoriesStillForecast) {
  // One observation: every engine degenerates to naive-last; auto must
  // not crash picking among them.
  ClassicalForecaster fc;
  std::vector<double> one = {7.0};
  ts::Frame tiny =
      ts::Frame::FromSeries({ts::Series(one, "a")}, "hist").ValueOrDie();
  Result<ForecastResult> result = fc.Forecast(tiny, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t h = 0; h < 3; ++h) {
    EXPECT_NEAR(result.value().forecast.at(0, h), 7.0, 1e-9);
  }
}

TEST(ClassicalForecasterTest, RejectsBadQuantiles) {
  ClassicalOptions options;
  options.quantiles = {0.1, 1.0};
  ClassicalForecaster fc(options);
  Result<ForecastResult> result = fc.Forecast(Noisy(32), 4);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClassicalForecasterTest, RejectsZeroHorizonAndEmptyHistory) {
  ClassicalForecaster fc;
  EXPECT_EQ(fc.Forecast(Noisy(32), 0).status().code(),
            StatusCode::kInvalidArgument);
  ts::Frame empty;
  EXPECT_EQ(fc.Forecast(empty, 4).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClassicalForecasterTest, HonorsCancellation) {
  ClassicalForecaster fc;
  RequestContext ctx;
  ctx.cancel.Cancel("client went away");
  Result<ForecastResult> result = fc.Forecast(Noisy(32), 4, ctx);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(ClassicalForecasterTest, EngineNamesAreStable) {
  EXPECT_STREQ(ClassicalEngineName(ClassicalEngine::kAuto), "auto");
  EXPECT_STREQ(ClassicalEngineName(ClassicalEngine::kNaiveLast), "naive");
  EXPECT_STREQ(ClassicalEngineName(ClassicalEngine::kDrift), "drift");
  EXPECT_STREQ(ClassicalEngineName(ClassicalEngine::kTheta), "theta");
  EXPECT_STREQ(ClassicalEngineName(ClassicalEngine::kEts), "ets");
  ClassicalForecaster fc;
  EXPECT_EQ(fc.name(), "Classical(auto)");
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
