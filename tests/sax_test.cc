#include "sax/sax.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sax/gaussian.h"
#include "util/random.h"

namespace multicast {
namespace sax {
namespace {

ts::Series SineSeries(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 10.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 24.0);
  }
  return ts::Series(std::move(v), "sine");
}

TEST(BreakpointsTest, EquiprobableBins) {
  auto b = GaussianBreakpoints(4);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b.value().size(), 3u);
  // Each bin holds 25% probability mass.
  EXPECT_NEAR(NormalCdf(b.value()[0]), 0.25, 1e-9);
  EXPECT_NEAR(NormalCdf(b.value()[1]), 0.50, 1e-9);
  EXPECT_NEAR(NormalCdf(b.value()[2]), 0.75, 1e-9);
}

TEST(BreakpointsTest, StrictlyIncreasing) {
  for (int a : {2, 3, 5, 10, 20, 26}) {
    auto b = GaussianBreakpoints(a);
    ASSERT_TRUE(b.ok());
    for (size_t i = 1; i < b.value().size(); ++i) {
      EXPECT_LT(b.value()[i - 1], b.value()[i]);
    }
  }
}

TEST(BreakpointsTest, ClassicSizeThreeTable) {
  // The canonical SAX table: a=3 -> +-0.43.
  auto b = GaussianBreakpoints(3);
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b.value()[0], -0.4307, 1e-3);
  EXPECT_NEAR(b.value()[1], 0.4307, 1e-3);
}

TEST(BreakpointsTest, RejectsTooSmall) {
  EXPECT_FALSE(GaussianBreakpoints(1).ok());
  EXPECT_FALSE(GaussianBreakpoints(0).ok());
}

TEST(SaxCodecTest, EncodeLengthMatchesSegments) {
  SaxOptions opts;
  opts.segment_length = 6;
  opts.alphabet_size = 5;
  auto codec = SaxCodec::Fit(SineSeries(60), opts);
  ASSERT_TRUE(codec.ok());
  auto word = codec.value().Encode(SineSeries(60).values());
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word.value().size(), 10u);
  EXPECT_EQ(codec.value().NumSegments(60), 10u);
  EXPECT_EQ(codec.value().NumSegments(61), 11u);
}

TEST(SaxCodecTest, SymbolsWithinAlphabet) {
  SaxOptions opts;
  opts.segment_length = 3;
  opts.alphabet_size = 5;
  auto codec = SaxCodec::Fit(SineSeries(90), opts);
  ASSERT_TRUE(codec.ok());
  auto word = codec.value().Encode(SineSeries(90).values());
  ASSERT_TRUE(word.ok());
  for (char c : word.value()) {
    EXPECT_GE(c, 'a');
    EXPECT_LT(c, 'a' + 5);
  }
}

TEST(SaxCodecTest, DigitalSymbols) {
  SaxOptions opts;
  opts.segment_length = 3;
  opts.alphabet_size = 5;
  opts.symbols = SymbolKind::kDigital;
  auto codec = SaxCodec::Fit(SineSeries(90), opts);
  ASSERT_TRUE(codec.ok());
  auto word = codec.value().Encode(SineSeries(90).values());
  ASSERT_TRUE(word.ok());
  for (char c : word.value()) {
    EXPECT_GE(c, '0');
    EXPECT_LT(c, '0' + 5);
  }
}

TEST(SaxCodecTest, DigitalCapsAtTen) {
  SaxOptions opts;
  opts.alphabet_size = 20;
  opts.symbols = SymbolKind::kDigital;
  EXPECT_FALSE(SaxCodec::Fit(SineSeries(60), opts).ok());
  opts.symbols = SymbolKind::kAlphabetic;
  EXPECT_TRUE(SaxCodec::Fit(SineSeries(60), opts).ok());
}

TEST(SaxCodecTest, MonotoneValueToSymbol) {
  // Larger values never map to smaller symbols.
  SaxOptions opts;
  opts.segment_length = 1;
  opts.alphabet_size = 8;
  ts::Series train = SineSeries(100);
  auto codec = SaxCodec::Fit(train, opts);
  ASSERT_TRUE(codec.ok());
  std::vector<double> ascending;
  for (int i = 0; i <= 20; ++i) ascending.push_back(5.0 + i * 0.5);
  auto word = codec.value().Encode(ascending);
  ASSERT_TRUE(word.ok());
  for (size_t i = 1; i < word.value().size(); ++i) {
    EXPECT_LE(word.value()[i - 1], word.value()[i]);
  }
}

TEST(SaxCodecTest, DecodeReconstructsApproximately) {
  SaxOptions opts;
  opts.segment_length = 1;
  opts.alphabet_size = 20;
  ts::Series s = SineSeries(120);
  auto codec = SaxCodec::Fit(s, opts);
  ASSERT_TRUE(codec.ok());
  auto word = codec.value().Encode(s.values());
  ASSERT_TRUE(word.ok());
  auto back = codec.value().Decode(word.value(), s.size());
  ASSERT_TRUE(back.ok());
  // With 20 bins at segment 1, RMSE should be well under half the
  // amplitude.
  double ss = 0.0;
  for (size_t i = 0; i < s.size(); ++i) {
    double d = back.value()[i] - s[i];
    ss += d * d;
  }
  EXPECT_LT(std::sqrt(ss / s.size()), 1.0);
}

TEST(SaxCodecTest, CoarserAlphabetLosesMore) {
  ts::Series s = SineSeries(120);
  auto rmse_for = [&](int alpha) {
    SaxOptions opts;
    opts.segment_length = 1;
    opts.alphabet_size = alpha;
    auto codec = SaxCodec::Fit(s, opts).ValueOrDie();
    auto word = codec.Encode(s.values()).ValueOrDie();
    auto back = codec.Decode(word, s.size()).ValueOrDie();
    double ss = 0.0;
    for (size_t i = 0; i < s.size(); ++i) {
      double d = back[i] - s[i];
      ss += d * d;
    }
    return std::sqrt(ss / s.size());
  };
  EXPECT_LT(rmse_for(20), rmse_for(5));
  EXPECT_LT(rmse_for(5), rmse_for(2));
}

TEST(SaxCodecTest, DecodeRejectsForeignSymbols) {
  SaxOptions opts;
  opts.alphabet_size = 3;
  auto codec = SaxCodec::Fit(SineSeries(30), opts);
  ASSERT_TRUE(codec.ok());
  EXPECT_FALSE(codec.value().Decode("abz", 9).ok());
  EXPECT_FALSE(codec.value().Decode("ab9", 9).ok());
}

TEST(SaxCodecTest, BinSymbolRoundTrip) {
  SaxOptions opts;
  opts.alphabet_size = 7;
  auto codec = SaxCodec::Fit(SineSeries(30), opts);
  ASSERT_TRUE(codec.ok());
  for (int bin = 0; bin < 7; ++bin) {
    char sym = codec.value().SymbolForBin(bin).ValueOrDie();
    EXPECT_EQ(codec.value().BinForSymbol(sym).ValueOrDie(), bin);
  }
  EXPECT_FALSE(codec.value().SymbolForBin(7).ok());
  EXPECT_FALSE(codec.value().SymbolForBin(-1).ok());
}

TEST(SaxCodecTest, BinMeansAreOrderedAndCentered) {
  SaxOptions opts;
  opts.alphabet_size = 5;
  auto codec = SaxCodec::Fit(SineSeries(30), opts);
  ASSERT_TRUE(codec.ok());
  const auto& means = codec.value().bin_means();
  ASSERT_EQ(means.size(), 5u);
  for (size_t i = 1; i < means.size(); ++i) {
    EXPECT_LT(means[i - 1], means[i]);
  }
  // Symmetric alphabet -> symmetric reconstruction values.
  EXPECT_NEAR(means[2], 0.0, 1e-9);
  EXPECT_NEAR(means[0], -means[4], 1e-9);
}

TEST(SaxCodecTest, RejectsBadOptions) {
  SaxOptions opts;
  opts.segment_length = 0;
  EXPECT_FALSE(SaxCodec::Fit(SineSeries(30), opts).ok());
  opts = SaxOptions{};
  opts.alphabet_size = 1;
  EXPECT_FALSE(SaxCodec::Fit(SineSeries(30), opts).ok());
  EXPECT_FALSE(SaxCodec::Fit(ts::Series(), SaxOptions{}).ok());
}

TEST(SaxCodecTest, EncodeRejectsEmpty) {
  auto codec = SaxCodec::Fit(SineSeries(30), SaxOptions{});
  ASSERT_TRUE(codec.ok());
  EXPECT_FALSE(codec.value().Encode({}).ok());
}

TEST(SaxCodecTest, GaussianDataFillsBinsEqually) {
  // On N(0,1) data, equiprobable bins should be hit roughly equally.
  Rng rng(77);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.NextGaussian());
  ts::Series s(v, "gauss");
  SaxOptions opts;
  opts.segment_length = 1;
  opts.alphabet_size = 4;
  auto codec = SaxCodec::Fit(s, opts).ValueOrDie();
  auto word = codec.Encode(s.values()).ValueOrDie();
  std::vector<int> counts(4, 0);
  for (char c : word) ++counts[c - 'a'];
  for (int c : counts) {
    EXPECT_NEAR(c / 20000.0, 0.25, 0.02);
  }
}

}  // namespace
}  // namespace sax
}  // namespace multicast
