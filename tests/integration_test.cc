// Cross-module integration tests: the full evaluation pipeline on the
// Table I datasets, exactly as the bench binaries run it (smaller sample
// counts to keep the suite fast).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/arima.h"
#include "baselines/lstm.h"
#include "baselines/naive.h"
#include "data/datasets.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "ts/split.h"
#include "ts/stats.h"

namespace multicast {
namespace {

ts::Split MakeSplit(const std::string& dataset, size_t horizon) {
  auto frame = data::LoadDataset(dataset).ValueOrDie();
  return ts::SplitHorizon(frame, horizon).ValueOrDie();
}

class DatasetPipelineTest : public testing::TestWithParam<const char*> {};

TEST_P(DatasetPipelineTest, AllMethodsProduceFiniteScores) {
  ts::Split split = MakeSplit(GetParam(), 16);

  forecast::MultiCastOptions mc;
  mc.num_samples = 2;
  forecast::MultiCastForecaster di(mc);
  mc.mux = multiplex::MuxKind::kValueInterleave;
  forecast::MultiCastForecaster vi(mc);
  mc.mux = multiplex::MuxKind::kValueConcat;
  forecast::MultiCastForecaster vc(mc);

  forecast::LlmTimeOptions lt;
  lt.num_samples = 2;
  forecast::LlmTimeForecaster llmtime(lt);

  baselines::ArimaForecaster arima(baselines::ArimaOptions{});
  baselines::LstmOptions lstm_opts;
  lstm_opts.hidden_units = 12;
  lstm_opts.epochs = 4;
  baselines::LstmForecaster lstm(lstm_opts);

  auto runs = eval::RunMethods({&di, &vi, &vc, &llmtime, &arima, &lstm},
                               MakeSplit(GetParam(), 16));
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  ASSERT_EQ(runs.value().size(), 6u);
  for (const auto& run : runs.value()) {
    EXPECT_EQ(run.rmse_per_dim.size(), split.test.num_dims()) << run.method;
    for (double rmse : run.rmse_per_dim) {
      EXPECT_TRUE(std::isfinite(rmse)) << run.method;
      EXPECT_GT(rmse, 0.0) << run.method;
    }
  }

  // LLM methods use tokens; classical methods do not.
  EXPECT_GT(runs.value()[0].ledger.total(), 0u);
  EXPECT_GT(runs.value()[3].ledger.total(), 0u);
  EXPECT_EQ(runs.value()[4].ledger.total(), 0u);
  EXPECT_EQ(runs.value()[5].ledger.total(), 0u);
}

TEST_P(DatasetPipelineTest, ForecastsAreWithinSaneBand) {
  // Zero-shot forecasts must stay within the scaler's representable
  // band, which itself brackets the training range.
  ts::Split split = MakeSplit(GetParam(), 12);
  forecast::MultiCastOptions mc;
  mc.num_samples = 2;
  forecast::MultiCastForecaster f(mc);
  auto result = f.Forecast(split.train, 12).ValueOrDie();
  for (size_t d = 0; d < split.train.num_dims(); ++d) {
    ts::Summary train_summary = ts::Summarize(split.train.dim(d).values());
    double span = train_summary.max - train_summary.min;
    for (double v : result.forecast.dim(d).values()) {
      EXPECT_GT(v, train_summary.min - span);
      EXPECT_LT(v, train_summary.max + span);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TableOne, DatasetPipelineTest,
                         testing::Values("GasRate", "Electricity",
                                         "Weather"));

TEST(IntegrationTest, SaxVariantsRunOnGasRate) {
  ts::Split split = MakeSplit("GasRate", 24);
  for (auto q : {forecast::Quantization::kSaxAlphabetic,
                 forecast::Quantization::kSaxDigital}) {
    forecast::MultiCastOptions mc;
    mc.quantization = q;
    mc.num_samples = 2;
    mc.sax_segment_length = 6;
    mc.sax_alphabet_size = 5;
    forecast::MultiCastForecaster f(mc);
    auto run = eval::RunMethod(&f, split);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(std::isfinite(run.value().rmse_per_dim[1]));
  }
}

TEST(IntegrationTest, SaxLedgerShrinksWithSegmentLength) {
  ts::Split split = MakeSplit("GasRate", 24);
  size_t prev_total = SIZE_MAX;
  for (int seg : {3, 6, 9}) {
    forecast::MultiCastOptions mc;
    mc.quantization = forecast::Quantization::kSaxAlphabetic;
    mc.sax_segment_length = seg;
    mc.num_samples = 2;
    forecast::MultiCastForecaster f(mc);
    auto run = eval::RunMethod(&f, split).ValueOrDie();
    EXPECT_LT(run.ledger.total(), prev_total) << "segment " << seg;
    prev_total = run.ledger.total();
  }
}

TEST(IntegrationTest, ProfilesProduceDifferentForecasts) {
  ts::Split split = MakeSplit("GasRate", 12);
  forecast::MultiCastOptions mc;
  mc.mux = multiplex::MuxKind::kValueInterleave;
  mc.num_samples = 2;
  mc.profile = lm::ModelProfile::Llama2_7B();
  forecast::MultiCastForecaster llama(mc);
  mc.profile = lm::ModelProfile::Phi2();
  forecast::MultiCastForecaster phi(mc);
  auto r1 = llama.Forecast(split.train, 12).ValueOrDie();
  auto r2 = phi.Forecast(split.train, 12).ValueOrDie();
  EXPECT_NE(r1.forecast.dim(0).values(), r2.forecast.dim(0).values());
}

TEST(IntegrationTest, TableRenderingEndToEnd) {
  ts::Split split = MakeSplit("GasRate", 16);
  baselines::NaiveLastForecaster naive;
  baselines::DriftForecaster drift;
  auto runs = eval::RunMethods({&naive, &drift}, split).ValueOrDie();
  std::string table =
      eval::RenderRmseTable("Integration", {"GasRate", "CO2"}, runs);
  EXPECT_NE(table.find("NaiveLast"), std::string::npos);
  EXPECT_NE(table.find("Drift"), std::string::npos);
  std::string figure =
      eval::RenderForecastFigure("Overlay", split, 0, runs[0]);
  EXPECT_NE(figure.find("history"), std::string::npos);
}

TEST(IntegrationTest, AlphabeticalAndDigitalSaxAreEquivalent) {
  // Structural property documented in EXPERIMENTS.md: the simulated LM
  // sees token ids, not glyphs, so alphabetical and digital SAX with
  // identical parameters must produce bit-identical forecasts. (The
  // paper's measured gap between the two can therefore only come from
  // a real LLM's tokenizer/embedding asymmetries.)
  ts::Split split = MakeSplit("GasRate", 24);
  forecast::MultiCastOptions base;
  base.num_samples = 3;
  base.sax_segment_length = 6;
  base.sax_alphabet_size = 5;
  base.quantization = forecast::Quantization::kSaxAlphabetic;
  forecast::MultiCastForecaster alpha(base);
  base.quantization = forecast::Quantization::kSaxDigital;
  forecast::MultiCastForecaster digit(base);
  auto ra = alpha.Forecast(split.train, 24).ValueOrDie();
  auto rd = digit.Forecast(split.train, 24).ValueOrDie();
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(ra.forecast.dim(d).values(), rd.forecast.dim(d).values());
  }
  EXPECT_EQ(ra.ledger.total(), rd.ledger.total());
}

TEST(IntegrationTest, CsvDatasetDrivesPipeline) {
  // Round-trip a dataset through CSV, then forecast from the reloaded
  // frame — the path a user with the real data files would take.
  auto frame = data::MakeElectricity().ValueOrDie();
  std::string path = testing::TempDir() + "/mc_integration.csv";
  ASSERT_TRUE(WriteCsvFile(frame.ToCsv(), path).ok());
  auto loaded = data::LoadCsvDataset(path, "Electricity").ValueOrDie();
  auto split = ts::SplitHorizon(loaded, 12).ValueOrDie();
  forecast::MultiCastOptions mc;
  mc.num_samples = 2;
  forecast::MultiCastForecaster f(mc);
  auto run = eval::RunMethod(&f, split);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace multicast
