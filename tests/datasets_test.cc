#include "data/datasets.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "ts/stats.h"
#include "util/csv.h"

namespace multicast {
namespace data {
namespace {

TEST(DatasetsTest, CatalogMatchesTableI) {
  auto specs = BuiltinDatasets();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "GasRate");
  EXPECT_EQ(specs[0].dimensions, 2u);
  EXPECT_EQ(specs[0].length, 296u);
  EXPECT_EQ(specs[1].name, "Electricity");
  EXPECT_EQ(specs[1].dimensions, 3u);
  EXPECT_EQ(specs[1].length, 242u);
  EXPECT_EQ(specs[2].name, "Weather");
  EXPECT_EQ(specs[2].dimensions, 4u);
  EXPECT_EQ(specs[2].length, 217u);
}

TEST(DatasetsTest, GeneratorsMatchCatalogShapes) {
  for (const auto& spec : BuiltinDatasets()) {
    auto frame = LoadDataset(spec.name);
    ASSERT_TRUE(frame.ok()) << spec.name;
    EXPECT_EQ(frame.value().num_dims(), spec.dimensions) << spec.name;
    EXPECT_EQ(frame.value().length(), spec.length) << spec.name;
    EXPECT_EQ(frame.value().name(), spec.name);
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_FALSE(LoadDataset("Traffic").ok());
}

TEST(DatasetsTest, DeterministicForSeed) {
  auto a = MakeGasRate(1);
  auto b = MakeGasRate(1);
  auto c = MakeGasRate(2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value().dim(0).values(), b.value().dim(0).values());
  EXPECT_NE(a.value().dim(0).values(), c.value().dim(0).values());
}

TEST(DatasetsTest, AllValuesFinite) {
  for (const auto& spec : BuiltinDatasets()) {
    auto frame = LoadDataset(spec.name).ValueOrDie();
    for (size_t d = 0; d < frame.num_dims(); ++d) {
      for (double v : frame.dim(d).values()) {
        ASSERT_TRUE(std::isfinite(v)) << spec.name << " dim " << d;
      }
    }
  }
}

TEST(DatasetsTest, GasRateDimensionsAreCorrelated) {
  // The CO2 output responds to the gas feed with a lag, so the absolute
  // lagged cross-correlation must be substantial.
  auto frame = MakeGasRate().ValueOrDie();
  std::vector<double> gas = frame.dim(0).values();
  std::vector<double> co2 = frame.dim(1).values();
  double best = 0.0;
  for (size_t lag = 0; lag <= 10; ++lag) {
    std::vector<double> a(gas.begin(), gas.end() - lag);
    std::vector<double> b(co2.begin() + lag, co2.end());
    best = std::max(best, std::fabs(ts::PearsonCorrelation(a, b)));
  }
  EXPECT_GT(best, 0.4);
}

TEST(DatasetsTest, GasRateScalesMatchPaper) {
  auto frame = MakeGasRate().ValueOrDie();
  ts::Summary gas = ts::Summarize(frame.dim(0).values());
  ts::Summary co2 = ts::Summarize(frame.dim(1).values());
  // Feed oscillates around 0, CO2 sits in the ~45-60% band.
  EXPECT_NEAR(gas.mean, 0.0, 1.0);
  EXPECT_GT(co2.mean, 45.0);
  EXPECT_LT(co2.mean, 60.0);
  EXPECT_EQ(frame.dim(0).name(), "GasRate");
  EXPECT_EQ(frame.dim(1).name(), "CO2");
}

TEST(DatasetsTest, ElectricityCorrelations) {
  auto frame = MakeElectricity().ValueOrDie();
  double hufl_hull = ts::PearsonCorrelation(frame.dim(0).values(),
                                            frame.dim(1).values());
  EXPECT_GT(hufl_hull, 0.6);  // HULL is a fraction of HUFL
  EXPECT_EQ(frame.dim(2).name(), "OT");
}

TEST(DatasetsTest, ElectricityScales) {
  auto frame = MakeElectricity().ValueOrDie();
  ts::Summary hufl = ts::Summarize(frame.dim(0).values());
  ts::Summary hull = ts::Summarize(frame.dim(1).values());
  EXPECT_GT(hufl.mean, hull.mean);  // useful load dominates useless load
  EXPECT_GT(hufl.mean, 10.0);
  EXPECT_LT(hull.mean, 12.0);
}

TEST(DatasetsTest, WeatherAllPairsCorrelated) {
  auto frame = MakeWeather().ValueOrDie();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      double c = ts::PearsonCorrelation(frame.dim(i).values(),
                                        frame.dim(j).values());
      EXPECT_GT(std::fabs(c), 0.5) << "dims " << i << "," << j;
    }
  }
}

TEST(DatasetsTest, WeatherUnitsMatchPaper) {
  auto frame = MakeWeather().ValueOrDie();
  ts::Summary tlog = ts::Summarize(frame.dim(0).values());   // Celsius
  ts::Summary tpot = ts::Summarize(frame.dim(3).values());   // Kelvin
  EXPECT_NEAR(tpot.mean - tlog.mean, 273.15, 5.0);
  ts::Summary vp = ts::Summarize(frame.dim(2).values());     // mbar
  EXPECT_GT(vp.min, 0.0);  // saturation pressure is positive
}

TEST(DatasetsTest, CsvLoaderRoundTrip) {
  auto frame = MakeGasRate().ValueOrDie();
  std::string path = testing::TempDir() + "/mc_dataset_test.csv";
  ASSERT_TRUE(WriteCsvFile(frame.ToCsv(), path).ok());
  auto loaded = LoadCsvDataset(path, "GasRate");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_dims(), 2u);
  EXPECT_EQ(loaded.value().length(), 296u);
  EXPECT_NEAR(loaded.value().at(1, 100), frame.at(1, 100), 1e-6);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace multicast
