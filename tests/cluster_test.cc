// Mechanics of the cluster building blocks: fault plans (windows,
// outage arithmetic, slow-motion stretching, seeded fleet chaos),
// health monitoring (ejection / probation / readmission, passive
// misroute feedback) and the router policies. The end-to-end failover
// behaviour these compose into is covered by cluster_chaos_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "cluster/fault_plan.h"
#include "cluster/health.h"
#include "cluster/replica_set.h"
#include "cluster/router.h"

namespace multicast {
namespace cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// FaultWindow / ReplicaFaultPlan
// ---------------------------------------------------------------------

TEST(FaultWindowTest, ContainsIsHalfOpen) {
  FaultWindow w{1.0, 3.0};
  EXPECT_FALSE(w.Contains(0.999));
  EXPECT_TRUE(w.Contains(1.0));  // closed at the start...
  EXPECT_TRUE(w.Contains(2.999));
  EXPECT_FALSE(w.Contains(3.0));  // ...open at the end
}

TEST(FaultWindowTest, DefaultWindowNeverEnds) {
  FaultWindow w;
  w.start_seconds = 5.0;
  EXPECT_FALSE(w.Contains(4.0));
  EXPECT_TRUE(w.Contains(5.0));
  EXPECT_TRUE(w.Contains(1e12));
}

TEST(FaultPlanTest, NormalizeSortsAndMergesOverlaps) {
  ReplicaFaultPlan plan;
  plan.crashes = {{5.0, 7.0}, {1.0, 3.0}, {2.0, 4.0}, {7.0, 8.0}};
  plan.Normalize();
  // [1,3) + [2,4) merge; [5,7) + [7,8) touch (start == end) and merge.
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.crashes[0].start_seconds, 1.0);
  EXPECT_DOUBLE_EQ(plan.crashes[0].end_seconds, 4.0);
  EXPECT_DOUBLE_EQ(plan.crashes[1].start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(plan.crashes[1].end_seconds, 8.0);
}

TEST(FaultPlanTest, UpAtSeesCrashesAndPartitions) {
  ReplicaFaultPlan plan;
  plan.crashes = {{1.0, 2.0}};
  plan.partitions = {{3.0, 4.0}};
  plan.Normalize();
  EXPECT_TRUE(plan.UpAt(0.5));
  EXPECT_FALSE(plan.UpAt(1.5));  // crashed
  EXPECT_TRUE(plan.CrashedAt(1.5));
  EXPECT_TRUE(plan.UpAt(2.5));
  EXPECT_FALSE(plan.UpAt(3.5));  // partitioned, not crashed
  EXPECT_FALSE(plan.CrashedAt(3.5));
  EXPECT_TRUE(plan.UpAt(4.0));
}

TEST(FaultPlanTest, NextOutageIsStrictlyInsideTheSpan) {
  ReplicaFaultPlan plan;
  plan.crashes = {{2.0, 3.0}};
  plan.partitions = {{5.0, 6.0}};
  plan.Normalize();
  // An outage exactly at `from` does not interrupt work dispatched at
  // `from` (the dispatcher already checked UpAt), and one at `until`
  // cannot interrupt a flight that finished there.
  EXPECT_DOUBLE_EQ(plan.NextOutageIn(0.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.NextOutageIn(2.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(plan.NextOutageIn(0.0, 2.0), kInf);
  EXPECT_DOUBLE_EQ(plan.NextOutageIn(3.0, 5.0), kInf);
  EXPECT_DOUBLE_EQ(plan.NextOutageIn(6.0, kInf), kInf);
}

TEST(FaultPlanTest, NextUpAtHopsChainedWindows) {
  ReplicaFaultPlan plan;
  // A partition that begins the instant the crash ends: recovery has to
  // hop both windows.
  plan.crashes = {{1.0, 3.0}};
  plan.partitions = {{3.0, 4.5}};
  plan.Normalize();
  EXPECT_DOUBLE_EQ(plan.NextUpAt(0.0), 0.0);  // already up
  EXPECT_DOUBLE_EQ(plan.NextUpAt(1.0), 4.5);
  EXPECT_DOUBLE_EQ(plan.NextUpAt(2.9), 4.5);
  EXPECT_DOUBLE_EQ(plan.NextUpAt(4.5), 4.5);
}

TEST(FaultPlanTest, NextUpAtPermanentOutageIsNever) {
  ReplicaFaultPlan plan;
  plan.crashes = {{2.0, kInf}};
  plan.Normalize();
  EXPECT_DOUBLE_EQ(plan.NextUpAt(1.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.NextUpAt(2.0), kInf);
  EXPECT_DOUBLE_EQ(plan.NextUpAt(100.0), kInf);
}

TEST(FaultPlanTest, StretchedFinishFullSpeedOutsideSlowWindows) {
  ReplicaFaultPlan plan;
  EXPECT_DOUBLE_EQ(plan.StretchedFinish(1.0, 2.0), 3.0);
  plan.slow_factor = 3.0;  // always slow: no windows listed
  EXPECT_DOUBLE_EQ(plan.StretchedFinish(1.0, 2.0), 7.0);
}

TEST(FaultPlanTest, StretchedFinishWalksSlowWindows) {
  ReplicaFaultPlan plan;
  plan.slow_factor = 2.0;
  plan.slow = {{2.0, 4.0}};
  plan.Normalize();
  // 1 s of work starting at 0: done at 1, before the window.
  EXPECT_DOUBLE_EQ(plan.StretchedFinish(0.0, 1.0), 1.0);
  // 3 s of work starting at 0: 2 s full speed, then the last 1 s runs
  // at half speed inside [2,4) -> finishes at 4.
  EXPECT_DOUBLE_EQ(plan.StretchedFinish(0.0, 3.0), 4.0);
  // 4 s of work starting at 0: 2 s fast, 1 s stretched to 2, then 1 s
  // fast after the window -> 5.
  EXPECT_DOUBLE_EQ(plan.StretchedFinish(0.0, 4.0), 5.0);
  // Starting inside the window.
  EXPECT_DOUBLE_EQ(plan.StretchedFinish(3.0, 1.0), 4.5);
}

TEST(FleetChaosTest, DeterministicInOptionsAndSeed) {
  FleetChaosOptions options;
  options.replicas = 4;
  options.horizon_seconds = 30.0;
  options.crash_rate = 2.0;
  options.partition_rate = 1.0;
  options.slow_replica_fraction = 0.5;
  options.seed = 7;
  std::vector<ReplicaFaultPlan> a = GenerateFleetChaos(options);
  std::vector<ReplicaFaultPlan> b = GenerateFleetChaos(options);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].crashes.size(), b[r].crashes.size());
    for (size_t i = 0; i < a[r].crashes.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[r].crashes[i].start_seconds,
                       b[r].crashes[i].start_seconds);
      EXPECT_DOUBLE_EQ(a[r].crashes[i].end_seconds,
                       b[r].crashes[i].end_seconds);
    }
    ASSERT_EQ(a[r].partitions.size(), b[r].partitions.size());
    EXPECT_DOUBLE_EQ(a[r].slow_factor, b[r].slow_factor);
  }
  // Replicas draw from independent streams: schedules differ.
  options.seed = 8;
  std::vector<ReplicaFaultPlan> c = GenerateFleetChaos(options);
  bool any_difference = false;
  for (size_t r = 0; r < a.size() && !any_difference; ++r) {
    if (a[r].crashes.size() != c[r].crashes.size()) {
      any_difference = true;
      break;
    }
    for (size_t i = 0; i < a[r].crashes.size(); ++i) {
      if (a[r].crashes[i].start_seconds != c[r].crashes[i].start_seconds) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FleetChaosTest, WindowsStartInsideHorizonAndNoRecoverIsForever) {
  FleetChaosOptions options;
  options.replicas = 6;
  options.horizon_seconds = 20.0;
  options.crash_rate = 3.0;
  options.recover = false;
  options.seed = 11;
  std::vector<ReplicaFaultPlan> plans = GenerateFleetChaos(options);
  size_t total_crashes = 0;
  for (const ReplicaFaultPlan& plan : plans) {
    for (const FaultWindow& w : plan.crashes) {
      ++total_crashes;
      EXPECT_GE(w.start_seconds, 0.0);
      EXPECT_LT(w.start_seconds, options.horizon_seconds);
      EXPECT_DOUBLE_EQ(w.end_seconds, kInf);
    }
  }
  EXPECT_GT(total_crashes, 0u);
}

// ---------------------------------------------------------------------
// HealthMonitor
// ---------------------------------------------------------------------

HealthPolicy TightPolicy() {
  HealthPolicy policy;
  policy.probe_interval_seconds = 1.0;
  policy.eject_after_failures = 2;
  policy.readmit_after_successes = 2;
  return policy;
}

TEST(HealthMonitorTest, EjectsAfterConsecutiveFailuresThenReadmits) {
  HealthMonitor monitor(TightPolicy(), 2);
  // Replica 1 is down in [0.5, 4.5): probes at 1..4 fail, 5.. succeed.
  auto up = [](int replica, double at) {
    if (replica == 0) return true;
    return !(at >= 0.5 && at < 4.5);
  };
  monitor.AdvanceTo(1.0, up);  // one failure: still healthy
  EXPECT_TRUE(monitor.Routable(1));
  monitor.AdvanceTo(2.0, up);  // second consecutive failure: ejected
  EXPECT_FALSE(monitor.Routable(1));
  EXPECT_EQ(monitor.state(1), ReplicaHealth::kEjected);
  EXPECT_TRUE(monitor.Routable(0));

  monitor.AdvanceTo(5.0, up);  // probes 3,4 fail; 5 succeeds: probation
  EXPECT_EQ(monitor.state(1), ReplicaHealth::kProbation);
  EXPECT_FALSE(monitor.Routable(1));
  monitor.AdvanceTo(6.0, up);  // second success: readmitted
  EXPECT_EQ(monitor.state(1), ReplicaHealth::kHealthy);
  EXPECT_TRUE(monitor.Routable(1));

  const HealthStats& stats = monitor.stats();
  EXPECT_EQ(stats.probes, 12u);  // 6 ticks x 2 replicas
  EXPECT_EQ(stats.failed_probes, 4u);
  EXPECT_EQ(stats.ejections, 1u);
  EXPECT_EQ(stats.readmissions, 1u);
}

TEST(HealthMonitorTest, ProbationRelapseGoesStraightBackToEjected) {
  HealthMonitor monitor(TightPolicy(), 1);
  // Down in [0.5, 2.5), up for one probe at 3, down again at [3.5, inf).
  auto up = [](int, double at) {
    if (at >= 0.5 && at < 2.5) return false;
    if (at >= 3.5) return false;
    return true;
  };
  monitor.AdvanceTo(3.0, up);  // fail, fail (eject), success (probation)
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kProbation);
  monitor.AdvanceTo(4.0, up);  // one relapse suffices
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kEjected);
  // Readmission still requires the full streak afterwards.
  EXPECT_EQ(monitor.stats().readmissions, 0u);
}

TEST(HealthMonitorTest, MisrouteFeedbackEjectsBetweenProbes) {
  HealthMonitor monitor(TightPolicy(), 2);
  EXPECT_TRUE(monitor.Routable(0));
  monitor.RecordMisroute(0);
  EXPECT_TRUE(monitor.Routable(0));  // one strike
  monitor.RecordMisroute(0);
  EXPECT_FALSE(monitor.Routable(0));  // two strikes: ejected, no probe ran
  EXPECT_EQ(monitor.stats().misroutes, 2u);
  EXPECT_EQ(monitor.stats().ejections, 1u);
  EXPECT_EQ(monitor.stats().probes, 0u);
}

TEST(HealthMonitorTest, PassiveFeedbackCanBeDisabled) {
  HealthPolicy policy = TightPolicy();
  policy.passive_misroute_feedback = false;
  HealthMonitor monitor(policy, 1);
  monitor.RecordMisroute(0);
  monitor.RecordMisroute(0);
  monitor.RecordMisroute(0);
  EXPECT_TRUE(monitor.Routable(0));
  EXPECT_EQ(monitor.stats().misroutes, 3u);
  EXPECT_EQ(monitor.stats().ejections, 0u);
}

TEST(HealthMonitorTest, NextProbeAfterIsStrictlyLater) {
  HealthMonitor monitor(TightPolicy(), 1);
  EXPECT_DOUBLE_EQ(monitor.NextProbeAfter(0.0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.NextProbeAfter(0.999), 1.0);
  EXPECT_DOUBLE_EQ(monitor.NextProbeAfter(1.0), 2.0);
  auto up = [](int, double) { return true; };
  monitor.AdvanceTo(2.5, up);  // ticks 1 and 2 replayed
  EXPECT_DOUBLE_EQ(monitor.NextProbeAfter(2.5), 3.0);
  EXPECT_DOUBLE_EQ(monitor.NextProbeAfter(7.2), 8.0);
}

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

TEST(RouterTest, PolicyNamesRoundTrip) {
  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
        RouterPolicy::kPowerOfTwo, RouterPolicy::kAffinity}) {
    auto parsed = RouterPolicyFromName(RouterPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_TRUE(RouterPolicyFromName("rr").ok());
  EXPECT_TRUE(RouterPolicyFromName("least").ok());
  EXPECT_TRUE(RouterPolicyFromName("p2c").ok());
  EXPECT_FALSE(RouterPolicyFromName("bogus").ok());
}

TEST(RouterTest, RoundRobinRotatesAndSkipsMissingReplicas) {
  Router router(RouterPolicy::kRoundRobin, 3, /*seed=*/1);
  std::vector<size_t> loads(3, 0);
  std::vector<int> all = {0, 1, 2};
  EXPECT_EQ(router.Pick(all, loads, 0), 0);
  EXPECT_EQ(router.Pick(all, loads, 0), 1);
  EXPECT_EQ(router.Pick(all, loads, 0), 2);
  EXPECT_EQ(router.Pick(all, loads, 0), 0);
  // Replica 2 ejected: the cursor passes over it without stalling.
  std::vector<int> survivors = {0, 1};
  EXPECT_EQ(router.Pick(survivors, loads, 0), 1);
  EXPECT_EQ(router.Pick(survivors, loads, 0), 0);
  EXPECT_EQ(router.Pick(survivors, loads, 0), 1);
}

TEST(RouterTest, LeastLoadedPicksMinLoadLowestIdTieBreak) {
  Router router(RouterPolicy::kLeastLoaded, 3, /*seed=*/1);
  std::vector<int> all = {0, 1, 2};
  EXPECT_EQ(router.Pick(all, {2, 0, 1}, 0), 1);
  EXPECT_EQ(router.Pick(all, {1, 1, 0}, 0), 2);
  EXPECT_EQ(router.Pick(all, {1, 1, 1}, 0), 0);  // tie: lowest id
  EXPECT_EQ(router.Pick({1, 2}, {0, 3, 2}, 0), 2);
}

TEST(RouterTest, PowerOfTwoIsSeedDeterministicAndPrefersLessLoaded) {
  Router a(RouterPolicy::kPowerOfTwo, 4, /*seed=*/9);
  Router b(RouterPolicy::kPowerOfTwo, 4, /*seed=*/9);
  std::vector<int> all = {0, 1, 2, 3};
  std::vector<size_t> loads = {3, 1, 2, 0};
  for (int i = 0; i < 64; ++i) {
    int pa = a.Pick(all, loads, 0);
    int pb = b.Pick(all, loads, 0);
    EXPECT_EQ(pa, pb) << "draw " << i;
    loads[static_cast<size_t>(pa)] += 1;
  }
  // d=2 balance: after 64 picks no replica hoards the fleet.
  size_t max_load = *std::max_element(loads.begin(), loads.end());
  size_t min_load = *std::min_element(loads.begin(), loads.end());
  EXPECT_LE(max_load - min_load, 24u);
}

TEST(RouterTest, AffinityPinsKeysAndSurvivesEjectionsMinimally) {
  Router router(RouterPolicy::kAffinity, 4, /*seed=*/3);
  std::vector<int> all = {0, 1, 2, 3};
  std::vector<size_t> loads(4, 0);
  // A key always lands on the same replica, independent of load.
  int home7 = router.Pick(all, loads, 7);
  EXPECT_EQ(router.Pick(all, {9, 9, 9, 9}, 7), home7);
  // Keys spread: over many keys at least two replicas get traffic.
  std::vector<int> homes;
  for (uint64_t key = 0; key < 32; ++key) {
    homes.push_back(router.Pick(all, loads, key));
  }
  EXPECT_GT(std::set<int>(homes.begin(), homes.end()).size(), 1u);
  // Ejecting an unrelated replica never moves a key (rendezvous
  // minimal-disruption property); ejecting the home spills it.
  for (uint64_t key = 0; key < 32; ++key) {
    int home = homes[static_cast<size_t>(key)];
    for (int gone : all) {
      std::vector<int> rest;
      for (int id : all) {
        if (id != gone) rest.push_back(id);
      }
      int rerouted = router.Pick(rest, loads, key);
      if (gone != home) {
        EXPECT_EQ(rerouted, home) << "key " << key << " lost its home "
                                  << home << " when " << gone << " left";
      } else {
        EXPECT_NE(rerouted, home);
      }
    }
  }
}

// ---------------------------------------------------------------------
// MakeUniformReplicas
// ---------------------------------------------------------------------

TEST(MakeUniformReplicasTest, BuildsTheRequestedFleet) {
  UniformReplicaOptions options;
  options.replicas = 3;
  options.slots = 2;
  options.prefix_cache_capacity = 16;
  options.batch_slots = 4;
  std::vector<Replica> fleet = MakeUniformReplicas(options);
  ASSERT_EQ(fleet.size(), 3u);
  for (size_t r = 0; r < fleet.size(); ++r) {
    EXPECT_EQ(fleet[r].id, static_cast<int>(r));
    EXPECT_EQ(fleet[r].slots, 2u);
    ASSERT_NE(fleet[r].prefix_cache, nullptr);
    EXPECT_EQ(fleet[r].prefix_cache->capacity(), 16u);
    EXPECT_NE(fleet[r].scheduler, nullptr);
    // Node-local state: distinct instances per replica.
    for (size_t other = 0; other < r; ++other) {
      EXPECT_NE(fleet[r].prefix_cache, fleet[other].prefix_cache);
      EXPECT_NE(fleet[r].scheduler, fleet[other].scheduler);
    }
  }
}

TEST(MakeUniformReplicasTest, ZeroCapacitiesDisableNodeState) {
  UniformReplicaOptions options;
  options.replicas = 2;
  options.prefix_cache_capacity = 0;
  options.batch_slots = 0;
  std::vector<Replica> fleet = MakeUniformReplicas(options);
  ASSERT_EQ(fleet.size(), 2u);
  for (const Replica& replica : fleet) {
    EXPECT_EQ(replica.prefix_cache, nullptr);
    EXPECT_EQ(replica.scheduler, nullptr);
  }
}

}  // namespace
}  // namespace cluster
}  // namespace multicast
