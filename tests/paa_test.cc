#include "sax/paa.h"

#include <gtest/gtest.h>

namespace multicast {
namespace sax {
namespace {

TEST(PaaTest, AveragesBlocks) {
  auto r = Paa({1.0, 3.0, 5.0, 7.0}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0, 6.0}));
}

TEST(PaaTest, PartialFinalBlock) {
  auto r = Paa({1.0, 3.0, 5.0}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0, 5.0}));
}

TEST(PaaTest, SegmentLengthOneIsIdentity) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  auto r = Paa(v, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), v);
}

TEST(PaaTest, SegmentLongerThanSeries) {
  auto r = Paa({1.0, 2.0, 3.0}, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0}));
}

TEST(PaaTest, RejectsBadInput) {
  EXPECT_FALSE(Paa({}, 2).ok());
  EXPECT_FALSE(Paa({1.0}, 0).ok());
  EXPECT_FALSE(Paa({1.0}, -1).ok());
}

TEST(PaaTest, PreservesGlobalMean) {
  std::vector<double> v;
  for (int i = 0; i < 12; ++i) v.push_back(static_cast<double>(i));
  auto segs = Paa(v, 3);
  ASSERT_TRUE(segs.ok());
  double mean_orig = 0.0, mean_seg = 0.0;
  for (double x : v) mean_orig += x;
  for (double x : segs.value()) mean_seg += x;
  EXPECT_NEAR(mean_orig / v.size(), mean_seg / segs.value().size(), 1e-12);
}

TEST(PaaInverseTest, ExpandsSteps) {
  auto r = PaaInverse({2.0, 6.0}, 2, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0, 2.0, 6.0, 6.0}));
}

TEST(PaaInverseTest, TruncatesToOriginalLength) {
  auto r = PaaInverse({2.0, 5.0}, 2, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{2.0, 2.0, 5.0}));
}

TEST(PaaInverseTest, RejectsInsufficientSegments) {
  EXPECT_FALSE(PaaInverse({1.0}, 2, 4).ok());
  EXPECT_FALSE(PaaInverse({1.0}, 0, 1).ok());
}

TEST(PaaRoundTrip, ConstantSeriesIsExact) {
  std::vector<double> v(10, 3.5);
  auto segs = Paa(v, 3);
  ASSERT_TRUE(segs.ok());
  auto back = PaaInverse(segs.value(), 3, v.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), v);
}

TEST(PaaRoundTrip, ErrorBoundedByBlockVariation) {
  // Reconstruction error per point is at most the in-block value range.
  std::vector<double> v;
  for (int i = 0; i < 30; ++i) v.push_back(i * 0.5);
  auto segs = Paa(v, 3);
  ASSERT_TRUE(segs.ok());
  auto back = PaaInverse(segs.value(), 3, v.size());
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(back.value()[i] - v[i]), 1.0);  // range per block
  }
}

}  // namespace
}  // namespace sax
}  // namespace multicast
