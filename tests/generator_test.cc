#include "lm/generator.h"

#include <gtest/gtest.h>

#include "token/codec.h"

namespace multicast {
namespace lm {
namespace {

std::vector<token::TokenId> EncodeDigits(const std::string& text) {
  return token::Encode(text, token::Vocabulary::Digits()).ValueOrDie();
}

std::string DecodeDigits(const std::vector<token::TokenId>& ids) {
  return token::Decode(ids, token::Vocabulary::Digits()).ValueOrDie();
}

TEST(GeneratorTest, ProducesRequestedTokenCount) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  Rng rng(1);
  auto gen = llm.Complete(EncodeDigits("12,12,12,"), 9, AllowAll(11), &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen.value().tokens.size(), 9u);
}

TEST(GeneratorTest, LedgerCountsPromptAndGenerated) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  Rng rng(1);
  std::string prompt = "12,34,56,";
  auto gen = llm.Complete(EncodeDigits(prompt), 6, AllowAll(11), &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen.value().ledger.prompt_tokens, prompt.size());
  EXPECT_EQ(gen.value().ledger.generated_tokens, 6u);
  EXPECT_EQ(gen.value().ledger.total(), prompt.size() + 6);
}

TEST(GeneratorTest, ContinuesStrongPeriodicPattern) {
  // "17,23," repeated: the pattern model should continue it near-
  // verbatim under the digit/comma grammar.
  std::string prompt;
  for (int i = 0; i < 40; ++i) prompt += "17,23,";
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  GrammarMask mask = [](size_t step) {
    std::vector<bool> allowed(11, step % 3 != 2);
    allowed[10] = step % 3 == 2;  // comma every third token
    return allowed;
  };
  Rng rng(5);
  auto gen = llm.Complete(EncodeDigits(prompt), 12, mask, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(DecodeDigits(gen.value().tokens), "17,23,17,23,");
}

TEST(GeneratorTest, GrammarMaskEnforcedEveryStep) {
  std::string prompt = "917,23,";  // noisy prompt
  SimulatedLlm llm(ModelProfile::Phi2(), 11);
  GrammarMask mask = [](size_t step) {
    std::vector<bool> allowed(11, step % 3 != 2);
    allowed[10] = step % 3 == 2;
    return allowed;
  };
  Rng rng(9);
  auto gen = llm.Complete(EncodeDigits(prompt), 30, mask, &rng);
  ASSERT_TRUE(gen.ok());
  std::string text = DecodeDigits(gen.value().tokens);
  for (size_t i = 0; i < text.size(); ++i) {
    if (i % 3 == 2) {
      EXPECT_EQ(text[i], ',') << text;
    } else {
      EXPECT_TRUE(text[i] >= '0' && text[i] <= '9') << text;
    }
  }
}

TEST(GeneratorTest, EmptyPromptRejected) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  Rng rng(1);
  EXPECT_FALSE(llm.Complete({}, 3, AllowAll(11), &rng).ok());
}

TEST(GeneratorTest, OutOfVocabularyPromptRejected) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  Rng rng(1);
  EXPECT_FALSE(llm.Complete({0, 99}, 3, AllowAll(11), &rng).ok());
  EXPECT_FALSE(llm.Complete({-1}, 3, AllowAll(11), &rng).ok());
}

TEST(GeneratorTest, BadMaskSizeRejected) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  Rng rng(1);
  GrammarMask bad = [](size_t) { return std::vector<bool>(5, true); };
  EXPECT_FALSE(llm.Complete(EncodeDigits("1,"), 3, bad, &rng).ok());
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  std::string prompt = "10,20,30,40,";
  Rng a(77), b(77);
  auto ga = llm.Complete(EncodeDigits(prompt), 20, AllowAll(11), &a);
  auto gb = llm.Complete(EncodeDigits(prompt), 20, AllowAll(11), &b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga.value().tokens, gb.value().tokens);
}

TEST(GeneratorTest, StatelessAcrossCalls) {
  // Two identical calls with identical rngs must match: no state leaks
  // from one Complete() to the next (each is a fresh zero-shot session).
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  std::string prompt = "55,66,";
  Rng a(3);
  auto first = llm.Complete(EncodeDigits(prompt), 10, AllowAll(11), &a);
  Rng b(3);
  auto second = llm.Complete(EncodeDigits(prompt), 10, AllowAll(11), &b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().tokens, second.value().tokens);
}

TEST(GeneratorTest, ZeroTokensIsValid) {
  SimulatedLlm llm(ModelProfile::Llama2_7B(), 11);
  Rng rng(1);
  auto gen = llm.Complete(EncodeDigits("1,"), 0, AllowAll(11), &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_TRUE(gen.value().tokens.empty());
  EXPECT_EQ(gen.value().ledger.generated_tokens, 0u);
}

TEST(TokenLedgerTest, Accumulates) {
  TokenLedger a{10, 5};
  TokenLedger b{3, 2};
  a += b;
  EXPECT_EQ(a.prompt_tokens, 13u);
  EXPECT_EQ(a.generated_tokens, 7u);
  EXPECT_EQ(a.total(), 20u);
}

TEST(ProfileTest, ProfilesDiffer) {
  ModelProfile llama = ModelProfile::Llama2_7B();
  ModelProfile phi = ModelProfile::Phi2();
  EXPECT_GT(llama.ngram.max_order, phi.ngram.max_order);
  EXPECT_LT(llama.ngram.uniform_mix, phi.ngram.uniform_mix);
  EXPECT_LT(llama.sampler.temperature, phi.sampler.temperature);
  EXPECT_NE(llama.name, phi.name);
}

}  // namespace
}  // namespace lm
}  // namespace multicast
