#include "cli/cli.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/datasets.h"
#include "util/csv.h"

namespace multicast {
namespace cli {
namespace {

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    // Suffix with the pid: ctest runs each test as its own process, and
    // concurrent tests must not share (and TearDown-delete) one feed file.
    path_ = testing::TempDir() + "/mc_cli_feed_" + std::to_string(getpid()) +
            ".csv";
    auto frame = data::MakeGasRate().ValueOrDie();
    ASSERT_TRUE(WriteCsvFile(frame.ToCsv(), path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Runs a CLI invocation and returns (exit code result, captured out).
  Result<int> Run(const std::vector<std::string>& args, std::string* out) {
    std::ostringstream stream;
    Result<int> code = RunCommand(args, stream);
    *out = stream.str();
    return code;
  }

  std::string path_;
};

TEST_F(CliTest, HelpPrintsUsage) {
  std::string out;
  auto code = Run({"help"}, &out);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 0);
  EXPECT_NE(out.find("forecast"), std::string::npos);
  EXPECT_NE(out.find("generate"), std::string::npos);
}

TEST_F(CliTest, EmptyArgsShowUsage) {
  std::string out;
  auto code = Run({}, &out);
  ASSERT_TRUE(code.ok());
  EXPECT_NE(out.find("commands:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandErrors) {
  std::string out;
  EXPECT_FALSE(Run({"frobnicate"}, &out).ok());
}

TEST_F(CliTest, ForecastProducesCsvRows) {
  std::string out;
  auto code = Run({"forecast", "--input", path_, "--horizon", "6",
                   "--method", "VI", "--samples", "2"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("MultiCast (VI) forecast"), std::string::npos);
  EXPECT_NE(out.find("GasRate,CO2"), std::string::npos);
  // Header plus 6 data rows.
  auto csv_start = out.find("GasRate,CO2");
  std::string csv = out.substr(csv_start);
  EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST_F(CliTest, ForecastWithSaxAndOutputFile) {
  std::string out_path = testing::TempDir() + "/mc_cli_forecast_" +
                         std::to_string(getpid()) + ".csv";
  std::string out;
  auto code = Run({"forecast", "--input", path_, "--horizon", "12",
                   "--method", "DI", "--samples", "2", "--sax", "digit"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("tokens"), std::string::npos);

  code = Run({"forecast", "--input", path_, "--horizon", "4", "--method",
              "NAIVE", "--output", out_path},
             &out);
  ASSERT_TRUE(code.ok());
  auto written = ReadCsvFile(out_path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value().num_rows(), 4u);
  std::remove(out_path.c_str());
}

TEST_F(CliTest, ForecastWithQuantiles) {
  std::string out;
  auto code = Run({"forecast", "--input", path_, "--horizon", "5",
                   "--method", "VI", "--samples", "4", "--quantiles",
                   "0.1,0.9"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("p10 band:"), std::string::npos);
  EXPECT_NE(out.find("p90 band:"), std::string::npos);
}

TEST_F(CliTest, QuantilesRejectedForClassicalMethods) {
  std::string out;
  EXPECT_FALSE(Run({"forecast", "--input", path_, "--method", "ARIMA",
                    "--quantiles", "0.5"},
                   &out)
                   .ok());
  EXPECT_FALSE(Run({"forecast", "--input", path_, "--method", "VI",
                    "--quantiles", "abc"},
                   &out)
                   .ok());
}

TEST_F(CliTest, ForecastClassicalMethods) {
  for (const char* method : {"ARIMA", "SARIMA", "HW", "DRIFT"}) {
    std::string out;
    auto code = Run({"forecast", "--input", path_, "--horizon", "5",
                     "--method", method},
                    &out);
    ASSERT_TRUE(code.ok()) << method << ": " << code.status().ToString();
    EXPECT_NE(out.find("forecast, 5 steps"), std::string::npos) << method;
  }
}

TEST_F(CliTest, ForecastRejectsBadFlags) {
  std::string out;
  EXPECT_FALSE(Run({"forecast", "--horizon", "5"}, &out).ok());  // no input
  EXPECT_FALSE(Run({"forecast", "--input", path_, "--method", "XX"}, &out)
                   .ok());
  EXPECT_FALSE(Run({"forecast", "--input", path_, "--horizon", "0"}, &out)
                   .ok());
  EXPECT_FALSE(
      Run({"forecast", "--input", path_, "--bogus", "1"}, &out).ok());
  EXPECT_FALSE(Run({"forecast", "--input", path_, "--sax", "nope"}, &out)
                   .ok());
  EXPECT_FALSE(Run({"forecast", "--input", path_, "--profile", "gpt9"},
                   &out)
                   .ok());
}

TEST_F(CliTest, GenerateWritesDataset) {
  std::string out_path = testing::TempDir() + "/mc_cli_gen_" +
                         std::to_string(getpid()) + ".csv";
  std::string out;
  auto code = Run({"generate", "--dataset", "Electricity", "--output",
                   out_path},
                  &out);
  ASSERT_TRUE(code.ok());
  EXPECT_NE(out.find("3 x 242"), std::string::npos);
  auto written = ReadCsvFile(out_path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value().num_cols(), 3u);
  std::remove(out_path.c_str());
}

TEST_F(CliTest, GenerateToStdout) {
  std::string out;
  auto code = Run({"generate", "--dataset", "GasRate"}, &out);
  ASSERT_TRUE(code.ok());
  EXPECT_NE(out.find("GasRate,CO2"), std::string::npos);
}

TEST_F(CliTest, GenerateUnknownDatasetErrors) {
  std::string out;
  EXPECT_FALSE(Run({"generate", "--dataset", "Traffic"}, &out).ok());
}

TEST_F(CliTest, AnomalyReportsThresholdAndLists) {
  std::string out;
  auto code = Run({"anomaly", "--input", path_, "--quantile", "0.95"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("threshold"), std::string::npos);
  EXPECT_NE(out.find("anomalies:"), std::string::npos);
  EXPECT_NE(out.find("change points:"), std::string::npos);
}

TEST_F(CliTest, ImputeFillsGaps) {
  // Write a feed with a NaN gap (CSV loader rejects non-numeric, so
  // build the frame and punch the gap via the CSV text "nan" is not
  // supported — instead run impute on a gapless file and verify the
  // no-op path, then a gapped frame through the library-level API is
  // covered in imputation_test).
  std::string out;
  auto code = Run({"impute", "--input", path_, "--samples", "2"}, &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("gaps: 0"), std::string::npos);
}

TEST_F(CliTest, NonFiniteCellPointsAtImpute) {
  std::string gappy = testing::TempDir() + "/mc_cli_gappy_" +
                      std::to_string(getpid()) + ".csv";
  std::ofstream(gappy) << "a,b\n1,2\n3,nan\n";
  std::string out;
  auto code = Run({"forecast", "--input", gappy, "--horizon", "4"}, &out);
  ASSERT_FALSE(code.ok());
  EXPECT_EQ(code.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(code.status().message().find("multicast impute"),
            std::string::npos);
  std::remove(gappy.c_str());
}

TEST_F(CliTest, ServeSimRendersSummaryTable) {
  std::string out;
  auto code = Run({"serve-sim", "--input", path_, "--horizon", "6",
                   "--method", "VI", "--samples", "2", "--requests", "10",
                   "--arrival-rate", "6", "--deadline", "1.5",
                   "--queue-capacity", "3", "--chaos", "0.2",
                   "--hedge-delay", "0.4"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("serve-sim: 10 requests"), std::string::npos);
  for (const char* column : {"Served", "Degraded", "Shed(full)",
                             "Shed(expired)", "Hedged", "p99(s)",
                             "Retries", "Preempted",
                             "Rej full/ddl/unav/cxl"}) {
    EXPECT_NE(out.find(column), std::string::npos) << column;
  }
  EXPECT_NE(out.find("VI"), std::string::npos);
  // Same flags, same virtual-time story: the run is deterministic.
  std::string again;
  ASSERT_TRUE(Run({"serve-sim", "--input", path_, "--horizon", "6",
                   "--method", "VI", "--samples", "2", "--requests", "10",
                   "--arrival-rate", "6", "--deadline", "1.5",
                   "--queue-capacity", "3", "--chaos", "0.2",
                   "--hedge-delay", "0.4"},
                  &again)
                  .ok());
  EXPECT_EQ(out, again);
}

TEST_F(CliTest, ServeSimDrainCancelStopsAdmission) {
  std::string out;
  auto code = Run({"serve-sim", "--input", path_, "--horizon", "4",
                   "--method", "LLMTIME", "--samples", "2", "--requests",
                   "12", "--arrival-rate", "4", "--drain", "1.0",
                   "--drain-mode", "cancel"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("drain at 1s (cancel)"), std::string::npos);
  EXPECT_NE(out.find("Drained"), std::string::npos);
}

TEST_F(CliTest, ClusterSimRendersFleetTableAndIsDeterministic) {
  std::vector<std::string> args = {
      "cluster-sim", "--input", path_, "--horizon", "4", "--method", "VI",
      "--samples", "2", "--requests", "12", "--arrival-rate", "4",
      "--deadline", "20", "--chaos", "0.15", "--replicas", "3",
      "--replica-chaos", "1.5", "--replica-chaos-seed", "99"};
  std::string out;
  auto code = Run(args, &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_EQ(code.value(), 0);
  EXPECT_NE(out.find("cluster-sim: 12 requests"), std::string::npos);
  EXPECT_NE(out.find("3 replicas"), std::string::npos);
  for (const char* marker :
       {"Served", "Failovers", "Redisp.draws", "Wasted(s)",
        "Rej full/ddl/unav/cxl", "health:", "replica 0:", "replica 1:",
        "replica 2:", "occupancy"}) {
    EXPECT_NE(out.find(marker), std::string::npos) << marker;
  }
  // One seeded chaos schedule, one exact story: byte-identical reruns.
  std::string again;
  ASSERT_TRUE(Run(args, &again).ok());
  EXPECT_EQ(out, again);
}

TEST_F(CliTest, ClusterSimRouterPoliciesAllRun) {
  for (const char* router : {"rr", "least", "p2c", "affinity"}) {
    std::string out;
    auto code = Run({"cluster-sim", "--input", path_, "--horizon", "4",
                     "--method", "VI", "--samples", "2", "--requests", "6",
                     "--replicas", "2", "--router", router},
                    &out);
    ASSERT_TRUE(code.ok()) << router << ": " << code.status().ToString();
    EXPECT_NE(out.find("router"), std::string::npos) << router;
  }
}

TEST_F(CliTest, ClusterSimRejectsBadFleetFlags) {
  std::string out;
  EXPECT_FALSE(Run({"cluster-sim", "--input", path_, "--replicas", "0"},
                   &out)
                   .ok());
  EXPECT_FALSE(Run({"cluster-sim", "--input", path_, "--router", "bogus"},
                   &out)
                   .ok());
  EXPECT_FALSE(Run({"cluster-sim", "--input", path_, "--replica-chaos",
                    "-1"},
                   &out)
                   .ok());
}

TEST_F(CliTest, ServeSimRejectsBadPolicyFlags) {
  std::string out;
  EXPECT_FALSE(Run({"serve-sim", "--input", path_, "--queue-order",
                    "random"},
                   &out)
                   .ok());
  EXPECT_FALSE(Run({"serve-sim", "--input", path_, "--queue-capacity",
                    "0"},
                   &out)
                   .ok());
  EXPECT_FALSE(Run({"serve-sim", "--input", path_, "--drain-mode",
                    "explode"},
                   &out)
                   .ok());
}

TEST_F(CliTest, EvaluateRendersTable) {
  std::string out;
  auto code = Run({"evaluate", "--input", path_, "--horizon", "8",
                   "--folds", "2", "--samples", "2"},
                  &out);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_NE(out.find("LLMTIME"), std::string::npos);
  EXPECT_NE(out.find("ARIMA"), std::string::npos);
  EXPECT_NE(out.find("+/-"), std::string::npos);
}

}  // namespace
}  // namespace cli
}  // namespace multicast
