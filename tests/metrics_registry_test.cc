// Unified metrics registry: primitives, snapshot arithmetic, the single
// export path, the one-quantile-implementation regression, and the
// struct views (Publish / FromSnapshot round-trips plus the merge
// operators' properties the registry semantics mirror).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "batch/batch_scheduler.h"
#include "lm/prefix_cache.h"
#include "lm/resilient_backend.h"
#include "serve/executor.h"
#include "serve/overload.h"
#include "serve/queue.h"
#include "ts/stats.h"
#include "util/quantile.h"

namespace multicast {
namespace util {
namespace {

// ---------------------------------------------------------------------
// Registry primitives.
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, FirstTouchOrderIsSnapshotOrder) {
  MetricsRegistry registry;
  registry.GetCounter("b");
  registry.GetCounter("a");
  registry.GetGauge("g");
  registry.GetHistogram("h");
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.points().size(), 4u);
  EXPECT_EQ(snapshot.points()[0].name, "b");
  EXPECT_EQ(snapshot.points()[1].name, "a");
  EXPECT_EQ(snapshot.points()[2].name, "g");
  EXPECT_EQ(snapshot.points()[3].name, "h");
  // Handles are stable: re-requesting a name returns the same object.
  EXPECT_EQ(registry.GetCounter("b"), registry.GetCounter("b"));
  EXPECT_EQ(registry.size(), 4u);
}

TEST(MetricsRegistryTest, CounterAddsAndGaugeKeepsHighWaterMark) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  c->Increment();
  c->Add(2.5);
  EXPECT_DOUBLE_EQ(c->value(), 3.5);
  Gauge* g = registry.GetGauge("g");
  g->Set(4.0);
  g->SetMax(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  g->SetMax(7.0);  // higher: raises the mark
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
}

TEST(MetricsRegistryTest, FixedBoundHistogramBucketsByBoundary) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", {1.0, 2.0});
  h->Observe(0.5);  // <= 1.0
  h->Observe(1.0);  // <= 1.0 (boundary is inclusive)
  h->Observe(1.5);  // <= 2.0
  h->Observe(99.0);  // overflow
  EXPECT_EQ(h->buckets(), (std::vector<uint64_t>{2, 1, 1}));
  EXPECT_DOUBLE_EQ(h->sum(), 102.0);
  EXPECT_EQ(h->count(), 4u);
}

TEST(MetricsRegistryTest, IndexedHistogramGrowsAndZeroCountExtends) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("occupancy");
  h->ObserveIndex(2, 5);
  EXPECT_EQ(h->buckets(), (std::vector<uint64_t>{0, 0, 5}));
  // A zero-count observation extends the vector without counting —
  // the occupancy-length-preserving behaviour the struct views need.
  h->ObserveIndex(4, 0);
  EXPECT_EQ(h->buckets(), (std::vector<uint64_t>{0, 0, 5, 0, 0}));
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 10.0);  // 2 * 5
}

// ---------------------------------------------------------------------
// Snapshot arithmetic: Merge and Delta.
// ---------------------------------------------------------------------

MetricsSnapshot MakeSnapshot(double counter, double gauge,
                             std::vector<uint64_t> buckets) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(counter);
  registry.GetGauge("g")->Set(gauge);
  Histogram* h = registry.GetHistogram("h");
  for (size_t i = 0; i < buckets.size(); ++i) h->ObserveIndex(i, buckets[i]);
  return registry.Snapshot();
}

TEST(MetricsSnapshotTest, FindAndValue) {
  MetricsSnapshot snapshot = MakeSnapshot(3.0, 9.0, {1});
  EXPECT_DOUBLE_EQ(snapshot.Value("c"), 3.0);
  EXPECT_DOUBLE_EQ(snapshot.Value("absent"), 0.0);
  ASSERT_NE(snapshot.Find("h"), nullptr);
  EXPECT_EQ(snapshot.Find("h")->kind, MetricKind::kHistogram);
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
}

TEST(MetricsSnapshotTest, HistogramQuantileInterpolatesFixedBounds) {
  MetricsRegistry registry;
  // Uniform 1..100 against decade bounds: ten observations per bucket,
  // so every quantile has a closed-form expected value.
  Histogram* h = registry.GetHistogram(
      "lat", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h->Observe(static_cast<double>(v));
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.5), 50.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.95), 95.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.25), 25.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 1.0), 100.0);
  // q = 0 lands at the floor of the first non-empty bucket.
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.0), 0.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 2.0), 100.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", -1.0), 0.0);
}

TEST(MetricsSnapshotTest, HistogramQuantileSkewedAndPartialBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10.0, 20.0, 40.0});
  for (int i = 0; i < 30; ++i) h->Observe(5.0);   // bucket [0, 10]
  for (int i = 0; i < 10; ++i) h->Observe(30.0);  // bucket (20, 40]
  MetricsSnapshot snapshot = registry.Snapshot();
  // p50: rank 20 of 30 in the first bucket -> 10 * 20/30.
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.5), 10.0 * 2 / 3);
  // p90: rank 36; 30 live below 10, the 6 remaining interpolate into
  // (20, 40] — the empty middle bucket is skipped entirely.
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.9),
                   20.0 + 20.0 * 6 / 10);
}

TEST(MetricsSnapshotTest, HistogramQuantileOverflowPinsToLastBound) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0});
  for (int i = 0; i < 4; ++i) h->Observe(50.0);  // all overflow
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.5), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("lat", 0.99), 2.0);
}

TEST(MetricsSnapshotTest, HistogramQuantileIndexedReturnsBucketIndex) {
  // Indexed histograms (batch occupancy) have no bounds: the quantile
  // is the bucket index itself.
  MetricsSnapshot snapshot = MakeSnapshot(0.0, 0.0, {0, 5, 0, 5});
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("h", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("h", 0.95), 3.0);
}

TEST(MetricsSnapshotTest, HistogramQuantileDegenerateInputsReturnZero) {
  MetricsSnapshot snapshot = MakeSnapshot(3.0, 9.0, {});
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("absent", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("c", 0.5), 0.0);  // counter
  EXPECT_DOUBLE_EQ(snapshot.HistogramQuantile("h", 0.5), 0.0);  // empty
}

TEST(MetricsSnapshotTest, ToTableShowsHistogramQuantiles) {
  MetricsSnapshot snapshot = MakeSnapshot(1.0, 1.0, {0, 4});
  std::string table = snapshot.ToTable();
  EXPECT_NE(table.find("p50 1"), std::string::npos) << table;
  EXPECT_NE(table.find("p95 1"), std::string::npos) << table;
  // An empty histogram renders without quantile columns.
  MetricsSnapshot empty = MakeSnapshot(1.0, 1.0, {});
  EXPECT_EQ(empty.ToTable().find("p50"), std::string::npos);
}

TEST(MetricsSnapshotTest, MergeAddsMaxesAndCombinesRaggedHistograms) {
  MetricsSnapshot a = MakeSnapshot(2.0, 5.0, {1, 2});
  MetricsSnapshot b = MakeSnapshot(3.0, 4.0, {1, 1, 7});
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Value("c"), 5.0);  // counters add
  EXPECT_DOUBLE_EQ(a.Value("g"), 5.0);  // gauges take the max
  const MetricPoint* h = a.Find("h");
  ASSERT_NE(h, nullptr);
  // Ragged bucket vectors: the shorter side is zero-extended.
  EXPECT_EQ(h->buckets, (std::vector<uint64_t>{2, 3, 7}));
  EXPECT_EQ(h->count, 12u);  // 3 observations + 9 observations
}

TEST(MetricsSnapshotTest, MergeAppendsUnknownPointsInOrder) {
  MetricsSnapshot a = MakeSnapshot(1.0, 1.0, {});
  MetricsRegistry other;
  other.GetCounter("z")->Add(9.0);
  a.Merge(other.Snapshot());
  ASSERT_EQ(a.points().size(), 4u);
  EXPECT_EQ(a.points().back().name, "z");
  EXPECT_DOUBLE_EQ(a.Value("z"), 9.0);
}

TEST(MetricsSnapshotTest, DeltaSaturatesCountersAndKeepsGaugeAfter) {
  MetricsSnapshot before = MakeSnapshot(5.0, 9.0, {4, 4});
  MetricsSnapshot after = MakeSnapshot(7.0, 3.0, {6, 2});
  MetricsSnapshot delta = after.Delta(before);
  EXPECT_DOUBLE_EQ(delta.Value("c"), 2.0);
  // A high-water mark has no meaningful difference: keep the after.
  EXPECT_DOUBLE_EQ(delta.Value("g"), 3.0);
  const MetricPoint* h = delta.Find("h");
  ASSERT_NE(h, nullptr);
  // Bucket 1 went 4 -> 2: saturates at zero instead of underflowing.
  EXPECT_EQ(h->buckets, (std::vector<uint64_t>{2, 0}));
}

TEST(MetricsSnapshotTest, DeltaPassesThroughPointsAbsentFromBefore) {
  MetricsSnapshot before;
  MetricsSnapshot after = MakeSnapshot(7.0, 3.0, {1});
  MetricsSnapshot delta = after.Delta(before);
  EXPECT_DOUBLE_EQ(delta.Value("c"), 7.0);
  EXPECT_DOUBLE_EQ(delta.Value("g"), 3.0);
}

// ---------------------------------------------------------------------
// The single export path: MetricsJson / WriteMetricsJson / ToTable.
// ---------------------------------------------------------------------

TEST(MetricsExportTest, JsonCarriesEveryKind) {
  MetricsSnapshot snapshot = MakeSnapshot(3.0, 9.5, {1, 0, 2});
  std::string json = MetricsJson(snapshot);
  EXPECT_NE(json.find("{\"name\": \"c\", \"kind\": \"counter\", "
                      "\"value\": 3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kind\": \"gauge\", \"value\": 9.5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"buckets\": [1, 0, 2]"), std::string::npos) << json;
}

TEST(MetricsExportTest, WriteMetricsJsonEmitsSections) {
  const std::string path = "metrics_registry_test_artifact.json";
  std::vector<std::pair<std::string, MetricsSnapshot>> sections;
  sections.emplace_back("alpha", MakeSnapshot(1.0, 2.0, {3}));
  sections.emplace_back("beta", MakeSnapshot(4.0, 5.0, {}));
  ASSERT_TRUE(WriteMetricsJson(path, sections).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"sections\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"beta\""), std::string::npos);
  // Section order is caller order; alpha's metrics precede beta's.
  EXPECT_LT(text.find("\"alpha\""), text.find("\"beta\""));
}

TEST(MetricsExportTest, ToTableListsEveryPointInOrder) {
  MetricsSnapshot snapshot = MakeSnapshot(3.0, 9.0, {1});
  std::string table = snapshot.ToTable();
  size_t c = table.find("c");
  size_t g = table.find("g");
  size_t h = table.find("h");
  EXPECT_NE(c, std::string::npos);
  EXPECT_NE(g, std::string::npos);
  EXPECT_NE(h, std::string::npos);
  EXPECT_LT(c, g);
  EXPECT_LT(g, h);
}

// ---------------------------------------------------------------------
// One quantile implementation (regression for the three divergent
// copies: FP-ceil nearest-rank, exact-integer nearest-rank, and the
// interpolated ts:: estimator).
// ---------------------------------------------------------------------

TEST(QuantileTest, NearestRankMatchesExactIntegerFormForAllSmallN) {
  for (size_t n = 1; n <= 20; ++n) {
    std::vector<double> sorted;
    for (size_t i = 1; i <= n; ++i) sorted.push_back(static_cast<double>(i));
    for (int p : {50, 90, 95, 99}) {
      // The overload controller's exact integer nearest-rank:
      // rank = ceil(p/100 * n) computed without floating point.
      size_t rank = (n * static_cast<size_t>(p) + 99) / 100;
      if (rank < 1) rank = 1;
      const double q = static_cast<double>(p) / 100.0;
      EXPECT_DOUBLE_EQ(NearestRankQuantileSorted(sorted, q),
                       sorted[rank - 1])
          << "n=" << n << " p=" << p;
      // Brute force from the definition: the smallest order statistic
      // whose cumulative fraction reaches q.
      size_t brute = n;
      for (size_t k = 1; k <= n; ++k) {
        if (static_cast<double>(k) / static_cast<double>(n) >=
            q - 1e-12) {
          brute = k;
          break;
        }
      }
      EXPECT_DOUBLE_EQ(NearestRankQuantileSorted(sorted, q),
                       sorted[brute - 1])
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(QuantileTest, CeilOvershootRegression) {
  // 0.07 * 100 is mathematically 7, but the product computes to
  // 7.000000000000001 in binary floating point, so the old
  // std::ceil(q * n) implementation returned rank 8 instead of rank 7.
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  EXPECT_GT(std::ceil(0.07 * 100.0), 7.0);  // the bug's mechanism
  EXPECT_DOUBLE_EQ(NearestRankQuantileSorted(sorted, 0.07), 7.0);
  // Exact-integer cross-check at the same point: rank (100*7+99)/100.
  EXPECT_EQ((100u * 7u + 99u) / 100u, 7u);
}

TEST(QuantileTest, InterpolatedMatchesTsQuantile) {
  std::vector<double> values = {5.0, 1.0, 4.0, 2.0, 8.0, 3.0, 9.0};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(InterpolatedQuantileSorted(sorted, q),
                     ts::Quantile(values, q))
        << "q=" << q;
  }
}

TEST(QuantileTest, EmptySamplesReturnZero) {
  EXPECT_DOUBLE_EQ(NearestRankQuantileSorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(NearestRankQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(InterpolatedQuantileSorted({}, 0.5), 0.0);
}

// ---------------------------------------------------------------------
// Struct merge-operator properties (the semantics the registry's Merge
// and Delta mirror).
// ---------------------------------------------------------------------

batch::BatchStats MakeBatchStats(size_t base, std::vector<size_t> occupancy) {
  batch::BatchStats s;
  s.steps = base;
  s.slot_steps = base * 2;
  s.submitted = base + 1;
  s.admitted = base + 2;
  s.retired = base + 3;
  s.backfills = base + 4;
  s.preemptions = base + 5;
  s.peak_batch = base + 6;
  s.occupancy = std::move(occupancy);
  return s;
}

TEST(StatsMergeTest, BatchStatsMergeHandlesRaggedOccupancy) {
  batch::BatchStats a = MakeBatchStats(10, {1, 2});
  batch::BatchStats b = MakeBatchStats(5, {3, 4, 5});
  a += b;
  EXPECT_EQ(a.steps, 15u);
  EXPECT_EQ(a.peak_batch, 16u);  // max, not sum
  EXPECT_EQ(a.occupancy, (std::vector<size_t>{4, 6, 5}));
}

TEST(StatsMergeTest, BatchStatsDeltaSaturates) {
  batch::BatchStats before = MakeBatchStats(10, {4, 4});
  batch::BatchStats after = MakeBatchStats(7, {6, 2, 1});
  batch::BatchStats delta = after - before;
  EXPECT_EQ(delta.steps, 0u);  // 7 - 10 saturates
  EXPECT_EQ(delta.occupancy, (std::vector<size_t>{2, 0, 1}));
}

TEST(StatsMergeTest, BatchStatsEmptyPlusNonemptyIsIdentity) {
  batch::BatchStats empty;
  batch::BatchStats x = MakeBatchStats(3, {1, 0, 2});
  batch::BatchStats merged = empty;
  merged += x;
  EXPECT_EQ(merged.steps, x.steps);
  EXPECT_EQ(merged.peak_batch, x.peak_batch);
  EXPECT_EQ(merged.occupancy, x.occupancy);
  batch::BatchStats other = x;
  other += batch::BatchStats{};
  EXPECT_EQ(other.steps, x.steps);
  EXPECT_EQ(other.occupancy, x.occupancy);
}

TEST(StatsMergeTest, OverloadStatsMergeAddsCountersMaxesMarks) {
  serve::OverloadStats a;
  a.aimd_rejected = 2;
  a.escalations = 1;
  a.peak_level = 2;
  a.final_limit = 8.0;
  serve::OverloadStats b;
  b.aimd_rejected = 3;
  b.recoveries = 4;
  b.peak_level = 1;
  b.final_limit = 16.0;
  a += b;
  EXPECT_EQ(a.aimd_rejected, 5u);
  EXPECT_EQ(a.escalations, 1u);
  EXPECT_EQ(a.recoveries, 4u);
  EXPECT_EQ(a.peak_level, 2);
  EXPECT_DOUBLE_EQ(a.final_limit, 16.0);
}

TEST(StatsMergeTest, OverloadStatsDeltaSaturatesAndKeepsMarks) {
  serve::OverloadStats before;
  before.aimd_rejected = 5;
  before.peak_level = 3;
  before.final_limit = 32.0;
  serve::OverloadStats after;
  after.aimd_rejected = 3;  // less than before: saturates
  after.ladder_rejected = 2;
  after.peak_level = 1;
  after.final_limit = 4.0;
  serve::OverloadStats delta = after - before;
  EXPECT_EQ(delta.aimd_rejected, 0u);
  EXPECT_EQ(delta.ladder_rejected, 2u);
  // High-water marks keep the after value, like gauge deltas.
  EXPECT_EQ(delta.peak_level, 1);
  EXPECT_DOUBLE_EQ(delta.final_limit, 4.0);
}

TEST(StatsMergeTest, OverloadStatsEmptyPlusNonemptyIsIdentity) {
  serve::OverloadStats x;
  x.demoted_reduced = 3;
  x.peak_level = 2;
  x.final_limit = 12.0;
  serve::OverloadStats merged;
  merged += x;
  EXPECT_EQ(merged.demoted_reduced, 3u);
  EXPECT_EQ(merged.peak_level, 2);
  EXPECT_DOUBLE_EQ(merged.final_limit, 12.0);
}

TEST(StatsMergeTest, RejectionBreakdownMergeRecomputesExactMean) {
  serve::RejectionBreakdown a;
  a.queue_full = 2;
  a.retry_after_hint_sum = 3.0;
  a.retry_after_hints = 2;
  a.mean_retry_after_seconds = 1.5;
  serve::RejectionBreakdown b;
  b.queue_full = 1;
  b.retry_after_hint_sum = 4.0;
  b.retry_after_hints = 1;
  b.mean_retry_after_seconds = 4.0;
  a += b;
  EXPECT_EQ(a.queue_full, 3u);
  // Exact combined mean 7/3, not the mean-of-means 2.75.
  EXPECT_DOUBLE_EQ(a.mean_retry_after_seconds, 7.0 / 3.0);
  EXPECT_EQ(a.total(), 3u);
}

TEST(StatsMergeTest, RejectionBreakdownDeltaSaturatesAndRederivesMean) {
  serve::RejectionBreakdown before;
  before.queue_full = 4;
  before.cancelled = 2;
  before.retry_after_hint_sum = 4.0;
  before.retry_after_hints = 4;
  serve::RejectionBreakdown after = before;
  after.queue_full = 6;
  after.cancelled = 1;  // less than before: saturates
  after.retry_after_hint_sum = 7.0;
  after.retry_after_hints = 6;
  serve::RejectionBreakdown delta = after - before;
  EXPECT_EQ(delta.queue_full, 2u);
  EXPECT_EQ(delta.cancelled, 0u);
  EXPECT_DOUBLE_EQ(delta.retry_after_hint_sum, 3.0);
  EXPECT_EQ(delta.retry_after_hints, 2u);
  // The delta's mean comes from its own hint sums, not a difference of
  // means.
  EXPECT_DOUBLE_EQ(delta.mean_retry_after_seconds, 1.5);
}

TEST(StatsMergeTest, RejectionBreakdownEmptyPlusNonemptyIsIdentity) {
  serve::RejectionBreakdown x;
  x.deadline_expired = 2;
  x.retry_after_hint_sum = 5.0;
  x.retry_after_hints = 2;
  x.mean_retry_after_seconds = 2.5;
  serve::RejectionBreakdown merged;
  merged += x;
  EXPECT_EQ(merged.deadline_expired, 2u);
  EXPECT_DOUBLE_EQ(merged.mean_retry_after_seconds, 2.5);
}

// ---------------------------------------------------------------------
// Views: Publish into a registry, read back from the snapshot, get the
// original struct — for every ported stats struct.
// ---------------------------------------------------------------------

TEST(MetricsViewTest, QueueStatsRoundTrips) {
  serve::QueueStats s;
  s.offered = 10;
  s.admitted = 8;
  s.rejected_full = 1;
  s.rejected_closed = 1;
  s.dropped_expired = 2;
  s.popped = 6;
  s.max_depth = 4;
  MetricsRegistry registry;
  serve::PublishQueueStats(s, &registry, "queue.");
  serve::QueueStats back =
      serve::QueueStatsFromSnapshot(registry.Snapshot(), "queue.");
  EXPECT_EQ(back.offered, s.offered);
  EXPECT_EQ(back.admitted, s.admitted);
  EXPECT_EQ(back.rejected_full, s.rejected_full);
  EXPECT_EQ(back.rejected_closed, s.rejected_closed);
  EXPECT_EQ(back.dropped_expired, s.dropped_expired);
  EXPECT_EQ(back.popped, s.popped);
  EXPECT_EQ(back.max_depth, s.max_depth);
}

TEST(MetricsViewTest, RetryStatsRoundTrips) {
  lm::RetryStats s;
  s.calls = 5;
  s.attempts = 9;
  s.retries = 4;
  s.successes = 4;
  s.failures = 1;
  s.retryable_errors = 3;
  s.terminal_errors = 1;
  s.circuit_rejections = 2;
  s.budget_exhausted = 1;
  s.cancelled_calls = 1;
  s.deadline_preempted = 1;
  s.backoff_seconds = 0.75;
  s.latency_seconds = 2.25;
  MetricsRegistry registry;
  lm::PublishRetryStats(s, &registry, "retry.");
  lm::RetryStats back =
      lm::RetryStatsFromSnapshot(registry.Snapshot(), "retry.");
  EXPECT_EQ(back.calls, s.calls);
  EXPECT_EQ(back.attempts, s.attempts);
  EXPECT_EQ(back.retries, s.retries);
  EXPECT_EQ(back.successes, s.successes);
  EXPECT_EQ(back.failures, s.failures);
  EXPECT_EQ(back.retryable_errors, s.retryable_errors);
  EXPECT_EQ(back.terminal_errors, s.terminal_errors);
  EXPECT_EQ(back.circuit_rejections, s.circuit_rejections);
  EXPECT_EQ(back.budget_exhausted, s.budget_exhausted);
  EXPECT_EQ(back.cancelled_calls, s.cancelled_calls);
  EXPECT_EQ(back.deadline_preempted, s.deadline_preempted);
  EXPECT_DOUBLE_EQ(back.backoff_seconds, s.backoff_seconds);
  EXPECT_DOUBLE_EQ(back.latency_seconds, s.latency_seconds);
}

TEST(MetricsViewTest, PrefixCacheStatsRoundTrips) {
  lm::PrefixCacheStats s;
  s.lookups = 12;
  s.full_hits = 5;
  s.prefix_hits = 4;
  s.misses = 3;
  s.insertions = 7;
  s.evictions = 2;
  s.prompt_tokens_seen = 900;
  s.prompt_tokens_reused = 700;
  s.prompt_tokens_replayed = 200;
  MetricsRegistry registry;
  lm::PublishPrefixCacheStats(s, &registry, "prefix_cache.");
  lm::PrefixCacheStats back =
      lm::PrefixCacheStatsFromSnapshot(registry.Snapshot(), "prefix_cache.");
  EXPECT_EQ(back.lookups, s.lookups);
  EXPECT_EQ(back.full_hits, s.full_hits);
  EXPECT_EQ(back.prefix_hits, s.prefix_hits);
  EXPECT_EQ(back.misses, s.misses);
  EXPECT_EQ(back.insertions, s.insertions);
  EXPECT_EQ(back.evictions, s.evictions);
  EXPECT_EQ(back.prompt_tokens_seen, s.prompt_tokens_seen);
  EXPECT_EQ(back.prompt_tokens_reused, s.prompt_tokens_reused);
  EXPECT_EQ(back.prompt_tokens_replayed, s.prompt_tokens_replayed);
  EXPECT_EQ(back.hits(), s.hits());
}

TEST(MetricsViewTest, BatchStatsRoundTrips) {
  batch::BatchStats s = MakeBatchStats(20, {0, 3, 0, 7});
  MetricsRegistry registry;
  batch::PublishBatchStats(s, &registry, "batch.");
  batch::BatchStats back =
      batch::BatchStatsFromSnapshot(registry.Snapshot(), "batch.");
  EXPECT_EQ(back.steps, s.steps);
  EXPECT_EQ(back.slot_steps, s.slot_steps);
  EXPECT_EQ(back.submitted, s.submitted);
  EXPECT_EQ(back.admitted, s.admitted);
  EXPECT_EQ(back.retired, s.retired);
  EXPECT_EQ(back.backfills, s.backfills);
  EXPECT_EQ(back.preemptions, s.preemptions);
  EXPECT_EQ(back.peak_batch, s.peak_batch);
  EXPECT_EQ(back.occupancy, s.occupancy);
  EXPECT_DOUBLE_EQ(back.mean_batch(), s.mean_batch());
}

TEST(MetricsViewTest, OverloadStatsRoundTrips) {
  serve::OverloadStats s;
  s.aimd_rejected = 3;
  s.ladder_rejected = 2;
  s.demoted_reduced = 4;
  s.demoted_classical = 1;
  s.escalations = 5;
  s.recoveries = 4;
  s.peak_level = 3;
  s.final_limit = 24.0;
  MetricsRegistry registry;
  serve::PublishOverloadStats(s, &registry, "overload.");
  serve::OverloadStats back =
      serve::OverloadStatsFromSnapshot(registry.Snapshot(), "overload.");
  EXPECT_EQ(back.aimd_rejected, s.aimd_rejected);
  EXPECT_EQ(back.ladder_rejected, s.ladder_rejected);
  EXPECT_EQ(back.demoted_reduced, s.demoted_reduced);
  EXPECT_EQ(back.demoted_classical, s.demoted_classical);
  EXPECT_EQ(back.escalations, s.escalations);
  EXPECT_EQ(back.recoveries, s.recoveries);
  EXPECT_EQ(back.peak_level, s.peak_level);
  EXPECT_DOUBLE_EQ(back.final_limit, s.final_limit);
}

TEST(MetricsViewTest, ClusterStatsRoundTrips) {
  serve::ClusterStats s;
  s.replica = 2;  // not published: per-request identity, not a counter
  s.failovers = 2;
  s.redispatched_draws = 6;
  s.wasted_seconds = 1.25;
  MetricsRegistry registry;
  serve::PublishClusterStats(s, &registry, "cluster.");
  serve::ClusterStats back =
      serve::ClusterStatsFromSnapshot(registry.Snapshot(), "cluster.");
  EXPECT_EQ(back.replica, -1);
  EXPECT_EQ(back.failovers, s.failovers);
  EXPECT_EQ(back.redispatched_draws, s.redispatched_draws);
  EXPECT_DOUBLE_EQ(back.wasted_seconds, s.wasted_seconds);
}

TEST(MetricsViewTest, RejectionBreakdownRoundTrips) {
  serve::RejectionBreakdown s;
  s.queue_full = 3;
  s.deadline_expired = 2;
  s.backend_unavailable = 1;
  s.cancelled = 4;
  s.other = 1;
  s.retry_after_hint_sum = 4.5;
  s.retry_after_hints = 3;
  s.mean_retry_after_seconds = 1.5;
  MetricsRegistry registry;
  serve::PublishRejectionBreakdown(s, &registry, "rejections.");
  serve::RejectionBreakdown back = serve::RejectionBreakdownFromSnapshot(
      registry.Snapshot(), "rejections.");
  EXPECT_EQ(back.queue_full, s.queue_full);
  EXPECT_EQ(back.deadline_expired, s.deadline_expired);
  EXPECT_EQ(back.backend_unavailable, s.backend_unavailable);
  EXPECT_EQ(back.cancelled, s.cancelled);
  EXPECT_EQ(back.other, s.other);
  EXPECT_DOUBLE_EQ(back.retry_after_hint_sum, s.retry_after_hint_sum);
  EXPECT_EQ(back.retry_after_hints, s.retry_after_hints);
  // The mean is derived from the published sums.
  EXPECT_DOUBLE_EQ(back.mean_retry_after_seconds, 1.5);
  EXPECT_EQ(back.total(), s.total());
}

TEST(MetricsViewTest, PublishingTwiceAccumulatesLikeMerge) {
  serve::QueueStats s;
  s.offered = 3;
  s.max_depth = 2;
  MetricsRegistry registry;
  serve::PublishQueueStats(s, &registry, "queue.");
  s.max_depth = 5;
  serve::PublishQueueStats(s, &registry, "queue.");
  serve::QueueStats back =
      serve::QueueStatsFromSnapshot(registry.Snapshot(), "queue.");
  EXPECT_EQ(back.offered, 6u);   // counters add across publishes
  EXPECT_EQ(back.max_depth, 5u);  // the gauge keeps the high-water mark
}

}  // namespace
}  // namespace util
}  // namespace multicast
