#include "lm/mixture_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lm/ngram_model.h"

namespace multicast {
namespace lm {
namespace {

std::vector<token::TokenId> Repeat(const std::vector<token::TokenId>& motif,
                                   int times) {
  std::vector<token::TokenId> out;
  for (int i = 0; i < times; ++i) {
    out.insert(out.end(), motif.begin(), motif.end());
  }
  return out;
}

TEST(MixtureModelTest, FreshModelIsUniform) {
  MixtureLanguageModel model(5, MixtureOptions{});
  std::vector<double> p = model.NextDistribution();
  ASSERT_EQ(p.size(), 5u);
  for (double v : p) EXPECT_NEAR(v, 0.2, 1e-9);
}

TEST(MixtureModelTest, DistributionNormalizedAndPositive) {
  MixtureLanguageModel model(11, MixtureOptions{});
  model.ObserveAll(Repeat({0, 3, 7, 10}, 30));
  std::vector<double> p = model.NextDistribution();
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MixtureModelTest, LearnsDeterministicCycle) {
  MixtureLanguageModel model(4, MixtureOptions{});
  model.ObserveAll(Repeat({0, 1, 2}, 40));
  std::vector<double> p = model.NextDistribution();
  EXPECT_GT(p[0], 0.8);
}

TEST(MixtureModelTest, DeepContextDisambiguates) {
  // Same ambiguity as the n-gram test: after "1", the continuation
  // depends on the symbol two back.
  std::vector<token::TokenId> motif = {0, 1, 9, 2, 1, 7};
  MixtureOptions opts;
  opts.max_depth = 5;
  MixtureLanguageModel model(10, opts);
  model.ObserveAll(Repeat(motif, 40));
  model.ObserveAll({0, 1, 9, 2, 1});
  std::vector<double> p = model.NextDistribution();
  EXPECT_GT(p[7], 0.6);
  EXPECT_GT(p[7], p[9]);
}

TEST(MixtureModelTest, AdaptsDepthPerContext) {
  // A sequence that is order-1 predictable except for one deep
  // dependency. The mixture should do well on both, because weights are
  // per-node rather than global.
  MixtureOptions opts;
  opts.max_depth = 6;
  MixtureLanguageModel model(6, opts);
  // Alternating 0/1 (order 1 suffices), punctuated every 8 tokens by a
  // 4-5 pair (needs deeper context to predict the 5 after the 4).
  std::vector<token::TokenId> seq;
  for (int block = 0; block < 40; ++block) {
    for (int i = 0; i < 3; ++i) {
      seq.push_back(0);
      seq.push_back(1);
    }
    seq.push_back(4);
    seq.push_back(5);
  }
  model.ObserveAll(seq);
  // After ...4, expect 5 strongly.
  // Rebuild the real context: feed a fresh block prefix.
  MixtureLanguageModel m2(6, opts);
  m2.ObserveAll(seq);
  m2.ObserveAll({0, 1, 0, 1, 0, 1, 4});
  std::vector<double> p = m2.NextDistribution();
  EXPECT_GT(p[5], 0.7);
}

TEST(MixtureModelTest, ResetClears) {
  MixtureLanguageModel model(4, MixtureOptions{});
  model.ObserveAll(Repeat({0, 1}, 20));
  EXPECT_GT(model.num_nodes(), 0u);
  model.Reset();
  EXPECT_EQ(model.context_length(), 0u);
  EXPECT_EQ(model.num_nodes(), 0u);
  std::vector<double> p = model.NextDistribution();
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(MixtureModelTest, BeatsShallowNGramOnDeepPattern) {
  // Period-9 cycle of distinct symbols: an order-2 n-gram can learn it
  // (each bigram is unique), but an order-1 cannot; the depth mixture
  // discovers the needed depth automatically.
  std::vector<token::TokenId> motif = {0, 1, 2, 0, 2, 1, 2, 0, 1};
  MixtureOptions mopts;
  mopts.max_depth = 8;
  MixtureLanguageModel mixture(3, mopts);
  NGramOptions nopts;
  nopts.max_order = 1;
  NGramLanguageModel shallow(3, nopts);
  auto seq = Repeat(motif, 40);
  mixture.ObserveAll(seq);
  shallow.ObserveAll(seq);
  // Average probability of the true next symbol over one more cycle.
  double mix_ll = 0.0, ngram_ll = 0.0;
  for (token::TokenId next : motif) {
    mix_ll += std::log(mixture.NextDistribution()[next]);
    ngram_ll += std::log(shallow.NextDistribution()[next]);
    mixture.Observe(next);
    shallow.Observe(next);
  }
  EXPECT_GT(mix_ll, ngram_ll + 1.0);
}

TEST(MixtureModelTest, KtAlphaControlsSharpness) {
  auto peak = [](double alpha) {
    MixtureOptions opts;
    opts.kt_alpha = alpha;
    MixtureLanguageModel model(10, opts);
    model.ObserveAll(Repeat({3, 4, 5}, 40));
    return model.NextDistribution()[3];
  };
  EXPECT_GT(peak(0.1), peak(5.0));
}

TEST(MixtureModelTest, RejectsBadOptionsViaCheck) {
  // Constructor MC_CHECKs on invalid parameters; valid edges work.
  MixtureOptions edge;
  edge.max_depth = 12;
  MixtureLanguageModel ok(31, edge);
  EXPECT_EQ(ok.vocab_size(), 31u);
}

TEST(MixtureModelTest, MaxBaseLayersCompactsLongForkChains) {
  // Same contract as the n-gram twin: max_base_layers bounds the frozen
  // chain without changing any output.
  MixtureOptions tight;
  tight.max_base_layers = 1;
  MixtureOptions loose;
  loose.max_base_layers = 8;
  auto tight_model = std::make_unique<MixtureLanguageModel>(6, tight);
  auto loose_model = std::make_unique<MixtureLanguageModel>(6, loose);
  for (int round = 0; round < 5; ++round) {
    auto chunk = Repeat({0, 1, 2, 3, 4, 5}, 4 + round);
    tight_model->ObserveAll(chunk);
    loose_model->ObserveAll(chunk);
    tight_model->Freeze();
    loose_model->Freeze();
    auto tf = tight_model->Fork();
    auto lf = loose_model->Fork();
    tight_model.reset(static_cast<MixtureLanguageModel*>(tf.release()));
    loose_model.reset(static_cast<MixtureLanguageModel*>(lf.release()));
  }
  EXPECT_LE(tight_model->num_base_layers(), 1u);
  EXPECT_EQ(loose_model->num_base_layers(), 5u);
  EXPECT_EQ(tight_model->num_nodes(), loose_model->num_nodes());
  std::vector<double> pt = tight_model->NextDistribution();
  std::vector<double> pl = loose_model->NextDistribution();
  ASSERT_EQ(pt.size(), pl.size());
  for (size_t i = 0; i < pt.size(); ++i) EXPECT_EQ(pt[i], pl[i]);
}

TEST(MixtureModelTest, NodesGrowWithNovelContexts) {
  MixtureOptions opts;
  opts.max_depth = 4;
  MixtureLanguageModel repeat_model(8, opts);
  repeat_model.ObserveAll(Repeat({0, 1}, 50));
  MixtureLanguageModel varied_model(8, opts);
  std::vector<token::TokenId> varied;
  for (int i = 0; i < 100; ++i) {
    varied.push_back(static_cast<token::TokenId>((i * 3 + i / 5) % 8));
  }
  varied_model.ObserveAll(varied);
  EXPECT_GT(varied_model.num_nodes(), repeat_model.num_nodes());
}

}  // namespace
}  // namespace lm
}  // namespace multicast
