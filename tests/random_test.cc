#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace multicast {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 1), b(123, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123, 1), b(124, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Roughly uniform: each bucket within 30% of expectation.
  for (int c : counts) EXPECT_NEAR(c, 1000, 300);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, SampleDiscreteSingleElement) {
  Rng rng(1);
  EXPECT_EQ(rng.SampleDiscrete({5.0}), 0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(42);
  Rng child = a.Fork();
  // The fork and parent should produce different streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint32() == child.NextUint32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextUniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

}  // namespace
}  // namespace multicast
