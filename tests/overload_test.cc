#include "serve/overload.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "serve/executor.h"
#include "serve/request.h"
#include "ts/frame.h"

namespace multicast {
namespace serve {
namespace {

ForecastRequest Req(size_t id, SloClass slo = SloClass::kStandard) {
  ForecastRequest r;
  r.id = id;
  r.slo = slo;
  return r;
}

LadderPolicy DefaultLadder() {
  LadderPolicy l;
  l.enabled = true;
  return l;
}

// ---------------------------------------------------------------------
// Controller mechanics.
// ---------------------------------------------------------------------

TEST(OverloadControllerTest, DisabledControllerIsTransparent) {
  OverloadController controller(OverloadPolicy{}, /*queue_capacity=*/8);
  EXPECT_TRUE(controller.Admit(Req(0), 0.0, 8, 8).ok());
  EXPECT_EQ(controller.Rung(SloClass::kBatch, 0.0, 8),
            ServiceTier::kLlmFull);
  EXPECT_EQ(controller.level(), 0);
  EXPECT_EQ(controller.stats().aimd_rejected, 0u);
  EXPECT_EQ(controller.stats().ladder_rejected, 0u);
}

TEST(OverloadControllerTest, ZeroPressureServesEveryClassAtFullQuality) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  OverloadController controller(policy, 8);
  // Batch carries a +1 bias, but bias only orders degradation once
  // pressure exists; an idle server degrades nobody.
  EXPECT_EQ(controller.Rung(SloClass::kInteractive, 0.0, 0),
            ServiceTier::kLlmFull);
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.1, 0),
            ServiceTier::kLlmFull);
  EXPECT_EQ(controller.Rung(SloClass::kBatch, 0.2, 0),
            ServiceTier::kLlmFull);
  EXPECT_EQ(controller.stats().demoted_reduced, 0u);
  EXPECT_EQ(controller.stats().demoted_classical, 0u);
}

TEST(OverloadControllerTest, QueueDepthEscalatesImmediately) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  OverloadController controller(policy, /*queue_capacity=*/10);
  // Depth 10/10 = score 1.0 >= enter_reject (0.95): straight to the top
  // level in one observation — escalation is not rate-limited.
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.0, 10),
            ServiceTier::kClassical);
  EXPECT_EQ(controller.level(), 3);
  EXPECT_EQ(controller.stats().peak_level, 3);
  EXPECT_EQ(controller.stats().escalations, 1u);
}

TEST(OverloadControllerTest, ClassBiasOrdersDegradationAtMidPressure) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  OverloadController controller(policy, 10);
  // Depth 6/10 = 0.6 >= enter_reduced (0.5), < enter_classical (0.75):
  // level 1. Interactive bias -1 keeps full quality; standard takes the
  // level as-is; batch bias +1 lands on classical a level early.
  EXPECT_EQ(controller.Rung(SloClass::kInteractive, 0.0, 6),
            ServiceTier::kLlmFull);
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.0, 6),
            ServiceTier::kLlmReduced);
  EXPECT_EQ(controller.Rung(SloClass::kBatch, 0.0, 6),
            ServiceTier::kClassical);
  EXPECT_EQ(controller.level(), 1);
}

TEST(OverloadControllerTest, OnlyBatchAtTopLevelIsRejected) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  OverloadController controller(policy, 10);
  // Level 3: interactive (rung 2) and standard (rung 3, capped) still
  // get the classical tier — the bias never rejects a non-batch class.
  EXPECT_EQ(controller.Rung(SloClass::kInteractive, 0.0, 10),
            ServiceTier::kClassical);
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.0, 10),
            ServiceTier::kClassical);
  EXPECT_EQ(controller.Rung(SloClass::kBatch, 0.0, 10),
            ServiceTier::kShed);
  EXPECT_EQ(controller.stats().ladder_rejected, 1u);
  // Admission agrees with dispatch: the same class is refused up front.
  Status admit = controller.Admit(Req(7, SloClass::kBatch), 0.1, 10, 0);
  EXPECT_EQ(admit.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(admit.message().find("level 3"), std::string::npos);
  EXPECT_TRUE(
      controller.Admit(Req(8, SloClass::kInteractive), 0.1, 10, 0).ok());
}

TEST(OverloadControllerTest, MemoryProbeWalksTheLadder) {
  // A pool nearing its cap escalates the ladder even with an empty
  // queue: fullness / memory_budget is one more pressure observable.
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  double fullness = 0.0;
  policy.memory_probe = [&fullness]() { return fullness; };
  OverloadController controller(policy, /*queue_capacity=*/10);

  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.0, 0),
            ServiceTier::kLlmFull);
  // budget 0.9: fullness 0.5 -> score ~0.56 -> level 1 (reduced).
  fullness = 0.5;
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.1, 0),
            ServiceTier::kLlmReduced);
  // Saturated pool -> score >= enter_reject -> top level; batch traffic
  // sheds, interactive bottoms out on the classical tier.
  fullness = 1.0;
  EXPECT_EQ(controller.Rung(SloClass::kBatch, 0.2, 0),
            ServiceTier::kShed);
  EXPECT_EQ(controller.Rung(SloClass::kInteractive, 0.3, 0),
            ServiceTier::kClassical);
  Status admit = controller.Admit(Req(1, SloClass::kBatch), 0.4, 0, 0);
  EXPECT_EQ(admit.code(), StatusCode::kResourceExhausted);
}

TEST(OverloadControllerTest, MemoryProbeIgnoredWithoutBudgetOrLadder) {
  // memory_budget <= 0 disables the observable outright.
  OverloadPolicy no_budget;
  no_budget.ladder = DefaultLadder();
  no_budget.ladder.memory_budget = 0.0;
  no_budget.memory_probe = []() { return 1.0; };
  OverloadController a(no_budget, 10);
  EXPECT_EQ(a.Rung(SloClass::kBatch, 0.0, 0), ServiceTier::kLlmFull);

  // And memory pressure sheds only through the ladder: a probe on a
  // ladder-disabled policy never degrades anything.
  OverloadPolicy no_ladder;
  no_ladder.memory_probe = []() { return 1.0; };
  OverloadController b(no_ladder, 10);
  EXPECT_TRUE(b.Admit(Req(2, SloClass::kBatch), 0.0, 0, 0).ok());
  EXPECT_EQ(b.Rung(SloClass::kBatch, 0.0, 0), ServiceTier::kLlmFull);
}

TEST(OverloadControllerTest, RecoveryIsHystereticAndOneStepPerDwell) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  policy.ladder.recovery_seconds = 2.0;
  OverloadController controller(policy, 10);
  ASSERT_EQ(controller.Rung(SloClass::kStandard, 0.0, 10),
            ServiceTier::kClassical);
  ASSERT_EQ(controller.level(), 3);
  // Pressure vanished, but the dwell has not elapsed: hold the level.
  controller.Rung(SloClass::kStandard, 1.0, 0);
  EXPECT_EQ(controller.level(), 3);
  // After the dwell, recovery is one level per step, not a free fall.
  controller.Rung(SloClass::kStandard, 2.5, 0);
  EXPECT_EQ(controller.level(), 2);
  controller.Rung(SloClass::kStandard, 3.0, 0);
  EXPECT_EQ(controller.level(), 2);  // next dwell not yet served
  controller.Rung(SloClass::kStandard, 4.5, 0);
  EXPECT_EQ(controller.level(), 1);
  controller.Rung(SloClass::kStandard, 6.5, 0);
  EXPECT_EQ(controller.level(), 0);
  EXPECT_EQ(controller.stats().recoveries, 3u);
}

TEST(OverloadControllerTest, SlowQueueWaitsRaiseThePressureScore) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  policy.ladder.wait_budget_seconds = 1.0;
  OverloadController controller(policy, 100);
  // Depth stays negligible; the p95 queue wait alone carries the score.
  for (int i = 0; i < 20; ++i) {
    controller.OnQueueWait(0.1 * i, /*wait_seconds=*/0.9);
  }
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 2.0, 0),
            ServiceTier::kClassical);  // 0.9/1.0 >= enter_classical
  EXPECT_EQ(controller.level(), 2);
  // The protected class keeps the LLM (one rung up) at the same level.
  EXPECT_EQ(controller.Rung(SloClass::kInteractive, 2.0, 0),
            ServiceTier::kLlmReduced);
}

TEST(OverloadControllerTest, ExternalShedsRaisePressureButOwnRejectsDoNot) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  policy.aimd.enabled = true;
  policy.aimd.initial_limit = 1.0;
  OverloadController controller(policy, 10);
  // The AIMD limiter refuses plenty of its own admissions...
  for (int i = 0; i < 50; ++i) {
    Status s = controller.Admit(Req(i), 0.01 * i, /*queue_depth=*/1,
                                /*in_flight=*/1);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(controller.stats().aimd_rejected, 50u);
  // ...yet self-made rejections are not pressure: the ladder stays calm.
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.6, 0),
            ServiceTier::kLlmFull);
  EXPECT_EQ(controller.level(), 0);
  // External sheds (queue full, in-queue expiry) are the real signal.
  ASSERT_TRUE(controller.Admit(Req(100), 0.7, 0, 0).ok());
  for (int i = 0; i < 10; ++i) controller.OnShed(0.7 + 0.01 * i);
  EXPECT_EQ(controller.Rung(SloClass::kStandard, 0.9, 0),
            ServiceTier::kClassical);
  EXPECT_GE(controller.level(), 2);
}

TEST(OverloadControllerTest, WindowPruningForgetsOldPressure) {
  OverloadPolicy policy;
  policy.ladder = DefaultLadder();
  policy.ladder.window_seconds = 1.0;
  policy.ladder.recovery_seconds = 0.5;
  OverloadController controller(policy, 10);
  ASSERT_TRUE(controller.Admit(Req(0), 0.0, 0, 0).ok());
  for (int i = 0; i < 5; ++i) controller.OnShed(0.1);
  controller.Rung(SloClass::kStandard, 0.2, 0);
  ASSERT_GT(controller.level(), 0);
  const int peak = controller.level();
  // Two windows later the shed burst has aged out; each observation
  // past the dwell peels one level.
  for (int step = 0; step <= 2 * peak; ++step) {
    controller.Rung(SloClass::kStandard, 3.0 + 0.6 * step, 0);
  }
  EXPECT_EQ(controller.level(), 0);
  EXPECT_EQ(controller.stats().recoveries, static_cast<size_t>(peak));
}

TEST(OverloadControllerTest, AimdGrowsOnDeadlineAndHalvesOnMiss) {
  OverloadPolicy policy;
  policy.aimd.enabled = true;
  policy.aimd.initial_limit = 8.0;
  policy.aimd.decrease_cooldown_seconds = 0.5;
  OverloadController controller(policy, 8);
  EXPECT_DOUBLE_EQ(controller.limit(), 8.0);
  controller.OnCompletion(1.0, /*on_deadline=*/true);
  controller.OnCompletion(1.1, true);
  EXPECT_DOUBLE_EQ(controller.limit(), 10.0);  // +1 per good completion
  controller.OnCompletion(1.2, /*on_deadline=*/false);
  EXPECT_DOUBLE_EQ(controller.limit(), 5.0);  // one multiplicative cut
  // A burst of misses inside the cooldown costs one cut, not many.
  controller.OnCompletion(1.3, false);
  controller.OnShed(1.4);
  EXPECT_DOUBLE_EQ(controller.limit(), 5.0);
  controller.OnCompletion(2.0, false);  // cooldown elapsed
  EXPECT_DOUBLE_EQ(controller.limit(), 2.5);
  EXPECT_DOUBLE_EQ(controller.stats().final_limit, 2.5);
}

TEST(OverloadControllerTest, AimdLimitGatesAdmission) {
  OverloadPolicy policy;
  policy.aimd.enabled = true;
  policy.aimd.initial_limit = 2.0;
  OverloadController controller(policy, 8);
  EXPECT_TRUE(controller.Admit(Req(0), 0.0, 0, 1).ok());
  Status s = controller.Admit(Req(1), 0.1, /*queue_depth=*/1,
                              /*in_flight=*/1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("concurrency limit"), std::string::npos);
  EXPECT_EQ(controller.stats().aimd_rejected, 1u);
  // Capacity opens back up once the limit grows.
  controller.OnCompletion(0.2, true);
  EXPECT_TRUE(controller.Admit(Req(2), 0.3, 1, 1).ok());
}

// ---------------------------------------------------------------------
// Executor integration: the ladder driving real dispatch decisions.
// ---------------------------------------------------------------------

ts::Frame History(size_t n) {
  std::vector<double> a;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(10.0 + static_cast<double>(i % 7));
  }
  return ts::Frame::FromSeries({ts::Series(a, "a")}, "hist").ValueOrDie();
}

/// Tier-aware scripted pipeline: "LLM" rungs burn virtual seconds,
/// the classical rung answers instantly — the economics the ladder is
/// built around.
class TierWork final : public forecast::Forecaster {
 public:
  explicit TierWork(ServiceTier tier) : tier_(tier) {}

  std::string name() const override { return "tier-work"; }

  using Forecaster::Forecast;
  Result<forecast::ForecastResult> Forecast(
      const ts::Frame& /*history*/, size_t horizon,
      const RequestContext& ctx) override {
    MC_RETURN_IF_ERROR(ctx.Check(name().c_str()));
    double cost = 0.0;
    if (tier_ == ServiceTier::kLlmFull) cost = 0.5;
    if (tier_ == ServiceTier::kLlmReduced) cost = 0.25;
    if (ctx.clock != nullptr && cost > 0.0) ctx.clock->Advance(cost);
    forecast::ForecastResult result;
    result.forecast =
        ts::Frame::FromSeries(
            {ts::Series(std::vector<double>(horizon, 1.0), "a")}, "f")
            .ValueOrDie();
    if (tier_ == ServiceTier::kClassical) {
      result.tier = forecast::ForecastTier::kClassical;
      result.degraded = true;
      result.warnings.push_back("demoted to the classical tier");
    }
    return result;
  }

 private:
  ServiceTier tier_;
};

ServeOptions LadderedOptions() {
  ServeOptions options;
  options.queue.capacity = 32;
  options.overload.ladder.enabled = true;
  options.overload.ladder.wait_budget_seconds = 1.0;
  options.overload.ladder.window_seconds = 4.0;
  options.overload.ladder.recovery_seconds = 0.5;
  options.overload.ladder.enter_reduced = 0.25;
  options.overload.ladder.enter_classical = 0.5;
  options.overload.aimd.enabled = true;
  options.overload.aimd.initial_limit = 32.0;
  return options;
}

std::vector<ForecastRequest> Burst(size_t n, const ts::Frame* history) {
  std::vector<ForecastRequest> requests;
  for (size_t i = 0; i < n; ++i) {
    ForecastRequest r;
    r.id = i;
    r.arrival_seconds = 0.05 * static_cast<double>(i);
    r.deadline_seconds = r.arrival_seconds + 4.0;
    r.history = history;
    r.horizon = 4;
    r.slo = (i % 3 == 0)   ? SloClass::kInteractive
            : (i % 3 == 1) ? SloClass::kStandard
                           : SloClass::kBatch;
    requests.push_back(r);
  }
  return requests;
}

Result<std::vector<ServeStats>> RunLaddered(
    size_t n, const ts::Frame* history, OverloadStats* overload) {
  auto factory = [](const ForecastRequest& req) {
    return std::make_unique<TierWork>(req.tier);
  };
  ServeExecutor executor(factory, nullptr, LadderedOptions());
  auto result = executor.Run(Burst(n, history));
  if (overload != nullptr) *overload = executor.overload_stats();
  return result;
}

TEST(OverloadIntegrationTest, LadderDemotesUnderSustainedLoad) {
  ts::Frame history = History(24);
  OverloadStats overload;
  auto result = RunLaddered(30, &history, &overload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ServeSummary summary = Summarize(result.value());
  // One worker at 0.5 s per full-quality request against 20 req/s is
  // 10x overload: the ladder must have demoted work to keep serving.
  EXPECT_GT(overload.demoted_reduced + overload.demoted_classical, 0u);
  EXPECT_GT(overload.escalations, 0u);
  EXPECT_GT(summary.tier_classical + summary.tier_llm_reduced, 0u);
  // The per-tier counters partition the run.
  EXPECT_EQ(summary.tier_llm_full + summary.tier_llm_reduced +
                summary.tier_classical + summary.tier_shed,
            summary.total);
  // Every served classical-tier request is flagged degraded, and the
  // stamped tier matches what the pipeline reports.
  for (const ServeStats& st : result.value()) {
    if (st.tier == ServiceTier::kClassical &&
        st.outcome == RequestOutcome::kServedDegraded) {
      ASSERT_NE(st.result, nullptr);
      EXPECT_EQ(st.result->tier, forecast::ForecastTier::kClassical);
    }
    if (st.outcome == RequestOutcome::kServed ||
        st.outcome == RequestOutcome::kServedDegraded) {
      EXPECT_NE(st.tier, ServiceTier::kShed);
    } else {
      EXPECT_EQ(st.tier, ServiceTier::kShed);
    }
  }
}

TEST(OverloadIntegrationTest, LadderedRunsAreBitDeterministic) {
  ts::Frame history = History(24);
  OverloadStats first_overload;
  OverloadStats second_overload;
  auto first = RunLaddered(30, &history, &first_overload);
  auto second = RunLaddered(30, &history, &second_overload);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.value().size(), second.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    const ServeStats& a = first.value()[i];
    const ServeStats& b = second.value()[i];
    EXPECT_EQ(a.outcome, b.outcome) << "request " << i;
    EXPECT_EQ(a.tier, b.tier) << "request " << i;
    EXPECT_DOUBLE_EQ(a.finish_seconds, b.finish_seconds) << "request " << i;
    EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds) << "request " << i;
  }
  EXPECT_EQ(first_overload.escalations, second_overload.escalations);
  EXPECT_EQ(first_overload.demoted_reduced, second_overload.demoted_reduced);
  EXPECT_EQ(first_overload.demoted_classical,
            second_overload.demoted_classical);
  EXPECT_DOUBLE_EQ(first_overload.final_limit, second_overload.final_limit);
}

TEST(OverloadIntegrationTest, RetryAfterSurfacesOnQueueFullRejections) {
  ts::Frame history = History(24);
  ServeOptions options;
  options.queue.capacity = 1;  // tiny queue: force queue-full sheds
  auto factory = [](const ForecastRequest&) {
    return std::make_unique<TierWork>(ServiceTier::kLlmFull);
  };
  ServeExecutor executor(factory, nullptr, options);
  auto result = executor.Run(Burst(12, &history));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ServeSummary summary = Summarize(result.value());
  ASSERT_GT(summary.shed_queue_full, 0u);
  size_t with_hint = 0;
  for (const ServeStats& st : result.value()) {
    if (st.outcome == RequestOutcome::kShedQueueFull) {
      EXPECT_GT(st.retry_after_seconds, 0.0) << "request " << st.id;
      ++with_hint;
    } else {
      EXPECT_DOUBLE_EQ(st.retry_after_seconds, 0.0);
    }
  }
  EXPECT_EQ(with_hint, summary.shed_queue_full);
  EXPECT_GT(summary.rejections.mean_retry_after_seconds, 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace multicast
