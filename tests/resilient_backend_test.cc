#include "lm/resilient_backend.h"

#include <gtest/gtest.h>

#include "lm/fault_injection.h"
#include "lm/generator.h"

namespace multicast {
namespace lm {
namespace {

constexpr size_t kVocab = 11;

/// Test double whose failures are scripted: call i returns script[i]
/// (OK -> a successful generation), calls past the script succeed.
class ScriptedBackend final : public LlmBackend {
 public:
  explicit ScriptedBackend(std::vector<Status> script)
      : script_(std::move(script)) {}

  std::string name() const override { return "scripted"; }
  size_t vocab_size() const override { return kVocab; }

  using LlmBackend::Complete;

  Result<GenerationResult> Complete(const std::vector<token::TokenId>&,
                                    size_t num_tokens, const GrammarMask&,
                                    Rng*, const CallOptions& call) override {
    deadlines_seen.push_back(call.deadline_seconds);
    size_t i = calls++;
    if (i < script_.size() && !script_[i].ok()) return script_[i];
    GenerationResult result;
    result.tokens.assign(num_tokens, 0);
    result.ledger.generated_tokens = num_tokens;
    return result;
  }

  double last_latency_seconds() const override { return latency; }

  size_t calls = 0;
  double latency = 0.0;
  std::vector<double> deadlines_seen;

 private:
  std::vector<Status> script_;
};

RetryPolicy NoJitter() {
  RetryPolicy p;
  p.jitter_fraction = 0.0;
  return p;
}

std::vector<token::TokenId> Prompt() { return {1, 2, 10}; }

TEST(RetryStatsTest, Accumulates) {
  RetryStats a, b;
  a.calls = 2;
  a.attempts = 3;
  a.backoff_seconds = 0.5;
  b.calls = 1;
  b.attempts = 4;
  b.retries = 3;
  b.backoff_seconds = 0.25;
  a += b;
  EXPECT_EQ(a.calls, 3u);
  EXPECT_EQ(a.attempts, 7u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_DOUBLE_EQ(a.backoff_seconds, 0.75);
}

TEST(ResilientBackendTest, FirstAttemptSuccessNeedsNoRetry) {
  ScriptedBackend inner({});
  ResilientBackend resilient(&inner, NoJitter());
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tokens.size(), 4u);
  EXPECT_EQ(resilient.stats().calls, 1u);
  EXPECT_EQ(resilient.stats().attempts, 1u);
  EXPECT_EQ(resilient.stats().retries, 0u);
  EXPECT_EQ(resilient.stats().successes, 1u);
  EXPECT_DOUBLE_EQ(resilient.stats().backoff_seconds, 0.0);
  EXPECT_EQ(resilient.name(), "scripted+retry");
}

TEST(ResilientBackendTest, RetriesTransientErrorsUntilSuccess) {
  ScriptedBackend inner(
      {Status::Unavailable("down"), Status::ResourceExhausted("429")});
  ResilientBackend resilient(&inner, NoJitter());
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(inner.calls, 3u);
  EXPECT_EQ(resilient.stats().attempts, 3u);
  EXPECT_EQ(resilient.stats().retries, 2u);
  EXPECT_EQ(resilient.stats().retryable_errors, 2u);
  EXPECT_EQ(resilient.stats().successes, 1u);
  EXPECT_EQ(resilient.stats().failures, 0u);
}

TEST(ResilientBackendTest, ExactBackoffScheduleWithoutJitter) {
  ScriptedBackend inner({Status::Unavailable("1"), Status::Unavailable("2"),
                         Status::Unavailable("3")});
  RetryPolicy p = NoJitter();
  p.max_attempts = 4;
  p.initial_backoff_seconds = 0.05;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 2.0;
  ResilientBackend resilient(&inner, p);
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_TRUE(r.ok());
  // Waits: 0.05 + 0.10 + 0.20, no latency (scripted backend reports 0).
  EXPECT_DOUBLE_EQ(resilient.stats().backoff_seconds, 0.35);
  EXPECT_DOUBLE_EQ(resilient.now_seconds(), 0.35);
}

TEST(ResilientBackendTest, BackoffCappedAtMax) {
  ScriptedBackend inner({Status::Unavailable("1"), Status::Unavailable("2"),
                         Status::Unavailable("3")});
  RetryPolicy p = NoJitter();
  p.max_attempts = 4;
  p.initial_backoff_seconds = 1.0;
  p.backoff_multiplier = 10.0;
  p.max_backoff_seconds = 1.5;
  p.total_budget_seconds = 100.0;
  ResilientBackend resilient(&inner, p);
  Rng rng(1);
  ASSERT_TRUE(resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng).ok());
  // Waits: 1.0, then min(10, 1.5), then min(100, 1.5).
  EXPECT_DOUBLE_EQ(resilient.stats().backoff_seconds, 4.0);
}

TEST(ResilientBackendTest, JitterStaysWithinFraction) {
  ScriptedBackend inner({Status::Unavailable("1")});
  RetryPolicy p;
  p.jitter_fraction = 0.2;
  p.initial_backoff_seconds = 1.0;
  ResilientBackend resilient(&inner, p);
  Rng rng(1);
  ASSERT_TRUE(resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng).ok());
  EXPECT_GE(resilient.stats().backoff_seconds, 0.8);
  EXPECT_LE(resilient.stats().backoff_seconds, 1.2);
}

TEST(ResilientBackendTest, TerminalErrorReturnsImmediately) {
  ScriptedBackend inner({Status::InvalidArgument("bad prompt")});
  ResilientBackend resilient(&inner, NoJitter());
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inner.calls, 1u);
  EXPECT_EQ(resilient.stats().terminal_errors, 1u);
  EXPECT_EQ(resilient.stats().retries, 0u);
  EXPECT_EQ(resilient.stats().failures, 1u);
}

TEST(ResilientBackendTest, GivesUpAfterMaxAttempts) {
  ScriptedBackend inner(std::vector<Status>(10, Status::Unavailable("down")));
  RetryPolicy p = NoJitter();
  p.max_attempts = 3;
  CircuitBreakerPolicy no_breaker;
  no_breaker.enabled = false;
  ResilientBackend resilient(&inner, p, no_breaker);
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("all 3 attempts failed"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(inner.calls, 3u);
  EXPECT_EQ(resilient.stats().attempts, 3u);
  EXPECT_EQ(resilient.stats().retries, 2u);
  EXPECT_EQ(resilient.stats().failures, 1u);
}

TEST(ResilientBackendTest, FillsAttemptDeadlineWhenCallerHasNone) {
  ScriptedBackend inner({});
  RetryPolicy p = NoJitter();
  p.attempt_deadline_seconds = 0.75;
  ResilientBackend resilient(&inner, p);
  Rng rng(1);
  ASSERT_TRUE(resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng).ok());
  ASSERT_EQ(inner.deadlines_seen.size(), 1u);
  EXPECT_DOUBLE_EQ(inner.deadlines_seen[0], 0.75);
  // A caller-provided deadline wins over the policy default.
  CallOptions call;
  call.deadline_seconds = 0.1;
  ASSERT_TRUE(
      resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng, call).ok());
  EXPECT_DOUBLE_EQ(inner.deadlines_seen[1], 0.1);
}

TEST(ResilientBackendTest, LatencyChargedButCappedAtDeadline) {
  ScriptedBackend inner({Status::DeadlineExceeded("spike")});
  inner.latency = 5.0;  // simulated spike
  RetryPolicy p = NoJitter();
  p.attempt_deadline_seconds = 1.0;
  p.initial_backoff_seconds = 0.0;
  ResilientBackend resilient(&inner, p);
  Rng rng(1);
  ASSERT_TRUE(resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng).ok());
  // Two attempts, each charged min(5.0, 1.0) of virtual latency.
  EXPECT_DOUBLE_EQ(resilient.stats().latency_seconds, 2.0);
  EXPECT_DOUBLE_EQ(resilient.now_seconds(), 2.0);
}

TEST(ResilientBackendTest, TotalBudgetStopsRetrying) {
  ScriptedBackend inner(std::vector<Status>(10, Status::Unavailable("down")));
  RetryPolicy p = NoJitter();
  p.max_attempts = 10;
  p.initial_backoff_seconds = 0.4;
  p.backoff_multiplier = 1.0;
  p.total_budget_seconds = 1.0;
  CircuitBreakerPolicy no_breaker;
  no_breaker.enabled = false;
  ResilientBackend resilient(&inner, p, no_breaker);
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resilient.stats().budget_exhausted, 1u);
  // Waits of 0.4 fit twice under the 1.0 budget; the third would reach
  // 1.2 and is refused, so exactly 3 attempts went out.
  EXPECT_EQ(inner.calls, 3u);
  EXPECT_DOUBLE_EQ(resilient.stats().backoff_seconds, 0.8);
}

// --- circuit breaker -------------------------------------------------

CircuitBreakerPolicy SmallBreaker() {
  CircuitBreakerPolicy b;
  b.failure_threshold = 2;
  b.cooldown_seconds = 5.0;
  b.half_open_successes = 1;
  return b;
}

RetryPolicy OneAttempt() {
  RetryPolicy p = NoJitter();
  p.max_attempts = 1;
  return p;
}

TEST(ResilientBackendTest, BreakerOpensAfterConsecutiveFailures) {
  ScriptedBackend inner(std::vector<Status>(10, Status::Unavailable("down")));
  ResilientBackend resilient(&inner, OneAttempt(), SmallBreaker());
  Rng rng(1);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(inner.calls, 2u);

  // While open, calls are rejected without touching the backend.
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("circuit breaker open"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(inner.calls, 2u);
  EXPECT_EQ(resilient.stats().circuit_rejections, 1u);
}

TEST(ResilientBackendTest, HalfOpenProbeClosesOnSuccess) {
  // Two failures trip the breaker; the scripted backend then recovers.
  ScriptedBackend inner(
      {Status::Unavailable("down"), Status::Unavailable("down")});
  ResilientBackend resilient(&inner, OneAttempt(), SmallBreaker());
  Rng rng(1);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_EQ(resilient.circuit_state(), CircuitState::kOpen);

  // Before the cooldown elapses the probe is still refused.
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(inner.calls, 2u);

  resilient.AdvanceClock(5.0);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(inner.calls, 3u);  // the half-open probe reached the backend
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
}

TEST(ResilientBackendTest, FailedProbeReopensBreaker) {
  ScriptedBackend inner(std::vector<Status>(10, Status::Unavailable("down")));
  ResilientBackend resilient(&inner, OneAttempt(), SmallBreaker());
  Rng rng(1);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_EQ(resilient.circuit_state(), CircuitState::kOpen);

  resilient.AdvanceClock(5.0);
  auto probe = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_FALSE(probe.ok());
  EXPECT_EQ(inner.calls, 3u);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);

  // Rejected again for a fresh cooldown window.
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_EQ(inner.calls, 3u);
  EXPECT_EQ(resilient.stats().circuit_rejections, 1u);
}

TEST(ResilientBackendTest, HalfOpenRelapseReopensForAFreshCooldown) {
  // A breaker that needs two clean probes to close, against a backend
  // that teases recovery: one good probe, then a relapse. The single
  // success must not close the breaker, the relapse must re-open it for
  // a *fresh* cooldown anchored at the relapse time, and only two
  // consecutive clean probes after that cooldown close it.
  ScriptedBackend inner({Status::Unavailable("down"),
                         Status::Unavailable("down"),
                         Status::OK(),  // probe 1: looks recovered...
                         Status::Unavailable("relapse")});
  VirtualClock clock;
  CircuitBreakerPolicy breaker = SmallBreaker();
  breaker.half_open_successes = 2;
  ResilientBackend resilient(&inner, OneAttempt(), breaker, &clock);
  Rng rng(1);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  (void)resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_EQ(resilient.circuit_state(), CircuitState::kOpen);

  // Cooldown elapses; the first probe succeeds but one success out of
  // the required two leaves the breaker half-open, still probing.
  clock.Advance(5.0);
  auto probe1 = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_TRUE(probe1.ok());
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kHalfOpen);

  // The second probe relapses: straight back to open, with the new
  // cooldown window anchored at the relapse, not the original trip.
  clock.Advance(1.0);  // now t = 6.0
  auto probe2 = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_FALSE(probe2.ok());
  ASSERT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(inner.calls, 4u);

  // 4 s later the original cooldown (from t=0) is long over, but the
  // relapse window (6.0 + 5.0) is not: calls are still rejected cheaply.
  clock.Advance(4.0);  // t = 10.0 < 11.0
  auto rejected = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(inner.calls, 4u);  // backend not contacted
  EXPECT_EQ(resilient.stats().circuit_rejections, 1u);

  // Past the fresh cooldown, two consecutive clean probes close it —
  // the first alone still leaves the breaker half-open.
  clock.Advance(1.5);  // t = 11.5
  ASSERT_TRUE(resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng).ok());
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kHalfOpen);
  ASSERT_TRUE(resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng).ok());
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
  EXPECT_EQ(inner.calls, 6u);
}

TEST(ResilientBackendTest, CircuitStateNames) {
  EXPECT_STREQ(CircuitStateName(CircuitState::kClosed), "closed");
  EXPECT_STREQ(CircuitStateName(CircuitState::kOpen), "open");
  EXPECT_STREQ(CircuitStateName(CircuitState::kHalfOpen), "half-open");
}

TEST(ResilientBackendTest, MasksDeterministicFaultSchedule) {
  // End-to-end over the real stack: SimulatedLlm -> faults -> retry. At a
  // 30% transient rate, four attempts nearly always find a clean slot, so
  // retries fully mask the chaos and the output equals the fault-free run.
  SimulatedLlm clean_llm(ModelProfile::Llama2_7B(), kVocab);
  SimulatedLlm faulty_llm(ModelProfile::Llama2_7B(), kVocab);
  FaultInjectingBackend faults(&faulty_llm, FaultProfile::Transient(0.3, 21));
  RetryPolicy p = NoJitter();
  p.max_attempts = 6;
  ResilientBackend resilient(&faults, p);
  std::vector<token::TokenId> prompt = {1, 7, 10, 2, 3, 10};
  Rng a(4), b(4);
  auto expect = clean_llm.Complete(prompt, 9, AllowAll(kVocab), &a);
  auto got = resilient.Complete(prompt, 9, AllowAll(kVocab), &b);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(expect.value().tokens, got.value().tokens);
}

// ---------------------------------------------------------------------
// Request-context deadline and cancellation edges.
// ---------------------------------------------------------------------

TEST(ResilientBackendTest, AlreadyExpiredDeadlineFailsWithoutAnyAttempt) {
  ScriptedBackend inner({});
  VirtualClock clock;
  ResilientBackend resilient(&inner, NoJitter(), {}, &clock);
  clock.Advance(5.0);
  CallOptions call;
  call.context.clock = &clock;
  call.context.deadline = Deadline::At(2.0);  // already 3 s in the past
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng, call);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(inner.calls, 0u);  // backend never contacted
  EXPECT_EQ(resilient.stats().attempts, 0u);
  EXPECT_EQ(resilient.stats().deadline_preempted, 1u);
  EXPECT_EQ(resilient.stats().failures, 1u);
  // The breaker is untouched: the backend did nothing wrong.
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
}

TEST(ResilientBackendTest, NeverSleepsPastTheRequestDeadline) {
  // Two transient failures would normally trigger two backoff waits
  // (0.05 then 0.1). The request deadline falls inside the second wait:
  // the call must fail *at* the decision point with the clock still on
  // the near side of the deadline, not sleep through it.
  ScriptedBackend inner({Status::Unavailable("1"), Status::Unavailable("2"),
                         Status::Unavailable("3")});
  VirtualClock clock;
  RetryPolicy p = NoJitter();
  p.max_attempts = 4;
  p.initial_backoff_seconds = 0.05;
  p.backoff_multiplier = 2.0;
  ResilientBackend resilient(&inner, p, {}, &clock);
  CallOptions call;
  call.context.clock = &clock;
  call.context.deadline = Deadline::At(0.12);  // inside the 2nd backoff
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng, call);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // Attempt 1 (latency 0) -> wait 0.05 -> attempt 2 -> wait 0.10 would
  // end at 0.15 > 0.12, so only the first wait was taken.
  EXPECT_EQ(inner.calls, 2u);
  EXPECT_DOUBLE_EQ(resilient.stats().backoff_seconds, 0.05);
  EXPECT_DOUBLE_EQ(clock.now(), 0.05);  // never advanced past the deadline
  EXPECT_LE(clock.now(), 0.12);
  EXPECT_EQ(resilient.stats().deadline_preempted, 1u);
}

TEST(ResilientBackendTest, AttemptDeadlineIsCappedToRemainingBudget) {
  ScriptedBackend inner({});
  inner.latency = 0.2;
  VirtualClock clock;
  RetryPolicy p = NoJitter();
  p.attempt_deadline_seconds = 1.0;
  ResilientBackend resilient(&inner, p, {}, &clock);
  CallOptions call;
  call.context.clock = &clock;
  call.context.deadline = Deadline::At(0.3);
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng, call);
  ASSERT_TRUE(r.ok());
  // The attempt saw min(1.0, remaining 0.3), not the policy default.
  ASSERT_EQ(inner.deadlines_seen.size(), 1u);
  EXPECT_DOUBLE_EQ(inner.deadlines_seen[0], 0.3);
  EXPECT_DOUBLE_EQ(clock.now(), 0.2);
}

TEST(ResilientBackendTest, HalfOpenProbeRacingCancellationNeverFires) {
  // Trip the breaker open with a no-retry policy, cool it down, then
  // issue a call whose request is already cancelled. The cancellation
  // must win the race: the breaker stays open (no half-open
  // transition) and the probe never contacts the backend.
  ScriptedBackend inner({Status::Unavailable("down"),
                         Status::Unavailable("down"),
                         Status::Unavailable("down")});
  VirtualClock clock;
  RetryPolicy p = NoJitter();
  p.max_attempts = 1;
  CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown_seconds = 5.0;
  ResilientBackend resilient(&inner, p, breaker, &clock);
  Rng rng(1);
  for (int i = 0; i < 3; ++i) {
    auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
    ASSERT_FALSE(r.ok());
  }
  ASSERT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  clock.Advance(10.0);  // cooldown elapsed: next call would probe

  CallOptions call;
  call.context.clock = &clock;
  call.context.cancel.Cancel("caller gave up");
  size_t calls_before = inner.calls;
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng, call);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(inner.calls, calls_before);  // probe never issued
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);  // still open
  EXPECT_EQ(resilient.stats().cancelled_calls, 1u);

  // A live request after the cancelled one still gets the probe, and a
  // successful probe closes the breaker — cancellation did not wedge it.
  auto probe = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
}

TEST(ResilientBackendTest, CancellationMidBackoffStopsBeforeNextAttempt) {
  // The token fires while the first backoff elapses (auto-cancel at
  // t=0.03, inside the 0.05 s wait): attempt 2 must never be issued.
  ScriptedBackend inner({Status::Unavailable("1")});
  VirtualClock clock;
  RetryPolicy p = NoJitter();
  p.initial_backoff_seconds = 0.05;
  ResilientBackend resilient(&inner, p, {}, &clock);
  CallOptions call;
  call.context.clock = &clock;
  call.context.cancel.CancelAtTime(&clock, 0.03, "client went away");
  Rng rng(1);
  auto r = resilient.Complete(Prompt(), 4, AllowAll(kVocab), &rng, call);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(inner.calls, 1u);  // first attempt only
  EXPECT_EQ(resilient.stats().cancelled_calls, 1u);
}

}  // namespace
}  // namespace lm
}  // namespace multicast
