#include "forecast/fallback.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.h"

namespace multicast {
namespace forecast {
namespace {

ts::Frame History(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = 10.0 + std::sin(static_cast<double>(i));
    b[i] = 42.0;
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "hist")
      .ValueOrDie();
}

/// A forecaster scripted to either fail with a given status or return a
/// constant-valued full-shape forecast.
class FakeForecaster final : public Forecaster {
 public:
  FakeForecaster(std::string name, Status status, double fill = 0.0)
      : name_(std::move(name)), status_(std::move(status)), fill_(fill) {}

  std::string name() const override { return name_; }

  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override {
    (void)ctx;
    ++calls;
    if (!status_.ok()) return status_;
    ForecastResult result;
    std::vector<ts::Series> dims;
    for (size_t d = 0; d < history.num_dims(); ++d) {
      dims.emplace_back(std::vector<double>(horizon, fill_),
                        history.dim(d).name());
    }
    result.forecast =
        ts::Frame::FromSeries(dims, "forecast").ValueOrDie();
    return result;
  }

  size_t calls = 0;

 private:
  std::string name_;
  Status status_;
  double fill_;
};

std::unique_ptr<FakeForecaster> Ok(const std::string& name, double fill) {
  return std::make_unique<FakeForecaster>(name, Status::OK(), fill);
}

std::unique_ptr<FakeForecaster> Down(const std::string& name) {
  return std::make_unique<FakeForecaster>(name,
                                          Status::Unavailable(name + " down"));
}

TEST(FallbackForecasterTest, PrimarySuccessIsNotDegraded) {
  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(Ok("primary", 1.0));
  chain.push_back(Ok("secondary", 2.0));
  FallbackForecaster fallback(std::move(chain));
  auto r = fallback.Forecast(History(20), 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().degraded);
  EXPECT_TRUE(r.value().warnings.empty());
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 0), 1.0);
  EXPECT_EQ(fallback.last_used(), "primary");
  EXPECT_EQ(fallback.last_used_index(), 0u);
}

TEST(FallbackForecasterTest, DemotesPastFailingLinks) {
  std::vector<std::unique_ptr<Forecaster>> chain;
  auto* primary = new FakeForecaster("primary", Status::Unavailable("down"));
  chain.emplace_back(primary);
  chain.push_back(Down("secondary"));
  chain.push_back(Ok("tertiary", 3.0));
  FallbackForecaster fallback(std::move(chain));
  auto r = fallback.Forecast(History(20), 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  EXPECT_DOUBLE_EQ(r.value().forecast.at(0, 0), 3.0);
  EXPECT_EQ(fallback.last_used(), "tertiary");
  EXPECT_EQ(fallback.last_used_index(), 2u);
  EXPECT_EQ(primary->calls, 1u);
  // One demotion note per failed link, in chain order.
  ASSERT_EQ(r.value().warnings.size(), 2u);
  EXPECT_NE(r.value().warnings[0].find("primary"), std::string::npos);
  EXPECT_NE(r.value().warnings[1].find("secondary"), std::string::npos);
}

TEST(FallbackForecasterTest, AllLinksFailingReturnsError) {
  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(Down("primary"));
  chain.push_back(Down("secondary"));
  FallbackForecaster fallback(std::move(chain));
  auto r = fallback.Forecast(History(20), 4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("every fallback link failed"),
            std::string::npos)
      << r.status().ToString();
}

TEST(FallbackForecasterTest, NameListsTheChain) {
  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(Ok("A", 0.0));
  chain.push_back(Ok("B", 0.0));
  chain.push_back(std::make_unique<baselines::NaiveLastForecaster>());
  FallbackForecaster fallback(std::move(chain));
  EXPECT_EQ(fallback.name(), "Fallback(A -> B -> NaiveLast)");
  EXPECT_EQ(fallback.chain_length(), 3u);
}

TEST(FallbackForecasterTest, NaiveTerminalLinkAlwaysServes) {
  // The canonical production chain tail: even with every LLM link dead,
  // NaiveLast answers with a full-shape forecast.
  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(Down("MultiCast (VI)"));
  chain.push_back(Down("LLMTIME"));
  chain.push_back(std::make_unique<baselines::NaiveLastForecaster>());
  FallbackForecaster fallback(std::move(chain));
  ts::Frame history = History(20);
  auto r = fallback.Forecast(history, 6);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(r.value().forecast.num_dims(), 2u);
  EXPECT_EQ(r.value().forecast.length(), 6u);
  // NaiveLast repeats the final observed value.
  EXPECT_DOUBLE_EQ(r.value().forecast.at(1, 5), 42.0);
  EXPECT_EQ(fallback.last_used(), "NaiveLast");
}

TEST(FallbackForecasterTest, DegradedFlagFromLinkIsPreserved) {
  // A link that itself reports degraded keeps the flag even at index 0.
  class DegradedForecaster final : public Forecaster {
   public:
    std::string name() const override { return "degraded"; }
    using Forecaster::Forecast;
    Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                    const RequestContext&) override {
      ForecastResult result;
      std::vector<ts::Series> dims;
      for (size_t d = 0; d < history.num_dims(); ++d) {
        dims.emplace_back(std::vector<double>(horizon, 0.0),
                          history.dim(d).name());
      }
      result.forecast = ts::Frame::FromSeries(dims, "f").ValueOrDie();
      result.degraded = true;
      result.warnings.push_back("salvaged 2 samples");
      return result;
    }
  };
  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(std::make_unique<DegradedForecaster>());
  FallbackForecaster fallback(std::move(chain));
  auto r = fallback.Forecast(History(20), 4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().degraded);
  ASSERT_EQ(r.value().warnings.size(), 1u);
  EXPECT_EQ(r.value().warnings[0], "salvaged 2 samples");
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
