#include "sax/gaussian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace multicast {
namespace sax {
namespace {

TEST(NormalPdfTest, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
  EXPECT_DOUBLE_EQ(NormalPdf(std::numeric_limits<double>::infinity()), 0.0);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_DOUBLE_EQ(NormalCdf(std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_DOUBLE_EQ(NormalCdf(-std::numeric_limits<double>::infinity()), 0.0);
}

TEST(NormalQuantileTest, InvertsTheCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-8);
}

TEST(NormalQuantileTest, Symmetry) {
  for (double p : {0.05, 0.2, 0.35}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-10);
  }
}

TEST(NormalQuantileTest, EdgesAreInfinite) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_GT(NormalQuantile(1.0), 0.0);
}

TEST(TruncatedNormalMeanTest, FullSupportIsZero) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(TruncatedNormalMean(-kInf, kInf), 0.0, 1e-12);
}

TEST(TruncatedNormalMeanTest, HalfSupport) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // E[X | X > 0] = sqrt(2/pi).
  EXPECT_NEAR(TruncatedNormalMean(0.0, kInf), std::sqrt(2.0 / M_PI), 1e-10);
  EXPECT_NEAR(TruncatedNormalMean(-kInf, 0.0), -std::sqrt(2.0 / M_PI),
              1e-10);
}

TEST(TruncatedNormalMeanTest, MeanLiesInsideInterval) {
  double m = TruncatedNormalMean(0.5, 1.5);
  EXPECT_GT(m, 0.5);
  EXPECT_LT(m, 1.5);
}

TEST(TruncatedNormalMeanTest, SymmetricIntervalIsZero) {
  EXPECT_NEAR(TruncatedNormalMean(-0.7, 0.7), 0.0, 1e-12);
}

}  // namespace
}  // namespace sax
}  // namespace multicast
