#include "util/status.h"

#include <gtest/gtest.h>

namespace multicast {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, CodeNamesCoverEveryCode) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, UnknownCodeGetsSaneName) {
  // A code from a cast / wire corruption must not fall off the switch.
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(999)),
               "UnknownStatusCode");
}

TEST(StatusTest, NewCodesRenderInToString) {
  EXPECT_EQ(Status::Unavailable("backend down").ToString(),
            "Unavailable: backend down");
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
  EXPECT_EQ(Status::ResourceExhausted("rate limited").ToString(),
            "ResourceExhausted: rate limited");
}

TEST(StatusTest, IsRetryableOnlyForTransientCodes) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kAlreadyExists));
  EXPECT_FALSE(IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryable(StatusCode::kUnimplemented));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kIOError));
  EXPECT_FALSE(IsRetryable(static_cast<StatusCode>(999)));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MC_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseHalf(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  MC_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace multicast
