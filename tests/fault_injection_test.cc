#include "lm/fault_injection.h"

#include <gtest/gtest.h>

#include "lm/generator.h"
#include "token/codec.h"

namespace multicast {
namespace lm {
namespace {

std::vector<token::TokenId> EncodeDigits(const std::string& text) {
  return token::Encode(text, token::Vocabulary::Digits()).ValueOrDie();
}

constexpr size_t kVocab = 11;  // digits + comma

SimulatedLlm MakeInner() {
  return SimulatedLlm(ModelProfile::Llama2_7B(), kVocab);
}

TEST(FaultProfileTest, NoneInjectsNothing) {
  EXPECT_FALSE(FaultProfile::None().any());
  EXPECT_TRUE(FaultProfile::Chaos(0.1).any());
  EXPECT_TRUE(FaultProfile::Transient(0.1).any());
}

TEST(FaultProfileTest, TransientLeavesPayloadFaultsOff) {
  FaultProfile p = FaultProfile::Transient(0.3, 42);
  EXPECT_DOUBLE_EQ(p.unavailable_rate, 0.3);
  EXPECT_DOUBLE_EQ(p.latency_spike_rate, 0.3);
  EXPECT_DOUBLE_EQ(p.rate_limit_rate, 0.3);
  EXPECT_DOUBLE_EQ(p.truncation_rate, 0.0);
  EXPECT_DOUBLE_EQ(p.corruption_rate, 0.0);
  EXPECT_EQ(p.seed, 42u);
  FaultProfile c = FaultProfile::Chaos(0.3, 42);
  EXPECT_DOUBLE_EQ(c.truncation_rate, 0.3);
  EXPECT_DOUBLE_EQ(c.corruption_rate, 0.3);
}

TEST(FaultInjectionTest, NoneProfileIsPassthrough) {
  SimulatedLlm inner = MakeInner();
  SimulatedLlm reference = MakeInner();
  FaultInjectingBackend faulty(&inner, FaultProfile::None());
  auto prompt = EncodeDigits("12,34,12,34,");
  Rng a(7), b(7);
  auto clean = reference.Complete(prompt, 12, AllowAll(kVocab), &a);
  auto injected = faulty.Complete(prompt, 12, AllowAll(kVocab), &b);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(injected.ok());
  EXPECT_EQ(clean.value().tokens, injected.value().tokens);
  EXPECT_EQ(faulty.counts().calls, 1u);
  EXPECT_EQ(faulty.counts().clean, 1u);
  EXPECT_EQ(faulty.counts().faults(), 0u);
}

TEST(FaultInjectionTest, NameAndVocabForward) {
  SimulatedLlm inner = MakeInner();
  FaultInjectingBackend faulty(&inner, FaultProfile::Chaos(0.2));
  EXPECT_EQ(faulty.name(), inner.name() + "+faults");
  EXPECT_EQ(faulty.vocab_size(), kVocab);
}

TEST(FaultInjectionTest, SameSeedSameSchedule) {
  // Two independently constructed stacks with the same profile seed must
  // produce the identical call-by-call outcome sequence.
  auto run_schedule = [](std::vector<StatusCode>* codes,
                         std::vector<std::vector<token::TokenId>>* tokens) {
    SimulatedLlm inner = MakeInner();
    FaultInjectingBackend faulty(&inner, FaultProfile::Chaos(0.5, 1234));
    auto prompt = EncodeDigits("55,66,55,66,");
    Rng rng(99);
    for (int i = 0; i < 30; ++i) {
      auto r = faulty.Complete(prompt, 9, AllowAll(kVocab), &rng);
      codes->push_back(r.status().code());
      tokens->push_back(r.ok() ? r.value().tokens
                               : std::vector<token::TokenId>{});
    }
  };
  std::vector<StatusCode> codes_a, codes_b;
  std::vector<std::vector<token::TokenId>> tokens_a, tokens_b;
  run_schedule(&codes_a, &tokens_a);
  run_schedule(&codes_b, &tokens_b);
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_EQ(tokens_a, tokens_b);
  // And a 50% chaos profile actually exercises both branches.
  bool any_error = false, any_ok = false;
  for (StatusCode c : codes_a) {
    (c == StatusCode::kOk ? any_ok : any_error) = true;
  }
  EXPECT_TRUE(any_error);
  EXPECT_TRUE(any_ok);
}

TEST(FaultInjectionTest, DifferentSeedDifferentSchedule) {
  auto codes_for = [](uint64_t seed) {
    SimulatedLlm inner = MakeInner();
    FaultInjectingBackend faulty(&inner, FaultProfile::Chaos(0.5, seed));
    auto prompt = EncodeDigits("55,66,");
    Rng rng(99);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 30; ++i) {
      codes.push_back(
          faulty.Complete(prompt, 6, AllowAll(kVocab), &rng).status().code());
    }
    return codes;
  };
  EXPECT_NE(codes_for(1), codes_for(2));
}

TEST(FaultInjectionTest, RewindScheduleReplaysFaults) {
  SimulatedLlm inner = MakeInner();
  FaultInjectingBackend faulty(&inner, FaultProfile::Chaos(0.5, 77));
  auto prompt = EncodeDigits("10,20,");
  auto run = [&] {
    Rng rng(5);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 20; ++i) {
      codes.push_back(
          faulty.Complete(prompt, 6, AllowAll(kVocab), &rng).status().code());
    }
    return codes;
  };
  std::vector<StatusCode> first = run();
  faulty.RewindSchedule();
  EXPECT_EQ(run(), first);
  EXPECT_EQ(faulty.counts().calls, 40u);  // counts survive the rewind
}

TEST(FaultInjectionTest, CertainOutageAlwaysUnavailable) {
  SimulatedLlm inner = MakeInner();
  FaultProfile p;
  p.unavailable_rate = 1.0;
  FaultInjectingBackend faulty(&inner, p);
  auto prompt = EncodeDigits("1,2,");
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    auto r = faulty.Complete(prompt, 3, AllowAll(kVocab), &rng);
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(faulty.counts().unavailable, 5u);
  EXPECT_EQ(faulty.counts().clean, 0u);
}

TEST(FaultInjectionTest, RateLimitBurstRejectsFollowingCalls) {
  SimulatedLlm inner = MakeInner();
  FaultProfile p;
  p.rate_limit_rate = 1.0;
  p.rate_limit_burst = 3;
  FaultInjectingBackend faulty(&inner, p);
  auto prompt = EncodeDigits("1,2,");
  Rng rng(1);
  auto first = faulty.Complete(prompt, 3, AllowAll(kVocab), &rng);
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(first.status().message(), "injected: rate limit exceeded");
  for (int i = 0; i < 2; ++i) {
    auto r = faulty.Complete(prompt, 3, AllowAll(kVocab), &rng);
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(r.status().message(), "injected: rate limit burst in progress");
  }
  EXPECT_EQ(faulty.counts().rate_limited, 3u);
}

TEST(FaultInjectionTest, LatencySpikeHarmlessWithoutDeadline) {
  SimulatedLlm inner = MakeInner();
  FaultProfile p;
  p.latency_spike_rate = 1.0;
  p.spike_latency_seconds = 5.0;
  FaultInjectingBackend faulty(&inner, p);
  auto prompt = EncodeDigits("12,34,");
  Rng rng(1);
  auto r = faulty.Complete(prompt, 6, AllowAll(kVocab), &rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(faulty.last_latency_seconds(), 5.0);
  EXPECT_EQ(faulty.counts().deadline_exceeded, 0u);
}

TEST(FaultInjectionTest, LatencySpikeMissesDeadline) {
  SimulatedLlm inner = MakeInner();
  FaultProfile p;
  p.latency_spike_rate = 1.0;
  p.spike_latency_seconds = 5.0;
  FaultInjectingBackend faulty(&inner, p);
  auto prompt = EncodeDigits("12,34,");
  Rng rng(1);
  CallOptions call;
  call.deadline_seconds = 1.0;
  auto r = faulty.Complete(prompt, 6, AllowAll(kVocab), &rng, call);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(faulty.counts().deadline_exceeded, 1u);
  // Base latency below the deadline sails through.
  FaultProfile calm;
  SimulatedLlm inner2 = MakeInner();
  FaultInjectingBackend fine(&inner2, calm);
  auto ok = fine.Complete(prompt, 6, AllowAll(kVocab), &rng, call);
  EXPECT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(fine.last_latency_seconds(), calm.base_latency_seconds);
}

TEST(FaultInjectionTest, TruncationShortensTokensAndLedger) {
  SimulatedLlm inner = MakeInner();
  FaultProfile p;
  p.truncation_rate = 1.0;
  p.truncation_keep_min = 0.25;
  FaultInjectingBackend faulty(&inner, p);
  auto prompt = EncodeDigits("12,34,12,34,");
  Rng rng(3);
  const size_t requested = 30;
  bool any_shorter = false;
  for (int i = 0; i < 10; ++i) {
    auto r = faulty.Complete(prompt, requested, AllowAll(kVocab), &rng);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GE(r.value().tokens.size(), 1u);
    EXPECT_LE(r.value().tokens.size(), requested);
    EXPECT_EQ(r.value().ledger.generated_tokens, r.value().tokens.size());
    any_shorter |= r.value().tokens.size() < requested;
  }
  EXPECT_TRUE(any_shorter);
  EXPECT_GT(faulty.counts().truncated, 0u);
}

TEST(FaultInjectionTest, CorruptionStaysInVocabButDiffers) {
  FaultProfile p;
  p.corruption_rate = 1.0;
  p.corruption_density = 1.0;  // flip every token
  SimulatedLlm inner = MakeInner();
  SimulatedLlm reference = MakeInner();
  FaultInjectingBackend faulty(&inner, p);
  auto prompt = EncodeDigits("17,23,17,23,17,23,");
  Rng a(11), b(11);
  auto clean = reference.Complete(prompt, 12, AllowAll(kVocab), &a);
  auto corrupt = faulty.Complete(prompt, 12, AllowAll(kVocab), &b);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(corrupt.ok());
  EXPECT_EQ(corrupt.value().tokens.size(), 12u);
  for (token::TokenId id : corrupt.value().tokens) {
    EXPECT_GE(id, 0);
    EXPECT_LT(static_cast<size_t>(id), kVocab);
  }
  EXPECT_NE(clean.value().tokens, corrupt.value().tokens);
  EXPECT_EQ(faulty.counts().corrupted, 1u);
}

TEST(FaultInjectionTest, CountsSumMatchesCalls) {
  SimulatedLlm inner = MakeInner();
  FaultInjectingBackend faulty(&inner, FaultProfile::Transient(0.4, 9));
  auto prompt = EncodeDigits("5,6,");
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    (void)faulty.Complete(prompt, 3, AllowAll(kVocab), &rng);
  }
  const FaultCounts& c = faulty.counts();
  EXPECT_EQ(c.calls, 50u);
  // Transient profile: no data faults, so every call is either clean or
  // exactly one transient error.
  EXPECT_EQ(c.truncated + c.corrupted, 0u);
  EXPECT_EQ(c.clean + c.unavailable + c.deadline_exceeded + c.rate_limited,
            50u);
  EXPECT_GT(c.faults(), 0u);
  EXPECT_GT(c.clean, 0u);
}

}  // namespace
}  // namespace lm
}  // namespace multicast
