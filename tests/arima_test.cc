#include "baselines/arima.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "ts/split.h"
#include "util/random.h"

namespace multicast {
namespace baselines {
namespace {

// Simulates an AR(2) process x_t = phi1 x_{t-1} + phi2 x_{t-2} + e_t.
std::vector<double> SimulateAr2(double phi1, double phi2, size_t n,
                                uint64_t seed, double sigma = 1.0) {
  Rng rng(seed);
  std::vector<double> x(n, 0.0);
  for (size_t t = 2; t < n; ++t) {
    x[t] = phi1 * x[t - 1] + phi2 * x[t - 2] +
           rng.NextGaussian(0.0, sigma);
  }
  return x;
}

TEST(ArimaTest, RecoversAr2Coefficients) {
  std::vector<double> x = SimulateAr2(0.6, -0.3, 4000, 42);
  ArimaOptions opts;
  opts.p = 2;
  opts.d = 0;
  opts.q = 0;
  auto model = ArimaModel::Fit(x, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_EQ(model.value().phi().size(), 2u);
  EXPECT_NEAR(model.value().phi()[0], 0.6, 0.05);
  EXPECT_NEAR(model.value().phi()[1], -0.3, 0.05);
  EXPECT_NEAR(model.value().sigma2(), 1.0, 0.1);
}

TEST(ArimaTest, RecoversMa1Coefficient) {
  // x_t = e_t + 0.7 e_{t-1}.
  Rng rng(43);
  size_t n = 6000;
  std::vector<double> e(n), x(n);
  for (size_t t = 0; t < n; ++t) {
    e[t] = rng.NextGaussian();
    x[t] = e[t] + (t > 0 ? 0.7 * e[t - 1] : 0.0);
  }
  ArimaOptions opts;
  opts.p = 0;
  opts.d = 0;
  opts.q = 1;
  auto model = ArimaModel::Fit(x, opts);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model.value().theta().size(), 1u);
  EXPECT_NEAR(model.value().theta()[0], 0.7, 0.08);
}

TEST(ArimaTest, LongHorizonForecastRevertsToMean) {
  std::vector<double> x = SimulateAr2(0.3, 0.1, 3000, 44);
  for (double& v : x) v += 30.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  ArimaOptions opts;
  opts.p = 2;
  opts.d = 0;
  opts.q = 0;
  auto model = ArimaModel::Fit(x, opts);
  ASSERT_TRUE(model.ok());
  auto fc = model.value().Forecast(200);
  ASSERT_TRUE(fc.ok());
  EXPECT_NEAR(fc.value().back(), mean, 1.0);
}

TEST(ArimaTest, DifferencingHandlesLinearTrend) {
  // Pure trend + small noise: ARIMA(0,1,0) forecast continues flat in
  // differences, i.e. keeps the last level shift.
  Rng rng(45);
  std::vector<double> x;
  for (int t = 0; t < 300; ++t) {
    x.push_back(2.0 * t + rng.NextGaussian(0.0, 0.1));
  }
  ArimaOptions opts;
  opts.p = 1;
  opts.d = 1;
  opts.q = 0;
  auto model = ArimaModel::Fit(x, opts);
  ASSERT_TRUE(model.ok());
  auto fc = model.value().Forecast(10);
  ASSERT_TRUE(fc.ok());
  // Forecast should continue the +2/step ramp.
  for (size_t h = 0; h < 10; ++h) {
    EXPECT_NEAR(fc.value()[h], 2.0 * (300 + static_cast<double>(h)), 2.5);
  }
}

TEST(ArimaTest, ForecastLengthAndFiniteness) {
  std::vector<double> x = SimulateAr2(0.5, 0.2, 300, 46);
  ArimaOptions opts;
  auto model = ArimaModel::Fit(x, opts);
  ASSERT_TRUE(model.ok());
  auto fc = model.value().Forecast(25);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc.value().size(), 25u);
  for (double v : fc.value()) EXPECT_TRUE(std::isfinite(v));
}

TEST(ArimaTest, RejectsBadInputs) {
  std::vector<double> tiny = {1.0, 2.0, 3.0};
  EXPECT_FALSE(ArimaModel::Fit(tiny, ArimaOptions{}).ok());
  ArimaOptions neg;
  neg.p = -1;
  std::vector<double> x = SimulateAr2(0.5, 0.0, 100, 47);
  EXPECT_FALSE(ArimaModel::Fit(x, neg).ok());
  auto model = ArimaModel::Fit(x, ArimaOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().Forecast(0).ok());
}

TEST(ArimaTest, AicStronglyPrefersAdequateModel) {
  // The true AR(2) must dominate a misspecified MA(1)-only model by a
  // wide AIC margin (nearby over-parameterized models differ only by
  // the 2k penalty, which is within estimation noise).
  std::vector<double> x = SimulateAr2(0.6, -0.3, 3000, 48);
  ArimaOptions ar2;
  ar2.p = 2;
  ar2.d = 0;
  ar2.q = 0;
  ArimaOptions ma1;
  ma1.p = 0;
  ma1.d = 0;
  ma1.q = 1;
  double aic_ar2 = ArimaModel::Fit(x, ar2).ValueOrDie().aic();
  double aic_ma1 = ArimaModel::Fit(x, ma1).ValueOrDie().aic();
  EXPECT_LT(aic_ar2 + 50.0, aic_ma1);
}

TEST(ArimaTest, AutoSelectRunsAndForecasts) {
  std::vector<double> x = SimulateAr2(0.7, -0.2, 400, 49);
  ArimaOptions opts;
  opts.auto_select = true;
  opts.max_p = 3;
  opts.max_q = 1;
  opts.max_d = 1;
  auto model = ArimaModel::FitAuto(x, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto fc = model.value().Forecast(10);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc.value().size(), 10u);
}

TEST(ArimaForecasterTest, MultivariateIndependentFits) {
  std::vector<double> a = SimulateAr2(0.5, 0.2, 200, 50);
  std::vector<double> b = SimulateAr2(-0.4, 0.1, 200, 51);
  ts::Frame frame = ts::Frame::FromSeries(
                        {ts::Series(a, "a"), ts::Series(b, "b")}, "f")
                        .ValueOrDie();
  ArimaForecaster f(ArimaOptions{});
  EXPECT_EQ(f.name(), "ARIMA");
  auto result = f.Forecast(frame, 12);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 2u);
  EXPECT_EQ(result.value().forecast.length(), 12u);
  EXPECT_EQ(result.value().ledger.total(), 0u);  // no LLM tokens
}

TEST(ArimaForecasterTest, BeatsNaiveOnArProcess) {
  std::vector<double> x = SimulateAr2(0.8, -0.15, 500, 52);
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(x, "x")}, "ar").ValueOrDie();
  auto split = ts::SplitHorizon(frame, 20).ValueOrDie();
  // Correctly specified order: the simulated process is stationary, so
  // d = 0 (the d = 1 default is for trending real-world data).
  ArimaOptions opts;
  opts.p = 2;
  opts.d = 0;
  opts.q = 0;
  ArimaForecaster f(opts);
  auto run = f.Forecast(split.train, 20);
  ASSERT_TRUE(run.ok());
  double arima_rmse = metrics::Rmse(split.test.dim(0).values(),
                                    run.value().forecast.dim(0).values())
                          .ValueOrDie();
  // Mean forecast (the process is mean-reverting) as the naive floor.
  std::vector<double> mean_fc(20, 0.0);
  double naive_rmse =
      metrics::Rmse(split.test.dim(0).values(), mean_fc).ValueOrDie();
  EXPECT_LT(arima_rmse, naive_rmse * 1.2);
}

}  // namespace
}  // namespace baselines
}  // namespace multicast
