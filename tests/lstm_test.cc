#include "baselines/lstm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "ts/split.h"

namespace multicast {
namespace baselines {
namespace {

// Small network options so tests run fast; the paper-scale 128-unit
// config is exercised once below.
LstmOptions SmallOptions() {
  LstmOptions opts;
  opts.hidden_units = 16;
  opts.epochs = 40;
  opts.window = 8;
  opts.dropout = 0.0;
  opts.seed = 5;
  return opts;
}

ts::Frame SineFrame(size_t n, size_t dims) {
  std::vector<ts::Series> series;
  for (size_t d = 0; d < dims; ++d) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = std::sin(2.0 * M_PI * (static_cast<double>(i) / 16.0) +
                      static_cast<double>(d)) *
                 (d + 1.0) +
             5.0 * static_cast<double>(d);
    }
    series.emplace_back(std::move(v), "d" + std::to_string(d));
  }
  return ts::Frame::FromSeries(std::move(series), "sine").ValueOrDie();
}

TEST(LstmNetworkTest, ParameterCountMatchesArchitecture) {
  LstmOptions opts;
  opts.hidden_units = 8;
  LstmNetwork net(3, 2, opts);
  // 4H(I+H) + 4H + OH + O = 32*11 + 32 + 16 + 2.
  EXPECT_EQ(net.num_parameters(), 352u + 32u + 16u + 2u);
}

TEST(LstmNetworkTest, PredictShape) {
  LstmNetwork net(2, 2, SmallOptions());
  std::vector<std::vector<double>> window(4, std::vector<double>{0.1, -0.2});
  std::vector<double> out = net.Predict(window);
  EXPECT_EQ(out.size(), 2u);
  for (double v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(LstmNetworkTest, TrainingReducesLoss) {
  // Learn the map "next value of a sine" on normalized data.
  LstmOptions opts = SmallOptions();
  LstmNetwork net(1, 1, opts);
  Rng rng(11);
  std::vector<std::vector<std::vector<double>>> windows;
  std::vector<std::vector<double>> targets;
  for (int s = 0; s < 60; ++s) {
    std::vector<std::vector<double>> w;
    for (int t = 0; t < 8; ++t) {
      w.push_back({std::sin((s + t) * 0.4)});
    }
    windows.push_back(w);
    targets.push_back({std::sin((s + 8) * 0.4)});
  }
  double first = net.TrainBatch(windows, targets, &rng).ValueOrDie();
  double last = first;
  for (int epoch = 0; epoch < 150; ++epoch) {
    last = net.TrainBatch(windows, targets, &rng).ValueOrDie();
  }
  EXPECT_LT(last, first * 0.2);
  EXPECT_LT(last, 0.05);
}

TEST(LstmNetworkTest, GradientMatchesFiniteDifference) {
  // The BPTT implementation against a numerical gradient of the batch
  // loss wrt one input value, via the prediction path.
  LstmOptions opts;
  opts.hidden_units = 4;
  opts.dropout = 0.0;
  opts.seed = 3;
  LstmNetwork net(1, 1, opts);
  // Probe: loss(x) = (Predict(window(x)) - y)^2 should be smooth; check
  // train step direction reduces it for a single sample.
  std::vector<std::vector<std::vector<double>>> w = {
      {{0.5}, {0.2}, {-0.1}}};
  std::vector<std::vector<double>> y = {{0.3}};
  Rng rng(1);
  double before = net.TrainBatch(w, y, &rng).ValueOrDie();
  double after = before;
  for (int i = 0; i < 30; ++i) {
    after = net.TrainBatch(w, y, &rng).ValueOrDie();
  }
  EXPECT_LT(after, before);
}

TEST(LstmNetworkTest, RejectsBadBatches) {
  LstmNetwork net(2, 1, SmallOptions());
  Rng rng(1);
  EXPECT_FALSE(net.TrainBatch({}, {}, &rng).ok());
  // Window step width mismatch.
  EXPECT_FALSE(net.TrainBatch({{{0.1}}}, {{0.5}}, &rng).ok());
  // Target size mismatch.
  EXPECT_FALSE(net.TrainBatch({{{0.1, 0.2}}}, {{0.5, 0.6}}, &rng).ok());
  // Count mismatch.
  EXPECT_FALSE(net.TrainBatch({{{0.1, 0.2}}}, {}, &rng).ok());
}

TEST(LstmForecasterTest, NameAndShape) {
  LstmForecaster f(SmallOptions());
  EXPECT_EQ(f.name(), "LSTM");
  auto result = f.Forecast(SineFrame(96, 2), 8);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().forecast.num_dims(), 2u);
  EXPECT_EQ(result.value().forecast.length(), 8u);
  EXPECT_EQ(result.value().forecast.dim(1).name(), "d1");
  EXPECT_EQ(result.value().ledger.total(), 0u);
}

TEST(LstmForecasterTest, LearnsSineWave) {
  LstmOptions opts = SmallOptions();
  opts.epochs = 60;
  LstmForecaster f(opts);
  ts::Frame frame = SineFrame(128, 1);
  auto split = ts::SplitHorizon(frame, 16).ValueOrDie();
  auto run = f.Forecast(split.train, 16);
  ASSERT_TRUE(run.ok());
  double rmse = metrics::Rmse(split.test.dim(0).values(),
                              run.value().forecast.dim(0).values())
                    .ValueOrDie();
  EXPECT_LT(rmse, 0.6);  // amplitude is 1
}

TEST(LstmForecasterTest, MultivariateForecastInRange) {
  LstmForecaster f(SmallOptions());
  ts::Frame frame = SineFrame(96, 3);
  auto result = f.Forecast(frame, 6);
  ASSERT_TRUE(result.ok());
  for (size_t d = 0; d < 3; ++d) {
    for (size_t t = 0; t < 6; ++t) {
      EXPECT_TRUE(std::isfinite(result.value().forecast.at(d, t)));
      // Stay within a generous band of the training range.
      EXPECT_LT(std::fabs(result.value().forecast.at(d, t)),
                5.0 * (d + 1) + 20.0);
    }
  }
}

TEST(LstmForecasterTest, DeterministicForSeed) {
  LstmOptions opts = SmallOptions();
  opts.epochs = 5;
  ts::Frame frame = SineFrame(64, 2);
  auto r1 = LstmForecaster(opts).Forecast(frame, 4);
  auto r2 = LstmForecaster(opts).Forecast(frame, 4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().forecast.dim(0).values(),
            r2.value().forecast.dim(0).values());
}

TEST(LstmForecasterTest, ShrinksWindowForShortHistory) {
  LstmOptions opts = SmallOptions();
  opts.window = 20;
  opts.epochs = 3;
  LstmForecaster f(opts);
  auto result = f.Forecast(SineFrame(18, 1), 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(LstmForecasterTest, RejectsTooShortHistory) {
  LstmForecaster f(SmallOptions());
  EXPECT_FALSE(f.Forecast(SineFrame(5, 1), 2).ok());
  EXPECT_FALSE(f.Forecast(SineFrame(64, 1), 0).ok());
}

TEST(LstmForecasterTest, DropoutStillConverges) {
  LstmOptions opts = SmallOptions();
  opts.dropout = 0.2;  // paper configuration
  opts.epochs = 60;
  LstmForecaster f(opts);
  ts::Frame frame = SineFrame(128, 1);
  auto split = ts::SplitHorizon(frame, 8).ValueOrDie();
  auto run = f.Forecast(split.train, 8);
  ASSERT_TRUE(run.ok());
  double rmse = metrics::Rmse(split.test.dim(0).values(),
                              run.value().forecast.dim(0).values())
                    .ValueOrDie();
  EXPECT_LT(rmse, 1.0);
}

}  // namespace
}  // namespace baselines
}  // namespace multicast
