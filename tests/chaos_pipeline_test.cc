// End-to-end acceptance tests of the resilience layer: the two behaviors
// the failure model promises are asserted here, not just observed in
// bench/ablation_chaos:
//   1. Under a 20% injected transient-fault rate with retries enabled,
//      every LLM-backed method still returns a full dims x horizon
//      forecast (no aborts).
//   2. With retries disabled and the backend fully dead, the fallback
//      chain demotes MultiCast -> LLMTime -> naive instead of erroring.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.h"
#include "forecast/fallback.h"
#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"

namespace multicast {
namespace forecast {
namespace {

ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 5.0 * std::sin(phase);
    b[i] = 50.0 - 20.0 * std::sin(phase);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

ResilienceConfig RetriesOn() {
  ResilienceConfig r;
  r.retries_enabled = true;
  r.retry.max_attempts = 4;
  r.max_redraws = 6;
  return r;
}

void ExpectFullShapeFinite(const ForecastResult& result, size_t dims,
                           size_t horizon) {
  ASSERT_EQ(result.forecast.num_dims(), dims);
  ASSERT_EQ(result.forecast.length(), horizon);
  for (size_t d = 0; d < dims; ++d) {
    for (size_t t = 0; t < horizon; ++t) {
      EXPECT_TRUE(std::isfinite(result.forecast.at(d, t)))
          << "dim " << d << " t " << t;
    }
  }
}

class ChaosMuxTest : public testing::TestWithParam<multiplex::MuxKind> {};

TEST_P(ChaosMuxTest, TwentyPercentTransientFaultsStillFullShape) {
  MultiCastOptions opts;
  opts.mux = GetParam();
  opts.num_samples = 4;
  opts.faults = lm::FaultProfile::Transient(0.20);
  opts.resilience = RetriesOn();
  MultiCastForecaster f(opts);
  auto r = f.Forecast(PeriodicFrame(96), 12);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectFullShapeFinite(r.value(), 2, 12);
  EXPECT_EQ(r.value().samples_requested, 4u);
  EXPECT_GE(r.value().samples_used, 1u);
  // The retry layer actually worked for its living.
  EXPECT_GT(r.value().retry_stats.calls, 0u);
  EXPECT_GE(r.value().retry_stats.attempts, r.value().retry_stats.calls);
}

TEST_P(ChaosMuxTest, TwentyPercentFullChaosStillFullShape) {
  // Adds truncation + corruption on top of the transient faults: the
  // salvage path must keep the shape contract too.
  MultiCastOptions opts;
  opts.mux = GetParam();
  opts.num_samples = 4;
  opts.faults = lm::FaultProfile::Chaos(0.20);
  opts.resilience = RetriesOn();
  MultiCastForecaster f(opts);
  auto r = f.Forecast(PeriodicFrame(96), 12);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectFullShapeFinite(r.value(), 2, 12);
}

TEST_P(ChaosMuxTest, DeterministicUnderChaos) {
  MultiCastOptions opts;
  opts.mux = GetParam();
  opts.num_samples = 3;
  opts.faults = lm::FaultProfile::Chaos(0.3, 77);
  opts.resilience = RetriesOn();
  MultiCastForecaster f1(opts), f2(opts);
  auto r1 = f1.Forecast(PeriodicFrame(72), 8);
  auto r2 = f2.Forecast(PeriodicFrame(72), 8);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(r1.value().forecast.dim(d).values(),
              r2.value().forecast.dim(d).values());
  }
  EXPECT_EQ(r1.value().degraded, r2.value().degraded);
  EXPECT_EQ(r1.value().samples_used, r2.value().samples_used);
  EXPECT_EQ(r1.value().retry_stats.attempts, r2.value().retry_stats.attempts);
}

TEST_P(ChaosMuxTest, CleanPathBitIdenticalWithFaultFieldsDefault) {
  // The resilience plumbing must not perturb the paper pipeline: default
  // options (no faults, no retries) produce the same forecast as before.
  MultiCastOptions plain;
  plain.mux = GetParam();
  plain.num_samples = 3;
  MultiCastOptions with_knobs = plain;
  with_knobs.faults = lm::FaultProfile::None();
  with_knobs.resilience.max_redraws = 9;  // no-op while nothing fails
  MultiCastForecaster f1(plain), f2(with_knobs);
  auto r1 = f1.Forecast(PeriodicFrame(72), 8);
  auto r2 = f2.Forecast(PeriodicFrame(72), 8);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(r1.value().forecast.dim(d).values(),
              r2.value().forecast.dim(d).values());
  }
  EXPECT_FALSE(r2.value().degraded);
  EXPECT_TRUE(r2.value().warnings.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ChaosMuxTest,
    testing::Values(multiplex::MuxKind::kDigitInterleave,
                    multiplex::MuxKind::kValueInterleave,
                    multiplex::MuxKind::kValueConcat),
    [](const testing::TestParamInfo<multiplex::MuxKind>& info) {
      return multiplex::MuxKindName(info.param);
    });

TEST(ChaosPipelineTest, LlmTimeSurvivesTwentyPercentFaults) {
  LlmTimeOptions opts;
  opts.num_samples = 4;
  opts.faults = lm::FaultProfile::Chaos(0.20);
  opts.resilience = RetriesOn();
  LlmTimeForecaster f(opts);
  auto r = f.Forecast(PeriodicFrame(96), 12);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().forecast.num_dims(), 2u);
  ASSERT_EQ(r.value().forecast.length(), 12u);
  EXPECT_EQ(r.value().samples_requested, 8u);  // 4 per dimension
}

TEST(ChaosPipelineTest, SaxPipelineSurvivesChaos) {
  MultiCastOptions opts;
  opts.quantization = Quantization::kSaxAlphabetic;
  opts.sax_segment_length = 3;
  opts.num_samples = 4;
  opts.faults = lm::FaultProfile::Chaos(0.20);
  opts.resilience = RetriesOn();
  MultiCastForecaster f(opts);
  auto r = f.Forecast(PeriodicFrame(96), 12);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectFullShapeFinite(r.value(), 2, 12);
}

TEST(ChaosPipelineTest, PureTruncationDegradesButKeepsShape) {
  // Every generation is truncated: no transient errors to retry, only
  // salvaged prefixes. The ragged aggregation must still deliver the
  // full horizon and flag the result degraded.
  MultiCastOptions opts;
  opts.num_samples = 4;
  opts.faults.truncation_rate = 1.0;
  opts.faults.truncation_keep_min = 0.3;
  MultiCastForecaster f(opts);
  auto r = f.Forecast(PeriodicFrame(96), 12);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectFullShapeFinite(r.value(), 2, 12);
  EXPECT_TRUE(r.value().degraded);
  EXPECT_FALSE(r.value().warnings.empty());
}

TEST(ChaosPipelineTest, DeadBackendWithoutRetriesFailsCleanly) {
  // Acceptance behavior 2a: retries disabled + total outage => MultiCast
  // reports a retryable error instead of crashing or fabricating data.
  MultiCastOptions opts;
  opts.num_samples = 3;
  opts.faults = lm::FaultProfile::Transient(1.0);
  opts.resilience.retries_enabled = false;
  opts.resilience.max_redraws = 2;
  MultiCastForecaster f(opts);
  auto r = f.Forecast(PeriodicFrame(72), 8);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsRetryable(r.status().code())) << r.status().ToString();
}

TEST(ChaosPipelineTest, FallbackChainDemotesInsteadOfErroring) {
  // Acceptance behavior 2b: the canonical chain on a dead backend serves
  // from a lower link with full shape.
  MultiCastOptions dead;
  dead.num_samples = 3;
  dead.faults = lm::FaultProfile::Transient(1.0);
  dead.resilience.retries_enabled = false;
  dead.resilience.max_redraws = 2;
  LlmTimeOptions dead_lt;
  dead_lt.num_samples = 3;
  dead_lt.faults = lm::FaultProfile::Transient(1.0);
  dead_lt.resilience.retries_enabled = false;
  dead_lt.resilience.max_redraws = 2;

  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(std::make_unique<MultiCastForecaster>(dead));
  chain.push_back(std::make_unique<LlmTimeForecaster>(dead_lt));
  chain.push_back(std::make_unique<baselines::NaiveLastForecaster>());
  FallbackForecaster fallback(std::move(chain));

  ts::Frame history = PeriodicFrame(72);
  auto r = fallback.Forecast(history, 8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().forecast.num_dims(), 2u);
  ASSERT_EQ(r.value().forecast.length(), 8u);
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(fallback.last_used(), "NaiveLast");
  EXPECT_EQ(fallback.last_used_index(), 2u);
  ASSERT_EQ(r.value().warnings.size(), 2u);
  // NaiveLast repeats the final observation of each dimension.
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_DOUBLE_EQ(r.value().forecast.at(d, 0),
                     history.at(d, history.length() - 1));
  }
}

TEST(ChaosPipelineTest, PartialOutageRecoversOnPrimary) {
  // With retries on, a 20% outage never reaches the fallback links.
  MultiCastOptions flaky;
  flaky.num_samples = 3;
  flaky.faults = lm::FaultProfile::Transient(0.20);
  flaky.resilience = RetriesOn();
  std::vector<std::unique_ptr<Forecaster>> chain;
  chain.push_back(std::make_unique<MultiCastForecaster>(flaky));
  chain.push_back(std::make_unique<baselines::NaiveLastForecaster>());
  FallbackForecaster fallback(std::move(chain));
  auto r = fallback.Forecast(PeriodicFrame(72), 8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(fallback.last_used_index(), 0u);
}

// --- ragged aggregation property tests -------------------------------

TEST(QuantileAggregateRaggedTest, EqualLengthsMatchDenseAggregate) {
  std::vector<std::vector<double>> samples = {
      {1.0, 10.0, 100.0}, {2.0, 20.0, 200.0}, {3.0, 30.0, 300.0}};
  auto dense = QuantileAggregate(samples, 0.5).ValueOrDie();
  bool held = true;
  auto ragged = QuantileAggregateRagged(samples, 0.5, 3, &held).ValueOrDie();
  EXPECT_EQ(ragged, dense);
  EXPECT_FALSE(held);
}

TEST(QuantileAggregateRaggedTest, ShorterSamplesDropOutOfTail) {
  std::vector<std::vector<double>> samples = {
      {1.0, 10.0, 100.0}, {3.0, 30.0}, {2.0}};
  auto r = QuantileAggregateRagged(samples, 0.5, 3, nullptr).ValueOrDie();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 2.0);   // median of {1, 3, 2}
  EXPECT_DOUBLE_EQ(r[1], 20.0);  // median of {10, 30}
  EXPECT_DOUBLE_EQ(r[2], 100.0);  // only sample 0 reaches t=2
}

TEST(QuantileAggregateRaggedTest, HoldsLastValueBeyondCoverage) {
  std::vector<std::vector<double>> samples = {{5.0, 7.0}, {9.0}};
  bool held = false;
  auto r = QuantileAggregateRagged(samples, 0.5, 5, &held).ValueOrDie();
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
  for (size_t t = 2; t < 5; ++t) EXPECT_DOUBLE_EQ(r[t], 7.0);
  EXPECT_TRUE(held);
}

TEST(QuantileAggregateRaggedTest, AlwaysReturnsRequestedLength) {
  // Property: whatever ragged mix of lengths survives, the output length
  // is exactly out_length — the shape guarantee degraded forecasts rely
  // on. Deterministically enumerated length patterns stand in for random
  // draws.
  for (size_t out_length : {1u, 4u, 9u}) {
    for (size_t pattern = 1; pattern < 32; ++pattern) {
      std::vector<std::vector<double>> samples;
      for (size_t s = 0; s < 5; ++s) {
        size_t len = 1 + (pattern * (s + 3)) % 9;
        std::vector<double> sample(len);
        for (size_t t = 0; t < len; ++t) {
          sample[t] = static_cast<double>(s * 100 + t);
        }
        samples.push_back(std::move(sample));
      }
      auto r = QuantileAggregateRagged(samples, 0.5, out_length, nullptr);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.value().size(), out_length);
    }
  }
}

TEST(QuantileAggregateRaggedTest, RejectsEmptyAndUncoveredStart) {
  EXPECT_FALSE(QuantileAggregateRagged({}, 0.5, 3, nullptr).ok());
  EXPECT_FALSE(QuantileAggregateRagged({{}, {}}, 0.5, 3, nullptr).ok());
  EXPECT_FALSE(QuantileAggregateRagged({{1.0}}, 0.0, 3, nullptr).ok());
  EXPECT_FALSE(QuantileAggregateRagged({{1.0}}, 1.0, 3, nullptr).ok());
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
