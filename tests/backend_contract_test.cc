// Contract tests every LanguageModel backend must satisfy, run against
// all implementations via a parameterized factory.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "lm/generator.h"
#include "lm/mixture_model.h"
#include "lm/ngram_model.h"
#include "token/codec.h"

namespace multicast {
namespace lm {
namespace {

struct BackendCase {
  const char* name;
  std::function<std::unique_ptr<LanguageModel>(size_t vocab)> make;
  ModelProfile profile;  // for end-to-end generation checks
};

BackendCase NGramCase() {
  return {"ngram",
          [](size_t vocab) {
            return std::make_unique<NGramLanguageModel>(vocab,
                                                        NGramOptions{});
          },
          ModelProfile::Llama2_7B()};
}

BackendCase MixtureCase() {
  return {"mixture",
          [](size_t vocab) {
            return std::make_unique<MixtureLanguageModel>(vocab,
                                                          MixtureOptions{});
          },
          ModelProfile::CtwMixture()};
}

class BackendContractTest : public testing::TestWithParam<BackendCase> {};

TEST_P(BackendContractTest, DistributionIsProperEverywhere) {
  auto model = GetParam().make(11);
  Rng rng(13);
  for (int step = 0; step < 300; ++step) {
    std::vector<double> p = model->NextDistribution();
    ASSERT_EQ(p.size(), 11u);
    double sum = 0.0;
    for (double v : p) {
      ASSERT_GT(v, 0.0) << GetParam().name << " step " << step;
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9) << GetParam().name;
    model->Observe(static_cast<token::TokenId>(rng.NextBounded(11)));
  }
}

TEST_P(BackendContractTest, ContextLengthTracksObserves) {
  auto model = GetParam().make(5);
  EXPECT_EQ(model->context_length(), 0u);
  for (int i = 0; i < 17; ++i) model->Observe(i % 5);
  EXPECT_EQ(model->context_length(), 17u);
  model->Reset();
  EXPECT_EQ(model->context_length(), 0u);
}

TEST_P(BackendContractTest, ResetRestoresUniform) {
  auto model = GetParam().make(6);
  for (int i = 0; i < 60; ++i) model->Observe(2);
  model->Reset();
  std::vector<double> p = model->NextDistribution();
  for (double v : p) EXPECT_NEAR(v, 1.0 / 6, 1e-9) << GetParam().name;
}

TEST_P(BackendContractTest, CycleContinuationIsLearned) {
  auto model = GetParam().make(7);
  for (int rep = 0; rep < 40; ++rep) {
    for (token::TokenId t : {0, 3, 6}) model->Observe(t);
  }
  // Context ends ...0 3 6 -> expect 0 with high probability.
  std::vector<double> p = model->NextDistribution();
  EXPECT_GT(p[0], 0.5) << GetParam().name;
}

TEST_P(BackendContractTest, GeneratorHonorsGrammarEndToEnd) {
  SimulatedLlm llm(GetParam().profile, 11);
  std::string prompt;
  for (int i = 0; i < 30; ++i) prompt += "42,";
  auto ids = token::Encode(prompt, token::Vocabulary::Digits()).ValueOrDie();
  GrammarMask mask = [](size_t step) {
    std::vector<bool> allowed(11, step % 3 != 2);
    allowed[10] = step % 3 == 2;
    return allowed;
  };
  Rng rng(3);
  auto gen = llm.Complete(ids, 30, mask, &rng);
  ASSERT_TRUE(gen.ok()) << GetParam().name;
  std::string text =
      token::Decode(gen.value().tokens, token::Vocabulary::Digits())
          .ValueOrDie();
  for (size_t i = 0; i < text.size(); ++i) {
    if (i % 3 == 2) {
      ASSERT_EQ(text[i], ',') << GetParam().name << ": " << text;
    } else {
      ASSERT_TRUE(text[i] >= '0' && text[i] <= '9')
          << GetParam().name << ": " << text;
    }
  }
}

TEST_P(BackendContractTest, GeneratorDeterministicPerSeed) {
  SimulatedLlm llm(GetParam().profile, 11);
  auto ids =
      token::Encode("17,23,17,23,", token::Vocabulary::Digits()).ValueOrDie();
  Rng a(9), b(9);
  auto ga = llm.Complete(ids, 12, AllowAll(11), &a);
  auto gb = llm.Complete(ids, 12, AllowAll(11), &b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga.value().tokens, gb.value().tokens) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContractTest,
                         testing::Values(NGramCase(), MixtureCase()),
                         [](const testing::TestParamInfo<BackendCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace lm
}  // namespace multicast
