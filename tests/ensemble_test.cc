#include "forecast/ensemble.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.h"
#include "forecast/multicast_forecaster.h"

namespace multicast {
namespace forecast {
namespace {

ts::Frame RampFrame(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return ts::Frame::FromSeries({ts::Series(v, "x")}, "ramp").ValueOrDie();
}

std::unique_ptr<Forecaster> Naive() {
  return std::make_unique<baselines::NaiveLastForecaster>();
}
std::unique_ptr<Forecaster> Drift() {
  return std::make_unique<baselines::DriftForecaster>();
}

TEST(EnsembleTest, NameListsMembers) {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(Naive());
  members.push_back(Drift());
  EnsembleForecaster ensemble(std::move(members));
  EXPECT_EQ(ensemble.name(), "Ensemble(NaiveLast, Drift)");
  EXPECT_EQ(ensemble.num_members(), 2u);
}

TEST(EnsembleTest, SingleMemberIsIdentity) {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(Drift());
  EnsembleForecaster ensemble(std::move(members));
  baselines::DriftForecaster drift;
  ts::Frame frame = RampFrame(20);
  auto e = ensemble.Forecast(frame, 4).ValueOrDie();
  auto d = drift.Forecast(frame, 4).ValueOrDie();
  EXPECT_EQ(e.forecast.dim(0).values(), d.forecast.dim(0).values());
}

TEST(EnsembleTest, MedianOfThreeMembers) {
  // naive predicts last (19), drift predicts 20, 21, ...; with a third
  // member repeating naive, the median equals naive's value.
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(Naive());
  members.push_back(Drift());
  members.push_back(Naive());
  EnsembleForecaster ensemble(std::move(members));
  auto r = ensemble.Forecast(RampFrame(20), 3).ValueOrDie();
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(r.forecast.at(0, t), 19.0);
  }
}

TEST(EnsembleTest, MedianOfTwoIsMidpoint) {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(Naive());   // 19
  members.push_back(Drift());   // 20, 21, 22
  EnsembleForecaster ensemble(std::move(members));
  auto r = ensemble.Forecast(RampFrame(20), 3).ValueOrDie();
  EXPECT_DOUBLE_EQ(r.forecast.at(0, 0), 19.5);
  EXPECT_DOUBLE_EQ(r.forecast.at(0, 2), 20.5);
}

TEST(EnsembleTest, LedgerSumsAcrossLlmMembers) {
  MultiCastOptions mc;
  mc.num_samples = 2;
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(std::make_unique<MultiCastForecaster>(mc));
  members.push_back(Naive());
  EnsembleForecaster ensemble(std::move(members));

  std::vector<double> v(48);
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::sin(i * 0.4) * 5 + 10;
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "s")}, "f").ValueOrDie();
  auto r = ensemble.Forecast(frame, 4).ValueOrDie();
  EXPECT_GT(r.ledger.total(), 0u);

  MultiCastForecaster solo(mc);
  auto solo_r = solo.Forecast(frame, 4).ValueOrDie();
  EXPECT_EQ(r.ledger.total(), solo_r.ledger.total());
}

TEST(EnsembleTest, MemberFailurePropagates) {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(Naive());
  MultiCastOptions bad;
  bad.num_samples = 0;  // invalid: the member will fail
  members.push_back(std::make_unique<MultiCastForecaster>(bad));
  EnsembleForecaster ensemble(std::move(members));
  EXPECT_FALSE(ensemble.Forecast(RampFrame(30), 3).ok());
}

}  // namespace
}  // namespace forecast
}  // namespace multicast
