#include "scale/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace multicast {
namespace scale {
namespace {

ts::Series Ramp(size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
  }
  return ts::Series(std::move(v), "ramp");
}

TEST(ScalerTest, FitProducesInRangeValues) {
  ScalerOptions opts;
  opts.digits = 2;
  auto p = FitScaler(Ramp(100, -5.0, 5.0), opts);
  ASSERT_TRUE(p.ok());
  auto scaled = ScaleValues(Ramp(100, -5.0, 5.0).values(), p.value());
  for (int64_t v : scaled) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 99);
  }
}

TEST(ScalerTest, MinMapsNearZero) {
  ScalerOptions opts;
  opts.digits = 3;
  ts::Series s = Ramp(50, 10.0, 20.0);
  auto p = FitScaler(s, opts);
  ASSERT_TRUE(p.ok());
  auto scaled = ScaleValues({10.0}, p.value());
  EXPECT_EQ(scaled[0], 0);
}

TEST(ScalerTest, RoundTripWithinBound) {
  ScalerOptions opts;
  opts.digits = 3;
  ts::Series s = Ramp(200, -7.0, 13.0);
  auto p = FitScaler(s, opts);
  ASSERT_TRUE(p.ok());
  double bound = MaxRoundTripError(p.value());
  auto scaled = ScaleValues(s.values(), p.value());
  auto back = DescaleValues(scaled, p.value());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(std::fabs(back[i] - s[i]), bound + 1e-12);
  }
}

TEST(ScalerTest, MoreDigitsTightenError) {
  ts::Series s = Ramp(100, 0.0, 1.0);
  ScalerOptions o2, o4;
  o2.digits = 2;
  o4.digits = 4;
  double e2 = MaxRoundTripError(FitScaler(s, o2).ValueOrDie());
  double e4 = MaxRoundTripError(FitScaler(s, o4).ValueOrDie());
  EXPECT_LT(e4, e2 / 50.0);
}

TEST(ScalerTest, HeadroomLeavesSpace) {
  ScalerOptions opts;
  opts.digits = 2;
  opts.headroom = 0.2;
  opts.upper_percentile = 1.0;
  ts::Series s = Ramp(100, 0.0, 10.0);
  auto p = FitScaler(s, opts);
  ASSERT_TRUE(p.ok());
  // Max training value maps to ~80% of the range, leaving room above.
  auto scaled = ScaleValues({10.0}, p.value());
  EXPECT_LE(scaled[0], 80);
  // A 20% overshoot beyond the training max still fits unclipped.
  auto over = ScaleValues({12.0}, p.value());
  EXPECT_LT(over[0], 99);
}

TEST(ScalerTest, OutOfRangeClips) {
  ScalerOptions opts;
  opts.digits = 2;
  ts::Series s = Ramp(100, 0.0, 10.0);
  auto p = FitScaler(s, opts);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ScaleValues({-100.0}, p.value())[0], 0);
  EXPECT_EQ(ScaleValues({1000.0}, p.value())[0], 99);
}

TEST(ScalerTest, ConstantSeriesMidRange) {
  ScalerOptions opts;
  opts.digits = 2;
  ts::Series s(std::vector<double>(10, 5.0), "const");
  auto p = FitScaler(s, opts);
  ASSERT_TRUE(p.ok());
  auto scaled = ScaleValues(s.values(), p.value());
  EXPECT_GT(scaled[0], 30);
  EXPECT_LT(scaled[0], 70);
  auto back = DescaleValues(scaled, p.value());
  EXPECT_NEAR(back[0], 5.0, 0.5);
}

TEST(ScalerTest, RejectsBadOptions) {
  ts::Series s = Ramp(10, 0.0, 1.0);
  ScalerOptions bad;
  bad.digits = 0;
  EXPECT_FALSE(FitScaler(s, bad).ok());
  bad.digits = 10;
  EXPECT_FALSE(FitScaler(s, bad).ok());
  bad = ScalerOptions{};
  bad.upper_percentile = 0.0;
  EXPECT_FALSE(FitScaler(s, bad).ok());
  bad = ScalerOptions{};
  bad.headroom = 1.0;
  EXPECT_FALSE(FitScaler(s, bad).ok());
}

TEST(ScalerTest, RejectsEmptySeries) {
  EXPECT_FALSE(FitScaler(ts::Series(), ScalerOptions{}).ok());
}

TEST(ScalerParamsTest, MaxValueByDigits) {
  ScalerParams p;
  p.digits = 1;
  EXPECT_EQ(p.MaxValue(), 9);
  p.digits = 2;
  EXPECT_EQ(p.MaxValue(), 99);
  p.digits = 5;
  EXPECT_EQ(p.MaxValue(), 99999);
}

TEST(ScalerTest, OutlierRobustPercentile) {
  // One huge outlier should not crush the resolution of the bulk when
  // the percentile is below 1.
  std::vector<double> v(100, 0.0);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i % 10);
  v[50] = 1e6;
  ScalerOptions opts;
  opts.digits = 2;
  opts.upper_percentile = 0.95;
  auto p = FitScaler(ts::Series(v, "x"), opts);
  ASSERT_TRUE(p.ok());
  // Values 0..9 should spread over a meaningful part of the range.
  auto scaled = ScaleValues({0.0, 9.0}, p.value());
  EXPECT_GT(scaled[1] - scaled[0], 20);
}

}  // namespace
}  // namespace scale
}  // namespace multicast
