#include "ts/split.h"

#include <gtest/gtest.h>

namespace multicast {
namespace ts {
namespace {

Frame MakeFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = static_cast<double>(i) * 2;
  }
  return Frame::FromSeries({Series(a, "a"), Series(b, "b")}, "f")
      .ValueOrDie();
}

TEST(SplitTest, HorizonSplitsTail) {
  auto r = SplitHorizon(MakeFrame(10), 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().train.length(), 7u);
  EXPECT_EQ(r.value().test.length(), 3u);
  EXPECT_DOUBLE_EQ(r.value().test.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(r.value().train.at(1, 6), 12.0);
}

TEST(SplitTest, ZeroHorizonRejected) {
  EXPECT_FALSE(SplitHorizon(MakeFrame(10), 0).ok());
}

TEST(SplitTest, HorizonTooLargeRejected) {
  EXPECT_FALSE(SplitHorizon(MakeFrame(10), 9).ok());
  EXPECT_FALSE(SplitHorizon(MakeFrame(10), 10).ok());
}

TEST(SplitTest, FractionSplit) {
  auto r = SplitFraction(MakeFrame(100), 0.8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().train.length(), 80u);
  EXPECT_EQ(r.value().test.length(), 20u);
}

TEST(SplitTest, FractionBoundsRejected) {
  EXPECT_FALSE(SplitFraction(MakeFrame(10), 0.0).ok());
  EXPECT_FALSE(SplitFraction(MakeFrame(10), 1.0).ok());
  EXPECT_FALSE(SplitFraction(MakeFrame(10), -0.5).ok());
}

TEST(SplitTest, TrainTestConcatenateToOriginal) {
  Frame f = MakeFrame(20);
  auto r = SplitHorizon(f, 5);
  ASSERT_TRUE(r.ok());
  for (size_t d = 0; d < f.num_dims(); ++d) {
    for (size_t t = 0; t < f.length(); ++t) {
      double expected = f.at(d, t);
      double got = t < 15 ? r.value().train.at(d, t)
                          : r.value().test.at(d, t - 15);
      EXPECT_DOUBLE_EQ(got, expected);
    }
  }
}

}  // namespace
}  // namespace ts
}  // namespace multicast
