#include "lm/sampler.h"

#include <gtest/gtest.h>

namespace multicast {
namespace lm {
namespace {

TEST(GreedyTest, PicksArgmaxWithinMask) {
  std::vector<double> p = {0.1, 0.6, 0.3};
  std::vector<bool> all(3, true);
  EXPECT_EQ(GreedyToken(p, all).ValueOrDie(), 1);
  std::vector<bool> no_mid = {true, false, true};
  EXPECT_EQ(GreedyToken(p, no_mid).ValueOrDie(), 2);
}

TEST(GreedyTest, FailsWhenMaskKillsSupport) {
  std::vector<double> p = {0.5, 0.5, 0.0};
  std::vector<bool> only_zero_prob = {false, false, true};
  EXPECT_FALSE(GreedyToken(p, only_zero_prob).ok());
  std::vector<bool> none(3, false);
  EXPECT_FALSE(GreedyToken(p, none).ok());
}

TEST(SamplerTest, ShapeMismatchRejected) {
  Rng rng(1);
  SamplerOptions opts;
  EXPECT_FALSE(SampleToken({0.5, 0.5}, {true}, opts, &rng).ok());
  EXPECT_FALSE(SampleToken({}, {}, opts, &rng).ok());
}

TEST(SamplerTest, NeverSamplesMaskedToken) {
  Rng rng(7);
  SamplerOptions opts;
  opts.temperature = 1.0;
  std::vector<double> p = {0.3, 0.3, 0.4};
  std::vector<bool> mask = {true, false, true};
  for (int i = 0; i < 2000; ++i) {
    auto t = SampleToken(p, mask, opts, &rng);
    ASSERT_TRUE(t.ok());
    EXPECT_NE(t.value(), 1);
  }
}

TEST(SamplerTest, TemperatureOneMatchesDistribution) {
  Rng rng(11);
  SamplerOptions opts;
  opts.temperature = 1.0;
  std::vector<double> p = {0.2, 0.5, 0.3};
  std::vector<bool> all(3, true);
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[SampleToken(p, all, opts, &rng).ValueOrDie()];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.02);
}

TEST(SamplerTest, LowTemperatureSharpens) {
  Rng rng(13);
  SamplerOptions opts;
  opts.temperature = 0.25;
  std::vector<double> p = {0.4, 0.6};
  std::vector<bool> all(2, true);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ones += SampleToken(p, all, opts, &rng).ValueOrDie();
  }
  // (0.6/0.4)^4 ~ 5x ratio -> p(1) ~ 0.835.
  EXPECT_GT(ones / static_cast<double>(n), 0.75);
}

TEST(SamplerTest, HighTemperatureFlattens) {
  Rng rng(17);
  SamplerOptions opts;
  opts.temperature = 10.0;
  std::vector<double> p = {0.1, 0.9};
  std::vector<bool> all(2, true);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ones += SampleToken(p, all, opts, &rng).ValueOrDie();
  }
  EXPECT_LT(ones / static_cast<double>(n), 0.65);
  EXPECT_GT(ones / static_cast<double>(n), 0.45);
}

TEST(SamplerTest, ZeroTemperatureIsGreedy) {
  Rng rng(19);
  SamplerOptions opts;
  opts.temperature = 0.0;
  std::vector<double> p = {0.2, 0.5, 0.3};
  std::vector<bool> all(3, true);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleToken(p, all, opts, &rng).ValueOrDie(), 1);
  }
}

TEST(SamplerTest, TopKRestrictsSupport) {
  Rng rng(23);
  SamplerOptions opts;
  opts.temperature = 1.0;
  opts.top_k = 2;
  std::vector<double> p = {0.05, 0.5, 0.05, 0.4};
  std::vector<bool> all(4, true);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 5000; ++i) {
    ++counts[SampleToken(p, all, opts, &rng).ValueOrDie()];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[3], 0);
}

TEST(SamplerTest, TopPKeepsNucleusOnly) {
  Rng rng(41);
  SamplerOptions opts;
  opts.temperature = 1.0;
  opts.top_p = 0.8;
  // Sorted weights 0.5, 0.3, 0.15, 0.05: nucleus at 0.8 keeps {0, 1}.
  std::vector<double> p = {0.5, 0.3, 0.15, 0.05};
  std::vector<bool> all(4, true);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 5000; ++i) {
    ++counts[SampleToken(p, all, opts, &rng).ValueOrDie()];
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 0);
}

TEST(SamplerTest, TopPOneKeepsEverything) {
  Rng rng(43);
  SamplerOptions opts;
  opts.temperature = 1.0;
  opts.top_p = 0.9999;  // nucleus covers all but a sliver
  std::vector<double> p = {0.4, 0.3, 0.2, 0.1};
  std::vector<bool> all(4, true);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[SampleToken(p, all, opts, &rng).ValueOrDie()];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(SamplerTest, TopPRespectsMask) {
  Rng rng(47);
  SamplerOptions opts;
  opts.top_p = 0.5;
  std::vector<double> p = {0.9, 0.05, 0.05};
  std::vector<bool> mask = {false, true, true};
  for (int i = 0; i < 500; ++i) {
    auto t = SampleToken(p, mask, opts, &rng);
    ASSERT_TRUE(t.ok());
    EXPECT_NE(t.value(), 0);
  }
}

TEST(SamplerTest, LogitBiasSkewsUp) {
  Rng rng(53);
  SamplerOptions biased;
  biased.temperature = 1.0;
  biased.logit_bias_slope = 2.0;
  std::vector<double> p(10, 0.1);
  std::vector<bool> all(10, true);
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    mean += SampleToken(p, all, biased, &rng).ValueOrDie();
  }
  mean /= n;
  // Uniform would give 4.5; positive slope pushes toward 9.
  EXPECT_GT(mean, 5.5);
}

TEST(SamplerTest, FailsWhenAllowedMassIsZero) {
  Rng rng(29);
  SamplerOptions opts;
  std::vector<double> p = {1.0, 0.0};
  std::vector<bool> only_second = {false, true};
  EXPECT_FALSE(SampleToken(p, only_second, opts, &rng).ok());
}

TEST(SamplerTest, DeterministicGivenSeed) {
  SamplerOptions opts;
  std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  std::vector<bool> all(4, true);
  Rng a(31), b(31);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SampleToken(p, all, opts, &a).ValueOrDie(),
              SampleToken(p, all, opts, &b).ValueOrDie());
  }
}

}  // namespace
}  // namespace lm
}  // namespace multicast
