// Tests of speculative (draft-then-verify) decoding, in three layers:
//
//  1. The draft seam — RewindableSession's commit/peek/verify contract
//     against fresh-replay ground truth, the template and n-gram
//     drafters' proposal rules, SpecStats arithmetic and its metrics
//     round trip.
//  2. Scheduler mechanics — hand-built speculative jobs decode the
//     exact token sequences of their plain twins (oracle drafts, hostile
//     drafts, k beyond the budget), with honest SpecStats accounting.
//  3. The transparency contract: a pipeline with `speculative` set must
//     produce the plain run-to-completion result bit for bit at every
//     draft length, batch size and thread count — clean, under chaos
//     with retries, through deadline degradation and mid-flight cancel,
//     for both drafter kinds, SAX quantization and LLMTime (the
//     speculative sibling of batch_scheduler_test's invariance suite).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_scheduler.h"
#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "lm/draft.h"
#include "lm/generator.h"
#include "lm/profiles.h"
#include "token/vocabulary.h"
#include "ts/frame.h"
#include "util/metrics.h"

namespace multicast {
namespace batch {
namespace {

constexpr uint64_t kSeed = 0x5eed;

// ---------------------------------------------------------------------
// Layer 1: the draft seam.
// ---------------------------------------------------------------------

std::unique_ptr<lm::LanguageModel> FreshModel(
    const std::vector<token::TokenId>& observed) {
  const size_t vocab = token::Vocabulary::Digits().size();
  auto model = lm::NewDecoderModel(lm::ModelProfile::Llama2_7B(), vocab);
  for (token::TokenId t : observed) model->Observe(t);
  return model;
}

TEST(RewindableSessionTest, PeekMatchesFreshReplayAfterCommits) {
  std::vector<token::TokenId> context = {1, 2, 3};
  lm::RewindableSession session(FreshModel(context));
  for (token::TokenId t : {4, 5, 6, 1, 2}) {
    session.Commit(t);
    context.push_back(t);
    EXPECT_EQ(session.Peek()->NextDistribution(),
              FreshModel(context)->NextDistribution())
        << "after committing " << context.size() - 3 << " tokens";
  }
}

TEST(RewindableSessionTest, VerifyTokensScoresEveryDraftPosition) {
  const std::vector<token::TokenId> context = {1, 2, 3};
  const std::vector<token::TokenId> draft = {7, 8, 9};
  lm::RewindableSession session(FreshModel(context));
  std::vector<std::vector<double>> dists;
  session.VerifyTokens(draft, &dists);
  ASSERT_EQ(dists.size(), draft.size() + 1);
  // dists[i] must equal the fresh-replay distribution after the
  // committed context plus draft[0..i) — including positions past any
  // would-be rejection (the verify pass scores the whole draft).
  std::vector<token::TokenId> replay = context;
  for (size_t i = 0; i <= draft.size(); ++i) {
    EXPECT_EQ(dists[i], FreshModel(replay)->NextDistribution())
        << "verify position " << i;
    if (i < draft.size()) replay.push_back(draft[i]);
  }
  // Verification must not have committed anything.
  EXPECT_EQ(session.Peek()->NextDistribution(),
            FreshModel(context)->NextDistribution());
}

TEST(RewindableSessionTest, RefreezeBoundsTheReplayTail) {
  std::vector<token::TokenId> context = {1, 2, 3};
  lm::RewindableSession session(FreshModel(context), /*refreeze_every=*/4);
  for (int i = 0; i < 10; ++i) {
    token::TokenId t = static_cast<token::TokenId>(i % 7);
    session.Commit(t);
    context.push_back(t);
    EXPECT_LT(session.tail_length(), 4u);
  }
  // 10 commits at refreeze period 4: two refreezes, tail of 2 left.
  EXPECT_EQ(session.tail_length(), 2u);
  EXPECT_EQ(session.Peek()->NextDistribution(),
            FreshModel(context)->NextDistribution());
}

std::vector<lm::GrammarMask::Shared> AllowAllCycle(size_t positions) {
  const size_t vocab = token::Vocabulary::Digits().size();
  return lm::HoistGrammarCycle(lm::AllowAll(vocab), positions, vocab)
      .ValueOrDie();
}

TEST(TemplateDraftModelTest, ProposesTheTemplateFromAnyPosition) {
  lm::TemplateDraftModel draft({1, 2, 3, 4, 5});
  auto masks = AllowAllCycle(8);
  std::vector<token::TokenId> out;
  draft.Propose(masks, 1, 3, &out);
  EXPECT_EQ(out, (std::vector<token::TokenId>{2, 3, 4}));
  out.clear();
  // Truncates at the template's end rather than inventing tokens.
  draft.Propose(masks, 4, 3, &out);
  EXPECT_EQ(out, (std::vector<token::TokenId>{5}));
  out.clear();
  draft.Propose(masks, 7, 3, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TemplateDraftModelTest, StopsAtTheFirstGrammarViolation) {
  const size_t vocab = token::Vocabulary::Digits().size();
  lm::TemplateDraftModel draft({1, 2, 3, 4});
  // Position grammar that forbids token 3 everywhere: the proposal run
  // must stop before it (a grammar-invalid draft can never be accepted).
  auto mask = std::make_shared<const std::vector<bool>>([&] {
    std::vector<bool> allowed(vocab, true);
    allowed[3] = false;
    return allowed;
  }());
  std::vector<lm::GrammarMask::Shared> masks = {mask};
  std::vector<token::TokenId> out;
  draft.Propose(masks, 0, 4, &out);
  EXPECT_EQ(out, (std::vector<token::TokenId>{1, 2}));
}

TEST(NGramDraftModelTest, DeterministicAndGrammarObedient) {
  const size_t vocab = token::Vocabulary::Digits().size();
  const std::vector<token::TokenId> prompt = {1, 2, 3, 1, 2, 3, 1, 2};
  lm::DraftFactory factory = lm::MakeNGramDraftFactory(vocab);
  auto a = factory(prompt);
  auto b = factory(prompt);
  auto masks = AllowAllCycle(4);
  std::vector<token::TokenId> out_a, out_b;
  a->Propose(masks, prompt.size(), 4, &out_a);
  b->Propose(masks, prompt.size(), 4, &out_b);
  EXPECT_EQ(out_a, out_b);
  ASSERT_FALSE(out_a.empty());
  // A strongly periodic prompt ending in ...1,2 makes 3 the argmax.
  EXPECT_EQ(out_a[0], 3);
  // Observed tokens shift the context for later proposals, still
  // deterministically.
  a->Observe(out_a[0]);
  b->Observe(out_b[0]);
  out_a.clear();
  out_b.clear();
  a->Propose(masks, prompt.size() + 1, 4, &out_a);
  b->Propose(masks, prompt.size() + 1, 4, &out_b);
  EXPECT_EQ(out_a, out_b);
}

TEST(SpecStatsTest, ArithmeticAndDerivedRates) {
  SpecStats a;
  a.steps = 10;
  a.drafted = 30;
  a.accepted = 12;
  a.emitted = 22;
  EXPECT_EQ(a.rejected(), 18u);
  EXPECT_EQ(a.verified(), 40u);
  EXPECT_DOUBLE_EQ(a.acceptance_rate(), 0.4);
  EXPECT_DOUBLE_EQ(a.wasted_verify_fraction(), 18.0 / 40.0);

  SpecStats b = a;
  b += a;
  EXPECT_EQ(b.steps, 20u);
  EXPECT_EQ(b.drafted, 60u);
  SpecStats delta = b - a;
  EXPECT_EQ(delta.steps, a.steps);
  EXPECT_EQ(delta.drafted, a.drafted);
  EXPECT_EQ(delta.accepted, a.accepted);
  EXPECT_EQ(delta.emitted, a.emitted);
  // Saturating: a regressed counter clamps to zero, never wraps.
  SpecStats none;
  EXPECT_EQ((none - a).steps, 0u);
  EXPECT_DOUBLE_EQ(none.acceptance_rate(), 0.0);
  EXPECT_DOUBLE_EQ(none.wasted_verify_fraction(), 0.0);
}

TEST(SpecStatsTest, SurvivesTheMetricsRoundTrip) {
  BatchStats stats;
  stats.submitted = 3;
  stats.spec.steps = 7;
  stats.spec.drafted = 21;
  stats.spec.accepted = 9;
  stats.spec.emitted = 16;
  util::MetricsRegistry registry;
  PublishBatchStats(stats, &registry, "batch.");
  BatchStats back = BatchStatsFromSnapshot(registry.Snapshot(), "batch.");
  EXPECT_EQ(back.spec.steps, stats.spec.steps);
  EXPECT_EQ(back.spec.drafted, stats.spec.drafted);
  EXPECT_EQ(back.spec.accepted, stats.spec.accepted);
  EXPECT_EQ(back.spec.emitted, stats.spec.emitted);
}

// ---------------------------------------------------------------------
// Layer 2: scheduler mechanics with hand-built speculative jobs.
// ---------------------------------------------------------------------

// A decode job over the digit vocabulary, optionally speculative.
DecodeJobSpec MakeJob(size_t num_tokens, Rng* rng,
                      std::unique_ptr<lm::DraftModel> draft = nullptr,
                      size_t draft_k = 0) {
  const size_t vocab = token::Vocabulary::Digits().size();
  DecodeJobSpec spec;
  spec.session = lm::NewDecoderModel(lm::ModelProfile::Llama2_7B(), vocab);
  for (token::TokenId t : {1, 2, 3}) spec.session->Observe(t);
  spec.num_tokens = num_tokens;
  spec.masks = AllowAllCycle(num_tokens);
  spec.rng = rng;
  spec.draft = std::move(draft);
  spec.draft_k = draft_k;
  return spec;
}

std::vector<token::TokenId> PlainDecode(size_t num_tokens) {
  BatchScheduler scheduler(BatchPolicy{});
  Rng rng(kSeed, 1);
  BatchTicket t = scheduler.Submit(MakeJob(num_tokens, &rng));
  return scheduler.Await(t).ValueOrDie().tokens;
}

TEST(SpeculativeSchedulerTest, HostileDraftStillDecodesThePlainTokens) {
  const size_t n = 12;
  std::vector<token::TokenId> plain = PlainDecode(n);
  BatchScheduler scheduler(BatchPolicy{});
  Rng rng(kSeed, 1);
  // A template that deliberately disagrees everywhere exercises the
  // corrective-token path: every step rejects the draft and emits the
  // one token the plain loop would have sampled.
  std::vector<token::TokenId> hostile(n);
  for (size_t i = 0; i < n; ++i) hostile[i] = plain[i] == 0 ? 1 : 0;
  BatchTicket t = scheduler.Submit(MakeJob(
      n, &rng, std::make_unique<lm::TemplateDraftModel>(hostile), 4));
  DecodeOutput out = scheduler.Await(t).ValueOrDie();
  EXPECT_EQ(out.tokens, plain);
  EXPECT_EQ(out.spec.emitted, n);
  EXPECT_EQ(out.spec.steps, n);  // nothing accepted: one token per step
  EXPECT_EQ(out.spec.accepted, 0u);
  EXPECT_GT(out.spec.drafted, 0u);
  BatchStats stats = scheduler.stats();
  EXPECT_EQ(stats.spec.emitted, n);
  EXPECT_EQ(stats.slot_steps, out.spec.steps);
}

TEST(SpeculativeSchedulerTest, OracleDraftRetiresInFewSteps) {
  const size_t n = 12;
  const size_t k = 3;
  std::vector<token::TokenId> plain = PlainDecode(n);
  BatchScheduler scheduler(BatchPolicy{});
  Rng rng(kSeed, 1);
  // A template equal to the plain output is always accepted: the job
  // advances k + 1 tokens per step.
  BatchTicket t = scheduler.Submit(MakeJob(
      n, &rng, std::make_unique<lm::TemplateDraftModel>(plain), k));
  DecodeOutput out = scheduler.Await(t).ValueOrDie();
  EXPECT_EQ(out.tokens, plain);
  EXPECT_EQ(out.spec.emitted, n);
  EXPECT_EQ(out.spec.steps, (n + k) / (k + 1));
  EXPECT_EQ(out.spec.accepted, out.spec.drafted);
  EXPECT_EQ(out.spec.emitted, out.spec.accepted + out.spec.steps);
}

TEST(SpeculativeSchedulerTest, DraftKBeyondTheBudgetIsClamped) {
  const size_t n = 5;
  std::vector<token::TokenId> plain = PlainDecode(n);
  BatchScheduler scheduler(BatchPolicy{});
  Rng rng(kSeed, 1);
  // k far beyond num_tokens: the step engine may never draft past the
  // remaining budget (the final token always comes from the verify
  // pass itself).
  BatchTicket t = scheduler.Submit(MakeJob(
      n, &rng, std::make_unique<lm::TemplateDraftModel>(plain), 64));
  DecodeOutput out = scheduler.Await(t).ValueOrDie();
  EXPECT_EQ(out.tokens, plain);
  EXPECT_EQ(out.spec.steps, 1u);
  EXPECT_EQ(out.spec.drafted, n - 1);
  EXPECT_EQ(out.tokens.size(), n);
}

TEST(SpeculativeSchedulerTest, MixedBatchKeepsBothSchedulesIdentical) {
  const size_t n = 10;
  std::vector<token::TokenId> plain = PlainDecode(n);
  BatchPolicy policy;
  policy.max_batch = 4;
  BatchScheduler scheduler(policy);
  Rng r1(kSeed, 1), r2(kSeed, 1);
  BatchTicket spec_job = scheduler.Submit(MakeJob(
      n, &r1, std::make_unique<lm::TemplateDraftModel>(plain), 4));
  BatchTicket plain_job = scheduler.Submit(MakeJob(n, &r2));
  DecodeOutput spec_out = scheduler.Await(spec_job).ValueOrDie();
  DecodeOutput plain_out = scheduler.Await(plain_job).ValueOrDie();
  EXPECT_EQ(spec_out.tokens, plain);
  EXPECT_EQ(plain_out.tokens, plain);
  EXPECT_GT(spec_out.spec.steps, 0u);
  EXPECT_EQ(plain_out.spec.steps, 0u);  // the plain job never drafted
}

// ---------------------------------------------------------------------
// Layer 3: the pipeline transparency contract.
// ---------------------------------------------------------------------

using forecast::DraftKind;
using forecast::ForecastResult;
using forecast::LlmTimeForecaster;
using forecast::LlmTimeOptions;
using forecast::MultiCastForecaster;
using forecast::MultiCastOptions;
using forecast::Quantization;

ts::Frame PeriodicFrame(size_t n) {
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(i) / 12.0;
    a[i] = 10.0 + 5.0 * std::sin(phase);
    b[i] = 50.0 - 20.0 * std::sin(phase);
  }
  return ts::Frame::FromSeries({ts::Series(a, "a"), ts::Series(b, "b")},
                               "periodic")
      .ValueOrDie();
}

// Asserts every deterministic field of two ForecastResults matches
// exactly (wall-clock `seconds` excluded).
void ExpectIdentical(const ForecastResult& a, const ForecastResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.forecast.num_dims(), b.forecast.num_dims());
  for (size_t d = 0; d < a.forecast.num_dims(); ++d) {
    EXPECT_EQ(a.forecast.dim(d).values(), b.forecast.dim(d).values())
        << "dimension " << d;
  }
  ASSERT_EQ(a.quantile_bands.size(), b.quantile_bands.size());
  for (size_t i = 0; i < a.quantile_bands.size(); ++i) {
    EXPECT_EQ(a.quantile_bands[i].first, b.quantile_bands[i].first);
    for (size_t d = 0; d < a.quantile_bands[i].second.num_dims(); ++d) {
      EXPECT_EQ(a.quantile_bands[i].second.dim(d).values(),
                b.quantile_bands[i].second.dim(d).values())
          << "band " << i << " dimension " << d;
    }
  }
  EXPECT_EQ(a.ledger.prompt_tokens, b.ledger.prompt_tokens);
  EXPECT_EQ(a.ledger.generated_tokens, b.ledger.generated_tokens);
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.samples_requested, b.samples_requested);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.retry_stats.calls, b.retry_stats.calls);
  EXPECT_EQ(a.retry_stats.attempts, b.retry_stats.attempts);
  EXPECT_EQ(a.retry_stats.retries, b.retry_stats.retries);
  EXPECT_EQ(a.retry_stats.backoff_seconds, b.retry_stats.backoff_seconds);
}

std::shared_ptr<BatchScheduler> Scheduler(size_t max_batch) {
  BatchPolicy policy;
  policy.max_batch = max_batch;
  return std::make_shared<BatchScheduler>(policy);
}

// The headline property: speculative decode at any draft length, batch
// size and thread count is bit-identical to the plain serial run — and
// the scheduler really did draft (the invariance is not vacuous).
TEST(SpeculativeIdentityTest, CleanPipelineIsSpeculationInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.num_samples = 6;
  opts.seed = 1234;
  opts.quantiles = {0.1, 0.9};

  auto reference = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  opts.speculative = true;
  for (int draft_k : {1, 4, 16}) {
    for (size_t max_batch : {1, 4}) {
      for (int threads : {1, 8}) {
        opts.draft_k = draft_k;
        opts.threads = threads;
        opts.batch_scheduler = Scheduler(max_batch);
        auto spec = MultiCastForecaster(opts).Forecast(frame, 12);
        ASSERT_TRUE(spec.ok()) << spec.status().ToString();
        ExpectIdentical(reference.value(), spec.value(),
                        "draft_k=" + std::to_string(draft_k) +
                            " batch=" + std::to_string(max_batch) +
                            " threads=" + std::to_string(threads));
        SpecStats ss = opts.batch_scheduler->stats().spec;
        EXPECT_GT(ss.steps, 0u);
        EXPECT_GT(ss.drafted, 0u);
        EXPECT_EQ(ss.emitted, ss.accepted + ss.steps);
      }
    }
  }
}

TEST(SpeculativeIdentityTest, NGramDrafterIsSpeculationInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.num_samples = 5;
  opts.seed = 1234;

  auto reference = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  opts.speculative = true;
  opts.draft = DraftKind::kNGram;
  for (size_t max_batch : {1, 4}) {
    opts.batch_scheduler = Scheduler(max_batch);
    auto spec = MultiCastForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ExpectIdentical(reference.value(), spec.value(),
                    "ngram batch=" + std::to_string(max_batch));
    EXPECT_GT(opts.batch_scheduler->stats().spec.drafted, 0u);
  }
}

TEST(SpeculativeIdentityTest, SaxPipelineIsSpeculationInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.quantization = Quantization::kSaxAlphabetic;
  opts.num_samples = 5;
  opts.seed = 31;

  auto reference = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  opts.speculative = true;
  for (size_t max_batch : {1, 4}) {
    opts.batch_scheduler = Scheduler(max_batch);
    auto spec = MultiCastForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ExpectIdentical(reference.value(), spec.value(),
                    "sax batch=" + std::to_string(max_batch));
    EXPECT_GT(opts.batch_scheduler->stats().spec.steps, 0u);
  }
}

// Same property under chaos + retries: the redraw/salvage machinery
// above the leaf must see identical failures at identical draws.
TEST(SpeculativeIdentityTest, ChaosPipelineIsSpeculationInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  MultiCastOptions opts;
  opts.num_samples = 5;
  opts.seed = 77;
  opts.faults = lm::FaultProfile::Chaos(0.2, 4242);
  opts.resilience.retries_enabled = true;

  auto reference = MultiCastForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  opts.speculative = true;
  for (int draft_k : {1, 8}) {
    for (size_t max_batch : {1, 4}) {
      for (int threads : {1, 8}) {
        opts.draft_k = draft_k;
        opts.threads = threads;
        opts.batch_scheduler = Scheduler(max_batch);
        auto spec = MultiCastForecaster(opts).Forecast(frame, 12);
        ASSERT_TRUE(spec.ok()) << spec.status().ToString();
        ExpectIdentical(reference.value(), spec.value(),
                        "draft_k=" + std::to_string(draft_k) +
                            " batch=" + std::to_string(max_batch) +
                            " threads=" + std::to_string(threads));
      }
    }
  }
}

// Deadline degradation: the surviving-sample set must match the plain
// run exactly — speculation adds no virtual time of its own.
TEST(SpeculativeDegradationTest, DeadlineDegradationIsSpeculationInvariant) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](bool speculative, double deadline) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    opts.speculative = speculative;
    if (speculative) opts.batch_scheduler = Scheduler(4);
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (deadline > 0.0) ctx.deadline = Deadline::At(deadline);
    return forecaster.Forecast(frame, 6, ctx);
  };
  auto probe = run(false, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double deadline = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(deadline, 0.0);
  auto reference = run(false, deadline);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_TRUE(reference.value().degraded);
  auto spec = run(true, deadline);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ExpectIdentical(reference.value(), spec.value(), "speculative deadline");
}

TEST(SpeculativeDegradationTest, MidFlightCancelIsSpeculationInvariant) {
  ts::Frame frame = PeriodicFrame(48);
  auto run = [&](bool speculative, double cancel_at) {
    MultiCastOptions opts;
    opts.num_samples = 8;
    opts.seed = 5;
    opts.faults = lm::FaultProfile::Chaos(0.1, 88);
    opts.resilience.retries_enabled = true;
    opts.speculative = speculative;
    if (speculative) opts.batch_scheduler = Scheduler(4);
    MultiCastForecaster forecaster(opts);
    VirtualClock clock;
    RequestContext ctx;
    ctx.clock = &clock;
    if (cancel_at > 0.0) ctx.cancel.CancelAtTime(&clock, cancel_at, "drain");
    return forecaster.Forecast(frame, 6, ctx);
  };
  auto probe = run(false, 0.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double cancel_at = probe.value().virtual_seconds * 0.5;
  ASSERT_GT(cancel_at, 0.0);
  auto reference = run(false, cancel_at);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_TRUE(reference.value().degraded);
  auto spec = run(true, cancel_at);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ExpectIdentical(reference.value(), spec.value(), "speculative cancel");
}

// LLMTime forwards the speculative knobs into every per-dimension
// pipeline; each dimension drafts from its own classical forecast.
TEST(SpeculativeLlmTimeTest, PerDimensionSpeculationIsOutputInvariant) {
  ts::Frame frame = PeriodicFrame(96);
  LlmTimeOptions opts;
  opts.num_samples = 4;
  opts.seed = 9;

  auto reference = LlmTimeForecaster(opts).Forecast(frame, 12);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  opts.speculative = true;
  for (int threads : {1, 8}) {
    opts.threads = threads;
    opts.batch_scheduler = Scheduler(8);
    auto spec = LlmTimeForecaster(opts).Forecast(frame, 12);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ExpectIdentical(reference.value(), spec.value(),
                    "llmtime threads=" + std::to_string(threads));
    EXPECT_GT(opts.batch_scheduler->stats().spec.steps, 0u);
  }
}

}  // namespace
}  // namespace batch
}  // namespace multicast
