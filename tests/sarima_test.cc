#include "baselines/sarima.h"

#include "baselines/arima.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "ts/split.h"
#include "ts/transforms.h"
#include "util/random.h"

namespace multicast {
namespace baselines {
namespace {

std::vector<double> SeasonalSeries(size_t n, size_t period, double noise,
                                   uint64_t seed, double trend = 0.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 20.0 + trend * static_cast<double>(i) +
           6.0 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                          static_cast<double>(period)) +
           rng.NextGaussian(0.0, noise);
  }
  return v;
}

TEST(SeasonalDifferenceTest, RoundTrip) {
  std::vector<double> v = SeasonalSeries(60, 12, 1.0, 1);
  for (int D : {1, 2}) {
    std::vector<double> heads;
    auto diffed = ts::SeasonalDifferenceWithHeads(v, 12, D, &heads);
    ASSERT_TRUE(diffed.ok());
    EXPECT_EQ(heads.size(), 12u * static_cast<size_t>(D));
    EXPECT_EQ(diffed.value().size(), v.size() - 12 * static_cast<size_t>(D));
    auto back = ts::SeasonalUndifference(diffed.value(), 12, heads);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value().size(), v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(back.value()[i], v[i], 1e-9);
    }
  }
}

TEST(SeasonalDifferenceTest, RemovesPureSeason) {
  // A perfectly periodic series seasonally differences to zeros.
  std::vector<double> v;
  for (int i = 0; i < 48; ++i) v.push_back((i % 8) * 1.5);
  std::vector<double> heads;
  auto diffed = ts::SeasonalDifferenceWithHeads(v, 8, 1, &heads);
  ASSERT_TRUE(diffed.ok());
  for (double x : diffed.value()) EXPECT_NEAR(x, 0.0, 1e-12);
}

TEST(SeasonalDifferenceTest, RejectsBadArgs) {
  std::vector<double> v(10, 1.0);
  std::vector<double> heads;
  EXPECT_FALSE(ts::SeasonalDifferenceWithHeads(v, 0, 1, &heads).ok());
  EXPECT_FALSE(ts::SeasonalDifferenceWithHeads(v, 12, 1, &heads).ok());
  EXPECT_FALSE(ts::SeasonalDifferenceWithHeads(v, 5, -1, &heads).ok());
  EXPECT_FALSE(ts::SeasonalUndifference(v, 0, {}).ok());
  EXPECT_FALSE(ts::SeasonalUndifference(v, 4, {1.0, 2.0, 3.0}).ok());
}

TEST(SarimaTest, TracksSeasonalSignal) {
  std::vector<double> v = SeasonalSeries(240, 12, 0.5, 2);
  SarimaOptions opts;
  opts.period = 12;
  auto model = SarimaModel::Fit(v, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto fc = model.value().Forecast(24).ValueOrDie();
  double ss = 0.0;
  for (size_t h = 0; h < 24; ++h) {
    double truth = 20.0 + 6.0 * std::sin(2.0 * M_PI * (240.0 + h) / 12.0);
    ss += (fc[h] - truth) * (fc[h] - truth);
  }
  EXPECT_LT(std::sqrt(ss / 24.0), 1.5);
}

TEST(SarimaTest, HandlesTrendPlusSeason) {
  std::vector<double> v = SeasonalSeries(240, 12, 0.4, 3, /*trend=*/0.2);
  SarimaOptions opts;
  opts.period = 12;
  opts.d = 1;  // regular differencing for the trend
  auto model = SarimaModel::Fit(v, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto fc = model.value().Forecast(12).ValueOrDie();
  for (size_t h = 0; h < 12; ++h) {
    double truth = 20.0 + 0.2 * (240.0 + h) +
                   6.0 * std::sin(2.0 * M_PI * (240.0 + h) / 12.0);
    EXPECT_NEAR(fc[h], truth, 3.0) << "h=" << h;
  }
}

TEST(SarimaTest, BeatsPlainArimaOnSeasonalData) {
  std::vector<double> v = SeasonalSeries(240, 16, 0.6, 4);
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "s")}, "seasonal").ValueOrDie();
  auto split = ts::SplitHorizon(frame, 16).ValueOrDie();

  SarimaOptions sopts;
  sopts.period = 16;
  SarimaForecaster sarima(sopts);
  ArimaOptions aopts;  // defaults: (2,1,1), no seasonal terms
  ArimaForecaster arima(aopts);

  auto s_run = sarima.Forecast(split.train, 16).ValueOrDie();
  auto a_run = arima.Forecast(split.train, 16).ValueOrDie();
  double s_rmse = metrics::Rmse(split.test.dim(0).values(),
                                s_run.forecast.dim(0).values())
                      .ValueOrDie();
  double a_rmse = metrics::Rmse(split.test.dim(0).values(),
                                a_run.forecast.dim(0).values())
                      .ValueOrDie();
  EXPECT_LT(s_rmse, a_rmse * 0.6);
}

TEST(SarimaTest, AutoPeriodFindsSeason) {
  std::vector<double> v = SeasonalSeries(240, 12, 0.5, 5);
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "s")}, "auto").ValueOrDie();
  auto split = ts::SplitHorizon(frame, 12).ValueOrDie();
  SarimaOptions opts;
  opts.period = 99;  // wrong on purpose; auto detection must override
  opts.auto_period = true;
  SarimaForecaster f(opts);
  auto run = f.Forecast(split.train, 12).ValueOrDie();
  double rmse = metrics::Rmse(split.test.dim(0).values(),
                              run.forecast.dim(0).values())
                    .ValueOrDie();
  EXPECT_LT(rmse, 2.0);
}

TEST(SarimaTest, AutoPeriodFallsBackOnAperiodicData) {
  Rng rng(6);
  std::vector<double> v;
  double level = 10.0;
  for (int i = 0; i < 120; ++i) {
    level += rng.NextGaussian(0.0, 0.5);
    v.push_back(level);
  }
  ts::Frame frame =
      ts::Frame::FromSeries({ts::Series(v, "walk")}, "rw").ValueOrDie();
  SarimaOptions opts;
  opts.auto_period = true;
  SarimaForecaster f(opts);
  auto run = f.Forecast(frame, 6);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
}

TEST(SarimaTest, RejectsBadInputs) {
  std::vector<double> v = SeasonalSeries(60, 12, 0.5, 7);
  SarimaOptions neg;
  neg.p = -1;
  EXPECT_FALSE(SarimaModel::Fit(v, neg).ok());
  SarimaOptions tiny_period;
  tiny_period.period = 1;
  EXPECT_FALSE(SarimaModel::Fit(v, tiny_period).ok());
  std::vector<double> small(10, 1.0);
  EXPECT_FALSE(SarimaModel::Fit(small, SarimaOptions{}).ok());
  auto ok = SarimaModel::Fit(v, SarimaOptions{});
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().Forecast(0).ok());
}

TEST(SarimaForecasterTest, MultivariateShape) {
  ts::Frame frame = ts::Frame::FromSeries(
                        {ts::Series(SeasonalSeries(120, 12, 0.5, 8), "a"),
                         ts::Series(SeasonalSeries(120, 12, 0.5, 9), "b")},
                        "f")
                        .ValueOrDie();
  SarimaOptions opts;
  opts.period = 12;
  SarimaForecaster f(opts);
  EXPECT_EQ(f.name(), "SARIMA");
  auto run = f.Forecast(frame, 6);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().forecast.num_dims(), 2u);
  EXPECT_EQ(run.value().forecast.length(), 6u);
  EXPECT_EQ(run.value().ledger.total(), 0u);
}

}  // namespace
}  // namespace baselines
}  // namespace multicast
