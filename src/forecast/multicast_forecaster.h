// The MultiCast forecaster: the paper's end-to-end pipeline.
//
//   rescale each dimension (b digits)      [scale]
//   -> multiplex dimensions to one stream  [multiplex: DI | VI | VC]
//   -> tokenize to corpus ids              [token]
//   -> n constrained autoregressive samples[lm]
//   -> demultiplex + descale each sample   [multiplex, scale]
//   -> per-timestamp median across samples
//
// With SAX quantization enabled, rescaling/tokenizing is replaced by the
// per-dimension SAX codec (one symbol per PAA segment), shrinking tokens
// per timestamp from (b + 1) to ~1/segment_length and shortening both
// the prompt and the generation (Tables VIII-IX).

#ifndef MULTICAST_FORECAST_MULTICAST_FORECASTER_H_
#define MULTICAST_FORECAST_MULTICAST_FORECASTER_H_

#include <memory>
#include <string>

#include "batch/batch_scheduler.h"
#include "forecast/forecaster.h"
#include "lm/fault_injection.h"
#include "lm/prefix_cache.h"
#include "lm/profiles.h"
#include "multiplex/multiplexer.h"
#include "sax/sax.h"
#include "scale/scaler.h"
#include "util/thread_pool.h"

namespace multicast {
namespace forecast {

/// Which quantization the pipeline applies before tokenization.
enum class Quantization {
  kNone,           ///< raw b-digit serialization (paper's "MultiCast")
  kSaxAlphabetic,  ///< "MultiCast SAX (alphabetical)"
  kSaxDigital,     ///< "MultiCast SAX (digital)"
};

const char* QuantizationName(Quantization q);

/// Which proposer drafts tokens under speculative decoding.
enum class DraftKind {
  /// Classical next-value drafting (forecast/classical.h): the
  /// statistical tier predicts the whole horizon once and the
  /// prediction is rendered through the pipeline's own scaler /
  /// multiplexer / codec into a positional token template.
  kClassical,
  /// A low-order n-gram model conditioned on the prompt plus every
  /// emitted token (lm::NGramDraftModel).
  kNGram,
};

struct MultiCastOptions {
  /// Multiplexing scheme (Sec. III-A).
  multiplex::MuxKind mux = multiplex::MuxKind::kDigitInterleave;
  /// Digits per rescaled value (paper's b). Ignored under SAX.
  int digits = 2;
  /// Samples drawn per forecast; the estimate is their per-timestamp
  /// median (Table II default: 5).
  int num_samples = 5;
  /// Simulated LLM back-end.
  lm::ModelProfile profile = lm::ModelProfile::Llama2_7B();
  /// Quantization mode and its SAX parameters (Table II defaults).
  Quantization quantization = Quantization::kNone;
  int sax_segment_length = 6;
  int sax_alphabet_size = 5;
  /// Percentile/headroom of the rescaler (raw mode only).
  scale::ScalerOptions scaler;
  /// Seed for all sampling in this forecaster.
  uint64_t seed = 42;
  /// Quantile levels (each in (0, 1)) to report as probabilistic bands
  /// alongside the median point forecast, computed across the n drawn
  /// samples per timestamp. Empty disables bands. Levels finer than the
  /// sample count resolves are interpolated.
  std::vector<double> quantiles;
  /// Injected fault model of the simulated backend (None = clean path,
  /// bit-identical to the paper pipeline).
  lm::FaultProfile faults;
  /// Retry/fallback behaviour when backend calls fail (see
  /// ResilienceConfig in forecaster.h).
  ResilienceConfig resilience;
  /// External base backend (not owned; must outlive the forecaster and
  /// accept this pipeline's vocabulary size). Null builds the usual
  /// internal SimulatedLlm from `profile`. Lets the serving layer share
  /// one backend across requests, and lets tests interpose call-counting
  /// or cancelling decorators under the fault/retry stack. The sample
  /// loop serializes calls to it (see lm::SerializedBackend), so a
  /// stateful external backend stays race-free under threads > 1.
  lm::LlmBackend* backend = nullptr;
  /// Declares `backend` safe to call from several sampler threads at
  /// once (e.g. a stateless remote-API client whose result depends only
  /// on the call arguments). When set, the sample loop skips the
  /// lm::SerializedBackend wrapper, so concurrent draws overlap their
  /// backend calls instead of queueing on a mutex — this is where
  /// threads > 1 buys wall-clock time against a latency-bound backend.
  /// Leave false for any backend with per-call mutable state.
  bool backend_thread_safe = false;
  /// Worker threads for the sample loop. 1 (the default) runs draws
  /// inline; > 1 draws samples concurrently on an internal ThreadPool.
  /// The output is bit-identical at every thread count: per-draw RNGs
  /// are pre-forked before dispatch, each draw runs on an isolated
  /// backend stack and branch clock, and outcomes merge in draw-index
  /// order. Threads change wall-clock time only — virtual-time
  /// accounting always models the serial schedule.
  int threads = 1;
  /// Prefix-cached decoding (lm/prefix_cache.h): the pipeline observes
  /// each prompt once into a frozen model state and every draw forks a
  /// copy-on-write session off it, instead of replaying the prompt
  /// token-by-token per sample. Output is bit-identical with the cache
  /// on or off at any thread count — only redundant replay work
  /// disappears. Applies to the internally built SimulatedLlm only; an
  /// externally injected `backend` owns its own state and is never
  /// cached here.
  bool prefix_cache = true;
  /// Entry capacity of the internally owned cache (LRU beyond it). With
  /// rolling-origin evaluation each window's prompt lands in one entry,
  /// so the default comfortably covers a sweep.
  size_t prefix_cache_capacity = 64;
  /// Externally shared cache (one cache across serving requests, or
  /// LLMTime's per-dimension pipelines). When set it is used regardless
  /// of `prefix_cache` and the forecaster owns no cache of its own.
  std::shared_ptr<lm::PrefixCache> shared_prefix_cache;
  /// Continuous-batching decode scheduler (batch/batch_scheduler.h).
  /// When set (and no external `backend` is injected), every draw's
  /// backend stack bottoms out in a batch::BatchLlm that submits its
  /// decode session to this shared scheduler instead of running its own
  /// token loop — draws from this forecast, concurrent forecasts and
  /// other in-flight serving requests sharing the scheduler advance one
  /// token per step together. Output is bit-identical to the unbatched
  /// path at any batch size and thread count; only the execution
  /// schedule (and wall-clock against a latency-bound step) changes.
  std::shared_ptr<batch::BatchScheduler> batch_scheduler;
  /// Speculative (draft-then-verify) decoding on the batch scheduler:
  /// a cheap proposer drafts up to `draft_k` tokens per decode step,
  /// the target model verifies them in one batched pass, and the
  /// accepted prefix plus one token emit together — up to draft_k + 1
  /// tokens per step at one step's latency-bound cost. Output is
  /// bit-identical to non-speculative decoding at any draft_k, batch
  /// size or thread count (same forecasts, bands, ledgers, warnings;
  /// see lm/draft.h and DESIGN.md §5j). Takes effect only when
  /// `batch_scheduler` is set and no external `backend` is injected;
  /// acceptance counters surface as `spec.*` scheduler metrics.
  bool speculative = false;
  /// Maximum draft tokens proposed per step (must be >= 1 to draft).
  int draft_k = 4;
  /// Which proposer drafts. Classical drafting falls back to the
  /// n-gram proposer when the classical tier cannot render a template
  /// (drafting is an accelerator, never a correctness dependency).
  DraftKind draft = DraftKind::kClassical;
  /// Paged session memory (lm/paged_store.h): model layers live in
  /// fixed-span refcounted blocks from a shared BlockPool instead of
  /// per-entry map nodes, so concurrent draws share frozen prompt state
  /// at block granularity. Output is bit-identical paged vs plain at
  /// any thread count, batch size, draft-k and cache state; only
  /// resident bytes change (reported as lm.mem.* metrics).
  bool paged_memory = false;
  /// Payload slots per block (paged mode).
  size_t block_span = 32;
  /// Pool-wide live-block cap; 0 = unbounded. When the cap is hit, new
  /// entries spill to plain storage (bit-identical, counted as
  /// lm.mem.exhaustion_events) and the pool's fullness feeds the
  /// serving layer's overload ladder.
  size_t pool_blocks = 0;
  /// Externally shared pool (one pool across serving requests or
  /// LLMTime's per-dimension pipelines). When set it is used regardless
  /// of `paged_memory` and the forecaster creates no pool of its own.
  std::shared_ptr<lm::BlockPool> block_pool;
};

/// See file comment.
class MultiCastForecaster final : public Forecaster {
 public:
  explicit MultiCastForecaster(const MultiCastOptions& options);
  ~MultiCastForecaster() override;

  /// "MultiCast (DI)", or "MultiCast SAX (alphabetical)" under SAX.
  std::string name() const override;

  /// The sample loop observes `ctx` between LLM calls and threads it
  /// into every backend call: once the request is cancelled or past its
  /// deadline no further calls are issued — the forecast degrades to
  /// the samples already drawn when at least `resilience.min_samples`
  /// survived, and fails with the context's status otherwise.
  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override;

  const MultiCastOptions& options() const { return options_; }

  /// The prefix cache in use (owned or shared); null when disabled.
  /// Persists across Forecast() calls, so rolling windows reuse warmed
  /// prompt states. Exposed for benches, serving stats and tests.
  const std::shared_ptr<lm::PrefixCache>& prefix_cache() const {
    return prefix_cache_;
  }

  /// The paged-memory pool in use (owned or shared); null when paged
  /// memory is off and no external pool was attached. Exposed for
  /// benches, serving stats and tests.
  const std::shared_ptr<lm::BlockPool>& block_pool() const {
    return block_pool_;
  }

 private:
  Result<ForecastResult> ForecastRaw(const ts::Frame& history, size_t horizon,
                                     const RequestContext& ctx);
  Result<ForecastResult> ForecastSax(const ts::Frame& history, size_t horizon,
                                     const RequestContext& ctx);

  /// The sampling pool, created lazily on the first parallel forecast;
  /// null while options_.threads <= 1 (draws then run inline).
  ThreadPool* Pool();

  MultiCastOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<lm::PrefixCache> prefix_cache_;
  std::shared_ptr<lm::BlockPool> block_pool_;
};

/// Aggregates `samples[s][t]` (s samples of an h-step forecast) into the
/// per-timestamp median, LLMTime's estimator. Exposed for tests.
Result<std::vector<double>> MedianAggregate(
    const std::vector<std::vector<double>>& samples);

/// Per-timestamp `q`-quantile across samples (same shape rules as
/// MedianAggregate; q must be in (0, 1)).
Result<std::vector<double>> QuantileAggregate(
    const std::vector<std::vector<double>>& samples, double q);

/// Degradation-tolerant variant: samples may have differing lengths
/// (salvaged prefixes of truncated/corrupted generations). Timestamp t
/// aggregates over the samples that still cover t; timestamps no sample
/// reaches hold the last aggregated value so the output always has
/// exactly `out_length` entries. `held_tail` (optional) reports whether
/// that hold-last fill was needed. Zero samples, an all-empty sample
/// set, and a zero `out_length` are all clean InvalidArgument errors —
/// never a silent empty or garbage forecast.
Result<std::vector<double>> QuantileAggregateRagged(
    const std::vector<std::vector<double>>& samples, double q,
    size_t out_length, bool* held_tail = nullptr);

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_MULTICAST_FORECASTER_H_
