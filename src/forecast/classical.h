// The classical fallback tier: statistical forecasting engines wrapped
// behind the Forecaster interface as a robustness resource.
//
// An LLM forecast costs a token stream; a naive/drift/theta/ETS forecast
// costs microseconds and zero tokens. ClassicalForecaster packages the
// src/baselines/ engines so the serving layer can demote to them under
// overload (the ladder's third rung), the FallbackForecaster chain can
// end on them, and cluster hedging can race them against a slow LLM
// replica — while still emitting the full ForecastResult shape:
// per-dimension point forecasts plus probabilistic bands built from the
// empirical quantiles of the engine's in-sample one-step residuals
// (widened with the random-walk sqrt(h) horizon scaling).
//
// Deterministic: no RNG, no token stream, and zero virtual seconds —
// at serving granularity a classical forecast is instantaneous next to
// an LLM call. Results are tagged ForecastTier::kClassical.

#ifndef MULTICAST_FORECAST_CLASSICAL_H_
#define MULTICAST_FORECAST_CLASSICAL_H_

#include <string>
#include <vector>

#include "baselines/ets.h"
#include "forecast/forecaster.h"
#include "ts/frame.h"
#include "util/status.h"

namespace multicast {
namespace forecast {

enum class ClassicalEngine {
  kAuto,       ///< per dimension: lowest in-sample one-step MSE wins
  kNaiveLast,  ///< repeat the last observation
  kDrift,      ///< last observation + average historical slope
  kTheta,      ///< SES level + half the regression slope (theta-style)
  kEts,        ///< damped additive Holt-Winters (baselines::EtsModel)
};

const char* ClassicalEngineName(ClassicalEngine engine);

struct ClassicalOptions {
  ClassicalEngine engine = ClassicalEngine::kAuto;
  /// Quantile levels for the residual bands, each in (0, 1). Empty
  /// yields a point-only result, like the other classical baselines.
  std::vector<double> quantiles = {0.1, 0.9};
  /// Configuration of the ETS engine (season detection off by default;
  /// the tier must stay cheap and deterministic per series).
  baselines::EtsOptions ets;
  /// When non-empty, every result is flagged `degraded` and carries
  /// this warning — set by the overload ladder / fallback chain when it
  /// demotes a request here, left empty when a caller asked for the
  /// classical tier outright.
  std::string demotion_note;
};

/// See file comment.
class ClassicalForecaster final : public Forecaster {
 public:
  explicit ClassicalForecaster(const ClassicalOptions& options)
      : options_(options) {}
  ClassicalForecaster() : ClassicalForecaster(ClassicalOptions{}) {}

  std::string name() const override;

  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override;

  const ClassicalOptions& options() const { return options_; }

 private:
  ClassicalOptions options_;
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_CLASSICAL_H_
