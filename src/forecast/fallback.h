// Fallback chain: demote to a cheaper method instead of erroring.
//
// A serving deployment cannot return "Unavailable" to millions of users
// because the LLM tier is down: it demotes. FallbackForecaster tries an
// ordered chain of forecasters (canonically MultiCast -> LLMTime ->
// naive) and returns the first success, flagging the result degraded
// whenever anything but the primary produced it. Only when *every* link
// fails does Forecast() return an error.

#ifndef MULTICAST_FORECAST_FALLBACK_H_
#define MULTICAST_FORECAST_FALLBACK_H_

#include <memory>
#include <string>
#include <vector>

#include "forecast/forecaster.h"

namespace multicast {
namespace forecast {

/// See file comment. The chain is ordered most- to least-preferred.
class FallbackForecaster final : public Forecaster {
 public:
  /// `chain` must be non-empty; entries must be non-null.
  explicit FallbackForecaster(
      std::vector<std::unique_ptr<Forecaster>> chain);

  /// "Fallback(MultiCast (VI) -> LLMTIME -> NaiveLast)".
  std::string name() const override;

  /// Demotion stops once `ctx` is cancelled or past its deadline — a
  /// dead request is not worth serving from the cheapest link either.
  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override;

  size_t chain_length() const { return chain_.size(); }

  /// Name and chain index of the forecaster that produced the most
  /// recent successful result ("" / 0 before the first call).
  const std::string& last_used() const { return last_used_; }
  size_t last_used_index() const { return last_used_index_; }

 private:
  std::vector<std::unique_ptr<Forecaster>> chain_;
  std::string last_used_;
  size_t last_used_index_ = 0;
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_FALLBACK_H_
