#include "forecast/llmtime_forecaster.h"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "forecast/multicast_forecaster.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

LlmTimeForecaster::LlmTimeForecaster(const LlmTimeOptions& options)
    : options_(options) {
  if (options_.shared_prefix_cache != nullptr) {
    prefix_cache_ = options_.shared_prefix_cache;
  } else if (options_.prefix_cache) {
    prefix_cache_ =
        std::make_shared<lm::PrefixCache>(options_.prefix_cache_capacity);
  }
  if (options_.block_pool != nullptr) {
    block_pool_ = options_.block_pool;
  } else if (options_.paged_memory) {
    lm::PagedMemoryOptions paged;
    paged.enabled = true;
    paged.block_span = options_.block_span;
    paged.max_blocks = options_.pool_blocks;
    block_pool_ = std::make_shared<lm::BlockPool>(paged);
  }
}

LlmTimeForecaster::~LlmTimeForecaster() = default;

ThreadPool* LlmTimeForecaster::Pool() {
  if (options_.threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  return pool_.get();
}

Result<ForecastResult> LlmTimeForecaster::Forecast(const ts::Frame& history,
                                                   size_t horizon,
                                                   const RequestContext& ctx) {
  Timer timer;
  // A univariate stream is the degenerate multiplex (d = 1; VI and VC
  // coincide with LLMTime's "v1,v2,..." serialization), so each
  // dimension reuses the MultiCast pipeline on a single-dimension frame.
  MultiCastOptions base;
  base.mux = multiplex::MuxKind::kValueConcat;
  base.digits = options_.digits;
  base.num_samples = options_.num_samples;
  base.profile = options_.profile;
  base.scaler = options_.scaler;
  base.faults = options_.faults;
  base.resilience = options_.resilience;
  // An external backend is shared by every per-dimension pipeline, so
  // its calls are serialized here once (the per-dimension forecasters
  // would otherwise each wrap the raw backend separately and race on
  // it) — unless the caller declares it thread-safe, in which case the
  // calls may overlap.
  std::optional<lm::SerializedBackend> serialized;
  base.backend = options_.backend;
  if (options_.backend != nullptr && !options_.backend_thread_safe) {
    serialized.emplace(options_.backend);
    base.backend = &*serialized;
  }
  // Either way the backend handed down is safe for the inner pipelines
  // to call without re-wrapping.
  base.backend_thread_safe = true;
  // Parallelism lives at the dimension level here; the inner pipelines
  // sample serially so the pool is never waited on from inside itself.
  base.threads = 1;
  // One cache across all dimensions and Forecast calls: the inner
  // pipelines never build their own. PrefixCache is thread-safe, so
  // concurrent dimension workers share it directly.
  base.prefix_cache = false;
  base.shared_prefix_cache = prefix_cache_;
  // One scheduler across all dimensions (and whoever else shares it):
  // the scheduler is thread-safe and each decode job is independent, so
  // dimension workers batch their draws without affecting outputs.
  base.batch_scheduler = options_.batch_scheduler;
  // Speculative decode rides the batch scheduler; each dimension's
  // pipeline drafts from its own univariate classical forecast.
  base.speculative = options_.speculative;
  base.draft_k = options_.draft_k;
  base.draft = options_.draft;
  // One pool across all dimensions: BlockPool is thread-safe, and the
  // per-dimension pipelines attach it through their profile.
  base.block_pool = block_pool_;

  const size_t dims = history.num_dims();
  const double t0 = ctx.now();
  // One dimension's forecast, isolated like a sample draw: decorrelated
  // seeds, a branch clock starting at the loop entry time and a private
  // context (the shared cancel token is not thread-safe; cancellation is
  // observed between dimensions by the merge below). The dimension's
  // result is a pure function of (d, t0, deadline), so the merge order —
  // not the execution order — decides everything observable.
  auto run_dim = [&, t0](size_t d) -> Result<ForecastResult> {
    MultiCastOptions mc = base;
    // Decorrelated seeds per dimension keep samples independent. The
    // fault-schedule seed shifts with the dimension too, so one noisy
    // window does not hit every dimension identically.
    mc.seed = options_.seed + 0x9e3779b97f4a7c15ULL * (d + 1);
    mc.faults.seed = options_.faults.seed + d;
    MC_ASSIGN_OR_RETURN(
        ts::Frame uni,
        ts::Frame::FromSeries({history.dim(d)}, history.dim(d).name()));
    VirtualClock branch;
    branch.AdvanceTo(t0);
    RequestContext dim_ctx;
    dim_ctx.clock = ctx.clock != nullptr ? &branch : nullptr;
    dim_ctx.deadline = ctx.deadline;
    MultiCastForecaster forecaster(mc);
    return forecaster.Forecast(uni, horizon, dim_ctx);
  };

  ThreadPool* pool = Pool();
  std::vector<std::future<Result<ForecastResult>>> inflight;
  if (pool != nullptr && dims > 1) {
    inflight.reserve(dims);
    for (size_t d = 0; d < dims; ++d) {
      inflight.push_back(pool->Submit([run_dim, d]() { return run_dim(d); }));
    }
  }

  ForecastResult result;
  std::vector<ts::Series> out_dims;
  Status failed = Status::OK();
  for (size_t d = 0; d < dims; ++d) {
    std::optional<Result<ForecastResult>> uni_or;
    if (!inflight.empty()) uni_or.emplace(inflight[d].get());
    if (!failed.ok()) continue;  // drain remaining futures
    Status active = ctx.Check("LLMTIME dimension loop");
    if (!active.ok()) {
      failed = active;
      continue;
    }
    if (!uni_or.has_value()) uni_or.emplace(run_dim(d));
    if (!uni_or->ok()) {
      failed = uni_or->status();
      continue;
    }
    ForecastResult uni_result = std::move(*uni_or).value();
    // Replay the dimension's virtual cost onto the shared request clock
    // in dimension order, so the accounting (and therefore the deadline
    // gating above) matches the serial schedule at any thread count.
    if (ctx.clock != nullptr) ctx.clock->Advance(uni_result.virtual_seconds);
    result.ledger += uni_result.ledger;
    result.retry_stats += uni_result.retry_stats;
    result.virtual_seconds += uni_result.virtual_seconds;
    result.degraded = result.degraded || uni_result.degraded;
    result.samples_requested += uni_result.samples_requested;
    result.samples_used += uni_result.samples_used;
    for (const std::string& warning : uni_result.warnings) {
      result.warnings.push_back(history.dim(d).name() + ": " + warning);
    }
    out_dims.push_back(uni_result.forecast.dim(0));
  }
  MC_RETURN_IF_ERROR(failed);
  MC_ASSIGN_OR_RETURN(result.forecast,
                      ts::Frame::FromSeries(std::move(out_dims),
                                            history.name()));
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace forecast
}  // namespace multicast
