#include "forecast/llmtime_forecaster.h"

#include "forecast/multicast_forecaster.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

LlmTimeForecaster::LlmTimeForecaster(const LlmTimeOptions& options)
    : options_(options) {}

Result<ForecastResult> LlmTimeForecaster::Forecast(const ts::Frame& history,
                                                   size_t horizon,
                                                   const RequestContext& ctx) {
  Timer timer;
  // A univariate stream is the degenerate multiplex (d = 1; VI and VC
  // coincide with LLMTime's "v1,v2,..." serialization), so each
  // dimension reuses the MultiCast pipeline on a single-dimension frame.
  MultiCastOptions mc;
  mc.mux = multiplex::MuxKind::kValueConcat;
  mc.digits = options_.digits;
  mc.num_samples = options_.num_samples;
  mc.profile = options_.profile;
  mc.scaler = options_.scaler;
  mc.faults = options_.faults;
  mc.resilience = options_.resilience;
  mc.backend = options_.backend;

  ForecastResult result;
  std::vector<ts::Series> out_dims;
  for (size_t d = 0; d < history.num_dims(); ++d) {
    MC_RETURN_IF_ERROR(ctx.Check("LLMTIME dimension loop"));
    MC_ASSIGN_OR_RETURN(
        ts::Frame uni,
        ts::Frame::FromSeries({history.dim(d)}, history.dim(d).name()));
    // Decorrelated seeds per dimension keep samples independent. The
    // fault-schedule seed shifts with the dimension too, so one noisy
    // window does not hit every dimension identically.
    mc.seed = options_.seed + 0x9e3779b97f4a7c15ULL * (d + 1);
    mc.faults.seed = options_.faults.seed + d;
    MultiCastForecaster forecaster(mc);
    MC_ASSIGN_OR_RETURN(ForecastResult uni_result,
                        forecaster.Forecast(uni, horizon, ctx));
    result.ledger += uni_result.ledger;
    result.retry_stats += uni_result.retry_stats;
    result.virtual_seconds += uni_result.virtual_seconds;
    result.degraded = result.degraded || uni_result.degraded;
    result.samples_requested += uni_result.samples_requested;
    result.samples_used += uni_result.samples_used;
    for (const std::string& warning : uni_result.warnings) {
      result.warnings.push_back(history.dim(d).name() + ": " + warning);
    }
    out_dims.push_back(uni_result.forecast.dim(0));
  }
  MC_ASSIGN_OR_RETURN(result.forecast,
                      ts::Frame::FromSeries(std::move(out_dims),
                                            history.name()));
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace forecast
}  // namespace multicast
