#include "forecast/ensemble.h"

#include "ts/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

EnsembleForecaster::EnsembleForecaster(
    std::vector<std::unique_ptr<Forecaster>> members)
    : members_(std::move(members)) {
  MC_CHECK(!members_.empty());
  for (const auto& member : members_) MC_CHECK(member != nullptr);
}

std::string EnsembleForecaster::name() const {
  std::vector<std::string> names;
  for (const auto& member : members_) names.push_back(member->name());
  return "Ensemble(" + Join(names, ", ") + ")";
}

Result<ForecastResult> EnsembleForecaster::Forecast(const ts::Frame& history,
                                                    size_t horizon,
                                                    const RequestContext& ctx) {
  Timer timer;
  std::vector<ForecastResult> member_results;
  ForecastResult result;
  for (const auto& member : members_) {
    MC_RETURN_IF_ERROR(ctx.Check(member->name().c_str()));
    MC_ASSIGN_OR_RETURN(ForecastResult r,
                        member->Forecast(history, horizon, ctx));
    result.ledger += r.ledger;
    result.virtual_seconds += r.virtual_seconds;
    member_results.push_back(std::move(r));
  }

  std::vector<ts::Series> out_dims;
  for (size_t d = 0; d < history.num_dims(); ++d) {
    std::vector<double> agg;
    agg.reserve(horizon);
    for (size_t t = 0; t < horizon; ++t) {
      std::vector<double> column;
      column.reserve(member_results.size());
      for (const auto& r : member_results) {
        column.push_back(r.forecast.at(d, t));
      }
      agg.push_back(ts::Median(std::move(column)));
    }
    out_dims.emplace_back(std::move(agg), history.dim(d).name());
  }
  MC_ASSIGN_OR_RETURN(result.forecast,
                      ts::Frame::FromSeries(std::move(out_dims),
                                            history.name()));
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace forecast
}  // namespace multicast
