// Common interface for every forecasting method in the evaluation.

#ifndef MULTICAST_FORECAST_FORECASTER_H_
#define MULTICAST_FORECAST_FORECASTER_H_

#include <string>

#include "lm/generator.h"
#include "ts/frame.h"
#include "util/status.h"

namespace multicast {
namespace forecast {

/// A multivariate forecast plus its cost accounting.
struct ForecastResult {
  /// One series per input dimension, `horizon` values each, in the
  /// original units of the history.
  ts::Frame forecast;
  /// Optional probabilistic bands: (quantile level, frame) pairs in
  /// ascending level order. Sampling-based methods fill these when
  /// asked (MultiCastOptions::quantiles); point methods leave it empty.
  std::vector<std::pair<double, ts::Frame>> quantile_bands;
  /// LLM token usage (zeros for ARIMA/LSTM/naive methods).
  lm::TokenLedger ledger;
  /// Wall-clock seconds spent inside Forecast().
  double seconds = 0.0;
};

/// A method that extends a multivariate history by `horizon` steps.
/// Implementations must not look at anything beyond `history` — the test
/// horizon is unseen (zero-shot evaluation discipline).
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Display name used in the result tables ("MultiCast (DI)", "ARIMA"...).
  virtual std::string name() const = 0;

  /// Forecasts `horizon` future timestamps of every dimension.
  virtual Result<ForecastResult> Forecast(const ts::Frame& history,
                                          size_t horizon) = 0;
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_FORECASTER_H_
