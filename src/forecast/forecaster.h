// Common interface for every forecasting method in the evaluation.

#ifndef MULTICAST_FORECAST_FORECASTER_H_
#define MULTICAST_FORECAST_FORECASTER_H_

#include <string>
#include <vector>

#include "lm/generator.h"
#include "lm/resilient_backend.h"
#include "ts/frame.h"
#include "util/status.h"

namespace multicast {
namespace forecast {

/// How an LLM-backed forecaster behaves when backend calls fail or
/// return damaged streams. Shared by MultiCastOptions / LlmTimeOptions.
struct ResilienceConfig {
  /// Wraps the backend in a lm::ResilientBackend (retry with exponential
  /// backoff + jitter, per-attempt deadlines, circuit breaker). Off by
  /// default so the clean pipeline is bit-identical to the paper runs.
  bool retries_enabled = false;
  lm::RetryPolicy retry;
  lm::CircuitBreakerPolicy breaker;
  /// Extra sample draws allowed beyond num_samples to replace samples
  /// whose call failed or whose stream was unusable. Graceful
  /// degradation (redraw + prefix salvage + subset aggregation) is
  /// always active; this only caps how hard it tries.
  int max_redraws = 4;
  /// Minimum surviving samples for a usable forecast; fewer makes
  /// Forecast() fail (a FallbackForecaster can then demote).
  int min_samples = 1;
};

/// Which quality tier produced a forecast. The serving layer's overload
/// ladder demotes requests down this list under pressure; results carry
/// the tag so clients (and the per-tier serve counters) can tell a full
/// LLM answer from a draw-clamped one from a classical-engine stand-in.
enum class ForecastTier {
  kLlmFull,     ///< full LLM pipeline at the requested sample count
  kLlmReduced,  ///< LLM pipeline with num_samples clamped by the ladder
  kClassical,   ///< classical statistical engine, no token stream
};

inline const char* ForecastTierName(ForecastTier tier) {
  switch (tier) {
    case ForecastTier::kLlmFull:
      return "llm-full";
    case ForecastTier::kLlmReduced:
      return "llm-reduced";
    case ForecastTier::kClassical:
      return "classical";
  }
  return "?";
}

/// A multivariate forecast plus its cost accounting.
struct ForecastResult {
  /// One series per input dimension, `horizon` values each, in the
  /// original units of the history.
  ts::Frame forecast;
  /// Optional probabilistic bands: (quantile level, frame) pairs in
  /// ascending level order. Sampling-based methods fill these when
  /// asked (MultiCastOptions::quantiles); point methods leave it empty.
  std::vector<std::pair<double, ts::Frame>> quantile_bands;
  /// LLM token usage (zeros for ARIMA/LSTM/naive methods).
  lm::TokenLedger ledger;
  /// Wall-clock seconds spent inside Forecast().
  double seconds = 0.0;
  /// Virtual seconds the forecast consumed on the request clock (LLM
  /// latency + retry backoff; zeros for classical methods, which are
  /// negligible next to an LLM call at serving granularity).
  double virtual_seconds = 0.0;
  /// Retry/backoff accounting of the resilient LLM backend (all zeros
  /// when resilience is disabled or the method makes no LLM calls).
  lm::RetryStats retry_stats;
  /// True when the result was assembled under degraded conditions: fewer
  /// samples than requested survived, a sample was salvaged from a
  /// truncated/corrupted stream, or a fallback method had to step in.
  /// The forecast still always has full dims x horizon shape.
  bool degraded = false;
  /// Sample accounting of sampling-based methods (zeros for classical
  /// ones): how many samples the method wanted vs. how many survived.
  size_t samples_requested = 0;
  size_t samples_used = 0;
  /// Human-readable notes about what degraded and why (one per event).
  std::vector<std::string> warnings;
  /// Quality tier that produced this result (see ForecastTier). LLM
  /// pipelines leave the default; ClassicalForecaster tags kClassical,
  /// and serving-layer factories tag kLlmReduced when the overload
  /// ladder clamped the draw count.
  ForecastTier tier = ForecastTier::kLlmFull;
};

/// A method that extends a multivariate history by `horizon` steps.
/// Implementations must not look at anything beyond `history` — the test
/// horizon is unseen (zero-shot evaluation discipline).
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Display name used in the result tables ("MultiCast (DI)", "ARIMA"...).
  virtual std::string name() const = 0;

  /// Forecasts `horizon` future timestamps of every dimension under a
  /// request context: implementations making LLM calls must stop
  /// issuing them once `ctx` is cancelled or past its deadline
  /// (returning a degraded result when enough samples already
  /// survived, the context's Status otherwise). Classical methods check
  /// the context at entry and are otherwise instantaneous in virtual
  /// time. Derived classes override this and re-export the convenience
  /// overload with `using Forecaster::Forecast;`.
  virtual Result<ForecastResult> Forecast(const ts::Frame& history,
                                          size_t horizon,
                                          const RequestContext& ctx) = 0;

  /// Context-free convenience: no deadline, no cancellation — the
  /// standalone evaluation pipeline.
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon) {
    return Forecast(history, horizon, RequestContext{});
  }
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_FORECASTER_H_
