// LLMTime baseline (Gruver et al., NeurIPS 2023), as evaluated in the
// paper: the same numeric serialization and sampling pipeline, applied
// to *each dimension independently* — the state of the art MultiCast is
// compared against. Ignores inter-dimensional correlations by design.

#ifndef MULTICAST_FORECAST_LLMTIME_FORECASTER_H_
#define MULTICAST_FORECAST_LLMTIME_FORECASTER_H_

#include <memory>
#include <string>

#include "batch/batch_scheduler.h"
#include "forecast/forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "lm/fault_injection.h"
#include "lm/prefix_cache.h"
#include "lm/profiles.h"
#include "scale/scaler.h"
#include "util/thread_pool.h"

namespace multicast {
namespace forecast {

struct LlmTimeOptions {
  /// Digits per rescaled value.
  int digits = 2;
  /// Samples per dimension; the estimate is the per-timestamp median.
  int num_samples = 5;
  lm::ModelProfile profile = lm::ModelProfile::Llama2_7B();
  scale::ScalerOptions scaler;
  uint64_t seed = 42;
  /// Injected fault model and resilience behaviour, applied to every
  /// per-dimension pipeline (same semantics as MultiCastOptions).
  lm::FaultProfile faults;
  ResilienceConfig resilience;
  /// External base backend shared by every per-dimension pipeline (not
  /// owned; same contract as MultiCastOptions::backend).
  lm::LlmBackend* backend = nullptr;
  /// Same contract as MultiCastOptions::backend_thread_safe: skip the
  /// serializing wrapper for a backend that is safe to call from
  /// several dimension workers at once.
  bool backend_thread_safe = false;
  /// Worker threads across the per-dimension forecasts. 1 (the default)
  /// runs dimensions serially; > 1 forecasts dimensions concurrently
  /// (each inner pipeline samples serially) with outcomes merged in
  /// dimension order, so the result is bit-identical at every thread
  /// count. Threads change wall-clock time only.
  int threads = 1;
  /// Prefix-cached decoding, same semantics as
  /// MultiCastOptions::prefix_cache. One cache is shared by all
  /// per-dimension pipelines (and across Forecast calls), so dimensions
  /// with equal serialized prompts — and rolling windows — reuse frozen
  /// prompt states. Bit-identical output either way.
  bool prefix_cache = true;
  size_t prefix_cache_capacity = 64;
  /// Externally shared cache; overrides `prefix_cache` when set.
  std::shared_ptr<lm::PrefixCache> shared_prefix_cache;
  /// Shared continuous-batching scheduler, forwarded into every
  /// per-dimension pipeline (same semantics as
  /// MultiCastOptions::batch_scheduler): all dimensions' draws — and any
  /// other pipelines on the same scheduler — decode one token per step
  /// together. Bit-identical output either way.
  std::shared_ptr<batch::BatchScheduler> batch_scheduler;
  /// Speculative (draft-then-verify) decoding, forwarded into every
  /// per-dimension pipeline (same semantics — and the same bit-identity
  /// guarantee — as the MultiCastOptions fields of the same names).
  /// Each dimension drafts from its own univariate classical forecast.
  bool speculative = false;
  int draft_k = 4;
  forecast::DraftKind draft = forecast::DraftKind::kClassical;
  /// Paged session memory, forwarded into every per-dimension pipeline
  /// (same semantics — and the same bit-identity guarantee — as the
  /// MultiCastOptions fields of the same names). One pool is shared by
  /// all dimensions, so cross-dimension frozen prompt state shares
  /// blocks by refcount.
  bool paged_memory = false;
  size_t block_span = 32;
  size_t pool_blocks = 0;
  /// Externally shared pool; overrides `paged_memory` when set.
  std::shared_ptr<lm::BlockPool> block_pool;
};

/// Runs a univariate serialized forecast per dimension and stitches the
/// results back into a frame. Token ledgers of all per-dimension calls
/// are summed, matching the paper's "total time = sum of time needed per
/// dimension" accounting.
class LlmTimeForecaster final : public Forecaster {
 public:
  explicit LlmTimeForecaster(const LlmTimeOptions& options);
  ~LlmTimeForecaster() override;

  std::string name() const override { return "LLMTIME"; }

  /// The per-dimension loop checks `ctx` between dimensions and threads
  /// it into every underlying MultiCast pipeline; a request that dies
  /// partway fails with the context's status rather than finishing the
  /// remaining dimensions.
  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override;

  const LlmTimeOptions& options() const { return options_; }

  /// The cache shared by every per-dimension pipeline; null when
  /// disabled. Exposed for benches, serving stats and tests.
  const std::shared_ptr<lm::PrefixCache>& prefix_cache() const {
    return prefix_cache_;
  }

  /// The pool shared by every per-dimension pipeline; null when paged
  /// memory is off and no external pool was attached.
  const std::shared_ptr<lm::BlockPool>& block_pool() const {
    return block_pool_;
  }

 private:
  /// The per-dimension pool, created lazily on the first parallel
  /// forecast; null while options_.threads <= 1.
  ThreadPool* Pool();

  LlmTimeOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<lm::PrefixCache> prefix_cache_;
  std::shared_ptr<lm::BlockPool> block_pool_;
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_LLMTIME_FORECASTER_H_
