// LLMTime baseline (Gruver et al., NeurIPS 2023), as evaluated in the
// paper: the same numeric serialization and sampling pipeline, applied
// to *each dimension independently* — the state of the art MultiCast is
// compared against. Ignores inter-dimensional correlations by design.

#ifndef MULTICAST_FORECAST_LLMTIME_FORECASTER_H_
#define MULTICAST_FORECAST_LLMTIME_FORECASTER_H_

#include <string>

#include "forecast/forecaster.h"
#include "lm/fault_injection.h"
#include "lm/profiles.h"
#include "scale/scaler.h"

namespace multicast {
namespace forecast {

struct LlmTimeOptions {
  /// Digits per rescaled value.
  int digits = 2;
  /// Samples per dimension; the estimate is the per-timestamp median.
  int num_samples = 5;
  lm::ModelProfile profile = lm::ModelProfile::Llama2_7B();
  scale::ScalerOptions scaler;
  uint64_t seed = 42;
  /// Injected fault model and resilience behaviour, applied to every
  /// per-dimension pipeline (same semantics as MultiCastOptions).
  lm::FaultProfile faults;
  ResilienceConfig resilience;
  /// External base backend shared by every per-dimension pipeline (not
  /// owned; same contract as MultiCastOptions::backend).
  lm::LlmBackend* backend = nullptr;
};

/// Runs a univariate serialized forecast per dimension and stitches the
/// results back into a frame. Token ledgers of all per-dimension calls
/// are summed, matching the paper's "total time = sum of time needed per
/// dimension" accounting.
class LlmTimeForecaster final : public Forecaster {
 public:
  explicit LlmTimeForecaster(const LlmTimeOptions& options);

  std::string name() const override { return "LLMTIME"; }

  /// The per-dimension loop checks `ctx` between dimensions and threads
  /// it into every underlying MultiCast pipeline; a request that dies
  /// partway fails with the context's status rather than finishing the
  /// remaining dimensions.
  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override;

  const LlmTimeOptions& options() const { return options_; }

 private:
  LlmTimeOptions options_;
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_LLMTIME_FORECASTER_H_
