// Validation-based MultiCast configuration selection.
//
// The paper establishes its defaults (multiplexer, digit budget, sample
// count — Table II) with "tuning tests", and observes that the best
// multiplexer varies per dataset. This utility automates that workflow
// without touching the test horizon: candidate configurations are
// scored by rolling-origin evaluation *within the history*, and the
// winner (by mean RMSE across dimensions and folds) is returned.

#ifndef MULTICAST_FORECAST_AUTO_TUNE_H_
#define MULTICAST_FORECAST_AUTO_TUNE_H_

#include <vector>

#include "forecast/multicast_forecaster.h"
#include "ts/frame.h"
#include "util/status.h"

namespace multicast {
namespace forecast {

struct AutoTuneOptions {
  /// Base configuration; every candidate inherits these fields except
  /// the ones being swept.
  MultiCastOptions base;
  /// Multiplexers to try (default: all three).
  std::vector<multiplex::MuxKind> muxes = {
      multiplex::MuxKind::kDigitInterleave,
      multiplex::MuxKind::kValueInterleave,
      multiplex::MuxKind::kValueConcat};
  /// Digit budgets to try (default: just the base's).
  std::vector<int> digit_choices;
  /// Validation folds carved out of the history.
  size_t folds = 2;
  /// Validation horizon per fold (0 = 10% of the history).
  size_t horizon = 0;
};

struct AutoTuneResult {
  /// Winning configuration (base with the swept fields replaced).
  MultiCastOptions options;
  /// Mean validation RMSE of the winner, averaged over dims and folds.
  double validation_rmse = 0.0;
  /// Candidate scores in evaluation order, for diagnostics.
  std::vector<std::pair<std::string, double>> scores;
};

/// Sweeps the candidate grid on `history` and returns the winner.
/// Errors when the history is too short to carve out the validation
/// folds.
Result<AutoTuneResult> AutoTuneMultiCast(const ts::Frame& history,
                                         const AutoTuneOptions& options);

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_AUTO_TUNE_H_
