#include "forecast/auto_tune.h"

#include <cmath>
#include <limits>

#include "ts/split.h"
#include "util/strings.h"

namespace multicast {
namespace forecast {

namespace {

// Root mean squared error (local copy: mc_forecast cannot depend on
// mc_metrics/mc_eval without a link cycle).
double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  double ss = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(a.size()));
}

// Mean validation RMSE of one candidate over rolling folds inside the
// history.
Result<double> ScoreCandidate(const MultiCastOptions& candidate,
                              const ts::Frame& history, size_t folds,
                              size_t horizon) {
  double total = 0.0;
  size_t count = 0;
  for (size_t k = 0; k < folds; ++k) {
    size_t end = history.length() - k * horizon;
    MC_ASSIGN_OR_RETURN(ts::Frame window, history.Slice(0, end));
    MC_ASSIGN_OR_RETURN(ts::Split split, ts::SplitHorizon(window, horizon));
    MultiCastForecaster forecaster(candidate);
    MC_ASSIGN_OR_RETURN(ForecastResult result,
                        forecaster.Forecast(split.train, horizon));
    for (size_t d = 0; d < split.test.num_dims(); ++d) {
      total += Rmse(split.test.dim(d).values(),
                    result.forecast.dim(d).values());
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace

Result<AutoTuneResult> AutoTuneMultiCast(const ts::Frame& history,
                                         const AutoTuneOptions& options) {
  if (options.muxes.empty()) {
    return Status::InvalidArgument("no multiplexer candidates");
  }
  if (options.folds == 0) {
    return Status::InvalidArgument("folds must be >= 1");
  }
  size_t horizon =
      options.horizon != 0 ? options.horizon : history.length() / 10;
  if (horizon < 2) horizon = 2;
  if (history.length() < options.folds * horizon + 16) {
    return Status::InvalidArgument(
        StrFormat("history of length %zu too short for %zu validation "
                  "folds of horizon %zu",
                  history.length(), options.folds, horizon));
  }

  std::vector<int> digits = options.digit_choices;
  if (digits.empty()) digits.push_back(options.base.digits);

  AutoTuneResult result;
  double best = std::numeric_limits<double>::infinity();
  for (multiplex::MuxKind mux : options.muxes) {
    for (int b : digits) {
      MultiCastOptions candidate = options.base;
      candidate.mux = mux;
      candidate.digits = b;
      MC_ASSIGN_OR_RETURN(
          double rmse,
          ScoreCandidate(candidate, history, options.folds, horizon));
      std::string label = StrFormat("%s b=%d", multiplex::MuxKindName(mux),
                                    b);
      result.scores.emplace_back(label, rmse);
      if (rmse < best) {
        best = rmse;
        result.options = candidate;
        result.validation_rmse = rmse;
      }
    }
  }
  return result;
}

}  // namespace forecast
}  // namespace multicast
