#include "forecast/fallback.h"

#include <utility>

#include "util/strings.h"

namespace multicast {
namespace forecast {

FallbackForecaster::FallbackForecaster(
    std::vector<std::unique_ptr<Forecaster>> chain)
    : chain_(std::move(chain)) {
  MC_CHECK(!chain_.empty());
  for (const auto& link : chain_) MC_CHECK(link != nullptr);
}

std::string FallbackForecaster::name() const {
  std::string out = "Fallback(";
  for (size_t i = 0; i < chain_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += chain_[i]->name();
  }
  out += ")";
  return out;
}

Result<ForecastResult> FallbackForecaster::Forecast(const ts::Frame& history,
                                                    size_t horizon,
                                                    const RequestContext& ctx) {
  std::vector<std::string> demotions;
  for (size_t i = 0; i < chain_.size(); ++i) {
    Status active = ctx.Check(chain_[i]->name().c_str());
    if (!active.ok()) {
      // Don't start the next link on behalf of a dead request; report
      // why the chain stopped where it did.
      demotions.push_back(StrFormat("chain stopped before %s (%s)",
                                    chain_[i]->name().c_str(),
                                    active.ToString().c_str()));
      break;
    }
    Result<ForecastResult> attempt =
        chain_[i]->Forecast(history, horizon, ctx);
    if (!attempt.ok()) {
      demotions.push_back(StrFormat(
          "%s failed (%s)", chain_[i]->name().c_str(),
          attempt.status().ToString().c_str()));
      continue;
    }
    ForecastResult result = std::move(attempt).value();
    last_used_ = chain_[i]->name();
    last_used_index_ = i;
    if (i > 0) {
      // Anything below the primary is a degraded answer by definition.
      result.degraded = true;
      result.warnings.insert(result.warnings.begin(), demotions.begin(),
                             demotions.end());
    }
    return result;
  }
  std::string summary = "every fallback link failed: ";
  for (size_t i = 0; i < demotions.size(); ++i) {
    if (i > 0) summary += "; ";
    summary += demotions[i];
  }
  // A chain that stopped because the request died reports the request's
  // status code, not a backend outage.
  Status active = ctx.Check("fallback chain");
  if (!active.ok()) return Status(active.code(), std::move(summary));
  return Status::Unavailable(std::move(summary));
}

}  // namespace forecast
}  // namespace multicast
