// Ensemble forecaster: per-timestamp median across member forecasts.
//
// LLMTime aggregates samples *within* one model by the median; the same
// estimator composes across models. Ensembling a MultiCast variant with
// a classical baseline hedges the failure modes the paper's tables show
// are complementary (LLM methods on correlated dims, ARIMA on smooth
// mean-reverting ones).

#ifndef MULTICAST_FORECAST_ENSEMBLE_H_
#define MULTICAST_FORECAST_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "forecast/forecaster.h"

namespace multicast {
namespace forecast {

/// Owns its members and forecasts their per-timestamp median.
class EnsembleForecaster final : public Forecaster {
 public:
  /// At least one member is required.
  explicit EnsembleForecaster(
      std::vector<std::unique_ptr<Forecaster>> members);

  /// "Ensemble(a, b, ...)".
  std::string name() const override;

  /// Runs every member; token ledgers are summed. Fails if any member
  /// fails (an ensemble with silently missing members would mis-report
  /// what it aggregated).
  using Forecaster::Forecast;
  Result<ForecastResult> Forecast(const ts::Frame& history, size_t horizon,
                                  const RequestContext& ctx) override;

  size_t num_members() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<Forecaster>> members_;
};

}  // namespace forecast
}  // namespace multicast

#endif  // MULTICAST_FORECAST_ENSEMBLE_H_
