#include "forecast/multicast_forecaster.h"

#include <algorithm>
#include <memory>

#include "lm/resilient_backend.h"
#include "token/codec.h"
#include "ts/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

namespace {

// Builds the per-step grammar mask for a multiplexed digit stream: comma
// at separator positions of the timestamp cycle, any non-comma symbol
// elsewhere.
lm::GrammarMask StructuredMask(const multiplex::Multiplexer& mux,
                               const std::vector<int>& widths,
                               const token::Vocabulary& vocab) {
  size_t cycle = mux.TokensPerTimestamp(widths);
  std::vector<bool> separator_positions(cycle);
  for (size_t p = 0; p < cycle; ++p) {
    separator_positions[p] = mux.IsSeparatorPosition(p, widths);
  }
  token::TokenId comma = vocab.CommaId().ValueOrDie();
  size_t vocab_size = vocab.size();
  return [=](size_t step) {
    bool want_comma = separator_positions[step % cycle];
    std::vector<bool> allowed(vocab_size, !want_comma);
    allowed[static_cast<size_t>(comma)] = want_comma;
    return allowed;
  };
}

// Builds the median point forecast and any requested quantile bands
// from the per-dimension sample matrix, writing into `result`. Samples
// may be ragged (salvaged prefixes); the output is always dims x
// `horizon`, and any hold-last fill marks the result degraded.
Status FillAggregates(
    const std::vector<std::vector<std::vector<double>>>& samples_per_dim,
    const ts::Frame& history, const std::vector<double>& quantiles,
    size_t horizon, ForecastResult* result) {
  std::vector<ts::Series> out_dims;
  for (size_t d = 0; d < samples_per_dim.size(); ++d) {
    bool held_tail = false;
    MC_ASSIGN_OR_RETURN(std::vector<double> agg,
                        QuantileAggregateRagged(samples_per_dim[d], 0.5,
                                                horizon, &held_tail));
    if (held_tail) {
      result->degraded = true;
      result->warnings.push_back(StrFormat(
          "dimension %zu: no surviving sample covers the full horizon; "
          "tail timestamps hold the last aggregated value", d));
    }
    out_dims.emplace_back(std::move(agg), history.dim(d).name());
  }
  MC_ASSIGN_OR_RETURN(result->forecast,
                      ts::Frame::FromSeries(std::move(out_dims),
                                            history.name()));

  std::vector<double> sorted_levels = quantiles;
  std::sort(sorted_levels.begin(), sorted_levels.end());
  for (double level : sorted_levels) {
    if (!(level > 0.0 && level < 1.0)) {
      return Status::InvalidArgument(
          StrFormat("quantile level %g outside (0, 1)", level));
    }
    std::vector<ts::Series> band_dims;
    for (size_t d = 0; d < samples_per_dim.size(); ++d) {
      MC_ASSIGN_OR_RETURN(std::vector<double> agg,
                          QuantileAggregateRagged(samples_per_dim[d], level,
                                                  horizon));
      band_dims.emplace_back(std::move(agg), history.dim(d).name());
    }
    MC_ASSIGN_OR_RETURN(ts::Frame band,
                        ts::Frame::FromSeries(std::move(band_dims),
                                              history.name()));
    result->quantile_bands.emplace_back(level, std::move(band));
  }
  return Status::OK();
}

// The per-forecast backend stack: simulated decoder (or an external
// base backend), optionally behind the fault injector, optionally
// behind the resilient retry layer. All virtual time lands on `clock`.
struct BackendStack {
  std::unique_ptr<lm::SimulatedLlm> base;
  std::unique_ptr<lm::FaultInjectingBackend> faults;
  std::unique_ptr<lm::ResilientBackend> resilient;
  lm::LlmBackend* top = nullptr;

  // Charges one completed call's latency to `clock`. The resilient
  // layer accounts latency itself; without it the stack's reported
  // latency is charged here so deadlines bite either way.
  void ChargeLatency(VirtualClock* clock) const {
    if (resilient == nullptr) clock->Advance(top->last_latency_seconds());
  }
};

BackendStack BuildBackendStack(const MultiCastOptions& options,
                               size_t vocab_size, VirtualClock* clock) {
  BackendStack stack;
  if (options.backend != nullptr) {
    stack.top = options.backend;
  } else {
    stack.base = std::make_unique<lm::SimulatedLlm>(options.profile,
                                                    vocab_size);
    stack.top = stack.base.get();
  }
  if (options.faults.any()) {
    stack.faults = std::make_unique<lm::FaultInjectingBackend>(
        stack.top, options.faults);
    stack.top = stack.faults.get();
  }
  if (options.resilience.retries_enabled) {
    stack.resilient = std::make_unique<lm::ResilientBackend>(
        stack.top, options.resilience.retry, options.resilience.breaker,
        clock);
    stack.top = stack.resilient.get();
  }
  return stack;
}

// Longest prefix of `text` that obeys the multiplexer's position
// grammar, measured in *complete* timestamps. Corrupted generations put
// commas at digit positions (or vice versa); everything before the first
// violation, rounded down to a whole timestamp cycle, is salvageable.
size_t GrammarValidTimestamps(const std::string& text,
                              const multiplex::Multiplexer& mux,
                              const std::vector<int>& widths) {
  const size_t cycle = mux.TokensPerTimestamp(widths);
  size_t complete = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const bool want_comma = mux.IsSeparatorPosition(i % cycle, widths);
    if ((text[i] == ',') != want_comma) break;
    if (i % cycle + 1 == cycle) ++complete;
  }
  return complete;
}

// Outcome of drawing one sample through the backend stack: either a
// usable (possibly shortened) generation or a reason to skip/redraw.
struct SampleDraw {
  bool usable = false;
  std::string text;            // grammar-valid prefix, whole timestamps
  size_t timestamps = 0;       // timestamps `text` covers
  Status failure;              // why the draw was skipped (when !usable)
};

// Draws one sample and salvages the grammar-valid prefix. Terminal
// (non-retryable) statuses propagate as errors; transient failures,
// fully corrupted streams, and cancellation/deadline stops come back as
// unusable draws — the caller's context check decides whether to redraw
// or wind down with what already survived.
Result<SampleDraw> DrawSample(lm::LlmBackend* backend,
                              const std::vector<token::TokenId>& prompt,
                              size_t tokens_needed,
                              const lm::GrammarMask& mask, Rng* sample_rng,
                              const multiplex::Multiplexer& mux,
                              const std::vector<int>& widths,
                              const token::Vocabulary& vocab,
                              const RequestContext& ctx,
                              lm::TokenLedger* ledger) {
  SampleDraw draw;
  lm::CallOptions call;
  call.context = ctx;
  Result<lm::GenerationResult> gen_or =
      backend->Complete(prompt, tokens_needed, mask, sample_rng, call);
  if (!gen_or.ok()) {
    StatusCode code = gen_or.status().code();
    if (code != StatusCode::kCancelled && !IsRetryable(code)) {
      return gen_or.status();
    }
    draw.failure = gen_or.status();
    return draw;
  }
  lm::GenerationResult gen = std::move(gen_or).value();
  *ledger += gen.ledger;
  MC_ASSIGN_OR_RETURN(std::string text, token::Decode(gen.tokens, vocab));
  draw.timestamps = GrammarValidTimestamps(text, mux, widths);
  if (draw.timestamps == 0) {
    draw.failure = Status::Unavailable(
        "generation corrupted before the first complete timestamp");
    return draw;
  }
  text.resize(draw.timestamps * mux.TokensPerTimestamp(widths));
  draw.text = std::move(text);
  draw.usable = true;
  return draw;
}

// Shared post-loop bookkeeping: surviving-sample accounting, degraded
// flag, retry stats, and the minimum-survivor check.
Status FinishSampling(const MultiCastOptions& options, int survivors,
                      const Status& last_failure, const BackendStack& stack,
                      ForecastResult* result) {
  result->samples_requested = static_cast<size_t>(options.num_samples);
  result->samples_used = static_cast<size_t>(survivors);
  if (stack.resilient != nullptr) {
    result->retry_stats = stack.resilient->stats();
  }
  const int min_samples = std::max(1, options.resilience.min_samples);
  if (survivors < min_samples) {
    Status cause = last_failure.ok()
                       ? Status::Unavailable("no failure recorded")
                       : last_failure;
    return Status(cause.code(),
                  StrFormat("only %d of %d samples survived (minimum %d); "
                            "last failure: %s",
                            survivors, options.num_samples, min_samples,
                            cause.ToString().c_str()));
  }
  if (survivors < options.num_samples) {
    result->degraded = true;
    result->warnings.push_back(
        StrFormat("aggregated %d of %d requested samples", survivors,
                  options.num_samples));
  }
  return Status::OK();
}

}  // namespace

const char* QuantizationName(Quantization q) {
  switch (q) {
    case Quantization::kNone:
      return "none";
    case Quantization::kSaxAlphabetic:
      return "alphabetical";
    case Quantization::kSaxDigital:
      return "digital";
  }
  return "?";
}

MultiCastForecaster::MultiCastForecaster(const MultiCastOptions& options)
    : options_(options) {
  options_.scaler.digits = options_.digits;
}

std::string MultiCastForecaster::name() const {
  if (options_.quantization == Quantization::kNone) {
    return StrFormat("MultiCast (%s)",
                     multiplex::MuxKindName(options_.mux));
  }
  return StrFormat("MultiCast SAX (%s)",
                   QuantizationName(options_.quantization));
}

Result<ForecastResult> MultiCastForecaster::Forecast(const ts::Frame& history,
                                                     size_t horizon,
                                                     const RequestContext& ctx) {
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (history.length() < 4) {
    return Status::InvalidArgument("history too short to forecast from");
  }
  if (options_.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  MC_RETURN_IF_ERROR(ctx.Check(name().c_str()));
  if (options_.quantization == Quantization::kNone) {
    return ForecastRaw(history, horizon, ctx);
  }
  return ForecastSax(history, horizon, ctx);
}

Result<ForecastResult> MultiCastForecaster::ForecastRaw(
    const ts::Frame& history, size_t horizon, const RequestContext& ctx) {
  Timer timer;
  const size_t dims = history.num_dims();

  // 1. Rescale every dimension to b-digit integers (fit on history only).
  std::vector<scale::ScalerParams> params(dims);
  multiplex::MuxInput input;
  input.values.resize(dims);
  std::vector<int> widths(dims, options_.digits);
  for (size_t d = 0; d < dims; ++d) {
    MC_ASSIGN_OR_RETURN(params[d],
                        scale::FitScaler(history.dim(d), options_.scaler));
    std::vector<int64_t> scaled =
        scale::ScaleValues(history.dim(d).values(), params[d]);
    input.values[d].reserve(scaled.size());
    for (int64_t v : scaled) {
      MC_ASSIGN_OR_RETURN(std::string s,
                          token::FixedWidthDigits(v, options_.digits));
      input.values[d].push_back(std::move(s));
    }
  }

  // 2. Multiplex to one stream; the trailing comma opens a new timestamp
  // so generation starts at the first digit position of the cycle.
  std::unique_ptr<multiplex::Multiplexer> mux =
      multiplex::CreateMultiplexer(options_.mux);
  MC_ASSIGN_OR_RETURN(std::string stream, mux->Multiplex(input, widths));
  stream.push_back(',');

  // 3. Tokenize.
  token::Vocabulary vocab = token::Vocabulary::Digits();
  MC_ASSIGN_OR_RETURN(std::vector<token::TokenId> prompt,
                      token::Encode(stream, vocab));

  // 4. Draw constrained continuations through the backend stack,
  // redrawing failed samples up to the resilience cap.
  size_t tokens_needed = horizon * mux->TokensPerTimestamp(widths);
  lm::GrammarMask mask = StructuredMask(*mux, widths, vocab);
  if (options_.backend != nullptr &&
      options_.backend->vocab_size() != vocab.size()) {
    return Status::InvalidArgument(StrFormat(
        "external backend vocabulary size %zu does not match the "
        "pipeline's %zu",
        options_.backend->vocab_size(), vocab.size()));
  }
  VirtualClock local_clock;
  VirtualClock* clock = ctx.clock != nullptr ? ctx.clock : &local_clock;
  const double virtual_start = clock->now();
  BackendStack stack = BuildBackendStack(options_, vocab.size(), clock);
  Rng rng(options_.seed, /*stream=*/7);

  // samples_per_dim[d][s] is sample s of dimension d (possibly a
  // salvaged prefix shorter than `horizon`).
  std::vector<std::vector<std::vector<double>>> samples_per_dim(dims);
  ForecastResult result;
  const int target = options_.num_samples;
  const int max_draws = target + std::max(0, options_.resilience.max_redraws);
  int survivors = 0;
  Status last_failure = Status::OK();
  for (int s = 0; s < max_draws && survivors < target; ++s) {
    Status active = ctx.Check("sample loop");
    if (!active.ok()) {
      // The request died mid-pipeline: stop issuing LLM calls and wind
      // down with whatever already survived.
      last_failure = active;
      result.warnings.push_back(StrFormat(
          "stopped issuing LLM calls after %d surviving samples: %s",
          survivors, active.ToString().c_str()));
      break;
    }
    Rng sample_rng = rng.Fork();
    MC_ASSIGN_OR_RETURN(
        SampleDraw draw,
        DrawSample(stack.top, prompt, tokens_needed, mask, &sample_rng,
                   *mux, widths, vocab, ctx, &result.ledger));
    stack.ChargeLatency(clock);
    if (!draw.usable) {
      last_failure = draw.failure;
      result.warnings.push_back(StrFormat(
          "sample draw %d lost: %s", s, draw.failure.ToString().c_str()));
      continue;
    }

    // 5. Demultiplex and descale the salvaged prefix of this sample.
    MC_ASSIGN_OR_RETURN(
        multiplex::MuxInput demuxed,
        mux->Demultiplex(draw.text, widths, /*allow_partial=*/true));
    const size_t usable =
        std::min<size_t>(horizon, demuxed.num_timestamps());
    if (usable < horizon) {
      result.degraded = true;
      result.warnings.push_back(StrFormat(
          "sample draw %d truncated: salvaged %zu of %zu timestamps", s,
          usable, horizon));
    }
    for (size_t d = 0; d < dims; ++d) {
      std::vector<int64_t> scaled;
      scaled.reserve(usable);
      for (size_t t = 0; t < usable; ++t) {
        MC_ASSIGN_OR_RETURN(int64_t v,
                            token::ParseFixedWidthDigits(demuxed.values[d][t]));
        scaled.push_back(v);
      }
      samples_per_dim[d].push_back(scale::DescaleValues(scaled, params[d]));
    }
    ++survivors;
  }
  MC_RETURN_IF_ERROR(
      FinishSampling(options_, survivors, last_failure, stack, &result));

  // 6. Median across surviving samples (+ quantile bands), per dimension
  // and timestamp.
  MC_RETURN_IF_ERROR(FillAggregates(samples_per_dim, history,
                                    options_.quantiles, horizon, &result));
  result.seconds = timer.Seconds();
  result.virtual_seconds = clock->now() - virtual_start;
  return result;
}

Result<ForecastResult> MultiCastForecaster::ForecastSax(
    const ts::Frame& history, size_t horizon, const RequestContext& ctx) {
  Timer timer;
  const size_t dims = history.num_dims();
  const bool digital = options_.quantization == Quantization::kSaxDigital;

  sax::SaxOptions sax_opts;
  sax_opts.segment_length = options_.sax_segment_length;
  sax_opts.alphabet_size = options_.sax_alphabet_size;
  sax_opts.symbols =
      digital ? sax::SymbolKind::kDigital : sax::SymbolKind::kAlphabetic;

  // 1. SAX-encode every dimension: one symbol per PAA segment.
  std::vector<sax::SaxCodec> codecs;
  multiplex::MuxInput input;
  input.values.resize(dims);
  std::vector<int> widths(dims, 1);
  for (size_t d = 0; d < dims; ++d) {
    MC_ASSIGN_OR_RETURN(sax::SaxCodec codec,
                        sax::SaxCodec::Fit(history.dim(d), sax_opts));
    MC_ASSIGN_OR_RETURN(std::string word,
                        codec.Encode(history.dim(d).values()));
    input.values[d].reserve(word.size());
    for (char c : word) input.values[d].emplace_back(1, c);
    codecs.push_back(std::move(codec));
  }

  // 2. Multiplex the symbol streams (each "timestamp" is one PAA segment).
  std::unique_ptr<multiplex::Multiplexer> mux =
      multiplex::CreateMultiplexer(options_.mux);
  MC_ASSIGN_OR_RETURN(std::string stream, mux->Multiplex(input, widths));
  stream.push_back(',');

  // 3. Tokenize over the SAX vocabulary (the generation constraint set
  // becomes the active alphabet plus comma instead of [0-9,]).
  Result<token::Vocabulary> vocab_or =
      digital ? token::Vocabulary::SaxDigital(options_.sax_alphabet_size)
              : token::Vocabulary::SaxAlphabetic(options_.sax_alphabet_size);
  if (!vocab_or.ok()) return vocab_or.status();
  token::Vocabulary vocab = std::move(vocab_or).value();
  MC_ASSIGN_OR_RETURN(std::vector<token::TokenId> prompt,
                      token::Encode(stream, vocab));

  // 4. Generate enough whole segments to cover `horizon` raw timestamps.
  size_t segments_needed =
      (horizon + static_cast<size_t>(options_.sax_segment_length) - 1) /
      static_cast<size_t>(options_.sax_segment_length);
  size_t tokens_needed = segments_needed * mux->TokensPerTimestamp(widths);
  lm::GrammarMask mask = StructuredMask(*mux, widths, vocab);
  if (options_.backend != nullptr &&
      options_.backend->vocab_size() != vocab.size()) {
    return Status::InvalidArgument(StrFormat(
        "external backend vocabulary size %zu does not match the "
        "pipeline's %zu",
        options_.backend->vocab_size(), vocab.size()));
  }
  VirtualClock local_clock;
  VirtualClock* clock = ctx.clock != nullptr ? ctx.clock : &local_clock;
  const double virtual_start = clock->now();
  BackendStack stack = BuildBackendStack(options_, vocab.size(), clock);
  Rng rng(options_.seed, /*stream=*/11);

  const size_t segment_length =
      static_cast<size_t>(options_.sax_segment_length);
  std::vector<std::vector<std::vector<double>>> samples_per_dim(dims);
  ForecastResult result;
  const int target = options_.num_samples;
  const int max_draws = target + std::max(0, options_.resilience.max_redraws);
  int survivors = 0;
  Status last_failure = Status::OK();
  for (int s = 0; s < max_draws && survivors < target; ++s) {
    Status active = ctx.Check("sample loop");
    if (!active.ok()) {
      last_failure = active;
      result.warnings.push_back(StrFormat(
          "stopped issuing LLM calls after %d surviving samples: %s",
          survivors, active.ToString().c_str()));
      break;
    }
    Rng sample_rng = rng.Fork();
    MC_ASSIGN_OR_RETURN(
        SampleDraw draw,
        DrawSample(stack.top, prompt, tokens_needed, mask, &sample_rng,
                   *mux, widths, vocab, ctx, &result.ledger));
    stack.ChargeLatency(clock);
    if (!draw.usable) {
      last_failure = draw.failure;
      result.warnings.push_back(StrFormat(
          "sample draw %d lost: %s", s, draw.failure.ToString().c_str()));
      continue;
    }

    // 5. Demultiplex the salvaged symbol stream back into per-dimension
    // SAX words (one symbol per surviving segment).
    MC_ASSIGN_OR_RETURN(
        multiplex::MuxInput demuxed,
        mux->Demultiplex(draw.text, widths, /*allow_partial=*/true));
    const size_t usable_segments =
        std::min(segments_needed, demuxed.num_timestamps());
    const size_t usable_steps =
        std::min(horizon, usable_segments * segment_length);
    if (usable_segments < segments_needed) {
      result.degraded = true;
      result.warnings.push_back(StrFormat(
          "sample draw %d truncated: salvaged %zu of %zu segments", s,
          usable_segments, segments_needed));
    }
    for (size_t d = 0; d < dims; ++d) {
      std::string word;
      word.reserve(usable_segments);
      for (size_t seg = 0; seg < usable_segments; ++seg) {
        word.push_back(demuxed.values[d][seg][0]);
      }
      MC_ASSIGN_OR_RETURN(std::vector<double> values,
                          codecs[d].Decode(word, usable_steps));
      samples_per_dim[d].push_back(std::move(values));
    }
    ++survivors;
  }
  MC_RETURN_IF_ERROR(
      FinishSampling(options_, survivors, last_failure, stack, &result));

  MC_RETURN_IF_ERROR(FillAggregates(samples_per_dim, history,
                                    options_.quantiles, horizon, &result));
  result.seconds = timer.Seconds();
  result.virtual_seconds = clock->now() - virtual_start;
  return result;
}

Result<std::vector<double>> MedianAggregate(
    const std::vector<std::vector<double>>& samples) {
  return QuantileAggregate(samples, 0.5);
}

Result<std::vector<double>> QuantileAggregate(
    const std::vector<std::vector<double>>& samples, double q) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile %g outside (0, 1)", q));
  }
  size_t h = samples[0].size();
  for (const auto& s : samples) {
    if (s.size() != h) {
      return Status::InvalidArgument("samples have differing horizons");
    }
  }
  if (h == 0) {
    return Status::InvalidArgument(
        StrFormat("all %zu samples are empty: nothing to aggregate",
                  samples.size()));
  }
  std::vector<double> out;
  out.reserve(h);
  for (size_t t = 0; t < h; ++t) {
    std::vector<double> column;
    column.reserve(samples.size());
    for (const auto& s : samples) column.push_back(s[t]);
    out.push_back(ts::Quantile(std::move(column), q));
  }
  return out;
}

Result<std::vector<double>> QuantileAggregateRagged(
    const std::vector<std::vector<double>>& samples, double q,
    size_t out_length, bool* held_tail) {
  if (held_tail != nullptr) *held_tail = false;
  if (samples.empty()) {
    return Status::InvalidArgument("no surviving samples to aggregate");
  }
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile %g outside (0, 1)", q));
  }
  if (out_length == 0) {
    return Status::InvalidArgument("requested aggregate length is zero");
  }
  bool any_nonempty = false;
  for (const auto& s : samples) {
    if (!s.empty()) {
      any_nonempty = true;
      break;
    }
  }
  if (!any_nonempty) {
    return Status::InvalidArgument(
        StrFormat("all %zu surviving samples are empty: nothing to "
                  "aggregate",
                  samples.size()));
  }
  std::vector<double> out;
  out.reserve(out_length);
  for (size_t t = 0; t < out_length; ++t) {
    std::vector<double> column;
    column.reserve(samples.size());
    for (const auto& s : samples) {
      if (t < s.size()) column.push_back(s[t]);
    }
    if (column.empty()) {
      if (out.empty()) {
        return Status::InvalidArgument(
            "no sample covers the first timestamp");
      }
      // Hold the last aggregated value: shape is preserved even when
      // every surviving sample was truncated short of the horizon.
      out.push_back(out.back());
      if (held_tail != nullptr) *held_tail = true;
      continue;
    }
    out.push_back(ts::Quantile(std::move(column), q));
  }
  return out;
}

}  // namespace forecast
}  // namespace multicast
