#include "forecast/multicast_forecaster.h"

#include <algorithm>

#include "token/codec.h"
#include "ts/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

namespace {

// Builds the per-step grammar mask for a multiplexed digit stream: comma
// at separator positions of the timestamp cycle, any non-comma symbol
// elsewhere.
lm::GrammarMask StructuredMask(const multiplex::Multiplexer& mux,
                               const std::vector<int>& widths,
                               const token::Vocabulary& vocab) {
  size_t cycle = mux.TokensPerTimestamp(widths);
  std::vector<bool> separator_positions(cycle);
  for (size_t p = 0; p < cycle; ++p) {
    separator_positions[p] = mux.IsSeparatorPosition(p, widths);
  }
  token::TokenId comma = vocab.CommaId().ValueOrDie();
  size_t vocab_size = vocab.size();
  return [=](size_t step) {
    bool want_comma = separator_positions[step % cycle];
    std::vector<bool> allowed(vocab_size, !want_comma);
    allowed[static_cast<size_t>(comma)] = want_comma;
    return allowed;
  };
}

// Builds the median point forecast and any requested quantile bands
// from the per-dimension sample matrix, writing into `result`.
Status FillAggregates(
    const std::vector<std::vector<std::vector<double>>>& samples_per_dim,
    const ts::Frame& history, const std::vector<double>& quantiles,
    ForecastResult* result) {
  std::vector<ts::Series> out_dims;
  for (size_t d = 0; d < samples_per_dim.size(); ++d) {
    MC_ASSIGN_OR_RETURN(std::vector<double> agg,
                        MedianAggregate(samples_per_dim[d]));
    out_dims.emplace_back(std::move(agg), history.dim(d).name());
  }
  MC_ASSIGN_OR_RETURN(result->forecast,
                      ts::Frame::FromSeries(std::move(out_dims),
                                            history.name()));

  std::vector<double> sorted_levels = quantiles;
  std::sort(sorted_levels.begin(), sorted_levels.end());
  for (double level : sorted_levels) {
    if (!(level > 0.0 && level < 1.0)) {
      return Status::InvalidArgument(
          StrFormat("quantile level %g outside (0, 1)", level));
    }
    std::vector<ts::Series> band_dims;
    for (size_t d = 0; d < samples_per_dim.size(); ++d) {
      MC_ASSIGN_OR_RETURN(std::vector<double> agg,
                          QuantileAggregate(samples_per_dim[d], level));
      band_dims.emplace_back(std::move(agg), history.dim(d).name());
    }
    MC_ASSIGN_OR_RETURN(ts::Frame band,
                        ts::Frame::FromSeries(std::move(band_dims),
                                              history.name()));
    result->quantile_bands.emplace_back(level, std::move(band));
  }
  return Status::OK();
}

}  // namespace

const char* QuantizationName(Quantization q) {
  switch (q) {
    case Quantization::kNone:
      return "none";
    case Quantization::kSaxAlphabetic:
      return "alphabetical";
    case Quantization::kSaxDigital:
      return "digital";
  }
  return "?";
}

MultiCastForecaster::MultiCastForecaster(const MultiCastOptions& options)
    : options_(options) {
  options_.scaler.digits = options_.digits;
}

std::string MultiCastForecaster::name() const {
  if (options_.quantization == Quantization::kNone) {
    return StrFormat("MultiCast (%s)",
                     multiplex::MuxKindName(options_.mux));
  }
  return StrFormat("MultiCast SAX (%s)",
                   QuantizationName(options_.quantization));
}

Result<ForecastResult> MultiCastForecaster::Forecast(const ts::Frame& history,
                                                     size_t horizon) {
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (history.length() < 4) {
    return Status::InvalidArgument("history too short to forecast from");
  }
  if (options_.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  if (options_.quantization == Quantization::kNone) {
    return ForecastRaw(history, horizon);
  }
  return ForecastSax(history, horizon);
}

Result<ForecastResult> MultiCastForecaster::ForecastRaw(
    const ts::Frame& history, size_t horizon) {
  Timer timer;
  const size_t dims = history.num_dims();

  // 1. Rescale every dimension to b-digit integers (fit on history only).
  std::vector<scale::ScalerParams> params(dims);
  multiplex::MuxInput input;
  input.values.resize(dims);
  std::vector<int> widths(dims, options_.digits);
  for (size_t d = 0; d < dims; ++d) {
    MC_ASSIGN_OR_RETURN(params[d],
                        scale::FitScaler(history.dim(d), options_.scaler));
    std::vector<int64_t> scaled =
        scale::ScaleValues(history.dim(d).values(), params[d]);
    input.values[d].reserve(scaled.size());
    for (int64_t v : scaled) {
      MC_ASSIGN_OR_RETURN(std::string s,
                          token::FixedWidthDigits(v, options_.digits));
      input.values[d].push_back(std::move(s));
    }
  }

  // 2. Multiplex to one stream; the trailing comma opens a new timestamp
  // so generation starts at the first digit position of the cycle.
  std::unique_ptr<multiplex::Multiplexer> mux =
      multiplex::CreateMultiplexer(options_.mux);
  MC_ASSIGN_OR_RETURN(std::string stream, mux->Multiplex(input, widths));
  stream.push_back(',');

  // 3. Tokenize.
  token::Vocabulary vocab = token::Vocabulary::Digits();
  MC_ASSIGN_OR_RETURN(std::vector<token::TokenId> prompt,
                      token::Encode(stream, vocab));

  // 4. Draw n constrained continuations.
  size_t tokens_needed = horizon * mux->TokensPerTimestamp(widths);
  lm::GrammarMask mask = StructuredMask(*mux, widths, vocab);
  lm::SimulatedLlm llm(options_.profile, vocab.size());
  Rng rng(options_.seed, /*stream=*/7);

  // samples_per_dim[d][s] is sample s of dimension d.
  std::vector<std::vector<std::vector<double>>> samples_per_dim(dims);
  ForecastResult result;
  for (int s = 0; s < options_.num_samples; ++s) {
    Rng sample_rng = rng.Fork();
    MC_ASSIGN_OR_RETURN(
        lm::GenerationResult gen,
        llm.Complete(prompt, tokens_needed, mask, &sample_rng));
    result.ledger += gen.ledger;
    MC_ASSIGN_OR_RETURN(std::string text, token::Decode(gen.tokens, vocab));

    // 5. Demultiplex and descale this sample.
    MC_ASSIGN_OR_RETURN(
        multiplex::MuxInput demuxed,
        mux->Demultiplex(text, widths, /*allow_partial=*/true));
    if (demuxed.num_timestamps() < horizon) {
      return Status::Internal(
          StrFormat("sample %d decoded %zu of %zu timestamps", s,
                    demuxed.num_timestamps(), horizon));
    }
    for (size_t d = 0; d < dims; ++d) {
      std::vector<int64_t> scaled;
      scaled.reserve(horizon);
      for (size_t t = 0; t < horizon; ++t) {
        MC_ASSIGN_OR_RETURN(int64_t v,
                            token::ParseFixedWidthDigits(demuxed.values[d][t]));
        scaled.push_back(v);
      }
      samples_per_dim[d].push_back(scale::DescaleValues(scaled, params[d]));
    }
  }

  // 6. Median across samples (+ quantile bands), per dimension and
  // timestamp.
  MC_RETURN_IF_ERROR(FillAggregates(samples_per_dim, history,
                                    options_.quantiles, &result));
  result.seconds = timer.Seconds();
  return result;
}

Result<ForecastResult> MultiCastForecaster::ForecastSax(
    const ts::Frame& history, size_t horizon) {
  Timer timer;
  const size_t dims = history.num_dims();
  const bool digital = options_.quantization == Quantization::kSaxDigital;

  sax::SaxOptions sax_opts;
  sax_opts.segment_length = options_.sax_segment_length;
  sax_opts.alphabet_size = options_.sax_alphabet_size;
  sax_opts.symbols =
      digital ? sax::SymbolKind::kDigital : sax::SymbolKind::kAlphabetic;

  // 1. SAX-encode every dimension: one symbol per PAA segment.
  std::vector<sax::SaxCodec> codecs;
  multiplex::MuxInput input;
  input.values.resize(dims);
  std::vector<int> widths(dims, 1);
  for (size_t d = 0; d < dims; ++d) {
    MC_ASSIGN_OR_RETURN(sax::SaxCodec codec,
                        sax::SaxCodec::Fit(history.dim(d), sax_opts));
    MC_ASSIGN_OR_RETURN(std::string word,
                        codec.Encode(history.dim(d).values()));
    input.values[d].reserve(word.size());
    for (char c : word) input.values[d].emplace_back(1, c);
    codecs.push_back(std::move(codec));
  }

  // 2. Multiplex the symbol streams (each "timestamp" is one PAA segment).
  std::unique_ptr<multiplex::Multiplexer> mux =
      multiplex::CreateMultiplexer(options_.mux);
  MC_ASSIGN_OR_RETURN(std::string stream, mux->Multiplex(input, widths));
  stream.push_back(',');

  // 3. Tokenize over the SAX vocabulary (the generation constraint set
  // becomes the active alphabet plus comma instead of [0-9,]).
  Result<token::Vocabulary> vocab_or =
      digital ? token::Vocabulary::SaxDigital(options_.sax_alphabet_size)
              : token::Vocabulary::SaxAlphabetic(options_.sax_alphabet_size);
  if (!vocab_or.ok()) return vocab_or.status();
  token::Vocabulary vocab = std::move(vocab_or).value();
  MC_ASSIGN_OR_RETURN(std::vector<token::TokenId> prompt,
                      token::Encode(stream, vocab));

  // 4. Generate enough whole segments to cover `horizon` raw timestamps.
  size_t segments_needed =
      (horizon + static_cast<size_t>(options_.sax_segment_length) - 1) /
      static_cast<size_t>(options_.sax_segment_length);
  size_t tokens_needed = segments_needed * mux->TokensPerTimestamp(widths);
  lm::GrammarMask mask = StructuredMask(*mux, widths, vocab);
  lm::SimulatedLlm llm(options_.profile, vocab.size());
  Rng rng(options_.seed, /*stream=*/11);

  std::vector<std::vector<std::vector<double>>> samples_per_dim(dims);
  ForecastResult result;
  for (int s = 0; s < options_.num_samples; ++s) {
    Rng sample_rng = rng.Fork();
    MC_ASSIGN_OR_RETURN(
        lm::GenerationResult gen,
        llm.Complete(prompt, tokens_needed, mask, &sample_rng));
    result.ledger += gen.ledger;
    MC_ASSIGN_OR_RETURN(std::string text, token::Decode(gen.tokens, vocab));

    // 5. Demultiplex the symbol stream back into per-dimension SAX words.
    MC_ASSIGN_OR_RETURN(
        multiplex::MuxInput demuxed,
        mux->Demultiplex(text, widths, /*allow_partial=*/true));
    std::vector<std::string> words(dims);
    for (size_t d = 0; d < dims; ++d) {
      for (const std::string& symbol : demuxed.values[d]) {
        words[d].push_back(symbol[0]);
      }
    }
    for (size_t d = 0; d < dims; ++d) {
      if (words[d].size() < segments_needed) {
        return Status::Internal(
            StrFormat("sample %d decoded %zu of %zu segments", s,
                      words[d].size(), segments_needed));
      }
      words[d].resize(segments_needed);
      MC_ASSIGN_OR_RETURN(std::vector<double> values,
                          codecs[d].Decode(words[d], horizon));
      samples_per_dim[d].push_back(std::move(values));
    }
  }

  MC_RETURN_IF_ERROR(FillAggregates(samples_per_dim, history,
                                    options_.quantiles, &result));
  result.seconds = timer.Seconds();
  return result;
}

Result<std::vector<double>> MedianAggregate(
    const std::vector<std::vector<double>>& samples) {
  return QuantileAggregate(samples, 0.5);
}

Result<std::vector<double>> QuantileAggregate(
    const std::vector<std::vector<double>>& samples, double q) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile %g outside (0, 1)", q));
  }
  size_t h = samples[0].size();
  for (const auto& s : samples) {
    if (s.size() != h) {
      return Status::InvalidArgument("samples have differing horizons");
    }
  }
  std::vector<double> out;
  out.reserve(h);
  for (size_t t = 0; t < h; ++t) {
    std::vector<double> column;
    column.reserve(samples.size());
    for (const auto& s : samples) column.push_back(s[t]);
    out.push_back(ts::Quantile(std::move(column), q));
  }
  return out;
}

}  // namespace forecast
}  // namespace multicast
