#include "forecast/multicast_forecaster.h"

#include <algorithm>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "batch/batch_llm.h"
#include "forecast/classical.h"
#include "lm/draft.h"
#include "lm/generator.h"
#include "lm/resilient_backend.h"
#include "token/codec.h"
#include "ts/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

namespace {

// Builds the per-step grammar mask for a multiplexed digit stream: comma
// at separator positions of the timestamp cycle, any non-comma symbol
// elsewhere.
lm::GrammarMask StructuredMask(const multiplex::Multiplexer& mux,
                               const std::vector<int>& widths,
                               const token::Vocabulary& vocab) {
  size_t cycle = mux.TokensPerTimestamp(widths);
  token::TokenId comma = vocab.CommaId().ValueOrDie();
  size_t vocab_size = vocab.size();
  // One shared immutable mask per cycle position, built once; declaring
  // the period lets the decode loop stop calling the functor entirely.
  std::vector<lm::GrammarMask::Shared> positions(cycle);
  for (size_t p = 0; p < cycle; ++p) {
    bool want_comma = mux.IsSeparatorPosition(p, widths);
    std::vector<bool> allowed(vocab_size, !want_comma);
    allowed[static_cast<size_t>(comma)] = want_comma;
    positions[p] =
        std::make_shared<const std::vector<bool>>(std::move(allowed));
  }
  return lm::GrammarMask(
      [positions = std::move(positions), cycle](size_t step) {
        return positions[step % cycle];
      },
      /*period=*/cycle);
}

// Builds the median point forecast and any requested quantile bands
// from the per-dimension sample matrix, writing into `result`. Samples
// may be ragged (salvaged prefixes); the output is always dims x
// `horizon`, and any hold-last fill marks the result degraded.
Status FillAggregates(
    const std::vector<std::vector<std::vector<double>>>& samples_per_dim,
    const ts::Frame& history, const std::vector<double>& quantiles,
    size_t horizon, ForecastResult* result) {
  std::vector<ts::Series> out_dims;
  for (size_t d = 0; d < samples_per_dim.size(); ++d) {
    bool held_tail = false;
    MC_ASSIGN_OR_RETURN(std::vector<double> agg,
                        QuantileAggregateRagged(samples_per_dim[d], 0.5,
                                                horizon, &held_tail));
    if (held_tail) {
      result->degraded = true;
      result->warnings.push_back(StrFormat(
          "dimension %zu: no surviving sample covers the full horizon; "
          "tail timestamps hold the last aggregated value", d));
    }
    out_dims.emplace_back(std::move(agg), history.dim(d).name());
  }
  MC_ASSIGN_OR_RETURN(result->forecast,
                      ts::Frame::FromSeries(std::move(out_dims),
                                            history.name()));

  // Validate every level before computing any band (an invalid level
  // must not leave the bands half-built), then dedupe: repeated levels
  // would emit identical bands under one level twice.
  for (double level : quantiles) {
    if (!(level > 0.0 && level < 1.0)) {
      return Status::InvalidArgument(
          StrFormat("quantile level %g outside (0, 1)", level));
    }
  }
  std::vector<double> sorted_levels = quantiles;
  std::sort(sorted_levels.begin(), sorted_levels.end());
  sorted_levels.erase(
      std::unique(sorted_levels.begin(), sorted_levels.end()),
      sorted_levels.end());
  for (double level : sorted_levels) {
    std::vector<ts::Series> band_dims;
    for (size_t d = 0; d < samples_per_dim.size(); ++d) {
      MC_ASSIGN_OR_RETURN(std::vector<double> agg,
                          QuantileAggregateRagged(samples_per_dim[d], level,
                                                  horizon));
      band_dims.emplace_back(std::move(agg), history.dim(d).name());
    }
    MC_ASSIGN_OR_RETURN(ts::Frame band,
                        ts::Frame::FromSeries(std::move(band_dims),
                                              history.name()));
    result->quantile_bands.emplace_back(level, std::move(band));
  }
  return Status::OK();
}

// Splitmix-style decorrelation of a base seed per draw (or dimension)
// index; the golden-ratio stride keeps nearby indices far apart in seed
// space.
uint64_t MixSeed(uint64_t seed, uint64_t index) {
  return seed + 0x9e3779b97f4a7c15ULL * (index + 1);
}

// Renders per-dimension value strings for `timestamps` timestamps
// through the multiplexer and vocabulary into the exact token stream
// the decode loop is expected to produce (trailing separator included —
// the prompt ends on a comma, so generation covers whole cycles).
// Returns empty on any mismatch: a draft template is an accelerator,
// never a correctness dependency, so every failure degrades to "no
// template" instead of an error.
std::vector<token::TokenId> RenderDraftTemplate(
    const multiplex::MuxInput& input, const std::vector<int>& widths,
    const multiplex::Multiplexer& mux, const token::Vocabulary& vocab,
    size_t timestamps) {
  Result<std::string> text = mux.Multiplex(input, widths);
  if (!text.ok()) return {};
  std::string stream = std::move(text).value();
  stream.push_back(',');
  if (stream.size() != timestamps * mux.TokensPerTimestamp(widths)) {
    return {};
  }
  Result<std::vector<token::TokenId>> tokens = token::Encode(stream, vocab);
  if (!tokens.ok()) return {};
  return std::move(tokens).value();
}

// Classical next-value drafting for the raw pipeline: the statistical
// tier (forecast/classical.h) predicts the whole horizon once, and the
// prediction is rendered through the same fitted scaler parameters,
// multiplexer and vocabulary as the prompt. The result is the token
// stream the target would emit if it agreed with the classical model
// everywhere; per-step agreement is the speculative acceptance rate.
std::vector<token::TokenId> ClassicalDraftRaw(
    const ts::Frame& history, size_t horizon,
    const std::vector<scale::ScalerParams>& params,
    const std::vector<int>& widths, const multiplex::Multiplexer& mux,
    const token::Vocabulary& vocab, int digits) {
  ClassicalOptions copts;
  copts.quantiles.clear();  // point forecast only — bands are unused here
  ClassicalForecaster classical(copts);
  Result<ForecastResult> r = classical.Forecast(history, horizon);
  if (!r.ok()) return {};
  const ts::Frame& fc = r.value().forecast;
  int64_t limit = 1;
  for (int i = 0; i < digits; ++i) limit *= 10;
  multiplex::MuxInput input;
  input.values.resize(fc.num_dims());
  for (size_t d = 0; d < fc.num_dims(); ++d) {
    std::vector<int64_t> scaled =
        scale::ScaleValues(fc.dim(d).values(), params[d]);
    input.values[d].reserve(scaled.size());
    for (int64_t v : scaled) {
      // The classical prediction may leave the band the scaler fitted on
      // history; a clamped digit string is still a usable proposal.
      v = std::clamp<int64_t>(v, 0, limit - 1);
      Result<std::string> s = token::FixedWidthDigits(v, digits);
      if (!s.ok()) return {};
      input.values[d].push_back(std::move(s).value());
    }
  }
  return RenderDraftTemplate(input, widths, mux, vocab, horizon);
}

// Classical drafting for the SAX pipeline: the classical forecast
// covers every raw timestamp of the generated segments and is encoded
// through the per-dimension codecs fitted on history.
std::vector<token::TokenId> ClassicalDraftSax(
    const ts::Frame& history, size_t segments_needed, size_t segment_length,
    const std::vector<sax::SaxCodec>& codecs, const std::vector<int>& widths,
    const multiplex::Multiplexer& mux, const token::Vocabulary& vocab) {
  ClassicalOptions copts;
  copts.quantiles.clear();
  ClassicalForecaster classical(copts);
  Result<ForecastResult> r =
      classical.Forecast(history, segments_needed * segment_length);
  if (!r.ok()) return {};
  const ts::Frame& fc = r.value().forecast;
  multiplex::MuxInput input;
  input.values.resize(fc.num_dims());
  for (size_t d = 0; d < fc.num_dims(); ++d) {
    Result<std::string> word = codecs[d].Encode(fc.dim(d).values());
    if (!word.ok() || word.value().size() != segments_needed) return {};
    input.values[d].reserve(segments_needed);
    for (char c : word.value()) input.values[d].emplace_back(1, c);
  }
  return RenderDraftTemplate(input, widths, mux, vocab, segments_needed);
}

// Resolves the speculative-decode policy for one forecast. Speculation
// requires the batch scheduler (the step engine lives there) and the
// internal simulated backend; otherwise the policy stays disabled. The
// classical template proposer is preferred when it rendered; the n-gram
// proposer is both the kNGram choice and the classical fallback, so a
// forecast that asked for speculation always drafts.
batch::SpeculativePolicy ResolveSpeculative(
    const MultiCastOptions& options, const token::Vocabulary& vocab,
    std::vector<token::TokenId> template_tokens) {
  batch::SpeculativePolicy spec;
  if (!options.speculative || options.draft_k < 1 ||
      options.batch_scheduler == nullptr || options.backend != nullptr) {
    return spec;
  }
  spec.draft_k = static_cast<size_t>(options.draft_k);
  if (options.draft == DraftKind::kClassical && !template_tokens.empty()) {
    auto shared = std::make_shared<const std::vector<token::TokenId>>(
        std::move(template_tokens));
    spec.factory = [shared](const std::vector<token::TokenId>&)
        -> std::unique_ptr<lm::DraftModel> {
      return std::make_unique<lm::TemplateDraftModel>(*shared);
    };
  } else {
    spec.factory = lm::MakeNGramDraftFactory(vocab.size());
  }
  return spec;
}

// One draw's private backend stack: simulated decoder (or the shared
// serialized external backend), optionally behind a fault injector,
// optionally behind the resilient retry layer. Each draw owns the whole
// stack, so per-call mutable state (fault schedules, breaker counters,
// latency accessors) is never shared across worker threads. All virtual
// time lands on the draw's branch `clock`.
struct BackendStack {
  std::unique_ptr<lm::LlmBackend> base;
  std::unique_ptr<lm::FaultInjectingBackend> faults;
  std::unique_ptr<lm::ResilientBackend> resilient;
  lm::LlmBackend* top = nullptr;
};

BackendStack BuildDrawStack(const MultiCastOptions& options,
                            size_t vocab_size, VirtualClock* clock,
                            lm::LlmBackend* external, uint64_t draw_index,
                            const std::shared_ptr<lm::PrefixCache>& cache,
                            const batch::SpeculativePolicy& speculative) {
  BackendStack stack;
  if (external != nullptr) {
    stack.top = external;
  } else {
    // The shared prefix cache is the one deliberate exception to
    // "nothing shared across draws": it is internally synchronized and
    // only ever hands out forks of immutable state, so draws stay
    // isolated and bit-identical (see lm/prefix_cache.h).
    if (options.batch_scheduler != nullptr) {
      // Same validation/session/grammar front-end as SimulatedLlm, but
      // the token loop runs inside the shared continuous-batching
      // scheduler — draws from every pipeline on this scheduler decode
      // one token per step together. Bit-identical output either way.
      stack.base = std::make_unique<batch::BatchLlm>(
          options.profile, vocab_size, options.batch_scheduler, cache,
          speculative);
    } else {
      stack.base = std::make_unique<lm::SimulatedLlm>(options.profile,
                                                      vocab_size, cache);
    }
    stack.top = stack.base.get();
  }
  if (options.faults.any()) {
    // Per-draw fault schedule: decorrelated from the other draws and a
    // pure function of the draw index, so the faults a draw sees do not
    // depend on the thread count or on which other draws ran first.
    lm::FaultProfile profile = options.faults;
    profile.seed = MixSeed(options.faults.seed, draw_index);
    stack.faults = std::make_unique<lm::FaultInjectingBackend>(
        stack.top, profile);
    stack.top = stack.faults.get();
  }
  if (options.resilience.retries_enabled) {
    lm::RetryPolicy retry = options.resilience.retry;
    retry.seed = MixSeed(retry.seed, draw_index);
    stack.resilient = std::make_unique<lm::ResilientBackend>(
        stack.top, retry, options.resilience.breaker, clock);
    stack.top = stack.resilient.get();
  }
  return stack;
}

// Longest prefix of `text` that obeys the multiplexer's position
// grammar, measured in *complete* timestamps. Corrupted generations put
// commas at digit positions (or vice versa); everything before the first
// violation, rounded down to a whole timestamp cycle, is salvageable.
size_t GrammarValidTimestamps(const std::string& text,
                              const multiplex::Multiplexer& mux,
                              const std::vector<int>& widths) {
  const size_t cycle = mux.TokensPerTimestamp(widths);
  size_t complete = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const bool want_comma = mux.IsSeparatorPosition(i % cycle, widths);
    if ((text[i] == ',') != want_comma) break;
    if (i % cycle + 1 == cycle) ++complete;
  }
  return complete;
}

// Outcome of drawing one sample through the backend stack: either a
// usable (possibly shortened) generation or a reason to skip/redraw.
struct SampleDraw {
  bool usable = false;
  std::string text;            // grammar-valid prefix, whole timestamps
  size_t timestamps = 0;       // timestamps `text` covers
  Status failure;              // why the draw was skipped (when !usable)
  double latency_seconds = 0.0;  // simulated cost of the backend call
};

// Draws one sample and salvages the grammar-valid prefix. Terminal
// (non-retryable) statuses propagate as errors; transient failures,
// fully corrupted streams, and cancellation/deadline stops come back as
// unusable draws — the caller decides whether to redraw or wind down
// with what already survived.
Result<SampleDraw> DrawSample(lm::LlmBackend* backend,
                              const std::vector<token::TokenId>& prompt,
                              size_t tokens_needed,
                              const lm::GrammarMask& mask, Rng* sample_rng,
                              const multiplex::Multiplexer& mux,
                              const std::vector<int>& widths,
                              const token::Vocabulary& vocab,
                              const RequestContext& ctx,
                              lm::TokenLedger* ledger) {
  SampleDraw draw;
  lm::CallOptions call;
  call.context = ctx;
  Result<lm::GenerationResult> gen_or =
      backend->Complete(prompt, tokens_needed, mask, sample_rng, call);
  if (!gen_or.ok()) {
    StatusCode code = gen_or.status().code();
    if (code != StatusCode::kCancelled && !IsRetryable(code)) {
      return gen_or.status();
    }
    draw.failure = gen_or.status();
    draw.latency_seconds = backend->last_latency_seconds();
    return draw;
  }
  lm::GenerationResult gen = std::move(gen_or).value();
  *ledger += gen.ledger;
  draw.latency_seconds = gen.latency_seconds;
  MC_ASSIGN_OR_RETURN(std::string text, token::Decode(gen.tokens, vocab));
  draw.timestamps = GrammarValidTimestamps(text, mux, widths);
  if (draw.timestamps == 0) {
    draw.failure = Status::Unavailable(
        "generation corrupted before the first complete timestamp");
    return draw;
  }
  text.resize(draw.timestamps * mux.TokensPerTimestamp(widths));
  draw.text = std::move(text);
  draw.usable = true;
  return draw;
}

// Everything one draw produced, returned by value to the merge loop so
// no accounting ever flows through shared mutable state.
struct DrawOutcome {
  bool usable = false;
  bool terminal = false;  // failure ends the whole forecast
  Status failure;
  lm::TokenLedger ledger;
  lm::RetryStats retry_stats;
  /// Virtual seconds this draw consumed on its branch clock; the merge
  /// replays these onto the shared clock in draw-index order, so the
  /// virtual-time accounting is identical at every thread count.
  double virtual_cost = 0.0;
  std::vector<std::vector<double>> values;  // [dim][t]
  size_t salvaged = 0;       // timestamps (raw) / segments (SAX) kept
  size_t salvage_total = 0;  // what a full draw would have covered
};

// Everything a draw worker needs that is shared — read-only — across
// all draws of one forecast. `parse` turns a salvaged grammar-valid
// text into per-dimension value rows and must be thread-safe (the raw
// and SAX pipelines capture only const state).
struct SampleLoopState {
  const MultiCastOptions* options = nullptr;
  const std::vector<token::TokenId>* prompt = nullptr;
  size_t tokens_needed = 0;
  const lm::GrammarMask* mask = nullptr;
  const multiplex::Multiplexer* mux = nullptr;
  const std::vector<int>* widths = nullptr;
  const token::Vocabulary* vocab = nullptr;
  /// Shared serialized wrapper over an injected external backend; null
  /// when the forecast builds its own simulated base per draw.
  lm::LlmBackend* external = nullptr;
  /// Shared prefix cache for the per-draw simulated backends, pre-warmed
  /// with this forecast's prompt; null when caching is off or an
  /// external backend is in play.
  std::shared_ptr<lm::PrefixCache> cache;
  std::function<Status(const std::string& text, DrawOutcome* out)> parse;
  const char* salvage_noun = "timestamps";
  /// Draft-then-verify policy for the BatchLlm leaf (disabled unless
  /// the forecast resolved a draft factory; see ResolveSpeculative).
  batch::SpeculativePolicy speculative;
};

// Runs one complete draw — backend stack construction, the LLM call,
// salvage, parse — in isolation on a branch clock starting at `t0` (the
// sample loop's start time). The draw's result is a pure function of
// (draw_index, rng, t0, deadline) and the shared read-only state, which
// is what makes parallel output bit-identical to serial.
DrawOutcome RunDraw(const SampleLoopState& st, int draw_index, Rng rng,
                    double t0, const Deadline& deadline) {
  DrawOutcome out;
  VirtualClock branch;
  branch.AdvanceTo(t0);
  RequestContext draw_ctx;
  draw_ctx.clock = &branch;
  draw_ctx.deadline = deadline;
  // draw_ctx.cancel is a fresh token: the shared token is not
  // thread-safe (reads mutate auto-cancel state), so cancellation is
  // observed at draw granularity by the merge loop instead.
  BackendStack stack =
      BuildDrawStack(*st.options, st.vocab->size(), &branch, st.external,
                     static_cast<uint64_t>(draw_index), st.cache,
                     st.speculative);
  Result<SampleDraw> draw_or =
      DrawSample(stack.top, *st.prompt, st.tokens_needed, *st.mask, &rng,
                 *st.mux, *st.widths, *st.vocab, draw_ctx, &out.ledger);
  if (stack.resilient != nullptr) {
    out.retry_stats = stack.resilient->stats();
  }
  if (!draw_or.ok()) {
    out.terminal = true;
    out.failure = draw_or.status();
    out.virtual_cost = branch.now() - t0;
    return out;
  }
  SampleDraw draw = std::move(draw_or).value();
  // The resilient layer charges latency (and backoff) to the branch
  // clock itself; a bare stack charges the call latency reported by
  // value on the result here.
  if (stack.resilient == nullptr) branch.Advance(draw.latency_seconds);
  if (!draw.usable) {
    out.failure = draw.failure;
    out.virtual_cost = branch.now() - t0;
    return out;
  }
  Status parsed = st.parse(draw.text, &out);
  out.virtual_cost = branch.now() - t0;
  if (!parsed.ok()) {
    out.terminal = true;
    out.failure = parsed;
    return out;
  }
  out.usable = true;
  return out;
}

// Shared post-loop bookkeeping: surviving-sample accounting, degraded
// flag, and the minimum-survivor check. `min_samples` is clamped to the
// requested sample count — a fully successful forecast must never fail
// its own survivor floor just because the floor was configured above
// num_samples.
Status FinishSampling(const MultiCastOptions& options, int survivors,
                      const Status& last_failure, ForecastResult* result) {
  result->samples_requested = static_cast<size_t>(options.num_samples);
  result->samples_used = static_cast<size_t>(survivors);
  const int min_samples = std::min(
      std::max(1, options.resilience.min_samples), options.num_samples);
  if (survivors < min_samples) {
    Status cause = last_failure.ok()
                       ? Status::Unavailable("no failure recorded")
                       : last_failure;
    return Status(cause.code(),
                  StrFormat("only %d of %d samples survived (minimum %d); "
                            "last failure: %s",
                            survivors, options.num_samples, min_samples,
                            cause.ToString().c_str()));
  }
  if (survivors < options.num_samples) {
    result->degraded = true;
    result->warnings.push_back(
        StrFormat("aggregated %d of %d requested samples", survivors,
                  options.num_samples));
  }
  return Status::OK();
}

// The sample loop shared by the raw and SAX pipelines: pre-forks one
// RNG per prospective draw, dispatches draws in waves (of at most the
// pool width), and merges outcomes in draw-index order. Because every
// draw is a pure function of its index and the pre-forked RNG, and the
// merge replays virtual costs and gate checks in index order, the
// result — forecasts, bands, warnings, ledgers, samples_used — is
// bit-identical for every thread count; threads only change wall-clock.
// Draws dispatched speculatively past a stop (target reached, context
// dead, terminal error) are discarded unmerged, exactly as if a serial
// loop had never issued them.
Status RunSampleLoop(const MultiCastOptions& options,
                     const SampleLoopState& st, const RequestContext& ctx,
                     VirtualClock* clock, uint64_t rng_stream,
                     ThreadPool* pool, size_t dims,
                     std::vector<std::vector<std::vector<double>>>*
                         samples_per_dim,
                     ForecastResult* result) {
  Rng rng(options.seed, rng_stream);
  const int target = options.num_samples;
  const int max_draws =
      target + std::max(0, options.resilience.max_redraws);
  // Pre-fork every prospective draw's RNG before any dispatch: the k-th
  // fork of a PCG stream is the same generator whether the forks happen
  // lazily or up front, so per-draw randomness does not depend on the
  // thread count or on how many draws actually run.
  std::vector<Rng> draw_rngs;
  draw_rngs.reserve(static_cast<size_t>(max_draws));
  for (int s = 0; s < max_draws; ++s) draw_rngs.push_back(rng.Fork());

  const int threads = pool != nullptr ? pool->size() : 1;
  const double t0 = clock->now();
  const Deadline deadline = ctx.deadline;
  int survivors = 0;
  Status last_failure = Status::OK();
  Status terminal = Status::OK();
  bool stopped = false;
  int s = 0;
  while (s < max_draws && survivors < target && !stopped &&
         terminal.ok()) {
    Status active = ctx.Check("sample loop");
    if (!active.ok()) {
      // The request died mid-pipeline: stop issuing LLM calls and wind
      // down with whatever already survived.
      last_failure = active;
      result->warnings.push_back(StrFormat(
          "stopped issuing LLM calls after %d surviving samples: %s",
          survivors, active.ToString().c_str()));
      break;
    }
    const int wave = std::min(std::min(threads, max_draws - s),
                              target - survivors);
    std::vector<std::future<DrawOutcome>> inflight;
    if (pool != nullptr && wave > 1) {
      inflight.reserve(static_cast<size_t>(wave));
      for (int k = 0; k < wave; ++k) {
        const int idx = s + k;
        Rng draw_rng = draw_rngs[static_cast<size_t>(idx)];
        inflight.push_back(pool->Submit([&st, idx, draw_rng, t0,
                                         deadline]() {
          return RunDraw(st, idx, draw_rng, t0, deadline);
        }));
      }
    }
    for (int k = 0; k < wave; ++k) {
      const int idx = s + k;
      DrawOutcome out =
          inflight.empty()
              ? RunDraw(st, idx, draw_rngs[static_cast<size_t>(idx)], t0,
                        deadline)
              : inflight[static_cast<size_t>(k)].get();
      if (stopped || !terminal.ok() || survivors >= target) continue;
      if (k > 0) {
        // Merging earlier draws advanced the shared clock; re-check the
        // context before each later draw of the wave, exactly where the
        // serial loop would have checked before issuing it.
        Status mid = ctx.Check("sample loop");
        if (!mid.ok()) {
          last_failure = mid;
          result->warnings.push_back(StrFormat(
              "stopped issuing LLM calls after %d surviving samples: %s",
              survivors, mid.ToString().c_str()));
          stopped = true;
          continue;
        }
      }
      clock->Advance(out.virtual_cost);
      if (out.terminal) {
        terminal = out.failure;
        continue;
      }
      result->ledger += out.ledger;
      result->retry_stats += out.retry_stats;
      if (!out.usable) {
        last_failure = out.failure;
        result->warnings.push_back(StrFormat(
            "sample draw %d lost: %s", idx,
            out.failure.ToString().c_str()));
        continue;
      }
      if (out.salvaged < out.salvage_total) {
        result->degraded = true;
        result->warnings.push_back(StrFormat(
            "sample draw %d truncated: salvaged %zu of %zu %s", idx,
            out.salvaged, out.salvage_total, st.salvage_noun));
      }
      for (size_t d = 0; d < dims; ++d) {
        (*samples_per_dim)[d].push_back(std::move(out.values[d]));
      }
      ++survivors;
    }
    s += wave;
  }
  MC_RETURN_IF_ERROR(terminal);
  return FinishSampling(options, survivors, last_failure, result);
}

}  // namespace

const char* QuantizationName(Quantization q) {
  switch (q) {
    case Quantization::kNone:
      return "none";
    case Quantization::kSaxAlphabetic:
      return "alphabetical";
    case Quantization::kSaxDigital:
      return "digital";
  }
  return "?";
}

MultiCastForecaster::MultiCastForecaster(const MultiCastOptions& options)
    : options_(options) {
  options_.scaler.digits = options_.digits;
  if (options_.shared_prefix_cache != nullptr) {
    prefix_cache_ = options_.shared_prefix_cache;
  } else if (options_.prefix_cache) {
    prefix_cache_ =
        std::make_shared<lm::PrefixCache>(options_.prefix_cache_capacity);
  }
  if (options_.block_pool != nullptr) {
    block_pool_ = options_.block_pool;
  } else if (options_.paged_memory) {
    lm::PagedMemoryOptions paged;
    paged.enabled = true;
    paged.block_span = options_.block_span;
    paged.max_blocks = options_.pool_blocks;
    block_pool_ = std::make_shared<lm::BlockPool>(paged);
  }
  // The profile is the single conduit to every model construction site
  // (SimulatedLlm draw stacks, BatchLlm sessions, cache warmers).
  options_.profile.memory_pool = block_pool_;
}

MultiCastForecaster::~MultiCastForecaster() = default;

std::string MultiCastForecaster::name() const {
  if (options_.quantization == Quantization::kNone) {
    return StrFormat("MultiCast (%s)",
                     multiplex::MuxKindName(options_.mux));
  }
  return StrFormat("MultiCast SAX (%s)",
                   QuantizationName(options_.quantization));
}

ThreadPool* MultiCastForecaster::Pool() {
  if (options_.threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  return pool_.get();
}

Result<ForecastResult> MultiCastForecaster::Forecast(const ts::Frame& history,
                                                     size_t horizon,
                                                     const RequestContext& ctx) {
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (history.length() < 4) {
    return Status::InvalidArgument("history too short to forecast from");
  }
  if (options_.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  MC_RETURN_IF_ERROR(ctx.Check(name().c_str()));
  if (options_.quantization == Quantization::kNone) {
    return ForecastRaw(history, horizon, ctx);
  }
  return ForecastSax(history, horizon, ctx);
}

Result<ForecastResult> MultiCastForecaster::ForecastRaw(
    const ts::Frame& history, size_t horizon, const RequestContext& ctx) {
  Timer timer;
  const size_t dims = history.num_dims();

  // 1. Rescale every dimension to b-digit integers (fit on history only).
  std::vector<scale::ScalerParams> params(dims);
  multiplex::MuxInput input;
  input.values.resize(dims);
  std::vector<int> widths(dims, options_.digits);
  for (size_t d = 0; d < dims; ++d) {
    MC_ASSIGN_OR_RETURN(params[d],
                        scale::FitScaler(history.dim(d), options_.scaler));
    std::vector<int64_t> scaled =
        scale::ScaleValues(history.dim(d).values(), params[d]);
    input.values[d].reserve(scaled.size());
    for (int64_t v : scaled) {
      MC_ASSIGN_OR_RETURN(std::string s,
                          token::FixedWidthDigits(v, options_.digits));
      input.values[d].push_back(std::move(s));
    }
  }

  // 2. Multiplex to one stream; the trailing comma opens a new timestamp
  // so generation starts at the first digit position of the cycle.
  std::unique_ptr<multiplex::Multiplexer> mux =
      multiplex::CreateMultiplexer(options_.mux);
  MC_ASSIGN_OR_RETURN(std::string stream, mux->Multiplex(input, widths));
  stream.push_back(',');

  // 3. Tokenize.
  token::Vocabulary vocab = token::Vocabulary::Digits();
  MC_ASSIGN_OR_RETURN(std::vector<token::TokenId> prompt,
                      token::Encode(stream, vocab));

  // 4. Draw constrained continuations through per-draw backend stacks,
  // redrawing failed samples up to the resilience cap.
  size_t tokens_needed = horizon * mux->TokensPerTimestamp(widths);
  lm::GrammarMask mask = StructuredMask(*mux, widths, vocab);
  if (options_.backend != nullptr &&
      options_.backend->vocab_size() != vocab.size()) {
    return Status::InvalidArgument(StrFormat(
        "external backend vocabulary size %zu does not match the "
        "pipeline's %zu",
        options_.backend->vocab_size(), vocab.size()));
  }
  VirtualClock local_clock;
  VirtualClock* clock = ctx.clock != nullptr ? ctx.clock : &local_clock;
  const double virtual_start = clock->now();
  std::optional<lm::SerializedBackend> serialized;
  lm::LlmBackend* external = options_.backend;
  if (external != nullptr && !options_.backend_thread_safe) {
    serialized.emplace(external);
    external = &*serialized;
  }

  // samples_per_dim[d][s] is sample s of dimension d (possibly a
  // salvaged prefix shorter than `horizon`).
  std::vector<std::vector<std::vector<double>>> samples_per_dim(dims);
  ForecastResult result;
  SampleLoopState st;
  st.options = &options_;
  st.prompt = &prompt;
  st.tokens_needed = tokens_needed;
  st.mask = &mask;
  st.mux = mux.get();
  st.widths = &widths;
  st.vocab = &vocab;
  st.external = external;
  // Pre-warm the prompt's frozen state once before any draws fan out:
  // every draw — serial or parallel — then forks the same full cache
  // hit instead of racing to build it. External backends own their own
  // state and are never cached here.
  if (options_.backend == nullptr && prefix_cache_ != nullptr) {
    st.cache = prefix_cache_;
    lm::SimulatedLlm warmer(options_.profile, vocab.size(), st.cache);
    MC_RETURN_IF_ERROR(warmer.WarmPrefix(prompt));
  }
  st.salvage_noun = "timestamps";
  if (options_.speculative && options_.batch_scheduler != nullptr &&
      options_.backend == nullptr) {
    std::vector<token::TokenId> draft_template;
    if (options_.draft == DraftKind::kClassical) {
      draft_template = ClassicalDraftRaw(history, horizon, params, widths,
                                         *mux, vocab, options_.digits);
    }
    st.speculative =
        ResolveSpeculative(options_, vocab, std::move(draft_template));
  }
  st.parse = [&mux, &widths, &params, dims, horizon](
                 const std::string& text, DrawOutcome* out) -> Status {
    // 5. Demultiplex and descale the salvaged prefix of this sample.
    MC_ASSIGN_OR_RETURN(
        multiplex::MuxInput demuxed,
        mux->Demultiplex(text, widths, /*allow_partial=*/true));
    const size_t usable =
        std::min<size_t>(horizon, demuxed.num_timestamps());
    out->salvaged = usable;
    out->salvage_total = horizon;
    out->values.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      std::vector<int64_t> scaled;
      scaled.reserve(usable);
      for (size_t t = 0; t < usable; ++t) {
        MC_ASSIGN_OR_RETURN(int64_t v,
                            token::ParseFixedWidthDigits(demuxed.values[d][t]));
        scaled.push_back(v);
      }
      out->values[d] = scale::DescaleValues(scaled, params[d]);
    }
    return Status::OK();
  };
  MC_RETURN_IF_ERROR(RunSampleLoop(options_, st, ctx, clock,
                                   /*rng_stream=*/7, Pool(), dims,
                                   &samples_per_dim, &result));

  // 6. Median across surviving samples (+ quantile bands), per dimension
  // and timestamp.
  MC_RETURN_IF_ERROR(FillAggregates(samples_per_dim, history,
                                    options_.quantiles, horizon, &result));
  result.seconds = timer.Seconds();
  result.virtual_seconds = clock->now() - virtual_start;
  return result;
}

Result<ForecastResult> MultiCastForecaster::ForecastSax(
    const ts::Frame& history, size_t horizon, const RequestContext& ctx) {
  Timer timer;
  const size_t dims = history.num_dims();
  const bool digital = options_.quantization == Quantization::kSaxDigital;

  sax::SaxOptions sax_opts;
  sax_opts.segment_length = options_.sax_segment_length;
  sax_opts.alphabet_size = options_.sax_alphabet_size;
  sax_opts.symbols =
      digital ? sax::SymbolKind::kDigital : sax::SymbolKind::kAlphabetic;

  // 1. SAX-encode every dimension: one symbol per PAA segment.
  std::vector<sax::SaxCodec> codecs;
  multiplex::MuxInput input;
  input.values.resize(dims);
  std::vector<int> widths(dims, 1);
  for (size_t d = 0; d < dims; ++d) {
    MC_ASSIGN_OR_RETURN(sax::SaxCodec codec,
                        sax::SaxCodec::Fit(history.dim(d), sax_opts));
    MC_ASSIGN_OR_RETURN(std::string word,
                        codec.Encode(history.dim(d).values()));
    input.values[d].reserve(word.size());
    for (char c : word) input.values[d].emplace_back(1, c);
    codecs.push_back(std::move(codec));
  }

  // 2. Multiplex the symbol streams (each "timestamp" is one PAA segment).
  std::unique_ptr<multiplex::Multiplexer> mux =
      multiplex::CreateMultiplexer(options_.mux);
  MC_ASSIGN_OR_RETURN(std::string stream, mux->Multiplex(input, widths));
  stream.push_back(',');

  // 3. Tokenize over the SAX vocabulary (the generation constraint set
  // becomes the active alphabet plus comma instead of [0-9,]).
  Result<token::Vocabulary> vocab_or =
      digital ? token::Vocabulary::SaxDigital(options_.sax_alphabet_size)
              : token::Vocabulary::SaxAlphabetic(options_.sax_alphabet_size);
  if (!vocab_or.ok()) return vocab_or.status();
  token::Vocabulary vocab = std::move(vocab_or).value();
  MC_ASSIGN_OR_RETURN(std::vector<token::TokenId> prompt,
                      token::Encode(stream, vocab));

  // 4. Generate enough whole segments to cover `horizon` raw timestamps.
  size_t segments_needed =
      (horizon + static_cast<size_t>(options_.sax_segment_length) - 1) /
      static_cast<size_t>(options_.sax_segment_length);
  size_t tokens_needed = segments_needed * mux->TokensPerTimestamp(widths);
  lm::GrammarMask mask = StructuredMask(*mux, widths, vocab);
  if (options_.backend != nullptr &&
      options_.backend->vocab_size() != vocab.size()) {
    return Status::InvalidArgument(StrFormat(
        "external backend vocabulary size %zu does not match the "
        "pipeline's %zu",
        options_.backend->vocab_size(), vocab.size()));
  }
  VirtualClock local_clock;
  VirtualClock* clock = ctx.clock != nullptr ? ctx.clock : &local_clock;
  const double virtual_start = clock->now();
  std::optional<lm::SerializedBackend> serialized;
  lm::LlmBackend* external = options_.backend;
  if (external != nullptr && !options_.backend_thread_safe) {
    serialized.emplace(external);
    external = &*serialized;
  }

  const size_t segment_length =
      static_cast<size_t>(options_.sax_segment_length);
  std::vector<std::vector<std::vector<double>>> samples_per_dim(dims);
  ForecastResult result;
  SampleLoopState st;
  st.options = &options_;
  st.prompt = &prompt;
  st.tokens_needed = tokens_needed;
  st.mask = &mask;
  st.mux = mux.get();
  st.widths = &widths;
  st.vocab = &vocab;
  st.external = external;
  // Same pre-warm as the raw pipeline (see ForecastRaw).
  if (options_.backend == nullptr && prefix_cache_ != nullptr) {
    st.cache = prefix_cache_;
    lm::SimulatedLlm warmer(options_.profile, vocab.size(), st.cache);
    MC_RETURN_IF_ERROR(warmer.WarmPrefix(prompt));
  }
  st.salvage_noun = "segments";
  if (options_.speculative && options_.batch_scheduler != nullptr &&
      options_.backend == nullptr) {
    std::vector<token::TokenId> draft_template;
    if (options_.draft == DraftKind::kClassical) {
      draft_template =
          ClassicalDraftSax(history, segments_needed, segment_length,
                            codecs, widths, *mux, vocab);
    }
    st.speculative =
        ResolveSpeculative(options_, vocab, std::move(draft_template));
  }
  st.parse = [&mux, &widths, &codecs, dims, horizon, segments_needed,
              segment_length](const std::string& text,
                              DrawOutcome* out) -> Status {
    // 5. Demultiplex the salvaged symbol stream back into per-dimension
    // SAX words (one symbol per surviving segment).
    MC_ASSIGN_OR_RETURN(
        multiplex::MuxInput demuxed,
        mux->Demultiplex(text, widths, /*allow_partial=*/true));
    const size_t usable_segments =
        std::min(segments_needed, demuxed.num_timestamps());
    const size_t usable_steps =
        std::min(horizon, usable_segments * segment_length);
    out->salvaged = usable_segments;
    out->salvage_total = segments_needed;
    out->values.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      std::string word;
      word.reserve(usable_segments);
      for (size_t seg = 0; seg < usable_segments; ++seg) {
        word.push_back(demuxed.values[d][seg][0]);
      }
      MC_ASSIGN_OR_RETURN(out->values[d],
                          codecs[d].Decode(word, usable_steps));
    }
    return Status::OK();
  };
  MC_RETURN_IF_ERROR(RunSampleLoop(options_, st, ctx, clock,
                                   /*rng_stream=*/11, Pool(), dims,
                                   &samples_per_dim, &result));

  MC_RETURN_IF_ERROR(FillAggregates(samples_per_dim, history,
                                    options_.quantiles, horizon, &result));
  result.seconds = timer.Seconds();
  result.virtual_seconds = clock->now() - virtual_start;
  return result;
}

Result<std::vector<double>> MedianAggregate(
    const std::vector<std::vector<double>>& samples) {
  return QuantileAggregate(samples, 0.5);
}

Result<std::vector<double>> QuantileAggregate(
    const std::vector<std::vector<double>>& samples, double q) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile %g outside (0, 1)", q));
  }
  size_t h = samples[0].size();
  for (const auto& s : samples) {
    if (s.size() != h) {
      return Status::InvalidArgument("samples have differing horizons");
    }
  }
  if (h == 0) {
    return Status::InvalidArgument(
        StrFormat("all %zu samples are empty: nothing to aggregate",
                  samples.size()));
  }
  std::vector<double> out;
  out.reserve(h);
  for (size_t t = 0; t < h; ++t) {
    std::vector<double> column;
    column.reserve(samples.size());
    for (const auto& s : samples) column.push_back(s[t]);
    out.push_back(ts::Quantile(std::move(column), q));
  }
  return out;
}

Result<std::vector<double>> QuantileAggregateRagged(
    const std::vector<std::vector<double>>& samples, double q,
    size_t out_length, bool* held_tail) {
  if (held_tail != nullptr) *held_tail = false;
  if (samples.empty()) {
    return Status::InvalidArgument("no surviving samples to aggregate");
  }
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile %g outside (0, 1)", q));
  }
  if (out_length == 0) {
    return Status::InvalidArgument("requested aggregate length is zero");
  }
  bool any_nonempty = false;
  for (const auto& s : samples) {
    if (!s.empty()) {
      any_nonempty = true;
      break;
    }
  }
  if (!any_nonempty) {
    return Status::InvalidArgument(
        StrFormat("all %zu surviving samples are empty: nothing to "
                  "aggregate",
                  samples.size()));
  }
  std::vector<double> out;
  out.reserve(out_length);
  for (size_t t = 0; t < out_length; ++t) {
    std::vector<double> column;
    column.reserve(samples.size());
    for (const auto& s : samples) {
      if (t < s.size()) column.push_back(s[t]);
    }
    if (column.empty()) {
      if (out.empty()) {
        return Status::InvalidArgument(
            "no sample covers the first timestamp");
      }
      // Hold the last aggregated value: shape is preserved even when
      // every surviving sample was truncated short of the horizon.
      out.push_back(out.back());
      if (held_tail != nullptr) *held_tail = true;
      continue;
    }
    out.push_back(ts::Quantile(std::move(column), q));
  }
  return out;
}

}  // namespace forecast
}  // namespace multicast
