#include "forecast/classical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/strings.h"
#include "util/timer.h"

namespace multicast {
namespace forecast {

namespace {

/// One fitted engine for one dimension: point path plus the in-sample
/// one-step residuals the bands are built from.
struct EngineFit {
  ClassicalEngine engine = ClassicalEngine::kNaiveLast;
  std::vector<double> forecast;
  std::vector<double> residuals;
};

double MeanSquare(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double x : xs) sum += x * x;
  return sum / static_cast<double>(xs.size());
}

/// Linear-interpolated empirical quantile; `q` in (0, 1).
double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

EngineFit FitNaive(const std::vector<double>& x, size_t horizon) {
  EngineFit fit;
  fit.engine = ClassicalEngine::kNaiveLast;
  fit.forecast.assign(horizon, x.back());
  for (size_t t = 1; t < x.size(); ++t) {
    fit.residuals.push_back(x[t] - x[t - 1]);
  }
  return fit;
}

EngineFit FitDrift(const std::vector<double>& x, size_t horizon) {
  EngineFit fit;
  fit.engine = ClassicalEngine::kDrift;
  const size_t n = x.size();
  const double slope =
      (x[n - 1] - x[0]) / static_cast<double>(n - 1);
  fit.forecast.reserve(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    fit.forecast.push_back(x[n - 1] + slope * static_cast<double>(h + 1));
  }
  for (size_t t = 1; t < n; ++t) {
    fit.residuals.push_back(x[t] - (x[t - 1] + slope));
  }
  return fit;
}

/// Theta-style decomposition: a grid-searched SES level carries the
/// local mean, half the global regression slope carries the long-run
/// trend (the classical Theta(0, 2) combination).
EngineFit FitTheta(const std::vector<double>& x, size_t horizon) {
  const size_t n = x.size();
  // Regression slope of x against time.
  double t_mean = static_cast<double>(n - 1) / 2.0;
  double x_mean = 0.0;
  for (double v : x) x_mean += v;
  x_mean /= static_cast<double>(n);
  double cov = 0.0, var = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double dt = static_cast<double>(t) - t_mean;
    cov += dt * (x[t] - x_mean);
    var += dt * dt;
  }
  const double slope = var > 0.0 ? cov / var : 0.0;

  // SES with the smoothing constant grid-searched on one-step SSE.
  double best_sse = std::numeric_limits<double>::infinity();
  double best_alpha = 0.5;
  for (int ai = 1; ai <= 9; ++ai) {
    const double alpha = static_cast<double>(ai) / 10.0;
    double level = x[0];
    double sse = 0.0;
    for (size_t t = 1; t < n; ++t) {
      const double err = x[t] - level;
      sse += err * err;
      level = alpha * x[t] + (1.0 - alpha) * level;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best_alpha = alpha;
    }
  }

  EngineFit fit;
  fit.engine = ClassicalEngine::kTheta;
  double level = x[0];
  for (size_t t = 1; t < n; ++t) {
    fit.residuals.push_back(x[t] - (level + 0.5 * slope));
    level = best_alpha * x[t] + (1.0 - best_alpha) * level;
  }
  fit.forecast.reserve(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    fit.forecast.push_back(level + 0.5 * slope *
                                       static_cast<double>(h + 1));
  }
  return fit;
}

Result<EngineFit> FitEts(const std::vector<double>& x, size_t horizon,
                         const baselines::EtsOptions& options) {
  MC_ASSIGN_OR_RETURN(baselines::EtsModel model,
                      baselines::EtsModel::Fit(x, options));
  MC_ASSIGN_OR_RETURN(std::vector<double> fc, model.Forecast(horizon));
  EngineFit fit;
  fit.engine = ClassicalEngine::kEts;
  fit.forecast = std::move(fc);
  fit.residuals = model.residuals();
  return fit;
}

Result<EngineFit> FitDimension(const std::vector<double>& x, size_t horizon,
                               const ClassicalOptions& options) {
  switch (options.engine) {
    case ClassicalEngine::kNaiveLast:
      return FitNaive(x, horizon);
    case ClassicalEngine::kDrift:
      if (x.size() < 2) {
        return Status::InvalidArgument("drift needs >= 2 observations");
      }
      return FitDrift(x, horizon);
    case ClassicalEngine::kTheta:
      if (x.size() < 3) {
        return Status::InvalidArgument("theta needs >= 3 observations");
      }
      return FitTheta(x, horizon);
    case ClassicalEngine::kEts:
      return FitEts(x, horizon, options.ets);
    case ClassicalEngine::kAuto:
      break;
  }
  // Auto: every engine the series is long enough for competes on
  // in-sample one-step MSE; ties go to the cheaper (earlier) engine.
  EngineFit best = FitNaive(x, horizon);
  double best_mse = MeanSquare(best.residuals);
  auto consider = [&](EngineFit candidate) {
    const double mse = MeanSquare(candidate.residuals);
    if (mse < best_mse) {
      best = std::move(candidate);
      best_mse = mse;
    }
  };
  if (x.size() >= 2) consider(FitDrift(x, horizon));
  if (x.size() >= 3) consider(FitTheta(x, horizon));
  if (x.size() >= 4) {
    Result<EngineFit> ets = FitEts(x, horizon, options.ets);
    if (ets.ok()) consider(std::move(ets).value());
  }
  return best;
}

}  // namespace

const char* ClassicalEngineName(ClassicalEngine engine) {
  switch (engine) {
    case ClassicalEngine::kAuto:
      return "auto";
    case ClassicalEngine::kNaiveLast:
      return "naive";
    case ClassicalEngine::kDrift:
      return "drift";
    case ClassicalEngine::kTheta:
      return "theta";
    case ClassicalEngine::kEts:
      return "ets";
  }
  return "?";
}

std::string ClassicalForecaster::name() const {
  return StrFormat("Classical(%s)", ClassicalEngineName(options_.engine));
}

Result<ForecastResult> ClassicalForecaster::Forecast(
    const ts::Frame& history, size_t horizon, const RequestContext& ctx) {
  Timer timer;
  MC_RETURN_IF_ERROR(ctx.Check(name().c_str()));
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (history.length() < 1) {
    return Status::InvalidArgument("history too short");
  }
  std::vector<double> levels = options_.quantiles;
  for (double q : levels) {
    if (!(q > 0.0 && q < 1.0)) {
      return Status::InvalidArgument(
          StrFormat("quantile level %.3f outside (0, 1)", q));
    }
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  std::vector<ts::Series> point_dims;
  std::vector<std::vector<ts::Series>> band_dims(levels.size());
  for (size_t d = 0; d < history.num_dims(); ++d) {
    MC_ASSIGN_OR_RETURN(
        EngineFit fit,
        FitDimension(history.dim(d).values(), horizon, options_));
    // Bands: point path shifted by the residual quantile, widened with
    // the random-walk sqrt(h) growth so multi-step uncertainty fans out.
    for (size_t qi = 0; qi < levels.size(); ++qi) {
      const double offset = Quantile(fit.residuals, levels[qi]);
      std::vector<double> band;
      band.reserve(horizon);
      for (size_t h = 0; h < horizon; ++h) {
        band.push_back(fit.forecast[h] +
                       offset * std::sqrt(static_cast<double>(h + 1)));
      }
      band_dims[qi].emplace_back(std::move(band), history.dim(d).name());
    }
    point_dims.emplace_back(std::move(fit.forecast),
                            history.dim(d).name());
  }

  ForecastResult result;
  MC_ASSIGN_OR_RETURN(
      result.forecast,
      ts::Frame::FromSeries(std::move(point_dims), history.name()));
  for (size_t qi = 0; qi < levels.size(); ++qi) {
    MC_ASSIGN_OR_RETURN(
        ts::Frame band,
        ts::Frame::FromSeries(std::move(band_dims[qi]), history.name()));
    result.quantile_bands.emplace_back(levels[qi], std::move(band));
  }
  result.tier = ForecastTier::kClassical;
  result.seconds = timer.Seconds();
  if (!options_.demotion_note.empty()) {
    result.degraded = true;
    result.warnings.push_back(options_.demotion_note);
  }
  return result;
}

}  // namespace forecast
}  // namespace multicast
