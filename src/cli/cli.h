// The `multicast` command-line tool, as a testable library.
//
// Subcommands:
//   forecast  — forecast a CSV feed with any method, print or save
//   evaluate  — rolling-origin comparison of all methods on a CSV feed
//   impute    — fill NaN gaps in a CSV feed
//   anomaly   — score and flag anomalous timestamps
//   generate  — write one of the built-in synthetic datasets to CSV
//   help      — usage
//
// The thin binary in tools/ forwards argv here; every command writes to
// the supplied stream so tests can capture output.

#ifndef MULTICAST_CLI_CLI_H_
#define MULTICAST_CLI_CLI_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "batch/batch_scheduler.h"
#include "forecast/forecaster.h"
#include "lm/paged_store.h"
#include "lm/prefix_cache.h"
#include "util/status.h"

namespace multicast {
namespace cli {

/// Runs one CLI invocation (args excludes argv[0]). Returns the process
/// exit code on success; an error Status describes a usage problem.
Result<int> RunCommand(const std::vector<std::string>& args,
                       std::ostream& out);

/// Builds a forecaster from its CLI name: DI, VI, VC, LLMTIME, ARIMA,
/// LSTM, HW (Holt–Winters), NAIVE, DRIFT, CLASSICAL. MultiCast
/// variants honor
/// `samples`, `digits`, `seed`, the SAX settings and the chaos /
/// resilience knobs.
struct MethodSpec {
  std::string name = "VI";
  int samples = 5;
  int digits = 2;
  uint64_t seed = 42;
  std::string sax;          // "", "alpha" or "digit"
  int sax_segment = 6;
  int sax_alphabet = 5;
  std::string profile = "llama2";  // llama2 | phi2 | ctw
  /// Injected backend fault rate in [0, 1]: every failure mode
  /// (outage, latency spike, rate limit, truncation, corruption) fires
  /// at this per-call probability. 0 = clean backend.
  double chaos = 0.0;
  /// Seed of the deterministic fault schedule.
  uint64_t chaos_seed = 0xC0FFEE;
  /// Retries per LLM call after the first attempt (exponential backoff
  /// + circuit breaker). 0 disables the resilient wrapper entirely.
  int retries = 3;
  /// Extra sample redraws allowed when a sample's call fails terminally.
  int redraws = 4;
  /// Wrap the method in a fallback chain that demotes LLM-path failures
  /// (MultiCast -> LLMTime -> NaiveLast).
  bool fallback = false;
  /// End the fallback chain on the classical tier (ClassicalForecaster:
  /// residual-quantile bands, auto engine) instead of bare NaiveLast,
  /// and — in the sims — serve hedge backups from the classical tier.
  /// Implies the chain for LLM methods even without `fallback`.
  bool classical_fallback = false;
  /// Worker threads for the sample loop (MultiCast) or per-dimension
  /// loop (LLMTime). 1 = serial; higher counts change wall-clock time
  /// only — forecasts stay bit-identical.
  int threads = 1;
  /// Prefix-cached decoding (--prefix-cache 0|1): observe each prompt
  /// once, fork per draw. Forecasts stay bit-identical; only redundant
  /// prompt replay work is removed.
  bool prefix_cache = true;
  /// LRU entry capacity of the cache (--prefix-cache-capacity).
  int prefix_cache_capacity = 64;
  /// Externally shared cache (serve-sim wires one across all requests of
  /// a method); overrides per-forecaster cache creation when set.
  std::shared_ptr<lm::PrefixCache> shared_prefix_cache;
  /// Continuous-batching decode (--batch): route every sample draw
  /// through a step-level BatchScheduler so concurrent draws decode one
  /// token per step together. Forecasts stay bit-identical; only the
  /// decode schedule changes.
  bool batch = false;
  /// Decode slots in the batch (--batch-size); in serve-sim this also
  /// bounds concurrently served requests.
  int batch_size = 8;
  /// Refill freed slots immediately (--batch-backfill 1, continuous
  /// batching) or only when the whole batch drains (0, gang batches).
  bool batch_backfill = true;
  /// Externally shared scheduler (serve-sim wires one across all
  /// requests of a method); when unset and `batch` is true,
  /// MakeForecaster creates a private per-forecaster scheduler.
  std::shared_ptr<batch::BatchScheduler> batch_scheduler;
  /// Speculative draft-then-verify decoding (--speculative): classical
  /// drafts proposed k tokens at a time, verified in one batched pass
  /// per step. Implies a decode scheduler (it hosts the step engine);
  /// forecasts stay bit-identical at any draft length.
  bool speculative = false;
  /// Maximum draft tokens per step (--draft-k, >= 1).
  int draft_k = 4;
  /// Paged session memory (--paged-memory): model state lives in
  /// fixed-span refcounted blocks from a shared pool, so draws and
  /// cached prompt states share frozen layers at block granularity.
  /// Forecasts stay bit-identical; only resident bytes change
  /// (reported under lm.mem.*).
  bool paged_memory = false;
  /// Payload slots per block (--block-span).
  int block_span = 32;
  /// Pool live-block cap (--pool-blocks); 0 = unbounded. At the cap new
  /// entries spill to plain storage (still bit-identical) and pool
  /// fullness feeds the overload ladder in the sims.
  int pool_blocks = 0;
  /// Externally shared pool (serve-sim wires one across all requests of
  /// a method); when unset and `paged_memory` is true, MakeForecaster
  /// creates a private per-forecaster pool.
  std::shared_ptr<lm::BlockPool> block_pool;
};

Result<std::unique_ptr<forecast::Forecaster>> MakeForecaster(
    const MethodSpec& spec);

/// Usage text.
std::string UsageText();

}  // namespace cli
}  // namespace multicast

#endif  // MULTICAST_CLI_CLI_H_
