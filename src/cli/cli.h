// The `multicast` command-line tool, as a testable library.
//
// Subcommands:
//   forecast  — forecast a CSV feed with any method, print or save
//   evaluate  — rolling-origin comparison of all methods on a CSV feed
//   impute    — fill NaN gaps in a CSV feed
//   anomaly   — score and flag anomalous timestamps
//   generate  — write one of the built-in synthetic datasets to CSV
//   help      — usage
//
// The thin binary in tools/ forwards argv here; every command writes to
// the supplied stream so tests can capture output.

#ifndef MULTICAST_CLI_CLI_H_
#define MULTICAST_CLI_CLI_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "forecast/forecaster.h"
#include "util/status.h"

namespace multicast {
namespace cli {

/// Runs one CLI invocation (args excludes argv[0]). Returns the process
/// exit code on success; an error Status describes a usage problem.
Result<int> RunCommand(const std::vector<std::string>& args,
                       std::ostream& out);

/// Builds a forecaster from its CLI name: DI, VI, VC, LLMTIME, ARIMA,
/// LSTM, HW (Holt–Winters), NAIVE, DRIFT. MultiCast variants honor
/// `samples`, `digits`, `seed` and the SAX settings.
struct MethodSpec {
  std::string name = "VI";
  int samples = 5;
  int digits = 2;
  uint64_t seed = 42;
  std::string sax;          // "", "alpha" or "digit"
  int sax_segment = 6;
  int sax_alphabet = 5;
  std::string profile = "llama2";  // llama2 | phi2 | ctw
};

Result<std::unique_ptr<forecast::Forecaster>> MakeForecaster(
    const MethodSpec& spec);

/// Usage text.
std::string UsageText();

}  // namespace cli
}  // namespace multicast

#endif  // MULTICAST_CLI_CLI_H_
