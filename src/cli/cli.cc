#include "cli/cli.h"

#include <algorithm>
#include <set>

#include "baselines/arima.h"
#include "cluster/fault_plan.h"
#include "cluster/replica_set.h"
#include "cluster/router.h"
#include "baselines/ets.h"
#include "baselines/sarima.h"
#include "baselines/lstm.h"
#include "baselines/naive.h"
#include "data/datasets.h"
#include "eval/report.h"
#include "eval/rolling.h"
#include "extensions/anomaly.h"
#include "extensions/imputation.h"
#include "forecast/classical.h"
#include "forecast/fallback.h"
#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "serve/executor.h"
#include "serve/trace.h"
#include "ts/split.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/table.h"

namespace multicast {
namespace cli {

namespace {

// Flags shared by the method-constructing commands.
const std::set<std::string> kMethodFlags = {
    "input",  "output",      "horizon",  "method",   "samples",
    "digits", "seed",        "sax",      "sax-segment",
    "sax-alphabet",          "profile",  "plot",     "folds",
    "stride", "quantile",    "dataset",  "name",     "quantiles",
    "chaos",  "chaos-seed",  "retries",  "redraws",  "fallback",
    "threads", "prefix-cache", "prefix-cache-capacity",
    "batch",  "batch-size",  "batch-backfill",
    "speculative", "draft-k",
    "paged-memory", "block-span", "pool-blocks",
    // serve-sim trace and serving-policy flags.
    "requests",   "arrival-rate", "deadline",  "queue-capacity",
    "queue-order", "hedge-delay", "burst-factor", "burst-every",
    "burst-duration", "drain",    "drain-mode", "metrics-json",
    // overload-ladder flags.
    "slo-class", "overload-ladder", "classical-fallback",
    // cluster-sim fleet flags.
    "replicas", "replica-slots", "router", "replica-chaos",
    "replica-chaos-seed"};
const std::set<std::string> kBoolFlags = {
    "plot", "fallback", "batch", "overload-ladder", "classical-fallback",
    "speculative", "paged-memory"};

Result<lm::ModelProfile> ProfileByName(const std::string& name) {
  if (name == "llama2") return lm::ModelProfile::Llama2_7B();
  if (name == "phi2") return lm::ModelProfile::Phi2();
  if (name == "ctw") return lm::ModelProfile::CtwMixture();
  return Status::InvalidArgument("unknown profile '" + name +
                                 "' (expected llama2, phi2 or ctw)");
}

Result<MethodSpec> SpecFromFlags(const FlagSet& flags) {
  MethodSpec spec;
  spec.name = flags.GetString("method", "VI");
  MC_ASSIGN_OR_RETURN(int64_t samples, flags.GetInt("samples", 5));
  MC_ASSIGN_OR_RETURN(int64_t digits, flags.GetInt("digits", 2));
  MC_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  MC_ASSIGN_OR_RETURN(int64_t sax_segment, flags.GetInt("sax-segment", 6));
  MC_ASSIGN_OR_RETURN(int64_t sax_alphabet,
                      flags.GetInt("sax-alphabet", 5));
  spec.samples = static_cast<int>(samples);
  spec.digits = static_cast<int>(digits);
  spec.seed = static_cast<uint64_t>(seed);
  spec.sax = flags.GetString("sax", "");
  spec.sax_segment = static_cast<int>(sax_segment);
  spec.sax_alphabet = static_cast<int>(sax_alphabet);
  spec.profile = flags.GetString("profile", "llama2");
  MC_ASSIGN_OR_RETURN(spec.chaos, flags.GetDouble("chaos", 0.0));
  if (spec.chaos < 0.0 || spec.chaos > 1.0) {
    return Status::InvalidArgument("--chaos expects a rate in [0, 1]");
  }
  MC_ASSIGN_OR_RETURN(int64_t chaos_seed,
                      flags.GetInt("chaos-seed", 0xC0FFEE));
  spec.chaos_seed = static_cast<uint64_t>(chaos_seed);
  MC_ASSIGN_OR_RETURN(int64_t retries, flags.GetInt("retries", 3));
  if (retries < 0) {
    return Status::InvalidArgument("--retries must be >= 0");
  }
  spec.retries = static_cast<int>(retries);
  MC_ASSIGN_OR_RETURN(int64_t redraws, flags.GetInt("redraws", 4));
  if (redraws < 0) {
    return Status::InvalidArgument("--redraws must be >= 0");
  }
  spec.redraws = static_cast<int>(redraws);
  spec.fallback = flags.GetBool("fallback");
  spec.classical_fallback = flags.GetBool("classical-fallback");
  MC_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 1));
  if (threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  spec.threads = static_cast<int>(threads);
  MC_ASSIGN_OR_RETURN(int64_t prefix_cache, flags.GetInt("prefix-cache", 1));
  spec.prefix_cache = prefix_cache != 0;
  MC_ASSIGN_OR_RETURN(int64_t cache_capacity,
                      flags.GetInt("prefix-cache-capacity", 64));
  if (cache_capacity < 1) {
    return Status::InvalidArgument("--prefix-cache-capacity must be >= 1");
  }
  spec.prefix_cache_capacity = static_cast<int>(cache_capacity);
  spec.batch = flags.GetBool("batch");
  MC_ASSIGN_OR_RETURN(int64_t batch_size, flags.GetInt("batch-size", 8));
  if (batch_size < 1) {
    return Status::InvalidArgument("--batch-size must be >= 1");
  }
  spec.batch_size = static_cast<int>(batch_size);
  MC_ASSIGN_OR_RETURN(int64_t backfill, flags.GetInt("batch-backfill", 1));
  spec.batch_backfill = backfill != 0;
  spec.speculative = flags.GetBool("speculative");
  MC_ASSIGN_OR_RETURN(int64_t draft_k, flags.GetInt("draft-k", 4));
  if (draft_k < 1) {
    return Status::InvalidArgument("--draft-k must be >= 1");
  }
  spec.draft_k = static_cast<int>(draft_k);
  spec.paged_memory = flags.GetBool("paged-memory");
  MC_ASSIGN_OR_RETURN(int64_t block_span, flags.GetInt("block-span", 32));
  if (block_span < 1) {
    return Status::InvalidArgument("--block-span must be >= 1");
  }
  spec.block_span = static_cast<int>(block_span);
  MC_ASSIGN_OR_RETURN(int64_t pool_blocks, flags.GetInt("pool-blocks", 0));
  if (pool_blocks < 0) {
    return Status::InvalidArgument("--pool-blocks must be >= 0");
  }
  spec.pool_blocks = static_cast<int>(pool_blocks);
  return spec;
}

Result<ts::Frame> LoadInput(const FlagSet& flags) {
  std::string path = flags.GetString("input", "");
  if (path.empty()) {
    return Status::InvalidArgument("--input <csv> is required");
  }
  Result<ts::Frame> frame =
      data::LoadCsvDataset(path, flags.GetString("name", path));
  if (!frame.ok() &&
      frame.status().message().find("not finite") != std::string::npos) {
    return Status(frame.status().code(),
                  frame.status().message() +
                      " — repair the gap first (see the imputation "
                      "extension: `multicast impute`)");
  }
  return frame;
}

Status SaveIfRequested(const FlagSet& flags, const ts::Frame& frame,
                       std::ostream& out) {
  std::string path = flags.GetString("output", "");
  if (path.empty()) return Status::OK();
  MC_RETURN_IF_ERROR(WriteCsvFile(frame.ToCsv(), path));
  out << "wrote " << path << "\n";
  return Status::OK();
}

// Parses a comma-separated list of quantile levels ("0.1,0.9").
Result<std::vector<double>> ParseQuantiles(const std::string& text) {
  std::vector<double> levels;
  for (const std::string& field : Split(text, ',')) {
    char* end = nullptr;
    double level = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size() || field.empty()) {
      return Status::InvalidArgument("bad quantile level '" + field + "'");
    }
    levels.push_back(level);
  }
  return levels;
}

Result<int> CmdForecast(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(int64_t horizon, flags.GetInt("horizon", 12));
  if (horizon < 1) return Status::InvalidArgument("--horizon must be >= 1");
  MC_ASSIGN_OR_RETURN(MethodSpec spec, SpecFromFlags(flags));
  MC_ASSIGN_OR_RETURN(std::unique_ptr<forecast::Forecaster> forecaster,
                      MakeForecaster(spec));

  // Quantile bands are a MultiCast feature; rebuild with them when
  // requested on a MultiCast variant.
  if (flags.Has("quantiles")) {
    auto* mc = dynamic_cast<forecast::MultiCastForecaster*>(
        forecaster.get());
    if (mc == nullptr) {
      return Status::InvalidArgument(
          "--quantiles requires a MultiCast method (DI, VI or VC)");
    }
    MC_ASSIGN_OR_RETURN(std::vector<double> levels,
                        ParseQuantiles(flags.GetString("quantiles", "")));
    forecast::MultiCastOptions opts = mc->options();
    opts.quantiles = std::move(levels);
    forecaster = std::make_unique<forecast::MultiCastForecaster>(opts);
  }

  MC_ASSIGN_OR_RETURN(
      forecast::ForecastResult result,
      forecaster->Forecast(frame, static_cast<size_t>(horizon)));
  out << forecaster->name() << " forecast, " << horizon << " steps, "
      << StrFormat("%.3fs", result.seconds);
  if (result.ledger.total() > 0) {
    out << ", tokens " << eval::FormatLedger(result.ledger);
  }
  out << "\n";
  if (result.retry_stats.attempts > 0) {
    out << StrFormat(
        "resilience: %zu calls, %zu attempts (%zu retries), "
        "%zu circuit rejections, %.3fs virtual backoff\n",
        result.retry_stats.calls, result.retry_stats.attempts,
        result.retry_stats.retries, result.retry_stats.circuit_rejections,
        result.retry_stats.backoff_seconds);
  }
  if (result.degraded) {
    out << StrFormat("DEGRADED result (%zu/%zu samples)",
                     result.samples_used, result.samples_requested);
    if (auto* fb =
            dynamic_cast<forecast::FallbackForecaster*>(forecaster.get())) {
      out << ", served by " << fb->last_used();
    }
    out << "\n";
    for (const std::string& warning : result.warnings) {
      out << "  warning: " << warning << "\n";
    }
  }

  // Print the forecast as CSV rows on stdout.
  out << WriteCsv(result.forecast.ToCsv());
  for (const auto& [level, band] : result.quantile_bands) {
    out << StrFormat("p%g band:\n", level * 100.0);
    out << WriteCsv(band.ToCsv());
  }

  if (flags.GetBool("plot")) {
    ts::Split pseudo;
    pseudo.train = frame;
    pseudo.test = result.forecast;
    eval::MethodRun run;
    run.method = forecaster->name();
    run.forecast = result.forecast;
    for (size_t d = 0; d < frame.num_dims(); ++d) {
      out << eval::RenderForecastFigure(frame.dim(d).name(), pseudo, d,
                                        run);
    }
  }
  MC_RETURN_IF_ERROR(SaveIfRequested(flags, result.forecast, out));
  return 0;
}

Result<int> CmdEvaluate(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(int64_t horizon, flags.GetInt("horizon", 12));
  MC_ASSIGN_OR_RETURN(int64_t folds, flags.GetInt("folds", 3));
  MC_ASSIGN_OR_RETURN(int64_t stride, flags.GetInt("stride", horizon));
  MC_ASSIGN_OR_RETURN(MethodSpec base, SpecFromFlags(flags));

  eval::RollingOptions ro;
  ro.horizon = static_cast<size_t>(horizon);
  ro.folds = static_cast<size_t>(folds);
  ro.stride = static_cast<size_t>(stride);

  std::vector<std::string> header = {"Method"};
  for (size_t d = 0; d < frame.num_dims(); ++d) {
    header.push_back(frame.dim(d).name() + " (mean +/- sd)");
  }
  TextTable table(header);
  for (const char* name : {"DI", "VI", "VC", "LLMTIME", "ARIMA", "SARIMA",
                           "HW", "LSTM", "NAIVE"}) {
    MethodSpec spec = base;
    spec.name = name;
    MC_ASSIGN_OR_RETURN(std::unique_ptr<forecast::Forecaster> forecaster,
                        MakeForecaster(spec));
    MC_ASSIGN_OR_RETURN(
        eval::RollingResult result,
        eval::RollingOriginEvaluate(forecaster.get(), frame, ro));
    std::vector<std::string> row = {result.method};
    for (size_t d = 0; d < frame.num_dims(); ++d) {
      row.push_back(StrFormat("%.3f +/- %.3f", result.mean_rmse[d],
                              result.stddev_rmse[d]));
    }
    table.AddRow(std::move(row));
  }
  out << table.Render();
  return 0;
}

Result<int> CmdImpute(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(MethodSpec spec, SpecFromFlags(flags));
  extensions::ImputeOptions opts;
  opts.multicast.num_samples = spec.samples;
  opts.multicast.digits = spec.digits;
  opts.multicast.seed = spec.seed;
  MC_ASSIGN_OR_RETURN(opts.multicast.profile, ProfileByName(spec.profile));

  auto gaps = extensions::FindGaps(frame);
  out << "gaps: " << gaps.size();
  for (const auto& gap : gaps) {
    out << StrFormat(" [%zu, %zu)", gap.begin, gap.end);
  }
  out << "\n";
  MC_ASSIGN_OR_RETURN(ts::Frame filled, extensions::Impute(frame, opts));
  out << WriteCsv(filled.ToCsv());
  MC_RETURN_IF_ERROR(SaveIfRequested(flags, filled, out));
  return 0;
}

Result<int> CmdAnomaly(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(double quantile, flags.GetDouble("quantile", 0.98));
  extensions::AnomalyOptions opts;
  opts.threshold_quantile = quantile;
  MC_ASSIGN_OR_RETURN(opts.profile,
                      ProfileByName(flags.GetString("profile", "llama2")));
  MC_ASSIGN_OR_RETURN(extensions::AnomalyReport report,
                      extensions::DetectAnomalies(frame, opts));
  out << StrFormat("threshold (q%.3g of surprisal): %.4f\n", quantile,
                   report.threshold);
  out << "anomalies:";
  for (size_t t : report.anomalies) {
    size_t d = report.ArgMaxDimension(t);
    out << " " << t << "(" << frame.dim(d).name() << ")";
  }
  out << "\n";

  extensions::ChangePointOptions cp;
  cp.scoring = opts;
  MC_ASSIGN_OR_RETURN(std::vector<size_t> cps,
                      extensions::DetectChangePoints(frame, cp));
  out << "change points:";
  for (size_t t : cps) out << " " << t;
  out << "\n";
  return 0;
}

// Trace + serving-policy options shared by serve-sim and cluster-sim.
struct SimConfig {
  serve::TraceOptions trace;
  serve::QueuePolicy queue;
  std::string queue_order = "fifo";
  serve::HedgePolicy hedge;
  double hedge_delay = 0.0;
  double drain_at = 0.0;  // 0 = never
  serve::DrainMode drain_mode = serve::DrainMode::kFinishQueued;
  std::string drain_mode_name = "finish";
  /// SLO class of every trace request: interactive | standard | batch,
  /// or "mixed" — rotate the three classes by request id.
  std::string slo_class = "standard";
  /// Brownout ladder + AIMD admission (--overload-ladder).
  serve::OverloadPolicy overload;
};

serve::SloClass SloForRequest(const std::string& mode, size_t id) {
  if (mode == "interactive") return serve::SloClass::kInteractive;
  if (mode == "batch") return serve::SloClass::kBatch;
  if (mode == "standard") return serve::SloClass::kStandard;
  switch (id % 3) {  // mixed
    case 0:
      return serve::SloClass::kInteractive;
    case 1:
      return serve::SloClass::kStandard;
    default:
      return serve::SloClass::kBatch;
  }
}

Result<SimConfig> ParseSimFlags(const FlagSet& flags, uint64_t seed) {
  SimConfig cfg;
  MC_ASSIGN_OR_RETURN(int64_t requests, flags.GetInt("requests", 32));
  if (requests < 1) {
    return Status::InvalidArgument("--requests must be >= 1");
  }
  cfg.trace.num_requests = static_cast<size_t>(requests);
  MC_ASSIGN_OR_RETURN(cfg.trace.arrival_rate,
                      flags.GetDouble("arrival-rate", 4.0));
  if (cfg.trace.arrival_rate <= 0.0) {
    return Status::InvalidArgument("--arrival-rate must be > 0");
  }
  MC_ASSIGN_OR_RETURN(cfg.trace.burst_factor,
                      flags.GetDouble("burst-factor", 4.0));
  MC_ASSIGN_OR_RETURN(cfg.trace.burst_every_seconds,
                      flags.GetDouble("burst-every", 10.0));
  MC_ASSIGN_OR_RETURN(cfg.trace.burst_duration_seconds,
                      flags.GetDouble("burst-duration", 2.0));
  MC_ASSIGN_OR_RETURN(cfg.trace.deadline_seconds,
                      flags.GetDouble("deadline", 2.0));
  cfg.trace.seed = seed;

  MC_ASSIGN_OR_RETURN(int64_t capacity, flags.GetInt("queue-capacity", 8));
  if (capacity < 1) {
    return Status::InvalidArgument("--queue-capacity must be >= 1");
  }
  cfg.queue.capacity = static_cast<size_t>(capacity);
  cfg.queue_order = flags.GetString("queue-order", "fifo");
  if (cfg.queue_order == "edf") {
    cfg.queue.order = serve::QueueOrder::kEarliestDeadlineFirst;
  } else if (cfg.queue_order != "fifo") {
    return Status::InvalidArgument(
        "--queue-order expects 'fifo' or 'edf'");
  }
  MC_ASSIGN_OR_RETURN(cfg.hedge_delay, flags.GetDouble("hedge-delay", 0.0));
  cfg.hedge.enabled = cfg.hedge_delay > 0.0;
  cfg.hedge.delay_seconds = cfg.hedge_delay;
  MC_ASSIGN_OR_RETURN(cfg.drain_at, flags.GetDouble("drain", 0.0));
  cfg.drain_mode_name = flags.GetString("drain-mode", "finish");
  if (cfg.drain_mode_name == "cancel") {
    cfg.drain_mode = serve::DrainMode::kCancelQueued;
  } else if (cfg.drain_mode_name != "finish") {
    return Status::InvalidArgument(
        "--drain-mode expects 'finish' or 'cancel'");
  }
  cfg.slo_class = flags.GetString("slo-class", "standard");
  if (cfg.slo_class != "interactive" && cfg.slo_class != "standard" &&
      cfg.slo_class != "batch" && cfg.slo_class != "mixed") {
    return Status::InvalidArgument(
        "--slo-class expects 'interactive', 'standard', 'batch' or "
        "'mixed'");
  }
  if (flags.GetBool("overload-ladder")) {
    cfg.overload.ladder.enabled = true;
    cfg.overload.aimd.enabled = true;
    // Budget the ladder against the trace's own deadline: waits near
    // the deadline are a saturation signal regardless of its scale.
    cfg.overload.ladder.wait_budget_seconds =
        0.5 * cfg.trace.deadline_seconds;
    cfg.overload.aimd.initial_limit =
        static_cast<double>(cfg.queue.capacity);
  }
  return cfg;
}

// The rejection-reason column group: why the non-served requests were
// turned away, as queue-full/deadline/unavailable/cancelled counts,
// plus the mean retry-after hint handed to the shed callers.
std::string FormatRejections(const serve::RejectionBreakdown& r) {
  std::string text =
      StrFormat("%zu/%zu/%zu/%zu", r.queue_full, r.deadline_expired,
                r.backend_unavailable, r.cancelled + r.other);
  if (r.mean_retry_after_seconds > 0.0) {
    text += StrFormat(" ra=%.2fs", r.mean_retry_after_seconds);
  }
  return text;
}

// The service-tier column group: how many requests landed on each rung
// of the degradation ladder (full LLM / reduced draws / classical /
// shed).
std::string FormatTiers(const serve::ServeSummary& s) {
  return StrFormat("%zu/%zu/%zu/%zu", s.tier_llm_full, s.tier_llm_reduced,
                   s.tier_classical, s.tier_shed);
}

// One-line rollup of the ladder/limiter decisions in a run.
std::string FormatOverload(const std::string& name,
                           const serve::OverloadStats& o) {
  return StrFormat(
      "overload %s: %zu aimd-shed, %zu ladder-shed, demoted %zu reduced "
      "+ %zu classical, %zu escalations, %zu recoveries, peak level %d, "
      "final limit %.1f",
      name.c_str(), o.aimd_rejected, o.ladder_rejected, o.demoted_reduced,
      o.demoted_classical, o.escalations, o.recoveries, o.peak_level,
      o.final_limit);
}

// Replays a seeded Poisson-burst arrival trace against the serving
// executor, one run per LLM method, and prints the fleet summary.
Result<int> CmdServeSim(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(int64_t horizon, flags.GetInt("horizon", 12));
  if (horizon < 1) return Status::InvalidArgument("--horizon must be >= 1");
  MC_ASSIGN_OR_RETURN(MethodSpec base, SpecFromFlags(flags));
  MC_ASSIGN_OR_RETURN(SimConfig cfg, ParseSimFlags(flags, base.seed));
  serve::TraceOptions& trace = cfg.trace;
  std::vector<serve::Arrival> arrivals = serve::GenerateTrace(trace);

  serve::ServeOptions serve_options;
  serve_options.queue = cfg.queue;
  const std::string& order = cfg.queue_order;
  const double hedge_delay = cfg.hedge_delay;
  serve_options.hedge = cfg.hedge;
  const double drain_at = cfg.drain_at;
  if (drain_at > 0.0) serve_options.drain_at_seconds = drain_at;
  serve_options.drain_mode = cfg.drain_mode;
  const std::string& drain_mode = cfg.drain_mode_name;

  serve_options.batch.enabled = base.batch;
  serve_options.batch.size = static_cast<size_t>(base.batch_size);
  serve_options.batch.backfill = base.batch_backfill;
  if (serve_options.batch.enabled && serve_options.hedge.enabled) {
    return Status::InvalidArgument(
        "--batch does not compose with --hedge-delay (a batched slot "
        "cannot race a second pipeline for the same request)");
  }
  serve_options.overload = cfg.overload;

  std::vector<std::string> methods = {"DI", "VI", "VC", "LLMTIME"};
  if (flags.Has("method")) methods = {base.name};

  out << StrFormat(
      "serve-sim: %zu requests at %.3g req/s (burst x%.3g every %.3gs "
      "for %.3gs), deadline %.3gs, queue %zu (%s), hedge %s, batch %s, "
      "seed %llu\n",
      trace.num_requests, trace.arrival_rate, trace.burst_factor,
      trace.burst_every_seconds, trace.burst_duration_seconds,
      trace.deadline_seconds, serve_options.queue.capacity, order.c_str(),
      serve_options.hedge.enabled
          ? StrFormat("after %.3gs", hedge_delay).c_str()
          : "off",
      serve_options.batch.enabled
          ? StrFormat("%zu (%s)", serve_options.batch.size,
                      serve_options.batch.backfill ? "backfill" : "gang")
                .c_str()
          : "off",
      static_cast<unsigned long long>(base.seed));
  if (drain_at > 0.0) {
    out << StrFormat("drain at %.3gs (%s)\n", drain_at,
                     drain_mode.c_str());
  }
  if (serve_options.overload.any_enabled()) {
    out << StrFormat(
        "overload ladder: on (reduced %d draws, wait budget %.3gs, aimd "
        "%.3g..%.3g), slo %s\n",
        serve_options.overload.ladder.reduced_samples,
        serve_options.overload.ladder.wait_budget_seconds,
        serve_options.overload.aimd.initial_limit,
        serve_options.overload.aimd.max_limit, cfg.slo_class.c_str());
  }

  TextTable table({"Method", "Served", "Degraded", "Shed(full)",
                   "Shed(expired)", "Drained", "Failed",
                   "Rej full/ddl/unav/cxl", "Tier F/R/C/S", "Hedged",
                   "HedgeWins", "p50(s)", "p99(s)",
                   "Wait p50/p95/p99", "Svc p50/p95/p99", "Attempts",
                   "Retries", "Cancelled", "Preempted"});
  // Optional-subsystem stats, one line per method each, printed after
  // the table. Disabled subsystems still get an explicit "off" line so
  // two runs compare line-by-line.
  std::vector<std::string> cache_lines;
  std::vector<std::string> batch_lines;
  std::vector<std::string> mem_lines;
  std::vector<std::string> overload_lines;
  // One registry per method, holding every subsystem's counters for
  // that run; --metrics-json writes them as one section per method
  // through the single export path (util::WriteMetricsJson).
  const std::string metrics_path = flags.GetString("metrics-json", "");
  std::vector<std::pair<std::string, util::MetricsSnapshot>> sections;
  for (const std::string& name : methods) {
    MethodSpec spec = base;
    spec.name = name;
    util::MetricsRegistry registry;
    serve_options.metrics = &registry;
    // One prefix cache per method, shared by every request (and hedge)
    // of that method: requests over the same feed present the same
    // prompt, so later requests fork the cached state instead of
    // re-observing it. The executor only snapshots its counters.
    std::shared_ptr<lm::PrefixCache> method_cache;
    if (spec.prefix_cache) {
      method_cache = std::make_shared<lm::PrefixCache>(
          static_cast<size_t>(spec.prefix_cache_capacity));
      spec.shared_prefix_cache = method_cache;
    }
    serve_options.prefix_cache = method_cache;
    // One decode scheduler per method, shared the same way: every
    // in-flight request's sample draws join one step-level batch.
    std::shared_ptr<batch::BatchScheduler> method_scheduler;
    if (spec.batch || spec.speculative) {
      batch::BatchPolicy policy;
      policy.max_batch = static_cast<size_t>(spec.batch_size);
      policy.backfill = spec.batch_backfill;
      method_scheduler = std::make_shared<batch::BatchScheduler>(policy);
      spec.batch_scheduler = method_scheduler;
    }
    serve_options.batch.scheduler = method_scheduler;
    // One block pool per method, shared the same way: every request's
    // pipelines (and the shared prefix cache's frozen states) draw
    // blocks from it, and its fullness feeds the overload ladder.
    std::shared_ptr<lm::BlockPool> method_pool;
    if (spec.paged_memory) {
      lm::PagedMemoryOptions paged;
      paged.enabled = true;
      paged.block_span = static_cast<size_t>(spec.block_span);
      paged.max_blocks = static_cast<size_t>(spec.pool_blocks);
      method_pool = std::make_shared<lm::BlockPool>(paged);
      spec.block_pool = method_pool;
    }
    serve_options.block_pool = method_pool;
    // Validate the spec once so the per-request factories cannot fail.
    MC_RETURN_IF_ERROR(MakeForecaster(spec).status());
    MethodSpec hedge_spec = spec;
    hedge_spec.fallback = true;  // hedge runs the demotion chain
    MC_RETURN_IF_ERROR(MakeForecaster(hedge_spec).status());

    // Per-request construction decorrelates sampling across requests:
    // request i forecasts with seed base+i, so a retried or hedged run
    // is not a token-for-token replay of its sibling. The ladder's rung
    // (stamped in req.tier at dispatch) picks the pipeline: the reduced
    // rung clamps the draw count, the classical rung swaps in the
    // statistical tier.
    const int reduced_samples = cfg.overload.ladder.reduced_samples;
    auto factory_for = [reduced_samples](MethodSpec s) {
      return [s, reduced_samples](const serve::ForecastRequest& req)
               -> std::unique_ptr<forecast::Forecaster> {
        if (req.tier == serve::ServiceTier::kClassical) {
          forecast::ClassicalOptions copts;
          copts.demotion_note =
              "overload ladder demoted request to the classical tier";
          return std::make_unique<forecast::ClassicalForecaster>(copts);
        }
        MethodSpec per = s;
        per.seed = s.seed + req.id;
        if (req.tier == serve::ServiceTier::kLlmReduced) {
          per.samples = std::min(per.samples, reduced_samples);
        }
        return MakeForecaster(per).ValueOrDie();
      };
    };
    serve::ForecasterFactory hedge_factory;
    if (serve_options.hedge.enabled) {
      if (spec.classical_fallback) {
        // --classical-fallback races the hedge against the classical
        // tier: a deterministic, token-free backup for a slow LLM run.
        hedge_factory = [](const serve::ForecastRequest&) {
          forecast::ClassicalOptions copts;
          copts.demotion_note = "hedge backup served by the classical tier";
          return std::make_unique<forecast::ClassicalForecaster>(copts);
        };
      } else {
        hedge_factory = factory_for(hedge_spec);
      }
    }
    serve::ServeExecutor executor(factory_for(spec), hedge_factory,
                                  serve_options);

    std::vector<serve::ForecastRequest> reqs;
    reqs.reserve(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
      serve::ForecastRequest req;
      req.id = i;
      req.arrival_seconds = arrivals[i].arrival_seconds;
      req.deadline_seconds = arrivals[i].deadline_seconds;
      req.history = &frame;
      req.horizon = static_cast<size_t>(horizon);
      req.slo = SloForRequest(cfg.slo_class, i);
      reqs.push_back(req);
    }
    MC_ASSIGN_OR_RETURN(std::vector<serve::ServeStats> stats,
                        executor.Run(std::move(reqs)));
    serve::ServeSummary summary = serve::Summarize(stats, &registry);
    // Lifetime counters of the shared per-method subsystems (the
    // "serve.*" rollup carries the per-request attribution).
    if (method_cache != nullptr) method_cache->PublishMetrics(&registry);
    if (method_scheduler != nullptr) {
      method_scheduler->PublishMetrics(&registry);
    }
    if (method_pool != nullptr) method_pool->PublishMetrics(&registry);
    sections.emplace_back(name, registry.Snapshot());
    table.AddRow(
        {name, StrFormat("%zu", summary.served),
         StrFormat("%zu", summary.served_degraded),
         StrFormat("%zu", summary.shed_queue_full),
         StrFormat("%zu", summary.shed_expired),
         StrFormat("%zu", summary.cancelled_drain),
         StrFormat("%zu", summary.failed),
         FormatRejections(summary.rejections), FormatTiers(summary),
         StrFormat("%zu", summary.hedges_fired),
         StrFormat("%zu", summary.hedge_wins),
         StrFormat("%.3f", summary.p50_latency_seconds),
         StrFormat("%.3f", summary.p99_latency_seconds),
         StrFormat("%.3f/%.3f/%.3f", summary.p50_queue_wait_seconds,
                   summary.p95_queue_wait_seconds,
                   summary.p99_queue_wait_seconds),
         StrFormat("%.3f/%.3f/%.3f", summary.p50_service_seconds,
                   summary.p95_service_seconds,
                   summary.p99_service_seconds),
         StrFormat("%zu", summary.retry.attempts),
         StrFormat("%zu", summary.retry.retries),
         StrFormat("%zu", summary.retry.cancelled_calls),
         StrFormat("%zu", summary.retry.deadline_preempted)});
    if (method_cache != nullptr) {
      const lm::PrefixCacheStats& pc = summary.prefix_cache;
      cache_lines.push_back(StrFormat(
          "prefix-cache %s: %zu/%zu hits (%zu full), "
          "%zu/%zu prompt tokens reused, %zu evictions",
          name.c_str(), pc.hits(), pc.lookups, pc.full_hits,
          pc.prompt_tokens_reused, pc.prompt_tokens_seen, pc.evictions));
    } else {
      cache_lines.push_back(StrFormat("prefix-cache %s: off", name.c_str()));
    }
    if (method_scheduler != nullptr) {
      const batch::BatchStats& bs = summary.batch;
      batch_lines.push_back(StrFormat(
          "batch %s: %zu steps, %zu decode jobs, mean occupancy %.2f "
          "(peak %zu), %zu backfills, %zu preemptions",
          name.c_str(), bs.steps, bs.admitted, bs.mean_batch(),
          bs.peak_batch, bs.backfills, bs.preemptions));
      if (bs.spec.steps > 0) {
        batch_lines.push_back(StrFormat(
            "spec %s: %zu draft steps, %zu/%zu drafts accepted (%.0f%%), "
            "%zu tokens emitted, wasted verify %.0f%%",
            name.c_str(), bs.spec.steps, bs.spec.accepted, bs.spec.drafted,
            100.0 * bs.spec.acceptance_rate(), bs.spec.emitted,
            100.0 * bs.spec.wasted_verify_fraction()));
      }
    } else {
      batch_lines.push_back(StrFormat("batch %s: off", name.c_str()));
    }
    if (method_pool != nullptr) {
      const lm::BlockPoolStats ms = method_pool->stats();
      mem_lines.push_back(StrFormat(
          "paged-mem %s: %zu blocks live (peak %zu), %zu sessions at "
          "%.0f bytes each, sharing %.1fx, %zu recycled, %zu exhaustions",
          name.c_str(), ms.blocks_live, ms.blocks_peak, ms.sessions,
          ms.bytes_per_session(), ms.sharing_ratio(), ms.blocks_recycled,
          ms.exhaustion_events));
    } else {
      mem_lines.push_back(StrFormat("paged-mem %s: off", name.c_str()));
    }
    if (serve_options.overload.any_enabled()) {
      overload_lines.push_back(
          FormatOverload(name, executor.overload_stats()));
    } else {
      overload_lines.push_back(
          StrFormat("overload %s: off", name.c_str()));
    }
  }
  out << table.Render();
  for (const std::string& line : cache_lines) out << line << "\n";
  for (const std::string& line : batch_lines) out << line << "\n";
  for (const std::string& line : mem_lines) out << line << "\n";
  for (const std::string& line : overload_lines) out << line << "\n";
  if (!metrics_path.empty()) {
    MC_RETURN_IF_ERROR(util::WriteMetricsJson(metrics_path, sections));
    out << "wrote metrics to " << metrics_path << "\n";
  }
  return 0;
}

// Replays the serve-sim trace against a multi-replica fleet with
// health-checked routing, scripted replica chaos and in-flight
// failover.
Result<int> CmdClusterSim(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(int64_t horizon, flags.GetInt("horizon", 12));
  if (horizon < 1) return Status::InvalidArgument("--horizon must be >= 1");
  MC_ASSIGN_OR_RETURN(MethodSpec base, SpecFromFlags(flags));
  MC_ASSIGN_OR_RETURN(SimConfig cfg, ParseSimFlags(flags, base.seed));
  std::vector<serve::Arrival> arrivals = serve::GenerateTrace(cfg.trace);

  MC_ASSIGN_OR_RETURN(int64_t replicas, flags.GetInt("replicas", 3));
  if (replicas < 1) {
    return Status::InvalidArgument("--replicas must be >= 1");
  }
  MC_ASSIGN_OR_RETURN(int64_t slots, flags.GetInt("replica-slots", 1));
  if (slots < 1) {
    return Status::InvalidArgument("--replica-slots must be >= 1");
  }
  MC_ASSIGN_OR_RETURN(
      cluster::RouterPolicy router_policy,
      cluster::RouterPolicyFromName(flags.GetString("router", "least")));
  MC_ASSIGN_OR_RETURN(double replica_chaos,
                      flags.GetDouble("replica-chaos", 0.0));
  if (replica_chaos < 0.0) {
    return Status::InvalidArgument("--replica-chaos must be >= 0");
  }
  MC_ASSIGN_OR_RETURN(int64_t chaos_seed,
                      flags.GetInt("replica-chaos-seed", 0xF1EE7));

  // Script the fleet chaos over the span the trace actually covers.
  cluster::FleetChaosOptions chaos;
  chaos.replicas = static_cast<size_t>(replicas);
  chaos.horizon_seconds =
      arrivals.empty() ? 60.0
                       : arrivals.back().arrival_seconds +
                             cfg.trace.deadline_seconds;
  chaos.crash_rate = replica_chaos;
  chaos.seed = static_cast<uint64_t>(chaos_seed);
  std::vector<cluster::ReplicaFaultPlan> plans =
      cluster::GenerateFleetChaos(chaos);

  cluster::ClusterOptions options;
  options.queue = cfg.queue;
  options.router = router_policy;
  options.router_seed = base.seed;
  options.hedge = cfg.hedge;
  if (cfg.drain_at > 0.0) options.drain_at_seconds = cfg.drain_at;
  options.drain_mode = cfg.drain_mode;
  options.overload = cfg.overload;
  // One registry for the whole fleet run; --metrics-json writes it as
  // one section through the single export path (util::WriteMetricsJson).
  util::MetricsRegistry registry;
  options.metrics = &registry;

  const std::string name = base.name;
  MethodSpec spec = base;
  // Every replica gets its own prompt cache and decode scheduler —
  // node-local state the chaos harness can crash away.
  std::vector<cluster::Replica> fleet;
  for (int64_t r = 0; r < replicas; ++r) {
    cluster::Replica rep;
    rep.id = static_cast<int>(r);
    rep.slots = static_cast<size_t>(slots);
    if (spec.prefix_cache) {
      rep.prefix_cache = std::make_shared<lm::PrefixCache>(
          static_cast<size_t>(spec.prefix_cache_capacity));
    }
    if (spec.batch || spec.speculative) {
      batch::BatchPolicy policy;
      policy.max_batch = static_cast<size_t>(spec.batch_size);
      policy.backfill = spec.batch_backfill;
      rep.scheduler = std::make_shared<batch::BatchScheduler>(policy);
    }
    if (spec.paged_memory) {
      lm::PagedMemoryOptions paged;
      paged.enabled = true;
      paged.block_span = static_cast<size_t>(spec.block_span);
      paged.max_blocks = static_cast<size_t>(spec.pool_blocks);
      rep.block_pool = std::make_shared<lm::BlockPool>(paged);
    }
    rep.plan = plans[static_cast<size_t>(r)];
    fleet.push_back(std::move(rep));
  }

  // Validate the spec once so the per-request factories cannot fail.
  MC_RETURN_IF_ERROR(MakeForecaster(spec).status());
  MethodSpec hedge_spec = spec;
  hedge_spec.fallback = true;  // hedge runs the demotion chain
  MC_RETURN_IF_ERROR(MakeForecaster(hedge_spec).status());

  // Per-request seeds decorrelate sampling; per-replica wiring keeps
  // cache/scheduler state node-local. Seeds never depend on the
  // replica, which is what makes failover output-identical — and the
  // ladder rung rides in req.tier, assigned once per request, so a
  // failed-over re-run rebuilds the identical pipeline.
  const int reduced_samples = cfg.overload.ladder.reduced_samples;
  auto factory_for = [reduced_samples](MethodSpec s) {
    return [s, reduced_samples](const serve::ForecastRequest& req,
                                const cluster::Replica& rep)
             -> std::unique_ptr<forecast::Forecaster> {
      if (req.tier == serve::ServiceTier::kClassical) {
        forecast::ClassicalOptions copts;
        copts.demotion_note =
            "overload ladder demoted request to the classical tier";
        return std::make_unique<forecast::ClassicalForecaster>(copts);
      }
      MethodSpec per = s;
      per.seed = s.seed + req.id;
      if (req.tier == serve::ServiceTier::kLlmReduced) {
        per.samples = std::min(per.samples, reduced_samples);
      }
      per.shared_prefix_cache = rep.prefix_cache;
      per.batch_scheduler = rep.scheduler;
      per.block_pool = rep.block_pool;
      return MakeForecaster(per).ValueOrDie();
    };
  };
  cluster::ReplicaForecasterFactory hedge_factory;
  if (options.hedge.enabled) {
    if (spec.classical_fallback) {
      // --classical-fallback hedges against the classical tier: the
      // backup replica answers instantly with a statistical forecast
      // instead of re-running the LLM chain.
      hedge_factory = [](const serve::ForecastRequest&,
                         const cluster::Replica&) {
        forecast::ClassicalOptions copts;
        copts.demotion_note = "hedge backup served by the classical tier";
        return std::make_unique<forecast::ClassicalForecaster>(copts);
      };
    } else {
      hedge_factory = factory_for(hedge_spec);
    }
  }
  cluster::ClusterExecutor executor(factory_for(spec), hedge_factory,
                                    std::move(fleet), options);

  std::vector<serve::ForecastRequest> reqs;
  reqs.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    serve::ForecastRequest req;
    req.id = i;
    req.arrival_seconds = arrivals[i].arrival_seconds;
    req.deadline_seconds = arrivals[i].deadline_seconds;
    req.history = &frame;
    req.horizon = static_cast<size_t>(horizon);
    req.slo = SloForRequest(cfg.slo_class, i);
    reqs.push_back(req);
  }

  out << StrFormat(
      "cluster-sim: %zu requests at %.3g req/s, deadline %.3gs, "
      "%lld replicas x %lld slots, router %s, chaos %.3g crashes/replica "
      "(seed %lld), queue %zu (%s), hedge %s, seed %llu\n",
      cfg.trace.num_requests, cfg.trace.arrival_rate,
      cfg.trace.deadline_seconds, static_cast<long long>(replicas),
      static_cast<long long>(slots),
      cluster::RouterPolicyName(router_policy), replica_chaos,
      static_cast<long long>(chaos_seed), options.queue.capacity,
      cfg.queue_order.c_str(),
      options.hedge.enabled
          ? StrFormat("after %.3gs", cfg.hedge_delay).c_str()
          : "off",
      static_cast<unsigned long long>(base.seed));
  if (cfg.drain_at > 0.0) {
    out << StrFormat("drain at %.3gs (%s)\n", cfg.drain_at,
                     cfg.drain_mode_name.c_str());
  }
  if (options.overload.any_enabled()) {
    out << StrFormat(
        "overload ladder: on (reduced %d draws, wait budget %.3gs, aimd "
        "%.3g..%.3g), slo %s\n",
        options.overload.ladder.reduced_samples,
        options.overload.ladder.wait_budget_seconds,
        options.overload.aimd.initial_limit,
        options.overload.aimd.max_limit, cfg.slo_class.c_str());
  }

  MC_ASSIGN_OR_RETURN(std::vector<serve::ServeStats> stats,
                      executor.Run(std::move(reqs)));
  serve::ServeSummary summary = serve::Summarize(stats, &registry);
  // Lifetime counters of each replica's node-local subsystems.
  for (size_t r = 0; r < executor.num_replicas(); ++r) {
    const cluster::Replica& rep = executor.replica(r);
    if (rep.prefix_cache != nullptr) {
      rep.prefix_cache->PublishMetrics(
          &registry, StrFormat("replica%d.prefix_cache.", rep.id));
    }
    if (rep.scheduler != nullptr) {
      rep.scheduler->PublishMetrics(
          &registry, StrFormat("replica%d.batch.", rep.id));
    }
    if (rep.block_pool != nullptr) {
      rep.block_pool->PublishMetrics(
          &registry, StrFormat("replica%d.lm.mem.", rep.id));
    }
  }
  const cluster::ClusterReport& report = executor.report();

  TextTable table({"Method", "Served", "Degraded", "Shed(full)",
                   "Shed(expired)", "Drained", "Failed",
                   "Rej full/ddl/unav/cxl", "Tier F/R/C/S", "Failovers",
                   "Redisp.draws", "Wasted(s)", "Hedged", "HedgeWins",
                   "p50(s)", "p99(s)"});
  table.AddRow({name, StrFormat("%zu", summary.served),
                StrFormat("%zu", summary.served_degraded),
                StrFormat("%zu", summary.shed_queue_full),
                StrFormat("%zu", summary.shed_expired),
                StrFormat("%zu", summary.cancelled_drain),
                StrFormat("%zu", summary.failed),
                FormatRejections(summary.rejections), FormatTiers(summary),
                StrFormat("%zu", summary.cluster.failovers),
                StrFormat("%zu", summary.cluster.redispatched_draws),
                StrFormat("%.3f", summary.cluster.wasted_seconds),
                StrFormat("%zu", summary.hedges_fired),
                StrFormat("%zu", summary.hedge_wins),
                StrFormat("%.3f", summary.p50_latency_seconds),
                StrFormat("%.3f", summary.p99_latency_seconds)});
  out << table.Render();

  out << StrFormat(
      "health: %zu probes (%zu failed), %zu ejections, %zu readmissions, "
      "%zu misroutes; fleet-unavailable %zu\n",
      report.health.probes, report.health.failed_probes,
      report.health.ejections, report.health.readmissions,
      report.health.misroutes, report.fleet_unavailable);
  if (options.overload.any_enabled()) {
    out << FormatOverload(name, report.overload) << "\n";
  }
  for (const cluster::ReplicaReport& rep : report.replicas) {
    const size_t served_here =
        static_cast<size_t>(rep.id) < summary.served_per_replica.size()
            ? summary.served_per_replica[static_cast<size_t>(rep.id)]
            : 0;
    out << StrFormat(
        "replica %d: %zu dispatched, %zu completed, %zu served, "
        "%zu failovers, %zu misroutes, occupancy %.2f\n",
        rep.id, rep.dispatched, rep.completed, served_here, rep.failovers,
        rep.misroutes, rep.occupancy);
    const std::shared_ptr<lm::BlockPool>& pool =
        executor.replica(static_cast<size_t>(rep.id)).block_pool;
    if (pool != nullptr) {
      const lm::BlockPoolStats ms = pool->stats();
      out << StrFormat(
          "replica %d paged-mem: %zu blocks live (peak %zu), %zu sessions "
          "at %.0f bytes each, sharing %.1fx, %zu exhaustions\n",
          rep.id, ms.blocks_live, ms.blocks_peak, ms.sessions,
          ms.bytes_per_session(), ms.sharing_ratio(), ms.exhaustion_events);
    }
  }
  const std::string metrics_path = flags.GetString("metrics-json", "");
  if (!metrics_path.empty()) {
    std::vector<std::pair<std::string, util::MetricsSnapshot>> sections;
    sections.emplace_back(name, registry.Snapshot());
    MC_RETURN_IF_ERROR(util::WriteMetricsJson(metrics_path, sections));
    out << "wrote metrics to " << metrics_path << "\n";
  }
  return 0;
}

Result<int> CmdGenerate(const FlagSet& flags, std::ostream& out) {
  std::string dataset = flags.GetString("dataset", "GasRate");
  MC_ASSIGN_OR_RETURN(int64_t seed,
                      flags.GetInt("seed", data::kDefaultSeed));
  MC_ASSIGN_OR_RETURN(
      ts::Frame frame,
      data::LoadDataset(dataset, static_cast<uint64_t>(seed)));
  std::string path = flags.GetString("output", "");
  if (path.empty()) {
    out << WriteCsv(frame.ToCsv());
  } else {
    MC_RETURN_IF_ERROR(WriteCsvFile(frame.ToCsv(), path));
    out << "wrote " << dataset << " (" << frame.num_dims() << " x "
        << frame.length() << ") to " << path << "\n";
  }
  return 0;
}

}  // namespace

Result<std::unique_ptr<forecast::Forecaster>> MakeForecaster(
    const MethodSpec& spec) {
  MC_ASSIGN_OR_RETURN(lm::ModelProfile profile,
                      ProfileByName(spec.profile));

  lm::FaultProfile faults = spec.chaos > 0.0
                                ? lm::FaultProfile::Chaos(spec.chaos,
                                                          spec.chaos_seed)
                                : lm::FaultProfile::None();
  forecast::ResilienceConfig resilience;
  resilience.retries_enabled = spec.retries > 0;
  resilience.retry.max_attempts = spec.retries + 1;
  resilience.max_redraws = spec.redraws;

  // Shared scheduler when the caller wired one (serve-sim), else a
  // private scheduler per forecaster when batching was asked for.
  // --speculative implies a scheduler: the draft/verify step engine
  // lives inside BatchScheduler.
  std::shared_ptr<batch::BatchScheduler> scheduler = spec.batch_scheduler;
  if ((spec.batch || spec.speculative) && scheduler == nullptr) {
    batch::BatchPolicy policy;
    policy.max_batch = static_cast<size_t>(spec.batch_size);
    policy.backfill = spec.batch_backfill;
    scheduler = std::make_shared<batch::BatchScheduler>(policy);
  }
  // Shared block pool when the caller wired one (serve-sim), else a
  // private pool per forecaster under --paged-memory. Created here —
  // not inside the option structs — so a fallback chain's MultiCast
  // and LLMTime tiers share one pool.
  std::shared_ptr<lm::BlockPool> block_pool = spec.block_pool;
  if (spec.paged_memory && block_pool == nullptr) {
    lm::PagedMemoryOptions paged;
    paged.enabled = true;
    paged.block_span = static_cast<size_t>(spec.block_span);
    paged.max_blocks = static_cast<size_t>(spec.pool_blocks);
    block_pool = std::make_shared<lm::BlockPool>(paged);
  }

  auto multicast_with = [&](multiplex::MuxKind mux)
      -> Result<std::unique_ptr<forecast::Forecaster>> {
    forecast::MultiCastOptions opts;
    opts.mux = mux;
    opts.num_samples = spec.samples;
    opts.digits = spec.digits;
    opts.seed = spec.seed;
    opts.profile = profile;
    opts.faults = faults;
    opts.resilience = resilience;
    if (spec.sax == "alpha") {
      opts.quantization = forecast::Quantization::kSaxAlphabetic;
    } else if (spec.sax == "digit") {
      opts.quantization = forecast::Quantization::kSaxDigital;
    } else if (!spec.sax.empty()) {
      return Status::InvalidArgument("--sax expects 'alpha' or 'digit'");
    }
    opts.sax_segment_length = spec.sax_segment;
    opts.sax_alphabet_size = spec.sax_alphabet;
    opts.threads = spec.threads;
    opts.prefix_cache = spec.prefix_cache;
    opts.prefix_cache_capacity =
        static_cast<size_t>(spec.prefix_cache_capacity);
    opts.shared_prefix_cache = spec.shared_prefix_cache;
    opts.batch_scheduler = scheduler;
    opts.speculative = spec.speculative;
    opts.draft_k = spec.draft_k;
    opts.block_pool = block_pool;
    return {std::make_unique<forecast::MultiCastForecaster>(opts)};
  };
  auto llmtime = [&]() -> std::unique_ptr<forecast::Forecaster> {
    forecast::LlmTimeOptions opts;
    opts.num_samples = spec.samples;
    opts.digits = spec.digits;
    opts.seed = spec.seed;
    opts.profile = profile;
    opts.faults = faults;
    opts.resilience = resilience;
    opts.threads = spec.threads;
    opts.prefix_cache = spec.prefix_cache;
    opts.prefix_cache_capacity =
        static_cast<size_t>(spec.prefix_cache_capacity);
    opts.shared_prefix_cache = spec.shared_prefix_cache;
    opts.batch_scheduler = scheduler;
    opts.speculative = spec.speculative;
    opts.draft_k = spec.draft_k;
    opts.block_pool = block_pool;
    return std::make_unique<forecast::LlmTimeForecaster>(opts);
  };
  // Wraps an LLM-path forecaster in the MultiCast -> LLMTime -> naive
  // demotion chain; --classical-fallback ends the chain on the
  // classical tier (residual-quantile bands) instead of bare NaiveLast.
  auto with_fallback = [&](std::unique_ptr<forecast::Forecaster> primary,
                           bool add_llmtime)
      -> Result<std::unique_ptr<forecast::Forecaster>> {
    if (!spec.fallback && !spec.classical_fallback) {
      return {std::move(primary)};
    }
    std::vector<std::unique_ptr<forecast::Forecaster>> chain;
    chain.push_back(std::move(primary));
    if (add_llmtime) chain.push_back(llmtime());
    if (spec.classical_fallback) {
      forecast::ClassicalOptions copts;
      copts.demotion_note =
          "fallback chain demoted request to the classical tier";
      chain.push_back(
          std::make_unique<forecast::ClassicalForecaster>(copts));
    } else {
      chain.push_back(std::make_unique<baselines::NaiveLastForecaster>());
    }
    return {std::make_unique<forecast::FallbackForecaster>(
        std::move(chain))};
  };

  if (spec.name == "DI") {
    MC_ASSIGN_OR_RETURN(
        auto primary, multicast_with(multiplex::MuxKind::kDigitInterleave));
    return with_fallback(std::move(primary), /*add_llmtime=*/true);
  }
  if (spec.name == "VI") {
    MC_ASSIGN_OR_RETURN(
        auto primary, multicast_with(multiplex::MuxKind::kValueInterleave));
    return with_fallback(std::move(primary), /*add_llmtime=*/true);
  }
  if (spec.name == "VC") {
    MC_ASSIGN_OR_RETURN(
        auto primary, multicast_with(multiplex::MuxKind::kValueConcat));
    return with_fallback(std::move(primary), /*add_llmtime=*/true);
  }
  if (spec.name == "LLMTIME") {
    return with_fallback(llmtime(), /*add_llmtime=*/false);
  }
  if (spec.fallback || spec.classical_fallback) {
    return Status::InvalidArgument(
        "--fallback/--classical-fallback apply to the LLM methods "
        "(DI, VI, VC, LLMTIME)");
  }
  if (spec.name == "CLASSICAL") {
    return {std::make_unique<forecast::ClassicalForecaster>()};
  }
  if (spec.name == "ARIMA") {
    baselines::ArimaOptions opts;
    opts.auto_select = true;
    return {std::make_unique<baselines::ArimaForecaster>(opts)};
  }
  if (spec.name == "SARIMA") {
    baselines::SarimaOptions opts;
    opts.auto_period = true;
    return {std::make_unique<baselines::SarimaForecaster>(opts)};
  }
  if (spec.name == "LSTM") {
    baselines::LstmOptions opts;
    opts.seed = spec.seed;
    return {std::make_unique<baselines::LstmForecaster>(opts)};
  }
  if (spec.name == "HW") {
    baselines::EtsOptions opts;
    opts.auto_season = true;
    return {std::make_unique<baselines::EtsForecaster>(opts)};
  }
  if (spec.name == "NAIVE") {
    return {std::make_unique<baselines::NaiveLastForecaster>()};
  }
  if (spec.name == "DRIFT") {
    return {std::make_unique<baselines::DriftForecaster>()};
  }
  return Status::InvalidArgument(
      "unknown method '" + spec.name +
      "' (expected DI, VI, VC, LLMTIME, ARIMA, SARIMA, LSTM, HW, NAIVE, "
      "DRIFT or CLASSICAL)");
}

std::string UsageText() {
  return
      "multicast <command> [flags]\n"
      "\n"
      "commands:\n"
      "  forecast  --input feed.csv --horizon 12 [--method VI] [--samples 5]\n"
      "            [--digits 2] [--sax alpha|digit] [--sax-segment 6]\n"
      "            [--sax-alphabet 5] [--profile llama2|phi2|ctw]\n"
      "            [--quantiles 0.1,0.9] [--seed 42] [--output out.csv]\n"
      "            [--plot] [--threads 4] [--prefix-cache 0|1]\n"
      "            [--prefix-cache-capacity 64] [--batch]\n"
      "            [--batch-size 8] [--batch-backfill 0|1]\n"
      "            [--speculative (draft-then-verify decode; implies a\n"
      "            decode scheduler)] [--draft-k 4]\n"
      "            [--paged-memory (block-pooled session state; output\n"
      "            stays bit-identical)] [--block-span 32]\n"
      "            [--pool-blocks N (0 = unbounded; at the cap entries\n"
      "            spill to plain storage)]\n"
      "            chaos/resilience: [--chaos 0.2] [--chaos-seed N]\n"
      "            [--retries 3] [--redraws 4] [--fallback]\n"
      "            [--classical-fallback (end the chain on the classical\n"
      "            tier; --method CLASSICAL serves it directly)]\n"
      "  evaluate  --input feed.csv --horizon 12 [--folds 3] [--stride 12]\n"
      "  impute    --input feed.csv [--output out.csv]\n"
      "  anomaly   --input feed.csv [--quantile 0.98]\n"
      "  generate  [--dataset GasRate|Electricity|Weather] [--seed N]\n"
      "            [--output out.csv]\n"
      "  serve-sim --input feed.csv [--horizon 12] [--method VI]\n"
      "            trace: [--requests 32] [--arrival-rate 4]\n"
      "            [--deadline 2.0] [--burst-factor 4] [--burst-every 10]\n"
      "            [--burst-duration 2] [--seed 42]\n"
      "            serving: [--queue-capacity 8] [--queue-order fifo|edf]\n"
      "            [--hedge-delay 0.5] [--drain T] [--drain-mode\n"
      "            finish|cancel] [--threads 4] [--prefix-cache 0|1]\n"
      "            [--prefix-cache-capacity 64] [--batch] [--batch-size 8]\n"
      "            [--batch-backfill 0|1] [--speculative] [--draft-k 4]\n"
      "            [--paged-memory] [--block-span 32] [--pool-blocks N]\n"
      "            plus the chaos/resilience flags\n"
      "            above (one cache, one decode scheduler and one block\n"
      "            pool are shared per method, across requests; --batch\n"
      "            also serves up to batch-size requests concurrently;\n"
      "            with --overload-ladder the pool's fullness sheds load\n"
      "            on memory pressure)\n"
      "            overload: [--overload-ladder (brownout ladder + AIMD\n"
      "            admission)] [--slo-class interactive|standard|batch|\n"
      "            mixed] [--classical-fallback (classical-tier hedge\n"
      "            backup and fallback terminal)]\n"
      "            export: [--metrics-json out.json (every queue/overload/\n"
      "            cache/batch/serve counter, one section per method)]\n"
      "  cluster-sim --input feed.csv [--horizon 12] [--method VI]\n"
      "            fleet: [--replicas 3] [--replica-slots 1]\n"
      "            [--router rr|least|p2c|affinity]\n"
      "            chaos: [--replica-chaos 1.0 (expected crashes per\n"
      "            replica over the trace)] [--replica-chaos-seed N]\n"
      "            plus every serve-sim trace/queue/drain/hedge/overload/\n"
      "            paged-memory/metrics-json flag; each replica gets its\n"
      "            own prefix cache, decode scheduler and block pool,\n"
      "            crashes fail running work over to surviving replicas,\n"
      "            and health probes eject/readmit replicas from routing\n"
      "  help\n";
}

Result<int> RunCommand(const std::vector<std::string>& args,
                       std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return 0;
  }
  std::string command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  MC_ASSIGN_OR_RETURN(FlagSet flags,
                      FlagSet::Parse(rest, kMethodFlags, kBoolFlags));
  if (command == "forecast") return CmdForecast(flags, out);
  if (command == "evaluate") return CmdEvaluate(flags, out);
  if (command == "impute") return CmdImpute(flags, out);
  if (command == "anomaly") return CmdAnomaly(flags, out);
  if (command == "generate") return CmdGenerate(flags, out);
  if (command == "serve-sim" || command == "--serve-sim") {
    return CmdServeSim(flags, out);
  }
  if (command == "cluster-sim" || command == "--cluster-sim") {
    return CmdClusterSim(flags, out);
  }
  return Status::InvalidArgument("unknown command '" + command +
                                 "'; run 'multicast help'");
}

}  // namespace cli
}  // namespace multicast
