#include "cli/cli.h"

#include <set>

#include "baselines/arima.h"
#include "baselines/ets.h"
#include "baselines/sarima.h"
#include "baselines/lstm.h"
#include "baselines/naive.h"
#include "data/datasets.h"
#include "eval/report.h"
#include "eval/rolling.h"
#include "extensions/anomaly.h"
#include "extensions/imputation.h"
#include "forecast/fallback.h"
#include "forecast/llmtime_forecaster.h"
#include "forecast/multicast_forecaster.h"
#include "ts/split.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace multicast {
namespace cli {

namespace {

// Flags shared by the method-constructing commands.
const std::set<std::string> kMethodFlags = {
    "input",  "output",      "horizon",  "method",   "samples",
    "digits", "seed",        "sax",      "sax-segment",
    "sax-alphabet",          "profile",  "plot",     "folds",
    "stride", "quantile",    "dataset",  "name",     "quantiles",
    "chaos",  "chaos-seed",  "retries",  "redraws",  "fallback"};
const std::set<std::string> kBoolFlags = {"plot", "fallback"};

Result<lm::ModelProfile> ProfileByName(const std::string& name) {
  if (name == "llama2") return lm::ModelProfile::Llama2_7B();
  if (name == "phi2") return lm::ModelProfile::Phi2();
  if (name == "ctw") return lm::ModelProfile::CtwMixture();
  return Status::InvalidArgument("unknown profile '" + name +
                                 "' (expected llama2, phi2 or ctw)");
}

Result<MethodSpec> SpecFromFlags(const FlagSet& flags) {
  MethodSpec spec;
  spec.name = flags.GetString("method", "VI");
  MC_ASSIGN_OR_RETURN(int64_t samples, flags.GetInt("samples", 5));
  MC_ASSIGN_OR_RETURN(int64_t digits, flags.GetInt("digits", 2));
  MC_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  MC_ASSIGN_OR_RETURN(int64_t sax_segment, flags.GetInt("sax-segment", 6));
  MC_ASSIGN_OR_RETURN(int64_t sax_alphabet,
                      flags.GetInt("sax-alphabet", 5));
  spec.samples = static_cast<int>(samples);
  spec.digits = static_cast<int>(digits);
  spec.seed = static_cast<uint64_t>(seed);
  spec.sax = flags.GetString("sax", "");
  spec.sax_segment = static_cast<int>(sax_segment);
  spec.sax_alphabet = static_cast<int>(sax_alphabet);
  spec.profile = flags.GetString("profile", "llama2");
  MC_ASSIGN_OR_RETURN(spec.chaos, flags.GetDouble("chaos", 0.0));
  if (spec.chaos < 0.0 || spec.chaos > 1.0) {
    return Status::InvalidArgument("--chaos expects a rate in [0, 1]");
  }
  MC_ASSIGN_OR_RETURN(int64_t chaos_seed,
                      flags.GetInt("chaos-seed", 0xC0FFEE));
  spec.chaos_seed = static_cast<uint64_t>(chaos_seed);
  MC_ASSIGN_OR_RETURN(int64_t retries, flags.GetInt("retries", 3));
  if (retries < 0) {
    return Status::InvalidArgument("--retries must be >= 0");
  }
  spec.retries = static_cast<int>(retries);
  MC_ASSIGN_OR_RETURN(int64_t redraws, flags.GetInt("redraws", 4));
  if (redraws < 0) {
    return Status::InvalidArgument("--redraws must be >= 0");
  }
  spec.redraws = static_cast<int>(redraws);
  spec.fallback = flags.GetBool("fallback");
  return spec;
}

Result<ts::Frame> LoadInput(const FlagSet& flags) {
  std::string path = flags.GetString("input", "");
  if (path.empty()) {
    return Status::InvalidArgument("--input <csv> is required");
  }
  return data::LoadCsvDataset(path, flags.GetString("name", path));
}

Status SaveIfRequested(const FlagSet& flags, const ts::Frame& frame,
                       std::ostream& out) {
  std::string path = flags.GetString("output", "");
  if (path.empty()) return Status::OK();
  MC_RETURN_IF_ERROR(WriteCsvFile(frame.ToCsv(), path));
  out << "wrote " << path << "\n";
  return Status::OK();
}

// Parses a comma-separated list of quantile levels ("0.1,0.9").
Result<std::vector<double>> ParseQuantiles(const std::string& text) {
  std::vector<double> levels;
  for (const std::string& field : Split(text, ',')) {
    char* end = nullptr;
    double level = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size() || field.empty()) {
      return Status::InvalidArgument("bad quantile level '" + field + "'");
    }
    levels.push_back(level);
  }
  return levels;
}

Result<int> CmdForecast(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(int64_t horizon, flags.GetInt("horizon", 12));
  if (horizon < 1) return Status::InvalidArgument("--horizon must be >= 1");
  MC_ASSIGN_OR_RETURN(MethodSpec spec, SpecFromFlags(flags));
  MC_ASSIGN_OR_RETURN(std::unique_ptr<forecast::Forecaster> forecaster,
                      MakeForecaster(spec));

  // Quantile bands are a MultiCast feature; rebuild with them when
  // requested on a MultiCast variant.
  if (flags.Has("quantiles")) {
    auto* mc = dynamic_cast<forecast::MultiCastForecaster*>(
        forecaster.get());
    if (mc == nullptr) {
      return Status::InvalidArgument(
          "--quantiles requires a MultiCast method (DI, VI or VC)");
    }
    MC_ASSIGN_OR_RETURN(std::vector<double> levels,
                        ParseQuantiles(flags.GetString("quantiles", "")));
    forecast::MultiCastOptions opts = mc->options();
    opts.quantiles = std::move(levels);
    forecaster = std::make_unique<forecast::MultiCastForecaster>(opts);
  }

  MC_ASSIGN_OR_RETURN(
      forecast::ForecastResult result,
      forecaster->Forecast(frame, static_cast<size_t>(horizon)));
  out << forecaster->name() << " forecast, " << horizon << " steps, "
      << StrFormat("%.3fs", result.seconds);
  if (result.ledger.total() > 0) {
    out << ", tokens " << eval::FormatLedger(result.ledger);
  }
  out << "\n";
  if (result.retry_stats.attempts > 0) {
    out << StrFormat(
        "resilience: %zu calls, %zu attempts (%zu retries), "
        "%zu circuit rejections, %.3fs virtual backoff\n",
        result.retry_stats.calls, result.retry_stats.attempts,
        result.retry_stats.retries, result.retry_stats.circuit_rejections,
        result.retry_stats.backoff_seconds);
  }
  if (result.degraded) {
    out << StrFormat("DEGRADED result (%zu/%zu samples)",
                     result.samples_used, result.samples_requested);
    if (auto* fb =
            dynamic_cast<forecast::FallbackForecaster*>(forecaster.get())) {
      out << ", served by " << fb->last_used();
    }
    out << "\n";
    for (const std::string& warning : result.warnings) {
      out << "  warning: " << warning << "\n";
    }
  }

  // Print the forecast as CSV rows on stdout.
  out << WriteCsv(result.forecast.ToCsv());
  for (const auto& [level, band] : result.quantile_bands) {
    out << StrFormat("p%g band:\n", level * 100.0);
    out << WriteCsv(band.ToCsv());
  }

  if (flags.GetBool("plot")) {
    ts::Split pseudo;
    pseudo.train = frame;
    pseudo.test = result.forecast;
    eval::MethodRun run;
    run.method = forecaster->name();
    run.forecast = result.forecast;
    for (size_t d = 0; d < frame.num_dims(); ++d) {
      out << eval::RenderForecastFigure(frame.dim(d).name(), pseudo, d,
                                        run);
    }
  }
  MC_RETURN_IF_ERROR(SaveIfRequested(flags, result.forecast, out));
  return 0;
}

Result<int> CmdEvaluate(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(int64_t horizon, flags.GetInt("horizon", 12));
  MC_ASSIGN_OR_RETURN(int64_t folds, flags.GetInt("folds", 3));
  MC_ASSIGN_OR_RETURN(int64_t stride, flags.GetInt("stride", horizon));
  MC_ASSIGN_OR_RETURN(MethodSpec base, SpecFromFlags(flags));

  eval::RollingOptions ro;
  ro.horizon = static_cast<size_t>(horizon);
  ro.folds = static_cast<size_t>(folds);
  ro.stride = static_cast<size_t>(stride);

  std::vector<std::string> header = {"Method"};
  for (size_t d = 0; d < frame.num_dims(); ++d) {
    header.push_back(frame.dim(d).name() + " (mean +/- sd)");
  }
  TextTable table(header);
  for (const char* name : {"DI", "VI", "VC", "LLMTIME", "ARIMA", "SARIMA",
                           "HW", "LSTM", "NAIVE"}) {
    MethodSpec spec = base;
    spec.name = name;
    MC_ASSIGN_OR_RETURN(std::unique_ptr<forecast::Forecaster> forecaster,
                        MakeForecaster(spec));
    MC_ASSIGN_OR_RETURN(
        eval::RollingResult result,
        eval::RollingOriginEvaluate(forecaster.get(), frame, ro));
    std::vector<std::string> row = {result.method};
    for (size_t d = 0; d < frame.num_dims(); ++d) {
      row.push_back(StrFormat("%.3f +/- %.3f", result.mean_rmse[d],
                              result.stddev_rmse[d]));
    }
    table.AddRow(std::move(row));
  }
  out << table.Render();
  return 0;
}

Result<int> CmdImpute(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(MethodSpec spec, SpecFromFlags(flags));
  extensions::ImputeOptions opts;
  opts.multicast.num_samples = spec.samples;
  opts.multicast.digits = spec.digits;
  opts.multicast.seed = spec.seed;
  MC_ASSIGN_OR_RETURN(opts.multicast.profile, ProfileByName(spec.profile));

  auto gaps = extensions::FindGaps(frame);
  out << "gaps: " << gaps.size();
  for (const auto& gap : gaps) {
    out << StrFormat(" [%zu, %zu)", gap.begin, gap.end);
  }
  out << "\n";
  MC_ASSIGN_OR_RETURN(ts::Frame filled, extensions::Impute(frame, opts));
  out << WriteCsv(filled.ToCsv());
  MC_RETURN_IF_ERROR(SaveIfRequested(flags, filled, out));
  return 0;
}

Result<int> CmdAnomaly(const FlagSet& flags, std::ostream& out) {
  MC_ASSIGN_OR_RETURN(ts::Frame frame, LoadInput(flags));
  MC_ASSIGN_OR_RETURN(double quantile, flags.GetDouble("quantile", 0.98));
  extensions::AnomalyOptions opts;
  opts.threshold_quantile = quantile;
  MC_ASSIGN_OR_RETURN(opts.profile,
                      ProfileByName(flags.GetString("profile", "llama2")));
  MC_ASSIGN_OR_RETURN(extensions::AnomalyReport report,
                      extensions::DetectAnomalies(frame, opts));
  out << StrFormat("threshold (q%.3g of surprisal): %.4f\n", quantile,
                   report.threshold);
  out << "anomalies:";
  for (size_t t : report.anomalies) {
    size_t d = report.ArgMaxDimension(t);
    out << " " << t << "(" << frame.dim(d).name() << ")";
  }
  out << "\n";

  extensions::ChangePointOptions cp;
  cp.scoring = opts;
  MC_ASSIGN_OR_RETURN(std::vector<size_t> cps,
                      extensions::DetectChangePoints(frame, cp));
  out << "change points:";
  for (size_t t : cps) out << " " << t;
  out << "\n";
  return 0;
}

Result<int> CmdGenerate(const FlagSet& flags, std::ostream& out) {
  std::string dataset = flags.GetString("dataset", "GasRate");
  MC_ASSIGN_OR_RETURN(int64_t seed,
                      flags.GetInt("seed", data::kDefaultSeed));
  MC_ASSIGN_OR_RETURN(
      ts::Frame frame,
      data::LoadDataset(dataset, static_cast<uint64_t>(seed)));
  std::string path = flags.GetString("output", "");
  if (path.empty()) {
    out << WriteCsv(frame.ToCsv());
  } else {
    MC_RETURN_IF_ERROR(WriteCsvFile(frame.ToCsv(), path));
    out << "wrote " << dataset << " (" << frame.num_dims() << " x "
        << frame.length() << ") to " << path << "\n";
  }
  return 0;
}

}  // namespace

Result<std::unique_ptr<forecast::Forecaster>> MakeForecaster(
    const MethodSpec& spec) {
  MC_ASSIGN_OR_RETURN(lm::ModelProfile profile,
                      ProfileByName(spec.profile));

  lm::FaultProfile faults = spec.chaos > 0.0
                                ? lm::FaultProfile::Chaos(spec.chaos,
                                                          spec.chaos_seed)
                                : lm::FaultProfile::None();
  forecast::ResilienceConfig resilience;
  resilience.retries_enabled = spec.retries > 0;
  resilience.retry.max_attempts = spec.retries + 1;
  resilience.max_redraws = spec.redraws;

  auto multicast_with = [&](multiplex::MuxKind mux)
      -> Result<std::unique_ptr<forecast::Forecaster>> {
    forecast::MultiCastOptions opts;
    opts.mux = mux;
    opts.num_samples = spec.samples;
    opts.digits = spec.digits;
    opts.seed = spec.seed;
    opts.profile = profile;
    opts.faults = faults;
    opts.resilience = resilience;
    if (spec.sax == "alpha") {
      opts.quantization = forecast::Quantization::kSaxAlphabetic;
    } else if (spec.sax == "digit") {
      opts.quantization = forecast::Quantization::kSaxDigital;
    } else if (!spec.sax.empty()) {
      return Status::InvalidArgument("--sax expects 'alpha' or 'digit'");
    }
    opts.sax_segment_length = spec.sax_segment;
    opts.sax_alphabet_size = spec.sax_alphabet;
    return {std::make_unique<forecast::MultiCastForecaster>(opts)};
  };
  auto llmtime = [&]() -> std::unique_ptr<forecast::Forecaster> {
    forecast::LlmTimeOptions opts;
    opts.num_samples = spec.samples;
    opts.digits = spec.digits;
    opts.seed = spec.seed;
    opts.profile = profile;
    opts.faults = faults;
    opts.resilience = resilience;
    return std::make_unique<forecast::LlmTimeForecaster>(opts);
  };
  // Wraps an LLM-path forecaster in the MultiCast -> LLMTime -> naive
  // demotion chain.
  auto with_fallback = [&](std::unique_ptr<forecast::Forecaster> primary,
                           bool add_llmtime)
      -> Result<std::unique_ptr<forecast::Forecaster>> {
    if (!spec.fallback) return {std::move(primary)};
    std::vector<std::unique_ptr<forecast::Forecaster>> chain;
    chain.push_back(std::move(primary));
    if (add_llmtime) chain.push_back(llmtime());
    chain.push_back(std::make_unique<baselines::NaiveLastForecaster>());
    return {std::make_unique<forecast::FallbackForecaster>(
        std::move(chain))};
  };

  if (spec.name == "DI") {
    MC_ASSIGN_OR_RETURN(
        auto primary, multicast_with(multiplex::MuxKind::kDigitInterleave));
    return with_fallback(std::move(primary), /*add_llmtime=*/true);
  }
  if (spec.name == "VI") {
    MC_ASSIGN_OR_RETURN(
        auto primary, multicast_with(multiplex::MuxKind::kValueInterleave));
    return with_fallback(std::move(primary), /*add_llmtime=*/true);
  }
  if (spec.name == "VC") {
    MC_ASSIGN_OR_RETURN(
        auto primary, multicast_with(multiplex::MuxKind::kValueConcat));
    return with_fallback(std::move(primary), /*add_llmtime=*/true);
  }
  if (spec.name == "LLMTIME") {
    return with_fallback(llmtime(), /*add_llmtime=*/false);
  }
  if (spec.fallback) {
    return Status::InvalidArgument(
        "--fallback applies to the LLM methods (DI, VI, VC, LLMTIME)");
  }
  if (spec.name == "ARIMA") {
    baselines::ArimaOptions opts;
    opts.auto_select = true;
    return {std::make_unique<baselines::ArimaForecaster>(opts)};
  }
  if (spec.name == "SARIMA") {
    baselines::SarimaOptions opts;
    opts.auto_period = true;
    return {std::make_unique<baselines::SarimaForecaster>(opts)};
  }
  if (spec.name == "LSTM") {
    baselines::LstmOptions opts;
    opts.seed = spec.seed;
    return {std::make_unique<baselines::LstmForecaster>(opts)};
  }
  if (spec.name == "HW") {
    baselines::EtsOptions opts;
    opts.auto_season = true;
    return {std::make_unique<baselines::EtsForecaster>(opts)};
  }
  if (spec.name == "NAIVE") {
    return {std::make_unique<baselines::NaiveLastForecaster>()};
  }
  if (spec.name == "DRIFT") {
    return {std::make_unique<baselines::DriftForecaster>()};
  }
  return Status::InvalidArgument(
      "unknown method '" + spec.name +
      "' (expected DI, VI, VC, LLMTIME, ARIMA, SARIMA, LSTM, HW, NAIVE or "
      "DRIFT)");
}

std::string UsageText() {
  return
      "multicast <command> [flags]\n"
      "\n"
      "commands:\n"
      "  forecast  --input feed.csv --horizon 12 [--method VI] [--samples 5]\n"
      "            [--digits 2] [--sax alpha|digit] [--sax-segment 6]\n"
      "            [--sax-alphabet 5] [--profile llama2|phi2|ctw]\n"
      "            [--quantiles 0.1,0.9] [--seed 42] [--output out.csv]\n"
      "            [--plot]\n"
      "            chaos/resilience: [--chaos 0.2] [--chaos-seed N]\n"
      "            [--retries 3] [--redraws 4] [--fallback]\n"
      "  evaluate  --input feed.csv --horizon 12 [--folds 3] [--stride 12]\n"
      "  impute    --input feed.csv [--output out.csv]\n"
      "  anomaly   --input feed.csv [--quantile 0.98]\n"
      "  generate  [--dataset GasRate|Electricity|Weather] [--seed N]\n"
      "            [--output out.csv]\n"
      "  help\n";
}

Result<int> RunCommand(const std::vector<std::string>& args,
                       std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return 0;
  }
  std::string command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  MC_ASSIGN_OR_RETURN(FlagSet flags,
                      FlagSet::Parse(rest, kMethodFlags, kBoolFlags));
  if (command == "forecast") return CmdForecast(flags, out);
  if (command == "evaluate") return CmdEvaluate(flags, out);
  if (command == "impute") return CmdImpute(flags, out);
  if (command == "anomaly") return CmdAnomaly(flags, out);
  if (command == "generate") return CmdGenerate(flags, out);
  return Status::InvalidArgument("unknown command '" + command +
                                 "'; run 'multicast help'");
}

}  // namespace cli
}  // namespace multicast
