#include "sax/sax.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sax/gaussian.h"
#include "sax/paa.h"
#include "ts/stats.h"
#include "util/strings.h"

namespace multicast {
namespace sax {

Result<std::vector<double>> GaussianBreakpoints(int alphabet_size) {
  if (alphabet_size < 2) {
    return Status::InvalidArgument(
        StrFormat("alphabet_size must be >= 2, got %d", alphabet_size));
  }
  std::vector<double> breaks;
  breaks.reserve(static_cast<size_t>(alphabet_size) - 1);
  for (int i = 1; i < alphabet_size; ++i) {
    breaks.push_back(
        NormalQuantile(static_cast<double>(i) / alphabet_size));
  }
  return breaks;
}

Result<SaxCodec> SaxCodec::Fit(const ts::Series& train,
                               const SaxOptions& options) {
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit SAX codec on empty series");
  }
  if (options.segment_length < 1) {
    return Status::InvalidArgument("segment_length must be >= 1");
  }
  int max_alpha = options.symbols == SymbolKind::kDigital ? 10 : 26;
  if (options.alphabet_size < 2 || options.alphabet_size > max_alpha) {
    return Status::InvalidArgument(
        StrFormat("alphabet size %d out of range [2, %d] for this symbol "
                  "kind",
                  options.alphabet_size, max_alpha));
  }

  SaxCodec codec;
  codec.options_ = options;
  ts::Summary s = ts::Summarize(train.values());
  codec.mean_ = s.mean;
  codec.stddev_ = s.stddev > 1e-12 ? s.stddev : 1.0;
  MC_ASSIGN_OR_RETURN(codec.breakpoints_,
                      GaussianBreakpoints(options.alphabet_size));

  constexpr double kInf = std::numeric_limits<double>::infinity();
  codec.bin_means_.reserve(static_cast<size_t>(options.alphabet_size));
  for (int bin = 0; bin < options.alphabet_size; ++bin) {
    double lo = bin == 0 ? -kInf : codec.breakpoints_[bin - 1];
    double hi = bin == options.alphabet_size - 1 ? kInf
                                                 : codec.breakpoints_[bin];
    codec.bin_means_.push_back(TruncatedNormalMean(lo, hi));
  }
  return codec;
}

Result<std::string> SaxCodec::Encode(const std::vector<double>& values) const {
  if (values.empty()) return Status::InvalidArgument("encode of empty input");
  std::vector<double> znormed;
  znormed.reserve(values.size());
  for (double v : values) znormed.push_back((v - mean_) / stddev_);
  MC_ASSIGN_OR_RETURN(std::vector<double> segments,
                      Paa(znormed, options_.segment_length));
  std::string word;
  word.reserve(segments.size());
  for (double coeff : segments) {
    // First breakpoint strictly greater than the coefficient gives the bin.
    int bin = static_cast<int>(std::upper_bound(breakpoints_.begin(),
                                                breakpoints_.end(), coeff) -
                               breakpoints_.begin());
    MC_ASSIGN_OR_RETURN(char symbol, SymbolForBin(bin));
    word.push_back(symbol);
  }
  return word;
}

size_t SaxCodec::NumSegments(size_t num_values) const {
  size_t step = static_cast<size_t>(options_.segment_length);
  return (num_values + step - 1) / step;
}

Result<std::vector<double>> SaxCodec::Decode(const std::string& word,
                                             size_t out_length) const {
  std::vector<double> segments;
  segments.reserve(word.size());
  for (char symbol : word) {
    MC_ASSIGN_OR_RETURN(int bin, BinForSymbol(symbol));
    segments.push_back(bin_means_[static_cast<size_t>(bin)]);
  }
  MC_ASSIGN_OR_RETURN(
      std::vector<double> znormed,
      PaaInverse(segments, options_.segment_length, out_length));
  std::vector<double> out;
  out.reserve(znormed.size());
  for (double z : znormed) out.push_back(z * stddev_ + mean_);
  return out;
}

Result<char> SaxCodec::SymbolForBin(int index) const {
  if (index < 0 || index >= options_.alphabet_size) {
    return Status::OutOfRange(StrFormat("bin %d out of range", index));
  }
  char base = options_.symbols == SymbolKind::kDigital ? '0' : 'a';
  return static_cast<char>(base + index);
}

Result<int> SaxCodec::BinForSymbol(char symbol) const {
  char base = options_.symbols == SymbolKind::kDigital ? '0' : 'a';
  int bin = symbol - base;
  if (bin < 0 || bin >= options_.alphabet_size) {
    return Status::InvalidArgument(
        StrFormat("symbol '%c' outside SAX alphabet of size %d", symbol,
                  options_.alphabet_size));
  }
  return bin;
}

}  // namespace sax
}  // namespace multicast
