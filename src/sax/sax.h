// Symbolic Aggregate approXimation (Lin/Keogh; iSAX in Shieh & Keogh 2008).
//
// A series is z-normalized, PAA-compressed on the x-axis, and each PAA
// coefficient is discretized on the y-axis into one of `alphabet_size`
// equiprobable N(0,1) bins. MultiCast uses the resulting one-symbol-per-
// timestamp words as the LLM serialization, cutting tokens per timestamp
// from b+1 to 1 (Sec. III-B). Two symbol encodings are supported:
// alphabetical ('a','b',...) and digital ('0','1',...).

#ifndef MULTICAST_SAX_SAX_H_
#define MULTICAST_SAX_SAX_H_

#include <string>
#include <vector>

#include "ts/series.h"
#include "util/status.h"

namespace multicast {
namespace sax {

enum class SymbolKind {
  kAlphabetic,  ///< 'a'..'z'
  kDigital,     ///< '0'..'9' (alphabet size capped at 10)
};

struct SaxOptions {
  int segment_length = 6;  ///< points averaged per PAA segment (x-axis)
  int alphabet_size = 5;   ///< number of equiprobable bins (y-axis)
  SymbolKind symbols = SymbolKind::kAlphabetic;
};

/// Breakpoints beta_1..beta_{a-1} splitting N(0,1) into `alphabet_size`
/// equiprobable bins. Strictly increasing.
Result<std::vector<double>> GaussianBreakpoints(int alphabet_size);

/// Fitted SAX codec for one dimension.
///
/// Fit() learns the z-normalization from training data; Encode()/Decode()
/// then map between raw values and SAX symbol strings. Decoding
/// reconstructs each symbol as the truncated-normal mean of its bin and
/// expands PAA segments back to per-timestamp values, so
/// Decode(Encode(x)) approximates x with quantization error bounded by
/// the bin width and segment averaging.
class SaxCodec {
 public:
  /// Fits the codec's normalization on `train` and precomputes the
  /// breakpoint/reconstruction tables.
  static Result<SaxCodec> Fit(const ts::Series& train,
                              const SaxOptions& options);

  /// Encodes values into a symbol string, one char per PAA segment.
  Result<std::string> Encode(const std::vector<double>& values) const;

  /// Number of symbols Encode() emits for `num_values` input points.
  size_t NumSegments(size_t num_values) const;

  /// Decodes a symbol string into `out_length` per-timestamp values in
  /// the original units. Errors on symbols outside the alphabet.
  Result<std::vector<double>> Decode(const std::string& word,
                                     size_t out_length) const;

  /// Symbol for bin `index` (0-based), e.g. 0 -> 'a' or '0'.
  Result<char> SymbolForBin(int index) const;

  /// Bin index for `symbol`, or InvalidArgument.
  Result<int> BinForSymbol(char symbol) const;

  const SaxOptions& options() const { return options_; }
  const std::vector<double>& breakpoints() const { return breakpoints_; }

  /// Per-bin reconstruction values in z-space (truncated-normal means).
  const std::vector<double>& bin_means() const { return bin_means_; }

 private:
  SaxCodec() = default;

  SaxOptions options_;
  double mean_ = 0.0;
  double stddev_ = 1.0;
  std::vector<double> breakpoints_;
  std::vector<double> bin_means_;
};

}  // namespace sax
}  // namespace multicast

#endif  // MULTICAST_SAX_SAX_H_
