#include "sax/paa.h"

#include "util/strings.h"

namespace multicast {
namespace sax {

Result<std::vector<double>> Paa(const std::vector<double>& values,
                                int segment_length) {
  if (segment_length < 1) {
    return Status::InvalidArgument(
        StrFormat("segment_length must be >= 1, got %d", segment_length));
  }
  if (values.empty()) {
    return Status::InvalidArgument("PAA of empty series");
  }
  std::vector<double> out;
  size_t step = static_cast<size_t>(segment_length);
  out.reserve((values.size() + step - 1) / step);
  for (size_t begin = 0; begin < values.size(); begin += step) {
    size_t end = std::min(begin + step, values.size());
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += values[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

Result<std::vector<double>> PaaInverse(const std::vector<double>& segments,
                                       int segment_length,
                                       size_t original_length) {
  if (segment_length < 1) {
    return Status::InvalidArgument(
        StrFormat("segment_length must be >= 1, got %d", segment_length));
  }
  size_t step = static_cast<size_t>(segment_length);
  size_t needed = (original_length + step - 1) / step;
  if (segments.size() < needed) {
    return Status::InvalidArgument(
        StrFormat("%zu segments cannot cover length %zu at segment length %d",
                  segments.size(), original_length, segment_length));
  }
  std::vector<double> out;
  out.reserve(original_length);
  for (size_t i = 0; i < original_length; ++i) {
    out.push_back(segments[i / step]);
  }
  return out;
}

}  // namespace sax
}  // namespace multicast
