// Piecewise Aggregate Approximation (Keogh et al. 2001).

#ifndef MULTICAST_SAX_PAA_H_
#define MULTICAST_SAX_PAA_H_

#include <vector>

#include "util/status.h"

namespace multicast {
namespace sax {

/// Reduces `values` to one mean per block of `segment_length` consecutive
/// points (the paper's "SAX segment length" is this block size — larger
/// blocks mean stronger x-axis compression). A final partial block is
/// averaged over its actual size.
Result<std::vector<double>> Paa(const std::vector<double>& values,
                                int segment_length);

/// Inverse of Paa: repeats each segment mean `segment_length` times and
/// truncates to `original_length`. This is the canonical step-wise
/// reconstruction; information lost by averaging is not recoverable.
Result<std::vector<double>> PaaInverse(const std::vector<double>& segments,
                                       int segment_length,
                                       size_t original_length);

}  // namespace sax
}  // namespace multicast

#endif  // MULTICAST_SAX_PAA_H_
