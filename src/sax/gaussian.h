// Standard normal distribution helpers used by SAX breakpoint tables.

#ifndef MULTICAST_SAX_GAUSSIAN_H_
#define MULTICAST_SAX_GAUSSIAN_H_

namespace multicast {
namespace sax {

/// Standard normal probability density.
double NormalPdf(double x);

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation with one
/// Halley refinement step; |error| < 1e-12 on (0, 1)). p must be in
/// (0, 1); p <= 0 or >= 1 returns -/+ infinity.
double NormalQuantile(double p);

/// Expected value of a standard normal truncated to (lo, hi):
/// (pdf(lo) - pdf(hi)) / (cdf(hi) - cdf(lo)). Handles infinite bounds.
/// Used to reconstruct a representative value for each SAX symbol bin.
double TruncatedNormalMean(double lo, double hi);

}  // namespace sax
}  // namespace multicast

#endif  // MULTICAST_SAX_GAUSSIAN_H_
