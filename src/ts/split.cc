#include "ts/split.h"

#include <cmath>

#include "util/strings.h"

namespace multicast {
namespace ts {

Result<Split> SplitHorizon(const Frame& frame, size_t horizon) {
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (frame.length() < horizon + 2) {
    return Status::InvalidArgument(
        StrFormat("frame of length %zu too short for horizon %zu",
                  frame.length(), horizon));
  }
  size_t cut = frame.length() - horizon;
  Split split;
  MC_ASSIGN_OR_RETURN(split.train, frame.Slice(0, cut));
  MC_ASSIGN_OR_RETURN(split.test, frame.Slice(cut, frame.length()));
  return split;
}

Result<Split> SplitFraction(const Frame& frame, double train_fraction) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  size_t cut = static_cast<size_t>(
      std::lround(train_fraction * static_cast<double>(frame.length())));
  if (cut >= frame.length()) cut = frame.length() - 1;
  if (cut < 2) cut = 2;
  return SplitHorizon(frame, frame.length() - cut);
}

}  // namespace ts
}  // namespace multicast
