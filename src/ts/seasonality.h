// Automatic seasonality detection via the autocorrelation function.

#ifndef MULTICAST_TS_SEASONALITY_H_
#define MULTICAST_TS_SEASONALITY_H_

#include <cstddef>
#include <vector>

#include "ts/series.h"
#include "util/status.h"

namespace multicast {
namespace ts {

struct SeasonalityOptions {
  /// Smallest candidate period.
  size_t min_period = 2;
  /// Largest candidate period (0 = length / 3).
  size_t max_period = 0;
  /// Minimum ACF value at the period for it to count as seasonal.
  double min_acf = 0.3;
};

/// Detected dominant period of a series.
struct Seasonality {
  /// 0 when no significant period was found.
  size_t period = 0;
  /// ACF value at the detected period.
  double strength = 0.0;
};

/// Scans lags in [min_period, max_period] for the strongest local ACF
/// peak (detrended by first differencing so slow trends do not read as
/// giant periods). Deterministic; errors on series shorter than
/// 3 * min_period.
Result<Seasonality> DetectSeasonality(const Series& series,
                                      const SeasonalityOptions& options = {});

}  // namespace ts
}  // namespace multicast

#endif  // MULTICAST_TS_SEASONALITY_H_
