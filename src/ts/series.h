// Univariate time series container.

#ifndef MULTICAST_TS_SERIES_H_
#define MULTICAST_TS_SERIES_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace multicast {
namespace ts {

/// A named, equally spaced sequence of real values. The container is the
/// unit every transform (scaling, SAX, metrics) operates on; timestamps
/// are implicit indices, matching the paper's setting of regularly sampled
/// data.
class Series {
 public:
  Series() = default;
  explicit Series(std::vector<double> values, std::string name = "")
      : values_(std::move(values)), name_(std::move(name)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void push_back(double v) { values_.push_back(v); }

  /// Sub-series [begin, end). Returns an error when the range is invalid.
  Result<Series> Slice(size_t begin, size_t end) const;

  /// First `n` values (clamped to size).
  Series Head(size_t n) const;

  /// Last `n` values (clamped to size).
  Series Tail(size_t n) const;

 private:
  std::vector<double> values_;
  std::string name_;
};

}  // namespace ts
}  // namespace multicast

#endif  // MULTICAST_TS_SERIES_H_
