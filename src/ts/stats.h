// Summary statistics over series.

#ifndef MULTICAST_TS_STATS_H_
#define MULTICAST_TS_STATS_H_

#include <cstddef>
#include <vector>

namespace multicast {
namespace ts {

/// Moments and extrema of a value sequence, computed in one pass.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Computes the Summary of `values`. Empty input yields count == 0 with
/// zeroed fields.
Summary Summarize(const std::vector<double>& values);

/// Arithmetic mean (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population variance (0 for fewer than 2 values).
double Variance(const std::vector<double>& values);

/// Pearson correlation of two equal-length sequences; 0 when degenerate
/// (mismatched lengths, < 2 points, or zero variance).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Lag-k autocorrelation; 0 when k >= size or variance is 0.
double Autocorrelation(const std::vector<double>& values, size_t lag);

/// `q`-th quantile (0 <= q <= 1) by linear interpolation on the sorted
/// copy; 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Median (quantile 0.5).
double Median(std::vector<double> values);

}  // namespace ts
}  // namespace multicast

#endif  // MULTICAST_TS_STATS_H_
