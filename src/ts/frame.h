// Multivariate time series container.

#ifndef MULTICAST_TS_FRAME_H_
#define MULTICAST_TS_FRAME_H_

#include <string>
#include <vector>

#include "ts/series.h"
#include "util/csv.h"
#include "util/status.h"

namespace multicast {
namespace ts {

/// A d-dimensional time series: d equal-length `Series` sharing an
/// implicit time axis. This is the object MultiCast multiplexes; each
/// dimension corresponds to one physical variable (e.g. HUFL, HULL, OT).
class Frame {
 public:
  Frame() = default;

  /// Builds a frame from dimensions; all must share one length.
  static Result<Frame> FromSeries(std::vector<Series> dims,
                                  std::string name = "");

  /// Builds a frame from a parsed CSV (one column per dimension).
  static Result<Frame> FromCsv(const CsvTable& table, std::string name = "");

  size_t num_dims() const { return dims_.size(); }
  size_t length() const { return dims_.empty() ? 0 : dims_[0].size(); }

  const Series& dim(size_t d) const { return dims_[d]; }
  Series& dim(size_t d) { return dims_[d]; }

  const std::vector<Series>& dims() const { return dims_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Value of dimension d at timestamp t.
  double at(size_t d, size_t t) const { return dims_[d][t]; }

  /// All d values at timestamp t, in dimension order.
  std::vector<double> Row(size_t t) const;

  /// Sub-frame over timestamps [begin, end).
  Result<Frame> Slice(size_t begin, size_t end) const;

  /// First / last n timestamps (clamped).
  Frame Head(size_t n) const;
  Frame Tail(size_t n) const;

  /// Index of the dimension named `name`, or NotFound.
  Result<size_t> DimIndex(const std::string& name) const;

  /// Converts to a CSV table (column per dimension).
  CsvTable ToCsv() const;

 private:
  std::vector<Series> dims_;
  std::string name_;
};

}  // namespace ts
}  // namespace multicast

#endif  // MULTICAST_TS_FRAME_H_
