#include "ts/frame.h"

#include "util/strings.h"

namespace multicast {
namespace ts {

Result<Frame> Frame::FromSeries(std::vector<Series> dims, std::string name) {
  if (dims.empty()) {
    return Status::InvalidArgument("frame requires at least one dimension");
  }
  size_t len = dims[0].size();
  for (size_t d = 1; d < dims.size(); ++d) {
    if (dims[d].size() != len) {
      return Status::InvalidArgument(
          StrFormat("dimension %zu has length %zu, expected %zu", d,
                    dims[d].size(), len));
    }
  }
  Frame f;
  f.dims_ = std::move(dims);
  f.name_ = std::move(name);
  return f;
}

Result<Frame> Frame::FromCsv(const CsvTable& table, std::string name) {
  std::vector<Series> dims;
  dims.reserve(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    dims.emplace_back(table.columns[c], table.column_names[c]);
  }
  return FromSeries(std::move(dims), std::move(name));
}

std::vector<double> Frame::Row(size_t t) const {
  std::vector<double> row;
  row.reserve(dims_.size());
  for (const auto& d : dims_) row.push_back(d[t]);
  return row;
}

Result<Frame> Frame::Slice(size_t begin, size_t end) const {
  std::vector<Series> sliced;
  sliced.reserve(dims_.size());
  for (const auto& d : dims_) {
    MC_ASSIGN_OR_RETURN(Series s, d.Slice(begin, end));
    sliced.push_back(std::move(s));
  }
  Frame f;
  f.dims_ = std::move(sliced);
  f.name_ = name_;
  return f;
}

Frame Frame::Head(size_t n) const {
  Frame f;
  for (const auto& d : dims_) f.dims_.push_back(d.Head(n));
  f.name_ = name_;
  return f;
}

Frame Frame::Tail(size_t n) const {
  Frame f;
  for (const auto& d : dims_) f.dims_.push_back(d.Tail(n));
  f.name_ = name_;
  return f;
}

Result<size_t> Frame::DimIndex(const std::string& name) const {
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d].name() == name) return d;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

CsvTable Frame::ToCsv() const {
  CsvTable table;
  for (size_t d = 0; d < dims_.size(); ++d) {
    table.column_names.push_back(
        dims_[d].name().empty() ? StrFormat("c%zu", d) : dims_[d].name());
    table.columns.push_back(dims_[d].values());
  }
  return table;
}

}  // namespace ts
}  // namespace multicast
