#include "ts/stats.h"

#include <algorithm>
#include <cmath>

#include "util/quantile.h"

namespace multicast {
namespace ts {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : values) {
    double d = v - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(s.count));
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double ss = 0.0;
  for (double v : values) {
    double d = v - m;
    ss += d * d;
  }
  return ss / static_cast<double>(values.size());
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double xa = a[i] - ma;
    double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double Autocorrelation(const std::vector<double>& values, size_t lag) {
  if (lag >= values.size()) return 0.0;
  double m = Mean(values);
  double denom = 0.0;
  for (double v : values) {
    double d = v - m;
    denom += d * d;
  }
  if (denom <= 0.0) return 0.0;
  double num = 0.0;
  for (size_t i = lag; i < values.size(); ++i) {
    num += (values[i] - m) * (values[i - lag] - m);
  }
  return num / denom;
}

double Quantile(std::vector<double> values, double q) {
  // Linear interpolation between order statistics — intentionally a
  // different estimator than the serving layer's nearest-rank quantile;
  // both now live in util/quantile.h as the single implementation.
  std::sort(values.begin(), values.end());
  return util::InterpolatedQuantileSorted(values, q);
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

}  // namespace ts
}  // namespace multicast
