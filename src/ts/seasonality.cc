#include "ts/seasonality.h"

#include "ts/stats.h"
#include "util/strings.h"

namespace multicast {
namespace ts {

Result<Seasonality> DetectSeasonality(const Series& series,
                                      const SeasonalityOptions& options) {
  if (options.min_period < 2) {
    return Status::InvalidArgument("min_period must be >= 2");
  }
  size_t max_period = options.max_period != 0 ? options.max_period
                                              : series.size() / 3;
  if (series.size() < 3 * options.min_period || max_period <
      options.min_period) {
    return Status::InvalidArgument(
        StrFormat("series of length %zu too short for period search",
                  series.size()));
  }

  // Remove the least-squares linear trend; a trend otherwise inflates
  // the ACF at every large lag. (Linear detrending preserves the
  // periodic component's signal-to-noise ratio, unlike differencing,
  // which attenuates long periods.)
  const std::vector<double>& values = series.values();
  const double n = static_cast<double>(values.size());
  double t_mean = (n - 1.0) / 2.0;
  double y_mean = Mean(values);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    double dt = static_cast<double>(i) - t_mean;
    num += dt * (values[i] - y_mean);
    den += dt * dt;
  }
  double slope = den > 0.0 ? num / den : 0.0;
  std::vector<double> diffed(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    diffed[i] = values[i] - y_mean -
                slope * (static_cast<double>(i) - t_mean);
  }

  Seasonality best;
  for (size_t lag = options.min_period; lag <= max_period; ++lag) {
    if (lag + 2 >= diffed.size()) break;
    double acf = Autocorrelation(diffed, lag);
    // Require a local peak: stronger than its immediate neighbors, so
    // a slowly decaying ACF tail does not win.
    double left = Autocorrelation(diffed, lag - 1);
    double right = Autocorrelation(diffed, lag + 1);
    if (acf >= options.min_acf && acf >= left && acf >= right &&
        acf > best.strength) {
      best.period = lag;
      best.strength = acf;
    }
  }
  return best;
}

}  // namespace ts
}  // namespace multicast
