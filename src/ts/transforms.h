// Reversible series transforms: z-normalization and differencing.

#ifndef MULTICAST_TS_TRANSFORMS_H_
#define MULTICAST_TS_TRANSFORMS_H_

#include <vector>

#include "ts/series.h"
#include "util/status.h"

namespace multicast {
namespace ts {

/// Parameters of a z-normalization, retained so forecasts made in
/// normalized space can be mapped back.
struct ZNormParams {
  double mean = 0.0;
  double stddev = 1.0;
};

/// Z-normalizes `s` ((x - mean) / stddev). A constant series gets
/// stddev 1 so the transform stays invertible.
Series ZNormalize(const Series& s, ZNormParams* params);

/// Inverse of ZNormalize.
Series ZDenormalize(const Series& s, const ZNormParams& params);

/// First-order differencing d times (ARIMA's "I" component). Each pass
/// shortens the series by one. Errors when the series is too short.
Result<std::vector<double>> Difference(const std::vector<double>& values,
                                       int d);

/// Inverts `Difference`: integrates `diffed` back to the original scale.
/// `heads[k]` is the first value of the series after k differencing passes
/// (heads.size() == d), as captured during the forward transform.
Result<std::vector<double>> Undifference(const std::vector<double>& diffed,
                                         const std::vector<double>& heads);

/// Captures the per-pass head values needed by `Undifference` and returns
/// the d-times differenced series.
Result<std::vector<double>> DifferenceWithHeads(
    const std::vector<double>& values, int d, std::vector<double>* heads);

/// Seasonal differencing: D passes of y_t = x_t - x_{t-period}. Each
/// pass shortens the series by `period` and appends that pass's first
/// `period` values to `heads` (so heads->size() grows by D * period).
Result<std::vector<double>> SeasonalDifferenceWithHeads(
    const std::vector<double>& values, size_t period, int D,
    std::vector<double>* heads);

/// Inverts `SeasonalDifferenceWithHeads`. `heads` must hold exactly
/// D * period values in the order the forward pass wrote them.
Result<std::vector<double>> SeasonalUndifference(
    const std::vector<double>& diffed, size_t period,
    const std::vector<double>& heads);

}  // namespace ts
}  // namespace multicast

#endif  // MULTICAST_TS_TRANSFORMS_H_
