#include "ts/series.h"

#include <algorithm>

#include "util/strings.h"

namespace multicast {
namespace ts {

Result<Series> Series::Slice(size_t begin, size_t end) const {
  if (begin > end || end > values_.size()) {
    return Status::OutOfRange(
        StrFormat("slice [%zu, %zu) of series of length %zu", begin, end,
                  values_.size()));
  }
  return Series(
      std::vector<double>(values_.begin() + begin, values_.begin() + end),
      name_);
}

Series Series::Head(size_t n) const {
  n = std::min(n, values_.size());
  return Series(std::vector<double>(values_.begin(), values_.begin() + n),
                name_);
}

Series Series::Tail(size_t n) const {
  n = std::min(n, values_.size());
  return Series(std::vector<double>(values_.end() - n, values_.end()), name_);
}

}  // namespace ts
}  // namespace multicast
