// Train/test splitting for forecasting evaluation.

#ifndef MULTICAST_TS_SPLIT_H_
#define MULTICAST_TS_SPLIT_H_

#include "ts/frame.h"
#include "util/status.h"

namespace multicast {
namespace ts {

/// History/horizon pair produced by a temporal split: the model sees
/// `train`, forecasts `test.length()` steps, and is scored against `test`.
struct Split {
  Frame train;
  Frame test;
};

/// Splits the last `horizon` timestamps off as the test set. The horizon
/// must be >= 1 and leave at least 2 training points.
Result<Split> SplitHorizon(const Frame& frame, size_t horizon);

/// Splits at `train_fraction` of the length (e.g. 0.8 -> last 20% is the
/// test horizon).
Result<Split> SplitFraction(const Frame& frame, double train_fraction);

}  // namespace ts
}  // namespace multicast

#endif  // MULTICAST_TS_SPLIT_H_
