#include "ts/transforms.h"

#include <cmath>

#include "ts/stats.h"
#include "util/strings.h"

namespace multicast {
namespace ts {

Series ZNormalize(const Series& s, ZNormParams* params) {
  Summary sum = Summarize(s.values());
  ZNormParams p;
  p.mean = sum.mean;
  p.stddev = sum.stddev > 1e-12 ? sum.stddev : 1.0;
  std::vector<double> out;
  out.reserve(s.size());
  for (double v : s.values()) out.push_back((v - p.mean) / p.stddev);
  if (params != nullptr) *params = p;
  return Series(std::move(out), s.name());
}

Series ZDenormalize(const Series& s, const ZNormParams& params) {
  std::vector<double> out;
  out.reserve(s.size());
  for (double v : s.values()) out.push_back(v * params.stddev + params.mean);
  return Series(std::move(out), s.name());
}

Result<std::vector<double>> Difference(const std::vector<double>& values,
                                       int d) {
  std::vector<double> heads;
  return DifferenceWithHeads(values, d, &heads);
}

Result<std::vector<double>> DifferenceWithHeads(
    const std::vector<double>& values, int d, std::vector<double>* heads) {
  if (d < 0) return Status::InvalidArgument("negative differencing order");
  if (values.size() <= static_cast<size_t>(d)) {
    return Status::InvalidArgument(
        StrFormat("cannot difference %zu values %d times", values.size(), d));
  }
  heads->clear();
  std::vector<double> cur = values;
  for (int k = 0; k < d; ++k) {
    heads->push_back(cur[0]);
    std::vector<double> next;
    next.reserve(cur.size() - 1);
    for (size_t i = 1; i < cur.size(); ++i) next.push_back(cur[i] - cur[i - 1]);
    cur = std::move(next);
  }
  return cur;
}

Result<std::vector<double>> SeasonalDifferenceWithHeads(
    const std::vector<double>& values, size_t period, int D,
    std::vector<double>* heads) {
  if (period == 0) return Status::InvalidArgument("period must be >= 1");
  if (D < 0) return Status::InvalidArgument("negative seasonal order");
  if (values.size() <= period * static_cast<size_t>(D)) {
    return Status::InvalidArgument(
        StrFormat("cannot seasonally difference %zu values %d times at "
                  "period %zu",
                  values.size(), D, period));
  }
  std::vector<double> cur = values;
  for (int k = 0; k < D; ++k) {
    heads->insert(heads->end(), cur.begin(),
                  cur.begin() + static_cast<long>(period));
    std::vector<double> next;
    next.reserve(cur.size() - period);
    for (size_t i = period; i < cur.size(); ++i) {
      next.push_back(cur[i] - cur[i - period]);
    }
    cur = std::move(next);
  }
  return cur;
}

Result<std::vector<double>> SeasonalUndifference(
    const std::vector<double>& diffed, size_t period,
    const std::vector<double>& heads) {
  if (period == 0) return Status::InvalidArgument("period must be >= 1");
  if (heads.size() % period != 0) {
    return Status::InvalidArgument(
        StrFormat("heads size %zu is not a multiple of period %zu",
                  heads.size(), period));
  }
  std::vector<double> cur = diffed;
  size_t passes = heads.size() / period;
  for (size_t pass = passes; pass-- > 0;) {
    std::vector<double> next(heads.begin() + static_cast<long>(pass * period),
                             heads.begin() +
                                 static_cast<long>((pass + 1) * period));
    next.reserve(period + cur.size());
    for (size_t i = 0; i < cur.size(); ++i) {
      next.push_back(cur[i] + next[i]);
    }
    cur = std::move(next);
  }
  return cur;
}

Result<std::vector<double>> Undifference(const std::vector<double>& diffed,
                                         const std::vector<double>& heads) {
  std::vector<double> cur = diffed;
  // Integrate in reverse order of the differencing passes.
  for (auto it = heads.rbegin(); it != heads.rend(); ++it) {
    std::vector<double> next;
    next.reserve(cur.size() + 1);
    next.push_back(*it);
    for (double v : cur) next.push_back(next.back() + v);
    cur = std::move(next);
  }
  return cur;
}

}  // namespace ts
}  // namespace multicast
