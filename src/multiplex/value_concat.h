// Value-concatenation (VC) multiplexer — Eq. (3) of the paper.

#ifndef MULTICAST_MULTIPLEX_VALUE_CONCAT_H_
#define MULTICAST_MULTIPLEX_VALUE_CONCAT_H_

#include "multiplex/multiplexer.h"

namespace multicast {
namespace multiplex {

/// Emits every dimension's value as its own comma-separated field
/// (d1=17, d2=23 -> "17,23"), so the stream looks like a univariate
/// LLMTime stream whose values cycle through the dimensions. The paper
/// expects the explicit separators to make the model's internal
/// demultiplexing easiest of the three schemes.
class ValueConcatMultiplexer final : public Multiplexer {
 public:
  MuxKind kind() const override { return MuxKind::kValueConcat; }

  Result<std::string> Multiplex(const MuxInput& input,
                                const std::vector<int>& widths) const override;

  Result<MuxInput> Demultiplex(const std::string& text,
                               const std::vector<int>& widths,
                               bool allow_partial) const override;

  size_t TokensPerTimestamp(const std::vector<int>& widths) const override;

  bool IsSeparatorPosition(size_t pos,
                           const std::vector<int>& widths) const override;

  int DimensionAtPosition(size_t pos,
                          const std::vector<int>& widths) const override;
};

}  // namespace multiplex
}  // namespace multicast

#endif  // MULTICAST_MULTIPLEX_VALUE_CONCAT_H_
