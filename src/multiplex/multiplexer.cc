#include "multiplex/multiplexer.h"

#include <cctype>

#include "multiplex/digit_interleave.h"
#include "multiplex/value_concat.h"
#include "multiplex/value_interleave.h"
#include "util/strings.h"

namespace multicast {
namespace multiplex {

const char* MuxKindName(MuxKind kind) {
  switch (kind) {
    case MuxKind::kDigitInterleave:
      return "DI";
    case MuxKind::kValueInterleave:
      return "VI";
    case MuxKind::kValueConcat:
      return "VC";
  }
  return "?";
}

Result<MuxKind> ParseMuxKind(const std::string& name) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "DI") return MuxKind::kDigitInterleave;
  if (upper == "VI") return MuxKind::kValueInterleave;
  if (upper == "VC") return MuxKind::kValueConcat;
  return Status::InvalidArgument("unknown multiplexer '" + name +
                                 "' (expected DI, VI or VC)");
}

Status Multiplexer::ValidateInput(const MuxInput& input,
                                  const std::vector<int>& widths) {
  if (input.values.empty()) {
    return Status::InvalidArgument("multiplex input has no dimensions");
  }
  if (widths.size() != input.values.size()) {
    return Status::InvalidArgument(
        StrFormat("widths has %zu entries for %zu dimensions", widths.size(),
                  input.values.size()));
  }
  size_t len = input.values[0].size();
  if (len == 0) {
    return Status::InvalidArgument("multiplex input has no timestamps");
  }
  for (size_t d = 0; d < input.values.size(); ++d) {
    if (widths[d] < 1) {
      return Status::InvalidArgument(
          StrFormat("width of dimension %zu must be >= 1", d));
    }
    if (input.values[d].size() != len) {
      return Status::InvalidArgument(
          StrFormat("dimension %zu has %zu timestamps, expected %zu", d,
                    input.values[d].size(), len));
    }
    for (size_t t = 0; t < len; ++t) {
      const std::string& s = input.values[d][t];
      if (static_cast<int>(s.size()) != widths[d]) {
        return Status::InvalidArgument(
            StrFormat("value at dim %zu time %zu has width %zu, expected %d",
                      d, t, s.size(), widths[d]));
      }
      if (!IsMuxSymbols(s)) {
        return Status::InvalidArgument(
            StrFormat("value at dim %zu time %zu is not alphanumeric: '%s'",
                      d, t, s.c_str()));
      }
    }
  }
  return Status::OK();
}

bool IsMuxSymbols(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::unique_ptr<Multiplexer> CreateMultiplexer(MuxKind kind) {
  switch (kind) {
    case MuxKind::kDigitInterleave:
      return std::make_unique<DigitInterleaveMultiplexer>();
    case MuxKind::kValueInterleave:
      return std::make_unique<ValueInterleaveMultiplexer>();
    case MuxKind::kValueConcat:
      return std::make_unique<ValueConcatMultiplexer>();
  }
  return nullptr;
}

}  // namespace multiplex
}  // namespace multicast
