// Value-interleaving (VI) multiplexer — Eq. (2) of the paper.

#ifndef MULTICAST_MULTIPLEX_VALUE_INTERLEAVE_H_
#define MULTICAST_MULTIPLEX_VALUE_INTERLEAVE_H_

#include "multiplex/multiplexer.h"

namespace multicast {
namespace multiplex {

/// Abuts the whole rescaled values of all dimensions within each
/// timestamp (d1=17, d2=23 -> "1723"). The paper motivates VI for
/// differently scaled dimensions: the model can tell dimensions apart by
/// their distinct value ranges and "internally demultiplex" the stream.
/// Dimensions may use different digit widths, but each width is fixed,
/// which keeps demultiplexing exact.
class ValueInterleaveMultiplexer final : public Multiplexer {
 public:
  MuxKind kind() const override { return MuxKind::kValueInterleave; }

  Result<std::string> Multiplex(const MuxInput& input,
                                const std::vector<int>& widths) const override;

  Result<MuxInput> Demultiplex(const std::string& text,
                               const std::vector<int>& widths,
                               bool allow_partial) const override;

  size_t TokensPerTimestamp(const std::vector<int>& widths) const override;

  bool IsSeparatorPosition(size_t pos,
                           const std::vector<int>& widths) const override;

  int DimensionAtPosition(size_t pos,
                          const std::vector<int>& widths) const override;
};

}  // namespace multiplex
}  // namespace multicast

#endif  // MULTICAST_MULTIPLEX_VALUE_INTERLEAVE_H_
