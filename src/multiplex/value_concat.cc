#include "multiplex/value_concat.h"

#include "util/strings.h"

namespace multicast {
namespace multiplex {

Result<std::string> ValueConcatMultiplexer::Multiplex(
    const MuxInput& input, const std::vector<int>& widths) const {
  MC_RETURN_IF_ERROR(ValidateInput(input, widths));
  const size_t dims = input.num_dims();
  const size_t n = input.num_timestamps();

  std::string out;
  out.reserve(n * TokensPerTimestamp(widths));
  for (size_t t = 0; t < n; ++t) {
    for (size_t d = 0; d < dims; ++d) {
      if (t > 0 || d > 0) out.push_back(',');
      out.append(input.values[d][t]);
    }
  }
  return out;
}

Result<MuxInput> ValueConcatMultiplexer::Demultiplex(
    const std::string& text, const std::vector<int>& widths,
    bool allow_partial) const {
  if (widths.empty()) return Status::InvalidArgument("widths is empty");
  const size_t dims = widths.size();

  std::vector<std::string> fields = Split(text, ',');
  // Only whole timestamps (groups of `dims` fields) are decodable; a
  // trailing partial group is dropped when allow_partial is set.
  size_t whole = fields.size() / dims;
  size_t leftover = fields.size() % dims;
  if (leftover != 0 && !allow_partial) {
    return Status::InvalidArgument(
        StrFormat("%zu fields do not form whole timestamps of %zu dimensions",
                  fields.size(), dims));
  }

  MuxInput out;
  out.values.resize(dims);
  for (size_t t = 0; t < whole; ++t) {
    // Validate the whole group before committing any dimension so a bad
    // group never leaves ragged outputs.
    bool group_ok = true;
    for (size_t d = 0; d < dims; ++d) {
      const std::string& field = fields[t * dims + d];
      if (static_cast<int>(field.size()) != widths[d] ||
          !IsMuxSymbols(field)) {
        group_ok = false;
        break;
      }
    }
    if (!group_ok) {
      bool is_last = t + 1 == whole && leftover == 0;
      if (allow_partial && is_last) break;
      return Status::InvalidArgument(
          StrFormat("timestamp %zu has malformed fields", t));
    }
    for (size_t d = 0; d < dims; ++d) {
      out.values[d].push_back(fields[t * dims + d]);
    }
  }
  if (out.num_timestamps() == 0) {
    return Status::InvalidArgument("no complete timestamp in VC stream");
  }
  return out;
}

size_t ValueConcatMultiplexer::TokensPerTimestamp(
    const std::vector<int>& widths) const {
  size_t total = 0;
  for (int w : widths) total += static_cast<size_t>(w);
  return total + widths.size();  // every value is followed by a comma
}

bool ValueConcatMultiplexer::IsSeparatorPosition(
    size_t pos, const std::vector<int>& widths) const {
  // Cycle layout: w0 digits, comma, w1 digits, comma, ...
  size_t cursor = 0;
  for (int w : widths) {
    cursor += static_cast<size_t>(w);
    if (pos < cursor) return false;
    if (pos == cursor) return true;
    ++cursor;  // the comma after this value
  }
  return false;
}

int ValueConcatMultiplexer::DimensionAtPosition(
    size_t pos, const std::vector<int>& widths) const {
  size_t cursor = 0;
  for (size_t d = 0; d < widths.size(); ++d) {
    cursor += static_cast<size_t>(widths[d]);
    if (pos < cursor) return static_cast<int>(d);
    if (pos == cursor) return -1;  // the comma after this value
    ++cursor;
  }
  return -1;
}

}  // namespace multiplex
}  // namespace multicast
