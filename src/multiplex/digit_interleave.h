// Digit-interleaving (DI) multiplexer — Eq. (1) of the paper.

#ifndef MULTICAST_MULTIPLEX_DIGIT_INTERLEAVE_H_
#define MULTICAST_MULTIPLEX_DIGIT_INTERLEAVE_H_

#include "multiplex/multiplexer.h"

namespace multicast {
namespace multiplex {

/// Interleaves the digits of all dimensions within each timestamp: the
/// most significant digit of every dimension first, then the second
/// digit of every dimension, and so on (d1=17, d2=23 -> "1273"). Because
/// the high-order digits of all dimensions lead the timestamp, a model
/// decoding token-by-token can fix the scale of every dimension before
/// emitting low-order digits — the property the paper argues helps on
/// similarly scaled (e.g. z-normalized) data. Requires every dimension
/// to share one digit width.
class DigitInterleaveMultiplexer final : public Multiplexer {
 public:
  MuxKind kind() const override { return MuxKind::kDigitInterleave; }

  Result<std::string> Multiplex(const MuxInput& input,
                                const std::vector<int>& widths) const override;

  Result<MuxInput> Demultiplex(const std::string& text,
                               const std::vector<int>& widths,
                               bool allow_partial) const override;

  size_t TokensPerTimestamp(const std::vector<int>& widths) const override;

  bool IsSeparatorPosition(size_t pos,
                           const std::vector<int>& widths) const override;

  int DimensionAtPosition(size_t pos,
                          const std::vector<int>& widths) const override;
};

}  // namespace multiplex
}  // namespace multicast

#endif  // MULTICAST_MULTIPLEX_DIGIT_INTERLEAVE_H_
