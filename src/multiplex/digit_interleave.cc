#include "multiplex/digit_interleave.h"

#include "util/strings.h"

namespace multicast {
namespace multiplex {

namespace {

// DI is only defined when every dimension uses the same digit width.
Status ValidateUniformWidths(const std::vector<int>& widths) {
  for (size_t d = 1; d < widths.size(); ++d) {
    if (widths[d] != widths[0]) {
      return Status::InvalidArgument(
          StrFormat("digit-interleaving requires a uniform digit width; "
                    "dimension %zu has width %d vs %d",
                    d, widths[d], widths[0]));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> DigitInterleaveMultiplexer::Multiplex(
    const MuxInput& input, const std::vector<int>& widths) const {
  MC_RETURN_IF_ERROR(ValidateInput(input, widths));
  MC_RETURN_IF_ERROR(ValidateUniformWidths(widths));
  const size_t dims = input.num_dims();
  const size_t n = input.num_timestamps();
  const size_t b = static_cast<size_t>(widths[0]);

  std::string out;
  out.reserve(n * (dims * b + 1));
  for (size_t t = 0; t < n; ++t) {
    if (t > 0) out.push_back(',');
    for (size_t j = 0; j < b; ++j) {
      for (size_t d = 0; d < dims; ++d) {
        out.push_back(input.values[d][t][j]);
      }
    }
  }
  return out;
}

Result<MuxInput> DigitInterleaveMultiplexer::Demultiplex(
    const std::string& text, const std::vector<int>& widths,
    bool allow_partial) const {
  if (widths.empty()) return Status::InvalidArgument("widths is empty");
  MC_RETURN_IF_ERROR(ValidateUniformWidths(widths));
  const size_t dims = widths.size();
  const size_t b = static_cast<size_t>(widths[0]);
  const size_t field_len = dims * b;

  MuxInput out;
  out.values.resize(dims);
  std::vector<std::string> fields = Split(text, ',');
  for (size_t f = 0; f < fields.size(); ++f) {
    const std::string& field = fields[f];
    bool bad = field.size() != field_len || !IsMuxSymbols(field);
    if (bad) {
      bool is_last = f + 1 == fields.size();
      if (allow_partial && is_last) break;
      return Status::InvalidArgument(
          StrFormat("timestamp %zu field '%s' is not %zu digits", f,
                    field.c_str(), field_len));
    }
    for (size_t d = 0; d < dims; ++d) {
      std::string value(b, '0');
      for (size_t j = 0; j < b; ++j) value[j] = field[j * dims + d];
      out.values[d].push_back(std::move(value));
    }
  }
  if (out.num_timestamps() == 0) {
    return Status::InvalidArgument("no complete timestamp in DI stream");
  }
  return out;
}

size_t DigitInterleaveMultiplexer::TokensPerTimestamp(
    const std::vector<int>& widths) const {
  size_t total = 0;
  for (int w : widths) total += static_cast<size_t>(w);
  return total + 1;  // digits + separator comma
}

bool DigitInterleaveMultiplexer::IsSeparatorPosition(
    size_t pos, const std::vector<int>& widths) const {
  return pos + 1 == TokensPerTimestamp(widths);
}

int DigitInterleaveMultiplexer::DimensionAtPosition(
    size_t pos, const std::vector<int>& widths) const {
  if (IsSeparatorPosition(pos, widths)) return -1;
  // Digits cycle through the dimensions: position j*d + k holds digit
  // j+1 of dimension k.
  return static_cast<int>(pos % widths.size());
}

}  // namespace multiplex
}  // namespace multicast
