// Dimensional multiplexing (Sec. III-A): the paper's core contribution.
//
// A d-dimensional series, after per-dimension rescaling to fixed-width
// digit strings, is flattened into the single comma-separated token
// stream an LLM consumes. Three schemes are provided:
//
//   DI (digit-interleaving)  d1=17 d2=23 -> "1273"   (digits interleaved)
//   VI (value-interleaving)  d1=17 d2=23 -> "1723"   (values abutted)
//   VC (value-concatenation) d1=17 d2=23 -> "17,23"  (values as fields)
//
// Timestamps are separated by commas in every scheme. Each multiplexer
// also exposes the *position grammar* of its stream — which positions in
// a timestamp cycle must hold digits vs. the comma — which the forecaster
// uses to constrain LLM decoding exactly as LLMTime restricts output to
// [0-9,]. Demultiplexing is exact: Demultiplex(Multiplex(x)) == x.

#ifndef MULTICAST_MULTIPLEX_MULTIPLEXER_H_
#define MULTICAST_MULTIPLEX_MULTIPLEXER_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace multicast {
namespace multiplex {

/// The three multiplexing schemes of the paper.
enum class MuxKind { kDigitInterleave, kValueInterleave, kValueConcat };

/// Short paper name of a scheme: "DI", "VI", "VC".
const char* MuxKindName(MuxKind kind);

/// Parses "DI"/"VI"/"VC" (case-insensitive).
Result<MuxKind> ParseMuxKind(const std::string& name);

/// Per-dimension fixed-width symbol strings: values[d][t] is the
/// serialized value of dimension d at timestamp t — b digit characters
/// in raw mode, one SAX symbol under quantization. All dimensions share
/// one length; the width of dimension d's strings must be constant
/// (widths[d]). Symbols must be alphanumeric (the comma is reserved as
/// the stream separator).
struct MuxInput {
  std::vector<std::vector<std::string>> values;

  size_t num_dims() const { return values.size(); }
  size_t num_timestamps() const {
    return values.empty() ? 0 : values[0].size();
  }
};

/// Flattens/unflattens multivariate digit strings to/from one token
/// stream. Implementations are stateless and thread-safe.
class Multiplexer {
 public:
  virtual ~Multiplexer() = default;

  virtual MuxKind kind() const = 0;
  std::string name() const { return MuxKindName(kind()); }

  /// Serializes `input` to the 1-D text stream. `widths[d]` must match
  /// every values[d][t].size(). The stream has NO trailing comma.
  virtual Result<std::string> Multiplex(const MuxInput& input,
                                        const std::vector<int>& widths)
      const = 0;

  /// Exact inverse of Multiplex. When `allow_partial` is true, a
  /// truncated final timestamp (as produced by a token-budgeted LLM) is
  /// dropped instead of being an error.
  virtual Result<MuxInput> Demultiplex(const std::string& text,
                                       const std::vector<int>& widths,
                                       bool allow_partial) const = 0;

  /// Tokens one timestamp occupies in the stream, including the
  /// separator comma(s) that follow its digits. Drives the token ledger
  /// and the generation budget for an h-step forecast.
  virtual size_t TokensPerTimestamp(const std::vector<int>& widths) const = 0;

  /// True when position `pos` (0-based, within one timestamp cycle) must
  /// hold the comma separator rather than a digit. Defines the decoding
  /// grammar used to mask LLM sampling.
  virtual bool IsSeparatorPosition(size_t pos,
                                   const std::vector<int>& widths) const = 0;

  /// Which dimension the symbol at cycle position `pos` serializes, or
  /// -1 at separator positions. Used by the anomaly extension to
  /// attribute per-token surprisal to dimensions.
  virtual int DimensionAtPosition(size_t pos,
                                  const std::vector<int>& widths) const = 0;

 protected:
  /// Shared validation: consistent dimensions, lengths and widths.
  static Status ValidateInput(const MuxInput& input,
                              const std::vector<int>& widths);
};

/// True when `s` is a valid multiplexed value string: non-empty and all
/// alphanumeric (commas and whitespace are structural, never payload).
bool IsMuxSymbols(std::string_view s);

/// Instantiates the multiplexer for `kind`.
std::unique_ptr<Multiplexer> CreateMultiplexer(MuxKind kind);

}  // namespace multiplex
}  // namespace multicast

#endif  // MULTICAST_MULTIPLEX_MULTIPLEXER_H_
