#include "multiplex/value_interleave.h"

#include <numeric>

#include "util/strings.h"

namespace multicast {
namespace multiplex {

Result<std::string> ValueInterleaveMultiplexer::Multiplex(
    const MuxInput& input, const std::vector<int>& widths) const {
  MC_RETURN_IF_ERROR(ValidateInput(input, widths));
  const size_t dims = input.num_dims();
  const size_t n = input.num_timestamps();

  std::string out;
  out.reserve(n * TokensPerTimestamp(widths));
  for (size_t t = 0; t < n; ++t) {
    if (t > 0) out.push_back(',');
    for (size_t d = 0; d < dims; ++d) {
      out.append(input.values[d][t]);
    }
  }
  return out;
}

Result<MuxInput> ValueInterleaveMultiplexer::Demultiplex(
    const std::string& text, const std::vector<int>& widths,
    bool allow_partial) const {
  if (widths.empty()) return Status::InvalidArgument("widths is empty");
  size_t field_len = 0;
  for (int w : widths) {
    if (w < 1) return Status::InvalidArgument("widths must be >= 1");
    field_len += static_cast<size_t>(w);
  }

  MuxInput out;
  out.values.resize(widths.size());
  std::vector<std::string> fields = Split(text, ',');
  for (size_t f = 0; f < fields.size(); ++f) {
    const std::string& field = fields[f];
    bool bad = field.size() != field_len || !IsMuxSymbols(field);
    if (bad) {
      bool is_last = f + 1 == fields.size();
      if (allow_partial && is_last) break;
      return Status::InvalidArgument(
          StrFormat("timestamp %zu field '%s' is not %zu digits", f,
                    field.c_str(), field_len));
    }
    size_t offset = 0;
    for (size_t d = 0; d < widths.size(); ++d) {
      out.values[d].push_back(
          field.substr(offset, static_cast<size_t>(widths[d])));
      offset += static_cast<size_t>(widths[d]);
    }
  }
  if (out.num_timestamps() == 0) {
    return Status::InvalidArgument("no complete timestamp in VI stream");
  }
  return out;
}

size_t ValueInterleaveMultiplexer::TokensPerTimestamp(
    const std::vector<int>& widths) const {
  size_t total = 0;
  for (int w : widths) total += static_cast<size_t>(w);
  return total + 1;
}

bool ValueInterleaveMultiplexer::IsSeparatorPosition(
    size_t pos, const std::vector<int>& widths) const {
  return pos + 1 == TokensPerTimestamp(widths);
}

int ValueInterleaveMultiplexer::DimensionAtPosition(
    size_t pos, const std::vector<int>& widths) const {
  if (IsSeparatorPosition(pos, widths)) return -1;
  // Whole values are abutted: the first widths[0] digits belong to
  // dimension 0, the next widths[1] to dimension 1, and so on.
  size_t cursor = 0;
  for (size_t d = 0; d < widths.size(); ++d) {
    cursor += static_cast<size_t>(widths[d]);
    if (pos < cursor) return static_cast<int>(d);
  }
  return -1;
}

}  // namespace multiplex
}  // namespace multicast
