#include "metrics/metrics.h"

#include <cmath>

#include "util/strings.h"

namespace multicast {
namespace metrics {

namespace {

Status Validate(const std::vector<double>& actual,
                const std::vector<double>& predicted) {
  if (actual.empty()) return Status::InvalidArgument("empty inputs");
  if (actual.size() != predicted.size()) {
    return Status::InvalidArgument(
        StrFormat("size mismatch: %zu actual vs %zu predicted",
                  actual.size(), predicted.size()));
  }
  return Status::OK();
}

}  // namespace

Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& predicted) {
  MC_RETURN_IF_ERROR(Validate(actual, predicted));
  double ss = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double d = actual[i] - predicted[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(actual.size()));
}

Result<double> Mae(const std::vector<double>& actual,
                   const std::vector<double>& predicted) {
  MC_RETURN_IF_ERROR(Validate(actual, predicted));
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    sum += std::fabs(actual[i] - predicted[i]);
  }
  return sum / static_cast<double>(actual.size());
}

Result<double> Mape(const std::vector<double>& actual,
                    const std::vector<double>& predicted, double eps) {
  MC_RETURN_IF_ERROR(Validate(actual, predicted));
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (std::fabs(actual[i]) < eps) continue;
    sum += std::fabs((actual[i] - predicted[i]) / actual[i]);
    ++used;
  }
  if (used == 0) {
    return Status::InvalidArgument("all actual values below epsilon");
  }
  return 100.0 * sum / static_cast<double>(used);
}

Result<double> Smape(const std::vector<double>& actual,
                     const std::vector<double>& predicted, double eps) {
  MC_RETURN_IF_ERROR(Validate(actual, predicted));
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double denom = (std::fabs(actual[i]) + std::fabs(predicted[i])) / 2.0;
    if (denom < eps) continue;
    sum += std::fabs(actual[i] - predicted[i]) / denom;
    ++used;
  }
  if (used == 0) {
    return Status::InvalidArgument("all magnitudes below epsilon");
  }
  return 100.0 * sum / static_cast<double>(used);
}

}  // namespace metrics
}  // namespace multicast
