// Forecast accuracy metrics (RMSE is the paper's headline metric).

#ifndef MULTICAST_METRICS_METRICS_H_
#define MULTICAST_METRICS_METRICS_H_

#include <vector>

#include "util/status.h"

namespace multicast {
namespace metrics {

/// Root mean squared error: sqrt(sum (y - yhat)^2 / n). Errors on empty
/// or mismatched inputs.
Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& predicted);

/// Mean absolute error.
Result<double> Mae(const std::vector<double>& actual,
                   const std::vector<double>& predicted);

/// Mean absolute percentage error (%). Timestamps with |actual| < eps
/// are skipped; errors when every timestamp is skipped.
Result<double> Mape(const std::vector<double>& actual,
                    const std::vector<double>& predicted,
                    double eps = 1e-8);

/// Symmetric MAPE (%), the 0..200 variant.
Result<double> Smape(const std::vector<double>& actual,
                     const std::vector<double>& predicted,
                     double eps = 1e-8);

}  // namespace metrics
}  // namespace multicast

#endif  // MULTICAST_METRICS_METRICS_H_
