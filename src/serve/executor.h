// Deterministic virtual-time executor for forecast serving.
//
// One simulated worker drains an AdmissionQueue of ForecastRequests:
//
//   arrivals ──▶ AdmissionQueue ──▶ worker ──▶ primary pipeline
//                 (bounded,           │          │ RequestContext
//                  shed on full,      │          ▼ {clock, deadline,
//                  drop expired       │        hedge after delay      cancel}
//                  at dequeue)        │          (first success
//                                     │           cancels the loser)
//                                     ▼
//                               per-request ServeStats
//
// Every request runs under a RequestContext carrying the request's
// absolute deadline and a CancelToken on a branch VirtualClock, so the
// pipeline itself stops issuing LLM calls the moment the request dies.
// Concurrency (the hedge racing the primary) is simulated sequentially
// on branch clocks and reconciled by virtual finish times, which keeps
// every run bit-reproducible: the same trace, seeds and options give
// the same shed counts, latencies and ledgers on every machine.

#ifndef MULTICAST_SERVE_EXECUTOR_H_
#define MULTICAST_SERVE_EXECUTOR_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_scheduler.h"
#include "forecast/forecaster.h"
#include "lm/paged_store.h"
#include "lm/prefix_cache.h"
#include "serve/overload.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "util/metrics.h"

namespace multicast {
namespace serve {

/// Builds the pipeline serving one request. Called per request (and per
/// hedge attempt), which is what lets callers decorrelate seeds per
/// request id and lets tests interpose instrumented backends.
using ForecasterFactory =
    std::function<std::unique_ptr<forecast::Forecaster>(
        const ForecastRequest&)>;

/// Hedged requests: when the primary has not finished `delay_seconds`
/// after its start (or failed outright), a backup pipeline is launched
/// and the first success wins; the loser is cancelled at the winner's
/// finish time via its CancelToken.
struct HedgePolicy {
  bool enabled = false;
  double delay_seconds = 0.5;
};

/// Batched service mode: instead of one simulated worker running each
/// request to completion before touching the next, up to `size` requests
/// are in service at once, each on its own branch clock from the moment
/// a slot frees — the serving-level face of continuous batching. The
/// caller wires the shared batch::BatchScheduler into its forecaster
/// factories (as it does the prefix cache), so all in-flight requests'
/// sample draws decode through one scheduler; the executor simulates the
/// slot lifecycle and *observes* the scheduler for per-request
/// BatchStats. Each request's forecast stays bit-identical to the
/// sequential path — batching changes when requests start, never what
/// they compute. Does not compose with hedging (Run rejects the combo).
struct BatchServePolicy {
  bool enabled = false;
  /// Concurrent in-service requests (also the decode batch bound the
  /// caller should configure the scheduler with).
  size_t size = 8;
  /// true: a freed slot is refilled from the queue immediately
  /// (continuous batching); false: slots refill only when every
  /// in-flight request finished (gang / run-to-completion batches).
  bool backfill = true;
  /// The scheduler shared by the served pipelines, when the caller
  /// wired one into its factories. Observed only — stats are
  /// snapshotted around each request, like the prefix cache. May be
  /// null (no batch accounting); may also be set with `enabled` false
  /// to account per-request decode batching under the sequential loop.
  std::shared_ptr<batch::BatchScheduler> scheduler;
};

/// What happens to work still waiting when the server drains.
enum class DrainMode {
  kFinishQueued,  ///< stop admitting, serve out everything queued
  kCancelQueued,  ///< stop admitting, cancel queued AND in-flight work
};

struct ServeOptions {
  QueuePolicy queue;
  HedgePolicy hedge;
  /// Virtual time at which the server begins draining: admission closes
  /// and `drain_mode` decides the fate of waiting work (+inf = never).
  double drain_at_seconds = std::numeric_limits<double>::infinity();
  DrainMode drain_mode = DrainMode::kFinishQueued;
  /// The prefix cache shared by the served pipelines, when the caller
  /// wired one into its forecaster factories (see lm/prefix_cache.h).
  /// The executor only *observes* it — snapshotting stats around each
  /// request so ServeStats carries that request's cache activity. Null
  /// disables the accounting; serving behaviour is identical either way.
  std::shared_ptr<lm::PrefixCache> prefix_cache;
  /// Batched service mode + scheduler observation (see BatchServePolicy).
  BatchServePolicy batch;
  /// Overload-aware degradation: the brownout ladder and/or the AIMD
  /// admission limiter (see serve/overload.h). Both off by default, so
  /// existing runs are untouched. Factories see the assigned rung in
  /// ForecastRequest::tier and must build the matching pipeline.
  OverloadPolicy overload;
  /// The paged-memory pool shared by the served pipelines, when the
  /// caller wired one into its forecaster factories (see
  /// lm/paged_store.h). When set and `overload.memory_probe` is unset,
  /// the executor probes the pool's fullness as the ladder's memory
  /// observable — a pool nearing its block cap degrades service before
  /// allocation spills. The executor never publishes the pool's
  /// lm.mem.* metrics itself (the pool outlives individual runs; the
  /// caller publishes once per registry).
  std::shared_ptr<lm::BlockPool> block_pool;
  /// Unified metrics registry (not owned; may be null). When set, the
  /// executor publishes its queue and overload counters here after each
  /// Run under the "queue." / "overload." prefixes, and callers
  /// typically hand the same registry to Summarize() for the "serve."
  /// rollup — one registry, one export path (see util/metrics.h). Null
  /// falls back to an executor-private registry; the accessor views
  /// below are populated from a snapshot either way.
  util::MetricsRegistry* metrics = nullptr;
};

enum class RequestOutcome {
  kServed,          ///< full-quality forecast within deadline
  kServedDegraded,  ///< served, but degraded (fewer samples / fallback)
  kShedQueueFull,   ///< rejected at admission: queue at capacity
  kShedExpired,     ///< dropped at dequeue: deadline passed waiting
  kCancelledDrain,  ///< rejected or cancelled because the server drained
  kFailed,          ///< ran but produced no servable forecast
};

const char* OutcomeName(RequestOutcome outcome);

/// Cluster-layer accounting for one request: which replica served it
/// and what its failovers cost. Filled by cluster::ClusterExecutor;
/// the single-node ServeExecutor leaves it defaulted (replica -1).
struct ClusterStats {
  /// Replica that produced the final outcome; -1 when the request
  /// never reached one (or the run was not clustered).
  int replica = -1;
  /// In-flight replica deaths this request survived (each one aborted
  /// a running pipeline attempt).
  size_t failovers = 0;
  /// Sample draws whose work was re-dispatched to a surviving replica
  /// after a mid-service crash.
  size_t redispatched_draws = 0;
  /// Virtual service seconds burnt on attempts that died with their
  /// replica (or lost a hedge race) — the price of failover, kept out
  /// of the ledger so served results stay bit-identical to a
  /// fault-free run.
  double wasted_seconds = 0.0;

  ClusterStats& operator+=(const ClusterStats& other) {
    failovers += other.failovers;
    redispatched_draws += other.redispatched_draws;
    wasted_seconds += other.wasted_seconds;
    return *this;
  }
};

/// Registry view of ClusterStats: counters under `prefix` (for example
/// "cluster.failovers"). The per-request `replica` field is routing
/// state, not a counter — views leave it defaulted (-1).
void PublishClusterStats(const ClusterStats& stats,
                         util::MetricsRegistry* registry,
                         const std::string& prefix);
ClusterStats ClusterStatsFromSnapshot(const util::MetricsSnapshot& snapshot,
                                      const std::string& prefix);

/// Terminal-status breakdown of every request that was not served:
/// *why* the serving layer said no, not just how often. Keyed on the
/// final Status code, so queue shedding, deadline losses (queued or
/// in-service), dead backends/fleets and drain cancellations stay
/// distinguishable in one summary.
struct RejectionBreakdown {
  size_t queue_full = 0;           ///< kResourceExhausted at admission
  size_t deadline_expired = 0;     ///< kDeadlineExceeded (queue or service)
  size_t backend_unavailable = 0;  ///< kUnavailable (backend / fleet down)
  size_t cancelled = 0;            ///< kCancelled (drain, hedge loser)
  size_t other = 0;                ///< any other terminal status
  /// Mean retry-after hint attached to the queue_full rejections that
  /// carried one (0 when none did) — what a well-behaved client was
  /// told to back off by, on average. Derived: retry_after_hint_sum /
  /// retry_after_hints, kept recomputed by the merge operators.
  double mean_retry_after_seconds = 0.0;
  /// Sum and count of the positive retry-after hints behind the mean —
  /// stored so two breakdowns merge into the exact combined mean
  /// instead of a mean-of-means.
  double retry_after_hint_sum = 0.0;
  size_t retry_after_hints = 0;

  size_t total() const {
    return queue_full + deadline_expired + backend_unavailable +
           cancelled + other;
  }

  /// Merge: counters and hint sums add; the mean is recomputed.
  RejectionBreakdown& operator+=(const RejectionBreakdown& other);
  /// Saturating per-counter delta (`after - before`); the mean is
  /// recomputed from the delta's own hint sum/count.
  RejectionBreakdown operator-(const RejectionBreakdown& before) const;
};

/// Registry view of RejectionBreakdown: counters under `prefix` (for
/// example "rejections.queue_full").
void PublishRejectionBreakdown(const RejectionBreakdown& breakdown,
                               util::MetricsRegistry* registry,
                               const std::string& prefix);
RejectionBreakdown RejectionBreakdownFromSnapshot(
    const util::MetricsSnapshot& snapshot, const std::string& prefix);

/// Everything the serving layer knows about one request's fate.
struct ServeStats {
  size_t id = 0;
  RequestOutcome outcome = RequestOutcome::kFailed;
  /// OK for served outcomes; the shedding/failing status otherwise.
  Status status;
  /// The request's SLO class, copied through for per-class rollups.
  SloClass slo = SloClass::kStandard;
  /// Quality tier the request actually got: the ladder rung it was
  /// served at (kClassical also when a fallback chain demoted it to the
  /// classical engine), kShed for every non-served outcome.
  ServiceTier tier = ServiceTier::kShed;
  /// Back-off hint attached to a queue-full rejection (0 otherwise):
  /// the admission queue's drain-rate estimate of when a slot frees.
  double retry_after_seconds = 0.0;
  double arrival_seconds = 0.0;
  /// Virtual times; zero when the request never reached a worker.
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  /// Arrival-to-finish, the client-observed number (served only).
  double latency_seconds = 0.0;
  /// Pipelines launched for this request (1, or 2 when hedged).
  int attempts = 0;
  bool hedge_fired = false;
  bool hedge_won = false;
  bool degraded = false;
  /// Accounting summed over this request's successful pipeline runs.
  lm::RetryStats retry;
  lm::TokenLedger ledger;
  /// Prefix-cache activity attributed to this request (delta of the
  /// shared cache's counters across its service; empty without a cache
  /// in ServeOptions).
  lm::PrefixCacheStats prefix_cache;
  /// Batch-scheduler activity attributed to this request (delta of the
  /// shared scheduler's counters; empty without a scheduler in
  /// ServeOptions).
  batch::BatchStats batch;
  /// Cluster routing/failover accounting (defaulted outside cluster
  /// runs; see ClusterStats).
  ClusterStats cluster;
  /// The served forecast (null unless served) — benches score RMSE of
  /// what clients actually received, shed requests included by absence.
  std::shared_ptr<const forecast::ForecastResult> result;
};

/// Fleet-level rollup of one executor run.
struct ServeSummary {
  size_t total = 0;
  size_t served = 0;
  size_t served_degraded = 0;
  size_t shed_queue_full = 0;
  size_t shed_expired = 0;
  size_t cancelled_drain = 0;
  size_t failed = 0;
  size_t hedges_fired = 0;
  size_t hedge_wins = 0;
  /// Per-tier outcome counters: what quality each request actually got
  /// (tier_shed counts every non-served outcome; the four sum to
  /// `total`).
  size_t tier_llm_full = 0;
  size_t tier_llm_reduced = 0;
  size_t tier_classical = 0;
  size_t tier_shed = 0;
  /// Latency quantiles over served requests (0 when none served).
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double mean_queue_wait_seconds = 0.0;
  /// End-to-end latency split over served requests: time spent waiting
  /// for a worker slot (queue wait) vs time in service (start to
  /// finish). Queue wait is where batching/hedging/shedding policies
  /// show up; service time is the pipeline's own cost — comparing the
  /// two tells which one a config actually moved.
  double p50_queue_wait_seconds = 0.0;
  double p95_queue_wait_seconds = 0.0;
  double p99_queue_wait_seconds = 0.0;
  double p50_service_seconds = 0.0;
  double p95_service_seconds = 0.0;
  double p99_service_seconds = 0.0;
  lm::RetryStats retry;
  lm::TokenLedger ledger;
  lm::PrefixCacheStats prefix_cache;
  batch::BatchStats batch;
  /// Why the non-served requests were rejected, by terminal status.
  RejectionBreakdown rejections;
  /// Cluster rollup: failover totals plus served counts per replica
  /// (`served_per_replica[r]` — empty outside cluster runs).
  ClusterStats cluster;
  std::vector<size_t> served_per_replica;
  /// Requests whose *final* outcome (served or not) was produced on
  /// replica r. served_per_replica only counts successes, so a request
  /// that reached a replica and then failed or overran its deadline
  /// used to vanish from per-replica counts while still appearing in
  /// cluster occupancy; this view keeps the two consistent —
  /// finished_per_replica[r] >= served_per_replica[r] element-wise.
  std::vector<size_t> finished_per_replica;

  size_t shed() const { return shed_queue_full + shed_expired; }
};

ServeSummary Summarize(const std::vector<ServeStats>& stats);

/// Summarize through a caller-owned registry: every rollup counter is
/// accumulated under the "serve." prefix in `registry` (null falls back
/// to a Summarize-private registry) and the returned ServeSummary is
/// populated *from the resulting snapshot* — the summary struct is a
/// thin view, and --metrics-json exports exactly what it was built
/// from. Accumulation order is request order, so double-valued sums are
/// bit-identical to the historical struct-merge loop.
ServeSummary Summarize(const std::vector<ServeStats>& stats,
                       util::MetricsRegistry* registry);

/// See file comment.
class ServeExecutor {
 public:
  /// `primary` builds the pipeline of record; `hedge` (may be null,
  /// disabling hedging) builds the cheaper backup raced after the hedge
  /// delay.
  ServeExecutor(ForecasterFactory primary, ForecasterFactory hedge,
                const ServeOptions& options);

  /// Replays `requests` (sorted by arrival internally) through
  /// admission, queueing and service; returns one ServeStats per
  /// request, in request-id order.
  Result<std::vector<ServeStats>> Run(std::vector<ForecastRequest> requests);

  /// Queue counters of the most recent Run().
  const QueueStats& queue_stats() const { return queue_stats_; }
  /// Ladder/limiter counters of the most recent Run() (all zero when
  /// ServeOptions::overload is disabled).
  const OverloadStats& overload_stats() const { return overload_stats_; }
  /// Virtual time at which the most recent Run() went idle.
  double end_seconds() const { return end_seconds_; }

 private:
  ServeStats ServeOne(const ForecastRequest& request, double start);
  /// ServeOne plus prefix-cache / batch-scheduler stat attribution.
  ServeStats ServeInstrumented(const ForecastRequest& request, double start);
  /// The batched service loop (options_.batch.enabled); `requests` are
  /// already validated and sorted by arrival.
  Result<std::vector<ServeStats>> RunBatched(
      std::vector<ForecastRequest> requests);
  /// Publishes one finished run's queue/overload counters into the
  /// metrics registry (options_.metrics or the private fallback) and
  /// refreshes the snapshot-backed accessor views.
  void PublishRunMetrics(const AdmissionQueue& queue,
                         const OverloadController& overload);
  /// options_.overload with the memory probe defaulted from
  /// options_.block_pool when the caller set a pool but no probe.
  OverloadPolicy EffectiveOverloadPolicy() const;

  ForecasterFactory primary_;
  ForecasterFactory hedge_;
  ServeOptions options_;
  /// Fallback registry when options_.metrics is null, created lazily so
  /// the accessor views are always snapshot-backed.
  std::unique_ptr<util::MetricsRegistry> own_metrics_;
  QueueStats queue_stats_;
  OverloadStats overload_stats_;
  double end_seconds_ = 0.0;
};

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_EXECUTOR_H_
