#include "serve/executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/strings.h"
#include "util/virtual_time.h"

namespace multicast {
namespace serve {

namespace {

/// Nearest-rank quantile of an already-sorted latency list.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

Deadline RequestDeadline(const ForecastRequest& request) {
  return std::isfinite(request.deadline_seconds)
             ? Deadline::At(request.deadline_seconds)
             : Deadline::Never();
}

}  // namespace

const char* OutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed:
      return "served";
    case RequestOutcome::kServedDegraded:
      return "served-degraded";
    case RequestOutcome::kShedQueueFull:
      return "shed-queue-full";
    case RequestOutcome::kShedExpired:
      return "shed-expired";
    case RequestOutcome::kCancelledDrain:
      return "cancelled-drain";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

ServeSummary Summarize(const std::vector<ServeStats>& stats) {
  ServeSummary s;
  s.total = stats.size();
  std::vector<double> latencies;
  std::vector<double> queue_waits;
  std::vector<double> service_times;
  double queue_wait = 0.0;
  size_t started = 0;
  double retry_after_sum = 0.0;
  size_t retry_after_count = 0;
  for (const ServeStats& st : stats) {
    switch (st.outcome) {
      case RequestOutcome::kServed:
        ++s.served;
        break;
      case RequestOutcome::kServedDegraded:
        ++s.served_degraded;
        break;
      case RequestOutcome::kShedQueueFull:
        ++s.shed_queue_full;
        break;
      case RequestOutcome::kShedExpired:
        ++s.shed_expired;
        break;
      case RequestOutcome::kCancelledDrain:
        ++s.cancelled_drain;
        break;
      case RequestOutcome::kFailed:
        ++s.failed;
        break;
    }
    if (st.hedge_fired) ++s.hedges_fired;
    if (st.hedge_won) ++s.hedge_wins;
    switch (st.tier) {
      case ServiceTier::kLlmFull:
        ++s.tier_llm_full;
        break;
      case ServiceTier::kLlmReduced:
        ++s.tier_llm_reduced;
        break;
      case ServiceTier::kClassical:
        ++s.tier_classical;
        break;
      case ServiceTier::kShed:
        ++s.tier_shed;
        break;
    }
    if (st.outcome == RequestOutcome::kServed ||
        st.outcome == RequestOutcome::kServedDegraded) {
      latencies.push_back(st.latency_seconds);
      // The end-to-end split: latency = queue wait + service time.
      queue_waits.push_back(st.queue_wait_seconds);
      service_times.push_back(st.finish_seconds - st.start_seconds);
    }
    if (st.attempts > 0) {
      queue_wait += st.queue_wait_seconds;
      ++started;
    }
    if (st.outcome != RequestOutcome::kServed &&
        st.outcome != RequestOutcome::kServedDegraded) {
      // Rejection-reason breakdown keyed on the terminal status code.
      switch (st.status.code()) {
        case StatusCode::kResourceExhausted:
          ++s.rejections.queue_full;
          if (st.retry_after_seconds > 0.0) {
            retry_after_sum += st.retry_after_seconds;
            ++retry_after_count;
          }
          break;
        case StatusCode::kDeadlineExceeded:
          ++s.rejections.deadline_expired;
          break;
        case StatusCode::kUnavailable:
          ++s.rejections.backend_unavailable;
          break;
        case StatusCode::kCancelled:
          ++s.rejections.cancelled;
          break;
        default:
          ++s.rejections.other;
          break;
      }
    } else if (st.cluster.replica >= 0) {
      size_t r = static_cast<size_t>(st.cluster.replica);
      if (s.served_per_replica.size() <= r) {
        s.served_per_replica.resize(r + 1, 0);
      }
      ++s.served_per_replica[r];
    }
    s.retry += st.retry;
    s.ledger += st.ledger;
    s.prefix_cache += st.prefix_cache;
    s.batch += st.batch;
    s.cluster += st.cluster;
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(queue_waits.begin(), queue_waits.end());
  std::sort(service_times.begin(), service_times.end());
  s.p50_latency_seconds = SortedQuantile(latencies, 0.50);
  s.p99_latency_seconds = SortedQuantile(latencies, 0.99);
  s.p50_queue_wait_seconds = SortedQuantile(queue_waits, 0.50);
  s.p95_queue_wait_seconds = SortedQuantile(queue_waits, 0.95);
  s.p99_queue_wait_seconds = SortedQuantile(queue_waits, 0.99);
  s.p50_service_seconds = SortedQuantile(service_times, 0.50);
  s.p95_service_seconds = SortedQuantile(service_times, 0.95);
  s.p99_service_seconds = SortedQuantile(service_times, 0.99);
  s.mean_queue_wait_seconds =
      started > 0 ? queue_wait / static_cast<double>(started) : 0.0;
  s.rejections.mean_retry_after_seconds =
      retry_after_count > 0
          ? retry_after_sum / static_cast<double>(retry_after_count)
          : 0.0;
  return s;
}

ServeExecutor::ServeExecutor(ForecasterFactory primary,
                             ForecasterFactory hedge,
                             const ServeOptions& options)
    : primary_(std::move(primary)),
      hedge_(std::move(hedge)),
      options_(options) {
  MC_CHECK(primary_ != nullptr);
}

ServeStats ServeExecutor::ServeOne(const ForecastRequest& request,
                                   double start) {
  ServeStats st;
  st.id = request.id;
  st.arrival_seconds = request.arrival_seconds;
  st.slo = request.slo;
  st.start_seconds = start;
  st.queue_wait_seconds = start - request.arrival_seconds;
  const Deadline deadline = RequestDeadline(request);
  const bool cancel_on_drain =
      options_.drain_mode == DrainMode::kCancelQueued &&
      std::isfinite(options_.drain_at_seconds);

  // Primary branch: its clock starts where the worker picked the
  // request up and is advanced by every cost the pipeline models.
  VirtualClock primary_clock;
  primary_clock.AdvanceTo(start);
  RequestContext primary_ctx;
  primary_ctx.clock = &primary_clock;
  primary_ctx.deadline = deadline;
  if (cancel_on_drain) {
    primary_ctx.cancel.CancelAtTime(&primary_clock,
                                    options_.drain_at_seconds,
                                    "server draining");
  }
  Result<forecast::ForecastResult> primary_result =
      primary_(request)->Forecast(*request.history, request.horizon,
                                  primary_ctx);
  double primary_finish = primary_clock.now();
  st.attempts = 1;

  // Hedge decision: fire when the primary was still running at
  // start + delay, or failed outright (fail-fast hedging launches the
  // backup at the failure instant instead of waiting out the delay).
  bool fire = options_.hedge.enabled && hedge_ != nullptr;
  double hedge_start = start + options_.hedge.delay_seconds;
  if (fire && primary_result.ok() && primary_finish <= hedge_start) {
    fire = false;  // primary fast enough; hedge never launches
  }
  if (fire && !primary_result.ok() && primary_finish < hedge_start) {
    hedge_start = primary_finish;
  }
  if (fire && deadline.ExpiredAt(hedge_start)) fire = false;
  if (fire && cancel_on_drain &&
      hedge_start >= options_.drain_at_seconds) {
    fire = false;
  }

  Result<forecast::ForecastResult> hedge_result =
      Status::Unavailable("hedge not fired");
  double hedge_finish = 0.0;
  if (fire) {
    st.hedge_fired = true;
    st.attempts = 2;
    VirtualClock hedge_clock;
    hedge_clock.AdvanceTo(hedge_start);
    RequestContext hedge_ctx;
    hedge_ctx.clock = &hedge_clock;
    hedge_ctx.deadline = deadline;
    // First success cancels the loser: a hedge still running when the
    // primary finished successfully is cancelled at that instant.
    double cancel_at = std::numeric_limits<double>::infinity();
    std::string cancel_reason;
    if (primary_result.ok()) {
      cancel_at = primary_finish;
      cancel_reason = "hedge lost: primary finished first";
    }
    if (cancel_on_drain && options_.drain_at_seconds < cancel_at) {
      cancel_at = options_.drain_at_seconds;
      cancel_reason = "server draining";
    }
    if (std::isfinite(cancel_at)) {
      hedge_ctx.cancel.CancelAtTime(&hedge_clock, cancel_at,
                                    std::move(cancel_reason));
    }
    hedge_result = hedge_(request)->Forecast(*request.history,
                                             request.horizon, hedge_ctx);
    hedge_finish = hedge_clock.now();
  }

  // Reconcile the race by virtual finish time: earliest success wins.
  const bool primary_ok = primary_result.ok();
  const bool hedge_ok = fire && hedge_result.ok();
  bool won = false;
  bool winner_is_primary = false;
  double finish = primary_finish;
  if (primary_ok && (!hedge_ok || primary_finish <= hedge_finish)) {
    won = true;
    winner_is_primary = true;
  } else if (hedge_ok) {
    won = true;
    finish = hedge_finish;
    st.hedge_won = true;
  } else if (fire) {
    // Both failed: the request's fate is only known once the later
    // branch gave up.
    finish = std::max(primary_finish, hedge_finish);
  }

  if (st.hedge_won && primary_ok) {
    // The primary "succeeded" only because the sequential simulation
    // ran it to completion; in the race it was cancelled the moment the
    // hedge won. Replay it with that cancellation — identical seeds
    // reproduce its behaviour up to the cancel point — so the accounting
    // charges what a concurrent server would actually have spent.
    VirtualClock replay_clock;
    replay_clock.AdvanceTo(start);
    RequestContext replay_ctx;
    replay_ctx.clock = &replay_clock;
    replay_ctx.deadline = deadline;
    replay_ctx.cancel.CancelAtTime(&replay_clock, hedge_finish,
                                   "primary lost: hedge finished first");
    primary_result = primary_(request)->Forecast(*request.history,
                                                 request.horizon,
                                                 replay_ctx);
  }

  // Charge accounting from whichever branch runs actually "happened".
  if (primary_result.ok()) {
    st.retry += primary_result.value().retry_stats;
    st.ledger += primary_result.value().ledger;
  }
  if (fire && hedge_result.ok()) {
    st.retry += hedge_result.value().retry_stats;
    st.ledger += hedge_result.value().ledger;
  }

  st.finish_seconds = finish;
  if (won && !deadline.ExpiredAt(finish)) {
    st.result = std::make_shared<forecast::ForecastResult>(
        winner_is_primary ? std::move(primary_result).value()
                          : std::move(hedge_result).value());
    st.degraded = st.result->degraded;
    st.outcome = st.degraded ? RequestOutcome::kServedDegraded
                             : RequestOutcome::kServed;
    // What quality the client actually got: the classical engine tags
    // its results (also when a fallback chain or hedge demoted to it);
    // otherwise the rung the ladder dispatched the request at.
    st.tier = st.result->tier == forecast::ForecastTier::kClassical
                  ? ServiceTier::kClassical
                  : request.tier;
    st.status = Status::OK();
    st.latency_seconds = finish - request.arrival_seconds;
    return st;
  }

  Status failure;
  if (won) {
    // A pipeline without virtual-time metering (retries disabled) can
    // overrun: the answer exists but arrived after the client gave up.
    failure = Status::DeadlineExceeded(StrFormat(
        "request %zu finished at %.3fs, past its deadline %.3fs",
        request.id, finish, request.deadline_seconds));
  } else if (fire && !primary_result.ok() && !hedge_result.ok()) {
    failure = Status(primary_result.status().code(),
                     StrFormat("primary: %s; hedge: %s",
                               primary_result.status().ToString().c_str(),
                               hedge_result.status().ToString().c_str()));
  } else {
    failure = primary_result.status();
  }
  st.status = failure;
  st.outcome = failure.code() == StatusCode::kCancelled
                   ? RequestOutcome::kCancelledDrain
                   : RequestOutcome::kFailed;
  return st;
}

ServeStats ServeExecutor::ServeInstrumented(const ForecastRequest& request,
                                            double start) {
  // Attribute shared-subsystem activity to this request by snapshotting
  // counters around its service. Pipelines run one at a time even in
  // batched mode (the slot lifecycle is simulated in virtual time), so
  // the deltas are exact.
  lm::PrefixCacheStats cache_before;
  if (options_.prefix_cache != nullptr) {
    cache_before = options_.prefix_cache->stats();
  }
  batch::BatchStats batch_before;
  if (options_.batch.scheduler != nullptr) {
    batch_before = options_.batch.scheduler->stats();
  }
  ServeStats st = ServeOne(request, start);
  if (options_.prefix_cache != nullptr) {
    st.prefix_cache = options_.prefix_cache->stats() - cache_before;
  }
  if (options_.batch.scheduler != nullptr) {
    st.batch = options_.batch.scheduler->stats() - batch_before;
  }
  return st;
}

Result<std::vector<ServeStats>> ServeExecutor::Run(
    std::vector<ForecastRequest> requests) {
  if (options_.batch.enabled && options_.hedge.enabled) {
    return Status::InvalidArgument(
        "batched serving does not compose with hedging: a hedge is a "
        "second in-flight copy of the request, which the slot "
        "accounting cannot attribute; disable one of them");
  }
  for (const ForecastRequest& r : requests) {
    if (r.history == nullptr) {
      return Status::InvalidArgument(
          StrFormat("request %zu has no history frame", r.id));
    }
    if (r.horizon == 0) {
      return Status::InvalidArgument(
          StrFormat("request %zu has horizon 0", r.id));
    }
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ForecastRequest& a, const ForecastRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  if (options_.batch.enabled) return RunBatched(std::move(requests));

  AdmissionQueue queue(options_.queue);
  OverloadController overload(options_.overload, options_.queue.capacity);
  std::vector<ServeStats> stats;
  stats.reserve(requests.size());

  auto record_rejection = [&stats](const ForecastRequest& r,
                                   RequestOutcome outcome, Status status,
                                   double retry_after = 0.0) {
    ServeStats st;
    st.id = r.id;
    st.arrival_seconds = r.arrival_seconds;
    st.slo = r.slo;
    st.outcome = outcome;
    st.status = std::move(status);
    st.retry_after_seconds = retry_after;
    stats.push_back(std::move(st));
  };

  auto admit = [&](const ForecastRequest& r) {
    if (r.arrival_seconds >= options_.drain_at_seconds) queue.Close();
    if (!queue.closed()) {
      // Ladder/limiter gate in front of the queue; the worker is idle
      // at admission time in the sequential loop, so in_flight is 0.
      Status shed = overload.Admit(r, r.arrival_seconds, queue.depth(),
                                   /*in_flight=*/0);
      if (!shed.ok()) {
        record_rejection(r, RequestOutcome::kShedQueueFull,
                         std::move(shed), queue.RetryAfterSeconds());
        return;
      }
    }
    Status s = queue.Offer(r);
    if (s.ok()) return;
    if (s.code() == StatusCode::kResourceExhausted) {
      overload.OnShed(r.arrival_seconds);
      record_rejection(r, RequestOutcome::kShedQueueFull, std::move(s),
                       queue.RetryAfterSeconds());
    } else {
      record_rejection(r, RequestOutcome::kCancelledDrain, std::move(s));
    }
  };

  double now = 0.0;
  size_t next = 0;
  while (next < requests.size() || !queue.empty()) {
    // Admit everything that arrived while the worker was busy, in
    // arrival order, so queue-full shedding sees the true queue state.
    while (next < requests.size() &&
           requests[next].arrival_seconds <= now) {
      admit(requests[next++]);
    }
    if (queue.empty()) {
      if (next >= requests.size()) break;
      // Idle until the next arrival.
      now = std::max(now, requests[next].arrival_seconds);
      continue;
    }
    if (now >= options_.drain_at_seconds) {
      queue.Close();
      if (options_.drain_mode == DrainMode::kCancelQueued) {
        for (const ForecastRequest& r : queue.Flush()) {
          record_rejection(
              r, RequestOutcome::kCancelledDrain,
              Status::Cancelled(StrFormat(
                  "request %zu cancelled in queue: server drained at "
                  "%.3fs",
                  r.id, options_.drain_at_seconds)));
        }
        continue;
      }
    }
    std::vector<ForecastRequest> expired;
    ForecastRequest job;
    bool popped = queue.Pop(now, &job, &expired);
    for (const ForecastRequest& r : expired) {
      overload.OnShed(now);
      record_rejection(
          r, RequestOutcome::kShedExpired,
          Status::DeadlineExceeded(StrFormat(
              "request %zu expired in queue: deadline %.3fs passed "
              "after %.3fs waiting",
              r.id, r.deadline_seconds, now - r.arrival_seconds)));
    }
    if (!popped) continue;
    // Dispatch-time rung: pressure may have moved while the request
    // waited, so the ladder decides quality at the last moment.
    job.tier = overload.Rung(job.slo, now, queue.depth());
    if (job.tier == ServiceTier::kShed) {
      record_rejection(
          job, RequestOutcome::kShedQueueFull,
          Status::ResourceExhausted(StrFormat(
              "request %zu shed at dispatch: overload ladder escalated "
              "past class %s while it waited",
              job.id, SloClassName(job.slo))),
          queue.RetryAfterSeconds());
      continue;
    }
    overload.OnQueueWait(now, now - job.arrival_seconds);
    ServeStats st = ServeInstrumented(job, now);
    overload.OnCompletion(st.finish_seconds,
                          st.outcome == RequestOutcome::kServed ||
                              st.outcome == RequestOutcome::kServedDegraded);
    now = std::max(now, st.finish_seconds);
    stats.push_back(std::move(st));
  }

  end_seconds_ = now;
  queue_stats_ = queue.stats();
  overload_stats_ = overload.stats();
  std::sort(stats.begin(), stats.end(),
            [](const ServeStats& a, const ServeStats& b) {
              return a.id < b.id;
            });
  return stats;
}

Result<std::vector<ServeStats>> ServeExecutor::RunBatched(
    std::vector<ForecastRequest> requests) {
  // Event-driven N-slot server: up to `size` requests are in service at
  // once, each started the moment a slot was free (continuous back-fill)
  // or the moment the whole batch drained (gang mode). Service itself is
  // simulated sequentially on branch clocks — exactly like hedging — so
  // the run stays bit-reproducible: each request's forecast is a pure
  // function of (request, start time), and batching only changes the
  // start times.
  AdmissionQueue queue(options_.queue);
  OverloadController overload(options_.overload, options_.queue.capacity);
  std::vector<ServeStats> stats;
  stats.reserve(requests.size());

  struct InFlight {
    double finish_seconds;
    ServeStats st;
  };
  std::vector<InFlight> flying;
  const size_t slots = std::max<size_t>(1, options_.batch.size);
  const double inf = std::numeric_limits<double>::infinity();

  auto record_rejection = [&stats](const ForecastRequest& r,
                                   RequestOutcome outcome, Status status,
                                   double retry_after = 0.0) {
    ServeStats st;
    st.id = r.id;
    st.arrival_seconds = r.arrival_seconds;
    st.slo = r.slo;
    st.outcome = outcome;
    st.status = std::move(status);
    st.retry_after_seconds = retry_after;
    stats.push_back(std::move(st));
  };

  auto admit = [&](const ForecastRequest& r) {
    if (r.arrival_seconds >= options_.drain_at_seconds) queue.Close();
    if (!queue.closed()) {
      Status shed = overload.Admit(r, r.arrival_seconds, queue.depth(),
                                   flying.size());
      if (!shed.ok()) {
        record_rejection(r, RequestOutcome::kShedQueueFull,
                         std::move(shed), queue.RetryAfterSeconds());
        return;
      }
    }
    Status s = queue.Offer(r);
    if (s.ok()) return;
    if (s.code() == StatusCode::kResourceExhausted) {
      overload.OnShed(r.arrival_seconds);
      record_rejection(r, RequestOutcome::kShedQueueFull, std::move(s),
                       queue.RetryAfterSeconds());
    } else {
      record_rejection(r, RequestOutcome::kCancelledDrain, std::move(s));
    }
  };

  double now = 0.0;
  size_t next = 0;
  while (next < requests.size() || !queue.empty() || !flying.empty()) {
    while (next < requests.size() &&
           requests[next].arrival_seconds <= now) {
      admit(requests[next++]);
    }
    if (now >= options_.drain_at_seconds) {
      queue.Close();
      if (options_.drain_mode == DrainMode::kCancelQueued) {
        for (const ForecastRequest& r : queue.Flush()) {
          record_rejection(
              r, RequestOutcome::kCancelledDrain,
              Status::Cancelled(StrFormat(
                  "request %zu cancelled in queue: server drained at "
                  "%.3fs",
                  r.id, options_.drain_at_seconds)));
        }
      }
    }
    // Fill free slots from the queue at the current instant. Gang mode
    // only refills once every in-flight request has landed.
    if (options_.batch.backfill || flying.empty()) {
      while (flying.size() < slots && !queue.empty()) {
        std::vector<ForecastRequest> expired;
        ForecastRequest job;
        const bool popped = queue.Pop(now, &job, &expired);
        for (const ForecastRequest& r : expired) {
          overload.OnShed(now);
          record_rejection(
              r, RequestOutcome::kShedExpired,
              Status::DeadlineExceeded(StrFormat(
                  "request %zu expired in queue: deadline %.3fs passed "
                  "after %.3fs waiting",
                  r.id, r.deadline_seconds, now - r.arrival_seconds)));
        }
        if (!popped) break;
        job.tier = overload.Rung(job.slo, now, queue.depth());
        if (job.tier == ServiceTier::kShed) {
          record_rejection(
              job, RequestOutcome::kShedQueueFull,
              Status::ResourceExhausted(StrFormat(
                  "request %zu shed at dispatch: overload ladder "
                  "escalated past class %s while it waited",
                  job.id, SloClassName(job.slo))),
              queue.RetryAfterSeconds());
          continue;
        }
        overload.OnQueueWait(now, now - job.arrival_seconds);
        ServeStats st = ServeInstrumented(job, now);
        const double finish = std::max(now, st.finish_seconds);
        flying.push_back(InFlight{finish, std::move(st)});
      }
    }
    // Advance to the next event: an arrival joining the queue or an
    // in-flight request landing (freeing its slot for back-fill).
    double next_arrival =
        next < requests.size() ? requests[next].arrival_seconds : inf;
    double next_finish = inf;
    for (const InFlight& f : flying) {
      next_finish = std::min(next_finish, f.finish_seconds);
    }
    const double event = std::min(next_arrival, next_finish);
    if (event == inf) break;  // nothing flying, no arrivals left
    now = std::max(now, event);
    for (auto it = flying.begin(); it != flying.end();) {
      if (it->finish_seconds <= now) {
        overload.OnCompletion(
            it->finish_seconds,
            it->st.outcome == RequestOutcome::kServed ||
                it->st.outcome == RequestOutcome::kServedDegraded);
        stats.push_back(std::move(it->st));
        it = flying.erase(it);
      } else {
        ++it;
      }
    }
  }

  end_seconds_ = now;
  queue_stats_ = queue.stats();
  overload_stats_ = overload.stats();
  std::sort(stats.begin(), stats.end(),
            [](const ServeStats& a, const ServeStats& b) {
              return a.id < b.id;
            });
  return stats;
}

}  // namespace serve
}  // namespace multicast
