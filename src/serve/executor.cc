#include "serve/executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/quantile.h"
#include "util/strings.h"
#include "util/virtual_time.h"

namespace multicast {
namespace serve {

namespace {

Deadline RequestDeadline(const ForecastRequest& request) {
  return std::isfinite(request.deadline_seconds)
             ? Deadline::At(request.deadline_seconds)
             : Deadline::Never();
}

// TokenLedger is too small to warrant public view helpers; the serve
// rollup is its only registry face.
void PublishTokenLedger(const lm::TokenLedger& ledger,
                        util::MetricsRegistry* registry,
                        const std::string& prefix) {
  registry->GetCounter(prefix + "prompt_tokens")
      ->Add(static_cast<double>(ledger.prompt_tokens));
  registry->GetCounter(prefix + "generated_tokens")
      ->Add(static_cast<double>(ledger.generated_tokens));
}

lm::TokenLedger TokenLedgerFromSnapshot(const util::MetricsSnapshot& snapshot,
                                        const std::string& prefix) {
  lm::TokenLedger ledger;
  ledger.prompt_tokens =
      static_cast<size_t>(snapshot.Value(prefix + "prompt_tokens"));
  ledger.generated_tokens =
      static_cast<size_t>(snapshot.Value(prefix + "generated_tokens"));
  return ledger;
}

std::vector<size_t> BucketsToCounts(const util::MetricPoint* point) {
  std::vector<size_t> counts;
  if (point == nullptr) return counts;
  counts.reserve(point->buckets.size());
  for (uint64_t b : point->buckets) counts.push_back(static_cast<size_t>(b));
  return counts;
}

size_t SaturatingSub(size_t a, size_t b) { return a > b ? a - b : 0; }

}  // namespace

void PublishClusterStats(const ClusterStats& stats,
                         util::MetricsRegistry* registry,
                         const std::string& prefix) {
  registry->GetCounter(prefix + "failovers")
      ->Add(static_cast<double>(stats.failovers));
  registry->GetCounter(prefix + "redispatched_draws")
      ->Add(static_cast<double>(stats.redispatched_draws));
  registry->GetCounter(prefix + "wasted_seconds")->Add(stats.wasted_seconds);
}

ClusterStats ClusterStatsFromSnapshot(const util::MetricsSnapshot& snapshot,
                                      const std::string& prefix) {
  ClusterStats stats;
  stats.failovers = static_cast<size_t>(snapshot.Value(prefix + "failovers"));
  stats.redispatched_draws =
      static_cast<size_t>(snapshot.Value(prefix + "redispatched_draws"));
  stats.wasted_seconds = snapshot.Value(prefix + "wasted_seconds");
  return stats;
}

RejectionBreakdown& RejectionBreakdown::operator+=(
    const RejectionBreakdown& rhs) {
  queue_full += rhs.queue_full;
  deadline_expired += rhs.deadline_expired;
  backend_unavailable += rhs.backend_unavailable;
  cancelled += rhs.cancelled;
  other += rhs.other;
  retry_after_hint_sum += rhs.retry_after_hint_sum;
  retry_after_hints += rhs.retry_after_hints;
  mean_retry_after_seconds =
      retry_after_hints > 0
          ? retry_after_hint_sum / static_cast<double>(retry_after_hints)
          : 0.0;
  return *this;
}

RejectionBreakdown RejectionBreakdown::operator-(
    const RejectionBreakdown& before) const {
  RejectionBreakdown d;
  d.queue_full = SaturatingSub(queue_full, before.queue_full);
  d.deadline_expired = SaturatingSub(deadline_expired, before.deadline_expired);
  d.backend_unavailable =
      SaturatingSub(backend_unavailable, before.backend_unavailable);
  d.cancelled = SaturatingSub(cancelled, before.cancelled);
  d.other = SaturatingSub(other, before.other);
  d.retry_after_hint_sum =
      retry_after_hint_sum > before.retry_after_hint_sum
          ? retry_after_hint_sum - before.retry_after_hint_sum
          : 0.0;
  d.retry_after_hints =
      SaturatingSub(retry_after_hints, before.retry_after_hints);
  d.mean_retry_after_seconds =
      d.retry_after_hints > 0
          ? d.retry_after_hint_sum / static_cast<double>(d.retry_after_hints)
          : 0.0;
  return d;
}

void PublishRejectionBreakdown(const RejectionBreakdown& breakdown,
                               util::MetricsRegistry* registry,
                               const std::string& prefix) {
  registry->GetCounter(prefix + "queue_full")
      ->Add(static_cast<double>(breakdown.queue_full));
  registry->GetCounter(prefix + "deadline_expired")
      ->Add(static_cast<double>(breakdown.deadline_expired));
  registry->GetCounter(prefix + "backend_unavailable")
      ->Add(static_cast<double>(breakdown.backend_unavailable));
  registry->GetCounter(prefix + "cancelled")
      ->Add(static_cast<double>(breakdown.cancelled));
  registry->GetCounter(prefix + "other")
      ->Add(static_cast<double>(breakdown.other));
  registry->GetCounter(prefix + "retry_after_hint_sum")
      ->Add(breakdown.retry_after_hint_sum);
  registry->GetCounter(prefix + "retry_after_hints")
      ->Add(static_cast<double>(breakdown.retry_after_hints));
}

RejectionBreakdown RejectionBreakdownFromSnapshot(
    const util::MetricsSnapshot& snapshot, const std::string& prefix) {
  RejectionBreakdown b;
  b.queue_full = static_cast<size_t>(snapshot.Value(prefix + "queue_full"));
  b.deadline_expired =
      static_cast<size_t>(snapshot.Value(prefix + "deadline_expired"));
  b.backend_unavailable =
      static_cast<size_t>(snapshot.Value(prefix + "backend_unavailable"));
  b.cancelled = static_cast<size_t>(snapshot.Value(prefix + "cancelled"));
  b.other = static_cast<size_t>(snapshot.Value(prefix + "other"));
  b.retry_after_hint_sum = snapshot.Value(prefix + "retry_after_hint_sum");
  b.retry_after_hints =
      static_cast<size_t>(snapshot.Value(prefix + "retry_after_hints"));
  b.mean_retry_after_seconds =
      b.retry_after_hints > 0
          ? b.retry_after_hint_sum / static_cast<double>(b.retry_after_hints)
          : 0.0;
  return b;
}

const char* OutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed:
      return "served";
    case RequestOutcome::kServedDegraded:
      return "served-degraded";
    case RequestOutcome::kShedQueueFull:
      return "shed-queue-full";
    case RequestOutcome::kShedExpired:
      return "shed-expired";
    case RequestOutcome::kCancelledDrain:
      return "cancelled-drain";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

ServeSummary Summarize(const std::vector<ServeStats>& stats) {
  return Summarize(stats, nullptr);
}

ServeSummary Summarize(const std::vector<ServeStats>& stats,
                       util::MetricsRegistry* registry) {
  util::MetricsRegistry own;
  util::MetricsRegistry* reg = registry != nullptr ? registry : &own;
  const util::MetricsSnapshot before = reg->Snapshot();

  // Register every rollup metric up front, in one fixed order: which
  // outcomes occur varies per run but first-touch order is the export
  // order, so pre-registering keeps --metrics-json column-stable.
  util::Counter* c_total = reg->GetCounter("serve.total");
  util::Counter* c_served = reg->GetCounter("serve.served");
  util::Counter* c_served_degraded = reg->GetCounter("serve.served_degraded");
  util::Counter* c_shed_queue_full = reg->GetCounter("serve.shed_queue_full");
  util::Counter* c_shed_expired = reg->GetCounter("serve.shed_expired");
  util::Counter* c_cancelled_drain = reg->GetCounter("serve.cancelled_drain");
  util::Counter* c_failed = reg->GetCounter("serve.failed");
  util::Counter* c_hedges_fired = reg->GetCounter("serve.hedges_fired");
  util::Counter* c_hedge_wins = reg->GetCounter("serve.hedge_wins");
  util::Counter* c_tier_full = reg->GetCounter("serve.tier_llm_full");
  util::Counter* c_tier_reduced = reg->GetCounter("serve.tier_llm_reduced");
  util::Counter* c_tier_classical = reg->GetCounter("serve.tier_classical");
  util::Counter* c_tier_shed = reg->GetCounter("serve.tier_shed");
  util::Counter* c_queue_wait_sum =
      reg->GetCounter("serve.queue_wait_seconds_sum");
  util::Counter* c_started = reg->GetCounter("serve.requests_started");
  PublishRetryStats(lm::RetryStats{}, reg, "serve.retry.");
  PublishTokenLedger(lm::TokenLedger{}, reg, "serve.ledger.");
  PublishPrefixCacheStats(lm::PrefixCacheStats{}, reg, "serve.prefix_cache.");
  PublishBatchStats(batch::BatchStats{}, reg, "serve.batch.");
  PublishClusterStats(ClusterStats{}, reg, "serve.cluster.");
  PublishRejectionBreakdown(RejectionBreakdown{}, reg, "serve.rejections.");
  util::Counter* c_rej_queue_full =
      reg->GetCounter("serve.rejections.queue_full");
  util::Counter* c_rej_deadline =
      reg->GetCounter("serve.rejections.deadline_expired");
  util::Counter* c_rej_unavailable =
      reg->GetCounter("serve.rejections.backend_unavailable");
  util::Counter* c_rej_cancelled =
      reg->GetCounter("serve.rejections.cancelled");
  util::Counter* c_rej_other = reg->GetCounter("serve.rejections.other");
  util::Counter* c_rej_hint_sum =
      reg->GetCounter("serve.rejections.retry_after_hint_sum");
  util::Counter* c_rej_hints =
      reg->GetCounter("serve.rejections.retry_after_hints");
  util::Histogram* h_served = reg->GetHistogram("serve.served_per_replica");
  util::Histogram* h_finished =
      reg->GetHistogram("serve.finished_per_replica");

  c_total->Add(static_cast<double>(stats.size()));
  std::vector<double> latencies;
  std::vector<double> queue_waits;
  std::vector<double> service_times;
  for (const ServeStats& st : stats) {
    switch (st.outcome) {
      case RequestOutcome::kServed:
        c_served->Increment();
        break;
      case RequestOutcome::kServedDegraded:
        c_served_degraded->Increment();
        break;
      case RequestOutcome::kShedQueueFull:
        c_shed_queue_full->Increment();
        break;
      case RequestOutcome::kShedExpired:
        c_shed_expired->Increment();
        break;
      case RequestOutcome::kCancelledDrain:
        c_cancelled_drain->Increment();
        break;
      case RequestOutcome::kFailed:
        c_failed->Increment();
        break;
    }
    if (st.hedge_fired) c_hedges_fired->Increment();
    if (st.hedge_won) c_hedge_wins->Increment();
    switch (st.tier) {
      case ServiceTier::kLlmFull:
        c_tier_full->Increment();
        break;
      case ServiceTier::kLlmReduced:
        c_tier_reduced->Increment();
        break;
      case ServiceTier::kClassical:
        c_tier_classical->Increment();
        break;
      case ServiceTier::kShed:
        c_tier_shed->Increment();
        break;
    }
    if (st.outcome == RequestOutcome::kServed ||
        st.outcome == RequestOutcome::kServedDegraded) {
      latencies.push_back(st.latency_seconds);
      // The end-to-end split: latency = queue wait + service time.
      queue_waits.push_back(st.queue_wait_seconds);
      service_times.push_back(st.finish_seconds - st.start_seconds);
    }
    if (st.attempts > 0) {
      c_queue_wait_sum->Add(st.queue_wait_seconds);
      c_started->Increment();
    }
    if (st.outcome != RequestOutcome::kServed &&
        st.outcome != RequestOutcome::kServedDegraded) {
      // Rejection-reason breakdown keyed on the terminal status code.
      switch (st.status.code()) {
        case StatusCode::kResourceExhausted:
          c_rej_queue_full->Increment();
          if (st.retry_after_seconds > 0.0) {
            c_rej_hint_sum->Add(st.retry_after_seconds);
            c_rej_hints->Increment();
          }
          break;
        case StatusCode::kDeadlineExceeded:
          c_rej_deadline->Increment();
          break;
        case StatusCode::kUnavailable:
          c_rej_unavailable->Increment();
          break;
        case StatusCode::kCancelled:
          c_rej_cancelled->Increment();
          break;
        default:
          c_rej_other->Increment();
          break;
      }
    } else if (st.cluster.replica >= 0) {
      h_served->ObserveIndex(static_cast<size_t>(st.cluster.replica));
    }
    // Any outcome that reached a replica lands here — the consistent
    // per-replica view (see ServeSummary::finished_per_replica).
    if (st.cluster.replica >= 0) {
      h_finished->ObserveIndex(static_cast<size_t>(st.cluster.replica));
    }
    PublishRetryStats(st.retry, reg, "serve.retry.");
    PublishTokenLedger(st.ledger, reg, "serve.ledger.");
    PublishPrefixCacheStats(st.prefix_cache, reg, "serve.prefix_cache.");
    PublishBatchStats(st.batch, reg, "serve.batch.");
    PublishClusterStats(st.cluster, reg, "serve.cluster.");
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(queue_waits.begin(), queue_waits.end());
  std::sort(service_times.begin(), service_times.end());
  reg->GetGauge("serve.p50_latency_seconds")
      ->Set(util::NearestRankQuantileSorted(latencies, 0.50));
  reg->GetGauge("serve.p99_latency_seconds")
      ->Set(util::NearestRankQuantileSorted(latencies, 0.99));
  reg->GetGauge("serve.p50_queue_wait_seconds")
      ->Set(util::NearestRankQuantileSorted(queue_waits, 0.50));
  reg->GetGauge("serve.p95_queue_wait_seconds")
      ->Set(util::NearestRankQuantileSorted(queue_waits, 0.95));
  reg->GetGauge("serve.p99_queue_wait_seconds")
      ->Set(util::NearestRankQuantileSorted(queue_waits, 0.99));
  reg->GetGauge("serve.p50_service_seconds")
      ->Set(util::NearestRankQuantileSorted(service_times, 0.50));
  reg->GetGauge("serve.p95_service_seconds")
      ->Set(util::NearestRankQuantileSorted(service_times, 0.95));
  reg->GetGauge("serve.p99_service_seconds")
      ->Set(util::NearestRankQuantileSorted(service_times, 0.99));
  {
    // Mean over this call's requests only: subtract what the shared
    // registry already held (exact when it held nothing).
    const double started =
        c_started->value() - before.Value("serve.requests_started");
    const double wait_sum = c_queue_wait_sum->value() -
                            before.Value("serve.queue_wait_seconds_sum");
    reg->GetGauge("serve.mean_queue_wait_seconds")
        ->Set(started > 0.0 ? wait_sum / started : 0.0);
  }

  // The summary is a view over what was just published: every field
  // below reads the snapshot delta, not a side accumulator.
  const util::MetricsSnapshot delta = reg->Snapshot().Delta(before);
  ServeSummary s;
  s.total = static_cast<size_t>(delta.Value("serve.total"));
  s.served = static_cast<size_t>(delta.Value("serve.served"));
  s.served_degraded =
      static_cast<size_t>(delta.Value("serve.served_degraded"));
  s.shed_queue_full =
      static_cast<size_t>(delta.Value("serve.shed_queue_full"));
  s.shed_expired = static_cast<size_t>(delta.Value("serve.shed_expired"));
  s.cancelled_drain =
      static_cast<size_t>(delta.Value("serve.cancelled_drain"));
  s.failed = static_cast<size_t>(delta.Value("serve.failed"));
  s.hedges_fired = static_cast<size_t>(delta.Value("serve.hedges_fired"));
  s.hedge_wins = static_cast<size_t>(delta.Value("serve.hedge_wins"));
  s.tier_llm_full = static_cast<size_t>(delta.Value("serve.tier_llm_full"));
  s.tier_llm_reduced =
      static_cast<size_t>(delta.Value("serve.tier_llm_reduced"));
  s.tier_classical =
      static_cast<size_t>(delta.Value("serve.tier_classical"));
  s.tier_shed = static_cast<size_t>(delta.Value("serve.tier_shed"));
  s.p50_latency_seconds = delta.Value("serve.p50_latency_seconds");
  s.p99_latency_seconds = delta.Value("serve.p99_latency_seconds");
  s.mean_queue_wait_seconds = delta.Value("serve.mean_queue_wait_seconds");
  s.p50_queue_wait_seconds = delta.Value("serve.p50_queue_wait_seconds");
  s.p95_queue_wait_seconds = delta.Value("serve.p95_queue_wait_seconds");
  s.p99_queue_wait_seconds = delta.Value("serve.p99_queue_wait_seconds");
  s.p50_service_seconds = delta.Value("serve.p50_service_seconds");
  s.p95_service_seconds = delta.Value("serve.p95_service_seconds");
  s.p99_service_seconds = delta.Value("serve.p99_service_seconds");
  s.retry = lm::RetryStatsFromSnapshot(delta, "serve.retry.");
  s.ledger = TokenLedgerFromSnapshot(delta, "serve.ledger.");
  s.prefix_cache =
      lm::PrefixCacheStatsFromSnapshot(delta, "serve.prefix_cache.");
  s.batch = batch::BatchStatsFromSnapshot(delta, "serve.batch.");
  s.cluster = ClusterStatsFromSnapshot(delta, "serve.cluster.");
  s.rejections = RejectionBreakdownFromSnapshot(delta, "serve.rejections.");
  s.served_per_replica =
      BucketsToCounts(delta.Find("serve.served_per_replica"));
  s.finished_per_replica =
      BucketsToCounts(delta.Find("serve.finished_per_replica"));
  return s;
}

ServeExecutor::ServeExecutor(ForecasterFactory primary,
                             ForecasterFactory hedge,
                             const ServeOptions& options)
    : primary_(std::move(primary)),
      hedge_(std::move(hedge)),
      options_(options) {
  MC_CHECK(primary_ != nullptr);
}

ServeStats ServeExecutor::ServeOne(const ForecastRequest& request,
                                   double start) {
  ServeStats st;
  st.id = request.id;
  st.arrival_seconds = request.arrival_seconds;
  st.slo = request.slo;
  st.start_seconds = start;
  st.queue_wait_seconds = start - request.arrival_seconds;
  const Deadline deadline = RequestDeadline(request);
  const bool cancel_on_drain =
      options_.drain_mode == DrainMode::kCancelQueued &&
      std::isfinite(options_.drain_at_seconds);

  // Primary branch: its clock starts where the worker picked the
  // request up and is advanced by every cost the pipeline models.
  VirtualClock primary_clock;
  primary_clock.AdvanceTo(start);
  RequestContext primary_ctx;
  primary_ctx.clock = &primary_clock;
  primary_ctx.deadline = deadline;
  if (cancel_on_drain) {
    primary_ctx.cancel.CancelAtTime(&primary_clock,
                                    options_.drain_at_seconds,
                                    "server draining");
  }
  Result<forecast::ForecastResult> primary_result =
      primary_(request)->Forecast(*request.history, request.horizon,
                                  primary_ctx);
  double primary_finish = primary_clock.now();
  st.attempts = 1;

  // Hedge decision: fire when the primary was still running at
  // start + delay, or failed outright (fail-fast hedging launches the
  // backup at the failure instant instead of waiting out the delay).
  bool fire = options_.hedge.enabled && hedge_ != nullptr;
  double hedge_start = start + options_.hedge.delay_seconds;
  if (fire && primary_result.ok() && primary_finish <= hedge_start) {
    fire = false;  // primary fast enough; hedge never launches
  }
  if (fire && !primary_result.ok() && primary_finish < hedge_start) {
    hedge_start = primary_finish;
  }
  if (fire && deadline.ExpiredAt(hedge_start)) fire = false;
  if (fire && cancel_on_drain &&
      hedge_start >= options_.drain_at_seconds) {
    fire = false;
  }

  Result<forecast::ForecastResult> hedge_result =
      Status::Unavailable("hedge not fired");
  double hedge_finish = 0.0;
  if (fire) {
    st.hedge_fired = true;
    st.attempts = 2;
    VirtualClock hedge_clock;
    hedge_clock.AdvanceTo(hedge_start);
    RequestContext hedge_ctx;
    hedge_ctx.clock = &hedge_clock;
    hedge_ctx.deadline = deadline;
    // First success cancels the loser: a hedge still running when the
    // primary finished successfully is cancelled at that instant.
    double cancel_at = std::numeric_limits<double>::infinity();
    std::string cancel_reason;
    if (primary_result.ok()) {
      cancel_at = primary_finish;
      cancel_reason = "hedge lost: primary finished first";
    }
    if (cancel_on_drain && options_.drain_at_seconds < cancel_at) {
      cancel_at = options_.drain_at_seconds;
      cancel_reason = "server draining";
    }
    if (std::isfinite(cancel_at)) {
      hedge_ctx.cancel.CancelAtTime(&hedge_clock, cancel_at,
                                    std::move(cancel_reason));
    }
    hedge_result = hedge_(request)->Forecast(*request.history,
                                             request.horizon, hedge_ctx);
    hedge_finish = hedge_clock.now();
  }

  // Reconcile the race by virtual finish time: earliest success wins.
  const bool primary_ok = primary_result.ok();
  const bool hedge_ok = fire && hedge_result.ok();
  bool won = false;
  bool winner_is_primary = false;
  double finish = primary_finish;
  if (primary_ok && (!hedge_ok || primary_finish <= hedge_finish)) {
    won = true;
    winner_is_primary = true;
  } else if (hedge_ok) {
    won = true;
    finish = hedge_finish;
    st.hedge_won = true;
  } else if (fire) {
    // Both failed: the request's fate is only known once the later
    // branch gave up.
    finish = std::max(primary_finish, hedge_finish);
  }

  if (st.hedge_won && primary_ok) {
    // The primary "succeeded" only because the sequential simulation
    // ran it to completion; in the race it was cancelled the moment the
    // hedge won. Replay it with that cancellation — identical seeds
    // reproduce its behaviour up to the cancel point — so the accounting
    // charges what a concurrent server would actually have spent.
    VirtualClock replay_clock;
    replay_clock.AdvanceTo(start);
    RequestContext replay_ctx;
    replay_ctx.clock = &replay_clock;
    replay_ctx.deadline = deadline;
    replay_ctx.cancel.CancelAtTime(&replay_clock, hedge_finish,
                                   "primary lost: hedge finished first");
    primary_result = primary_(request)->Forecast(*request.history,
                                                 request.horizon,
                                                 replay_ctx);
  }

  // Charge accounting from whichever branch runs actually "happened".
  if (primary_result.ok()) {
    st.retry += primary_result.value().retry_stats;
    st.ledger += primary_result.value().ledger;
  }
  if (fire && hedge_result.ok()) {
    st.retry += hedge_result.value().retry_stats;
    st.ledger += hedge_result.value().ledger;
  }

  st.finish_seconds = finish;
  if (won && !deadline.ExpiredAt(finish)) {
    st.result = std::make_shared<forecast::ForecastResult>(
        winner_is_primary ? std::move(primary_result).value()
                          : std::move(hedge_result).value());
    st.degraded = st.result->degraded;
    st.outcome = st.degraded ? RequestOutcome::kServedDegraded
                             : RequestOutcome::kServed;
    // What quality the client actually got: the classical engine tags
    // its results (also when a fallback chain or hedge demoted to it);
    // otherwise the rung the ladder dispatched the request at.
    st.tier = st.result->tier == forecast::ForecastTier::kClassical
                  ? ServiceTier::kClassical
                  : request.tier;
    st.status = Status::OK();
    st.latency_seconds = finish - request.arrival_seconds;
    return st;
  }

  Status failure;
  if (won) {
    // A pipeline without virtual-time metering (retries disabled) can
    // overrun: the answer exists but arrived after the client gave up.
    failure = Status::DeadlineExceeded(StrFormat(
        "request %zu finished at %.3fs, past its deadline %.3fs",
        request.id, finish, request.deadline_seconds));
  } else if (fire && !primary_result.ok() && !hedge_result.ok()) {
    failure = Status(primary_result.status().code(),
                     StrFormat("primary: %s; hedge: %s",
                               primary_result.status().ToString().c_str(),
                               hedge_result.status().ToString().c_str()));
  } else {
    failure = primary_result.status();
  }
  st.status = failure;
  st.outcome = failure.code() == StatusCode::kCancelled
                   ? RequestOutcome::kCancelledDrain
                   : RequestOutcome::kFailed;
  return st;
}

ServeStats ServeExecutor::ServeInstrumented(const ForecastRequest& request,
                                            double start) {
  // Attribute shared-subsystem activity to this request by snapshotting
  // counters around its service. Pipelines run one at a time even in
  // batched mode (the slot lifecycle is simulated in virtual time), so
  // the deltas are exact.
  lm::PrefixCacheStats cache_before;
  if (options_.prefix_cache != nullptr) {
    cache_before = options_.prefix_cache->stats();
  }
  batch::BatchStats batch_before;
  if (options_.batch.scheduler != nullptr) {
    batch_before = options_.batch.scheduler->stats();
  }
  ServeStats st = ServeOne(request, start);
  if (options_.prefix_cache != nullptr) {
    st.prefix_cache = options_.prefix_cache->stats() - cache_before;
  }
  if (options_.batch.scheduler != nullptr) {
    st.batch = options_.batch.scheduler->stats() - batch_before;
  }
  return st;
}

Result<std::vector<ServeStats>> ServeExecutor::Run(
    std::vector<ForecastRequest> requests) {
  if (options_.batch.enabled && options_.hedge.enabled) {
    return Status::InvalidArgument(
        "batched serving does not compose with hedging: a hedge is a "
        "second in-flight copy of the request, which the slot "
        "accounting cannot attribute; disable one of them");
  }
  for (const ForecastRequest& r : requests) {
    if (r.history == nullptr) {
      return Status::InvalidArgument(
          StrFormat("request %zu has no history frame", r.id));
    }
    if (r.horizon == 0) {
      return Status::InvalidArgument(
          StrFormat("request %zu has horizon 0", r.id));
    }
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ForecastRequest& a, const ForecastRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  if (options_.batch.enabled) return RunBatched(std::move(requests));

  AdmissionQueue queue(options_.queue);
  OverloadController overload(EffectiveOverloadPolicy(),
                              options_.queue.capacity);
  std::vector<ServeStats> stats;
  stats.reserve(requests.size());

  auto record_rejection = [&stats](const ForecastRequest& r,
                                   RequestOutcome outcome, Status status,
                                   double retry_after = 0.0) {
    ServeStats st;
    st.id = r.id;
    st.arrival_seconds = r.arrival_seconds;
    st.slo = r.slo;
    st.outcome = outcome;
    st.status = std::move(status);
    st.retry_after_seconds = retry_after;
    stats.push_back(std::move(st));
  };

  auto admit = [&](const ForecastRequest& r) {
    if (r.arrival_seconds >= options_.drain_at_seconds) queue.Close();
    if (!queue.closed()) {
      // Ladder/limiter gate in front of the queue; the worker is idle
      // at admission time in the sequential loop, so in_flight is 0.
      Status shed = overload.Admit(r, r.arrival_seconds, queue.depth(),
                                   /*in_flight=*/0);
      if (!shed.ok()) {
        record_rejection(r, RequestOutcome::kShedQueueFull,
                         std::move(shed), queue.RetryAfterSeconds());
        return;
      }
    }
    Status s = queue.Offer(r);
    if (s.ok()) return;
    if (s.code() == StatusCode::kResourceExhausted) {
      overload.OnShed(r.arrival_seconds);
      record_rejection(r, RequestOutcome::kShedQueueFull, std::move(s),
                       queue.RetryAfterSeconds());
    } else {
      record_rejection(r, RequestOutcome::kCancelledDrain, std::move(s));
    }
  };

  double now = 0.0;
  size_t next = 0;
  while (next < requests.size() || !queue.empty()) {
    // Admit everything that arrived while the worker was busy, in
    // arrival order, so queue-full shedding sees the true queue state.
    while (next < requests.size() &&
           requests[next].arrival_seconds <= now) {
      admit(requests[next++]);
    }
    if (queue.empty()) {
      if (next >= requests.size()) break;
      // Idle until the next arrival.
      now = std::max(now, requests[next].arrival_seconds);
      continue;
    }
    if (now >= options_.drain_at_seconds) {
      queue.Close();
      if (options_.drain_mode == DrainMode::kCancelQueued) {
        for (const ForecastRequest& r : queue.Flush()) {
          record_rejection(
              r, RequestOutcome::kCancelledDrain,
              Status::Cancelled(StrFormat(
                  "request %zu cancelled in queue: server drained at "
                  "%.3fs",
                  r.id, options_.drain_at_seconds)));
        }
        continue;
      }
    }
    std::vector<ForecastRequest> expired;
    ForecastRequest job;
    bool popped = queue.Pop(now, &job, &expired);
    for (const ForecastRequest& r : expired) {
      overload.OnShed(now);
      record_rejection(
          r, RequestOutcome::kShedExpired,
          Status::DeadlineExceeded(StrFormat(
              "request %zu expired in queue: deadline %.3fs passed "
              "after %.3fs waiting",
              r.id, r.deadline_seconds, now - r.arrival_seconds)));
    }
    if (!popped) continue;
    // Dispatch-time rung: pressure may have moved while the request
    // waited, so the ladder decides quality at the last moment.
    job.tier = overload.Rung(job.slo, now, queue.depth());
    if (job.tier == ServiceTier::kShed) {
      record_rejection(
          job, RequestOutcome::kShedQueueFull,
          Status::ResourceExhausted(StrFormat(
              "request %zu shed at dispatch: overload ladder escalated "
              "past class %s while it waited",
              job.id, SloClassName(job.slo))),
          queue.RetryAfterSeconds());
      continue;
    }
    overload.OnQueueWait(now, now - job.arrival_seconds);
    ServeStats st = ServeInstrumented(job, now);
    overload.OnCompletion(st.finish_seconds,
                          st.outcome == RequestOutcome::kServed ||
                              st.outcome == RequestOutcome::kServedDegraded);
    now = std::max(now, st.finish_seconds);
    stats.push_back(std::move(st));
  }

  end_seconds_ = now;
  PublishRunMetrics(queue, overload);
  std::sort(stats.begin(), stats.end(),
            [](const ServeStats& a, const ServeStats& b) {
              return a.id < b.id;
            });
  return stats;
}

Result<std::vector<ServeStats>> ServeExecutor::RunBatched(
    std::vector<ForecastRequest> requests) {
  // Event-driven N-slot server: up to `size` requests are in service at
  // once, each started the moment a slot was free (continuous back-fill)
  // or the moment the whole batch drained (gang mode). Service itself is
  // simulated sequentially on branch clocks — exactly like hedging — so
  // the run stays bit-reproducible: each request's forecast is a pure
  // function of (request, start time), and batching only changes the
  // start times.
  AdmissionQueue queue(options_.queue);
  OverloadController overload(EffectiveOverloadPolicy(),
                              options_.queue.capacity);
  std::vector<ServeStats> stats;
  stats.reserve(requests.size());

  struct InFlight {
    double finish_seconds;
    ServeStats st;
  };
  std::vector<InFlight> flying;
  const size_t slots = std::max<size_t>(1, options_.batch.size);
  const double inf = std::numeric_limits<double>::infinity();

  auto record_rejection = [&stats](const ForecastRequest& r,
                                   RequestOutcome outcome, Status status,
                                   double retry_after = 0.0) {
    ServeStats st;
    st.id = r.id;
    st.arrival_seconds = r.arrival_seconds;
    st.slo = r.slo;
    st.outcome = outcome;
    st.status = std::move(status);
    st.retry_after_seconds = retry_after;
    stats.push_back(std::move(st));
  };

  auto admit = [&](const ForecastRequest& r) {
    if (r.arrival_seconds >= options_.drain_at_seconds) queue.Close();
    if (!queue.closed()) {
      Status shed = overload.Admit(r, r.arrival_seconds, queue.depth(),
                                   flying.size());
      if (!shed.ok()) {
        record_rejection(r, RequestOutcome::kShedQueueFull,
                         std::move(shed), queue.RetryAfterSeconds());
        return;
      }
    }
    Status s = queue.Offer(r);
    if (s.ok()) return;
    if (s.code() == StatusCode::kResourceExhausted) {
      overload.OnShed(r.arrival_seconds);
      record_rejection(r, RequestOutcome::kShedQueueFull, std::move(s),
                       queue.RetryAfterSeconds());
    } else {
      record_rejection(r, RequestOutcome::kCancelledDrain, std::move(s));
    }
  };

  double now = 0.0;
  size_t next = 0;
  while (next < requests.size() || !queue.empty() || !flying.empty()) {
    while (next < requests.size() &&
           requests[next].arrival_seconds <= now) {
      admit(requests[next++]);
    }
    if (now >= options_.drain_at_seconds) {
      queue.Close();
      if (options_.drain_mode == DrainMode::kCancelQueued) {
        for (const ForecastRequest& r : queue.Flush()) {
          record_rejection(
              r, RequestOutcome::kCancelledDrain,
              Status::Cancelled(StrFormat(
                  "request %zu cancelled in queue: server drained at "
                  "%.3fs",
                  r.id, options_.drain_at_seconds)));
        }
      }
    }
    // Fill free slots from the queue at the current instant. Gang mode
    // only refills once every in-flight request has landed.
    if (options_.batch.backfill || flying.empty()) {
      while (flying.size() < slots && !queue.empty()) {
        std::vector<ForecastRequest> expired;
        ForecastRequest job;
        const bool popped = queue.Pop(now, &job, &expired);
        for (const ForecastRequest& r : expired) {
          overload.OnShed(now);
          record_rejection(
              r, RequestOutcome::kShedExpired,
              Status::DeadlineExceeded(StrFormat(
                  "request %zu expired in queue: deadline %.3fs passed "
                  "after %.3fs waiting",
                  r.id, r.deadline_seconds, now - r.arrival_seconds)));
        }
        if (!popped) break;
        job.tier = overload.Rung(job.slo, now, queue.depth());
        if (job.tier == ServiceTier::kShed) {
          record_rejection(
              job, RequestOutcome::kShedQueueFull,
              Status::ResourceExhausted(StrFormat(
                  "request %zu shed at dispatch: overload ladder "
                  "escalated past class %s while it waited",
                  job.id, SloClassName(job.slo))),
              queue.RetryAfterSeconds());
          continue;
        }
        overload.OnQueueWait(now, now - job.arrival_seconds);
        ServeStats st = ServeInstrumented(job, now);
        const double finish = std::max(now, st.finish_seconds);
        flying.push_back(InFlight{finish, std::move(st)});
      }
    }
    // Advance to the next event: an arrival joining the queue or an
    // in-flight request landing (freeing its slot for back-fill).
    double next_arrival =
        next < requests.size() ? requests[next].arrival_seconds : inf;
    double next_finish = inf;
    for (const InFlight& f : flying) {
      next_finish = std::min(next_finish, f.finish_seconds);
    }
    const double event = std::min(next_arrival, next_finish);
    if (event == inf) break;  // nothing flying, no arrivals left
    now = std::max(now, event);
    for (auto it = flying.begin(); it != flying.end();) {
      if (it->finish_seconds <= now) {
        overload.OnCompletion(
            it->finish_seconds,
            it->st.outcome == RequestOutcome::kServed ||
                it->st.outcome == RequestOutcome::kServedDegraded);
        stats.push_back(std::move(it->st));
        it = flying.erase(it);
      } else {
        ++it;
      }
    }
  }

  end_seconds_ = now;
  PublishRunMetrics(queue, overload);
  std::sort(stats.begin(), stats.end(),
            [](const ServeStats& a, const ServeStats& b) {
              return a.id < b.id;
            });
  return stats;
}

OverloadPolicy ServeExecutor::EffectiveOverloadPolicy() const {
  OverloadPolicy policy = options_.overload;
  if (!policy.memory_probe && options_.block_pool != nullptr) {
    // The probe holds a shared_ptr copy, so a controller outliving the
    // options (or the pool being swapped) stays safe.
    std::shared_ptr<lm::BlockPool> pool = options_.block_pool;
    policy.memory_probe = [pool]() { return pool->Fullness(); };
  }
  return policy;
}

void ServeExecutor::PublishRunMetrics(const AdmissionQueue& queue,
                                      const OverloadController& overload) {
  util::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) {
    if (own_metrics_ == nullptr) {
      own_metrics_ = std::make_unique<util::MetricsRegistry>();
    }
    reg = own_metrics_.get();
  }
  const util::MetricsSnapshot before = reg->Snapshot();
  queue.PublishMetrics(reg);
  overload.PublishMetrics(reg);
  // The accessor structs are views over the registry: this run's
  // contribution is the snapshot delta (exact integers; the gauges keep
  // their after value, matching the structs' high-water semantics).
  const util::MetricsSnapshot delta = reg->Snapshot().Delta(before);
  queue_stats_ = QueueStatsFromSnapshot(delta, "queue.");
  overload_stats_ = OverloadStatsFromSnapshot(delta, "overload.");
}

}  // namespace serve
}  // namespace multicast
