// A forecast job as the serving layer sees it: who asked, when, with
// how much deadline budget, and what to forecast. The payload frame is
// borrowed — one dataset history typically backs thousands of simulated
// requests.

#ifndef MULTICAST_SERVE_REQUEST_H_
#define MULTICAST_SERVE_REQUEST_H_

#include <cstddef>
#include <limits>

#include "ts/frame.h"

namespace multicast {
namespace serve {

struct ForecastRequest {
  /// Caller-assigned identifier; executor results are reported per id.
  size_t id = 0;
  /// Virtual time at which the request reaches admission.
  double arrival_seconds = 0.0;
  /// Absolute virtual-time deadline (+inf = no deadline). Note this is
  /// *absolute*, matching Deadline::At — a trace generator that wants
  /// "2 s of budget" stores arrival + 2.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// History to forecast from. Not owned; must outlive the executor run.
  const ts::Frame* history = nullptr;
  /// Steps to forecast.
  size_t horizon = 0;
  /// Session/prompt identity for affinity routing: requests sharing a
  /// key present (near-)identical prompts, so the cluster router can
  /// pin them to the replica whose prefix cache is already warm.
  /// 0 (the default) is itself a valid shared key.
  uint64_t session_key = 0;
};

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_REQUEST_H_
