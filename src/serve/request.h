// A forecast job as the serving layer sees it: who asked, when, with
// how much deadline budget, and what to forecast. The payload frame is
// borrowed — one dataset history typically backs thousands of simulated
// requests.

#ifndef MULTICAST_SERVE_REQUEST_H_
#define MULTICAST_SERVE_REQUEST_H_

#include <cstddef>
#include <limits>

#include "ts/frame.h"

namespace multicast {
namespace serve {

/// Service-level objective class of a request: how much quality the
/// overload ladder may trade away, and in what order. Interactive
/// traffic keeps full quality the longest; batch traffic is demoted
/// (and ultimately shed) first.
enum class SloClass {
  kInteractive,  ///< latency-sensitive, protected longest
  kStandard,     ///< the default
  kBatch,        ///< throughput traffic, first to degrade
};

inline const char* SloClassName(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return "interactive";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBatch:
      return "batch";
  }
  return "?";
}

/// Quality rung the serving layer assigned to a request (and, in
/// ServeStats, what the request ultimately got). Ordered from best to
/// worst — the overload ladder walks it downward under pressure.
enum class ServiceTier {
  kLlmFull,     ///< full LLM pipeline at the requested draw count
  kLlmReduced,  ///< LLM pipeline with num_samples clamped
  kClassical,   ///< classical statistical engine, no token stream
  kShed,        ///< not served (rejected, expired, cancelled, failed)
};

inline const char* ServiceTierName(ServiceTier tier) {
  switch (tier) {
    case ServiceTier::kLlmFull:
      return "llm-full";
    case ServiceTier::kLlmReduced:
      return "llm-reduced";
    case ServiceTier::kClassical:
      return "classical";
    case ServiceTier::kShed:
      return "shed";
  }
  return "?";
}

struct ForecastRequest {
  /// Caller-assigned identifier; executor results are reported per id.
  size_t id = 0;
  /// Virtual time at which the request reaches admission.
  double arrival_seconds = 0.0;
  /// Absolute virtual-time deadline (+inf = no deadline). Note this is
  /// *absolute*, matching Deadline::At — a trace generator that wants
  /// "2 s of budget" stores arrival + 2.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// History to forecast from. Not owned; must outlive the executor run.
  const ts::Frame* history = nullptr;
  /// Steps to forecast.
  size_t horizon = 0;
  /// Session/prompt identity for affinity routing: requests sharing a
  /// key present (near-)identical prompts, so the cluster router can
  /// pin them to the replica whose prefix cache is already warm.
  /// 0 (the default) is itself a valid shared key.
  uint64_t session_key = 0;
  /// Service-level objective class (see SloClass).
  SloClass slo = SloClass::kStandard;
  /// Quality rung assigned by the overload ladder at dispatch time.
  /// Executors stamp it on the request copy handed to the forecaster
  /// factory, which builds the matching pipeline (full LLM, clamped
  /// draws, or classical engine). kLlmFull when no ladder is active.
  /// Never kShed — a request shed by the ladder is not dispatched.
  ServiceTier tier = ServiceTier::kLlmFull;
};

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_REQUEST_H_
