#include "serve/trace.h"

#include <cmath>
#include <limits>

#include "util/random.h"
#include "util/status.h"

namespace multicast {
namespace serve {

namespace {

bool InBurst(const TraceOptions& o, double t) {
  if (o.burst_every_seconds <= 0.0 || o.burst_duration_seconds <= 0.0 ||
      o.burst_factor <= 1.0) {
    return false;
  }
  return std::fmod(t, o.burst_every_seconds) < o.burst_duration_seconds;
}

}  // namespace

std::vector<Arrival> GenerateTrace(const TraceOptions& options) {
  MC_CHECK(options.arrival_rate > 0.0);
  Rng rng(options.seed, /*stream=*/77);
  std::vector<Arrival> trace;
  trace.reserve(options.num_requests);
  double t = 0.0;
  for (size_t i = 0; i < options.num_requests; ++i) {
    double rate = options.arrival_rate *
                  (InBurst(options, t) ? options.burst_factor : 1.0);
    // Inverse-CDF exponential gap; NextDouble() < 1 keeps log() finite.
    double gap = -std::log(1.0 - rng.NextDouble()) / rate;
    t += gap;
    Arrival a;
    a.arrival_seconds = t;
    a.deadline_seconds = options.deadline_seconds > 0.0
                             ? t + options.deadline_seconds
                             : std::numeric_limits<double>::infinity();
    trace.push_back(a);
  }
  return trace;
}

}  // namespace serve
}  // namespace multicast
