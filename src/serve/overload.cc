#include "serve/overload.h"

#include <algorithm>
#include <vector>

#include "util/quantile.h"
#include "util/strings.h"

namespace multicast {
namespace serve {

namespace {
size_t SaturatingSub(size_t a, size_t b) { return a > b ? a - b : 0; }
}  // namespace

OverloadStats& OverloadStats::operator+=(const OverloadStats& other) {
  aimd_rejected += other.aimd_rejected;
  ladder_rejected += other.ladder_rejected;
  demoted_reduced += other.demoted_reduced;
  demoted_classical += other.demoted_classical;
  escalations += other.escalations;
  recoveries += other.recoveries;
  peak_level = std::max(peak_level, other.peak_level);
  final_limit = std::max(final_limit, other.final_limit);
  return *this;
}

OverloadStats OverloadStats::operator-(const OverloadStats& before) const {
  OverloadStats delta;
  delta.aimd_rejected = SaturatingSub(aimd_rejected, before.aimd_rejected);
  delta.ladder_rejected =
      SaturatingSub(ladder_rejected, before.ladder_rejected);
  delta.demoted_reduced =
      SaturatingSub(demoted_reduced, before.demoted_reduced);
  delta.demoted_classical =
      SaturatingSub(demoted_classical, before.demoted_classical);
  delta.escalations = SaturatingSub(escalations, before.escalations);
  delta.recoveries = SaturatingSub(recoveries, before.recoveries);
  // High-water marks do not subtract; the delta keeps the after value.
  delta.peak_level = peak_level;
  delta.final_limit = final_limit;
  return delta;
}

void PublishOverloadStats(const OverloadStats& stats,
                          util::MetricsRegistry* registry,
                          const std::string& prefix) {
  registry->GetCounter(prefix + "aimd_rejected")
      ->Add(static_cast<double>(stats.aimd_rejected));
  registry->GetCounter(prefix + "ladder_rejected")
      ->Add(static_cast<double>(stats.ladder_rejected));
  registry->GetCounter(prefix + "demoted_reduced")
      ->Add(static_cast<double>(stats.demoted_reduced));
  registry->GetCounter(prefix + "demoted_classical")
      ->Add(static_cast<double>(stats.demoted_classical));
  registry->GetCounter(prefix + "escalations")
      ->Add(static_cast<double>(stats.escalations));
  registry->GetCounter(prefix + "recoveries")
      ->Add(static_cast<double>(stats.recoveries));
  registry->GetGauge(prefix + "peak_level")
      ->SetMax(static_cast<double>(stats.peak_level));
  registry->GetGauge(prefix + "final_limit")->SetMax(stats.final_limit);
}

OverloadStats OverloadStatsFromSnapshot(const util::MetricsSnapshot& snapshot,
                                        const std::string& prefix) {
  OverloadStats stats;
  stats.aimd_rejected =
      static_cast<size_t>(snapshot.Value(prefix + "aimd_rejected"));
  stats.ladder_rejected =
      static_cast<size_t>(snapshot.Value(prefix + "ladder_rejected"));
  stats.demoted_reduced =
      static_cast<size_t>(snapshot.Value(prefix + "demoted_reduced"));
  stats.demoted_classical =
      static_cast<size_t>(snapshot.Value(prefix + "demoted_classical"));
  stats.escalations =
      static_cast<size_t>(snapshot.Value(prefix + "escalations"));
  stats.recoveries =
      static_cast<size_t>(snapshot.Value(prefix + "recoveries"));
  stats.peak_level = static_cast<int>(snapshot.Value(prefix + "peak_level"));
  stats.final_limit = snapshot.Value(prefix + "final_limit");
  return stats;
}

OverloadController::OverloadController(const OverloadPolicy& policy,
                                       size_t queue_capacity)
    : policy_(policy),
      queue_capacity_(std::max<size_t>(1, queue_capacity)),
      limit_(policy.aimd.initial_limit) {
  stats_.final_limit = limit_;
}

double OverloadController::Score(size_t queue_depth) const {
  const LadderPolicy& l = policy_.ladder;
  double score = static_cast<double>(queue_depth) /
                 static_cast<double>(queue_capacity_);
  if (!waits_.empty() && l.wait_budget_seconds > 0.0) {
    std::vector<double> waits;
    waits.reserve(waits_.size());
    for (const auto& w : waits_) waits.push_back(w.second);
    std::sort(waits.begin(), waits.end());
    // Shared nearest-rank estimator — the same p95 the serve summary
    // reports, so the ladder and the report can never disagree on one
    // window (they used to: this file computed the exact integer rank
    // while the summary's floating-point ceil overshot at n = 20, 40...).
    const double p95 = util::NearestRankQuantileSorted(waits, 0.95);
    score = std::max(score, p95 / l.wait_budget_seconds);
  }
  const size_t offered = admits_.size() + sheds_.size();
  if (offered > 0 && l.shed_budget > 0.0) {
    const double shed_fraction =
        static_cast<double>(sheds_.size()) / static_cast<double>(offered);
    score = std::max(score, shed_fraction / l.shed_budget);
  }
  if (policy_.memory_probe && l.memory_budget > 0.0) {
    score = std::max(score, policy_.memory_probe() / l.memory_budget);
  }
  return score;
}

double OverloadController::EnterThreshold(int level) const {
  switch (level) {
    case 1:
      return policy_.ladder.enter_reduced;
    case 2:
      return policy_.ladder.enter_classical;
    default:
      return policy_.ladder.enter_reject;
  }
}

void OverloadController::Prune(double now) {
  const double horizon = now - policy_.ladder.window_seconds;
  while (!waits_.empty() && waits_.front().first < horizon) {
    waits_.pop_front();
  }
  while (!admits_.empty() && admits_.front() < horizon) {
    admits_.pop_front();
  }
  while (!sheds_.empty() && sheds_.front() < horizon) sheds_.pop_front();
}

void OverloadController::UpdateLevel(double now, size_t queue_depth) {
  Prune(now);
  const double score = Score(queue_depth);
  int target = 0;
  for (int l = 1; l <= 3; ++l) {
    if (score >= EnterThreshold(l)) target = l;
  }
  if (target > level_) {
    // Escalation is immediate: overload is an emergency.
    level_ = target;
    last_level_change_ = now;
    ++stats_.escalations;
    stats_.peak_level = std::max(stats_.peak_level, level_);
  } else if (level_ > 0 &&
             score < EnterThreshold(level_) - policy_.ladder.hysteresis_gap &&
             now - last_level_change_ >= policy_.ladder.recovery_seconds) {
    // Recovery is gradual: one rung per dwell period, and only once the
    // score has dropped clear of the boundary.
    --level_;
    last_level_change_ = now;
    ++stats_.recoveries;
  }
}

ServiceTier OverloadController::TierAtRung(int rung) {
  switch (std::clamp(rung, 0, 3)) {
    case 0:
      return ServiceTier::kLlmFull;
    case 1:
      return ServiceTier::kLlmReduced;
    case 2:
      return ServiceTier::kClassical;
    default:
      return ServiceTier::kShed;
  }
}

ServiceTier OverloadController::TierFor(SloClass slo) const {
  // Zero pressure serves every class at full quality; the bias only
  // orders who degrades first (and recovers last) once pressure exists.
  if (level_ == 0) return ServiceTier::kLlmFull;
  const int rung = level_ + ClassBias(slo);
  // The bias accelerates demotion but never pushes a class into the
  // reject rung: rejection requires the biased rung to land *past*
  // classical at the ladder's top level — in practice, batch traffic at
  // level 3. Everyone else bottoms out on the classical tier, which
  // still answers; insolvency beyond that is the queue's and the AIMD
  // limiter's to refuse.
  if (rung >= 4) return ServiceTier::kShed;
  return TierAtRung(std::min(rung, 2));
}

int OverloadController::ClassBias(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return -1;  // protected: degrades one level late
    case SloClass::kStandard:
      return 0;
    case SloClass::kBatch:
      return 1;  // expendable: degrades one level early
  }
  return 0;
}

void OverloadController::RecordShedEvent(double now) {
  sheds_.push_back(now);
}

void OverloadController::AimdShrink(double now) {
  if (!policy_.aimd.enabled) return;
  if (last_shrink_ >= 0.0 &&
      now - last_shrink_ < policy_.aimd.decrease_cooldown_seconds) {
    return;
  }
  limit_ = std::max(policy_.aimd.min_limit,
                    limit_ * policy_.aimd.multiplicative_decrease);
  last_shrink_ = now;
  stats_.final_limit = limit_;
}

Status OverloadController::Admit(const ForecastRequest& request, double now,
                                 size_t queue_depth, size_t in_flight) {
  if (!policy_.any_enabled()) return Status::OK();
  UpdateLevel(now, queue_depth);
  // The controller's own rejections never feed the shed observable —
  // pressure it manufactures itself would hold the ladder escalated
  // forever (the same feedback trap AIMD avoids by not shrinking on its
  // own rejects). Only external sheds (queue full, in-queue expiry)
  // count as pressure.
  if (policy_.aimd.enabled &&
      static_cast<double>(queue_depth + in_flight) >= limit_) {
    ++stats_.aimd_rejected;
    return Status::ResourceExhausted(StrFormat(
        "request %zu shed: adaptive concurrency limit %.1f reached "
        "(%zu queued + %zu in flight)",
        request.id, limit_, queue_depth, in_flight));
  }
  if (policy_.ladder.enabled &&
      TierFor(request.slo) == ServiceTier::kShed) {
    ++stats_.ladder_rejected;
    return Status::ResourceExhausted(StrFormat(
        "request %zu shed: overload ladder at level %d rejects class %s",
        request.id, level_, SloClassName(request.slo)));
  }
  admits_.push_back(now);
  return Status::OK();
}

ServiceTier OverloadController::Rung(SloClass slo, double now,
                                    size_t queue_depth) {
  if (!policy_.ladder.enabled) return ServiceTier::kLlmFull;
  UpdateLevel(now, queue_depth);
  const ServiceTier tier = TierFor(slo);
  switch (tier) {
    case ServiceTier::kLlmReduced:
      ++stats_.demoted_reduced;
      break;
    case ServiceTier::kClassical:
      ++stats_.demoted_classical;
      break;
    case ServiceTier::kShed:
      // The ladder escalated past this class's last serving rung while
      // the request waited; the caller sheds it at dispatch. Not a shed
      // *event* for the pressure window — see Admit.
      ++stats_.ladder_rejected;
      break;
    case ServiceTier::kLlmFull:
      break;
  }
  return tier;
}

void OverloadController::OnQueueWait(double now, double wait_seconds) {
  if (!policy_.any_enabled()) return;
  Prune(now);
  waits_.emplace_back(now, wait_seconds);
}

void OverloadController::OnCompletion(double now, bool on_deadline) {
  if (!policy_.aimd.enabled) return;
  if (on_deadline) {
    limit_ = std::min(policy_.aimd.max_limit,
                      limit_ + policy_.aimd.additive_increase);
    stats_.final_limit = limit_;
  } else {
    AimdShrink(now);
  }
}

void OverloadController::OnShed(double now) {
  if (!policy_.any_enabled()) return;
  Prune(now);
  RecordShedEvent(now);
  AimdShrink(now);
}

}  // namespace serve
}  // namespace multicast
