// Seeded synthetic arrival traces for the serving simulation.
//
// Arrivals are a Poisson process (exponential inter-arrival gaps) whose
// rate multiplies by `burst_factor` inside periodic burst windows — the
// "quiet baseline punctuated by thundering herds" shape that actually
// stresses admission control. Everything is drawn from one seeded PCG
// stream, so a (options, seed) pair names one exact trace on every
// machine: benches and tests assert exact shed counts against it.

#ifndef MULTICAST_SERVE_TRACE_H_
#define MULTICAST_SERVE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace multicast {
namespace serve {

struct TraceOptions {
  size_t num_requests = 64;
  /// Baseline arrival rate, requests per virtual second.
  double arrival_rate = 10.0;
  /// Rate multiplier inside burst windows (1 = no bursts).
  double burst_factor = 4.0;
  /// A burst window opens every this many seconds (0 disables bursts)...
  double burst_every_seconds = 10.0;
  /// ...and stays open this long.
  double burst_duration_seconds = 2.0;
  /// Per-request deadline budget, seconds after arrival (0 or negative
  /// = no deadline).
  double deadline_seconds = 2.0;
  uint64_t seed = 1;
};

/// One arrival: when it shows up and its absolute deadline (+inf when
/// the trace grants no deadline).
struct Arrival {
  double arrival_seconds = 0.0;
  double deadline_seconds = 0.0;
};

/// See file comment. Arrivals are strictly increasing in time.
std::vector<Arrival> GenerateTrace(const TraceOptions& options);

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_TRACE_H_
