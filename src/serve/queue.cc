#include "serve/queue.h"

#include "util/strings.h"

namespace multicast {
namespace serve {

const char* QueueOrderName(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFifo:
      return "fifo";
    case QueueOrder::kEarliestDeadlineFirst:
      return "edf";
  }
  return "?";
}

Status AdmissionQueue::Offer(const ForecastRequest& request) {
  ++stats_.offered;
  if (closed_) {
    ++stats_.rejected_closed;
    return Status::Unavailable(StrFormat(
        "request %zu rejected: queue closed (draining)", request.id));
  }
  if (items_.size() >= policy_.capacity) {
    ++stats_.rejected_full;
    return Status::ResourceExhausted(StrFormat(
        "request %zu shed: queue at capacity %zu", request.id,
        policy_.capacity));
  }
  items_.push_back(request);
  ++stats_.admitted;
  if (items_.size() > stats_.max_depth) stats_.max_depth = items_.size();
  return Status::OK();
}

size_t AdmissionQueue::NextIndex() const {
  if (policy_.order == QueueOrder::kFifo) return 0;
  // Earliest deadline first; arrival order breaks ties (strict < keeps
  // the earliest-pushed of equal deadlines).
  size_t best = 0;
  for (size_t i = 1; i < items_.size(); ++i) {
    if (items_[i].deadline_seconds < items_[best].deadline_seconds) best = i;
  }
  return best;
}

bool AdmissionQueue::Pop(double now, ForecastRequest* out,
                         std::vector<ForecastRequest>* expired) {
  while (!items_.empty()) {
    size_t idx = NextIndex();
    ForecastRequest candidate = items_[idx];
    items_.erase(items_.begin() + static_cast<ptrdiff_t>(idx));
    if (policy_.drop_expired_at_dequeue &&
        now > candidate.deadline_seconds) {
      ++stats_.dropped_expired;
      if (expired != nullptr) expired->push_back(candidate);
      continue;
    }
    ++stats_.popped;
    *out = candidate;
    return true;
  }
  return false;
}

std::vector<ForecastRequest> AdmissionQueue::Flush() {
  std::vector<ForecastRequest> flushed = std::move(items_);
  items_.clear();
  return flushed;
}

}  // namespace serve
}  // namespace multicast
