#include "serve/queue.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/strings.h"

namespace multicast {
namespace serve {

void PublishQueueStats(const QueueStats& stats,
                       util::MetricsRegistry* registry,
                       const std::string& prefix) {
  registry->GetCounter(prefix + "offered")
      ->Add(static_cast<double>(stats.offered));
  registry->GetCounter(prefix + "admitted")
      ->Add(static_cast<double>(stats.admitted));
  registry->GetCounter(prefix + "rejected_full")
      ->Add(static_cast<double>(stats.rejected_full));
  registry->GetCounter(prefix + "rejected_closed")
      ->Add(static_cast<double>(stats.rejected_closed));
  registry->GetCounter(prefix + "dropped_expired")
      ->Add(static_cast<double>(stats.dropped_expired));
  registry->GetCounter(prefix + "popped")
      ->Add(static_cast<double>(stats.popped));
  registry->GetGauge(prefix + "max_depth")
      ->SetMax(static_cast<double>(stats.max_depth));
}

QueueStats QueueStatsFromSnapshot(const util::MetricsSnapshot& snapshot,
                                  const std::string& prefix) {
  QueueStats stats;
  stats.offered = static_cast<size_t>(snapshot.Value(prefix + "offered"));
  stats.admitted = static_cast<size_t>(snapshot.Value(prefix + "admitted"));
  stats.rejected_full =
      static_cast<size_t>(snapshot.Value(prefix + "rejected_full"));
  stats.rejected_closed =
      static_cast<size_t>(snapshot.Value(prefix + "rejected_closed"));
  stats.dropped_expired =
      static_cast<size_t>(snapshot.Value(prefix + "dropped_expired"));
  stats.popped = static_cast<size_t>(snapshot.Value(prefix + "popped"));
  stats.max_depth = static_cast<size_t>(snapshot.Value(prefix + "max_depth"));
  return stats;
}

const char* QueueOrderName(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFifo:
      return "fifo";
    case QueueOrder::kEarliestDeadlineFirst:
      return "edf";
  }
  return "?";
}

bool AdmissionQueue::EdfAfter(const EdfEntry& a, const EdfEntry& b) {
  // std::push_heap keeps the *largest* element on top under this
  // comparator, so "a pops after b" yields a min-heap on (deadline, seq).
  return std::tie(a.deadline_seconds, a.seq) >
         std::tie(b.deadline_seconds, b.seq);
}

Status AdmissionQueue::Offer(const ForecastRequest& request) {
  ++stats_.offered;
  if (closed_) {
    ++stats_.rejected_closed;
    return Status::Unavailable(StrFormat(
        "request %zu rejected: queue closed (draining)", request.id));
  }
  if (depth() >= policy_.capacity) {
    ++stats_.rejected_full;
    return Status::ResourceExhausted(StrFormat(
        "request %zu shed: queue at capacity %zu; retry after %.3fs",
        request.id, policy_.capacity, RetryAfterSeconds()));
  }
  if (policy_.order == QueueOrder::kFifo) {
    fifo_.push_back(request);
  } else {
    heap_.push_back(
        EdfEntry{request.deadline_seconds, next_seq_++, request});
    std::push_heap(heap_.begin(), heap_.end(), EdfAfter);
  }
  ++stats_.admitted;
  if (depth() > stats_.max_depth) stats_.max_depth = depth();
  return Status::OK();
}

ForecastRequest AdmissionQueue::TakeNext() {
  if (policy_.order == QueueOrder::kFifo) {
    ForecastRequest next = std::move(fifo_.front());
    fifo_.pop_front();
    return next;
  }
  std::pop_heap(heap_.begin(), heap_.end(), EdfAfter);
  ForecastRequest next = std::move(heap_.back().request);
  heap_.pop_back();
  return next;
}

bool AdmissionQueue::Pop(double now, ForecastRequest* out,
                         std::vector<ForecastRequest>* expired) {
  while (!empty()) {
    ForecastRequest candidate = TakeNext();
    if (policy_.drop_expired_at_dequeue &&
        now > candidate.deadline_seconds) {
      ++stats_.dropped_expired;
      if (expired != nullptr) expired->push_back(candidate);
      continue;
    }
    ++stats_.popped;
    pop_times_.push_back(now);
    if (pop_times_.size() > 16) pop_times_.pop_front();
    *out = candidate;
    return true;
  }
  return false;
}

double AdmissionQueue::RetryAfterSeconds() const {
  if (pop_times_.size() < 2) return policy_.retry_after_default_seconds;
  // Mean inter-pop gap over the recent drain history: one pop frees one
  // slot, so a shed caller can expect room in about one gap. Pop times
  // are nondecreasing, so a zero span means every recent pop happened
  // at one virtual instant — the queue is draining as fast as it can —
  // and the honest hint is "retry immediately", not the default (which
  // told callers to wait longest exactly when the queue drained
  // fastest).
  const double span = pop_times_.back() - pop_times_.front();
  if (span <= 0.0) return 0.0;
  return span / static_cast<double>(pop_times_.size() - 1);
}

std::vector<ForecastRequest> AdmissionQueue::Flush() {
  std::vector<ForecastRequest> flushed;
  flushed.reserve(depth());
  if (policy_.order == QueueOrder::kFifo) {
    for (ForecastRequest& request : fifo_) {
      flushed.push_back(std::move(request));
    }
    fifo_.clear();
  } else {
    // The drain path reports waiting requests in arrival order, exactly
    // as the old arrival-ordered buffer did.
    std::sort(heap_.begin(), heap_.end(),
              [](const EdfEntry& a, const EdfEntry& b) {
                return a.seq < b.seq;
              });
    for (EdfEntry& entry : heap_) {
      flushed.push_back(std::move(entry.request));
    }
    heap_.clear();
  }
  return flushed;
}

}  // namespace serve
}  // namespace multicast
