// Bounded admission queue with load shedding.
//
// The first thing an overloaded server must do is say no *cheaply*:
// rejecting at admission costs nothing, while timing out after queueing
// burns queue slots and client patience. AdmissionQueue is that front
// door — a bounded buffer that rejects when full (kResourceExhausted),
// optionally drops requests whose deadline already passed at dequeue
// time (they would be served dead), and orders waiting work either
// FIFO or earliest-deadline-first.

#ifndef MULTICAST_SERVE_QUEUE_H_
#define MULTICAST_SERVE_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serve/request.h"
#include "util/metrics.h"
#include "util/status.h"

namespace multicast {
namespace serve {

enum class QueueOrder {
  kFifo,                   ///< serve in arrival order
  kEarliestDeadlineFirst,  ///< serve the most urgent request first
};

const char* QueueOrderName(QueueOrder order);

struct QueuePolicy {
  /// Maximum requests waiting; offers beyond this are shed.
  size_t capacity = 8;
  QueueOrder order = QueueOrder::kFifo;
  /// Drop requests whose deadline has passed while they waited instead
  /// of handing them to a worker that cannot serve them in time.
  bool drop_expired_at_dequeue = true;
  /// Retry-after hint attached to queue-full rejections before the
  /// queue has drained enough to measure its own rate (< 2 pops).
  double retry_after_default_seconds = 1.0;
};

/// Monotonic counters of everything that crossed the front door.
struct QueueStats {
  size_t offered = 0;          ///< every Offer() call
  size_t admitted = 0;         ///< accepted into the buffer
  size_t rejected_full = 0;    ///< shed: queue at capacity
  size_t rejected_closed = 0;  ///< shed: queue closed (draining)
  size_t dropped_expired = 0;  ///< dropped at dequeue: deadline passed
  size_t popped = 0;           ///< handed to a worker
  size_t max_depth = 0;        ///< high-water mark of the buffer
};

/// Registry view of QueueStats: counters under `prefix` (for example
/// "queue.offered"), max_depth as a max-gauge.
void PublishQueueStats(const QueueStats& stats,
                       util::MetricsRegistry* registry,
                       const std::string& prefix);
QueueStats QueueStatsFromSnapshot(const util::MetricsSnapshot& snapshot,
                                  const std::string& prefix);

/// See file comment. Deterministic and single-threaded, like the rest
/// of the serving simulation. Pops are O(1) under FIFO (a deque) and
/// O(log n) under EDF (a binary heap keyed on (deadline, push order)),
/// so drains stay O(n log n) under load instead of the O(n^2) a linear
/// scan plus mid-vector erase would cost.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const QueuePolicy& policy) : policy_(policy) {}

  /// Admits `request` or rejects it: kResourceExhausted when the buffer
  /// is at capacity, kUnavailable once the queue is closed for drain.
  Status Offer(const ForecastRequest& request);

  /// Pops the next request per the configured order at virtual time
  /// `now`. Under drop_expired_at_dequeue, requests already past their
  /// deadline are moved to `expired` (never returned). Returns false
  /// when nothing poppable remains; `out` is untouched then.
  bool Pop(double now, ForecastRequest* out,
           std::vector<ForecastRequest>* expired);

  /// Empties the buffer and returns everything that was waiting — the
  /// cancel-queued drain path.
  std::vector<ForecastRequest> Flush();

  /// Retry-after hint for shed work: the queue's mean inter-pop gap
  /// over its recent drain history — roughly when the next slot frees.
  /// Attached to kResourceExhausted rejection messages and surfaced in
  /// ServeStats so clients can back off for a grounded interval
  /// instead of guessing. Falls back to
  /// `policy.retry_after_default_seconds` before two pops happened.
  double RetryAfterSeconds() const;

  /// Stops admitting; waiting requests are unaffected. Idempotent.
  void Close() { closed_ = true; }
  bool closed() const { return closed_; }

  size_t depth() const { return fifo_.size() + heap_.size(); }
  bool empty() const { return depth() == 0; }
  const QueuePolicy& policy() const { return policy_; }
  const QueueStats& stats() const { return stats_; }
  /// Publishes the counters into `registry` under `prefix` (the unified
  /// metrics export path; see util/metrics.h).
  void PublishMetrics(util::MetricsRegistry* registry,
                      const std::string& prefix = "queue.") const {
    PublishQueueStats(stats_, registry, prefix);
  }

 private:
  /// One waiting request in the EDF heap. `seq` is the admission order
  /// and breaks deadline ties — the earliest-pushed of equal deadlines
  /// pops first, matching the documented FIFO tie-break of the old
  /// linear scan.
  struct EdfEntry {
    double deadline_seconds = 0.0;
    uint64_t seq = 0;
    ForecastRequest request;
  };
  /// Min-heap order on (deadline, seq) for std::push_heap/pop_heap.
  static bool EdfAfter(const EdfEntry& a, const EdfEntry& b);

  /// Removes and returns the next request per the configured order.
  /// Callers must check !empty() first.
  ForecastRequest TakeNext();

  QueuePolicy policy_;
  QueueStats stats_;
  std::deque<ForecastRequest> fifo_;  ///< arrival order (FIFO mode)
  std::vector<EdfEntry> heap_;        ///< (deadline, seq) heap (EDF mode)
  uint64_t next_seq_ = 0;
  bool closed_ = false;
  /// Recent pop instants (bounded), the drain-rate sample behind
  /// RetryAfterSeconds().
  std::deque<double> pop_times_;
};

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_QUEUE_H_
