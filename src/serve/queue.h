// Bounded admission queue with load shedding.
//
// The first thing an overloaded server must do is say no *cheaply*:
// rejecting at admission costs nothing, while timing out after queueing
// burns queue slots and client patience. AdmissionQueue is that front
// door — a bounded buffer that rejects when full (kResourceExhausted),
// optionally drops requests whose deadline already passed at dequeue
// time (they would be served dead), and orders waiting work either
// FIFO or earliest-deadline-first.

#ifndef MULTICAST_SERVE_QUEUE_H_
#define MULTICAST_SERVE_QUEUE_H_

#include <cstddef>
#include <vector>

#include "serve/request.h"
#include "util/status.h"

namespace multicast {
namespace serve {

enum class QueueOrder {
  kFifo,                   ///< serve in arrival order
  kEarliestDeadlineFirst,  ///< serve the most urgent request first
};

const char* QueueOrderName(QueueOrder order);

struct QueuePolicy {
  /// Maximum requests waiting; offers beyond this are shed.
  size_t capacity = 8;
  QueueOrder order = QueueOrder::kFifo;
  /// Drop requests whose deadline has passed while they waited instead
  /// of handing them to a worker that cannot serve them in time.
  bool drop_expired_at_dequeue = true;
};

/// Monotonic counters of everything that crossed the front door.
struct QueueStats {
  size_t offered = 0;          ///< every Offer() call
  size_t admitted = 0;         ///< accepted into the buffer
  size_t rejected_full = 0;    ///< shed: queue at capacity
  size_t rejected_closed = 0;  ///< shed: queue closed (draining)
  size_t dropped_expired = 0;  ///< dropped at dequeue: deadline passed
  size_t popped = 0;           ///< handed to a worker
  size_t max_depth = 0;        ///< high-water mark of the buffer
};

/// See file comment. Deterministic and single-threaded, like the rest
/// of the serving simulation.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const QueuePolicy& policy) : policy_(policy) {}

  /// Admits `request` or rejects it: kResourceExhausted when the buffer
  /// is at capacity, kUnavailable once the queue is closed for drain.
  Status Offer(const ForecastRequest& request);

  /// Pops the next request per the configured order at virtual time
  /// `now`. Under drop_expired_at_dequeue, requests already past their
  /// deadline are moved to `expired` (never returned). Returns false
  /// when nothing poppable remains; `out` is untouched then.
  bool Pop(double now, ForecastRequest* out,
           std::vector<ForecastRequest>* expired);

  /// Empties the buffer and returns everything that was waiting — the
  /// cancel-queued drain path.
  std::vector<ForecastRequest> Flush();

  /// Stops admitting; waiting requests are unaffected. Idempotent.
  void Close() { closed_ = true; }
  bool closed() const { return closed_; }

  size_t depth() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const QueuePolicy& policy() const { return policy_; }
  const QueueStats& stats() const { return stats_; }

 private:
  /// Index of the next request to pop per the configured order.
  size_t NextIndex() const;

  QueuePolicy policy_;
  QueueStats stats_;
  std::vector<ForecastRequest> items_;  ///< arrival order
  bool closed_ = false;
};

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_QUEUE_H_
