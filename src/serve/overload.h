// Overload-aware degradation: a brownout ladder plus adaptive admission.
//
// Under sustained overload a server that only knows "serve" and "reject"
// fails loudly: queues fill, deadlines expire, goodput collapses. The
// OverloadController gives the serving layer two gentler dials:
//
//   * A per-SLO-class degradation ladder. A single pressure level
//     (0..3) is derived from virtual-time observables — queue depth,
//     p95 queue wait over a sliding window, and the recent *external*
//     shed rate (queue-full rejections and in-queue expiries; the
//     ladder's own rejections never count, or self-made pressure would
//     hold it escalated forever), plus paged-memory pool fullness when
//     a memory probe is attached — and each request's quality rung is
//     the level biased by its class: interactive traffic degrades one
//     step later than standard, batch one step earlier. The rungs,
//     best to worst: full LLM pipeline → LLM with the draw count
//     clamped → classical statistical engine → reject. The bias never
//     pushes a class into the reject rung by itself: rejection
//     requires the biased rung to land past classical at the top
//     level (batch at level 3); every other class bottoms out on the
//     classical tier, which still answers. Escalation is immediate
//     (pressure is an emergency); recovery is hysteretic — one level
//     at a time, only after the score has stayed below the entry
//     threshold minus a gap for a dwell period — so the ladder does
//     not flap at a boundary.
//
//   * An AIMD concurrency limiter in front of the admission queue. The
//     limit grows additively on every on-deadline completion and
//     shrinks multiplicatively on deadline misses, queue-full
//     rejections and in-queue expiries (with a cooldown so one burst
//     costs one cut), adapting admitted work to measured capacity the
//     way TCP adapts a congestion window.
//
// Determinism: every input is a virtual-time observable of the
// simulated run (times, depths, counts) and every decision is pure
// arithmetic on them — no wall clock, no RNG — so a fixed trace + seed
// reproduces the exact same ladder walk, shed set, and forecasts.

#ifndef MULTICAST_SERVE_OVERLOAD_H_
#define MULTICAST_SERVE_OVERLOAD_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "serve/request.h"
#include "util/metrics.h"
#include "util/status.h"

namespace multicast {
namespace serve {

/// The brownout ladder (see file comment).
struct LadderPolicy {
  bool enabled = false;
  /// Draw-count clamp applied at the kLlmReduced rung (factories read
  /// it via the policy; the controller only assigns rungs).
  int reduced_samples = 2;
  /// p95 queue wait mapping to pressure score 1.0.
  double wait_budget_seconds = 1.0;
  /// Sliding window for the wait and shed-rate observables.
  double window_seconds = 10.0;
  /// Shed fraction (sheds / offered, windowed) mapping to score 1.0.
  double shed_budget = 0.2;
  /// Pressure scores at which levels 1..3 are entered.
  double enter_reduced = 0.5;
  double enter_classical = 0.75;
  double enter_reject = 0.95;
  /// Recovery hysteresis: a level is left only once the score is below
  /// its entry threshold minus this gap...
  double hysteresis_gap = 0.15;
  /// ...and the level has held for this long (one step per dwell).
  double recovery_seconds = 2.0;
  /// Paged-memory pool fullness (live blocks / cap, in [0, 1]) mapping
  /// to pressure score 1.0, when OverloadPolicy::memory_probe is set.
  /// At the default 0.9 a pool at 90% of its block cap saturates the
  /// score, so the ladder degrades *before* allocation starts spilling.
  /// <= 0 disables the memory observable.
  double memory_budget = 0.9;
};

/// The adaptive admission limiter (see file comment).
struct AimdPolicy {
  bool enabled = false;
  double initial_limit = 8.0;
  double min_limit = 1.0;
  double max_limit = 64.0;
  /// Added to the limit per on-deadline completion.
  double additive_increase = 1.0;
  /// Limit multiplier on a miss/rejection/expiry (in (0, 1)).
  double multiplicative_decrease = 0.5;
  /// Minimum spacing between multiplicative cuts, so a burst of
  /// failures from one overload episode costs one cut, not many.
  double decrease_cooldown_seconds = 0.5;
};

struct OverloadPolicy {
  LadderPolicy ladder;
  AimdPolicy aimd;
  /// Memory-pressure observable: returns the paged-memory pool's
  /// fullness in [0, 1] (lm::BlockPool::Fullness; 0 when the pool is
  /// unbounded). When set, the pressure score also tracks
  /// fullness / ladder.memory_budget, so a pool nearing its block cap
  /// walks the same ladder as queue pressure — reduced draws shrink
  /// per-session state, the classical tier allocates none. Memory
  /// pressure sheds only through the ladder: it must be enabled for
  /// the probe to have any effect.
  std::function<double()> memory_probe;
  bool any_enabled() const { return ladder.enabled || aimd.enabled; }
};

/// Monotonic counters of every ladder/limiter decision in one run.
struct OverloadStats {
  size_t aimd_rejected = 0;       ///< shed at admission by the limiter
  size_t ladder_rejected = 0;     ///< shed by the reject rung
  size_t demoted_reduced = 0;     ///< dispatched at kLlmReduced
  size_t demoted_classical = 0;   ///< dispatched at kClassical
  size_t escalations = 0;         ///< upward pressure-level moves
  size_t recoveries = 0;          ///< downward (hysteretic) moves
  int peak_level = 0;             ///< highest pressure level reached
  double final_limit = 0.0;       ///< AIMD limit when the run ended

  /// Merge: counters add; peak_level and final_limit take the max (two
  /// controllers' high-water marks combine as a fleet high-water mark).
  OverloadStats& operator+=(const OverloadStats& other);
  /// Saturating per-counter delta (`after - before`); peak_level and
  /// final_limit keep the after value (high-water marks do not subtract).
  OverloadStats operator-(const OverloadStats& before) const;
};

/// Registry view of OverloadStats: counters under `prefix` (for example
/// "overload.aimd_rejected"), peak_level / final_limit as max-gauges.
void PublishOverloadStats(const OverloadStats& stats,
                          util::MetricsRegistry* registry,
                          const std::string& prefix);
OverloadStats OverloadStatsFromSnapshot(const util::MetricsSnapshot& snapshot,
                                        const std::string& prefix);

/// See file comment. Single-threaded and deterministic, like the rest
/// of the serving simulation; one instance per executor run.
class OverloadController {
 public:
  OverloadController(const OverloadPolicy& policy, size_t queue_capacity);

  /// Admission gate, called before AdmissionQueue::Offer. OK admits;
  /// kResourceExhausted sheds (AIMD limit reached, or the ladder's
  /// reject rung applies to this request's class). `in_flight` is the
  /// number of requests currently in service.
  Status Admit(const ForecastRequest& request, double now,
               size_t queue_depth, size_t in_flight);

  /// Quality rung for a request of class `slo` dispatched now. Returns
  /// kShed when the ladder escalated past this class's classical rung
  /// while the request waited — callers shed it instead of serving.
  ServiceTier Rung(SloClass slo, double now, size_t queue_depth);

  /// A dispatched request waited this long in the queue.
  void OnQueueWait(double now, double wait_seconds);
  /// A dispatched request finished; `on_deadline` = served within its
  /// deadline (AIMD grows), else counts as a miss (AIMD shrinks).
  void OnCompletion(double now, bool on_deadline);
  /// A request was shed outside the controller (queue at capacity,
  /// expired in queue): pressure signal + AIMD shrink.
  void OnShed(double now);

  int level() const { return level_; }
  double limit() const { return limit_; }
  const OverloadStats& stats() const { return stats_; }
  /// Publishes the counters into `registry` under `prefix` (the unified
  /// metrics export path; see util/metrics.h).
  void PublishMetrics(util::MetricsRegistry* registry,
                      const std::string& prefix = "overload.") const {
    PublishOverloadStats(stats_, registry, prefix);
  }

 private:
  /// Pressure score >= 0 (1.0 = saturated) from the three observables.
  double Score(size_t queue_depth) const;
  /// Walks the pressure level: escalates immediately, recovers
  /// hysteretically. Call with a fresh `now` before any decision.
  void UpdateLevel(double now, size_t queue_depth);
  void Prune(double now);
  void RecordShedEvent(double now);
  void AimdShrink(double now);
  double EnterThreshold(int level) const;
  /// The quality rung class `slo` gets at the current pressure level:
  /// level 0 is full quality for everyone; above it the class bias
  /// shifts the rung, capped so only a biased rung landing past
  /// classical at the top level (batch at level 3) is rejected.
  ServiceTier TierFor(SloClass slo) const;
  static ServiceTier TierAtRung(int rung);
  static int ClassBias(SloClass slo);

  OverloadPolicy policy_;
  size_t queue_capacity_;
  OverloadStats stats_;
  int level_ = 0;
  double last_level_change_ = 0.0;
  double limit_ = 0.0;
  double last_shrink_ = -1.0;  ///< virtual time of the last AIMD cut
  /// Sliding-window observables (timestamps in virtual seconds).
  std::deque<std::pair<double, double>> waits_;  ///< (time, queue wait)
  std::deque<double> admits_;
  std::deque<double> sheds_;
};

}  // namespace serve
}  // namespace multicast

#endif  // MULTICAST_SERVE_OVERLOAD_H_
