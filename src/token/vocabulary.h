// Token vocabulary: the mapping between surface symbols and corpus ids.
//
// The paper's pipeline tokenizes each digit (or SAX symbol) and the comma
// separator individually, then "the tokens are replaced with their
// corresponding corpus id before being passed onto the model". The
// language model itself only ever sees TokenIds; the vocabulary also
// carries the *constraint set* — LLMTime restricts decoding to [0-9,],
// and the SAX variants restrict it to the active alphabet plus comma.

#ifndef MULTICAST_TOKEN_VOCABULARY_H_
#define MULTICAST_TOKEN_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace multicast {
namespace token {

using TokenId = int32_t;

/// Bidirectional symbol <-> id map over single-character tokens.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Digits 0-9 plus the comma separator (LLMTime's constrained set).
  static Vocabulary Digits();

  /// First `alphabet_size` lowercase letters plus comma (alphabetical
  /// SAX). Sizes beyond 26 are unsupported.
  static Result<Vocabulary> SaxAlphabetic(int alphabet_size);

  /// Digits 0..alphabet_size-1 plus comma (digital SAX). The paper notes
  /// digital SAX caps at alphabet size 10 — enforced here.
  static Result<Vocabulary> SaxDigital(int alphabet_size);

  /// Adds a symbol; returns its id (existing id if already present).
  TokenId Add(char symbol);

  /// Id of `symbol`, or NotFound.
  Result<TokenId> IdOf(char symbol) const;

  /// Symbol of `id`, or OutOfRange.
  Result<char> SymbolOf(TokenId id) const;

  bool Contains(char symbol) const;

  size_t size() const { return symbols_.size(); }

  /// All symbols, in id order.
  const std::vector<char>& symbols() const { return symbols_; }

  /// Id of the comma separator, or NotFound when the vocabulary has none.
  Result<TokenId> CommaId() const { return IdOf(','); }

 private:
  std::vector<char> symbols_;
  std::unordered_map<char, TokenId> ids_;
};

}  // namespace token
}  // namespace multicast

#endif  // MULTICAST_TOKEN_VOCABULARY_H_
