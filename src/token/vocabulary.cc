#include "token/vocabulary.h"

#include "util/strings.h"

namespace multicast {
namespace token {

Vocabulary Vocabulary::Digits() {
  Vocabulary v;
  for (char c = '0'; c <= '9'; ++c) v.Add(c);
  v.Add(',');
  return v;
}

Result<Vocabulary> Vocabulary::SaxAlphabetic(int alphabet_size) {
  if (alphabet_size < 2 || alphabet_size > 26) {
    return Status::InvalidArgument(
        StrFormat("alphabetical SAX supports sizes 2..26, got %d",
                  alphabet_size));
  }
  Vocabulary v;
  for (int i = 0; i < alphabet_size; ++i) {
    v.Add(static_cast<char>('a' + i));
  }
  v.Add(',');
  return v;
}

Result<Vocabulary> Vocabulary::SaxDigital(int alphabet_size) {
  if (alphabet_size < 2 || alphabet_size > 10) {
    return Status::InvalidArgument(
        StrFormat("digital SAX supports sizes 2..10, got %d", alphabet_size));
  }
  Vocabulary v;
  for (int i = 0; i < alphabet_size; ++i) {
    v.Add(static_cast<char>('0' + i));
  }
  v.Add(',');
  return v;
}

TokenId Vocabulary::Add(char symbol) {
  auto it = ids_.find(symbol);
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(symbols_.size());
  symbols_.push_back(symbol);
  ids_.emplace(symbol, id);
  return id;
}

Result<TokenId> Vocabulary::IdOf(char symbol) const {
  auto it = ids_.find(symbol);
  if (it == ids_.end()) {
    return Status::NotFound(StrFormat("symbol '%c' not in vocabulary",
                                      symbol));
  }
  return it->second;
}

Result<char> Vocabulary::SymbolOf(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= symbols_.size()) {
    return Status::OutOfRange(StrFormat("token id %d out of range", id));
  }
  return symbols_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(char symbol) const {
  return ids_.find(symbol) != ids_.end();
}

}  // namespace token
}  // namespace multicast
