// Conversions between scaled integers, serialized text, and token ids.

#ifndef MULTICAST_TOKEN_CODEC_H_
#define MULTICAST_TOKEN_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "token/vocabulary.h"
#include "util/status.h"

namespace multicast {
namespace token {

/// Renders a scaled integer as exactly `digits` characters, zero-padded
/// ("7" with digits=3 -> "007"). The fixed width is what lets the
/// digit-interleaving multiplexer align digit positions across
/// dimensions. Errors when v needs more than `digits` characters or is
/// negative.
Result<std::string> FixedWidthDigits(int64_t v, int digits);

/// Parses a fixed-width digit string back to the integer.
Result<int64_t> ParseFixedWidthDigits(const std::string& s);

/// Encodes every character of `text` to its corpus id. Errors on symbols
/// missing from the vocabulary.
Result<std::vector<TokenId>> Encode(const std::string& text,
                                    const Vocabulary& vocab);

/// Decodes ids back to the surface string.
Result<std::string> Decode(const std::vector<TokenId>& ids,
                           const Vocabulary& vocab);

/// Splits comma-separated serialized text into fields
/// ("17,23" -> {"17","23"}). Empty fields are preserved.
std::vector<std::string> SplitFields(const std::string& text);

}  // namespace token
}  // namespace multicast

#endif  // MULTICAST_TOKEN_CODEC_H_
