#include "token/codec.h"

#include "util/strings.h"

namespace multicast {
namespace token {

Result<std::string> FixedWidthDigits(int64_t v, int digits) {
  if (v < 0) {
    return Status::InvalidArgument(
        StrFormat("negative scaled value %lld", static_cast<long long>(v)));
  }
  if (digits < 1 || digits > 18) {
    return Status::InvalidArgument(StrFormat("bad digit width %d", digits));
  }
  std::string s = StrFormat("%0*lld", digits, static_cast<long long>(v));
  if (static_cast<int>(s.size()) != digits) {
    return Status::OutOfRange(
        StrFormat("value %lld does not fit in %d digits",
                  static_cast<long long>(v), digits));
  }
  return s;
}

Result<int64_t> ParseFixedWidthDigits(const std::string& s) {
  if (!IsAllDigits(s)) {
    return Status::InvalidArgument("'" + s + "' is not all digits");
  }
  int64_t v = 0;
  for (char c : s) {
    if (v > (INT64_MAX - 9) / 10) {
      return Status::OutOfRange("digit string overflows int64: " + s);
    }
    v = v * 10 + (c - '0');
  }
  return v;
}

Result<std::vector<TokenId>> Encode(const std::string& text,
                                    const Vocabulary& vocab) {
  std::vector<TokenId> ids;
  ids.reserve(text.size());
  for (char c : text) {
    MC_ASSIGN_OR_RETURN(TokenId id, vocab.IdOf(c));
    ids.push_back(id);
  }
  return ids;
}

Result<std::string> Decode(const std::vector<TokenId>& ids,
                           const Vocabulary& vocab) {
  std::string text;
  text.reserve(ids.size());
  for (TokenId id : ids) {
    MC_ASSIGN_OR_RETURN(char c, vocab.SymbolOf(id));
    text.push_back(c);
  }
  return text;
}

std::vector<std::string> SplitFields(const std::string& text) {
  return Split(text, ',');
}

}  // namespace token
}  // namespace multicast
