// Multi-replica serving: a ReplicaSet above the admission queue.
//
//                        ┌────────▶ Replica 0 (scheduler + prefix cache)
//   arrivals ─▶ Admission│Router ─▶ Replica 1        │ crash? ──┐
//               Queue    │  ▲  └──▶ Replica 2 ◀──────┘ failover │
//                        │  └─ HealthMonitor (probes, ejection, ◀┘
//                        │      probation readmission)
//
// Each Replica is one simulated accelerator node: its own decode
// BatchScheduler, its own PrefixCache (wiped when the node crashes,
// kept through partitions), and a seeded ReplicaFaultPlan. A Router
// (round-robin / least-loaded / power-of-two / prefix affinity) picks
// among replicas the HealthMonitor believes healthy; dispatches to a
// replica that died before the monitor noticed count as misroutes and
// feed back as passive health failures.
//
// Failover: when a replica dies mid-request, the in-flight attempt is
// aborted at the crash instant and the request's incomplete draws are
// re-dispatched to a surviving replica. Determinism argument: every
// draw's RNG and backend fault/retry stack is indexed by (request
// seed, draw index) — never by replica — and replica state (prefix
// cache, batch schedule) is proven output-invariant by the PR 4/5
// identity suites. A re-run therefore reproduces the no-fault
// forecast, bands, ledger and warnings bit-for-bit at any replica
// count whenever the deadline budget still allows full service; what
// failover costs is time (and wasted work), surfaced per request in
// serve::ClusterStats and fleet-wide in ClusterReport.
//
// Like ServeExecutor, everything runs as one deterministic
// event-driven simulation in virtual time: pipelines execute
// sequentially on branch clocks; concurrency across replicas is
// reconciled by virtual event times, so a (trace, seeds, options)
// triple names one exact run on every machine.

#ifndef MULTICAST_CLUSTER_REPLICA_SET_H_
#define MULTICAST_CLUSTER_REPLICA_SET_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_scheduler.h"
#include "cluster/fault_plan.h"
#include "cluster/health.h"
#include "cluster/router.h"
#include "forecast/forecaster.h"
#include "lm/paged_store.h"
#include "lm/prefix_cache.h"
#include "serve/executor.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "util/metrics.h"

namespace multicast {
namespace cluster {

/// One simulated serving node.
struct Replica {
  int id = 0;
  /// Node-local prompt cache; wiped when the node crashes. May be null
  /// (cacheless replica). Shared pointers let tests share one cache
  /// across replicas — fingerprints must then namespace the entries.
  std::shared_ptr<lm::PrefixCache> prefix_cache;
  /// Node-local decode scheduler; may be null (unbatched decode).
  std::shared_ptr<batch::BatchScheduler> scheduler;
  /// Node-local paged-memory pool (lm/paged_store.h); may be null
  /// (plain storage). Factories attach it to the pipelines they build
  /// here, so a node's sessions share frozen prompt state at block
  /// granularity; a crash that wipes the node's prefix cache releases
  /// the cache's block references, and the blocks return to this
  /// pool's freelist once the last live session drops them.
  std::shared_ptr<lm::BlockPool> block_pool;
  /// Scripted failures (crash / partition / slow); see fault_plan.h.
  ReplicaFaultPlan plan;
  /// Concurrent in-service requests this node accepts.
  size_t slots = 1;
  /// Graceful drain window: inside [start, end) the replica takes no
  /// new work but finishes what it has — a rolling-restart primitive.
  FaultWindow drain{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
};

/// Uniform-fleet convenience constructor inputs.
struct UniformReplicaOptions {
  size_t replicas = 2;
  size_t slots = 1;
  /// Per-replica prefix cache capacity; 0 disables the caches.
  size_t prefix_cache_capacity = 64;
  /// Per-replica decode scheduler policy; nullopt-like: max_batch 0
  /// disables the schedulers.
  size_t batch_slots = 0;
  bool batch_backfill = true;
  /// Per-replica paged-memory pools: false leaves every
  /// Replica::block_pool null (plain storage).
  bool paged_memory = false;
  /// Pool geometry when paged_memory is set (same semantics as
  /// forecast::MultiCastOptions::block_span / pool_blocks).
  size_t block_span = 32;
  size_t pool_blocks = 0;
};

/// The fleet: plain data handed to ClusterExecutor.
std::vector<Replica> MakeUniformReplicas(
    const UniformReplicaOptions& options);

/// Builds the pipeline serving one request *on one replica* — the
/// replicated face of serve::ForecasterFactory. Implementations wire
/// `replica.prefix_cache` / `replica.scheduler` into the pipeline so
/// node state stays node-local, and derive seeds from the request
/// only, never the replica, to keep failover output-identical.
using ReplicaForecasterFactory =
    std::function<std::unique_ptr<forecast::Forecaster>(
        const serve::ForecastRequest&, const Replica&)>;

struct ClusterOptions {
  serve::QueuePolicy queue;
  RouterPolicy router = RouterPolicy::kLeastLoaded;
  /// Seeds the power-of-two stream and the affinity salts.
  uint64_t router_seed = 1;
  HealthPolicy health;
  /// Cross-replica hedging: a request still in flight `delay_seconds`
  /// after dispatch launches a backup on another replica; the first
  /// success wins and the loser is cancelled at that instant.
  serve::HedgePolicy hedge;
  /// Cluster drain, mirroring ServeOptions: admission closes at
  /// `drain_at_seconds`; kCancelQueued also cancels waiting and
  /// in-flight work.
  double drain_at_seconds = std::numeric_limits<double>::infinity();
  serve::DrainMode drain_mode = serve::DrainMode::kFinishQueued;
  /// Detection + re-dispatch cost charged to each failover before the
  /// re-run may start on a surviving replica.
  double redispatch_delay_seconds = 0.0;
  /// Crashes wipe the dead replica's prefix cache (partitions never
  /// do). Disable to model an external/persistent cache tier.
  bool wipe_cache_on_crash = true;
  /// Overload-aware degradation (brownout ladder + AIMD admission),
  /// identical to ServeOptions::overload: the fleet sheds load the same
  /// way a single node does. Factories see the assigned rung in
  /// ForecastRequest::tier. Off by default. When replicas carry paged
  /// block pools and no memory_probe is set here, the executor probes
  /// the *fullest* replica pool as the ladder's memory observable (the
  /// router cannot move pinned session state, so the tightest node
  /// gates the fleet).
  serve::OverloadPolicy overload;
  /// Unified metrics registry (not owned; may be null). When set, the
  /// executor publishes its queue / overload / fleet-failover counters
  /// here after each Run under the "queue." / "overload." / "cluster."
  /// prefixes — the same single export path ServeOptions::metrics feeds
  /// (see util/metrics.h). The accessor structs are populated from a
  /// snapshot delta either way.
  util::MetricsRegistry* metrics = nullptr;
};

/// Fleet-side rollup of one run (per-request fates live in the
/// returned serve::ServeStats).
struct ReplicaReport {
  int id = 0;
  size_t dispatched = 0;  ///< attempts started here (incl. hedges)
  size_t completed = 0;   ///< attempts that ran to completion here
  size_t failovers = 0;   ///< attempts this node killed by dying
  size_t misroutes = 0;   ///< dispatches refused: node already down
  double busy_seconds = 0.0;  ///< summed in-service virtual seconds
  /// busy_seconds / (slots × run length): time-averaged occupancy.
  double occupancy = 0.0;
};

struct ClusterReport {
  std::vector<ReplicaReport> replicas;
  HealthStats health;
  size_t failovers = 0;
  size_t redispatched_draws = 0;
  double wasted_seconds = 0.0;
  /// Requests failed with kUnavailable because no replica could ever
  /// serve them again (fleet permanently down).
  size_t fleet_unavailable = 0;
  /// Ladder/limiter counters (all zero when ClusterOptions::overload is
  /// disabled).
  serve::OverloadStats overload;
};

/// See file comment.
class ClusterExecutor {
 public:
  /// `primary` builds the pipeline of record; `hedge` (null = use
  /// `primary`) builds the backup raced after the hedge delay.
  ClusterExecutor(ReplicaForecasterFactory primary,
                  ReplicaForecasterFactory hedge,
                  std::vector<Replica> replicas,
                  const ClusterOptions& options);

  /// Replays `requests` through admission, routing, per-replica
  /// service, failover and recovery; returns one ServeStats per
  /// request in request-id order.
  Result<std::vector<serve::ServeStats>> Run(
      std::vector<serve::ForecastRequest> requests);

  const serve::QueueStats& queue_stats() const { return queue_stats_; }
  const ClusterReport& report() const { return report_; }
  double end_seconds() const { return end_seconds_; }
  size_t num_replicas() const { return replicas_.size(); }
  const Replica& replica(size_t i) const { return replicas_[i]; }

 private:
  struct Flight;
  struct LiveRequest;

  ReplicaForecasterFactory primary_;
  ReplicaForecasterFactory hedge_;
  std::vector<Replica> replicas_;
  ClusterOptions options_;
  serve::QueueStats queue_stats_;
  ClusterReport report_;
  double end_seconds_ = 0.0;
};

}  // namespace cluster
}  // namespace multicast

#endif  // MULTICAST_CLUSTER_REPLICA_SET_H_
